package kmgraph

// Integration matrix: every public algorithm, driven through the facade,
// across a grid of graph families, machine counts, and seeds, validated
// against the sequential oracles. This is the adoption-level test a
// downstream user would rely on.

import (
	"fmt"
	"testing"
)

func families(seed int64) map[string]*Graph {
	return map[string]*Graph{
		"gnm":        GNM(220, 660, seed),
		"powerlaw":   ChungLu(220, 2.5, 6, seed),
		"prufer":     PruferTree(220, seed),
		"planted":    PlantedPartition(200, 4, 0.12, 0.002, seed),
		"components": DisjointComponents(200, 6, 0.4, seed),
		"grid":       Grid(14, 15),
		"star":       Star(220),
		"barbell":    TwoCliquesBridged(18, 2, seed),
	}
}

func TestIntegrationConnectivityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix test")
	}
	for _, k := range []int{2, 5, 9} {
		for name, g := range families(3) {
			t.Run(fmt.Sprintf("%s/k%d", name, k), func(t *testing.T) {
				res, err := Connectivity(g, Config{K: k, Seed: 17})
				if err != nil {
					t.Fatal(err)
				}
				_, want := ComponentsOracle(g)
				if res.Components != want {
					t.Errorf("components %d, want %d", res.Components, want)
				}
				if res.Metrics.DroppedMessages != 0 {
					t.Error("dropped messages")
				}
			})
		}
	}
}

func TestIntegrationMSTMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix test")
	}
	for _, k := range []int{3, 7} {
		for name, base := range families(5) {
			g := WithDistinctWeights(base, 23)
			t.Run(fmt.Sprintf("%s/k%d", name, k), func(t *testing.T) {
				res, err := MST(g, MSTConfig{Config: Config{K: k, Seed: 29}})
				if err != nil {
					t.Fatal(err)
				}
				forest, want := MSTOracle(g)
				if res.TotalWeight != want || len(res.Edges) != len(forest) {
					t.Errorf("weight %d (want %d), edges %d (want %d)",
						res.TotalWeight, want, len(res.Edges), len(forest))
				}
			})
		}
	}
}

func TestIntegrationSpanningTree(t *testing.T) {
	g := GNM(240, 720, 7)
	res, err := SpanningTree(g, Config{K: 6, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	sub := fromEdges(g.N(), res.Edges)
	wantLabels, wantCount := ComponentsOracle(g)
	gotLabels, gotCount := ComponentsOracle(sub)
	if gotCount != wantCount {
		t.Errorf("forest components %d, want %d", gotCount, wantCount)
	}
	if !sameLabeling(gotLabels, wantLabels) {
		t.Error("forest spans different components")
	}
}

func TestIntegrationVerifiersOnRealisticGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix test")
	}
	for seed := int64(0); seed < 4; seed++ {
		g := ChungLu(180, 2.6, 5, seed)
		cfg := Config{K: 4, Seed: seed + 41}
		bip, err := VerifyBipartiteness(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if bip.Holds != IsBipartiteOracle(g) {
			t.Errorf("seed %d: bipartite mismatch", seed)
		}
		cyc, err := VerifyCycleContainment(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wantCyc := g.M() > g.N()-componentCount(g)
		if cyc.Holds != wantCyc {
			t.Errorf("seed %d: cycle mismatch", seed)
		}
	}
}

func TestIntegrationBaselinesAgreeWithCore(t *testing.T) {
	g := ChungLu(250, 2.4, 6, 9)
	core, err := Connectivity(g, Config{K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := FloodingConnectivity(g, BaselineConfig{K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := RefereeConnectivity(g, BaselineConfig{K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if core.Components != fl.Components || fl.Components != rf.Components {
		t.Errorf("algorithms disagree: %d / %d / %d",
			core.Components, fl.Components, rf.Components)
	}
}

// Small helpers (the facade exposes oracles; these adapt shapes).

func fromEdges(n int, edges []Edge) *Graph {
	b := NewGraphBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.W)
	}
	return b.Build()
}

func sameLabeling(a, b []int) bool {
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := rev[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

func componentCount(g *Graph) int {
	_, c := ComponentsOracle(g)
	return c
}
