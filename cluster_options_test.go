package kmgraph

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"kmgraph/internal/resident"
)

// TestClusterOptionValidation pins that option misuse surfaces as typed
// errors from NewCluster/OpenCluster — never a panic, and never a
// silently mis-partitioned cluster (the CLIs turn these into non-zero
// exits with a message).
func TestClusterOptionValidation(t *testing.T) {
	g := GNM(50, 150, 1)

	for _, tc := range []struct {
		name string
		k    int
	}{
		{"zero K", 0},
		{"negative K", -3},
		{"K beyond n", 51},
	} {
		c, err := NewCluster(g, WithK(tc.k))
		if err == nil {
			c.Close()
			t.Fatalf("%s: NewCluster accepted K=%d on n=50", tc.name, tc.k)
		}
		if !errors.Is(err, resident.ErrBadConfig) {
			t.Errorf("%s: error %v is not ErrBadConfig", tc.name, err)
		}
	}
	// K == n is the boundary: legal (one vertex per machine possible).
	pg := Path(8)
	c, err := NewCluster(pg, WithK(8), WithSeed(3))
	if err != nil {
		t.Fatalf("K == n rejected: %v", err)
	}
	c.Close()

	// The same validation guards the shard-direct path.
	if _, err := OpenCluster("", WithEdgeSource(g.Source()), WithK(60)); err == nil {
		t.Error("OpenCluster accepted K beyond n")
	}

	// Negative job timeouts are configuration errors, not deadlines.
	if _, err := NewCluster(g, WithK(4), WithJobTimeout(-time.Second)); err == nil {
		t.Error("negative WithJobTimeout accepted")
	}
}

// TestClusterJobTimeout pins WithJobTimeout: a default deadline that
// expires mid-job returns context.DeadlineExceeded and leaves the
// cluster serviceable; an explicit earlier/later request deadline wins.
func TestClusterJobTimeout(t *testing.T) {
	g := GNM(400, 1200, 5)
	c, err := NewCluster(g, WithK(4), WithSeed(7), WithJobTimeout(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Connectivity(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("default deadline: got %v, want DeadlineExceeded", err)
	}
	// A context with its own (later) deadline overrides the default.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	q, err := c.Connectivity(ctx)
	if err != nil {
		t.Fatalf("job under explicit deadline: %v", err)
	}
	if q.Components < 1 {
		t.Fatalf("bad result: %+v", q)
	}
}

// TestClusterEpochSemantics pins the cache-invalidation contract: the
// epoch starts at 0, only edge-set-changing batches bump it, and it is
// reported consistently by Epoch() and Metrics().
func TestClusterEpochSemantics(t *testing.T) {
	g := GNM(100, 300, 9)
	c, err := NewCluster(g, WithK(4), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if e := c.Epoch(); e != 0 {
		t.Fatalf("fresh cluster at epoch %d", e)
	}
	if _, err := c.Connectivity(ctx); err != nil {
		t.Fatal(err)
	}
	if e := c.Epoch(); e != 0 {
		t.Fatalf("read-only job bumped epoch to %d", e)
	}
	br, err := c.ApplyBatch(ctx, []EdgeOp{{U: 0, V: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	if br.Applied > 0 {
		want = 1
	}
	if e := c.Epoch(); e != want {
		t.Fatalf("after batch (applied=%d): epoch %d, want %d", br.Applied, e, want)
	}
	// A fully-rejected batch (re-insert of a live edge) leaves the epoch.
	if br.Applied > 0 {
		br2, err := c.ApplyBatch(ctx, []EdgeOp{{U: 0, V: 1, W: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if br2.Applied != 0 {
			t.Fatalf("duplicate insert applied: %+v", br2)
		}
		if e := c.Epoch(); e != want {
			t.Fatalf("rejected batch bumped epoch to %d", e)
		}
	}
	if met := c.Metrics(); met.Epoch != c.Epoch() {
		t.Fatalf("Metrics.Epoch %d != Epoch() %d", met.Epoch, c.Epoch())
	}
	queued, running := c.Queue()
	if queued != 0 || running != 0 {
		t.Fatalf("idle cluster reports queue (%d, %d)", queued, running)
	}
}

// TestErrBadConfigMessageNamesTheProblem keeps CLI error output useful.
func TestErrBadConfigMessageNamesTheProblem(t *testing.T) {
	_, err := NewCluster(GNM(10, 20, 1), WithK(99))
	if err == nil || !strings.Contains(err.Error(), "99") || !strings.Contains(err.Error(), "10") {
		t.Fatalf("error %v does not name K and n", err)
	}
}
