package kmgraph

// The benchmark harness: one testing.B benchmark per experiment E1..E12
// (each reproducing a paper theorem/lemma/figure; see DESIGN.md §4), plus
// direct algorithm benchmarks for profiling. The experiment benches run
// the quick-mode sweep so `go test -bench=.` regenerates every paper
// result end to end; `cmd/kmbench` prints the full tables.

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"kmgraph/internal/telemetry"
)

func benchExperiment(b *testing.B, id string) {
	e, err := ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(ExperimentParams{Quick: true, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// BenchmarkE1ConnectivityVsK reproduces Theorem 1's k-scaling comparison.
func BenchmarkE1ConnectivityVsK(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2ConnectivityVsN reproduces Theorem 1's n-scaling.
func BenchmarkE2ConnectivityVsN(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3DRRDepth reproduces Lemma 6 / Figure 2.
func BenchmarkE3DRRDepth(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Phases reproduces Lemma 7.
func BenchmarkE4Phases(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5ProxyBalance reproduces Lemma 1/3's load balancing.
func BenchmarkE5ProxyBalance(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6MSTVsK reproduces Theorem 2(a).
func BenchmarkE6MSTVsK(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7MSTOutputModes reproduces Theorem 2(b)'s output separation.
func BenchmarkE7MSTOutputModes(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8MinCut reproduces Theorem 3.
func BenchmarkE8MinCut(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Verification reproduces Theorem 4.
func BenchmarkE9Verification(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10CollapseAblation reproduces the Lemma 5 ablation.
func BenchmarkE10CollapseAblation(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11LowerBound reproduces Theorem 5 / Figure 1.
func BenchmarkE11LowerBound(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12REPConversion reproduces §1.3/§2 (REP + Conversion Theorem).
func BenchmarkE12REPConversion(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13Dynamic measures incremental vs static rounds under churn.
func BenchmarkE13Dynamic(b *testing.B) { benchExperiment(b, "E13") }

// Direct algorithm benchmarks (wall-clock of the simulator, for profiling
// the implementation rather than counting model rounds).

func BenchmarkConnectivitySketch(b *testing.B) {
	for _, size := range []struct{ n, k int }{{512, 4}, {1024, 8}, {2048, 16}} {
		g := GNM(size.n, 3*size.n, 1)
		b.Run(fmt.Sprintf("n%d_k%d", size.n, size.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Connectivity(g, Config{K: size.k, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConnectivitySketchTelemetry is BenchmarkConnectivitySketch
// with the serving layer's per-request instrumentation around every
// operation — request counter, latency histogram observation, job
// outcome counter — so the cost of metering a hot caller is measured
// against the uninstrumented twin above. EXPERIMENTS.md E17 records the
// gap (the budget is <2%; the instrumentation is a handful of atomics
// per op against milliseconds of simulation).
func BenchmarkConnectivitySketchTelemetry(b *testing.B) {
	reg := telemetry.NewRegistry()
	endpoint := telemetry.Label{Name: "endpoint", Value: "connectivity"}
	reqs := reg.Counter("kmserve_requests_total", "Requests.",
		endpoint, telemetry.Label{Name: "code", Value: "200"})
	lat := reg.Histogram("kmserve_request_seconds", "Latency.", endpoint)
	jobs := reg.Counter("kmgraph_jobs_total", "Jobs.",
		telemetry.Label{Name: "job", Value: "connectivity"},
		telemetry.Label{Name: "status", Value: "ok"})
	for _, size := range []struct{ n, k int }{{512, 4}, {1024, 8}, {2048, 16}} {
		g := GNM(size.n, 3*size.n, 1)
		b.Run(fmt.Sprintf("n%d_k%d", size.n, size.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, err := Connectivity(g, Config{K: size.k, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
				lat.Observe(time.Since(start).Seconds())
				reqs.Inc()
				jobs.Inc()
			}
		})
	}
}

// TestObserverKeepsRoundLoopAllocationFree pins the telemetry
// acceptance property at the engine layer: attaching an observer (the
// default serving configuration, PhaseMetrics off) adds only a bounded
// number of allocations per job — O(phases), from the event
// notifications at phase boundaries — never per round or per message.
// The round loop itself stays allocation-free.
func TestObserverKeepsRoundLoopAllocationFree(t *testing.T) {
	g := GNM(1024, 3072, 7)
	measure := func(opts ...ClusterOption) (uint64, *QueryResult) {
		opts = append(opts, WithK(8), WithSeed(7), WithMaxRounds(1<<30))
		best := ^uint64(0)
		var res *QueryResult
		// Min over trials strips GC and goroutine-stack noise; the
		// workload itself is deterministic for a fixed seed.
		for trial := 0; trial < 3; trial++ {
			c, err := NewCluster(g, opts...)
			if err != nil {
				t.Fatal(err)
			}
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			q, err := c.Connectivity(context.Background())
			runtime.ReadMemStats(&m1)
			c.Close()
			if err != nil {
				t.Fatal(err)
			}
			if d := m1.Mallocs - m0.Mallocs; d < best {
				best = d
			}
			res = q
		}
		return best, res
	}

	bare, _ := measure()
	var events atomic.Int64
	observed, q := measure(WithObserver(func(ClusterEvent) { events.Add(1) }))
	if events.Load() == 0 {
		t.Fatal("observer never fired")
	}
	// Budget: a generous constant per delivered event (start, phases,
	// done). The query spends hundreds of rounds and thousands of
	// messages — a per-round or per-message leak blows through this
	// immediately.
	budget := uint64(64 * (q.Phases + 2))
	if observed > bare+budget {
		t.Errorf("observer overhead: %d allocs bare, %d observed (budget +%d for %d phases, %d rounds)",
			bare, observed, budget, q.Phases, q.Rounds)
	}
}

func BenchmarkConnectivityEdgeCheck(b *testing.B) {
	g := GNM(1024, 3072, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Connectivity(g, Config{K: 8, Seed: int64(i), EdgeCheckSelection: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMSTSketch(b *testing.B) {
	g := WithDistinctWeights(GNM(512, 1536, 1), 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MST(g, MSTConfig{Config: Config{K: 8, Seed: int64(i)}}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDynamicBatch drives a resident dynamic session through b.N
// churn batches (apply + query per iteration) and reports the mean
// engine rounds per batch alongside wall-clock — the two costs future
// PRs must not regress.
func benchDynamicBatch(b *testing.B, delFrac float64) {
	n, m, k := 1024, 3072, 8
	stream := RandomChurnStream(n, m, b.N, 30, delFrac, 7)
	// MaxRounds is cumulative over the resident session; lift the default
	// cap so arbitrarily long -benchtime runs don't trip it.
	sess, err := NewDynamic(stream.Initial, DynamicConfig{K: k, Seed: 7, MaxRounds: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Query(); err != nil { // build-up
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		br, err := sess.ApplyBatch(stream.Batches[i])
		if err != nil {
			b.Fatal(err)
		}
		q, err := sess.Query()
		if err != nil {
			b.Fatal(err)
		}
		rounds += br.Rounds + q.Rounds
	}
	b.StopTimer()
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/batch")
}

func BenchmarkDynamicBatchInsertOnly(b *testing.B) { benchDynamicBatch(b, 0) }

func BenchmarkDynamicBatchMixedChurn(b *testing.B) { benchDynamicBatch(b, 0.5) }

func BenchmarkDynamicBatchDeleteHeavy(b *testing.B) { benchDynamicBatch(b, 0.9) }

// The Cluster-reuse benchmark pair: clusterReuseJobs connectivity
// questions answered (a) as jobs on one resident Cluster — the graph is
// loaded and partitioned once, and queries after the first run
// incrementally — versus (b) as independent one-shot Connectivity calls,
// each building a cluster, re-partitioning, and re-running from
// singletons. Both report mean engine rounds per question alongside
// wall-clock; EXPERIMENTS.md records the measured gap.
const clusterReuseJobs = 8

func BenchmarkClusterReuseResident(b *testing.B) {
	g := GNM(1024, 3072, 7)
	ctx := context.Background()
	b.ReportAllocs()
	rounds := 0
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(g, WithK(8), WithSeed(7), WithMaxRounds(1<<30))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < clusterReuseJobs; j++ {
			q, err := c.Connectivity(ctx)
			if err != nil {
				b.Fatal(err)
			}
			rounds += q.Rounds
		}
		rounds += c.Metrics().LoadRounds
		c.Close()
	}
	b.ReportMetric(float64(rounds)/float64(b.N*clusterReuseJobs), "rounds/job")
}

func BenchmarkClusterReuseOneShot(b *testing.B) {
	g := GNM(1024, 3072, 7)
	b.ReportAllocs()
	rounds := 0
	for i := 0; i < b.N; i++ {
		for j := 0; j < clusterReuseJobs; j++ {
			r, err := Connectivity(g, Config{K: 8, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			rounds += r.Metrics.Rounds
		}
	}
	b.ReportMetric(float64(rounds)/float64(b.N*clusterReuseJobs), "rounds/job")
}

func BenchmarkFloodingBaseline(b *testing.B) {
	g := GNM(1024, 3072, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FloodingConnectivity(g, BaselineConfig{K: 8, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefereeBaseline(b *testing.B) {
	g := GNM(1024, 3072, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RefereeConnectivity(g, BaselineConfig{K: 8, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
