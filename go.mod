module kmgraph

go 1.22
