package kmgraph

// Golden-metrics regression tests for the round engine.
//
// The engine rewrite (allocation-free, link-indexed, parallel transmit) must
// be bit-exact: same seeds => same Metrics, same outputs. These tests pin
// the full cost accounting of representative runs — connectivity, MST, and
// a dynamic churn session — to values captured from the pre-rewrite engine.
// Any drift in Rounds, Messages, PayloadBytes, per-link bit counts, or
// per-machine send/receive counts is a correctness bug in the engine, not a
// tuning knob.

import (
	"fmt"
	"hash/fnv"
	"testing"

	"kmgraph/internal/kmachine"
)

// metricsFingerprint folds every field of a Metrics — including the full
// LinkBits matrix and the per-machine message counts — into one hash, so a
// single comparison covers the engine's entire accounting surface.
func metricsFingerprint(m *kmachine.Metrics) uint64 {
	h := fnv.New64a()
	add := func(x int64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(uint64(x) >> (8 * i))
		}
		h.Write(b[:])
	}
	add(int64(m.Rounds))
	add(m.Messages)
	add(m.PayloadBytes)
	add(m.MaxLinkBits)
	add(int64(m.DroppedMessages))
	add(m.DroppedBytes)
	for _, row := range m.LinkBits {
		for _, b := range row {
			add(b)
		}
	}
	for _, s := range m.SentMsgs {
		add(s)
	}
	for _, r := range m.RecvMsgs {
		add(r)
	}
	return h.Sum64()
}

type goldenMetrics struct {
	rounds      int
	messages    int64
	payload     int64
	maxLink     int64
	totalBits   int64
	fingerprint uint64
}

func checkGolden(t *testing.T, name string, m *kmachine.Metrics, want goldenMetrics) {
	t.Helper()
	got := goldenMetrics{
		rounds:      m.Rounds,
		messages:    m.Messages,
		payload:     m.PayloadBytes,
		maxLink:     m.MaxLinkBits,
		totalBits:   m.TotalBits(),
		fingerprint: metricsFingerprint(m),
	}
	if m.DroppedMessages != 0 || m.DroppedBytes != 0 {
		t.Errorf("%s: dropped %d msgs / %d bytes, want 0", name, m.DroppedMessages, m.DroppedBytes)
	}
	if got != want {
		t.Errorf("%s: metrics drifted from golden values\n got:  %+v\n want: %+v", name, got, want)
	}
}

func TestGoldenConnectivityMetrics(t *testing.T) {
	g := GNM(256, 768, 3)
	res, err := Connectivity(g, Config{K: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 1 {
		t.Fatalf("components = %d, want 1", res.Components)
	}
	checkGolden(t, "connectivity", &res.Metrics, goldenMetrics{
		rounds: 318, messages: 7162, payload: 387298,
		maxLink: 173168, totalBits: 2882200, fingerprint: 2744927441185012788,
	})
}

func TestGoldenConnectivityEdgeCheckMetrics(t *testing.T) {
	g := GNM(200, 520, 5)
	res, err := Connectivity(g, Config{K: 4, Seed: 17, EdgeCheckSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 1 {
		t.Fatalf("components = %d, want 1", res.Components)
	}
	checkGolden(t, "edgecheck", &res.Metrics, goldenMetrics{
		rounds: 132, messages: 4319, payload: 40582,
		maxLink: 45968, totalBits: 509152, fingerprint: 3973943383982545545,
	})
}

func TestGoldenMSTMetrics(t *testing.T) {
	g := WithDistinctWeights(GNM(128, 384, 2), 2)
	res, err := MST(g, MSTConfig{Config: Config{K: 4, Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range res.Edges {
		total += e.W
	}
	if len(res.Edges) != 127 {
		t.Fatalf("MST edges = %d, want 127", len(res.Edges))
	}
	if total != 9531 {
		t.Fatalf("MST weight = %d, want 9531", total)
	}
	checkGolden(t, "mst", &res.Metrics, goldenMetrics{
		rounds: 828, messages: 10907, payload: 507622,
		maxLink: 390648, totalBits: 3704144, fingerprint: 7017780424165610457,
	})
}

func TestGoldenDynamicMetrics(t *testing.T) {
	stream := RandomChurnStream(128, 384, 6, 12, 0.4, 7)
	sess, err := NewDynamic(stream.Initial, DynamicConfig{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var trace string
	for i, batch := range stream.Batches {
		br, err := sess.ApplyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		q, err := sess.Query()
		if err != nil {
			t.Fatal(err)
		}
		trace += fmt.Sprintf("[%d:%d/%d/%d]", i, br.Applied, q.Components, q.Rounds)
	}
	met, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	const wantTrace = "[0:12/1/264][1:12/1/71][2:12/1/50][3:12/1/45][4:12/1/66][5:12/1/24]"
	if trace != wantTrace {
		t.Errorf("dynamic trace drifted:\n got:  %s\n want: %s", trace, wantTrace)
	}
	checkGolden(t, "dynamic", met, goldenMetrics{
		rounds: 534, messages: 5730, payload: 239202,
		maxLink: 175936, totalBits: 1816896, fingerprint: 17654665923677721495,
	})
}

func TestGoldenClusterResidentMetrics(t *testing.T) {
	g := GNM(192, 576, 9)
	c, err := NewCluster(g, WithK(4), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var trace string
	for j := 0; j < 3; j++ {
		q, err := c.Connectivity(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		trace += fmt.Sprintf("[%d:%d/%d]", j, q.Components, q.Rounds)
	}
	mst, err := c.MST(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	trace += fmt.Sprintf("[mst:%d]", len(mst.Edges))
	const wantTrace = "[0:1/338][1:1/24][2:1/23][mst:191]"
	if trace != wantTrace {
		t.Errorf("resident trace drifted:\n got:  %s\n want: %s", trace, wantTrace)
	}
}
