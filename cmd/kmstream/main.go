// Command kmstream replays a batched edge-update stream against a dynamic
// k-machine session and reports per-batch costs: rounds to apply the
// batch, rounds to answer the connectivity query incrementally, and —
// for comparison — the rounds a fresh static Connectivity run costs on
// the same snapshot. Query answers are checked against the sequential
// oracle.
//
// Usage:
//
//	kmstream [-gen churn|window|splitmerge]
//	         [-n 10000] [-m 30000] [-batches 10] [-batchsize 300]
//	         [-delfrac 0.5] [-window 30000] [-comps 8]
//	         [-k 8] [-seed 1] [-timeout 0]
//	         [-static every|first|off] [-oracle]
//
// The acceptance workload of the dynamic subsystem is the default: a
// 10k-vertex graph under 1% churn batches, where incremental per-batch
// rounds must come in strictly below the fresh static run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"kmgraph"
)

// jobCtx maps the -timeout flag to a job context (0 = no deadline).
func jobCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

func buildStream(gen string, n, m, batches, batchSize, window, comps int, delFrac float64, seed int64) (*kmgraph.UpdateStream, error) {
	switch gen {
	case "churn":
		return kmgraph.RandomChurnStream(n, m, batches, batchSize, delFrac, seed), nil
	case "window":
		return kmgraph.SlidingWindowStream(n, window, batches, batchSize, seed), nil
	case "splitmerge":
		return kmgraph.SplitMergeStream(n, comps, batches, seed), nil
	default:
		return nil, fmt.Errorf("unknown stream generator %q", gen)
	}
}

// oracleCheck compares a query answer against the sequential oracle on
// the snapshot: component count and the full partition.
func oracleCheck(snap *kmgraph.Graph, q *kmgraph.QueryResult) bool {
	labels, count := kmgraph.ComponentsOracle(snap)
	if q.Components != count {
		return false
	}
	min := make(map[uint64]int)
	for v, l := range q.Labels {
		if m, ok := min[l]; !ok || v < m {
			min[l] = v
		}
	}
	for v, l := range q.Labels {
		if min[l] != labels[v] {
			return false
		}
	}
	return true
}

func main() {
	gen := flag.String("gen", "churn", "stream generator: churn|window|splitmerge")
	n := flag.Int("n", 10_000, "vertices")
	m := flag.Int("m", 0, "initial edges (churn; default 3n)")
	batches := flag.Int("batches", 10, "number of update batches")
	batchSize := flag.Int("batchsize", 0, "ops per batch (default 1% of m)")
	delFrac := flag.Float64("delfrac", 0.5, "deletion fraction (churn)")
	window := flag.Int("window", 0, "live-edge window (window; default 3n)")
	comps := flag.Int("comps", 8, "component blocks (splitmerge)")
	k := flag.Int("k", 8, "machines")
	seed := flag.Int64("seed", 1, "seed")
	timeout := flag.Duration("timeout", 0, "per-job deadline (0 = none), e.g. 30s")
	static := flag.String("static", "every", "compare against a fresh static run: every|first|off")
	oracle := flag.Bool("oracle", true, "check every query against the sequential oracle")
	flag.Parse()

	if *m == 0 {
		*m = 3 * *n
	}
	if *window == 0 {
		*window = 3 * *n
	}
	if *batchSize == 0 {
		*batchSize = *m / 100
	}
	stream, err := buildStream(*gen, *n, *m, *batches, *batchSize, *window, *comps, *delFrac, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sess, err := kmgraph.NewCluster(stream.Initial, kmgraph.WithK(*k), kmgraph.WithSeed(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sess.Close()

	fmt.Printf("stream: %s n=%d m0=%d batches=%d; cluster: k=%d B=%d bits/link/round, load %d rounds\n",
		*gen, stream.Initial.N(), stream.Initial.M(), len(stream.Batches), *k,
		kmgraph.DefaultBandwidth(stream.Initial.N()), sess.Metrics().LoadRounds)

	ctx, cancel := jobCtx(*timeout)
	q, err := sess.Connectivity(ctx)
	cancel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "build-up query:", err)
		os.Exit(1)
	}
	fmt.Printf("build-up query: %d rounds, %d phases, %d components\n\n",
		q.Rounds, q.Phases, q.Components)

	fmt.Printf("%-6s %-5s %-6s %-7s %-7s %-7s %-9s %-6s %-7s %-8s %-7s\n",
		"batch", "ops", "apply", "query", "phases", "dirty", "comps", "edges", "static", "speedup", "oracle")
	runStatic := func(i int) bool {
		return *static == "every" || (*static == "first" && i == 0)
	}
	snap := stream.Initial
	ok := true
	var sumApply, sumQuery, sumStatic, nStatic int
	for i, ops := range stream.Batches {
		ctx, cancel := jobCtx(*timeout)
		br, err := sess.ApplyBatch(ctx, ops)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "batch %d: %v\n", i, err)
			os.Exit(1)
		}
		snap = kmgraph.ApplyOps(snap, ops)
		ctx, cancel = jobCtx(*timeout)
		q, err := sess.Connectivity(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "query %d: %v\n", i, err)
			os.Exit(1)
		}
		sumApply += br.Rounds
		sumQuery += q.Rounds

		staticCell, speedupCell := "-", "-"
		if runStatic(i) {
			st, err := kmgraph.Connectivity(snap, kmgraph.Config{K: *k, Seed: *seed})
			if err != nil {
				fmt.Fprintf(os.Stderr, "static run %d: %v\n", i, err)
				os.Exit(1)
			}
			sumStatic += st.Metrics.Rounds
			nStatic++
			staticCell = fmt.Sprintf("%d", st.Metrics.Rounds)
			speedupCell = fmt.Sprintf("%.1fx", float64(st.Metrics.Rounds)/float64(br.Rounds+q.Rounds))
			if q.Components != st.Components {
				ok = false
			}
		}
		oracleCell := "-"
		if *oracle {
			if oracleCheck(snap, q) {
				oracleCell = "ok"
			} else {
				oracleCell = "MISMATCH"
				ok = false
			}
		}
		fmt.Printf("%-6d %-5d %-6d %-7d %-7d %-7d %-9d %-6d %-7s %-8s %-7s\n",
			i, len(ops), br.Rounds, q.Rounds, q.Phases, q.RelabeledVertices,
			q.Components, snap.M(), staticCell, speedupCell, oracleCell)
	}

	fmt.Printf("\ntotals: apply=%d rounds, query=%d rounds over %d batches (mean %.1f + %.1f per batch)\n",
		sumApply, sumQuery, len(stream.Batches),
		float64(sumApply)/float64(len(stream.Batches)),
		float64(sumQuery)/float64(len(stream.Batches)))
	if nStatic > 0 {
		fmt.Printf("static: mean %.1f rounds per snapshot; incremental speedup %.1fx\n",
			float64(sumStatic)/float64(nStatic),
			float64(sumStatic)/float64(nStatic)/
				(float64(sumApply+sumQuery)/float64(len(stream.Batches))))
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "FAILED: query answers diverged from oracle/static results")
		os.Exit(1)
	}
}
