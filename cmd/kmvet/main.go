// Command kmvet runs the engine's domain-specific static-analysis suite
// over the given package patterns (default ./...). It exits non-zero if
// any diagnostic survives //kmvet:ignore suppression — including ignores
// with no justification, which are themselves findings.
//
// Usage:
//
//	kmvet [-waivers] [packages]
//
// Diagnostics print as file:line:col: message [analyzer]. With -waivers,
// accepted suppressions are listed with their justifications after the
// diagnostics (informational; they do not affect the exit code).
package main

import (
	"flag"
	"fmt"
	"os"

	"kmgraph/internal/analysis"
	"kmgraph/internal/analysis/kit"
)

func main() {
	showWaivers := flag.Bool("waivers", false, "list accepted //kmvet:ignore suppressions with their justifications")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kmvet [-waivers] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmvet:", err)
		os.Exit(2)
	}

	corpus, err := kit.Load(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmvet:", err)
		os.Exit(2)
	}
	diags, waivers, err := kit.RunAnalyzers(corpus, analysis.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmvet:", err)
		os.Exit(2)
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if *showWaivers {
		for _, w := range waivers {
			fmt.Printf("waived: %s: %s [%s] — %s\n", w.Pos, w.Message, w.Analyzer, w.Reason)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kmvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
