// Command kmload is a closed-loop load generator for kmserve: a fixed
// set of workers issues a mixed workload against one hosted graph for a
// fixed duration, each worker sending its next request as soon as the
// previous one answers. It records per-family and overall throughput
// and latency percentiles, printing a summary and optionally writing
// the shared kmachine-bench/v2 JSON (internal/benchfmt) so serving
// performance joins the engine-benchmark trajectory.
//
// Usage:
//
//	kmload -addr http://localhost:8471 -graph web
//	       [-c 8] [-duration 10s] [-timeout 30s] [-seed 1]
//	       [-mix connectivity=8,metrics=2,mst=1,batch=1]
//	       [-batch-size 16] [-json BENCH_serve.json]
//
// The mix is a comma-separated weight per request family: connectivity,
// spanning-tree, mst, mincut, verify (bipartiteness), batch (random
// edge churn), metrics. 429 backpressure refusals are counted
// separately from errors — load shedding is the server working as
// designed — and are excluded from the latency population. Errors are
// classified by cause (non-2xx response, client timeout, transport
// failure), broken down per family in the summary and in the JSON.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"kmgraph/internal/benchfmt"
)

// op is one workload family: a name and a request builder.
type op struct {
	name   string
	weight int
}

func parseMix(spec string) ([]op, error) {
	known := map[string]bool{
		"connectivity": true, "spanning-tree": true, "mst": true,
		"mincut": true, "verify": true, "batch": true, "metrics": true,
	}
	var mix []op
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, "=")
		w := 1
		if found {
			var err error
			w, err = strconv.Atoi(wstr)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("bad weight in %q", part)
			}
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown request family %q", name)
		}
		if w > 0 {
			mix = append(mix, op{name: name, weight: w})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return mix, nil
}

// pick draws a family from the weighted mix.
func pick(mix []op, rng *rand.Rand) string {
	total := 0
	for _, o := range mix {
		total += o.weight
	}
	r := rng.Intn(total)
	for _, o := range mix {
		if r < o.weight {
			return o.name
		}
		r -= o.weight
	}
	return mix[len(mix)-1].name
}

// errKind classifies a failed request by cause.
type errKind int

const (
	errNone errKind = iota
	errNon2xx
	errTimeout
	errTransport
)

// classifyErr maps a client error to timeout vs transport. net/http
// wraps everything in *url.Error; its Timeout() covers both the
// Client.Timeout path and dial/read deadlines, and DeadlineExceeded
// catches context-propagated expiry.
func classifyErr(err error) errKind {
	var ue *url.Error
	if errors.As(err, &ue) && ue.Timeout() {
		return errTimeout
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return errTimeout
	}
	return errTransport
}

// sample is one completed request.
type sample struct {
	family  string
	latency time.Duration
	status  int
	kind    errKind
}

func main() {
	addr := flag.String("addr", "http://localhost:8471", "kmserve base URL")
	graph := flag.String("graph", "", "graph name to load against (required)")
	conc := flag.Int("c", 8, "concurrent closed-loop workers")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request job deadline (?timeout=)")
	seed := flag.Int64("seed", 1, "workload seed")
	mixSpec := flag.String("mix", "connectivity=8,metrics=2,batch=1", "weighted request mix")
	batchSize := flag.Int("batch-size", 16, "edge ops per batch request")
	jsonPath := flag.String("json", "", "write kmachine-bench/v2 results to this file")
	flag.Parse()

	if *graph == "" {
		fmt.Fprintln(os.Stderr, "kmload: -graph is required")
		os.Exit(2)
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kmload: -mix: %v\n", err)
		os.Exit(2)
	}

	base := strings.TrimRight(*addr, "/") + "/graphs/" + *graph
	client := &http.Client{Timeout: *timeout + 10*time.Second}

	// Sizing probe: n bounds the random endpoints of batch churn.
	var info struct {
		N     int `json:"n"`
		Edges int `json:"edges"`
	}
	if err := getJSON(client, base, &info); err != nil {
		fmt.Fprintf(os.Stderr, "kmload: probing %s: %v\n", base, err)
		os.Exit(1)
	}
	for _, o := range mix {
		if o.name == "batch" && info.N < 2 {
			fmt.Fprintf(os.Stderr, "kmload: graph %q has %d vertices; the batch family needs at least 2\n", *graph, info.N)
			os.Exit(2)
		}
	}
	fmt.Printf("kmload: %s n=%d m=%d; %d workers, %v, mix %s\n",
		*graph, info.N, info.Edges, *conc, *duration, *mixSpec)

	timeoutParam := "timeout=" + timeout.String()
	urlFor := func(family string) string {
		switch family {
		case "metrics":
			return base + "/metrics"
		default:
			return base + "/" + family + "?" + timeoutParam
		}
	}

	var (
		mu      sync.Mutex
		samples []sample
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			var local []sample
			for time.Now().Before(deadline) {
				family := pick(mix, rng)
				var (
					resp *http.Response
					err  error
				)
				t0 := time.Now()
				switch family {
				case "batch":
					ops := make([]map[string]any, *batchSize)
					for i := range ops {
						u, v := rng.Intn(info.N), rng.Intn(info.N)
						for v == u {
							v = rng.Intn(info.N)
						}
						ops[i] = map[string]any{"u": u, "v": v, "del": rng.Intn(3) == 0}
					}
					body, _ := json.Marshal(map[string]any{"ops": ops})
					resp, err = client.Post(urlFor(family), "application/json", bytes.NewReader(body))
				case "verify":
					body, _ := json.Marshal(map[string]any{"problem": "bipartite"})
					resp, err = client.Post(urlFor(family), "application/json", bytes.NewReader(body))
				default:
					resp, err = client.Get(urlFor(family))
				}
				s := sample{family: family, latency: time.Since(t0)}
				if err != nil {
					s.kind = classifyErr(err)
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					s.status = resp.StatusCode
					if resp.StatusCode >= 400 && resp.StatusCode != http.StatusTooManyRequests {
						s.kind = errNon2xx
					}
				}
				local = append(local, s)
				if s.status == http.StatusTooManyRequests {
					// Closed-loop politeness: back off briefly on shed load.
					time.Sleep(5 * time.Millisecond)
				}
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	results := summarize(samples, elapsed)
	for _, r := range results {
		fmt.Printf("%-26s %7d req %8.1f req/s  p50 %8.2fms  p90 %8.2fms  p99 %8.2fms  %d rejected  %d errors",
			r.Name, r.Requests, r.RequestsPerSec,
			r.P50Ns/1e6, r.P90Ns/1e6, r.P99Ns/1e6, r.Rejected, r.Errors)
		if r.Errors > 0 {
			fmt.Printf(" (%d non-2xx, %d timeout, %d transport)",
				r.Non2xx, r.Timeouts, r.TransportErrors)
		}
		fmt.Println()
	}
	if *jsonPath != "" {
		if err := benchfmt.WriteFile(*jsonPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "kmload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	for _, r := range results {
		if r.Errors > 0 {
			os.Exit(1)
		}
	}
}

// summarize folds samples into per-family results plus an overall row,
// excluding 429s from the latency population (they answer in
// microseconds and would flatter every percentile). Errors carry their
// cause breakdown into the results.
func summarize(samples []sample, elapsed time.Duration) []benchfmt.Result {
	perFamily := make(map[string][]time.Duration)
	errs := make(map[string]*benchfmt.ErrorCounts)
	rejected := make(map[string]int64)
	var all []time.Duration
	var allErrs benchfmt.ErrorCounts
	var allRejected int64
	errsFor := func(f string) *benchfmt.ErrorCounts {
		ec, ok := errs[f]
		if !ok {
			ec = &benchfmt.ErrorCounts{}
			errs[f] = ec
		}
		return ec
	}
	for _, s := range samples {
		switch {
		case s.kind != errNone:
			ec := errsFor(s.family)
			switch s.kind {
			case errNon2xx:
				ec.Non2xx++
				allErrs.Non2xx++
			case errTimeout:
				ec.Timeouts++
				allErrs.Timeouts++
			case errTransport:
				ec.Transport++
				allErrs.Transport++
			}
		case s.status == http.StatusTooManyRequests:
			rejected[s.family]++
			allRejected++
		default:
			perFamily[s.family] = append(perFamily[s.family], s.latency)
			all = append(all, s.latency)
		}
	}
	families := make([]string, 0, len(perFamily))
	for f := range perFamily {
		families = append(families, f)
	}
	for f := range errs {
		if _, ok := perFamily[f]; !ok {
			families = append(families, f)
		}
	}
	for f := range rejected {
		if _, ok := perFamily[f]; !ok && errs[f] == nil {
			families = append(families, f)
		}
	}
	sort.Strings(families)

	results := []benchfmt.Result{
		benchfmt.Summarize("ServeLoad/overall", all, elapsed, allErrs, allRejected),
	}
	for _, f := range families {
		var ec benchfmt.ErrorCounts
		if e := errs[f]; e != nil {
			ec = *e
		}
		results = append(results,
			benchfmt.Summarize("ServeLoad/"+f, perFamily[f], elapsed, ec, rejected[f]))
	}
	return results
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}
