// Command kmserve serves a registry of resident k-machine clusters over
// HTTP/JSON: every job family of the Cluster API — connectivity,
// spanning-tree, MST, approximate min-cut, verification, dynamic edge
// batches, metrics — becomes an endpoint, with per-request deadlines,
// bounded admission queues with 429 backpressure, and an epoch-keyed
// result cache so repeated queries on an unchanged graph cost zero
// simulation rounds.
//
// Usage:
//
//	kmserve -graph web=web.kmgs -graph social=edges.txt [-addr :8471]
//	        [-k 16] [-seed 1] [-max-queue 16] [-timeout 60s] [-cache 128]
//	        [-allow-load] [-debug-addr :8472] [-log-requests]
//
// Each -graph name=path loads a kmgs store (shard-direct, never
// materialized) or a text edge list at startup. With -allow-load,
// clients may also POST /graphs {"name":..., "path":...} to load more
// at runtime and DELETE /graphs/{name} to drop them.
//
// Each -fleet name=source@addr1,addr2,... registers a distributed-backed
// graph: jobs run over a kmworker fleet instead of a resident cluster,
// with heartbeat supervision and retry recovery (-fleet-retries,
// -fleet-heartbeat-timeout), and degrade gracefully — an unhealthy
// fleet answers 503 with Retry-After instead of hanging, and the
// kmserve_graph_state gauge tracks fleet health on /metrics.
//
// Endpoints (all JSON):
//
//	GET    /healthz
//	GET    /metrics                             (Prometheus text exposition)
//	GET    /version
//	GET    /graphs
//	POST   /graphs                              (with -allow-load)
//	DELETE /graphs/{name}                       (with -allow-load)
//	GET    /graphs/{name}
//	GET    /graphs/{name}/connectivity          ?labels=true&forest=true&timeout=30s
//	GET    /graphs/{name}/spanning-tree
//	GET    /graphs/{name}/mst                   ?strong=true&edges=true
//	GET    /graphs/{name}/mincut                ?trials=3&maxlevel=40
//	POST   /graphs/{name}/verify                {"problem":"bipartite", ...}
//	POST   /graphs/{name}/batch                 {"ops":[{"u":0,"v":1}, ...]}
//	GET    /graphs/{name}/metrics
//	GET    /graphs/{name}/trace                 (Chrome trace-event JSON)
//	GET    /fleet
//	GET    /fleet/{name}                        (503 body when the fleet is down)
//	GET    /fleet/{name}/connectivity           ?labels=true&timeout=30s
//	GET    /fleet/{name}/mst                    ?edges=true
//
// With -debug-addr, a second private listener serves net/http/pprof
// under /debug/pprof/. With -log-requests, every request emits one
// structured JSON log record (request ID, endpoint, status, duration)
// to stderr; the request ID is echoed as X-Request-Id and threaded
// through job execution.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // mounted on the -debug-addr listener only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kmgraph"
	"kmgraph/internal/core"
	"kmgraph/internal/dist"
	"kmgraph/internal/server"
)

func main() {
	addr := flag.String("addr", ":8471", "listen address")
	k := flag.Int("k", 16, "machines per cluster for -graph loads")
	seed := flag.Int64("seed", 1, "seed for -graph loads")
	maxQueue := flag.Int("max-queue", 16, "per-graph admission queue bound (running job included)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request job deadline")
	cache := flag.Int("cache", 128, "per-graph result cache entries (0 disables)")
	allowLoad := flag.Bool("allow-load", false, "allow POST /graphs and DELETE /graphs/{name}")
	debugAddr := flag.String("debug-addr", "", "if set, serve net/http/pprof on this address (keep it private)")
	logRequests := flag.Bool("log-requests", false, "emit one structured (JSON, stderr) log record per request")
	retries := flag.Int("fleet-retries", 3, "job attempts per fleet request (1 disables retry)")
	hbTimeout := flag.Duration("fleet-heartbeat-timeout", 30*time.Second, "silence tolerated on a fleet worker before declaring it stalled")
	var loads []string
	flag.Func("graph", "name=path of a kmgs store or text edge list to serve (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=path, got %q", v)
		}
		loads = append(loads, v)
		return nil
	})
	var fleets []string
	flag.Func("fleet", "name=source@addr1,addr2,... distributed-backed graph over a kmworker fleet (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") || !strings.Contains(v, "@") {
			return fmt.Errorf("want name=source@addr1,addr2,..., got %q", v)
		}
		fleets = append(fleets, v)
		return nil
	})
	flag.Parse()

	if len(loads) == 0 && len(fleets) == 0 && !*allowLoad {
		fmt.Fprintln(os.Stderr, "kmserve: nothing to serve: pass at least one -graph name=path, -fleet name=source@addrs, or -allow-load")
		os.Exit(2)
	}

	cacheEntries := *cache
	if cacheEntries == 0 {
		cacheEntries = -1 // flag semantics: 0 disables (server: negative disables)
	}
	var logger *slog.Logger
	if *logRequests {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv := server.New(server.Config{
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		CacheEntries:   cacheEntries,
		AllowLoad:      *allowLoad,
		DefaultK:       *k,
		DefaultSeed:    *seed,
		Logger:         logger,
	})
	for _, spec := range loads {
		name, path, _ := strings.Cut(spec, "=")
		start := time.Now()
		// The observer is wired before the cluster exists so even the
		// load phase lands in the graph's metrics and trace buffer.
		c, err := kmgraph.OpenCluster(path,
			kmgraph.WithK(*k), kmgraph.WithSeed(*seed),
			kmgraph.WithObserver(srv.JobObserver(name)),
			kmgraph.WithPhaseMetrics())
		if err != nil {
			fmt.Fprintf(os.Stderr, "kmserve: loading %q from %s: %v\n", name, path, err)
			os.Exit(1)
		}
		if err := srv.Register(name, c); err != nil {
			fmt.Fprintf(os.Stderr, "kmserve: %v\n", err)
			os.Exit(1)
		}
		met := c.Metrics()
		fmt.Printf("kmserve: loaded %q from %s: n=%d m=%d k=%d (%d load rounds, %v)\n",
			name, path, c.N(), met.Edges, c.K(), met.LoadRounds, time.Since(start).Round(time.Millisecond))
	}
	for _, spec := range fleets {
		name, rest, _ := strings.Cut(spec, "=")
		source, addrList, _ := strings.Cut(rest, "@")
		addrs := strings.Split(addrList, ",")
		err := srv.RegisterFleet(name, server.FleetSpec{
			Source: source,
			Addrs:  addrs,
			Conn:   core.Config{K: *k, Seed: *seed},
			Coord: dist.CoordOptions{
				HeartbeatTimeout: *hbTimeout,
				Retry:            dist.RetryPolicy{Attempts: *retries},
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kmserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kmserve: fleet %q: source %s over %d workers (k=%d, %d attempts)\n",
			name, source, len(addrs), *k, *retries)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("kmserve: listening on %s\n", *addr)

	if *debugAddr != "" {
		// The pprof mux lives on its own listener so profiling endpoints
		// are never exposed on the serving address.
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "kmserve: debug listener: %v\n", err)
			}
		}()
		fmt.Printf("kmserve: pprof on %s/debug/pprof/\n", *debugAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "kmserve: %v\n", err)
		srv.Close()
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("kmserve: %v: draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			// Grace period expired with jobs still running: close the
			// connections so request contexts cancel and in-flight jobs
			// abort at their next phase boundary, instead of blocking
			// srv.Close() for the rest of a long computation.
			hs.Close()
		}
		srv.Close()
	}
}
