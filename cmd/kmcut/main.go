// Command kmcut estimates the minimum cut of a generated network with the
// O(log n)-approximation of Theorem 3 and compares it to the exact
// Stoer–Wagner oracle.
//
// Usage:
//
//	kmcut [-graph cycle|bridged|complete|gnm] [-n 64] [-bridges 4] [-k 8] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"kmgraph"
)

func main() {
	kind := flag.String("graph", "bridged", "cycle|bridged|complete|gnm")
	n := flag.Int("n", 64, "size parameter")
	bridges := flag.Int("bridges", 4, "bridge edges (bridged)")
	k := flag.Int("k", 8, "machines")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	var g *kmgraph.Graph
	switch *kind {
	case "cycle":
		g = kmgraph.Cycle(*n)
	case "bridged":
		g = kmgraph.TwoCliquesBridged(*n/2, *bridges, *seed)
	case "complete":
		g = kmgraph.Complete(*n)
	case "gnm":
		g = kmgraph.GNM(*n, 4**n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph %q\n", *kind)
		os.Exit(1)
	}

	trueCut := kmgraph.MinCutOracle(g)
	res, err := kmgraph.ApproxMinCut(g, kmgraph.MinCutConfig{
		Config: kmgraph.Config{K: *k, Seed: *seed},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("graph: %s n=%d m=%d\n", *kind, g.N(), g.M())
	fmt.Printf("true min cut (Stoer–Wagner oracle): %d\n", trueCut)
	fmt.Printf("distributed estimate: %.1f (first disconnecting sampling level: %d)\n",
		res.Estimate, res.Level)
	fmt.Printf("cost: %d connectivity runs, %d rounds total\n", res.Runs, res.Rounds)
}
