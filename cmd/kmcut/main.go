// Command kmcut estimates the minimum cut of a generated network with the
// O(log n)-approximation of Theorem 3 — served from a resident Cluster —
// and compares it to the exact Stoer–Wagner oracle. -timeout bounds the
// whole job via context.WithTimeout.
//
// Usage:
//
//	kmcut [-graph cycle|bridged|complete|gnm] [-n 64] [-bridges 4]
//	      [-k 8] [-seed 1] [-timeout 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"kmgraph"
)

// jobCtx maps the -timeout flag to a job context (0 = no deadline).
func jobCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

func main() {
	kind := flag.String("graph", "bridged", "cycle|bridged|complete|gnm")
	n := flag.Int("n", 64, "size parameter")
	bridges := flag.Int("bridges", 4, "bridge edges (bridged)")
	k := flag.Int("k", 8, "machines")
	seed := flag.Int64("seed", 1, "seed")
	timeout := flag.Duration("timeout", 0, "job deadline (0 = none), e.g. 30s")
	flag.Parse()

	var g *kmgraph.Graph
	switch *kind {
	case "cycle":
		g = kmgraph.Cycle(*n)
	case "bridged":
		g = kmgraph.TwoCliquesBridged(*n/2, *bridges, *seed)
	case "complete":
		g = kmgraph.Complete(*n)
	case "gnm":
		g = kmgraph.GNM(*n, 4**n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph %q\n", *kind)
		os.Exit(1)
	}

	trueCut := kmgraph.MinCutOracle(g)
	cl, err := kmgraph.NewCluster(g, kmgraph.WithK(*k), kmgraph.WithSeed(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cl.Close()
	ctx, cancel := jobCtx(*timeout)
	defer cancel()
	res, err := cl.ApproxMinCut(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	met := cl.Metrics()
	fmt.Printf("graph: %s n=%d m=%d\n", *kind, g.N(), g.M())
	fmt.Printf("true min cut (Stoer–Wagner oracle): %d\n", trueCut)
	fmt.Printf("distributed estimate: %.1f (first disconnecting sampling level: %d)\n",
		res.Estimate, res.Level)
	fmt.Printf("cost: %d connectivity runs on one residency, load %d + trials %d rounds\n",
		res.Runs, met.LoadRounds, res.Rounds)
}
