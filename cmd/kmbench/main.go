// Command kmbench runs the paper-reproduction experiment harness
// (E1..E12) and prints the result tables, optionally writing CSVs.
//
// With -json it instead runs the engine-throughput microbenchmarks
// (wall-clock, allocations, and model rounds for the simulator hot paths)
// and writes machine-readable results, so the simulator's performance
// trajectory is tracked across PRs.
//
// With -trace it runs one resident connectivity job (on a generated
// graph, or -store for a kmgs container) with the phase tracer attached
// and writes the Chrome trace-event JSON (Perfetto / chrome://tracing).
//
// Usage:
//
// With -shootout it runs E18: the identical connectivity job on the
// local (in-process) and TCP (multi-worker) transport backends —
// rounds, messages, and all per-link bits are equal by construction and
// asserted so — and writes both wall-clock entries as
// kmachine-bench/v2, with wire-level totals (bytes on the wire vs model
// payload bytes, barrier-wait skew) on stdout.
//
// Usage:
//
//	kmbench [-quick] [-exp E1,E6] [-seed 42] [-trials 3] [-csv dir]
//	kmbench -json BENCH_kmachine.json [-store graph.kmgs]
//	kmbench -trace out.json [-store graph.kmgs] [-n 2048] [-store-k 16]
//	kmbench -shootout SHOOTOUT.json [-n 100000] [-store-k 16] [-workers 2]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"kmgraph"
	"kmgraph/internal/benchfmt"
	"kmgraph/internal/core"
	"kmgraph/internal/dist"
	"kmgraph/internal/graph"
	"kmgraph/internal/procstat"
	"kmgraph/internal/telemetry"
	"kmgraph/internal/transport/tcp"
)

// benchResult is one engine-throughput measurement in the shared
// kmachine-bench/v2 schema (internal/benchfmt, also written by
// cmd/kmload for serving benchmarks). Rounds is the model cost of a
// single operation (independent of wall-clock), so regressions in
// either dimension are visible separately. GraphLoadMs is the wall time
// spent building or loading this benchmark's input graph (one-time,
// outside the op loop); MaxRSSBytes is the process's peak resident set
// as of the end of this benchmark — cumulative and monotone across the
// run, so the interesting signal is the *increase* over the preceding
// entry and the input-loading benchmarks are ordered smallest-first.
type benchResult = benchfmt.Result

func measure(name string, rounds int, loadMs float64, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	if r.N == 0 {
		fmt.Fprintf(os.Stderr, "benchmark %s failed (b.Fatal inside the loop)\n", name)
		os.Exit(1)
	}
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Rounds:      rounds,
		GraphLoadMs: loadMs,
		MaxRSSBytes: procstat.MaxRSSBytes(),
	}
}

// timed runs fn and returns its wall time in milliseconds.
func timed(fn func()) float64 {
	start := time.Now()
	fn()
	return float64(time.Since(start).Nanoseconds()) / 1e6
}

// engineBenchmarks mirrors the repo's hot-path Go benchmarks: one-shot
// connectivity at three scales, one-shot MST, a resident dynamic churn
// batch, and the resident-Cluster reuse loop.
func engineBenchmarks() ([]benchResult, error) {
	var results []benchResult

	for _, size := range []struct{ n, k int }{{512, 4}, {1024, 8}, {2048, 16}} {
		var g *kmgraph.Graph
		loadMs := timed(func() { g = kmgraph.GNM(size.n, 3*size.n, 1) })
		probe, err := kmgraph.Connectivity(g, kmgraph.Config{K: size.k, Seed: 0})
		if err != nil {
			return nil, err
		}
		results = append(results, measure(
			fmt.Sprintf("ConnectivitySketch/n%d_k%d", size.n, size.k), probe.Metrics.Rounds, loadMs,
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := kmgraph.Connectivity(g, kmgraph.Config{K: size.k, Seed: int64(i)}); err != nil {
						b.Fatal(err)
					}
				}
			}))
	}

	{
		var g *kmgraph.Graph
		loadMs := timed(func() { g = kmgraph.WithDistinctWeights(kmgraph.GNM(512, 1536, 1), 2) })
		probe, err := kmgraph.MST(g, kmgraph.MSTConfig{Config: kmgraph.Config{K: 8, Seed: 0}})
		if err != nil {
			return nil, err
		}
		results = append(results, measure("MSTSketch/n512_k8", probe.Metrics.Rounds, loadMs,
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := kmgraph.MST(g, kmgraph.MSTConfig{Config: kmgraph.Config{K: 8, Seed: int64(i)}}); err != nil {
						b.Fatal(err)
					}
				}
			}))
	}

	{
		n, m, k := 1024, 3072, 8
		var meanRounds int
		results = append(results, measure("DynamicBatchMixedChurn/n1024_k8", 0, 0,
			func(b *testing.B) {
				stream := kmgraph.RandomChurnStream(n, m, b.N, 30, 0.5, 7)
				sess, err := kmgraph.NewDynamic(stream.Initial, kmgraph.DynamicConfig{K: k, Seed: 7, MaxRounds: 1 << 30})
				if err != nil {
					b.Fatal(err)
				}
				defer sess.Close()
				if _, err := sess.Query(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				rounds := 0
				for i := 0; i < b.N; i++ {
					br, err := sess.ApplyBatch(stream.Batches[i])
					if err != nil {
						b.Fatal(err)
					}
					q, err := sess.Query()
					if err != nil {
						b.Fatal(err)
					}
					rounds += br.Rounds + q.Rounds
				}
				b.StopTimer()
				meanRounds = rounds / b.N
			}))
		results[len(results)-1].Rounds = meanRounds
	}

	{
		var g *kmgraph.Graph
		loadMs := timed(func() { g = kmgraph.GNM(1024, 3072, 7) })
		ctx := context.Background()
		const jobs = 8
		var meanRounds int
		results = append(results, measure("ClusterReuseResident/n1024_k8", 0, loadMs,
			func(b *testing.B) {
				b.ReportAllocs()
				rounds := 0
				for i := 0; i < b.N; i++ {
					c, err := kmgraph.NewCluster(g, kmgraph.WithK(8), kmgraph.WithSeed(7), kmgraph.WithMaxRounds(1<<30))
					if err != nil {
						b.Fatal(err)
					}
					for j := 0; j < jobs; j++ {
						q, err := c.Connectivity(ctx)
						if err != nil {
							b.Fatal(err)
						}
						rounds += q.Rounds
					}
					rounds += c.Metrics().LoadRounds
					c.Close()
				}
				meanRounds = rounds / (b.N * jobs)
			}))
		results[len(results)-1].Rounds = meanRounds
	}

	return results, nil
}

// storeBenchmark measures the shard-direct serving path against a kmgs
// store: wall time and engine rounds of OpenCluster + one Connectivity
// query, with the load wall time recorded in graph_load_ms.
func storeBenchmark(storePath string, k int, seed int64) (benchResult, error) {
	ctx := context.Background()
	var loadMs float64
	var rounds int
	name := fmt.Sprintf("StoreShardDirect/%s_k%d_seed%d", filepath.Base(storePath), k, seed)
	res := measure(name, 0, 0,
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var c *kmgraph.Cluster
				var err error
				loadMs = timed(func() {
					c, err = kmgraph.OpenCluster(storePath,
						kmgraph.WithK(k), kmgraph.WithSeed(seed), kmgraph.WithMaxRounds(1<<30))
				})
				if err != nil {
					b.Fatal(err)
				}
				q, err := c.Connectivity(ctx)
				if err != nil {
					c.Close()
					b.Fatal(err)
				}
				rounds = c.Metrics().LoadRounds + q.Rounds
				c.Close()
			}
		})
	res.Rounds = rounds
	res.GraphLoadMs = loadMs
	res.MaxRSSBytes = procstat.MaxRSSBytes()
	return res, nil
}

func runJSON(path, storePath string, storeK int, storeSeed int64) {
	results, err := engineBenchmarks()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if storePath != "" {
		sb, err := storeBenchmark(storePath, storeK, storeSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = append(results, sb)
	}
	if err := benchfmt.WriteFile(path, results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Printf("%-34s %14.0f ns/op %10d B/op %8d allocs/op %6d rounds %8.1f load-ms %6d rss-MB\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Rounds,
			r.GraphLoadMs, r.MaxRSSBytes>>20)
	}
	fmt.Printf("wrote %s\n", path)
}

// distShootout is E18: one connectivity job at (n, k, seed), run once
// on the local backend and once over TCP across in-process workers on
// localhost. Rounds/messages/link bits are bit-equal by construction
// (the golden suite pins it; this asserts it again on the shootout
// graph), so the comparison isolates what the wire costs: wall-clock,
// bytes on the wire vs the model's payload bytes, and barrier skew.
func distShootout(path string, n, k, nWorkers int, seed int64) error {
	m := 3 * n
	spec := fmt.Sprintf("gnm:%d:%d:%d", n, m, seed)
	cfg := core.Config{K: k, Seed: seed}

	reg := telemetry.NewRegistry()
	tcp.RegisterTelemetry(reg)

	localStart := time.Now()
	local, err := core.RunSource(graph.StreamGNM(n, m, seed), cfg)
	if err != nil {
		return err
	}
	localWall := time.Since(localStart)

	addrs := make([]string, nWorkers)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		w := dist.NewWorker(ln, dist.WorkerOptions{})
		go w.Serve()
		defer w.Close()
		addrs[i] = w.Addr()
	}
	tcpStart := time.Now()
	remote, err := dist.RunConnectivity(context.Background(), addrs, spec, cfg)
	if err != nil {
		return err
	}
	tcpWall := time.Since(tcpStart)

	if remote.Components != local.Components || remote.Metrics.Rounds != local.Metrics.Rounds ||
		remote.Metrics.Messages != local.Metrics.Messages ||
		remote.Metrics.PayloadBytes != local.Metrics.PayloadBytes {
		return fmt.Errorf("shootout: TCP run drifted from local (components %d/%d rounds %d/%d)",
			remote.Components, local.Components, remote.Metrics.Rounds, local.Metrics.Rounds)
	}

	var wireBytes, wireFrames int64
	for i := 0; i < nWorkers; i++ {
		l := telemetry.Label{Name: "peer", Value: strconv.Itoa(i)}
		wireBytes += reg.Counter("kmgraph_transport_bytes_sent_total", "", l).Value()
		wireFrames += reg.Counter("kmgraph_transport_frames_sent_total", "", l).Value()
	}
	bw := reg.HistogramWith(nil, "kmgraph_transport_barrier_wait_seconds", "")

	results := []benchResult{
		{
			Name:        fmt.Sprintf("DistShootout/local_n%d_k%d", n, k),
			NsPerOp:     float64(localWall.Nanoseconds()),
			Rounds:      local.Metrics.Rounds,
			MaxRSSBytes: procstat.MaxRSSBytes(),
		},
		{
			Name:        fmt.Sprintf("DistShootout/tcp_w%d_n%d_k%d", nWorkers, n, k),
			NsPerOp:     float64(tcpWall.Nanoseconds()),
			Rounds:      remote.Metrics.Rounds,
			MaxRSSBytes: procstat.MaxRSSBytes(),
		},
	}
	if err := benchfmt.WriteFile(path, results); err != nil {
		return err
	}
	fmt.Printf("E18 shootout: n=%d m=%d k=%d workers=%d seed=%d components=%d\n",
		n, m, k, nWorkers, seed, local.Components)
	fmt.Printf("  rounds %d, messages %d, model payload %d B (identical local/tcp, asserted)\n",
		local.Metrics.Rounds, local.Metrics.Messages, local.Metrics.PayloadBytes)
	fmt.Printf("  local wall %v   tcp wall %v (%.2fx)\n",
		localWall.Round(time.Millisecond), tcpWall.Round(time.Millisecond),
		float64(tcpWall)/float64(localWall))
	fmt.Printf("  wire: %d B in %d frames (%.2fx model payload; framing+done-counts overhead included)\n",
		wireBytes, wireFrames, float64(wireBytes)/float64(local.Metrics.PayloadBytes))
	fmt.Printf("  barrier wait: count=%d mean=%.1fµs p50=%.1fµs p99=%.1fµs\n",
		bw.Count(), 1e6*bw.Sum()/float64(bw.Count()),
		1e6*bw.Quantile(0.5), 1e6*bw.Quantile(0.99))
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runTrace runs one resident connectivity job with the phase tracer
// attached and writes the Chrome trace-event JSON to path.
func runTrace(path, storePath string, n, k int, seed int64) {
	tracer := telemetry.NewJobTracer()
	opts := []kmgraph.ClusterOption{
		kmgraph.WithK(k), kmgraph.WithSeed(seed),
		kmgraph.WithObserver(tracer.Observer()),
		kmgraph.WithPhaseMetrics(),
	}
	var (
		c   *kmgraph.Cluster
		err error
	)
	if storePath != "" {
		c, err = kmgraph.OpenCluster(storePath, opts...)
	} else {
		c, err = kmgraph.NewCluster(kmgraph.GNM(n, 3*n, seed), opts...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()
	res, err := c.Connectivity(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := tracer.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("traced connectivity: n=%d components=%d rounds=%d phases=%d\n",
		c.N(), res.Components, res.Rounds, res.Phases)
	fmt.Printf("wrote %s\n", path)
}

// flagPassed reports whether the named flag was set explicitly.
func flagPassed(name string) bool {
	passed := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps")
	expList := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Int64("seed", 42, "base seed")
	trials := flag.Int("trials", 0, "seeds per configuration (0 = default)")
	csvDir := flag.String("csv", "", "also write tables as CSV files to this directory")
	jsonPath := flag.String("json", "", "run engine-throughput benchmarks and write machine-readable results to this file")
	storePath := flag.String("store", "", "with -json: also benchmark the shard-direct load path against this kmgs store")
	storeK := flag.Int("store-k", 16, "machine count for the -store benchmark")
	storeSeed := flag.Int64("store-seed", 1, "seed for the -store benchmark")
	tracePath := flag.String("trace", "", "run one traced resident connectivity job and write Chrome trace-event JSON to this file")
	traceN := flag.Int("n", 2048, "with -trace or -shootout: vertices of the generated graph")
	shootoutPath := flag.String("shootout", "", "run the E18 local-vs-TCP transport shootout and write kmachine-bench/v2 results to this file")
	shootoutWorkers := flag.Int("workers", 2, "with -shootout: worker process count")
	flag.Parse()

	if *shootoutPath != "" {
		n := *traceN
		if n == 2048 && !flagPassed("n") {
			n = 100000
		}
		if err := distShootout(*shootoutPath, n, *storeK, *shootoutWorkers, *storeSeed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *tracePath != "" {
		runTrace(*tracePath, *storePath, *traceN, *storeK, *storeSeed)
		return
	}
	if *jsonPath != "" {
		runJSON(*jsonPath, *storePath, *storeK, *storeSeed)
		return
	}

	var exps []kmgraph.Experiment
	if *expList == "" {
		exps = kmgraph.AllExperiments()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, err := kmgraph.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}

	params := kmgraph.ExperimentParams{Quick: *quick, Seed: *seed, Trials: *trials}
	for _, e := range exps {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("    reproduces: %s\n\n", e.PaperRef)
		start := time.Now()
		tables, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for i, tb := range tables {
			fmt.Println(tb.Render())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				name := fmt.Sprintf("%s_%d.csv", e.ID, i)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(tb.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
