// Command kmbench runs the paper-reproduction experiment harness
// (E1..E12) and prints the result tables, optionally writing CSVs.
//
// Usage:
//
//	kmbench [-quick] [-exp E1,E6] [-seed 42] [-trials 3] [-csv dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kmgraph"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps")
	expList := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Int64("seed", 42, "base seed")
	trials := flag.Int("trials", 0, "seeds per configuration (0 = default)")
	csvDir := flag.String("csv", "", "also write tables as CSV files to this directory")
	flag.Parse()

	var exps []kmgraph.Experiment
	if *expList == "" {
		exps = kmgraph.AllExperiments()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, err := kmgraph.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}

	params := kmgraph.ExperimentParams{Quick: *quick, Seed: *seed, Trials: *trials}
	for _, e := range exps {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("    reproduces: %s\n\n", e.PaperRef)
		start := time.Now()
		tables, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for i, tb := range tables {
			fmt.Println(tb.Render())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				name := fmt.Sprintf("%s_%d.csv", e.ID, i)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(tb.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
