// Command kmverify runs one or more of the Theorem 4 verification
// problems on a generated instance and reports verdicts and cost. All
// problems run against one resident Cluster (the graph is loaded once);
// -timeout bounds each job via context.WithTimeout.
//
// Usage:
//
//	kmverify -problem bipartite|cycle|scs|stconn|cut|all
//	         [-n 1024] [-k 8] [-seed 1] [-timeout 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"kmgraph"
)

// jobCtx maps the -timeout flag to a job context (0 = no deadline).
func jobCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

func main() {
	problem := flag.String("problem", "bipartite", "bipartite|cycle|scs|stconn|cut|all")
	n := flag.Int("n", 1024, "instance size")
	k := flag.Int("k", 8, "machines")
	seed := flag.Int64("seed", 1, "seed")
	timeout := flag.Duration("timeout", 0, "per-job deadline (0 = none), e.g. 30s")
	flag.Parse()

	// One instance serves every problem: a two-community graph with a
	// known bridge structure exercises all the reductions.
	g := kmgraph.TwoCliquesBridged(*n/2, 2, *seed)
	var bridgeSet []kmgraph.Edge
	for _, e := range g.Edges() {
		if (e.U < *n/2) != (e.V < *n/2) {
			bridgeSet = append(bridgeSet, e)
		}
	}
	tree, _ := kmgraph.MSTOracle(g)

	type job struct {
		name string
		p    kmgraph.Problem
		args kmgraph.VerifyArgs
		desc string
	}
	jobs := map[string]job{
		"bipartite": {
			name: "bipartite", p: kmgraph.ProblemBipartiteness,
			desc: fmt.Sprintf("bipartiteness (oracle: %v)", kmgraph.IsBipartiteOracle(g)),
		},
		"cycle": {
			name: "cycle", p: kmgraph.ProblemCycleContainment,
			desc: "cycle containment",
		},
		"scs": {
			name: "scs", p: kmgraph.ProblemSpanningConnectedSubgraph,
			args: kmgraph.VerifyArgs{H: tree},
			desc: "spanning connected subgraph: a spanning tree",
		},
		"stconn": {
			name: "stconn", p: kmgraph.ProblemSTConnectivity,
			args: kmgraph.VerifyArgs{S: 0, T: g.N() - 1},
			desc: fmt.Sprintf("s-t connectivity between 0 and %d", g.N()-1),
		},
		"cut": {
			name: "cut", p: kmgraph.ProblemCut,
			args: kmgraph.VerifyArgs{Cut: bridgeSet},
			desc: fmt.Sprintf("cut verification: the %d bridges", len(bridgeSet)),
		},
	}
	order := []string{"bipartite", "cycle", "scs", "stconn", "cut"}
	var selected []job
	if *problem == "all" {
		for _, name := range order {
			selected = append(selected, jobs[name])
		}
	} else if j, ok := jobs[*problem]; ok {
		selected = []job{j}
	} else {
		fmt.Fprintf(os.Stderr, "unknown problem %q\n", *problem)
		os.Exit(1)
	}

	cl, err := kmgraph.NewCluster(g, kmgraph.WithK(*k), kmgraph.WithSeed(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cl.Close()
	fmt.Printf("graph: two bridged cliques, n=%d m=%d; k=%d, load %d rounds (paid once)\n",
		g.N(), g.M(), *k, cl.Metrics().LoadRounds)

	for _, j := range selected {
		ctx, cancel := jobCtx(*timeout)
		out, err := cl.Verify(ctx, j.p, j.args)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %s\n", j.name+":", j.desc)
		fmt.Printf("           verdict: %v  cost: %d runs, %d rounds\n",
			out.Holds, out.Runs, out.Rounds)
	}
}
