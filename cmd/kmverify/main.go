// Command kmverify runs one of the Theorem 4 verification problems on a
// generated instance and reports the verdict and cost.
//
// Usage:
//
//	kmverify -problem bipartite|cycle|scs|stconn|cut [-n 1024] [-k 8] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"kmgraph"
)

func main() {
	problem := flag.String("problem", "bipartite", "bipartite|cycle|scs|stconn|cut")
	n := flag.Int("n", 1024, "instance size")
	k := flag.Int("k", 8, "machines")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()
	cfg := kmgraph.Config{K: *k, Seed: *seed}

	var out *kmgraph.VerifyOutcome
	var err error
	var desc string
	switch *problem {
	case "bipartite":
		g := kmgraph.GNM(*n, 2**n, *seed)
		desc = fmt.Sprintf("bipartiteness of GNM(n=%d, m=%d); oracle: %v",
			g.N(), g.M(), kmgraph.IsBipartiteOracle(g))
		out, err = kmgraph.VerifyBipartiteness(g, cfg)
	case "cycle":
		g := kmgraph.RandomTree(*n, *seed)
		desc = fmt.Sprintf("cycle containment in a random tree (n=%d)", g.N())
		out, err = kmgraph.VerifyCycleContainment(g, cfg)
	case "scs":
		g := kmgraph.RandomConnected(*n, 2**n, *seed)
		tree, _ := kmgraph.MSTOracle(g)
		desc = fmt.Sprintf("spanning connected subgraph: a spanning tree of GNM(n=%d)", g.N())
		out, err = kmgraph.VerifySpanningConnectedSubgraph(g, tree, cfg)
	case "stconn":
		g := kmgraph.DisjointComponents(*n, 2, 0.4, *seed)
		desc = fmt.Sprintf("s-t connectivity between vertices 0 and %d (2 components)", *n-1)
		out, err = kmgraph.VerifySTConnectivity(g, 0, *n-1, cfg)
	case "cut":
		s := *n / 2
		g := kmgraph.TwoCliquesBridged(s, 2, *seed)
		var bridges []kmgraph.Edge
		for _, e := range g.Edges() {
			if (e.U < s) != (e.V < s) {
				bridges = append(bridges, e)
			}
		}
		desc = fmt.Sprintf("cut verification: the %d bridges of two K_%d cliques", len(bridges), s)
		out, err = kmgraph.VerifyCut(g, bridges, cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown problem %q\n", *problem)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(desc)
	fmt.Printf("verdict: %v\n", out.Holds)
	fmt.Printf("cost: %d connectivity runs, %d rounds total\n", out.Runs, out.Rounds)
}
