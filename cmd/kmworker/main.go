// Command kmworker hosts a contiguous range of a distributed k-machine
// cluster. A coordinator (kmconnect/kmmst with -transport tcp) dials
// the worker, ships a job spec, and the worker forms a TCP mesh with
// its peers, loads its slice of the graph shard-direct from the job's
// source spec, runs the round engine over its hosted machines, and
// returns its partial result on the control connection. Workers are
// stateless between jobs and serve concurrent jobs from different
// coordinators.
//
// Usage:
//
//	kmworker -listen :9601 [-metrics-addr :9602] [-mesh-timeout 60s]
//
// With -metrics-addr, the worker serves its transport telemetry
// (per-link bytes/frames, reconnects, handshake failures, barrier-wait
// histogram) in Prometheus exposition format on GET /metrics.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kmgraph/internal/dist"
	"kmgraph/internal/telemetry"
	"kmgraph/internal/transport/tcp"
)

func main() {
	listen := flag.String("listen", ":9601", "address to serve jobs and peer links on")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus transport telemetry on this address (empty = off)")
	meshTimeout := flag.Duration("mesh-timeout", 60*time.Second, "bound on forming the full peer mesh for one job")
	flag.Parse()

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		tcp.RegisterTelemetry(reg)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kmworker: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kmworker: metrics on http://%s/metrics\n", mln.Addr())
		go http.Serve(mln, mux)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kmworker: %v\n", err)
		os.Exit(1)
	}
	w := dist.NewWorker(ln, dist.WorkerOptions{MeshTimeout: *meshTimeout})
	fmt.Printf("kmworker: serving on %s\n", w.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "kmworker: shutting down")
		w.Close()
	}()

	if err := w.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "kmworker: %v\n", err)
		os.Exit(1)
	}
}
