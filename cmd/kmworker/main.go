// Command kmworker hosts a contiguous range of a distributed k-machine
// cluster. A coordinator (kmconnect/kmmst with -transport tcp) dials
// the worker, ships a job spec, and the worker forms a TCP mesh with
// its peers, loads its slice of the graph shard-direct from the job's
// source spec, runs the round engine over its hosted machines, and
// returns its partial result on the control connection. Workers are
// stateless between jobs and serve concurrent jobs from different
// coordinators.
//
// Usage:
//
//	kmworker -listen :9601 [-metrics-addr :9602] [-mesh-timeout 60s]
//	         [-heartbeat 2s] [-drain-timeout 30s]
//
// The worker beats on each job's control connection every -heartbeat so
// coordinators can tell a slow worker from a dead one. On SIGINT or
// SIGTERM it drains: it stops accepting jobs, reports the per-cluster
// state of everything still running, finishes those jobs within
// -drain-timeout, and exits 0. A second signal (or an expired drain)
// aborts the remaining jobs immediately; their coordinators see a
// classified link-down failure and can retry on a replacement worker.
//
// With -metrics-addr, the worker serves its transport telemetry
// (per-link bytes/frames, reconnects, handshake failures, barrier-wait
// histogram) in Prometheus exposition format on GET /metrics, and a
// human-readable GET /statusz debug page listing the in-flight jobs
// (cluster and trace IDs, hosted machine range, live round count, run
// time). Link-down failures are logged as structured JSON (slog) on
// stderr with the failed link's flight-recorder snapshot attached.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kmgraph/internal/dist"
	"kmgraph/internal/telemetry"
	"kmgraph/internal/transport/tcp"
)

// statusz renders the worker's in-flight jobs as a plain-text debug
// page: one line per job plus an uptime header.
func statusz(w *dist.Worker, started time.Time) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		jobs := w.Jobs()
		fmt.Fprintf(rw, "kmworker %s up %v, %d active job(s)\n",
			w.Addr(), time.Since(started).Round(time.Second), len(jobs))
		for _, j := range jobs {
			fmt.Fprintf(rw, "cluster %016x trace %016x %s machines [%d,%d) round %d (running %v)\n",
				j.ClusterID, j.TraceID, j.Kind, j.Lo, j.Hi, j.Rounds,
				time.Since(j.Started).Round(time.Millisecond))
		}
	}
}

func main() {
	listen := flag.String("listen", ":9601", "address to serve jobs and peer links on")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus transport telemetry on this address (empty = off)")
	meshTimeout := flag.Duration("mesh-timeout", 60*time.Second, "bound on forming the full peer mesh for one job")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "control-connection liveness beat interval (negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM, how long to let active jobs finish before aborting them")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kmworker: %v\n", err)
		os.Exit(1)
	}
	w := dist.NewWorker(ln, dist.WorkerOptions{
		MeshTimeout:       *meshTimeout,
		HeartbeatInterval: *heartbeat,
		Logger:            slog.New(slog.NewJSONHandler(os.Stderr, nil)),
	})
	fmt.Printf("kmworker: serving on %s\n", w.Addr())

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		tcp.RegisterTelemetry(reg)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		mux.HandleFunc("GET /statusz", statusz(w, time.Now()))
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kmworker: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kmworker: metrics on http://%s/metrics (debug: /statusz)\n", mln.Addr())
		go http.Serve(mln, mux)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	draining := make(chan struct{})
	drained := make(chan struct{})
	go func() {
		s := <-sig
		close(draining)
		jobs := w.Jobs()
		fmt.Fprintf(os.Stderr, "kmworker: %v: draining (%d active jobs, up to %v)\n", s, len(jobs), *drainTimeout)
		for _, j := range jobs {
			fmt.Fprintf(os.Stderr, "kmworker:   cluster %016x %s machines [%d,%d) round %d (running %v)\n",
				j.ClusterID, j.Kind, j.Lo, j.Hi, j.Rounds, time.Since(j.Started).Round(time.Millisecond))
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		go func() {
			// A second signal cuts the drain short: abort what's left.
			<-sig
			fmt.Fprintln(os.Stderr, "kmworker: second signal: aborting active jobs")
			cancel()
		}()
		if err := w.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "kmworker: drain expired, aborted %d jobs: %v\n", len(w.Jobs()), err)
		} else {
			fmt.Fprintln(os.Stderr, "kmworker: drained clean")
		}
		cancel()
		close(drained)
	}()

	err = w.Serve()
	select {
	case <-draining:
		// Deliberate shutdown: Serve returned because the drain closed
		// the listener. Wait for the active jobs to finish, then exit 0.
		<-drained
		return
	default:
	}
	if err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintf(os.Stderr, "kmworker: %v\n", err)
		os.Exit(1)
	}
}
