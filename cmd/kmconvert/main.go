// Command kmconvert produces kmgs binary graph stores — the container
// kmconnect/kmmst/kmbench serve shard-direct via -store and the library
// serves via kmgraph.OpenCluster. Input is either a text edge list or a
// streaming generator; in both cases the graph is written straight to
// disk without ever being resident in memory (the generators' dedup set
// and the writer's compact CSR pass are the only working state).
//
// Usage:
//
//	kmconvert -gen gnm      -n 1000000 -m 3000000 -seed 1 -o g.kmgs
//	kmconvert -gen rmat     -n 1000000 -m 8000000 -o rmat.kmgs
//	kmconvert -gen powerlaw -n 1000000 -m 4000000 -gamma 2.5 -o pl.kmgs
//	kmconvert -input edges.txt -o g.kmgs
//	kmconvert -info g.kmgs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kmgraph"
	"kmgraph/internal/graph"
	"kmgraph/internal/store"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func info(path string) {
	r, err := store.Open(path)
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	st, _ := os.Stat(path)
	fmt.Printf("%s: kmgs/v%d\n", path, store.Version)
	fmt.Printf("  n=%d m=%d weighted=%v\n", r.N(), r.M(), r.Weighted())
	if st != nil && r.M() > 0 {
		fmt.Printf("  %d bytes on disk (%.2f bytes/edge)\n",
			st.Size(), float64(st.Size())/float64(r.M()))
	}
	// Decode everything so corruption is reported here, not at load time.
	comps, err := graph.ComponentsFromSource(r.Source())
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	fmt.Printf("  components=%d (streaming union-find)\n", comps)
}

func main() {
	gen := flag.String("gen", "", "streaming generator: gnm|rmat|powerlaw")
	input := flag.String("input", "", "text edge-list file to convert")
	infoPath := flag.String("info", "", "print a store's header and stats, then exit")
	out := flag.String("o", "", "output .kmgs path")
	n := flag.Int("n", 100000, "vertices (generators)")
	m := flag.Int("m", 0, "edges (generators; default 3n)")
	gamma := flag.Float64("gamma", 2.5, "degree exponent (powerlaw)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if *infoPath != "" {
		info(*infoPath)
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("kmconvert: -o output path required"))
	}
	if *m == 0 {
		*m = 3 * *n
	}

	var src kmgraph.EdgeSource
	switch {
	case *input != "":
		s, err := graph.OpenEdgeList(*input)
		if err != nil {
			fatal(err)
		}
		defer s.Close()
		src = s
	case *gen == "gnm":
		src = kmgraph.StreamGNM(*n, *m, *seed)
	case *gen == "rmat":
		src = kmgraph.StreamRMAT(*n, *m, *seed)
	case *gen == "powerlaw":
		src = kmgraph.StreamPowerLaw(*n, *m, *gamma, *seed)
	case *gen == "":
		fatal(fmt.Errorf("kmconvert: need -gen or -input"))
	default:
		fatal(fmt.Errorf("kmconvert: unknown generator %q", *gen))
	}

	start := time.Now()
	if err := kmgraph.WriteStore(*out, src); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	st, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	r, err := store.Open(*out)
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	fmt.Printf("wrote %s: n=%d m=%d weighted=%v, %d bytes (%.2f bytes/edge) in %v\n",
		*out, r.N(), r.M(), r.Weighted(), st.Size(),
		float64(st.Size())/float64(max(r.M(), 1)), elapsed.Round(time.Millisecond))
}
