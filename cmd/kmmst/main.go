// Command kmmst runs the Õ(n/k²) MST algorithm on a weighted random
// graph via a resident Cluster, verifies the result against the
// sequential oracle, and reports cost under both output criteria
// (Theorem 2). -timeout bounds the job via context.WithTimeout.
//
// Usage:
//
//	kmmst [-n 2048] [-m 6144] [-k 8] [-seed 1] [-timeout 0] [-strong] [-rep]
//	      [-trace out.json]
//	kmmst -transport tcp -workers host:9601,host:9602 -store graph.kmgs
//	      [-k 8] [-seed 1] [-strong] [-trace out.json] [-flight-dump dir/]
//
// With -trace, the resident engine's phase events are written as Chrome
// trace-event JSON (Perfetto / chrome://tracing). -rep does not use the
// resident engine and cannot be traced. With -transport tcp, -trace
// assembles the cross-process trace streamed back by the workers (one
// pid per worker), and -flight-dump dir/ writes each side's
// flight-recorder snapshot on failure — see cmd/kmconnect for details.
//
// With -transport tcp, the k machines run distributed across the
// kmworker processes listed in -workers; each loads its slice of the
// graph from the -store spec (the path must be readable by every
// worker). The result and Metrics are bit-identical to a local
// shard-direct run. No oracle check (the coordinator never sees the
// graph).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kmgraph"
	"kmgraph/internal/core"
	"kmgraph/internal/dist"
	"kmgraph/internal/telemetry"
)

// traceOpts returns a tracer plus the cluster options that wire it in,
// or nil options when tracing is off.
func traceOpts(path string) (*telemetry.JobTracer, []kmgraph.ClusterOption) {
	if path == "" {
		return nil, nil
	}
	tr := telemetry.NewJobTracer()
	return tr, []kmgraph.ClusterOption{
		kmgraph.WithObserver(tr.Observer()),
		kmgraph.WithPhaseMetrics(),
	}
}

// writeTrace flushes the tracer (when tracing is on) and reports the
// output path.
func writeTrace(tr *telemetry.JobTracer, path string) {
	if tr == nil {
		return
	}
	if err := tr.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace: wrote %s\n", path)
}

// jobCtx maps the -timeout flag to a job context (0 = no deadline).
func jobCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

// runDistributed coordinates an MST job over a kmworker fleet.
func runDistributed(workers []string, source string, k int, seed int64, strong bool, timeout time.Duration,
	opts dist.CoordOptions, tracePath, flightDir string) {
	var trace *dist.JobTrace
	if tracePath != "" {
		trace = &dist.JobTrace{}
		opts.Trace = trace
	}
	var flight *dist.FlightLog
	if flightDir != "" {
		flight = &dist.FlightLog{}
		opts.Flight = flight
	}
	fmt.Printf("distributed: %s over %d workers, k=%d\n", source, len(workers), k)
	ctx, cancel := jobCtx(timeout)
	defer cancel()
	start := time.Now()
	cfg := core.MSTConfig{Config: core.Config{K: k, Seed: seed}, StrongOutput: strong}
	res, err := dist.RunMSTOpts(ctx, workers, source, cfg, opts)
	if err != nil {
		if flight != nil {
			if derr := flight.Dump(flightDir); derr != nil {
				fmt.Fprintf(os.Stderr, "flight dump: %v\n", derr)
			} else {
				fmt.Fprintf(os.Stderr, "flight dump: wrote %s\n", flightDir)
			}
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("MST: weight=%d edges=%d\n", res.TotalWeight, len(res.Edges))
	fmt.Printf("phases: %d  elimination iterations: %d  sketch failures: %d\n",
		res.Phases, res.ElimIters, res.SketchFailures)
	fmt.Printf("cost: %s (wall %v)\n", res.Metrics.String(), time.Since(start).Round(time.Millisecond))
	if trace != nil {
		if err := telemetry.WriteTrace(tracePath, trace.Assemble()); err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: wrote %s (trace id %#x)\n", tracePath, trace.TraceID())
	}
}

func main() {
	n := flag.Int("n", 2048, "vertices")
	m := flag.Int("m", 0, "edges (default 3n)")
	k := flag.Int("k", 8, "machines")
	seed := flag.Int64("seed", 1, "seed")
	timeout := flag.Duration("timeout", 0, "job deadline (0 = none), e.g. 30s")
	strong := flag.Bool("strong", false, "strong output criterion (both endpoints)")
	repMode := flag.Bool("rep", false, "use the random edge partition model instead")
	storePath := flag.String("store", "", "serve a kmgs store shard-direct (never materializes the graph; no oracle check)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the resident job's phases to this file")
	transportMode := flag.String("transport", "local", "local|tcp: where the k machines run")
	workerList := flag.String("workers", "", "with -transport tcp: comma-separated kmworker addresses")
	retries := flag.Int("retries", 1, "with -transport tcp: total job attempts; lost workers are re-dialed between attempts")
	hbTimeout := flag.Duration("heartbeat-timeout", 30*time.Second, "with -transport tcp: silence tolerated on a worker before declaring it stalled")
	flightDir := flag.String("flight-dump", "", "with -transport tcp: on failure, dump flight-recorder snapshots as JSON under this directory")
	flag.Parse()
	if *m == 0 {
		*m = 3 * *n
	}
	if *tracePath != "" && *repMode {
		fmt.Fprintln(os.Stderr, "kmmst: -trace requires the resident engine (not -rep)")
		os.Exit(2)
	}
	switch *transportMode {
	case "local":
	case "tcp":
		if *workerList == "" || *storePath == "" {
			fmt.Fprintln(os.Stderr, "kmmst: -transport tcp requires -workers and -store")
			os.Exit(2)
		}
		runDistributed(strings.Split(*workerList, ","), "store:"+*storePath, *k, *seed, *strong, *timeout, dist.CoordOptions{
			HeartbeatTimeout: *hbTimeout,
			Retry:            dist.RetryPolicy{Attempts: *retries},
		}, *tracePath, *flightDir)
		return
	default:
		fmt.Fprintf(os.Stderr, "kmmst: unknown transport %q\n", *transportMode)
		os.Exit(2)
	}
	tracer, clOpts := traceOpts(*tracePath)
	clOpts = append(clOpts, kmgraph.WithK(*k), kmgraph.WithSeed(*seed))

	if *storePath != "" {
		cl, err := kmgraph.OpenCluster(*storePath, clOpts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer cl.Close()
		met := cl.Metrics()
		fmt.Printf("store: %s n=%d m=%d (shard-direct; oracle skipped)\n", *storePath, cl.N(), met.Edges)
		ctx, cancel := jobCtx(*timeout)
		defer cancel()
		var opts []kmgraph.MSTOption
		if *strong {
			opts = append(opts, kmgraph.StrongOutput())
		}
		res, err := cl.MST(ctx, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("MST: weight=%d edges=%d\n", res.TotalWeight, len(res.Edges))
		fmt.Printf("cost: load %d rounds (paid once) + MST %d rounds\n",
			cl.Metrics().LoadRounds, res.Metrics.Rounds)
		writeTrace(tracer, *tracePath)
		return
	}

	g := kmgraph.WithDistinctWeights(kmgraph.GNM(*n, *m, *seed), *seed+1)
	_, oracleWeight := kmgraph.MSTOracle(g)
	fmt.Printf("graph: n=%d m=%d distinct weights; oracle MST weight %d\n", g.N(), g.M(), oracleWeight)

	if *repMode {
		res, err := kmgraph.REPMST(g, kmgraph.REPConfig{K: *k, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("REP MST: weight=%d edges=%d (match: %v)\n",
			res.TotalWeight, len(res.Edges), res.TotalWeight == oracleWeight)
		fmt.Printf("cost: conversion %d + MST %d = %d rounds (Θ̃(n/k) model)\n",
			res.ConversionRounds, res.MSTRounds, res.TotalRounds)
		return
	}

	cl, err := kmgraph.NewCluster(g, clOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cl.Close()
	ctx, cancel := jobCtx(*timeout)
	defer cancel()
	var opts []kmgraph.MSTOption
	if *strong {
		opts = append(opts, kmgraph.StrongOutput())
	}
	res, err := cl.MST(ctx, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("MST: weight=%d edges=%d (match: %v)\n",
		res.TotalWeight, len(res.Edges), res.TotalWeight == oracleWeight)
	fmt.Printf("phases: %d  elimination iterations: %d  sketch failures: %d\n",
		res.Phases, res.ElimIters, res.SketchFailures)
	met := cl.Metrics()
	if *strong {
		fmt.Printf("cost: load %d + weak %d + dissemination %d rounds\n",
			met.LoadRounds, res.WeakRounds, res.Metrics.Rounds-res.WeakRounds)
	} else {
		fmt.Printf("cost: load %d rounds (paid once) + MST %d rounds\n",
			met.LoadRounds, res.Metrics.Rounds)
	}
	writeTrace(tracer, *tracePath)
}
