// Command kmmst runs the Õ(n/k²) MST algorithm on a weighted random
// graph, verifies the result against the sequential oracle, and reports
// cost under both output criteria (Theorem 2).
//
// Usage:
//
//	kmmst [-n 2048] [-m 6144] [-k 8] [-seed 1] [-strong] [-rep]
package main

import (
	"flag"
	"fmt"
	"os"

	"kmgraph"
)

func main() {
	n := flag.Int("n", 2048, "vertices")
	m := flag.Int("m", 0, "edges (default 3n)")
	k := flag.Int("k", 8, "machines")
	seed := flag.Int64("seed", 1, "seed")
	strong := flag.Bool("strong", false, "strong output criterion (both endpoints)")
	repMode := flag.Bool("rep", false, "use the random edge partition model instead")
	flag.Parse()
	if *m == 0 {
		*m = 3 * *n
	}

	g := kmgraph.WithDistinctWeights(kmgraph.GNM(*n, *m, *seed), *seed+1)
	_, oracleWeight := kmgraph.MSTOracle(g)
	fmt.Printf("graph: n=%d m=%d distinct weights; oracle MST weight %d\n", g.N(), g.M(), oracleWeight)

	if *repMode {
		res, err := kmgraph.REPMST(g, kmgraph.REPConfig{K: *k, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("REP MST: weight=%d edges=%d (match: %v)\n",
			res.TotalWeight, len(res.Edges), res.TotalWeight == oracleWeight)
		fmt.Printf("cost: conversion %d + MST %d = %d rounds (Θ̃(n/k) model)\n",
			res.ConversionRounds, res.MSTRounds, res.TotalRounds)
		return
	}

	res, err := kmgraph.MST(g, kmgraph.MSTConfig{
		Config:       kmgraph.Config{K: *k, Seed: *seed},
		StrongOutput: *strong,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("MST: weight=%d edges=%d (match: %v)\n",
		res.TotalWeight, len(res.Edges), res.TotalWeight == oracleWeight)
	fmt.Printf("phases: %d  elimination iterations: %d  sketch failures: %d\n",
		res.Phases, res.ElimIters, res.SketchFailures)
	if *strong {
		fmt.Printf("cost: weak %d rounds + dissemination %d = %d rounds\n",
			res.WeakRounds, res.Metrics.Rounds-res.WeakRounds, res.Metrics.Rounds)
	} else {
		fmt.Printf("cost: %s\n", res.Metrics.String())
	}
}
