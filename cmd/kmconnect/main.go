// Command kmconnect runs the Õ(n/k²) connectivity algorithm (or a
// baseline) on a generated graph and reports components and cost. The
// default sketch path serves the query from a resident Cluster; -timeout
// bounds the whole job via context.WithTimeout.
//
// Usage:
//
//	kmconnect [-gen gnm|gnp|path|cycle|star|components|planted]
//	          [-n 4096] [-m 12288] [-p 0.01] [-c 5]
//	          [-k 8] [-seed 1] [-timeout 0] [-trace out.json]
//	          [-algo sketch|edgecheck|flooding|referee]
//	kmconnect -store graph.kmgs [-k 8] [-seed 1] [-timeout 0] [-trace out.json]
//	kmconnect -transport tcp -workers host:9601,host:9602 \
//	          (-store graph.kmgs | -gen gnm -n ... -m ...) [-k 8] [-seed 1]
//
// With -store, the graph is served shard-direct from a kmgs container
// (see cmd/kmconvert) and never materialized in this process.
//
// With -transport tcp, the k machines run distributed across the
// kmworker processes listed in -workers (see cmd/kmworker): this
// process coordinates, each worker loads its own slice of the graph
// from the source spec and hosts a contiguous machine range. Only
// -store and -gen gnm sources are supported (the workers must be able
// to reproduce the graph independently), and only the one-shot sketch
// algorithm runs distributed. The result and its Metrics are
// bit-identical to a local run with the same parameters.
//
// With -trace, the resident engine's phase events are recorded and
// written as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing): one span per job enclosing one span per merge
// phase, annotated with rounds, message and payload deltas, and link
// skew. Locally, only the resident sketch path (-algo sketch or
// -store) emits phase events. With -transport tcp, -trace instead
// assembles a cross-process trace: every worker streams its phase
// spans back over its control connection and the written trace has one
// pid per worker, annotated with per-worker rounds, wire traffic, and
// barrier waits.
//
// With -transport tcp -flight-dump dir/, a failed run writes each
// side's flight-recorder snapshot (the last K rounds of every link
// before the failure) as JSON files under dir/ — see dist.FlightDump.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kmgraph"
	"kmgraph/internal/core"
	"kmgraph/internal/dist"
	"kmgraph/internal/procstat"
	"kmgraph/internal/telemetry"
)

// traceOpts returns a tracer plus the cluster options that wire it in,
// or nil options when tracing is off.
func traceOpts(path string) (*telemetry.JobTracer, []kmgraph.ClusterOption) {
	if path == "" {
		return nil, nil
	}
	tr := telemetry.NewJobTracer()
	return tr, []kmgraph.ClusterOption{
		kmgraph.WithObserver(tr.Observer()),
		kmgraph.WithPhaseMetrics(),
	}
}

// writeTrace flushes the tracer (when tracing is on) and reports the
// output path.
func writeTrace(tr *telemetry.JobTracer, path string) {
	if tr == nil {
		return
	}
	if err := tr.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace: wrote %s\n", path)
}

func buildGraph(gen string, n, m, c int, p float64, seed int64) (*kmgraph.Graph, error) {
	switch gen {
	case "gnm":
		return kmgraph.GNM(n, m, seed), nil
	case "gnp":
		return kmgraph.GNP(n, p, seed), nil
	case "path":
		return kmgraph.Path(n), nil
	case "cycle":
		return kmgraph.Cycle(n), nil
	case "star":
		return kmgraph.Star(n), nil
	case "components":
		return kmgraph.DisjointComponents(n, c, 0.5, seed), nil
	case "planted":
		return kmgraph.PlantedPartition(n, c, 0.1, 0.001, seed), nil
	case "powerlaw":
		return kmgraph.ChungLu(n, 2.5, float64(m)*2/float64(n), seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func loadGraph(path string) (*kmgraph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kmgraph.ReadEdgeList(f)
}

// jobCtx maps the -timeout flag to a job context (0 = no deadline).
func jobCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

// runStore serves a kmgs store (or text edge list) shard-direct: the
// graph is never materialized in this process — the residency's
// per-machine shards are filled straight from the stream, and the
// oracle is a one-pass streaming union-find. With materialize set it
// instead drains the store into a full graph.Graph and loads via
// NewCluster (the legacy path), which is the E15 memory baseline; the
// two paths produce bit-identical residencies and Metrics.
func runStore(path string, k int, seed int64, timeout time.Duration, materialize, skipOracle bool, tracePath string) {
	oracleCount := -1
	if !skipOracle {
		src, closer, err := kmgraph.OpenSource(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		oracleCount, err = kmgraph.ComponentsFromSourceOracle(src)
		closer.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	tracer, clOpts := traceOpts(tracePath)
	clOpts = append(clOpts, kmgraph.WithK(k), kmgraph.WithSeed(seed))

	loadStart := time.Now()
	var cl *kmgraph.Cluster
	var err error
	mode := "shard-direct"
	if materialize {
		mode = "materialize-then-load"
		var src kmgraph.EdgeSource
		var closer interface{ Close() error }
		src, closer, err = kmgraph.OpenSource(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var edges []kmgraph.Edge
		edges, err = kmgraph.DrainEdgeSource(src)
		n := src.N()
		closer.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		g := kmgraph.FromEdges(n, edges)
		edges = nil
		cl, err = kmgraph.NewCluster(g, clOpts...)
	} else {
		cl, err = kmgraph.OpenCluster(path, clOpts...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cl.Close()
	loadWall := time.Since(loadStart)
	met := cl.Metrics()
	fmt.Printf("store: %s n=%d m=%d; cluster: k=%d B=%d bits/link/round (%s load %v)\n",
		path, cl.N(), met.Edges, k, kmgraph.DefaultBandwidth(cl.N()), mode, loadWall.Round(time.Millisecond))
	fmt.Printf("after-load peak RSS: %d MB\n", procstat.MaxRSSBytes()>>20)

	ctx, cancel := jobCtx(timeout)
	defer cancel()
	queryStart := time.Now()
	res, err := cl.Connectivity(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	met = cl.Metrics()
	fmt.Printf("components: %d (oracle: %d)\n", res.Components, oracleCount)
	fmt.Printf("phases: %d  sketch failures: %d\n", res.Phases, res.SketchFailures)
	fmt.Printf("cost: load %d rounds (paid once) + query %d rounds (query wall %v)\n",
		met.LoadRounds, res.Rounds, time.Since(queryStart).Round(time.Millisecond))
	fmt.Printf("peak RSS: %d MB\n", procstat.MaxRSSBytes()>>20)
	writeTrace(tracer, tracePath)
}

// distObserve wires -trace and -flight-dump into the coordinator
// options, returning the collectors to flush afterwards.
func distObserve(opts *dist.CoordOptions, tracePath, flightDir string) (*dist.JobTrace, *dist.FlightLog) {
	var trace *dist.JobTrace
	if tracePath != "" {
		trace = &dist.JobTrace{}
		opts.Trace = trace
	}
	var flight *dist.FlightLog
	if flightDir != "" {
		flight = &dist.FlightLog{}
		opts.Flight = flight
	}
	return trace, flight
}

// distFail dumps the flight log (when -flight-dump is set) and exits.
func distFail(err error, flight *dist.FlightLog, flightDir string) {
	if flight != nil {
		if derr := flight.Dump(flightDir); derr != nil {
			fmt.Fprintf(os.Stderr, "flight dump: %v\n", derr)
		} else {
			fmt.Fprintf(os.Stderr, "flight dump: wrote %s\n", flightDir)
		}
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// writeDistTrace writes the assembled cross-process trace.
func writeDistTrace(trace *dist.JobTrace, path string) {
	if trace == nil {
		return
	}
	if err := telemetry.WriteTrace(path, trace.Assemble()); err != nil {
		fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace: wrote %s (trace id %#x)\n", path, trace.TraceID())
}

// runDistributed coordinates a connectivity job over a kmworker fleet.
func runDistributed(workers []string, source string, k int, seed int64, timeout time.Duration,
	opts dist.CoordOptions, tracePath, flightDir string) {
	trace, flight := distObserve(&opts, tracePath, flightDir)
	fmt.Printf("distributed: %s over %d workers, k=%d\n", source, len(workers), k)
	ctx, cancel := jobCtx(timeout)
	defer cancel()
	start := time.Now()
	res, err := dist.RunConnectivityOpts(ctx, workers, source, core.Config{K: k, Seed: seed}, opts)
	if err != nil {
		distFail(err, flight, flightDir)
	}
	fmt.Printf("components: %d\n", res.Components)
	fmt.Printf("phases: %d  sketch failures: %d\n", res.Phases, res.SketchFailures)
	fmt.Printf("cost: %s (wall %v)\n", res.Metrics.String(), time.Since(start).Round(time.Millisecond))
	writeDistTrace(trace, tracePath)
}

// distSource maps the graph flags to a dist source spec that every
// worker can open independently.
func distSource(storePath, gen string, n, m int, seed int64) (string, error) {
	switch {
	case storePath != "":
		return "store:" + storePath, nil
	case gen == "gnm":
		return fmt.Sprintf("gnm:%d:%d:%d", n, m, seed), nil
	default:
		return "", fmt.Errorf("-transport tcp supports -store or -gen gnm (got -gen %s)", gen)
	}
}

func main() {
	gen := flag.String("gen", "gnm", "graph generator")
	input := flag.String("input", "", "read an edge-list file instead of generating")
	storePath := flag.String("store", "", "serve a kmgs store shard-direct (never materializes the graph)")
	materialize := flag.Bool("materialize", false, "with -store: drain the store into a full in-memory graph and load via NewCluster (E15 memory baseline)")
	skipOracle := flag.Bool("no-oracle", false, "with -store: skip the streaming union-find oracle pass")
	n := flag.Int("n", 4096, "vertices")
	m := flag.Int("m", 0, "edges (gnm; default 3n)")
	p := flag.Float64("p", 0.01, "edge probability (gnp)")
	c := flag.Int("c", 5, "components/communities")
	k := flag.Int("k", 8, "machines")
	seed := flag.Int64("seed", 1, "seed")
	timeout := flag.Duration("timeout", 0, "job deadline (0 = none), e.g. 30s")
	algo := flag.String("algo", "sketch", "sketch|edgecheck|flooding|referee")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the resident job's phases to this file")
	transportMode := flag.String("transport", "local", "local|tcp: where the k machines run")
	workerList := flag.String("workers", "", "with -transport tcp: comma-separated kmworker addresses")
	retries := flag.Int("retries", 1, "with -transport tcp: total job attempts; lost workers are re-dialed between attempts")
	hbTimeout := flag.Duration("heartbeat-timeout", 30*time.Second, "with -transport tcp: silence tolerated on a worker before declaring it stalled")
	flightDir := flag.String("flight-dump", "", "with -transport tcp: on failure, dump flight-recorder snapshots as JSON under this directory")
	flag.Parse()

	if *tracePath != "" && *transportMode == "local" && *storePath == "" && *algo != "sketch" {
		fmt.Fprintln(os.Stderr, "kmconnect: -trace requires the resident engine (-algo sketch or -store) or -transport tcp")
		os.Exit(2)
	}
	switch *transportMode {
	case "local":
	case "tcp":
		if *workerList == "" {
			fmt.Fprintln(os.Stderr, "kmconnect: -transport tcp requires -workers")
			os.Exit(2)
		}
		if *m == 0 {
			*m = 3 * *n
		}
		source, err := distSource(*storePath, *gen, *n, *m, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kmconnect: %v\n", err)
			os.Exit(2)
		}
		runDistributed(strings.Split(*workerList, ","), source, *k, *seed, *timeout, dist.CoordOptions{
			HeartbeatTimeout: *hbTimeout,
			Retry:            dist.RetryPolicy{Attempts: *retries},
		}, *tracePath, *flightDir)
		return
	default:
		fmt.Fprintf(os.Stderr, "kmconnect: unknown transport %q\n", *transportMode)
		os.Exit(2)
	}
	if *storePath != "" {
		runStore(*storePath, *k, *seed, *timeout, *materialize, *skipOracle, *tracePath)
		return
	}
	if *m == 0 {
		*m = 3 * *n
	}
	var g *kmgraph.Graph
	var err error
	if *input != "" {
		*gen = *input
		g, err = loadGraph(*input)
	} else {
		g, err = buildGraph(*gen, *n, *m, *c, *p, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("graph: %s n=%d m=%d; cluster: k=%d B=%d bits/link/round\n",
		*gen, g.N(), g.M(), *k, kmgraph.DefaultBandwidth(g.N()))

	_, oracleCount := kmgraph.ComponentsOracle(g)
	switch *algo {
	case "sketch":
		tracer, clOpts := traceOpts(*tracePath)
		clOpts = append(clOpts, kmgraph.WithK(*k), kmgraph.WithSeed(*seed))
		cl, err := kmgraph.NewCluster(g, clOpts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer cl.Close()
		ctx, cancel := jobCtx(*timeout)
		defer cancel()
		res, err := cl.Connectivity(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		met := cl.Metrics()
		fmt.Printf("components: %d (oracle: %d)\n", res.Components, oracleCount)
		fmt.Printf("phases: %d  sketch failures: %d\n", res.Phases, res.SketchFailures)
		fmt.Printf("cost: load %d rounds (paid once) + query %d rounds\n",
			met.LoadRounds, res.Rounds)
		writeTrace(tracer, *tracePath)
	case "edgecheck":
		cfg := kmgraph.Config{K: *k, Seed: *seed, EdgeCheckSelection: true}
		res, err := kmgraph.Connectivity(g, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("components: %d (oracle: %d)\n", res.Components, oracleCount)
		fmt.Printf("phases: %d  sketch failures: %d\n", res.Phases, res.SketchFailures)
		fmt.Printf("cost: %s\n", res.Metrics.String())
	case "flooding", "referee":
		cfg := kmgraph.BaselineConfig{K: *k, Seed: *seed}
		var res *kmgraph.BaselineResult
		if *algo == "flooding" {
			res, err = kmgraph.FloodingConnectivity(g, cfg)
		} else {
			res, err = kmgraph.RefereeConnectivity(g, cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("components: %d (oracle: %d)\n", res.Components, oracleCount)
		fmt.Printf("cost: %s\n", res.Metrics.String())
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(1)
	}
}
