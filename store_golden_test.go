package kmgraph

// Golden equivalence tests for the shard-direct load path: OpenCluster
// (store-backed or stream-backed) must produce a residency bit-identical
// to NewCluster on the same graph and seed — same partition, same labels
// and forests, same rounds, and the same full Metrics fingerprint (the
// LinkBits matrix included). Any drift means the loader changed the
// simulation, which would invalidate every cross-path comparison the
// E15 experiment makes.

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// clusterFingerprint runs a fixed job sequence against a cluster and
// folds every observable — labels, components, forests, MST edges,
// batch verdicts, phases, rounds, and the full load/total Metrics — into
// comparable values.
type clusterObs struct {
	loadFP, totalFP uint64
	loadRounds      int
	query           QueryResult
	mst             []Edge
	mstWeight       int64
	batch           BatchResult
	query2          QueryResult
	edges           int
}

func observeCluster(t *testing.T, c *Cluster) clusterObs {
	t.Helper()
	ctx := context.Background()
	var o clusterObs
	met := c.Metrics()
	o.loadFP = metricsFingerprint(&met.Load)
	o.loadRounds = met.LoadRounds

	q, err := c.Connectivity(ctx)
	if err != nil {
		t.Fatalf("Connectivity: %v", err)
	}
	o.query = *q

	mst, err := c.MST(ctx)
	if err != nil {
		t.Fatalf("MST: %v", err)
	}
	o.mst, o.mstWeight = mst.Edges, mst.TotalWeight

	ops := []EdgeOp{
		{U: 0, V: 1},
		{U: 2, V: 3, Del: true},
		{U: 5, V: 9, W: 4},
		{U: 5, V: 9}, // duplicate: rejected
	}
	br, err := c.ApplyBatch(ctx, ops)
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	o.batch = *br

	q2, err := c.Connectivity(ctx)
	if err != nil {
		t.Fatalf("second Connectivity: %v", err)
	}
	o.query2 = *q2

	met = c.Metrics()
	o.totalFP = metricsFingerprint(&met.Total)
	o.edges = met.Edges
	return o
}

func TestGoldenOpenClusterMatchesNewCluster(t *testing.T) {
	g := WithDistinctWeights(GNM(800, 2400, 21), 22)
	dir := t.TempDir()
	storePath := filepath.Join(dir, "g.kmgs")
	if err := WriteStore(storePath, g.Source()); err != nil {
		t.Fatalf("WriteStore: %v", err)
	}
	textPath := filepath.Join(dir, "g.txt")
	f, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	opts := []ClusterOption{WithK(8), WithSeed(7)}

	mem, err := NewCluster(g, opts...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer mem.Close()
	want := observeCluster(t, mem)

	for name, open := range map[string]func() (*Cluster, error){
		"store":  func() (*Cluster, error) { return OpenCluster(storePath, opts...) },
		"text":   func() (*Cluster, error) { return OpenCluster(textPath, opts...) },
		"source": func() (*Cluster, error) { return OpenCluster("", append(opts, WithEdgeSource(g.Source()))...) },
	} {
		c, err := open()
		if err != nil {
			t.Fatalf("%s: OpenCluster: %v", name, err)
		}
		got := observeCluster(t, c)
		c.Close()
		if got.loadFP != want.loadFP || got.loadRounds != want.loadRounds {
			t.Errorf("%s: load metrics fingerprint drifted from NewCluster", name)
		}
		if got.totalFP != want.totalFP {
			t.Errorf("%s: total metrics fingerprint drifted from NewCluster", name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: job observables drifted from NewCluster:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

func TestOpenClusterArgumentErrors(t *testing.T) {
	if _, err := OpenCluster(""); err == nil {
		t.Error("empty path without WithEdgeSource accepted")
	}
	if _, err := OpenCluster("/nonexistent/x.kmgs"); err == nil {
		t.Error("missing file accepted")
	}
	g := Path(4)
	if _, err := OpenCluster("some/path", WithEdgeSource(g.Source())); err == nil {
		t.Error("path plus WithEdgeSource accepted")
	}
	if _, err := NewCluster(g, WithEdgeSource(g.Source())); err == nil {
		t.Error("NewCluster with WithEdgeSource accepted")
	}
}

// TestOpenClusterServesStreamedGenerator exercises the full out-of-core
// pipeline in-process: stream a generator to a store on disk, serve it
// with OpenCluster, and check the answer against the streaming
// union-find oracle.
func TestOpenClusterServesStreamedGenerator(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rmat.kmgs")
	src := StreamRMAT(3000, 9000, 5)
	if err := WriteStore(path, src); err != nil {
		t.Fatalf("WriteStore: %v", err)
	}
	stored, closer, err := OpenStoreSource(path)
	if err != nil {
		t.Fatal(err)
	}
	wantComps, err := ComponentsFromSourceOracle(stored)
	closer.Close()
	if err != nil {
		t.Fatal(err)
	}

	c, err := OpenCluster(path, WithK(8), WithSeed(3))
	if err != nil {
		t.Fatalf("OpenCluster: %v", err)
	}
	defer c.Close()
	q, err := c.Connectivity(context.Background())
	if err != nil {
		t.Fatalf("Connectivity: %v", err)
	}
	if q.Components != wantComps {
		t.Fatalf("components: got %d, want %d (oracle)", q.Components, wantComps)
	}
}
