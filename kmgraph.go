// Package kmgraph is a Go implementation of the algorithms from
// "Fast Distributed Algorithms for Connectivity and MST in Large Graphs"
// (Pandurangan, Robinson, Scquizzato; SPAA 2016), together with a faithful
// simulator for the k-machine model they run in.
//
// The library provides:
//
//   - The Õ(n/k²)-round connectivity algorithm (Theorem 1) built from
//     linear graph sketches, randomized proxy machines, and distributed
//     random ranking.
//   - The Õ(n/k²)-round MST algorithm (Theorem 2) with both output
//     criteria.
//   - The O(log n)-approximate min-cut (Theorem 3) and eight verification
//     problems (Theorem 4).
//   - Baselines (flooding, referee, GHS-style edge checking), the REP
//     partition model, a congested-clique conversion simulator, and the
//     Theorem 5 lower-bound harness.
//   - A dynamic-graph subsystem: batched edge insert/delete streams with
//     incrementally maintained linear sketches, answering connectivity /
//     component-count / spanning-forest queries between batches at a
//     fraction of a static re-run's rounds (NewDynamic, cmd/kmstream).
//   - A deterministic k-machine engine with per-link bandwidth accounting,
//     so every reported cost is the model's round complexity.
//
// # Quick start: the resident Cluster
//
// The serving API loads a graph onto k machines once and then runs every
// algorithm as a cancellable job against that residency:
//
//	g := kmgraph.GNM(10_000, 30_000, 1)           // a random graph
//	c, err := kmgraph.NewCluster(g, kmgraph.WithK(16), kmgraph.WithSeed(7))
//	defer c.Close()
//	q, err := c.Connectivity(ctx)                 // q.Components, q.Labels ...
//	mst, err := c.MST(ctx)                        // same residency, no re-load
//	cut, err := c.ApproxMinCut(ctx)
//	ok, err := c.Verify(ctx, kmgraph.ProblemBipartiteness, kmgraph.VerifyArgs{})
//	_, err = c.ApplyBatch(ctx, ops)               // mutate the resident graph
//	q2, err := c.Connectivity(ctx)                // incremental: certificate + banks
//	// c.Metrics().LoadRounds — the load phase, paid exactly once.
//
// # Large graphs: the out-of-core store
//
// Graphs too large to materialize are served shard-direct from disk:
// OpenCluster streams a kmgs binary store (cmd/kmconvert) or a text
// edge list, hashes each endpoint to its owner machine, and fills
// per-machine adjacency shards in place — no coordinator-side Graph,
// and a residency bit-identical to NewCluster's on the same seed:
//
//	c, err := kmgraph.OpenCluster("web.kmgs", kmgraph.WithK(32))
//	q, err := c.Connectivity(ctx)
//
// WithEdgeSource plugs in any EdgeSource stream; WriteStore and
// ConnectivityFromSource round out the streaming surface.
//
// # Serving over the network
//
// cmd/kmserve hosts a registry of named resident Clusters behind an
// HTTP/JSON API (internal/server): every job family becomes an
// endpoint with per-request deadlines, a bounded admission queue with
// 429 backpressure, and a result cache keyed on the graph's mutation
// epoch (Cluster.Epoch) so repeated queries on an unchanged graph cost
// zero simulation rounds. cmd/kmload is the matching closed-loop load
// generator; see the README's "Serving" section and EXPERIMENTS.md E16.
//
// # Migration note: one-shot functions
//
// The original one-shot entry points — Connectivity(g, cfg), MST(g, cfg),
// SpanningTree, ApproxMinCut, the Verify* functions, and NewDynamic —
// remain fully supported; each builds a fresh cluster, pays the load for
// a single run, and tears it down. Prefer them for experiments and
// ablations (they expose per-run knobs like EdgeCheckSelection and
// CountComponents); prefer NewCluster whenever more than one question is
// asked of the same graph, under churn, or when jobs need deadlines and
// cancellation (the one-shot API takes no context).
//
// The experiment harness reproducing every theorem is available via
// AllExperiments and the cmd/kmbench tool; EXPERIMENTS.md records
// paper-vs-measured outcomes.
package kmgraph

import (
	"io"

	"kmgraph/internal/baseline"
	"kmgraph/internal/congested"
	"kmgraph/internal/core"
	"kmgraph/internal/dynamic"
	"kmgraph/internal/experiments"
	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/lowerbound"
	"kmgraph/internal/mincut"
	"kmgraph/internal/rep"
	"kmgraph/internal/store"
	"kmgraph/internal/verify"
)

// Graph is an immutable undirected (optionally weighted) input graph.
type Graph = graph.Graph

// Edge is a canonical undirected edge (U < V).
type Edge = graph.Edge

// GraphBuilder accumulates edges into a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for an n-vertex graph.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Generators (all deterministic in their seed).
var (
	// Path returns the n-vertex path graph.
	Path = graph.Path
	// Cycle returns the n-cycle.
	Cycle = graph.Cycle
	// Star returns a star with n-1 leaves.
	Star = graph.Star
	// Complete returns K_n.
	Complete = graph.Complete
	// Grid returns the rows x cols grid.
	Grid = graph.Grid
	// GNP returns an Erdős–Rényi G(n, p) graph.
	GNP = graph.GNP
	// GNM returns a uniform random graph with exactly m edges.
	GNM = graph.GNM
	// RandomTree returns a shuffled random recursive tree.
	RandomTree = graph.RandomTree
	// RandomConnected returns a connected random graph with m edges.
	RandomConnected = graph.RandomConnected
	// DisjointComponents returns a graph with exactly c components.
	DisjointComponents = graph.DisjointComponents
	// PlantedPartition returns a stochastic block model graph.
	PlantedPartition = graph.PlantedPartition
	// TwoCliquesBridged returns two cliques joined by c bridge edges.
	TwoCliquesBridged = graph.TwoCliquesBridged
	// PruferTree returns an exactly-uniform random labeled tree.
	PruferTree = graph.PruferTree
	// ChungLu returns a power-law (heavy-tailed) random graph — the web
	// graph / social network workload of the paper's introduction.
	ChungLu = graph.ChungLu
	// WithDistinctWeights reweights edges with a random permutation of
	// 1..m (makes the MST unique).
	WithDistinctWeights = graph.WithDistinctWeights
	// WithUniformWeights reweights edges i.i.d. uniform in [1, maxW].
	WithUniformWeights = graph.WithUniformWeights
	// ReadEdgeList parses a whitespace-separated edge-list file.
	ReadEdgeList = graph.ReadEdgeList
	// FromEdges builds a graph directly from a canonical edge list
	// (arena-backed; peak memory is the output graph itself).
	FromEdges = graph.FromEdges
	// DrainEdgeSource collects an EdgeSource into a canonical edge slice
	// (small inputs and tests; the serving path never drains).
	DrainEdgeSource = graph.Drain
	// WriteEdgeList writes a graph as an edge-list file.
	WriteEdgeList = graph.WriteEdgeList
	// MaxDegree returns the maximum degree.
	MaxDegree = graph.MaxDegree
)

// Sequential oracles, for validating distributed results.
var (
	// ComponentsOracle returns per-vertex component labels and the count.
	ComponentsOracle = graph.Components
	// MSTOracle returns the minimum spanning forest and its weight under
	// the library's (weight, edge ID) total order.
	MSTOracle = graph.KruskalMST
	// MinCutOracle returns the exact minimum cut weight (Stoer–Wagner).
	MinCutOracle = graph.MinCut
	// IsBipartiteOracle reports 2-colorability.
	IsBipartiteOracle = graph.IsBipartite
)

// Config parameterizes the connectivity algorithm (and is embedded by the
// other algorithms' configs). The zero value of everything except K is
// sensible: bandwidth defaults to DefaultBandwidth(n).
type Config = core.Config

// Result is a connectivity outcome: labels, component count, phases, and
// engine metrics.
type Result = core.Result

// Connectivity runs the paper's Õ(n/k²) connected-components algorithm
// (Theorem 1) on a random vertex partition of g across cfg.K machines.
//
// One-shot: builds a fresh cluster per call. For repeated questions on
// one graph, use NewCluster and Cluster.Connectivity instead.
func Connectivity(g *Graph, cfg Config) (*Result, error) { return core.Run(g, cfg) }

// EdgeSource is a resettable edge stream — the input contract of the
// shard-direct load path (OpenCluster, ConnectivityFromSource,
// WriteStore). The binary store, text edge lists, in-memory graphs
// (Graph.Source), and the streaming generators all implement it.
type EdgeSource = graph.EdgeSource

// Streaming inputs and generators for the out-of-core load path.
var (
	// OpenEdgeListSource opens a text edge-list file as an EdgeSource
	// without materializing the graph (one sizing scan, then streaming
	// passes). Close it when done.
	OpenEdgeListSource = graph.OpenEdgeList
	// NewEdgeSource wraps a fixed edge slice as an EdgeSource.
	NewEdgeSource = graph.NewSliceSource
	// StreamGNM streams a uniform G(n, m) sample (converter-scale: peak
	// memory is the dedup set, never adjacency).
	StreamGNM = graph.StreamGNM
	// StreamRMAT streams an R-MAT sample (a=0.57, b=c=0.19, d=0.05).
	StreamRMAT = graph.StreamRMAT
	// StreamPowerLaw streams a Chung–Lu-style power-law sample with an
	// exact edge count.
	StreamPowerLaw = graph.StreamPowerLaw
	// ComponentsFromSourceOracle counts connected components of a stream
	// with a one-pass union-find (the O(n)-memory oracle for store-backed
	// runs).
	ComponentsFromSourceOracle = graph.ComponentsFromSource
)

// WriteStore writes an edge stream as a kmgs/v1 binary store at path —
// the container OpenCluster serves shard-direct (see cmd/kmconvert for
// the CLI). The source is streamed twice; peak memory is a compact CSR
// working set, never a materialized Graph.
func WriteStore(path string, src EdgeSource) error { return store.WriteFile(path, src) }

// OpenStoreSource opens a kmgs store as an EdgeSource (mmap-backed,
// zero-copy, checksummed). Close it when done. Most callers want
// OpenCluster(path) directly; this is the escape hatch for feeding a
// store to other consumers (WriteStore round-trips, custom loaders).
func OpenStoreSource(path string) (EdgeSource, io.Closer, error) {
	r, err := store.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return r.Source(), r, nil
}

// ConnectivityFromSource is Connectivity over a streamed input: the
// shard-direct loader fills per-machine adjacency straight from the
// stream (no global Graph), then the algorithm runs unchanged. Results
// and Metrics are bit-identical to Connectivity on the materialized
// graph with the same seed.
func ConnectivityFromSource(src EdgeSource, cfg Config) (*Result, error) {
	return core.RunSource(src, cfg)
}

// MSTConfig parameterizes the MST algorithm.
type MSTConfig = core.MSTConfig

// MSTResult is an MST outcome.
type MSTResult = core.MSTResult

// MST runs the paper's Õ(n/k²) minimum-spanning-tree algorithm
// (Theorem 2). Set StrongOutput for the both-endpoints output criterion.
//
// One-shot: builds a fresh cluster per call. For repeated questions on
// one graph, use NewCluster and Cluster.MST instead.
func MST(g *Graph, cfg MSTConfig) (*MSTResult, error) { return core.RunMST(g, cfg) }

// SpanningTree computes a spanning forest of g in Õ(n/k²) rounds under
// the relaxed (one-machine-per-edge) output criterion — the ST corollary
// the paper's introduction highlights as breaking the Ω̃(n/k) barrier.
// Implemented as MST over unit weights.
func SpanningTree(g *Graph, cfg Config) (*MSTResult, error) {
	return core.RunMST(g, core.MSTConfig{Config: cfg})
}

// EdgeOp is one update (insertion or deletion) in a dynamic edge stream.
type EdgeOp = graph.EdgeOp

// UpdateStream is a batched update stream: an initial graph plus batches
// of edge operations, for replay against a dynamic session.
type UpdateStream = graph.Stream

// Update-stream generators and helpers (all deterministic in their seed).
var (
	// RandomChurnStream mixes random insertions and deletions around an
	// initial G(n, m0) graph (the steady-state serving workload).
	RandomChurnStream = graph.RandomChurnStream
	// SlidingWindowStream inserts arriving edges and expires old ones
	// (the time-decay workload).
	SlidingWindowStream = graph.SlidingWindowStream
	// SplitMergeStream alternately deletes and re-inserts the bridges
	// joining component blocks (the forest-deletion adversary).
	SplitMergeStream = graph.SplitMergeStream
	// ApplyOps replays a batch onto an immutable snapshot (oracle side).
	ApplyOps = graph.ApplyOps
)

// DynamicConfig parameterizes a dynamic session.
type DynamicConfig = dynamic.Config

// Dynamic is a live dynamic-graph session: the graph stays resident
// across the k-machine cluster, per-part linear sketches are maintained
// incrementally under batched edge insertions and deletions (AddItem's ±1
// linearity), and connectivity/component-count/spanning-forest queries
// between batches re-run only the merge/DRR phases from a certificate of
// the previous answer.
type Dynamic = dynamic.Session

// BatchResult reports one applied update batch.
type BatchResult = dynamic.BatchResult

// QueryResult reports one dynamic connectivity query.
type QueryResult = dynamic.QueryResult

// ErrNotConverged is returned by Dynamic.Query when merge phases exhaust
// the per-query cap (persistent sketch failures); the session stays
// usable.
var ErrNotConverged = dynamic.ErrNotConverged

// NewDynamic starts a dynamic session on g across cfg.K machines. The
// static Connectivity algorithm is the degenerate case: a fresh session's
// first Query runs the same merge phases from singleton labels.
//
// A Dynamic session is a resident Cluster restricted to ApplyBatch and
// Query; NewCluster exposes the same residency with the full job API
// (MST, min-cut, verification) and per-job contexts.
func NewDynamic(g *Graph, cfg DynamicConfig) (*Dynamic, error) {
	return dynamic.NewSession(g, cfg)
}

// MinCutConfig parameterizes the approximate min-cut.
type MinCutConfig = mincut.Config

// MinCutResult is a min-cut approximation outcome.
type MinCutResult = mincut.Result

// ApproxMinCut runs the O(log n)-approximate min-cut (Theorem 3).
//
// One-shot: builds a fresh cluster per connectivity run. For repeated
// questions on one graph, use NewCluster and Cluster.ApproxMinCut.
func ApproxMinCut(g *Graph, cfg MinCutConfig) (*MinCutResult, error) {
	return mincut.Approximate(g, cfg)
}

// VerifyOutcome is a verification verdict with cost accounting.
type VerifyOutcome = verify.Outcome

// Verification problems (Theorem 4). One-shot: each call builds a fresh
// cluster per connectivity run; Cluster.Verify serves the same problems
// against a residency.
var (
	// VerifySpanningConnectedSubgraph checks whether H spans G and is
	// connected.
	VerifySpanningConnectedSubgraph = verify.SpanningConnectedSubgraph
	// VerifyCut checks whether removing the edges disconnects G further.
	VerifyCut = verify.Cut
	// VerifySTConnectivity checks whether s and t are connected.
	VerifySTConnectivity = verify.STConnectivity
	// VerifyEdgeOnAllPaths checks whether e lies on every u-v path.
	VerifyEdgeOnAllPaths = verify.EdgeOnAllPaths
	// VerifySTCut checks whether the edge set separates s from t.
	VerifySTCut = verify.STCut
	// VerifyBipartiteness checks 2-colorability via the double cover.
	VerifyBipartiteness = verify.Bipartiteness
	// VerifyCycleContainment checks whether G has any cycle.
	VerifyCycleContainment = verify.CycleContainment
	// VerifyECycleContainment checks whether e lies on some cycle.
	VerifyECycleContainment = verify.ECycleContainment
)

// BaselineConfig parameterizes the baseline algorithms.
type BaselineConfig = baseline.Config

// BaselineResult is a baseline outcome.
type BaselineResult = baseline.Result

// FloodingConnectivity runs the Θ(n/k + D) flooding baseline (§1.2).
func FloodingConnectivity(g *Graph, cfg BaselineConfig) (*BaselineResult, error) {
	return baseline.Flooding(g, cfg)
}

// RefereeConnectivity runs the collect-at-one-machine baseline (§2).
func RefereeConnectivity(g *Graph, cfg BaselineConfig) (*BaselineResult, error) {
	return baseline.Referee(g, cfg)
}

// REPConfig parameterizes the random-edge-partition algorithms (§1.3).
type REPConfig = rep.Config

// REPResult is a REP-model outcome.
type REPResult = rep.Result

// REPMST runs the Θ̃(n/k) REP-model MST (local filtering + conversion).
func REPMST(g *Graph, cfg REPConfig) (*REPResult, error) { return rep.MST(g, cfg) }

// REPConnectivity runs the REP-model spanning-forest algorithm.
func REPConnectivity(g *Graph, cfg REPConfig) (*REPResult, error) {
	return rep.Connectivity(g, cfg)
}

// CliqueTrace is a recorded congested-clique execution.
type CliqueTrace = congested.Trace

// ConvertConfig parameterizes a conversion-theorem replay.
type ConvertConfig = congested.Config

// ConvertResult reports a conversion-theorem replay.
type ConvertResult = congested.ConvertResult

// FloodingCongestedClique records a flooding run in the congested clique.
func FloodingCongestedClique(g *Graph) ([]int, *CliqueTrace) { return congested.FloodingCC(g) }

// ConvertCliqueTrace replays a clique trace in the k-machine model
// (Õ(M/k² + Δ'T/k), Conversion Theorem).
func ConvertCliqueTrace(tr *CliqueTrace, cfg ConvertConfig) (*ConvertResult, error) {
	return congested.Convert(tr, cfg)
}

// DisjointnessInstance is a two-party set-disjointness instance for the
// Theorem 5 lower-bound harness.
type DisjointnessInstance = lowerbound.Instance

// LowerBoundResult reports a lower-bound run (cut traffic, verdicts).
type LowerBoundResult = lowerbound.Result

// NewDisjointnessInstance samples a random-partition DISJ instance.
func NewDisjointnessInstance(b int, seed int64) DisjointnessInstance {
	return lowerbound.RandomInstance(b, seed, lowerbound.ForceNothing)
}

// RunLowerBound solves the Figure-1 SCS instance with the real algorithm
// and meters the Alice/Bob cut traffic (Theorem 5).
func RunLowerBound(inst DisjointnessInstance, cfg Config) (*LowerBoundResult, error) {
	return lowerbound.RunSCS(inst, cfg)
}

// DefaultBandwidth returns the standard per-link budget, a concrete
// O(polylog n): 16·ceil(log2 n)² bits per round.
func DefaultBandwidth(n int) int { return kmachine.Bandwidth(n) }

// Experiment is one unit of the paper-reproduction harness (E1..E12).
type Experiment = experiments.Experiment

// ExperimentParams controls harness runs.
type ExperimentParams = experiments.Params

// AllExperiments returns the full harness, one experiment per paper
// table/figure/theorem (see DESIGN.md §4).
func AllExperiments() []Experiment { return experiments.All() }

// ExperimentByID returns a single experiment (e.g. "E1").
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }
