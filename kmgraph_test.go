package kmgraph

import (
	"context"
	"errors"
	"testing"
)

// Facade smoke tests: the public API end to end, the way a downstream
// user would drive it.

func TestFacadeConnectivity(t *testing.T) {
	g := DisjointComponents(300, 3, 0.4, 1)
	res, err := Connectivity(g, Config{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 3 {
		t.Errorf("components = %d, want 3", res.Components)
	}
	labels, count := ComponentsOracle(g)
	if count != 3 {
		t.Fatal("oracle disagrees with generator")
	}
	_ = labels
}

func TestFacadeMST(t *testing.T) {
	g := WithDistinctWeights(GNM(150, 450, 3), 4)
	res, err := MST(g, MSTConfig{Config: Config{K: 4, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	_, want := MSTOracle(g)
	if res.TotalWeight != want {
		t.Errorf("weight %d, want %d", res.TotalWeight, want)
	}
}

func TestFacadeMinCut(t *testing.T) {
	g := TwoCliquesBridged(12, 2, 6)
	res, err := ApproxMinCut(g, MinCutConfig{Config: Config{K: 4, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate <= 0 {
		t.Error("no estimate")
	}
	if MinCutOracle(g) != 2 {
		t.Error("oracle")
	}
}

func TestFacadeVerifyAndBaselines(t *testing.T) {
	g := Grid(8, 9)
	out, err := VerifyBipartiteness(g, Config{K: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Holds || !IsBipartiteOracle(g) {
		t.Error("grid is bipartite")
	}
	fl, err := FloodingConnectivity(g, BaselineConfig{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Components != 1 {
		t.Error("grid is connected")
	}
	rf, err := RefereeConnectivity(g, BaselineConfig{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rf.Components != 1 {
		t.Error("grid is connected (referee)")
	}
}

func TestFacadeREPAndLowerBound(t *testing.T) {
	g := WithDistinctWeights(GNM(100, 300, 10), 11)
	res, err := REPMST(g, REPConfig{K: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	_, want := MSTOracle(g)
	if res.TotalWeight != want {
		t.Error("REP MST weight mismatch")
	}

	inst := NewDisjointnessInstance(32, 13)
	lb, err := RunLowerBound(inst, Config{K: 4, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if lb.SCSHolds != lb.Disjoint {
		t.Error("SCS != DISJ")
	}
}

func TestFacadeConversion(t *testing.T) {
	g := GNM(120, 360, 15)
	labels, tr := FloodingCongestedClique(g)
	if len(labels) != 120 {
		t.Fatal("labels")
	}
	res, err := ConvertCliqueTrace(tr, ConvertConfig{K: 4, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Error("no conversion cost")
	}
}

func TestFacadeDynamic(t *testing.T) {
	stream := RandomChurnStream(200, 500, 3, 20, 0.5, 9)
	sess, err := NewDynamic(stream.Initial, DynamicConfig{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Query(); err != nil {
		t.Fatal(err)
	}
	snap := stream.Initial
	for i, ops := range stream.Batches {
		br, err := sess.ApplyBatch(ops)
		if err != nil {
			t.Fatal(err)
		}
		if br.Applied != len(ops) {
			t.Fatalf("batch %d: applied %d of %d", i, br.Applied, len(ops))
		}
		snap = ApplyOps(snap, ops)
		q, err := sess.Query()
		if err != nil {
			t.Fatal(err)
		}
		if _, count := ComponentsOracle(snap); q.Components != count {
			t.Fatalf("batch %d: %d components, oracle %d", i, q.Components, count)
		}
		if len(q.Forest) != snap.N()-q.Components {
			t.Fatalf("batch %d: forest size %d", i, len(q.Forest))
		}
	}
}

// TestFacadeCluster drives the resident Cluster API end to end: one graph
// load serving every algorithm family, with the load paid exactly once.
func TestFacadeCluster(t *testing.T) {
	ctx := context.Background()
	g := WithDistinctWeights(RandomConnected(300, 700, 11), 12)
	c, err := NewCluster(g, WithK(4), WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadRounds := c.Metrics().LoadRounds
	if loadRounds <= 0 {
		t.Fatal("no load rounds recorded")
	}

	q, err := c.Connectivity(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, count := ComponentsOracle(g); q.Components != count {
		t.Fatalf("components %d, oracle %d", q.Components, count)
	}
	st, err := c.SpanningTree(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Forest) != g.N()-q.Components {
		t.Fatalf("spanning forest size %d", len(st.Forest))
	}
	mst, err := c.MST(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, want := MSTOracle(g); mst.TotalWeight != want {
		t.Fatalf("MST weight %d, want %d", mst.TotalWeight, want)
	}
	cut, err := c.ApproxMinCut(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Estimate <= 0 {
		t.Fatal("no min-cut estimate for a connected graph")
	}
	bip, err := c.Verify(ctx, ProblemBipartiteness, VerifyArgs{})
	if err != nil {
		t.Fatal(err)
	}
	if bip.Holds != IsBipartiteOracle(g) {
		t.Fatalf("bipartiteness %v, oracle %v", bip.Holds, IsBipartiteOracle(g))
	}
	stc, err := c.Verify(ctx, ProblemSTConnectivity, VerifyArgs{S: 0, T: g.N() - 1})
	if err != nil {
		t.Fatal(err)
	}
	if !stc.Holds {
		t.Fatal("s-t connectivity on a connected graph")
	}
	if _, err := c.ApplyBatch(ctx, []EdgeOp{{U: 0, V: 42, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connectivity(ctx); err != nil {
		t.Fatal(err)
	}

	m := c.Metrics()
	if m.LoadRounds != loadRounds {
		t.Fatalf("load rounds changed %d -> %d: graph was re-loaded", loadRounds, m.LoadRounds)
	}
	if m.Jobs != 8 {
		t.Fatalf("jobs = %d, want 8", m.Jobs)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connectivity(ctx); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("job after close: %v", err)
	}
}

// TestFacadeClusterCancellation: a cancelled context rejects a job before
// it runs, and the cluster keeps serving afterwards.
func TestFacadeClusterCancellation(t *testing.T) {
	g := GNM(200, 500, 21)
	c, err := NewCluster(g, WithK(3), WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Connectivity(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled job: %v", err)
	}
	if _, err := c.Connectivity(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	if len(AllExperiments()) != 13 {
		t.Error("expected 13 experiments")
	}
	if _, err := ExperimentByID("E1"); err != nil {
		t.Error(err)
	}
	if DefaultBandwidth(1024) <= 0 {
		t.Error("bandwidth")
	}
}
