// Package proxy provides the communication layer the paper's algorithms
// are written against:
//
//   - Comm.Exchange, a deterministic bulk point-to-point collective
//     (machines announce per-destination message counts, then stream
//     payloads; the collective completes when every announced message has
//     arrived). All higher-level protocols are built from exchanges.
//   - RelayBroadcast, the paper's §2.2 routing trick: the source splits its
//     payload into k-1 chunks, sends chunk i across link i, and every
//     machine rebroadcasts its chunk — distributing b bits to all machines
//     in O(b/(k·B)) rounds instead of O(b/B).
//   - Shared randomness (Setup/SetupBits) and the derived proxy-selection
//     hash h_{j,ρ}, component ranks, and per-phase sketch seeds.
//
// Communication via random proxy machines (Lemma 1) is then simply: send
// each component part's message to Shared.ProxyOf(phase, iter, label) in
// one Exchange.
package proxy

import (
	"fmt"
	"sort"

	"kmgraph/internal/hashing"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/wire"
)

// Out is an outgoing payload addressed to a machine.
type Out struct {
	Dst  int
	Data []byte
}

const (
	kindCount   = 0
	kindPayload = 1
)

// Comm wraps a machine context with exchange sequencing. All machines must
// execute the same sequence of collective calls (SPMD).
type Comm struct {
	ctx     *kmachine.Ctx
	seq     uint64
	pending map[uint64][]kmachine.Message
}

// NewComm returns a collective communicator over ctx.
func NewComm(ctx *kmachine.Ctx) *Comm {
	return &Comm{ctx: ctx, pending: make(map[uint64][]kmachine.Message)}
}

// Ctx returns the underlying machine context.
func (c *Comm) Ctx() *kmachine.Ctx { return c.ctx }

func frame(seq uint64, kind byte, payload []byte) []byte {
	buf := make([]byte, 0, len(payload)+10)
	buf = wire.AppendUvarint(buf, seq)
	buf = append(buf, kind)
	return append(buf, payload...)
}

// Exchange performs one collective all-to-all delivery: this machine sends
// the given messages; the call returns every message addressed to this
// machine in this collective, sorted by (source, send order). The round
// cost is driven by the largest per-link traffic, which is how Lemma 1's
// load-balancing manifests.
func (c *Comm) Exchange(out []Out) []kmachine.Message {
	k := c.ctx.K()
	seq := c.seq
	c.seq++

	counts := make([]uint64, k)
	for _, o := range out {
		counts[o.Dst]++
	}
	// Announce counts to every machine (including zero counts, so
	// receivers know when they are done).
	for d := 0; d < k; d++ {
		if d == c.ctx.ID() {
			continue
		}
		c.ctx.Send(d, frame(seq, kindCount, wire.AppendUvarint(nil, counts[d])))
	}
	for _, o := range out {
		c.ctx.Send(o.Dst, frame(seq, kindPayload, o.Data))
	}

	expected := make([]int64, k)
	for i := range expected {
		expected[i] = -1
	}
	expected[c.ctx.ID()] = int64(counts[c.ctx.ID()])
	got := make([]int64, k)
	var recv []kmachine.Message

	process := func(m kmachine.Message) error {
		r := wire.NewReader(m.Data)
		mseq := r.Uvarint()
		if r.Err() != nil {
			return fmt.Errorf("proxy: bad frame from %d", m.Src)
		}
		if mseq != seq {
			if mseq < seq {
				return fmt.Errorf("proxy: stale frame seq %d < %d from %d", mseq, seq, m.Src)
			}
			c.pending[mseq] = append(c.pending[mseq], m)
			return nil
		}
		if r.Len() < 1 {
			return fmt.Errorf("proxy: empty frame from %d", m.Src)
		}
		kind := m.Data[len(m.Data)-r.Len()]
		body := m.Data[len(m.Data)-r.Len()+1:]
		switch kind {
		case kindCount:
			rr := wire.NewReader(body)
			expected[m.Src] = int64(rr.Uvarint())
			if rr.Done() != nil {
				return fmt.Errorf("proxy: bad count frame from %d", m.Src)
			}
		case kindPayload:
			recv = append(recv, kmachine.Message{Src: m.Src, Dst: m.Dst, Data: body})
			got[m.Src]++
		default:
			return fmt.Errorf("proxy: unknown frame kind %d", kind)
		}
		return nil
	}

	done := func() bool {
		for i := 0; i < k; i++ {
			if expected[i] < 0 || got[i] < expected[i] {
				return false
			}
		}
		return true
	}

	// Drain frames buffered by earlier collectives first.
	if buf, ok := c.pending[seq]; ok {
		delete(c.pending, seq)
		for _, m := range buf {
			if err := process(m); err != nil {
				panic(err)
			}
		}
	}
	for !done() {
		for _, m := range c.ctx.Step() {
			if err := process(m); err != nil {
				panic(err)
			}
		}
	}
	sort.SliceStable(recv, func(i, j int) bool { return recv[i].Src < recv[j].Src })
	return recv
}

// GatherTo sends data from every machine to root; root receives all k
// blobs indexed by source machine, others receive nil.
func (c *Comm) GatherTo(root int, data []byte) [][]byte {
	recv := c.Exchange([]Out{{Dst: root, Data: data}})
	if c.ctx.ID() != root {
		return nil
	}
	out := make([][]byte, c.ctx.K())
	for _, m := range recv {
		out[m.Src] = m.Data
	}
	return out
}

// BroadcastFrom sends data from root to every machine directly (root's
// links carry the full payload). Everyone returns the data.
func (c *Comm) BroadcastFrom(root int, data []byte) []byte {
	var out []Out
	if c.ctx.ID() == root {
		for d := 0; d < c.ctx.K(); d++ {
			if d != root {
				out = append(out, Out{Dst: d, Data: data})
			}
		}
	}
	recv := c.Exchange(out)
	if c.ctx.ID() == root {
		return data
	}
	if len(recv) != 1 {
		panic(fmt.Sprintf("proxy: broadcast expected 1 message, got %d", len(recv)))
	}
	return recv[0].Data
}

// RelayBroadcast distributes data from root to all machines using the
// paper's two-phase relay (§2.2): root scatters k-1 chunks, then every
// machine rebroadcasts its chunk. For b bits this costs O(b/(kB)) rounds
// instead of the O(b/B) of a direct broadcast. Everyone returns the data.
func (c *Comm) RelayBroadcast(root int, data []byte) []byte {
	k := c.ctx.K()
	if k == 1 {
		c.Exchange(nil)
		c.Exchange(nil)
		return data
	}
	// Phase 1: scatter chunk i to relay machine i.
	var out []Out
	if c.ctx.ID() == root {
		// Relays are all machines except root; chunk r goes to relay r.
		relays := make([]int, 0, k-1)
		for d := 0; d < k; d++ {
			if d != root {
				relays = append(relays, d)
			}
		}
		per := (len(data) + len(relays) - 1) / len(relays)
		for i, d := range relays {
			lo := i * per
			hi := lo + per
			if lo > len(data) {
				lo = len(data)
			}
			if hi > len(data) {
				hi = len(data)
			}
			body := wire.AppendUvarint(nil, uint64(i))
			body = wire.AppendUvarint(body, uint64(len(data)))
			body = wire.AppendBytes(body, data[lo:hi])
			out = append(out, Out{Dst: d, Data: body})
		}
	}
	recv := c.Exchange(out)

	// Phase 2: every relay rebroadcasts its chunk.
	out = nil
	var myChunk []byte
	if c.ctx.ID() != root && len(recv) == 1 {
		myChunk = recv[0].Data
		for d := 0; d < k; d++ {
			if d != c.ctx.ID() && d != root {
				out = append(out, Out{Dst: d, Data: myChunk})
			}
		}
	}
	recv = c.Exchange(out)
	if c.ctx.ID() == root {
		return data
	}

	// Reassemble: my own chunk plus everyone else's.
	chunks := make(map[int][]byte)
	var total uint64
	add := func(body []byte) {
		r := wire.NewReader(body)
		idx := int(r.Uvarint())
		total = r.Uvarint()
		chunk := r.Bytes()
		if r.Done() != nil {
			panic("proxy: bad relay chunk")
		}
		chunks[idx] = chunk
	}
	if myChunk != nil {
		add(myChunk)
	}
	for _, m := range recv {
		add(m.Data)
	}
	outBuf := make([]byte, 0, total)
	for i := 0; len(outBuf) < int(total); i++ {
		ch, ok := chunks[i]
		if !ok {
			panic("proxy: missing relay chunk")
		}
		outBuf = append(outBuf, ch...)
	}
	return outBuf[:total]
}

// AllReduceU64 combines one value per machine with op (must be associative
// and commutative) and returns the result on every machine. Implemented as
// gather-to-0 plus broadcast: O(1) exchanges of O(k) tiny messages.
func (c *Comm) AllReduceU64(x uint64, op func(a, b uint64) uint64) uint64 {
	blobs := c.GatherTo(0, wire.AppendU64(nil, x))
	var res uint64
	var buf []byte
	if c.ctx.ID() == 0 {
		res = x
		for src, b := range blobs {
			if src == 0 || b == nil {
				continue
			}
			r := wire.NewReader(b)
			res = op(res, r.U64())
		}
		buf = wire.AppendU64(nil, res)
	}
	buf = c.BroadcastFrom(0, buf)
	r := wire.NewReader(buf)
	return r.U64()
}

// AllSum returns the sum of x over all machines, on every machine.
func (c *Comm) AllSum(x uint64) uint64 {
	return c.AllReduceU64(x, func(a, b uint64) uint64 { return a + b })
}

// AllMax returns the max of x over all machines, on every machine.
func (c *Comm) AllMax(x uint64) uint64 {
	return c.AllReduceU64(x, func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	})
}

// Shared is the shared randomness established by Setup: a seed all
// machines agree on, from which proxy hashes h_{j,ρ}, DRR ranks, and
// per-phase sketch matrices are derived (DESIGN.md substitution #2; the
// faithful bulk-bits path is SetupBits).
type Shared struct {
	seed uint64
}

// Setup has machine 0 draw 8 random bytes and relay-broadcast them; every
// machine returns an identical Shared.
func Setup(c *Comm) *Shared {
	var data []byte
	if c.ctx.ID() == 0 {
		data = wire.AppendU64(nil, c.ctx.Rand().Uint64())
	}
	data = c.RelayBroadcast(0, data)
	r := wire.NewReader(data)
	return &Shared{seed: r.U64()}
}

// SetupBits distributes nBytes of true random bits from machine 0 to all
// machines via the relay broadcast — the paper's faithful construction for
// building d-wise independent hash functions from Θ(d log n) shared bits.
// Every machine returns the identical byte string.
func SetupBits(c *Comm, nBytes int) []byte {
	var data []byte
	if c.ctx.ID() == 0 {
		data = make([]byte, nBytes)
		for i := range data {
			data[i] = byte(c.ctx.Rand().Intn(256))
		}
	}
	return c.RelayBroadcast(0, data)
}

// NewSharedFromSeed builds a Shared directly (for tests).
func NewSharedFromSeed(seed uint64) *Shared { return &Shared{seed: seed} }

// Seed returns the shared seed.
func (s *Shared) Seed() uint64 { return s.seed }

// ProxyOf returns the proxy machine h_{phase,iter}(label) in [0, k) for a
// component label at a given (phase, iteration). Fresh (phase, iter) pairs
// give fresh independent assignments, as Lemma 5 requires.
func (s *Shared) ProxyOf(phase, iter int, label uint64, k int) int {
	return hashing.RangeOf(hashing.Hash4(s.seed^0x9909, uint64(phase), uint64(iter), label), k)
}

// Rank returns the DRR rank of a component for a phase (§2.5). Distinct
// labels yield independent uniform 64-bit ranks, so ties are negligible —
// the Θ(log n)-bit accuracy remark of the paper.
func (s *Shared) Rank(phase int, label uint64) uint64 {
	return hashing.Hash3(s.seed^0x4a4b, uint64(phase), label)
}

// SketchSeed derives the shared seed of the phase/iteration sketch matrix
// L_j (a fresh linear projection per phase, §2.3).
func (s *Shared) SketchSeed(phase, iter int) uint64 {
	return hashing.Hash3(s.seed^0x5e7c, uint64(phase), uint64(iter))
}

// BankSeed derives the shared seed of persistent sketch bank b: the
// session-long linear projections the dynamic subsystem maintains
// incrementally under edge churn (static runs instead draw fresh per-phase
// seeds via SketchSeed). The namespace is disjoint from SketchSeed's.
func (s *Shared) BankSeed(b int) uint64 {
	return hashing.Hash3(s.seed^0xd1ba9c, 0x5e551011, uint64(b))
}
