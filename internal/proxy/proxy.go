// Package proxy provides the communication layer the paper's algorithms
// are written against:
//
//   - Comm.Exchange, a deterministic bulk point-to-point collective
//     (machines announce per-destination message counts, then stream
//     payloads; the collective completes when every announced message has
//     arrived). All higher-level protocols are built from exchanges.
//   - RelayBroadcast, the paper's §2.2 routing trick: the source splits its
//     payload into k-1 chunks, sends chunk i across link i, and every
//     machine rebroadcasts its chunk — distributing b bits to all machines
//     in O(b/(k·B)) rounds instead of O(b/B).
//   - Shared randomness (Setup/SetupBits) and the derived proxy-selection
//     hash h_{j,ρ}, component ranks, and per-phase sketch seeds.
//
// Communication via random proxy machines (Lemma 1) is then simply: send
// each component part's message to Shared.ProxyOf(phase, iter, label) in
// one Exchange.
package proxy

import (
	"encoding/binary"
	"fmt"

	"kmgraph/internal/hashing"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/wire"
)

// Out is an outgoing payload addressed to a machine.
//
// Framed marks a payload built with FrameHeadroom reserved bytes in front
// (see Comm.FramedPayload): Exchange stamps the frame header into the
// reservation instead of copying the whole payload into a fresh frame —
// the zero-copy path for large messages.
type Out struct {
	Dst    int
	Data   []byte
	Framed bool
}

// FrameHeadroom is the reservation, in bytes, preceding a Framed payload:
// room for the largest uvarint sequence number plus the kind byte.
const FrameHeadroom = 11

// FramedPayload interns body into the arena with FrameHeadroom reserved
// bytes in front and returns the payload for an Out with Framed set. The
// body bytes are stable; the reservation is stamped by Exchange at send
// time.
func (c *Comm) FramedPayload(body []byte) []byte {
	var headroom [FrameHeadroom]byte
	a := c.ctx.Arena()
	buf := a.Grab(FrameHeadroom + len(body))
	buf = append(buf, headroom[:]...)
	buf = append(buf, body...)
	return a.Commit(buf)
}

const (
	kindCount   = 0
	kindPayload = 1
)

// Comm wraps a machine context with exchange sequencing. All machines must
// execute the same sequence of collective calls (SPMD).
type Comm struct {
	ctx     *kmachine.Ctx
	seq     uint64
	pending map[uint64][]kmachine.Message

	// Reused per-collective scratch (k-sized, zeroed each Exchange).
	counts   []uint64
	expected []int64
	got      []int64
	recvBuf  []kmachine.Message
}

// NewComm returns a collective communicator over ctx.
func NewComm(ctx *kmachine.Ctx) *Comm {
	k := ctx.K()
	return &Comm{
		ctx:      ctx,
		pending:  make(map[uint64][]kmachine.Message),
		counts:   make([]uint64, k),
		expected: make([]int64, k),
		got:      make([]int64, k),
	}
}

// Ctx returns the underlying machine context.
func (c *Comm) Ctx() *kmachine.Ctx { return c.ctx }

// Arena returns the machine's message arena; collective payloads built on
// it avoid a heap allocation per message.
func (c *Comm) Arena() *wire.Arena { return c.ctx.Arena() }

// frame seals (seq, kind, payload) into an arena-backed message.
func (c *Comm) frame(seq uint64, kind byte, payload []byte) []byte {
	a := c.ctx.Arena()
	buf := a.Grab(len(payload) + 11)
	buf = wire.AppendUvarint(buf, seq)
	buf = append(buf, kind)
	buf = append(buf, payload...)
	return a.Commit(buf)
}

// Exchange performs one collective all-to-all delivery: this machine sends
// the given messages; the call returns every message addressed to this
// machine in this collective, sorted by (source, send order). The round
// cost is driven by the largest per-link traffic, which is how Lemma 1's
// load-balancing manifests.
//
// The returned slice is reused by the next collective call on c; consume
// it before then (retaining individual messages' Data bytes is fine).
func (c *Comm) Exchange(out []Out) []kmachine.Message {
	k := c.ctx.K()
	seq := c.seq
	c.seq++

	a := c.ctx.Arena()
	counts := c.counts
	for i := range counts {
		counts[i] = 0
	}
	for _, o := range out {
		counts[o.Dst]++
	}
	// Announce counts to every machine (including zero counts, so
	// receivers know when they are done).
	for d := 0; d < k; d++ {
		if d == c.ctx.ID() {
			continue
		}
		buf := a.Grab(21)
		buf = wire.AppendUvarint(buf, seq)
		buf = append(buf, kindCount)
		buf = wire.AppendUvarint(buf, counts[d])
		c.ctx.Send(d, a.Commit(buf))
	}
	for _, o := range out {
		if o.Framed {
			// Stamp the header right-aligned into the reservation; payloads
			// shared by several Outs get identical stamps, so re-stamping is
			// idempotent.
			var hdr [FrameHeadroom]byte
			hn := binary.PutUvarint(hdr[:], seq)
			start := FrameHeadroom - hn - 1
			copy(o.Data[start:], hdr[:hn])
			o.Data[FrameHeadroom-1] = kindPayload
			c.ctx.Send(o.Dst, o.Data[start:])
			continue
		}
		c.ctx.Send(o.Dst, c.frame(seq, kindPayload, o.Data))
	}

	expected := c.expected
	for i := range expected {
		expected[i] = -1
	}
	expected[c.ctx.ID()] = int64(counts[c.ctx.ID()])
	got := c.got
	for i := range got {
		got[i] = 0
	}
	recv := c.recvBuf[:0]

	process := func(m kmachine.Message) error {
		r := wire.NewReader(m.Data)
		mseq := r.Uvarint()
		if r.Err() != nil {
			return fmt.Errorf("proxy: bad frame from %d", m.Src)
		}
		if mseq != seq {
			if mseq < seq {
				return fmt.Errorf("proxy: stale frame seq %d < %d from %d", mseq, seq, m.Src)
			}
			c.pending[mseq] = append(c.pending[mseq], m)
			return nil
		}
		if r.Len() < 1 {
			return fmt.Errorf("proxy: empty frame from %d", m.Src)
		}
		kind := m.Data[len(m.Data)-r.Len()]
		body := m.Data[len(m.Data)-r.Len()+1:]
		switch kind {
		case kindCount:
			rr := wire.NewReader(body)
			expected[m.Src] = int64(rr.Uvarint())
			if rr.Done() != nil {
				return fmt.Errorf("proxy: bad count frame from %d", m.Src)
			}
		case kindPayload:
			recv = append(recv, kmachine.Message{Src: m.Src, Dst: m.Dst, Data: body})
			got[m.Src]++
		default:
			return fmt.Errorf("proxy: unknown frame kind %d", kind)
		}
		return nil
	}

	done := func() bool {
		for i := 0; i < k; i++ {
			if expected[i] < 0 || got[i] < expected[i] {
				return false
			}
		}
		return true
	}

	// Drain frames buffered by earlier collectives first.
	if buf, ok := c.pending[seq]; ok {
		delete(c.pending, seq)
		for _, m := range buf {
			if err := process(m); err != nil {
				panic(err)
			}
		}
	}
	for !done() {
		for _, m := range c.ctx.Step() {
			if err := process(m); err != nil {
				panic(err)
			}
		}
	}
	// Stable sort by source. Arrivals are a concatenation of per-round
	// deliveries, each already ascending in Src, so insertion sort runs in
	// O(messages · rounds-in-collective) — near linear — with no allocation.
	for i := 1; i < len(recv); i++ {
		for j := i; j > 0 && recv[j-1].Src > recv[j].Src; j-- {
			recv[j-1], recv[j] = recv[j], recv[j-1]
		}
	}
	c.recvBuf = recv
	return recv
}

// GatherTo sends data from every machine to root; root receives all k
// blobs indexed by source machine, others receive nil.
func (c *Comm) GatherTo(root int, data []byte) [][]byte {
	recv := c.Exchange([]Out{{Dst: root, Data: data}})
	if c.ctx.ID() != root {
		return nil
	}
	out := make([][]byte, c.ctx.K())
	for _, m := range recv {
		out[m.Src] = m.Data
	}
	return out
}

// BroadcastFrom sends data from root to every machine directly (root's
// links carry the full payload). Everyone returns the data.
func (c *Comm) BroadcastFrom(root int, data []byte) []byte {
	var out []Out
	if c.ctx.ID() == root {
		for d := 0; d < c.ctx.K(); d++ {
			if d != root {
				out = append(out, Out{Dst: d, Data: data})
			}
		}
	}
	recv := c.Exchange(out)
	if c.ctx.ID() == root {
		return data
	}
	if len(recv) != 1 {
		panic(fmt.Sprintf("proxy: broadcast expected 1 message, got %d", len(recv)))
	}
	return recv[0].Data
}

// RelayBroadcast distributes data from root to all machines using the
// paper's two-phase relay (§2.2): root scatters k-1 chunks, then every
// machine rebroadcasts its chunk. For b bits this costs O(b/(kB)) rounds
// instead of the O(b/B) of a direct broadcast. Everyone returns the data.
func (c *Comm) RelayBroadcast(root int, data []byte) []byte {
	k := c.ctx.K()
	if k == 1 {
		c.Exchange(nil)
		c.Exchange(nil)
		return data
	}
	// Phase 1: scatter chunk i to relay machine i.
	var out []Out
	if c.ctx.ID() == root {
		// Relays are all machines except root; chunk r goes to relay r.
		relays := make([]int, 0, k-1)
		for d := 0; d < k; d++ {
			if d != root {
				relays = append(relays, d)
			}
		}
		per := (len(data) + len(relays) - 1) / len(relays)
		for i, d := range relays {
			lo := i * per
			hi := lo + per
			if lo > len(data) {
				lo = len(data)
			}
			if hi > len(data) {
				hi = len(data)
			}
			a := c.ctx.Arena()
			body := a.Grab(hi - lo + 30)
			body = wire.AppendUvarint(body, uint64(i))
			body = wire.AppendUvarint(body, uint64(len(data)))
			body = wire.AppendBytes(body, data[lo:hi])
			out = append(out, Out{Dst: d, Data: a.Commit(body)})
		}
	}
	recv := c.Exchange(out)

	// Phase 2: every relay rebroadcasts its chunk.
	out = nil
	var myChunk []byte
	if c.ctx.ID() != root && len(recv) == 1 {
		myChunk = recv[0].Data
		for d := 0; d < k; d++ {
			if d != c.ctx.ID() && d != root {
				out = append(out, Out{Dst: d, Data: myChunk})
			}
		}
	}
	recv = c.Exchange(out)
	if c.ctx.ID() == root {
		return data
	}

	// Reassemble: my own chunk plus everyone else's.
	chunks := make(map[int][]byte)
	var total uint64
	add := func(body []byte) {
		r := wire.NewReader(body)
		idx := int(r.Uvarint())
		total = r.Uvarint()
		chunk := r.Bytes()
		if r.Done() != nil {
			panic("proxy: bad relay chunk")
		}
		chunks[idx] = chunk
	}
	if myChunk != nil {
		add(myChunk)
	}
	for _, m := range recv {
		add(m.Data)
	}
	outBuf := make([]byte, 0, total)
	for i := 0; len(outBuf) < int(total); i++ {
		ch, ok := chunks[i]
		if !ok {
			panic("proxy: missing relay chunk")
		}
		outBuf = append(outBuf, ch...)
	}
	return outBuf[:total]
}

// AllReduceU64 combines one value per machine with op (must be associative
// and commutative) and returns the result on every machine. Implemented as
// gather-to-0 plus broadcast: O(1) exchanges of O(k) tiny messages.
func (c *Comm) AllReduceU64(x uint64, op func(a, b uint64) uint64) uint64 {
	a := c.ctx.Arena()
	blobs := c.GatherTo(0, a.Commit(wire.AppendU64(a.Grab(8), x)))
	var res uint64
	var buf []byte
	if c.ctx.ID() == 0 {
		res = x
		for src, b := range blobs {
			if src == 0 || b == nil {
				continue
			}
			r := wire.NewReader(b)
			res = op(res, r.U64())
		}
		buf = a.Commit(wire.AppendU64(a.Grab(8), res))
	}
	buf = c.BroadcastFrom(0, buf)
	r := wire.NewReader(buf)
	return r.U64()
}

// AllSum returns the sum of x over all machines, on every machine.
func (c *Comm) AllSum(x uint64) uint64 {
	return c.AllReduceU64(x, func(a, b uint64) uint64 { return a + b })
}

// AllMax returns the max of x over all machines, on every machine.
func (c *Comm) AllMax(x uint64) uint64 {
	return c.AllReduceU64(x, func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	})
}

// Shared is the shared randomness established by Setup: a seed all
// machines agree on, from which proxy hashes h_{j,ρ}, DRR ranks, and
// per-phase sketch matrices are derived (DESIGN.md substitution #2; the
// faithful bulk-bits path is SetupBits).
type Shared struct {
	seed uint64
}

// Setup has machine 0 draw 8 random bytes and relay-broadcast them; every
// machine returns an identical Shared.
func Setup(c *Comm) *Shared {
	var data []byte
	if c.ctx.ID() == 0 {
		data = wire.AppendU64(nil, c.ctx.Rand().Uint64())
	}
	data = c.RelayBroadcast(0, data)
	r := wire.NewReader(data)
	return &Shared{seed: r.U64()}
}

// SetupBits distributes nBytes of true random bits from machine 0 to all
// machines via the relay broadcast — the paper's faithful construction for
// building d-wise independent hash functions from Θ(d log n) shared bits.
// Every machine returns the identical byte string.
func SetupBits(c *Comm, nBytes int) []byte {
	var data []byte
	if c.ctx.ID() == 0 {
		data = make([]byte, nBytes)
		for i := range data {
			data[i] = byte(c.ctx.Rand().Intn(256))
		}
	}
	return c.RelayBroadcast(0, data)
}

// NewSharedFromSeed builds a Shared directly (for tests).
func NewSharedFromSeed(seed uint64) *Shared { return &Shared{seed: seed} }

// Seed returns the shared seed.
func (s *Shared) Seed() uint64 { return s.seed }

// ProxyOf returns the proxy machine h_{phase,iter}(label) in [0, k) for a
// component label at a given (phase, iteration). Fresh (phase, iter) pairs
// give fresh independent assignments, as Lemma 5 requires.
func (s *Shared) ProxyOf(phase, iter int, label uint64, k int) int {
	return hashing.RangeOf(hashing.Hash4(s.seed^0x9909, uint64(phase), uint64(iter), label), k)
}

// Rank returns the DRR rank of a component for a phase (§2.5). Distinct
// labels yield independent uniform 64-bit ranks, so ties are negligible —
// the Θ(log n)-bit accuracy remark of the paper.
func (s *Shared) Rank(phase int, label uint64) uint64 {
	return hashing.Hash3(s.seed^0x4a4b, uint64(phase), label)
}

// SketchSeed derives the shared seed of the phase/iteration sketch matrix
// L_j (a fresh linear projection per phase, §2.3).
func (s *Shared) SketchSeed(phase, iter int) uint64 {
	return hashing.Hash3(s.seed^0x5e7c, uint64(phase), uint64(iter))
}

// BankSeed derives the shared seed of persistent sketch bank b: the
// session-long linear projections the dynamic subsystem maintains
// incrementally under edge churn (static runs instead draw fresh per-phase
// seeds via SketchSeed). The namespace is disjoint from SketchSeed's.
func (s *Shared) BankSeed(b int) uint64 {
	return hashing.Hash3(s.seed^0xd1ba9c, 0x5e551011, uint64(b))
}
