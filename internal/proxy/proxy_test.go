package proxy

import (
	"bytes"
	"fmt"
	"testing"

	"kmgraph/internal/kmachine"
	"kmgraph/internal/wire"
)

func newCluster(t *testing.T, k, bw int) *kmachine.Cluster {
	t.Helper()
	c, err := kmachine.New(kmachine.Config{K: k, BandwidthBits: bw, MessageOverheadBits: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExchangeAllToAll(t *testing.T) {
	k := 5
	c := newCluster(t, k, 4096)
	res, err := c.Run(func(ctx *kmachine.Ctx) error {
		comm := NewComm(ctx)
		var out []Out
		for d := 0; d < k; d++ {
			out = append(out, Out{Dst: d, Data: []byte{byte(ctx.ID()), byte(d)}})
		}
		recv := comm.Exchange(out)
		if len(recv) != k {
			return fmt.Errorf("machine %d: got %d messages", ctx.ID(), len(recv))
		}
		for i, m := range recv {
			if m.Src != i {
				return fmt.Errorf("machine %d: recv[%d].Src = %d", ctx.ID(), i, m.Src)
			}
			if m.Data[0] != byte(i) || m.Data[1] != byte(ctx.ID()) {
				return fmt.Errorf("machine %d: bad payload %v", ctx.ID(), m.Data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DroppedMessages != 0 {
		t.Errorf("dropped = %d", res.Metrics.DroppedMessages)
	}
}

func TestExchangeUnevenAndEmpty(t *testing.T) {
	k := 4
	c := newCluster(t, k, 2048)
	_, err := c.Run(func(ctx *kmachine.Ctx) error {
		comm := NewComm(ctx)
		// Machine 0 sends 3 messages to machine 2; others send nothing.
		var out []Out
		if ctx.ID() == 0 {
			for i := 0; i < 3; i++ {
				out = append(out, Out{Dst: 2, Data: []byte{byte(i)}})
			}
		}
		recv := comm.Exchange(out)
		want := 0
		if ctx.ID() == 2 {
			want = 3
		}
		if len(recv) != want {
			return fmt.Errorf("machine %d: got %d, want %d", ctx.ID(), len(recv), want)
		}
		// FIFO order from same source.
		if ctx.ID() == 2 {
			for i, m := range recv {
				if int(m.Data[0]) != i {
					return fmt.Errorf("out of order: %v", recv)
				}
			}
		}
		// A second, completely empty exchange must also terminate.
		if got := comm.Exchange(nil); len(got) != 0 {
			return fmt.Errorf("empty exchange returned %d", len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangePipelining(t *testing.T) {
	// Back-to-back exchanges with large payloads: frames of exchange i+1
	// queue behind exchange i and must be buffered by seq, not lost.
	k := 3
	c := newCluster(t, k, 256) // tight bandwidth forces overlap
	_, err := c.Run(func(ctx *kmachine.Ctx) error {
		comm := NewComm(ctx)
		for round := 0; round < 4; round++ {
			var out []Out
			payload := bytes.Repeat([]byte{byte(round)}, 200)
			out = append(out, Out{Dst: (ctx.ID() + 1) % k, Data: payload})
			recv := comm.Exchange(out)
			if len(recv) != 1 {
				return fmt.Errorf("round %d: %d messages", round, len(recv))
			}
			if recv[0].Data[0] != byte(round) || len(recv[0].Data) != 200 {
				return fmt.Errorf("round %d: bad payload", round)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeSelfDelivery(t *testing.T) {
	c := newCluster(t, 3, 1024)
	_, err := c.Run(func(ctx *kmachine.Ctx) error {
		comm := NewComm(ctx)
		recv := comm.Exchange([]Out{{Dst: ctx.ID(), Data: []byte("me")}})
		if len(recv) != 1 || string(recv[0].Data) != "me" {
			return fmt.Errorf("self delivery broken: %v", recv)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherBroadcast(t *testing.T) {
	k := 6
	c := newCluster(t, k, 2048)
	_, err := c.Run(func(ctx *kmachine.Ctx) error {
		comm := NewComm(ctx)
		blobs := comm.GatherTo(2, []byte{byte(ctx.ID() * 3)})
		if ctx.ID() == 2 {
			for i := 0; i < k; i++ {
				if blobs[i] == nil || blobs[i][0] != byte(i*3) {
					return fmt.Errorf("gather blob %d = %v", i, blobs[i])
				}
			}
		} else if blobs != nil {
			return fmt.Errorf("non-root got blobs")
		}
		got := comm.BroadcastFrom(2, []byte{99})
		if len(got) != 1 || got[0] != 99 {
			return fmt.Errorf("broadcast got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRelayBroadcastCorrectAndFaster(t *testing.T) {
	k := 8
	payload := make([]byte, 8000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	runWith := func(relay bool) int {
		c := newCluster(t, k, 512)
		res, err := c.Run(func(ctx *kmachine.Ctx) error {
			comm := NewComm(ctx)
			var data []byte
			if ctx.ID() == 0 {
				data = payload
			}
			var got []byte
			if relay {
				got = comm.RelayBroadcast(0, data)
			} else {
				got = comm.BroadcastFrom(0, data)
			}
			if !bytes.Equal(got, payload) {
				return fmt.Errorf("machine %d: payload mismatch (len %d)", ctx.ID(), len(got))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.Rounds
	}
	direct := runWith(false)
	relayed := runWith(true)
	if relayed >= direct {
		t.Errorf("relay (%d rounds) not faster than direct (%d rounds)", relayed, direct)
	}
	// Relay should approach a (k-1)/2 speedup for large payloads.
	if float64(direct)/float64(relayed) < 2 {
		t.Errorf("relay speedup only %.1fx (direct=%d relay=%d)", float64(direct)/float64(relayed), direct, relayed)
	}
}

func TestRelayBroadcastSmallAndK1(t *testing.T) {
	// Tiny payloads and k=2 edge cases.
	for _, k := range []int{2, 3} {
		c := newCluster(t, k, 1024)
		_, err := c.Run(func(ctx *kmachine.Ctx) error {
			comm := NewComm(ctx)
			var data []byte
			if ctx.ID() == 0 {
				data = []byte{42}
			}
			got := comm.RelayBroadcast(0, data)
			if len(got) != 1 || got[0] != 42 {
				return fmt.Errorf("k=%d machine %d: %v", k, ctx.ID(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllReduce(t *testing.T) {
	k := 7
	c := newCluster(t, k, 2048)
	_, err := c.Run(func(ctx *kmachine.Ctx) error {
		comm := NewComm(ctx)
		sum := comm.AllSum(uint64(ctx.ID()))
		if sum != 21 {
			return fmt.Errorf("sum = %d", sum)
		}
		max := comm.AllMax(uint64(ctx.ID() * 10))
		if max != 60 {
			return fmt.Errorf("max = %d", max)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSharedSetupAgreement(t *testing.T) {
	k := 5
	c := newCluster(t, k, 2048)
	res, err := c.Run(func(ctx *kmachine.Ctx) error {
		comm := NewComm(ctx)
		sh := Setup(comm)
		ctx.SetOutput(sh.Seed())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Outputs[0].(uint64)
	for i, o := range res.Outputs {
		if o.(uint64) != first {
			t.Errorf("machine %d seed %d != %d", i, o, first)
		}
	}
}

func TestSetupBitsAgreementAndCost(t *testing.T) {
	k := 8
	nBytes := 4096
	c := newCluster(t, k, 1024)
	res, err := c.Run(func(ctx *kmachine.Ctx) error {
		comm := NewComm(ctx)
		bits := SetupBits(comm, nBytes)
		ctx.SetOutput(bits)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := res.Outputs[0].([]byte)
	if len(ref) != nBytes {
		t.Fatalf("got %d bytes", len(ref))
	}
	for i := 1; i < k; i++ {
		if !bytes.Equal(res.Outputs[i].([]byte), ref) {
			t.Fatalf("machine %d bits differ", i)
		}
	}
	// Cost sanity: relay distribution of b bits should be well under the
	// direct-broadcast cost b*8/B rounds.
	if res.Metrics.Rounds > nBytes*8/1024 {
		t.Errorf("relay distribution too slow: %d rounds", res.Metrics.Rounds)
	}
}

func TestSharedDerivedFunctions(t *testing.T) {
	sh := NewSharedFromSeed(123)
	// ProxyOf covers all machines reasonably uniformly.
	k := 10
	counts := make([]int, k)
	for label := uint64(0); label < 5000; label++ {
		p := sh.ProxyOf(3, 1, label, k)
		if p < 0 || p >= k {
			t.Fatalf("proxy out of range: %d", p)
		}
		counts[p]++
	}
	for i, ct := range counts {
		if ct < 250 || ct > 1000 {
			t.Errorf("proxy %d count %d far from uniform", i, ct)
		}
	}
	// Different phases give different assignments.
	diff := 0
	for label := uint64(0); label < 100; label++ {
		if sh.ProxyOf(1, 0, label, k) != sh.ProxyOf(2, 0, label, k) {
			diff++
		}
	}
	if diff < 50 {
		t.Error("phase should reshuffle proxies")
	}
	// Ranks distinct for distinct labels (w.h.p.).
	seen := map[uint64]bool{}
	for label := uint64(0); label < 1000; label++ {
		r := sh.Rank(1, label)
		if seen[r] {
			t.Fatal("rank collision")
		}
		seen[r] = true
	}
	// Sketch seeds differ by phase and iteration.
	if sh.SketchSeed(1, 0) == sh.SketchSeed(2, 0) || sh.SketchSeed(1, 0) == sh.SketchSeed(1, 1) {
		t.Error("sketch seeds should vary")
	}
}

func TestRelayBroadcastNonZeroRoot(t *testing.T) {
	k := 5
	payload := bytes.Repeat([]byte{0xAB}, 3000)
	c := newCluster(t, k, 512)
	_, err := c.Run(func(ctx *kmachine.Ctx) error {
		comm := NewComm(ctx)
		var data []byte
		if ctx.ID() == 3 {
			data = payload
		}
		got := comm.RelayBroadcast(3, data)
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("machine %d: mismatch (len %d)", ctx.ID(), len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesSingleMachine(t *testing.T) {
	c, err := kmachine.New(kmachine.Config{K: 1, BandwidthBits: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(func(ctx *kmachine.Ctx) error {
		comm := NewComm(ctx)
		if got := comm.AllSum(7); got != 7 {
			return fmt.Errorf("AllSum = %d", got)
		}
		if got := comm.RelayBroadcast(0, []byte{9}); len(got) != 1 || got[0] != 9 {
			return fmt.Errorf("relay = %v", got)
		}
		recv := comm.Exchange([]Out{{Dst: 0, Data: []byte{1}}})
		if len(recv) != 1 {
			return fmt.Errorf("self exchange = %d", len(recv))
		}
		sh := Setup(comm)
		if sh == nil {
			return fmt.Errorf("nil shared")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRelayBroadcast(t *testing.T) {
	c := newCluster(t, 4, 1024)
	_, err := c.Run(func(ctx *kmachine.Ctx) error {
		comm := NewComm(ctx)
		got := comm.RelayBroadcast(0, nil)
		if len(got) != 0 {
			return fmt.Errorf("want empty, got %d bytes", len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeDeterministicRounds(t *testing.T) {
	run := func() int {
		c := newCluster(t, 4, 512)
		res, err := c.Run(func(ctx *kmachine.Ctx) error {
			comm := NewComm(ctx)
			for i := 0; i < 3; i++ {
				var out []Out
				for d := 0; d < 4; d++ {
					out = append(out, Out{Dst: d, Data: wire.AppendU64(nil, uint64(ctx.ID()*100+i))})
				}
				comm.Exchange(out)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.Rounds
	}
	if a, b := run(), run(); a != b {
		t.Errorf("rounds differ: %d vs %d", a, b)
	}
}
