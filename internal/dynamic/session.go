package dynamic

import (
	"errors"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
)

const (
	cmdApply = iota
	cmdQuery
	cmdClose
)

// hostCmd is a control-plane command: its arrival is free (the host tells
// every machine what operation comes next), but batch contents ride only
// on machine 0's copy and are distributed in-model at metered cost.
//
// wake is the determinism gate: each machine unparks and acks, then blocks
// on wake until the host has seen all k acks. This guarantees every
// machine has re-entered the round barrier before any machine steps, so
// barrier grouping — and therefore per-command round counts — cannot
// depend on goroutine scheduling.
type hostCmd struct {
	kind int
	ops  []graph.EdgeOp // machine 0 (ingress) only
	wake chan struct{}
}

// reply is one machine's out-of-band result for one command — the model's
// designated output variables o_i, read between commands.
type reply struct {
	id     int
	rounds int
	// batch
	applied int
	rejIns  int
	rejDel  int
	// query
	labels        map[int]uint64
	components    int
	forest        []graph.Edge
	phases        int
	failures      int64
	collapseIters int
	relabeled     int
	certEdges     int
	mergeEdges    int
	converged     bool
}

// Session is a live dynamic-graph session: a k-machine cluster kept
// resident, accepting update batches and connectivity queries until
// closed. Sessions are not safe for concurrent use; commands are strictly
// sequential, as the SPMD machines execute them in lockstep.
type Session struct {
	cfg    Config
	ccfg   core.Config
	n      int
	k      int
	banksN int

	cmds    []chan hostCmd
	replyCh chan reply
	ackCh   chan int
	done    chan struct{}
	result  *kmachine.Result
	runErr  error

	lastMaxRound int
	closed       bool
	batches      int
	queries      int
}

// NewSession loads g across a fresh cluster under a random vertex
// partition and blocks until every machine finishes setup (shared
// randomness, bank seeds, resident adjacency).
func NewSession(g *graph.Graph, cfg Config) (*Session, error) {
	n := g.N()
	if err := validConfig(n, cfg); err != nil {
		return nil, err
	}
	ccfg := cfg.coreConfig(n)
	banksN := cfg.Banks
	if banksN <= 0 {
		banksN = defaultBanks(n)
	}
	cluster, err := kmachine.New(kmachine.Config{
		K:                   ccfg.K,
		BandwidthBits:       ccfg.BandwidthBits,
		MessageOverheadBits: ccfg.MessageOverheadBits,
		Seed:                ccfg.Seed,
		MaxRounds:           ccfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}
	part := kmachine.NewRVP(g, ccfg.K, uint64(ccfg.Seed)^0x9e37)

	s := &Session{
		cfg:     cfg,
		ccfg:    ccfg,
		n:       n,
		k:       ccfg.K,
		banksN:  banksN,
		cmds:    make([]chan hostCmd, ccfg.K),
		replyCh: make(chan reply, ccfg.K),
		ackCh:   make(chan int, ccfg.K),
		done:    make(chan struct{}),
	}
	for i := range s.cmds {
		s.cmds[i] = make(chan hostCmd, 1)
	}
	go func() {
		res, err := cluster.Run(func(ctx *kmachine.Ctx) error {
			lv := part.View(ctx.ID())
			view := newDynView(n, ctx.ID(), lv.Home, lv.Owned(), lv.Adj)
			m := &dynMachine{
				s:      s,
				ctx:    ctx,
				mg:     core.NewMerger(ctx, view, ccfg),
				view:   view,
				ccfg:   ccfg,
				banksN: banksN,
			}
			return m.loop()
		})
		s.result = res
		s.runErr = err
		close(s.done)
	}()

	rs, err := s.collect()
	if err != nil {
		return nil, err
	}
	for _, r := range rs {
		if r.rounds > s.lastMaxRound {
			s.lastMaxRound = r.rounds
		}
	}
	return s, nil
}

func (s *Session) err() error {
	if s.runErr != nil {
		return s.runErr
	}
	return errors.New("dynamic: cluster terminated unexpectedly")
}

// collect gathers one reply per machine, preferring buffered replies over
// the termination signal so late replies from a dying cluster still land.
func (s *Session) collect() ([]reply, error) {
	rs := make([]reply, s.k)
	for got := 0; got < s.k; got++ {
		select {
		case r := <-s.replyCh:
			rs[r.id] = r
		default:
			select {
			case r := <-s.replyCh:
				rs[r.id] = r
			case <-s.done:
				return nil, s.err()
			}
		}
	}
	return rs, nil
}

// dispatch sends a command to every machine and completes the wake
// handshake: all machines unpark and ack before the gate opens and any of
// them steps.
func (s *Session) dispatch(c hostCmd) error {
	c.wake = make(chan struct{})
	for i := 0; i < s.k; i++ {
		cc := c
		if i != 0 {
			cc.ops = nil
		}
		select {
		case s.cmds[i] <- cc:
		case <-s.done:
			return s.err()
		}
	}
	for i := 0; i < s.k; i++ {
		select {
		case <-s.ackCh:
		case <-s.done:
			return s.err()
		}
	}
	close(c.wake)
	return nil
}

// command broadcasts a command (control plane), waits for all replies, and
// returns them plus the cluster-round delta the command cost.
func (s *Session) command(c hostCmd) ([]reply, int, error) {
	if s.closed {
		return nil, 0, ErrClosed
	}
	if err := s.dispatch(c); err != nil {
		return nil, 0, err
	}
	rs, err := s.collect()
	if err != nil {
		return nil, 0, err
	}
	maxR := s.lastMaxRound
	for _, r := range rs {
		if r.rounds > maxR {
			maxR = r.rounds
		}
	}
	delta := maxR - s.lastMaxRound
	s.lastMaxRound = maxR
	return rs, delta, nil
}

// ApplyBatch applies a batch of edge operations in order. Self-loops and
// out-of-range endpoints are rejected at ingress; duplicate insertions and
// deletions of absent edges are rejected by the endpoint home machines
// (and counted), leaving the graph, sketches, and certificate untouched.
func (s *Session) ApplyBatch(ops []graph.EdgeOp) (*BatchResult, error) {
	clean := make([]graph.EdgeOp, 0, len(ops))
	invalid := 0
	for _, op := range ops {
		op = op.Canon()
		if op.U == op.V || op.U < 0 || op.V >= s.n {
			invalid++
			continue
		}
		clean = append(clean, op)
	}
	rs, rounds, err := s.command(hostCmd{kind: cmdApply, ops: clean})
	if err != nil {
		return nil, err
	}
	s.batches++
	r0 := rs[0]
	return &BatchResult{
		Ops:             len(ops),
		Applied:         r0.applied,
		RejectedInserts: r0.rejIns,
		RejectedDeletes: r0.rejDel,
		RejectedInvalid: invalid,
		Rounds:          rounds,
	}, nil
}

// Query answers connectivity on the current graph: component labels, the
// component count, and a spanning forest, plus this query's incremental
// cost accounting.
func (s *Session) Query() (*QueryResult, error) {
	rs, rounds, err := s.command(hostCmd{kind: cmdQuery})
	if err != nil {
		return nil, err
	}
	s.queries++
	res := &QueryResult{Labels: make([]uint64, s.n), Rounds: rounds}
	converged := true
	for _, r := range rs {
		for v, l := range r.labels {
			res.Labels[v] = l
		}
		if r.phases > res.Phases {
			res.Phases = r.phases
		}
		if r.collapseIters > res.CollapseIters {
			res.CollapseIters = r.collapseIters
		}
		res.SketchFailures += r.failures
		converged = converged && r.converged
	}
	r0 := rs[0]
	res.Components = r0.components
	res.Forest = r0.forest
	res.RelabeledVertices = r0.relabeled
	res.CertificateEdges = r0.certEdges
	res.MergeEdges = r0.mergeEdges
	if !converged {
		return res, ErrNotConverged
	}
	return res, nil
}

// N returns the (fixed) vertex count.
func (s *Session) N() int { return s.n }

// K returns the machine count.
func (s *Session) K() int { return s.k }

// Rounds returns the cumulative engine rounds consumed so far (setup
// included).
func (s *Session) Rounds() int { return s.lastMaxRound }

// Batches returns the number of batches applied so far.
func (s *Session) Batches() int { return s.batches }

// Queries returns the number of queries answered so far.
func (s *Session) Queries() int { return s.queries }

// Close shuts the cluster down and returns the session-wide engine
// metrics. Further commands return ErrClosed; Close is idempotent.
func (s *Session) Close() (*sessionMetrics, error) {
	if !s.closed {
		s.closed = true
		s.dispatch(hostCmd{kind: cmdClose})
	}
	<-s.done
	if s.result != nil {
		return &s.result.Metrics, s.runErr
	}
	return nil, s.runErr
}
