package dynamic

import (
	"reflect"
	"testing"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
)

// assertMatchesOracle checks a query against the sequential oracle: same
// component count, same partition (up to label renaming), a valid spanning
// forest, and the label-is-a-member invariant.
func assertMatchesOracle(t *testing.T, g *graph.Graph, q *QueryResult) {
	t.Helper()
	oracle, count := graph.Components(g)
	if q.Components != count {
		t.Fatalf("components = %d, oracle = %d", q.Components, count)
	}
	min := make(map[uint64]int)
	for v, l := range q.Labels {
		if m, ok := min[l]; !ok || v < m {
			min[l] = v
		}
	}
	for v, l := range q.Labels {
		if min[l] != oracle[v] {
			t.Fatalf("vertex %d: dynamic class min %d != oracle label %d", v, min[l], oracle[v])
		}
		if q.Labels[int(l)] != l {
			t.Fatalf("label %d is not a member of its own class", l)
		}
	}
	if len(q.Forest) != g.N()-count {
		t.Fatalf("forest has %d edges, want %d", len(q.Forest), g.N()-count)
	}
	uf := graph.NewUnionFind(g.N())
	for _, e := range q.Forest {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("forest edge (%d,%d) not in graph", e.U, e.V)
		}
		if !uf.Union(e.U, e.V) {
			t.Fatalf("forest cycle at (%d,%d)", e.U, e.V)
		}
	}
	if uf.Count() != count {
		t.Fatalf("forest spans %d components, oracle %d", uf.Count(), count)
	}
}

// replay runs a stream through a session, checking every batch's result
// and every query against the oracle snapshot; it returns the per-batch
// results for further assertions.
func replay(t *testing.T, s *graph.Stream, cfg Config) ([]*BatchResult, []*QueryResult) {
	t.Helper()
	sess, err := NewSession(s.Initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	snap := s.Initial
	if q, err := sess.Query(); err != nil {
		t.Fatal(err)
	} else {
		assertMatchesOracle(t, snap, q)
	}
	var brs []*BatchResult
	var qrs []*QueryResult
	for i, ops := range s.Batches {
		br, err := sess.ApplyBatch(ops)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if br.Applied != len(ops) || br.RejectedInserts+br.RejectedDeletes+br.RejectedInvalid != 0 {
			t.Fatalf("batch %d: clean stream saw rejections: %+v", i, br)
		}
		snap = graph.ApplyOps(snap, ops)
		q, err := sess.Query()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		assertMatchesOracle(t, snap, q)
		brs = append(brs, br)
		qrs = append(qrs, q)
	}
	return brs, qrs
}

func TestChurnStreamMatchesOracle(t *testing.T) {
	s := graph.RandomChurnStream(300, 600, 6, 30, 0.5, 17)
	replay(t, s, Config{K: 4, Seed: 11})
}

func TestSlidingWindowMatchesOracle(t *testing.T) {
	s := graph.SlidingWindowStream(200, 420, 5, 40, 9)
	replay(t, s, Config{K: 4, Seed: 5})
}

func TestSplitMergeAdversary(t *testing.T) {
	s := graph.SplitMergeStream(160, 4, 6, 3)
	_, qrs := replay(t, s, Config{K: 4, Seed: 23})
	for i, q := range qrs {
		want := 1
		if i%2 == 0 {
			want = 4
		}
		if q.Components != want {
			t.Fatalf("batch %d: components = %d, want %d", i, q.Components, want)
		}
	}
	// Split batches delete forest edges, so the certificate must relabel a
	// nonempty dirty region.
	if qrs[0].RelabeledVertices == 0 {
		t.Fatal("split batch relabeled no vertices")
	}
}

func TestCoinMergeAndLevelWise(t *testing.T) {
	s := graph.RandomChurnStream(150, 300, 3, 20, 0.5, 29)
	replay(t, s, Config{K: 3, Seed: 7, CoinMerge: true})
	replay(t, s, Config{K: 3, Seed: 7, CollapseLevelWise: true})
}

// TestStaticEquivalence pins the "static run = one-shot dynamic session"
// property: a session queried once on its initial graph answers exactly
// what the static algorithm and the oracle answer.
func TestStaticEquivalence(t *testing.T) {
	g := graph.GNM(400, 700, 3)
	cfg := Config{K: 5, Seed: 13}
	sess, err := NewSession(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	q, err := sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, g, q)
	static, err := core.Run(g, core.Config{K: 5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if q.Components != static.Components {
		t.Fatalf("dynamic %d components, static %d", q.Components, static.Components)
	}
}

func TestEdgeCases(t *testing.T) {
	g := graph.Path(50) // 0-1-...-49
	sess, err := NewSession(g, Config{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Empty batch.
	br, err := sess.ApplyBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if br.Applied != 0 || br.Rounds <= 0 {
		t.Fatalf("empty batch: %+v", br)
	}

	// Duplicate insert, delete of a non-existent edge, invalid ops.
	br, err = sess.ApplyBatch([]graph.EdgeOp{
		{U: 0, V: 1, W: 1},          // duplicate: path already has it
		{Del: true, U: 0, V: 2},     // absent edge
		{U: 7, V: 7, W: 1},          // self-loop
		{U: -1, V: 3, W: 1},         // out of range
		{Del: true, U: 10, V: 1000}, // out of range
	})
	if err != nil {
		t.Fatal(err)
	}
	want := BatchResult{Ops: 5, Applied: 0, RejectedInserts: 1, RejectedDeletes: 1, RejectedInvalid: 3, Rounds: br.Rounds}
	if *br != want {
		t.Fatalf("got %+v, want %+v", *br, want)
	}
	q, err := sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, g, q)

	// Delete-then-reinsert within one batch: net no-op on the graph, both
	// ops applied, and connectivity intact.
	br, err = sess.ApplyBatch([]graph.EdgeOp{
		{Del: true, U: 24, V: 25},
		{U: 24, V: 25, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Applied != 2 || br.RejectedDeletes+br.RejectedInserts != 0 {
		t.Fatalf("delete-then-reinsert: %+v", br)
	}
	q, err = sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, g, q)
	if q.Components != 1 {
		t.Fatalf("components = %d, want 1", q.Components)
	}

	// Reinsert-after-query of a previously deleted forest edge.
	if _, err := sess.ApplyBatch([]graph.EdgeOp{{Del: true, U: 10, V: 11}}); err != nil {
		t.Fatal(err)
	}
	q, err = sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	if q.Components != 2 {
		t.Fatalf("after split: components = %d, want 2", q.Components)
	}
	if _, err := sess.ApplyBatch([]graph.EdgeOp{{U: 10, V: 11, W: 1}}); err != nil {
		t.Fatal(err)
	}
	q, err = sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	if q.Components != 1 {
		t.Fatalf("after reinsert: components = %d, want 1", q.Components)
	}
	assertMatchesOracle(t, graph.Path(50), q)
}

// TestDeterminism: identical seeds must reproduce identical results —
// including round counts — across separate sessions.
func TestDeterminism(t *testing.T) {
	s := graph.RandomChurnStream(200, 400, 4, 25, 0.5, 31)
	cfg := Config{K: 4, Seed: 19}
	br1, qr1 := replay(t, s, cfg)
	br2, qr2 := replay(t, s, cfg)
	if !reflect.DeepEqual(br1, br2) {
		t.Fatalf("batch results differ across identical sessions:\n%+v\n%+v", br1, br2)
	}
	if !reflect.DeepEqual(qr1, qr2) {
		t.Fatal("query results differ across identical sessions")
	}
}

// TestIncrementalCheaperThanStatic is the acceptance property at test
// scale: after the initial build-up query, a 1%-churn batch query must
// cost strictly fewer rounds than a fresh static run on the same
// snapshot.
func TestIncrementalCheaperThanStatic(t *testing.T) {
	n, m, k := 1000, 3000, 8
	s := graph.RandomChurnStream(n, m, 3, m/100, 0.5, 41)
	cfg := Config{K: k, Seed: 47}
	sess, err := NewSession(s.Initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Query(); err != nil { // initial build-up
		t.Fatal(err)
	}
	snap := s.Initial
	for i, ops := range s.Batches {
		if _, err := sess.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		snap = graph.ApplyOps(snap, ops)
		q, err := sess.Query()
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesOracle(t, snap, q)
		static, err := core.Run(snap, core.Config{K: k, Seed: 47})
		if err != nil {
			t.Fatal(err)
		}
		if q.Rounds >= static.Metrics.Rounds {
			t.Fatalf("batch %d: incremental query cost %d rounds, static %d",
				i, q.Rounds, static.Metrics.Rounds)
		}
		t.Logf("batch %d: incremental %d rounds (%d phases, %d relabeled) vs static %d rounds",
			i, q.Rounds, q.Phases, q.RelabeledVertices, static.Metrics.Rounds)
	}
}

// TestSessionLifecycle checks Close idempotence and post-close errors.
func TestSessionLifecycle(t *testing.T) {
	sess, err := NewSession(graph.Cycle(30), Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(); err != nil {
		t.Fatal(err)
	}
	met, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if met.Rounds <= 0 || met.DroppedMessages != 0 {
		t.Fatalf("bad session metrics: %+v", met)
	}
	if _, err := sess.ApplyBatch(nil); err != ErrClosed {
		t.Fatalf("ApplyBatch after close: %v", err)
	}
	if _, err := sess.Query(); err != ErrClosed {
		t.Fatalf("Query after close: %v", err)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
