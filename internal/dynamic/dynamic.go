// Package dynamic is the batched dynamic-graph subsystem's compatibility
// surface. The implementation — resident sketch banks, the certificate
// forest at machine 0, the park/unpark serving loop — moved into the
// shared resident substrate (internal/resident), where it serves as the
// ApplyBatch/Query job family of the general resident cluster alongside
// MST, min-cut, and verification jobs. This package remains as a thin
// shim so existing callers (and the kmgraph.NewDynamic API) keep working:
// a Session is a resident Engine restricted to batches and queries, with
// background contexts.
//
// See the internal/resident package documentation for the design: how
// linearity makes incremental bank maintenance cheap, how the certificate
// keeps clean components free at query time, and how the shared merge
// engine makes a fresh session's first query exactly the static
// algorithm.
package dynamic

import (
	"context"

	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/resident"
)

// Config parameterizes a dynamic session. It is the resident engine's
// configuration; the zero value of everything except K is sensible.
type Config = resident.Config

// BatchResult reports one applied update batch.
type BatchResult = resident.BatchResult

// QueryResult reports one connectivity query.
type QueryResult = resident.QueryResult

// ErrNotConverged is returned by Query when the merge phases exhausted
// MaxPhasesPerQuery with components still active (persistent sketch
// failures); the session remains usable and the query may be retried.
var ErrNotConverged = resident.ErrNotConverged

// ErrClosed is returned by operations on a closed session.
var ErrClosed = resident.ErrClosed

// Session is a live dynamic-graph session: a resident cluster accepting
// update batches and connectivity queries until closed. Commands are
// serialized by the engine's job queue, so a Session is safe for
// concurrent use (callers queue in submission order).
type Session struct {
	e *resident.Engine
}

// NewSession loads g across a fresh resident cluster under a random
// vertex partition and blocks until every machine finishes the load phase
// (shared randomness, bank seeds, resident adjacency).
func NewSession(g *graph.Graph, cfg Config) (*Session, error) {
	e, err := resident.New(g, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{e: e}, nil
}

// Engine exposes the underlying resident engine (the full job API:
// contexts, MST, min-cut, verification).
func (s *Session) Engine() *resident.Engine { return s.e }

// ApplyBatch applies a batch of edge operations in order. Self-loops and
// out-of-range endpoints are rejected at ingress; duplicate insertions and
// deletions of absent edges are rejected by the endpoint home machines
// (and counted), leaving the graph, sketches, and certificate untouched.
func (s *Session) ApplyBatch(ops []graph.EdgeOp) (*BatchResult, error) {
	return s.e.ApplyBatch(context.Background(), ops)
}

// Query answers connectivity on the current graph: component labels, the
// component count, and a spanning forest, plus this query's incremental
// cost accounting.
func (s *Session) Query() (*QueryResult, error) {
	return s.e.Query(context.Background())
}

// N returns the (fixed) vertex count.
func (s *Session) N() int { return s.e.N() }

// K returns the machine count.
func (s *Session) K() int { return s.e.K() }

// Rounds returns the cumulative engine rounds consumed so far (setup
// included).
func (s *Session) Rounds() int { return s.e.Rounds() }

// Batches returns the number of batches applied so far.
func (s *Session) Batches() int { return s.e.Batches() }

// Queries returns the number of queries answered so far.
func (s *Session) Queries() int { return s.e.Queries() }

// Close shuts the cluster down and returns the session-wide engine
// metrics. Further commands return ErrClosed; Close is idempotent.
func (s *Session) Close() (*kmachine.Metrics, error) { return s.e.Close() }
