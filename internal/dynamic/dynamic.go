// Package dynamic is the batched dynamic-graph subsystem: it keeps a graph
// resident across the k-machine cluster and answers connectivity,
// component-count, and spanning-forest queries between batched streams of
// edge insertions and deletions — without re-running the static algorithm
// from scratch on every snapshot.
//
// Three ideas make the incremental path cheap; all three are consequences
// of the paper's choice of *linear* graph sketches (§2.3):
//
//  1. Persistent sketch banks. Each machine maintains, per component part
//     it holds and per "bank" (a session-long sketch projection seeded by
//     shared randomness, proxy.Shared.BankSeed), the sum of its vertices'
//     l0-sketches. Linearity means an edge insertion is AddItem(id, +1),
//     a deletion is AddItem(id, -1), parts merge by sketch addition when
//     components merge, and split parts are rebuilt locally from the
//     mutable adjacency — never any global re-sketching. Query phase p
//     samples from bank p, so a phase whose sample fails retries on an
//     independent projection in the next phase.
//
//  2. A certificate forest at machine 0. Machine 0 is the stream ingress:
//     it routes each batch to the endpoints' home machines and therefore
//     legitimately accumulates a *certificate* of the current
//     connectivity — the spanning forest found by the previous query plus
//     the net insertions since. At query time it recomputes connected
//     pieces of the certificate locally (local computation is free in the
//     model) and ships only the *changed* vertex labels, so a clean
//     component costs nothing and a deletion that splits a component
//     resets exactly the affected piece. The Boruvka merge phases then
//     run from this piece labeling instead of from singletons, needing
//     ~log(#affected pieces) phases rather than ~log(n).
//
//  3. The shared merge engine. The per-phase merge machinery — DRR
//     ranking, tree collapse over re-randomized proxies, root-label
//     broadcast — is core.Merger, the same code the static connectivity
//     and MST algorithms run, so a dynamic session with an empty
//     certificate executes exactly the static algorithm (the one-batch
//     equivalence the tests pin down). Each query's sampled merge edges
//     flow back to machine 0 and, together with the certificate pieces'
//     spanning subforest, form the next certificate forest.
//
// Cost model: every step is metered by the same engine as the static
// algorithms — batch routing, label shipping, part-sketch exchanges, and
// merge phases all pay their rounds. Command arrival (the fact that a
// batch or query happened) is control plane and free; batch *contents*
// enter only at machine 0 and are distributed in-model. Per-command round
// costs are reported in BatchResult/QueryResult, measured as the increase
// of the cluster-wide round counter.
//
// Known limitation, inherited from one-shot linear sketching: bank
// randomness is drawn once per session, so sketch-failure events are not
// independent across queries that reuse a bank. For oblivious streams
// (anything generated independently of the session seed, e.g. the
// graph.Stream generators) failures stay at the static algorithm's rate
// and are retried on fresh banks in subsequent phases; a query that still
// fails to converge within MaxPhasesPerQuery returns ErrNotConverged
// rather than a wrong answer.
package dynamic

import (
	"errors"
	"fmt"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/sketch"
)

// Config parameterizes a dynamic session. The zero value of everything
// except K is sensible.
type Config struct {
	// K is the number of machines.
	K int
	// BandwidthBits is the per-link budget; 0 selects kmachine.Bandwidth(n).
	BandwidthBits int
	// Seed drives the vertex partition and all private coins.
	Seed int64
	// MaxPhasesPerQuery caps Boruvka phases per query; 0 selects the
	// static default, 12·ceil(log2 n) + 4.
	MaxPhasesPerQuery int
	// Banks is the number of persistent sketch banks maintained; query
	// phase p draws from bank p mod Banks. 0 selects 2·ceil(log2 n) + 4.
	Banks int
	// Sketch overrides sketch parameters; zero selects
	// sketch.DefaultParams(n).
	Sketch sketch.Params
	// CollapseLevelWise, CoinMerge, and FaithfulRandomness select the same
	// ablations as the static core.Config.
	CollapseLevelWise  bool
	CoinMerge          bool
	FaithfulRandomness bool
	// MessageOverheadBits models per-message framing (0 = 64).
	MessageOverheadBits int
	// MaxRounds aborts runaway sessions (0 = 5,000,000 cumulative rounds).
	MaxRounds int
}

const defaultSessionMaxRounds = 5_000_000

// coreConfig resolves the session config into the shared core.Config.
func (c Config) coreConfig(n int) core.Config {
	cc := core.Config{
		K:                   c.K,
		BandwidthBits:       c.BandwidthBits,
		Seed:                c.Seed,
		MaxPhases:           c.MaxPhasesPerQuery,
		Sketch:              c.Sketch,
		CollapseLevelWise:   c.CollapseLevelWise,
		CoinMerge:           c.CoinMerge,
		FaithfulRandomness:  c.FaithfulRandomness,
		MessageOverheadBits: c.MessageOverheadBits,
		MaxRounds:           c.MaxRounds,
	}
	cc = cc.WithDefaults(n)
	if cc.MaxRounds == 0 {
		cc.MaxRounds = defaultSessionMaxRounds
	}
	return cc
}

func defaultBanks(n int) int {
	l := 0
	for s := 1; s < n; s <<= 1 {
		l++
	}
	return 2*l + 4
}

// BatchResult reports one applied update batch.
type BatchResult struct {
	// Ops is the number of operations submitted (including invalid ones).
	Ops int
	// Applied is the number of operations that mutated the graph.
	Applied int
	// RejectedInserts counts insertions of already-present edges.
	RejectedInserts int
	// RejectedDeletes counts deletions of absent edges.
	RejectedDeletes int
	// RejectedInvalid counts self-loops and out-of-range endpoints
	// (rejected at ingress, before any routing).
	RejectedInvalid int
	// Rounds is the number of engine rounds the batch cost (routing ops to
	// home machines and collecting accept/reject verdicts).
	Rounds int
}

// QueryResult reports one connectivity query.
type QueryResult struct {
	// Labels[v] is the component label of vertex v at query time; equal
	// labels mean same component (w.h.p.). Labels are member vertex IDs.
	Labels []uint64
	// Components is the number of connected components.
	Components int
	// Forest is a spanning forest of the queried snapshot, canonical form,
	// sorted by edge ID.
	Forest []graph.Edge
	// Phases is the number of Boruvka merge phases this query ran.
	Phases int
	// Rounds is the number of engine rounds this query cost.
	Rounds int
	// SketchFailures counts failed bank-sample recoveries this query.
	SketchFailures int64
	// CollapseIters counts tree-collapse iterations this query.
	CollapseIters int
	// RelabeledVertices is the size of the dirty region: how many vertices
	// the certificate step relabeled before the merge phases (0 for a
	// query on an unchanged or insert-merged-only graph).
	RelabeledVertices int
	// CertificateEdges is the size of the certificate (forest + net
	// insertions) machine 0 recomputed pieces from.
	CertificateEdges int
	// MergeEdges is the number of fresh forest edges discovered by this
	// query's merge phases (i.e. bank-sketch samples that won a merge).
	MergeEdges int
}

// SameComponent reports whether u and v were connected at query time.
func (r *QueryResult) SameComponent(u, v int) bool {
	if u < 0 || v < 0 || u >= len(r.Labels) || v >= len(r.Labels) {
		return false
	}
	return r.Labels[u] == r.Labels[v]
}

// ErrNotConverged is returned by Query when the merge phases exhausted
// MaxPhasesPerQuery with components still active (persistent sketch
// failures); the session remains usable and the query may be retried.
var ErrNotConverged = errors.New("dynamic: query did not converge within MaxPhasesPerQuery")

// ErrClosed is returned by operations on a closed session.
var ErrClosed = errors.New("dynamic: session closed")

func validConfig(n int, cfg Config) error {
	if cfg.K < 1 {
		return fmt.Errorf("dynamic: K = %d, need >= 1", cfg.K)
	}
	if n < 1 {
		return fmt.Errorf("dynamic: empty vertex set")
	}
	return nil
}

// sessionMetrics is a type alias kept small so session.go can return the
// engine metrics without re-exporting kmachine.
type sessionMetrics = kmachine.Metrics
