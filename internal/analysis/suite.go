// Package analysis assembles the kmvet suite: the five domain analyzers
// that enforce the engine's determinism, hot-path, and wire-protocol
// invariants. See each analyzer's package doc for its semantics and the
// kit package for the directive vocabulary (//km:hotpath, //km:exhaustive,
// //km:roundpure, //kmvet:ignore <reason>).
package analysis

import (
	"kmgraph/internal/analysis/ctxflow"
	"kmgraph/internal/analysis/frameswitch"
	"kmgraph/internal/analysis/hotalloc"
	"kmgraph/internal/analysis/kit"
	"kmgraph/internal/analysis/maporder"
	"kmgraph/internal/analysis/roundpurity"
)

// Suite returns every kmvet analyzer in reporting order.
func Suite() []*kit.Analyzer {
	return []*kit.Analyzer{
		ctxflow.Analyzer,
		frameswitch.Analyzer,
		hotalloc.Analyzer,
		maporder.Analyzer,
		roundpurity.Analyzer,
	}
}
