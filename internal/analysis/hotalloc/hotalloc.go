// Package hotalloc enforces the engine's allocation-free round loops
// statically: a function annotated //km:hotpath must not contain
// constructs that allocate on every execution. It is the compile-time
// complement of the testing.AllocsPerRun pins — those catch a regression
// only when the offending path happens to run under the benchmark; this
// catches it at vet time.
//
// Flagged inside //km:hotpath functions:
//   - map and slice composite literals, and heap-escaping &T{...}
//   - make and new calls
//   - append to a local slice declared without a capacity hint
//     (appends to fields, parameters, and make-initialized locals pass:
//     those are the engine's recycled buffers)
//   - closures (func literals)
//   - fmt.* calls (allocate and box their operands)
//   - explicit conversions to interface types (boxing)
//   - non-constant string concatenation
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"kmgraph/internal/analysis/kit"
)

var Analyzer = &kit.Analyzer{
	Name: "hotalloc",
	Doc:  "reports allocating constructs inside //km:hotpath functions",
	Run:  run,
}

func run(pass *kit.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !kit.HasMark(fd.Doc, kit.HotpathMark) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

func check(pass *kit.Pass, fd *ast.FuncDecl) {
	hinted := hintedLocals(pass, fd.Body)
	markSignature(pass, fd, hinted)
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in //km:hotpath function %s allocates; hoist it, pool it, "+
			"or justify with //kmvet:ignore", what, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure")
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal")
			case *types.Slice:
				report(n.Pos(), "slice literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "heap-allocated composite literal (&T{...})")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[ast.Expr(n)]; ok && tv.Value == nil && isString(tv.Type) {
					report(n.Pos(), "string concatenation")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, hinted, report)
		}
		return true
	})
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func checkCall(pass *kit.Pass, call *ast.CallExpr, hinted map[types.Object]bool, report func(token.Pos, string)) {
	// Conversion to an interface type boxes its operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if at := pass.TypesInfo.TypeOf(call.Args[0]); at != nil {
				if _, already := at.Underlying().(*types.Interface); !already {
					report(call.Pos(), "conversion to interface type")
				}
			}
		}
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil && obj.Parent() == types.Universe {
			switch fun.Name {
			case "make":
				report(call.Pos(), "make call")
			case "new":
				report(call.Pos(), "new call")
			case "append":
				if len(call.Args) > 0 {
					if obj := baseObject(pass, call.Args[0]); obj != nil && isLocalUnhinted(obj, hinted) {
						report(call.Pos(), "append to unhinted local slice "+obj.Name())
					}
				}
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt."+fn.Name()+" call")
		}
	}
}

// baseObject resolves the base identifier of a (possibly parenthesized)
// expression to its object; selectors/indexes return nil — fields and
// element destinations are treated as managed buffers.
func baseObject(pass *kit.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isLocalUnhinted reports whether obj is a local variable whose slice
// storage was never pre-sized: grown-from-nil appends reallocate on the
// hot path, which is exactly what the annotation forbids.
func isLocalUnhinted(obj types.Object, hinted map[types.Object]bool) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if v.Parent() == v.Pkg().Scope() {
		return false // package-level
	}
	if _, ok := v.Type().Underlying().(*types.Slice); !ok {
		return false
	}
	return !hinted[obj]
}

// markSignature marks the function's receiver, parameters, and named
// results as hinted: those buffers belong to the caller, and appending to
// them is the engine's standard recycled-buffer pattern.
func markSignature(pass *kit.Pass, fd *ast.FuncDecl, hinted map[types.Object]bool) {
	lists := []*ast.FieldList{fd.Recv, fd.Type.Params, fd.Type.Results}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					hinted[obj] = true
				}
			}
		}
	}
}

// hintedLocals collects local slice variables with a real initializer —
// a make call, a slice of an existing buffer, a call result, a parameter
// copy — anything other than "var s []T" / "s := []T{}" growth-from-nil.
// Parameters and named results count as hinted (the caller owns them).
func hintedLocals(pass *kit.Pass, body *ast.BlockStmt) map[types.Object]bool {
	hinted := make(map[types.Object]bool)
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		switch r := rhs.(type) {
		case nil:
			return // var s []T — unhinted
		case *ast.CompositeLit:
			if len(r.Elts) == 0 {
				return // s := []T{} — unhinted
			}
		case *ast.Ident:
			if r.Name == "nil" {
				return // s := []T(nil)-ish — unhinted
			}
		case *ast.CallExpr:
			// s = append(s, ...) grows s; the assignment itself is no hint.
			if id, ok := r.Fun.(*ast.Ident); ok && id.Name == "append" {
				if o := pass.TypesInfo.Uses[id]; o != nil && o.Parent() == types.Universe {
					return
				}
			}
		}
		hinted[obj] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					mark(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					mark(name, n.Values[i])
				}
			}
		}
		return true
	})
	return hinted
}
