package a

import "fmt"

type ring struct {
	buf []byte
}

//km:hotpath
func hotAppendUnhinted(vs []int) int {
	var acc []int
	for _, v := range vs {
		acc = append(acc, v) // want `append to unhinted local slice acc`
	}
	return len(acc)
}

//km:hotpath
func hotMake() {
	_ = make([]byte, 16) // want `make call`
	_ = new(ring)        // want `new call`
}

//km:hotpath
func hotLiterals() {
	_ = map[int]int{}  // want `map literal`
	_ = []int{1, 2, 3} // want `slice literal`
	_ = &ring{}        // want `heap-allocated composite literal`
}

//km:hotpath
func hotClosure(vs []int) {
	f := func(x int) int { return x * 2 } // want `closure`
	_ = f(len(vs))
}

//km:hotpath
func hotFmt(n int) {
	fmt.Println(n) // want `fmt.Println call`
}

//km:hotpath
func hotBoxing(n int) any {
	return any(n) // want `conversion to interface type`
}

//km:hotpath
func hotConcat(a, b string) string {
	return a + b // want `string concatenation`
}

//km:hotpath
func hotAppendParam(dst []byte, v byte) []byte {
	return append(dst, v) // parameter buffers are caller-owned: ok
}

//km:hotpath
func (r *ring) hotAppendField(v byte) {
	r.buf = append(r.buf, v) // recycled field buffer: ok
}

//km:hotpath
func hotConstConcat() string {
	return "a" + "b" // constant-folded: ok
}

//km:hotpath
func hotWaived() []byte {
	return make([]byte, 64) //kmvet:ignore amortized chunk growth, measured by AllocsPerRun pin
}

// Not annotated: everything here is legal.
func coldPath() {
	m := map[string]int{"a": 1}
	s := fmt.Sprint(m)
	f := func() string { return s }
	_ = f()
}
