package hotalloc_test

import (
	"testing"

	"kmgraph/internal/analysis/hotalloc"
	"kmgraph/internal/analysis/kit"
)

func TestHotAlloc(t *testing.T) {
	kit.TestDir(t, "testdata/a", hotalloc.Analyzer)
}
