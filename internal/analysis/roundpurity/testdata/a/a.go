// Package a stands in for a round-loop package.
//
//km:roundpure
package a

import (
	"math/rand"
	"time"
)

func badClock() int64 {
	return time.Now().UnixNano() // want `time.Now in //km:roundpure package a`
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in //km:roundpure package a`
}

func badGlobalRand() int {
	return rand.Intn(10) // want `global rand.Intn in //km:roundpure package a`
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle`
}

func goodSeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func goodStoredTime(t time.Time) int64 {
	return t.UnixNano()
}

func goodDurationMath(d time.Duration) time.Duration {
	return d * 2
}

func waivedClock() int64 {
	return time.Now().UnixNano() //kmvet:ignore telemetry-only timestamp, never crosses the wire
}
