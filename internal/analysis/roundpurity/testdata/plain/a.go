// Package a is NOT marked //km:roundpure: wall-clock and global rand are
// allowed, so nothing below is a finding.
package a

import (
	"math/rand"
	"time"
)

func clockOK() int64 {
	return time.Now().UnixNano()
}

func randOK() int {
	return rand.Intn(10)
}
