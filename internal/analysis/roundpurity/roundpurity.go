// Package roundpurity enforces determinism inside round-loop packages.
// A package carrying a //km:roundpure directive (in any file) executes
// inside the engine's lock-step round loop, where every machine must make
// bit-identical decisions from the same inputs. Three constructs break
// that replayability and are reported:
//
//   - wall-clock reads: time.Now, time.Since, time.Until
//   - the global math/rand (and math/rand/v2) source: package-level
//     Intn/Float64/Shuffle/... — seeded per-process, not per-machine.
//     Constructors (New, NewSource, NewPCG, NewChaCha8, NewZipf) stay
//     legal: injecting a seeded *rand.Rand is exactly the sanctioned
//     pattern.
//   - branching on map iteration order is maporder's job; here the
//     remaining temporal sources are closed off.
package roundpurity

import (
	"go/ast"
	"go/types"

	"kmgraph/internal/analysis/kit"
)

var Analyzer = &kit.Analyzer{
	Name: "roundpurity",
	Doc:  "reports wall-clock and global-rand use in //km:roundpure packages",
	Run:  run,
}

// timeBanned are time-package functions that read the wall clock.
var timeBanned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// randAllowed are math/rand(/v2) functions that construct generators
// rather than draw from the shared global source.
var randAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func run(pass *kit.Pass) error {
	if !pass.PkgDirectives[kit.RoundPureMark] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions matter: methods on an injected
			// *rand.Rand or a stored time.Time are the sanctioned pattern.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if timeBanned[fn.Name()] {
					pass.Reportf(sel.Pos(), "time.%s in //km:roundpure package %s: wall-clock reads "+
						"diverge across machines; take timestamps outside the round loop", fn.Name(), pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randAllowed[fn.Name()] {
					pass.Reportf(sel.Pos(), "global rand.%s in //km:roundpure package %s: the process-global "+
						"source is not replayable; draw from an injected seeded *rand.Rand", fn.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}
