package roundpurity_test

import (
	"testing"

	"kmgraph/internal/analysis/kit"
	"kmgraph/internal/analysis/roundpurity"
)

func TestRoundPurity(t *testing.T) {
	kit.TestDir(t, "testdata/a", roundpurity.Analyzer)
}

func TestUnmarkedPackageIsExempt(t *testing.T) {
	kit.TestDir(t, "testdata/plain", roundpurity.Analyzer)
}
