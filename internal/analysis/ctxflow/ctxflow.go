// Package ctxflow reports context.Background() and context.TODO() calls
// in code that already has a context.Context in scope — a function (or a
// closure inside one) whose parameters include a ctx. Minting a fresh
// root context there detaches the work from cancellation: a coordinator
// tearing down a job keeps waiting on RPCs that no longer honor its
// deadline. Entry points without a ctx parameter (mains, Run wrappers)
// are legitimately where roots are made and are not flagged.
package ctxflow

import (
	"go/ast"
	"go/types"

	"kmgraph/internal/analysis/kit"
)

var Analyzer = &kit.Analyzer{
	Name: "ctxflow",
	Doc:  "reports context.Background/TODO in functions that already receive a ctx",
	Run:  run,
}

func run(pass *kit.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkFunc(pass, fd.Type, fd.Body, hasCtxParam(pass, fd.Type))
		}
	}
	return nil
}

// walkFunc inspects one function body. ctxInScope carries whether any
// enclosing function takes a context.Context parameter; closures nested
// in such a function capture it lexically, so the flag is sticky.
func walkFunc(pass *kit.Pass, ft *ast.FuncType, body *ast.BlockStmt, ctxInScope bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			walkFunc(pass, n.Type, n.Body, ctxInScope || hasCtxParam(pass, n.Type))
			return false
		case *ast.CallExpr:
			if !ctxInScope {
				return true
			}
			if name := rootCtxCall(pass, n); name != "" {
				pass.Reportf(n.Pos(), "context.%s() in a function that already receives a "+
					"context.Context: pass the ctx through so cancellation propagates", name)
			}
		}
		return true
	})
}

// hasCtxParam reports whether the function type declares a parameter of
// type context.Context.
func hasCtxParam(pass *kit.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && isContext(t) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// rootCtxCall returns "Background" or "TODO" if call is context.Background()
// or context.TODO(), "" otherwise.
func rootCtxCall(pass *kit.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}
