package a

import (
	"context"
	"time"
)

func entryPointOK() context.Context {
	return context.Background() // no ctx param: this is where roots are made
}

func badFreshRoot(ctx context.Context) error {
	return work(context.Background()) // want `context.Background\(\) in a function that already receives a context.Context`
}

func badTODO(ctx context.Context) error {
	return work(context.TODO()) // want `context.TODO\(\) in a function that already receives a context.Context`
}

func badInClosure(ctx context.Context) {
	go func() {
		_ = work(context.Background()) // want `context.Background\(\)`
	}()
}

func goodDerived(ctx context.Context) error {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(sub)
}

func goodPassThrough(ctx context.Context) error {
	return work(ctx)
}

func waivedDetach(ctx context.Context) error {
	return work(context.Background()) //kmvet:ignore detached audit write must survive job cancellation
}

func work(ctx context.Context) error {
	_ = ctx
	return nil
}

type runner struct{}

func (r *runner) Run() error {
	// Method without ctx param: minting a root here is the sanctioned
	// wrapper pattern (mirrors kmachine.Run -> RunContext).
	return r.RunContext(context.Background())
}

func (r *runner) RunContext(ctx context.Context) error {
	return work(ctx)
}
