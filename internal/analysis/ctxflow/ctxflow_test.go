package ctxflow_test

import (
	"testing"

	"kmgraph/internal/analysis/ctxflow"
	"kmgraph/internal/analysis/kit"
)

func TestCtxFlow(t *testing.T) {
	kit.TestDir(t, "testdata/a", ctxflow.Analyzer)
}
