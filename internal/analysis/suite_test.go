package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"kmgraph/internal/analysis"
	"kmgraph/internal/analysis/kit"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestSuiteCleanOnRepo is the vet gate: the full kmvet suite over ./...
// must report zero findings. Every accepted suppression must carry a
// justification (the kit enforces this by reporting empty ignores).
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	corpus, err := kit.Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, waivers, err := kit.RunAnalyzers(corpus, analysis.Suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	for _, w := range waivers {
		if w.Reason == "" {
			t.Errorf("waiver without justification: %s", w.Diagnostic)
		}
	}
	t.Logf("suite clean: %d packages, %d waivers", len(corpus.Pkgs), len(waivers))
}
