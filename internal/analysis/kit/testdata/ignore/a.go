package a

func boom() {}

func use() {
	boom()
	boom() //kmvet:ignore intentionally detonated for the waiver test
	//kmvet:ignore
	boom()
}
