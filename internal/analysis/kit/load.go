package kit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// LoadedPackage is one package type-checked from source.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Directives map[string]bool // package-level //km: words
}

// Corpus is a set of source-loaded packages sharing one FileSet, one
// export-data importer, and the cross-package directive index.
type Corpus struct {
	Fset        *token.FileSet
	Pkgs        []*LoadedPackage
	MarkedTypes map[string]string

	ignores map[string]map[int]*ignoreDirective // filename -> line -> directive
}

func newCorpus() *Corpus {
	return &Corpus{
		Fset:        token.NewFileSet(),
		MarkedTypes: make(map[string]string),
		ignores:     make(map[string]map[int]*ignoreDirective),
	}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
}

const listFields = "ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly"

// goList runs `go list -export -deps -json` in dir for the given patterns
// and decodes the package stream (dependency order: imports first).
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=" + listFields}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from gc export data produced by
// `go list -export`, caching loaded packages across the whole corpus.
type exportImporter struct {
	gc      types.ImporterFrom
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("kmvet: no export data for %q", path)
		}
		return os.Open(e)
	}).(types.ImporterFrom)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.ImportFrom(path, "", 0)
}

func (ei *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.ImportFrom(path, dir, mode)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load lists patterns from dir (a directory inside the target module),
// parses and type-checks every non-dependency package from source, and
// returns the corpus in dependency order.
func Load(dir string, patterns []string) (*Corpus, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	c := newCorpus()
	imp := newExportImporter(c.Fset, exports)
	for _, lp := range listed {
		if lp.Standard || lp.DepOnly {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("kmvet: %s uses cgo (unsupported)", lp.ImportPath)
		}
		pkg := &LoadedPackage{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Directives: make(map[string]bool),
		}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(c.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			pkg.Files = append(pkg.Files, f)
			c.collectFileDirectives(pkg, f)
		}
		conf := types.Config{Importer: imp}
		info := newInfo()
		tpkg, err := conf.Check(lp.ImportPath, c.Fset, pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("kmvet: type-checking %s: %w", lp.ImportPath, err)
		}
		pkg.Types, pkg.Info = tpkg, info
		c.Pkgs = append(c.Pkgs, pkg)
	}
	return c, nil
}

// LoadDir parses and type-checks a standalone directory of Go files (an
// analyzer's testdata corpus — outside any module, stdlib imports only).
func LoadDir(dir string) (*Corpus, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := newCorpus()
	pkg := &LoadedPackage{ImportPath: "", Dir: dir, Directives: make(map[string]bool)}
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(c.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			importSet[path] = true
		}
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("kmvet: no Go files in %s", dir)
	}
	pkg.ImportPath = pkg.Files[0].Name.Name
	// Directive collection ran per-file at parse time for Load; here the
	// files were parsed before the package name was known, so index now.
	for _, f := range pkg.Files {
		c.collectFileDirectives(pkg, f)
	}

	exports := make(map[string]string)
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			if p != "unsafe" {
				paths = append(paths, p)
			}
		}
		sort.Strings(paths)
		listed, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	conf := types.Config{Importer: newExportImporter(c.Fset, exports)}
	info := newInfo()
	tpkg, err := conf.Check(pkg.ImportPath, c.Fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("kmvet: type-checking %s: %w", dir, err)
	}
	pkg.Types, pkg.Info = tpkg, info
	c.Pkgs = append(c.Pkgs, pkg)
	return c, nil
}
