package kit

import (
	"go/ast"
	"strings"
	"testing"
)

// boomAnalyzer reports every call to a function literally named "boom" —
// a minimal analyzer for exercising the directive plumbing.
var boomAnalyzer = &Analyzer{
	Name: "boom",
	Doc:  "reports calls to boom",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
					pass.Reportf(call.Pos(), "boom call")
				}
				return true
			})
		}
		return nil
	},
}

func TestIgnoreDirectives(t *testing.T) {
	c, err := LoadDir("testdata/ignore")
	if err != nil {
		t.Fatal(err)
	}
	diags, waivers, err := RunAnalyzers(c, []*Analyzer{boomAnalyzer})
	if err != nil {
		t.Fatal(err)
	}

	// Line 6: plain boom -> kept. Line 7: justified ignore -> waived.
	// Line 8: empty-reason ignore -> reported by "kmvet". Line 9: boom under
	// the empty ignore -> kept (an unjustified ignore suppresses nothing).
	var kept []string
	for _, d := range diags {
		kept = append(kept, d.String())
	}
	if len(diags) != 3 {
		t.Fatalf("want 3 surviving diagnostics, got %d:\n%s", len(diags), strings.Join(kept, "\n"))
	}
	if diags[0].Pos.Line != 6 || diags[0].Analyzer != "boom" {
		t.Errorf("diag 0: want boom at line 6, got %s", diags[0])
	}
	if diags[1].Pos.Line != 8 || diags[1].Analyzer != "kmvet" ||
		!strings.Contains(diags[1].Message, "requires a justification") {
		t.Errorf("diag 1: want kmvet empty-reason report at line 8, got %s", diags[1])
	}
	if diags[2].Pos.Line != 9 || diags[2].Analyzer != "boom" {
		t.Errorf("diag 2: want boom at line 9, got %s", diags[2])
	}

	if len(waivers) != 1 {
		t.Fatalf("want 1 waiver, got %d", len(waivers))
	}
	if waivers[0].Pos.Line != 7 || waivers[0].Reason != "intentionally detonated for the waiver test" {
		t.Errorf("waiver: got line %d reason %q", waivers[0].Pos.Line, waivers[0].Reason)
	}
}

func TestMarkWord(t *testing.T) {
	cases := []struct {
		text, want string
	}{
		{"//km:hotpath", "hotpath"},
		{"//km:hotpath this function feeds the round loop", "hotpath"},
		{"//km:exhaustive", "exhaustive"},
		{"// km:hotpath", ""}, // space breaks the directive, as with go:build
		{"//kmvet:ignore x", ""},
		{"// ordinary comment", ""},
	}
	for _, c := range cases {
		if got := markWord(c.text); got != c.want {
			t.Errorf("markWord(%q) = %q, want %q", c.text, got, c.want)
		}
	}
}
