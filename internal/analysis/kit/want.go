package kit

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// want-comment syntax, after x/tools' analysistest:
//
//	code under test // want "regexp" "another regexp"
//
// Each regexp must match at least one diagnostic reported on that line
// (after //kmvet:ignore suppression), and every diagnostic must be claimed
// by some want comment. Waivers (justified ignores) are not diagnostics,
// so a suppressed line simply carries no want comment.
var wantRe = regexp.MustCompile("(?:\"((?:[^\"\\\\]|\\\\.)*)\")|(?:`([^`]*)`)")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// TestDir loads dir as a standalone package, runs the analyzers, and
// checks the diagnostics against the corpus's want comments.
func TestDir(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	c, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, _, err := RunAnalyzers(c, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	var wants []*expectation
	for _, pkg := range c.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := cm.Text
					i := strings.Index(text, "// want ")
					if i < 0 {
						continue
					}
					pos := c.Fset.Position(cm.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(text[i+len("// want "):], -1) {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						} else {
							pat = strings.ReplaceAll(pat, `\"`, `"`)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				w.hit = true
				break
			}
		}
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, fmt.Sprintf("  %s", d))
		}
		t.Logf("all diagnostics:\n%s", strings.Join(all, "\n"))
	}
}
