// Package kit is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis pattern: analyzers receive a type-checked
// package (a Pass) and report position-anchored diagnostics. The toolchain
// bakes in no external modules, so the loader (load.go) shells out to
// `go list -export` and type-checks from source against gc export data —
// the same mechanism go/packages uses — with nothing but the standard
// library.
//
// Two comment directives thread through every analyzer:
//
//	//kmvet:ignore <justification>
//	    suppresses any kmvet diagnostic reported on the same line or the
//	    line below. The justification string is mandatory: an ignore with
//	    no reason is itself a diagnostic. Waivers are collected so the
//	    driver can list every accepted suppression with its reason.
//
//	//km:<word>
//	    marks a declaration for a specific analyzer: //km:hotpath on a
//	    function (hotalloc), //km:exhaustive on a constant-set type
//	    (frameswitch), //km:roundpure anywhere in a package (roundpurity).
package kit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package through its
// Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// MarkedTypes maps "pkgpath.TypeName" to the //km: directive word on
	// that type's declaration, collected across every package loaded from
	// source in this run (directives are invisible in export data, so the
	// corpus shares them the way x/tools shares facts).
	MarkedTypes map[string]string

	// PkgDirectives holds package-level //km: directive words found in any
	// file of this package (e.g. "roundpure").
	PkgDirectives map[string]bool

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Waiver is a diagnostic suppressed by a justified //kmvet:ignore.
type Waiver struct {
	Diagnostic
	Reason string
}

// ignoreDirective is one //kmvet:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	reason string
	used   bool
}

// RunAnalyzers applies every analyzer to every source-loaded package of
// the corpus, resolves //kmvet:ignore suppressions, and returns surviving
// diagnostics (sorted by position) plus the accepted waivers.
func RunAnalyzers(c *Corpus, analyzers []*Analyzer) ([]Diagnostic, []Waiver, error) {
	var raw []Diagnostic
	for _, pkg := range c.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:      a,
				Fset:          c.Fset,
				Files:         pkg.Files,
				Pkg:           pkg.Types,
				TypesInfo:     pkg.Info,
				MarkedTypes:   c.MarkedTypes,
				PkgDirectives: pkg.Directives,
				diags:         &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}

	var kept []Diagnostic
	var waived []Waiver
	for _, d := range raw {
		if ig := c.ignoreFor(d.Pos); ig != nil && ig.reason != "" {
			ig.used = true
			waived = append(waived, Waiver{Diagnostic: d, Reason: ig.reason})
			continue
		}
		kept = append(kept, d)
	}
	// An ignore without a justification is never honored — and is itself
	// reported, whether or not a diagnostic landed on it.
	for _, file := range sortedKeys(c.ignores) {
		for _, line := range sortedIntKeys(c.ignores[file]) {
			ig := c.ignores[file][line]
			if ig.reason == "" {
				kept = append(kept, Diagnostic{
					Pos:      ig.pos,
					Analyzer: "kmvet",
					Message:  "//kmvet:ignore requires a justification (\"//kmvet:ignore <reason>\")",
				})
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool { return posLess(kept[i].Pos, kept[j].Pos) })
	sort.Slice(waived, func(i, j int) bool { return posLess(waived[i].Pos, waived[j].Pos) })
	return kept, waived, nil
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// ignoreFor finds a //kmvet:ignore directive covering a diagnostic: on the
// diagnostic's own line (trailing comment) or on the line directly above.
func (c *Corpus) ignoreFor(pos token.Position) *ignoreDirective {
	byLine := c.ignores[pos.Filename]
	if byLine == nil {
		return nil
	}
	if ig, ok := byLine[pos.Line]; ok {
		return ig
	}
	if ig, ok := byLine[pos.Line-1]; ok {
		return ig
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedIntKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// --- directive helpers shared by analyzers ---

const (
	ignorePrefix   = "//kmvet:ignore"
	markPrefix     = "//km:"
	HotpathMark    = "hotpath"
	ExhaustiveMark = "exhaustive"
	RoundPureMark  = "roundpure"
)

// HasMark reports whether a doc comment group carries the given //km:
// directive word.
func HasMark(doc *ast.CommentGroup, word string) bool {
	if doc == nil {
		return false
	}
	for _, cm := range doc.List {
		if markWord(cm.Text) == word {
			return true
		}
	}
	return false
}

// markWord extracts the directive word of a //km: comment ("" otherwise).
func markWord(text string) string {
	if !strings.HasPrefix(text, markPrefix) {
		return ""
	}
	rest := strings.TrimPrefix(text, markPrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest)
}

// collectFileDirectives indexes a parsed file's //kmvet:ignore comments
// (into c.ignores), package-level //km: words, and //km: marks on type
// declarations.
func (c *Corpus) collectFileDirectives(pkg *LoadedPackage, f *ast.File) {
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			text := cm.Text
			switch {
			case strings.HasPrefix(text, ignorePrefix):
				pos := c.Fset.Position(cm.Pos())
				byLine := c.ignores[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*ignoreDirective)
					c.ignores[pos.Filename] = byLine
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				byLine[pos.Line] = &ignoreDirective{pos: pos, reason: reason}
			case markWord(text) != "":
				// Package-level directive: a //km: word attached to no type
				// declaration applies to the whole package (e.g. roundpure).
				pkg.Directives[markWord(text)] = true
			}
		}
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
				if doc == nil {
					continue
				}
				for _, cm := range doc.List {
					if w := markWord(cm.Text); w != "" {
						c.MarkedTypes[pkg.ImportPath+"."+ts.Name.Name] = w
					}
				}
			}
		}
	}
}
