// Package maporder reports map iterations whose loop body has an
// order-dependent effect: appending to (or encoding into) state declared
// outside the loop, sending on a channel, or invoking an emitting call
// (Append*/Encode*/Write*/Send*/Exchange*/...) against an outer receiver.
// Go randomizes map iteration order per run, so any such loop injects
// nondeterminism into whatever the accumulated state feeds — in this
// engine, wire frames, merged Metrics, and sketch folds, where the golden
// fingerprints require bit-exact replay.
//
// The canonical collect-keys-then-sort idiom is recognized and exempt: an
// append whose destination is later passed to a sort.*/slices.Sort* call
// in the same function is ordered before use.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kmgraph/internal/analysis/kit"
)

var Analyzer = &kit.Analyzer{
	Name: "maporder",
	Doc: "reports map iterations with order-dependent effects (appends, sends, " +
		"or emitting calls against state declared outside the loop)",
	Run: run,
}

// emittingPrefixes name call families that serialize or transmit: feeding
// them in map order puts map order on the wire.
var emittingPrefixes = []string{
	"Append", "Encode", "Write", "Send", "Emit", "Push", "Exchange", "Transmit", "Broadcast",
}

func run(pass *kit.Pass) error {
	for _, f := range pass.Files {
		var funcStack []ast.Node // enclosing FuncDecl/FuncLit chain
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				if b := body(n); b != nil {
					funcStack = append(funcStack, n)
					ast.Inspect(b, walk)
					funcStack = funcStack[:len(funcStack)-1]
				}
				return false
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && len(funcStack) > 0 {
						checkRange(pass, n, body(funcStack[len(funcStack)-1]))
					}
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

func body(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// checkRange inspects one map-range body for order-dependent effects.
func checkRange(pass *kit.Pass, rng *ast.RangeStmt, enclosing *ast.BlockStmt) {
	mapStr := types.ExprString(rng.X)
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "iterating %s (a map) %s: map order is random per run; "+
			"iterate sorted keys (core.SortedKeys) or justify with //kmvet:ignore",
			mapStr, what)
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Pos(), "sends on a channel in map order")
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if t := pass.TypesInfo.TypeOf(n.Lhs[0]); t != nil && isString(t) &&
					declaredOutside(pass, n.Lhs[0], rng) {
					report(n.Pos(), "concatenates onto an outer string")
				}
			}
		case *ast.CallExpr:
			if dest, ok := appendDest(pass, n); ok {
				if declaredOutside(pass, dest, rng) && !sortedLater(pass, enclosing, dest, rng.End()) {
					report(n.Pos(), "appends to "+types.ExprString(dest)+" declared outside the loop")
				}
				return true
			}
			if name, recv := emittingCall(pass, n); name != "" {
				// Flag only when the emitted-into destination outlives the
				// loop: the receiver for methods, the first argument for
				// append-style package functions.
				dest := recv
				if dest == nil && len(n.Args) > 0 {
					dest = n.Args[0]
				}
				if dest != nil && declaredOutside(pass, dest, rng) && !sortedLater(pass, enclosing, dest, rng.End()) {
					report(n.Pos(), "calls "+name+" against "+types.ExprString(dest)+" declared outside the loop")
				}
			}
		}
		return true
	})
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// appendDest returns the destination expression of a builtin append call.
func appendDest(pass *kit.Pass, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil, false
	}
	if obj := pass.TypesInfo.Uses[id]; obj == nil || obj.Parent() != types.Universe {
		return nil, false
	}
	return call.Args[0], true
}

// emittingCall reports whether call invokes an emitting-named function or
// method, returning its name and (for methods) the receiver expression.
func emittingCall(pass *kit.Pass, call *ast.CallExpr) (string, ast.Expr) {
	var name string
	var recv ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv = fun.X
		}
	case *ast.Ident:
		name = fun.Name
	default:
		return "", nil
	}
	for _, p := range emittingPrefixes {
		if strings.HasPrefix(name, p) {
			return name, recv
		}
	}
	return "", nil
}

// rootObject resolves an expression to the object of its base identifier
// (stripping selectors, indexes, slices, stars, parens).
func rootObject(pass *kit.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			// e.g. m.Pool().Put — the root is the call's receiver chain.
			e = x.Fun
		default:
			return nil
		}
	}
}

// declaredOutside reports whether e's root object is declared outside the
// range statement (fields and package vars always are).
func declaredOutside(pass *kit.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	obj := rootObject(pass, e)
	if obj == nil {
		return false // nil literal, composite, etc. — freshly built
	}
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

// sortedLater reports whether the enclosing function, after the range
// statement, passes dest's object to a sort.*/slices.Sort* call — the
// collect-then-sort idiom.
func sortedLater(pass *kit.Pass, enclosing *ast.BlockStmt, dest ast.Expr, after token.Pos) bool {
	obj := rootObject(pass, dest)
	if obj == nil || enclosing == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		pkgPath := fn.Pkg().Path()
		if pkgPath != "sort" && pkgPath != "slices" {
			return true
		}
		name := fn.Name()
		if !strings.HasPrefix(name, "Sort") && !strings.HasPrefix(name, "Stable") &&
			name != "Ints" && name != "Strings" && name != "Float64s" &&
			name != "Slice" && name != "SliceStable" {
			return true
		}
		for _, arg := range call.Args {
			if rootObject(pass, arg) == obj {
				found = true
			}
		}
		return true
	})
	return found
}
