package a

import (
	"bytes"
	"sort"
)

// AppendU mimics the engine's wire.AppendUvarint: an emitting-named
// package function whose first argument is the destination buffer.
func AppendU(dst []byte, v uint64) []byte {
	return append(dst, byte(v))
}

func badAppendOuter(m map[uint64]int) []uint64 {
	var out []uint64
	for k := range m {
		out = append(out, k) // want `appends to out declared outside the loop`
	}
	return out
}

func badChannelSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `sends on a channel in map order`
	}
}

func badStringConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `concatenates onto an outer string`
	}
	return s
}

func badEmitMethod(m map[string]int) string {
	var b bytes.Buffer
	for k := range m {
		b.WriteString(k) // want `calls WriteString against b declared outside the loop`
	}
	return b.String()
}

func badEmitFirstArg(m map[uint64]int) []byte {
	var frame []byte
	for k := range m {
		frame = AppendU(frame, k) // want `calls AppendU against frame declared outside the loop`
	}
	return frame
}

func goodCollectThenSort(m map[uint64]int) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func goodInnerOnly(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		local := []int{}
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

func goodOrderFree(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func waivedAppend(m map[uint64]struct{}) []uint64 {
	var pool []uint64
	for k := range m {
		pool = append(pool, k) //kmvet:ignore free-list recycling is value-independent
	}
	return pool
}

func badSliceRangeIsFine(xs []int, m map[int]int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, m[x])
	}
	return out
}
