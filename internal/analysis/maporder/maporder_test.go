package maporder_test

import (
	"testing"

	"kmgraph/internal/analysis/kit"
	"kmgraph/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	kit.TestDir(t, "testdata/a", maporder.Analyzer)
}
