// Package frameswitch enforces exhaustive handling of the engine's wire
// enums. A type marked //km:exhaustive (transport frame kinds, link-down
// reasons) defines a closed protocol vocabulary: a switch over a value of
// that type either carries a default clause — an explicit decision about
// unknown values — or must name every package-level constant of the type.
// Without this, adding a frame kind silently falls through existing
// dispatch loops and the peer times out instead of failing loudly.
package frameswitch

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"kmgraph/internal/analysis/kit"
)

var Analyzer = &kit.Analyzer{
	Name: "frameswitch",
	Doc:  "reports non-exhaustive switches over //km:exhaustive enum types",
	Run:  run,
}

func run(pass *kit.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *kit.Pass, sw *ast.SwitchStmt) {
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	named, ok := tagType.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return
	}
	key := obj.Pkg().Path() + "." + obj.Name()
	if pass.MarkedTypes[key] != kit.ExhaustiveMark {
		return
	}

	members := enumMembers(obj.Pkg(), named)
	if len(members) == 0 {
		return
	}

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: unknown values handled explicitly
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "switch over %s (//km:exhaustive) misses %s and has no default clause",
			obj.Name(), strings.Join(missing, ", "))
	}
}

type member struct {
	name string
	val  string
}

// enumMembers lists the package-level constants of the enum type, one per
// distinct constant value (aliases like a FrameMax = FrameBye collapse).
func enumMembers(pkg *types.Package, t *types.Named) []member {
	byVal := make(map[string]string)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), t) {
			continue
		}
		v := c.Val().ExactString()
		if prev, ok := byVal[v]; !ok || name < prev {
			byVal[v] = name
		}
	}
	members := make([]member, 0, len(byVal))
	for v, name := range byVal {
		members = append(members, member{name: name, val: v})
	}
	sort.Slice(members, func(i, j int) bool {
		return lessVal(members[i].val, members[j].val)
	})
	return members
}

// lessVal orders constant values numerically when both parse as integers,
// lexically otherwise (string-kinded enums).
func lessVal(a, b string) bool {
	var ai, bi int64
	if _, errA := fmt.Sscan(a, &ai); errA == nil {
		if _, errB := fmt.Sscan(b, &bi); errB == nil {
			return ai < bi
		}
	}
	return a < b
}
