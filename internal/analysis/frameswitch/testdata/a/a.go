package a

// FrameType mirrors the transport's frame-kind enum.
//
//km:exhaustive
type FrameType uint8

const (
	FHello FrameType = 1
	FRound FrameType = 2
	FBye   FrameType = 3

	// FLast aliases the highest frame kind; aliases collapse by value.
	FLast = FBye
)

// Reason is a string-kinded enum, like the transport's LinkDownReason.
//
//km:exhaustive
type Reason string

const (
	ReasonCrash Reason = "crash"
	ReasonStall Reason = "stall"
)

// Mode is deliberately unmarked: switches over it are unconstrained.
type Mode uint8

const (
	ModeA Mode = 1
	ModeB Mode = 2
)

func goodAllCases(f FrameType) int {
	switch f {
	case FHello:
		return 1
	case FRound:
		return 2
	case FBye:
		return 3
	}
	return 0
}

func goodDefault(f FrameType) int {
	switch f {
	case FHello:
		return 1
	default:
		return 0
	}
}

func goodAliasCovers(f FrameType) int {
	switch f {
	case FHello, FRound, FLast:
		return 1
	}
	return 0
}

func badMissing(f FrameType) int {
	switch f { // want `switch over FrameType \(//km:exhaustive\) misses FBye and has no default clause`
	case FHello, FRound:
		return 1
	}
	return 0
}

func badStringEnum(r Reason) int {
	switch r { // want `switch over Reason \(//km:exhaustive\) misses ReasonStall`
	case ReasonCrash:
		return 1
	}
	return 0
}

func unmarkedIsFree(m Mode) int {
	switch m {
	case ModeA:
		return 1
	}
	return 0
}

func waivedSwitch(f FrameType) int {
	switch f { //kmvet:ignore handshake path only ever sees FHello
	case FHello:
		return 1
	}
	return 0
}
