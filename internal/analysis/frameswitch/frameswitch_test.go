package frameswitch_test

import (
	"testing"

	"kmgraph/internal/analysis/frameswitch"
	"kmgraph/internal/analysis/kit"
)

func TestFrameSwitch(t *testing.T) {
	kit.TestDir(t, "testdata/a", frameswitch.Analyzer)
}
