package benchfmt

import (
	"path/filepath"
	"testing"
	"time"
)

func TestSummarizePercentiles(t *testing.T) {
	// 100 latencies: 1ms..100ms.
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	r := Summarize("ServeLoad/connectivity", lats, 2*time.Second,
		ErrorCounts{Non2xx: 1, Timeouts: 2}, 7)
	if r.Requests != 100 || r.Errors != 3 || r.Rejected != 7 {
		t.Fatalf("counters: %+v", r)
	}
	if r.Non2xx != 1 || r.Timeouts != 2 || r.TransportErrors != 0 {
		t.Fatalf("error breakdown: %+v", r)
	}
	if r.P50Ns != float64(50*time.Millisecond) ||
		r.P90Ns != float64(90*time.Millisecond) ||
		r.P99Ns != float64(99*time.Millisecond) {
		t.Fatalf("percentiles: p50=%v p90=%v p99=%v", r.P50Ns, r.P90Ns, r.P99Ns)
	}
	if r.RequestsPerSec != 50 {
		t.Fatalf("throughput: %v req/s, want 50", r.RequestsPerSec)
	}
	if r.NsPerOp != float64(50500*time.Microsecond) {
		t.Fatalf("mean: %v", r.NsPerOp)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r := Summarize("ServeLoad/mst", nil, time.Second, ErrorCounts{}, 2)
	if r.Requests != 0 || r.Rejected != 2 || r.P99Ns != 0 || r.RequestsPerSec != 0 {
		t.Fatalf("empty summary: %+v", r)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	results := []Result{
		{Name: "ConnectivitySketch/n512_k4", NsPerOp: 1e6, Rounds: 400},
		Summarize("ServeLoad/overall",
			[]time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond},
			time.Second, ErrorCounts{}, 1),
	}
	if err := WriteFile(path, results); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	doc, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if doc.Schema != Schema || len(doc.Benchmarks) != 2 {
		t.Fatalf("round trip: %+v", doc)
	}
	if doc.Benchmarks[1].P50Ns != float64(2*time.Millisecond) {
		t.Fatalf("serving fields lost: %+v", doc.Benchmarks[1])
	}
}

func TestValidateRejectsBadDocs(t *testing.T) {
	bad := []Doc{
		{Schema: "kmachine-bench/v1", Benchmarks: []Result{{Name: "x"}}},
		{Schema: Schema, Benchmarks: []Result{{Name: ""}}},
		{Schema: Schema, Benchmarks: []Result{{Name: "x", NsPerOp: -1}}},
		{Schema: Schema, Benchmarks: []Result{{Name: "x", P50Ns: 5, P90Ns: 1, P99Ns: 2}}},
		{Schema: Schema, Benchmarks: []Result{{Name: "x", Errors: 1, Non2xx: 1, Timeouts: 1}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("doc %d validated: %+v", i, d)
		}
	}
}
