// Package benchfmt is the shared machine-readable benchmark schema
// ("kmachine-bench/v2") written by cmd/kmbench (engine-throughput
// microbenchmarks) and cmd/kmload (serving throughput/latency), so the
// project's performance trajectory is tracked in one format across PRs.
//
// v2 is a strict superset of v1: every v1 field is unchanged, v2 added
// max_rss_bytes and graph_load_ms, and the serving fields (requests,
// latency percentiles) are additive and omitted when empty — a v2
// consumer reads every producer's output.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"
)

// Schema is the current schema identifier.
const Schema = "kmachine-bench/v2"

// Result is one benchmark measurement.
type Result struct {
	// Name identifies the benchmark (slash-separated, parameters after
	// the family name, e.g. "ConnectivitySketch/n2048_k16").
	Name string `json:"name"`
	// NsPerOp is the mean wall time per operation (for serving
	// benchmarks: the mean request latency).
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are the Go benchmark allocation counters
	// (0 for serving benchmarks, which measure across processes).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Rounds is the model cost of one operation (independent of
	// wall-clock).
	Rounds int `json:"rounds"`
	// GraphLoadMs is the one-time input build/load wall time.
	GraphLoadMs float64 `json:"graph_load_ms"`
	// MaxRSSBytes is the process's peak resident set at the end of this
	// benchmark (cumulative and monotone across a run).
	MaxRSSBytes int64 `json:"max_rss_bytes"`

	// Serving extensions (cmd/kmload; zero values are omitted).
	//
	// Requests counts completed requests; Errors counts non-2xx
	// responses other than 429; Rejected counts 429 backpressure
	// refusals (not errors: the server shedding load is it working).
	Requests int64 `json:"requests,omitempty"`
	Errors   int64 `json:"errors,omitempty"`
	Rejected int64 `json:"rejected,omitempty"`
	// Non2xx / Timeouts / TransportErrors break Errors down by cause:
	// HTTP responses with status >= 400 other than 429, client-side
	// deadline expiries, and transport-level failures (connection
	// refused/reset, DNS). Producers that classify set all three and
	// they sum to Errors; older producers leave them zero.
	Non2xx          int64 `json:"non_2xx,omitempty"`
	Timeouts        int64 `json:"timeouts,omitempty"`
	TransportErrors int64 `json:"transport_errors,omitempty"`
	// RequestsPerSec is completed-request throughput over the run.
	RequestsPerSec float64 `json:"requests_per_sec,omitempty"`
	// P50Ns / P90Ns / P99Ns are request latency percentiles.
	P50Ns float64 `json:"p50_ns,omitempty"`
	P90Ns float64 `json:"p90_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

// Doc is one benchmark file.
type Doc struct {
	Schema     string   `json:"schema"`
	Benchmarks []Result `json:"benchmarks"`
}

// Validate checks d is a well-formed kmachine-bench/v2 document.
func (d *Doc) Validate() error {
	if d.Schema != Schema {
		return fmt.Errorf("benchfmt: schema %q, want %q", d.Schema, Schema)
	}
	for i, r := range d.Benchmarks {
		if r.Name == "" {
			return fmt.Errorf("benchfmt: benchmark %d has no name", i)
		}
		for name, v := range map[string]float64{
			"ns_per_op": r.NsPerOp, "graph_load_ms": r.GraphLoadMs,
			"requests_per_sec": r.RequestsPerSec,
			"p50_ns":           r.P50Ns, "p90_ns": r.P90Ns, "p99_ns": r.P99Ns,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("benchfmt: %s: bad %s %v", r.Name, name, v)
			}
		}
		if (r.P90Ns != 0 && r.P50Ns > r.P90Ns+1e-9) || (r.P99Ns != 0 && r.P90Ns > r.P99Ns+1e-9) {
			return fmt.Errorf("benchfmt: %s: percentiles not monotone (p50=%v p90=%v p99=%v)",
				r.Name, r.P50Ns, r.P90Ns, r.P99Ns)
		}
		if sub := r.Non2xx + r.Timeouts + r.TransportErrors; sub > r.Errors {
			return fmt.Errorf("benchfmt: %s: error breakdown %d exceeds errors %d",
				r.Name, sub, r.Errors)
		}
	}
	return nil
}

// WriteFile writes results as a kmachine-bench/v2 document at path.
func WriteFile(path string, results []Result) error {
	doc := Doc{Schema: Schema, Benchmarks: results}
	if err := doc.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// ReadFile reads and validates a kmachine-bench document.
func ReadFile(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of sorted
// latencies by nearest-rank; 0 on an empty slice.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// ErrorCounts is a failed-request breakdown by cause, accumulated by a
// load generator and folded into a Result by Summarize.
type ErrorCounts struct {
	// Non2xx counts HTTP responses with status >= 400 other than 429.
	Non2xx int64
	// Timeouts counts client-side deadline expiries (the request never
	// produced a response in time).
	Timeouts int64
	// Transport counts transport-level failures: connection refused or
	// reset, DNS errors — anything below HTTP.
	Transport int64
}

// Total is the summed error count across causes.
func (e ErrorCounts) Total() int64 { return e.Non2xx + e.Timeouts + e.Transport }

// Add accumulates another breakdown into e.
func (e *ErrorCounts) Add(o ErrorCounts) {
	e.Non2xx += o.Non2xx
	e.Timeouts += o.Timeouts
	e.Transport += o.Transport
}

// Summarize folds one request-latency population into a serving Result:
// mean and percentile latencies, throughput over elapsed, and the
// error/backpressure counters (Errors is the breakdown's total).
func Summarize(name string, latencies []time.Duration, elapsed time.Duration, errs ErrorCounts, rejected int64) Result {
	r := Result{
		Name:            name,
		Requests:        int64(len(latencies)),
		Errors:          errs.Total(),
		Non2xx:          errs.Non2xx,
		Timeouts:        errs.Timeouts,
		TransportErrors: errs.Transport,
		Rejected:        rejected,
	}
	if len(latencies) == 0 {
		return r
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	r.NsPerOp = float64(sum.Nanoseconds()) / float64(len(sorted))
	r.P50Ns = float64(Percentile(sorted, 50).Nanoseconds())
	r.P90Ns = float64(Percentile(sorted, 90).Nanoseconds())
	r.P99Ns = float64(Percentile(sorted, 99).Nanoseconds())
	if elapsed > 0 {
		r.RequestsPerSec = float64(len(sorted)) / elapsed.Seconds()
	}
	return r
}
