package lowerbound

import (
	"testing"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
)

func TestInstanceConstruction(t *testing.T) {
	inst := RandomInstance(10, 1, ForceNothing)
	g, h := inst.BuildSCS()
	if g.N() != 22 {
		t.Fatalf("n = %d, want 22", g.N())
	}
	// G always has 1 + 3b edges.
	if g.M() != 1+3*10 {
		t.Errorf("m = %d, want 31", g.M())
	}
	// H contains (s,t), all (u_i,v_i), plus one edge per zero bit.
	zeros := 0
	for i := 0; i < 10; i++ {
		if !inst.X[i] {
			zeros++
		}
		if !inst.Y[i] {
			zeros++
		}
	}
	if len(h) != 1+10+zeros {
		t.Errorf("|H| = %d, want %d", len(h), 1+10+zeros)
	}
	// Diameter of G is 2 (as Theorem 5 emphasizes): s-t edge plus stars.
	if d := graph.Diameter(g); d > 3 {
		t.Errorf("diameter = %d", d)
	}
}

func TestSCSEquivalentToDisjointnessOracle(t *testing.T) {
	// The graph-theoretic equivalence, checked with the sequential oracle.
	for seed := int64(0); seed < 40; seed++ {
		inst := RandomInstance(12, seed, ForceNothing)
		g, h := inst.BuildSCS()
		keep := make(map[uint64]bool)
		for _, e := range h {
			keep[graph.EdgeID(e.U, e.V, g.N())] = true
		}
		hg := g.Filter(func(e graph.Edge) bool { return keep[graph.EdgeID(e.U, e.V, g.N())] })
		scs := graph.IsConnected(hg)
		if scs != inst.Disjoint() {
			t.Fatalf("seed %d: SCS=%v DISJ=%v", seed, scs, inst.Disjoint())
		}
	}
}

func TestRunSCSMatchesDisjointness(t *testing.T) {
	cases := []Force{ForceDisjoint, ForceIntersecting, ForceNothing, ForceNothing}
	for i, force := range cases {
		inst := RandomInstance(16, int64(i)*7+1, force)
		res, err := RunSCS(inst, core.Config{K: 4, Seed: int64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.SCSHolds != res.Disjoint {
			t.Errorf("case %d: SCS=%v DISJ=%v", i, res.SCSHolds, res.Disjoint)
		}
		if res.CutBits <= 0 {
			t.Errorf("case %d: no cut traffic metered", i)
		}
		if res.CutCapacityPerRound <= 0 {
			t.Error("cut capacity missing")
		}
	}
}

func TestRunSCSRequiresEvenK(t *testing.T) {
	inst := RandomInstance(8, 3, ForceNothing)
	if _, err := RunSCS(inst, core.Config{K: 3, Seed: 1}); err == nil {
		t.Error("odd k should be rejected")
	}
}

func TestCutTrafficGrowsWithB(t *testing.T) {
	// The Ω(b) information requirement should manifest as growing cut
	// traffic (the algorithm cannot avoid moving Θ(b) bits).
	var prev int64
	for _, b := range []int{8, 32, 128} {
		inst := RandomInstance(b, 11, ForceNothing)
		res, err := RunSCS(inst, core.Config{K: 4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutBits < prev {
			t.Errorf("b=%d: cut bits %d below smaller instance %d", b, res.CutBits, prev)
		}
		prev = res.CutBits
		// Round bound sanity: rounds * cut capacity >= cut bits.
		if int64(res.Rounds)*res.CutCapacityPerRound < res.CutBits {
			t.Errorf("b=%d: rounds*capacity < cut bits", b)
		}
	}
}

func TestForcedInstances(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if !RandomInstance(20, seed, ForceDisjoint).Disjoint() {
			t.Fatal("ForceDisjoint produced intersecting instance")
		}
		if RandomInstance(20, seed, ForceIntersecting).Disjoint() {
			t.Fatal("ForceIntersecting produced disjoint instance")
		}
	}
}

func TestPartitionPlacement(t *testing.T) {
	inst := RandomInstance(30, 9, ForceNothing)
	homes, err := inst.Partition(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// s on Bob's half, t on Alice's half.
	if homes[inst.s()] < 4 {
		t.Error("s should be on Bob's half")
	}
	if homes[inst.t()] >= 4 {
		t.Error("t should be on Alice's half")
	}
	for i := 0; i < inst.B; i++ {
		uAlice := homes[inst.u(i)] < 4
		if uAlice != inst.AliceHoldsX[i] {
			t.Fatalf("u_%d placement inconsistent with bit ownership", i)
		}
		vBob := homes[inst.v(i)] >= 4
		if vBob != inst.BobHoldsY[i] {
			t.Fatalf("v_%d placement inconsistent with bit ownership", i)
		}
	}
}
