// Package lowerbound implements the paper's §4 lower-bound apparatus
// (Theorem 5): the reduction from 2-party set disjointness in the
// random-input-partition model to spanning-connected-subgraph (SCS)
// verification in the k-machine model.
//
// The Figure-1 construction: G has special vertices s, t and pairs
// u_i, v_i for i < b = (n-2)/2, with edges (s,t), (u_i,v_i), (s,u_i),
// (v_i,t). The subgraph H always contains (s,t) and every (u_i,v_i);
// it contains (s,u_i) iff X[i] = 0 and (v_i,t) iff Y[i] = 0. H spans G
// and is connected iff no index has X[i] = Y[i] = 1 — i.e. iff X and Y
// are disjoint.
//
// Machines are split into an Alice half and a Bob half; vertex placement
// follows the random input partition (each party places the pair-vertices
// whose input bit it holds). Because solving SCS answers DISJ, and DISJ
// requires Ω(b) bits of communication between the halves (Lemma 8), any
// algorithm must push Ω(b) bits across the Θ(k²) cut links of capacity B,
// forcing Ω̃(b/k²) rounds. The harness meters exactly those cut bits while
// the real connectivity algorithm solves the instance.
package lowerbound

import (
	"fmt"
	"math/rand"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
)

// Instance is a 2-party set disjointness instance.
type Instance struct {
	B    int
	X, Y []bool
	// AliceHolds[i] / BobHolds[i] record, per the random input partition,
	// which party places u_i / v_i respectively (true = the canonical
	// owner kept the bit; false = it was revealed to the other party).
	AliceHoldsX, BobHoldsY []bool
}

// Force constrains instance generation.
type Force int

const (
	// ForceNothing samples X, Y uniformly.
	ForceNothing Force = iota
	// ForceDisjoint guarantees no intersecting index.
	ForceDisjoint
	// ForceIntersecting guarantees at least one intersecting index.
	ForceIntersecting
)

// RandomInstance samples a disjointness instance with b-bit inputs.
func RandomInstance(b int, seed int64, force Force) Instance {
	rng := rand.New(rand.NewSource(seed))
	inst := Instance{
		B: b, X: make([]bool, b), Y: make([]bool, b),
		AliceHoldsX: make([]bool, b), BobHoldsY: make([]bool, b),
	}
	for i := 0; i < b; i++ {
		inst.X[i] = rng.Intn(2) == 1
		inst.Y[i] = rng.Intn(2) == 1
		inst.AliceHoldsX[i] = rng.Intn(2) == 1
		inst.BobHoldsY[i] = rng.Intn(2) == 1
	}
	switch force {
	case ForceDisjoint:
		for i := 0; i < b; i++ {
			if inst.X[i] && inst.Y[i] {
				inst.Y[i] = false
			}
		}
	case ForceIntersecting:
		i := rng.Intn(b)
		inst.X[i], inst.Y[i] = true, true
	}
	return inst
}

// Disjoint reports whether X and Y have no common 1-index.
func (inst Instance) Disjoint() bool {
	for i := 0; i < inst.B; i++ {
		if inst.X[i] && inst.Y[i] {
			return false
		}
	}
	return true
}

// vertex layout: s=0, t=1, u_i=2+i, v_i=2+b+i.
func (inst Instance) s() int      { return 0 }
func (inst Instance) t() int      { return 1 }
func (inst Instance) u(i int) int { return 2 + i }
func (inst Instance) v(i int) int { return 2 + inst.B + i }

// N returns the number of vertices of the Figure-1 graph.
func (inst Instance) N() int { return 2 + 2*inst.B }

// BuildSCS constructs the Figure-1 graph G and subgraph H.
func (inst Instance) BuildSCS() (*graph.Graph, []graph.Edge) {
	b := graph.NewBuilder(inst.N())
	var h []graph.Edge
	add := func(x, y int, inH bool) {
		b.AddEdge(x, y, 1)
		if inH {
			e := graph.Edge{U: x, V: y, W: 1}
			h = append(h, e.Canon())
		}
	}
	add(inst.s(), inst.t(), true)
	for i := 0; i < inst.B; i++ {
		add(inst.u(i), inst.v(i), true)
		add(inst.s(), inst.u(i), !inst.X[i])
		add(inst.v(i), inst.t(), !inst.Y[i])
	}
	return b.Build(), h
}

// Partition places vertices on an even number of machines: Alice owns
// machines [0, k/2), Bob [k/2, k). s goes to a random Bob machine and t to
// a random Alice machine (as in the paper's simulation); u_i goes to
// Alice's half iff Alice held X[i], v_i to Bob's half iff Bob held Y[i].
func (inst Instance) Partition(k int, seed int64) ([]int, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("lowerbound: need even k >= 2, got %d", k)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x51de))
	alice := func() int { return rng.Intn(k / 2) }
	bob := func() int { return k/2 + rng.Intn(k/2) }
	homes := make([]int, inst.N())
	homes[inst.s()] = bob()
	homes[inst.t()] = alice()
	for i := 0; i < inst.B; i++ {
		if inst.AliceHoldsX[i] {
			homes[inst.u(i)] = alice()
		} else {
			homes[inst.u(i)] = bob()
		}
		if inst.BobHoldsY[i] {
			homes[inst.v(i)] = bob()
		} else {
			homes[inst.v(i)] = alice()
		}
	}
	return homes, nil
}

// Result reports one lower-bound run.
type Result struct {
	B        int
	K        int
	SCSHolds bool
	Disjoint bool
	// CutBits is the total bits crossing the Alice/Bob machine cut.
	CutBits int64
	// CutCapacityPerRound is the cut's per-round bit capacity
	// 2·(k/2)²·B — the denominator of the Ω̃(b/k²) argument.
	CutCapacityPerRound int64
	Rounds              int
	Metrics             kmachine.Metrics
}

// RunSCS solves the SCS instance with the real connectivity algorithm
// under the reduction's placement and meters the Alice/Bob cut traffic.
func RunSCS(inst Instance, cfg core.Config) (*Result, error) {
	g, h := inst.BuildSCS()
	keep := make(map[uint64]bool, len(h))
	for _, e := range h {
		keep[graph.EdgeID(e.U, e.V, g.N())] = true
	}
	hGraph := g.Filter(func(e graph.Edge) bool { return keep[graph.EdgeID(e.U, e.V, g.N())] })

	homes, err := inst.Partition(cfg.K, cfg.Seed)
	if err != nil {
		return nil, err
	}
	part := kmachine.NewExplicitPartition(hGraph, cfg.K, homes)
	res, err := core.RunWithPartition(hGraph, part, cfg)
	if err != nil {
		return nil, err
	}
	inA := make([]bool, cfg.K)
	for i := 0; i < cfg.K/2; i++ {
		inA[i] = true
	}
	if cfg.BandwidthBits == 0 {
		cfg.BandwidthBits = kmachine.Bandwidth(g.N())
	}
	half := int64(cfg.K / 2)
	return &Result{
		B:                   inst.B,
		K:                   cfg.K,
		SCSHolds:            res.Components == 1,
		Disjoint:            inst.Disjoint(),
		CutBits:             res.Metrics.CutBits(inA),
		CutCapacityPerRound: 2 * half * half * int64(cfg.BandwidthBits),
		Rounds:              res.Metrics.Rounds,
		Metrics:             res.Metrics,
	}, nil
}
