// Package field implements arithmetic in the prime field GF(p) with
// p = 2^61 - 1 (a Mersenne prime).
//
// The field is the substrate for the fingerprints used by the one-sparse
// recovery test inside the l0-sampling sketches (paper §2.3, following
// Jowhari–Saglam–Tardos) and for the d-wise independent polynomial hash
// family used to select component proxy machines (paper §2.2).
//
// Elements are represented as uint64 values in the canonical range [0, p).
// All functions assume (and preserve) canonical representation unless noted.
package field

import "math/bits"

// P is the field modulus 2^61 - 1.
const P uint64 = (1 << 61) - 1

// Reduce maps an arbitrary uint64 into the canonical range [0, P).
func Reduce(x uint64) uint64 {
	// Fold the top bits using 2^61 ≡ 1 (mod p).
	x = (x & P) + (x >> 61)
	if x >= P {
		x -= P
	}
	return x
}

// reduce128 reduces a 128-bit value hi*2^64 + lo modulo P.
func reduce128(hi, lo uint64) uint64 {
	// Write the value in base 2^61: a0 + a1*2^61 + a2*2^122.
	a0 := lo & P
	a1 := (lo >> 61) | ((hi << 3) & P)
	a2 := hi >> 58
	s := a0 + a1 + a2 // < 3*2^61, fits in uint64
	s = (s & P) + (s >> 61)
	if s >= P {
		s -= P
	}
	return s
}

// Add returns a + b mod P. Inputs must be canonical.
func Add(a, b uint64) uint64 {
	s := a + b // a, b < 2^61, no overflow
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns a - b mod P. Inputs must be canonical.
func Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Neg returns -a mod P. Input must be canonical.
func Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return P - a
}

// Mul returns a * b mod P. Inputs must be canonical.
func Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return reduce128(hi, lo)
}

// Pow returns a^e mod P by binary exponentiation. a must be canonical.
func Pow(a, e uint64) uint64 {
	r := uint64(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			r = Mul(r, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse of a (a must be nonzero and
// canonical), using Fermat's little theorem: a^(p-2) mod p.
func Inv(a uint64) uint64 {
	return Pow(a, P-2)
}

// PolyEval evaluates the polynomial with the given coefficients
// (coeffs[i] is the coefficient of x^i) at point x, by Horner's rule.
// Coefficients and x must be canonical.
func PolyEval(coeffs []uint64, x uint64) uint64 {
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = Add(Mul(acc, x), coeffs[i])
	}
	return acc
}
