package field

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

var bigP = new(big.Int).SetUint64(P)

func bigMod(x *big.Int) uint64 {
	return new(big.Int).Mod(x, bigP).Uint64()
}

func canon(x uint64) uint64 { return x % P }

func TestReduceCanonical(t *testing.T) {
	cases := []uint64{0, 1, P - 1, P, P + 1, 1 << 62, 1<<64 - 1, 2 * P, 3*P - 1}
	for _, x := range cases {
		got := Reduce(x)
		want := x % P
		if got != want {
			t.Errorf("Reduce(%d) = %d, want %d", x, got, want)
		}
		if got >= P {
			t.Errorf("Reduce(%d) = %d not canonical", x, got)
		}
	}
}

func TestReduceIdempotent(t *testing.T) {
	f := func(x uint64) bool {
		r := Reduce(x)
		return Reduce(r) == r && r < P
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddMatchesBig(t *testing.T) {
	f := func(a, b uint64) bool {
		a, b = canon(a), canon(b)
		want := bigMod(new(big.Int).Add(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b)))
		return Add(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubMatchesBig(t *testing.T) {
	f := func(a, b uint64) bool {
		a, b = canon(a), canon(b)
		want := bigMod(new(big.Int).Sub(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b)))
		return Sub(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(a, b uint64) bool {
		a, b = canon(a), canon(b)
		want := bigMod(new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b)))
		return Mul(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeg(t *testing.T) {
	f := func(a uint64) bool {
		a = canon(a)
		return Add(a, Neg(a)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributivity(t *testing.T) {
	f := func(a, b, c uint64) bool {
		a, b, c = canon(a), canon(b), canon(c)
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssociativityCommutativity(t *testing.T) {
	f := func(a, b, c uint64) bool {
		a, b, c = canon(a), canon(b), canon(c)
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) &&
			Mul(a, b) == Mul(b, a) &&
			Add(Add(a, b), c) == Add(a, Add(b, c)) &&
			Add(a, b) == Add(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInv(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := canon(rng.Uint64())
		if a == 0 {
			continue
		}
		if got := Mul(a, Inv(a)); got != 1 {
			t.Fatalf("a*Inv(a) = %d for a=%d, want 1", got, a)
		}
	}
}

func TestPowMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := canon(rng.Uint64())
		e := rng.Uint64() % 10000
		want := bigMod(new(big.Int).Exp(new(big.Int).SetUint64(a), new(big.Int).SetUint64(e), bigP))
		if got := Pow(a, e); got != want {
			t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, want)
		}
	}
}

func TestPowEdgeCases(t *testing.T) {
	if Pow(0, 0) != 1 {
		t.Error("Pow(0,0) should be 1 (empty product)")
	}
	if Pow(0, 5) != 0 {
		t.Error("Pow(0,5) should be 0")
	}
	if Pow(12345, 1) != 12345 {
		t.Error("Pow(a,1) should be a")
	}
}

func TestPolyEval(t *testing.T) {
	// p(x) = 3 + 2x + x^2 at x=5 -> 3 + 10 + 25 = 38.
	if got := PolyEval([]uint64{3, 2, 1}, 5); got != 38 {
		t.Errorf("PolyEval = %d, want 38", got)
	}
	// Empty polynomial is identically zero.
	if got := PolyEval(nil, 17); got != 0 {
		t.Errorf("PolyEval(nil) = %d, want 0", got)
	}
	// Constant polynomial.
	if got := PolyEval([]uint64{7}, 99); got != 7 {
		t.Errorf("PolyEval(const) = %d, want 7", got)
	}
}

func TestPolyEvalMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(8)
		coeffs := make([]uint64, d)
		for i := range coeffs {
			coeffs[i] = canon(rng.Uint64())
		}
		x := canon(rng.Uint64())
		want := new(big.Int)
		bx := new(big.Int).SetUint64(x)
		for i := len(coeffs) - 1; i >= 0; i-- {
			want.Mul(want, bx)
			want.Add(want, new(big.Int).SetUint64(coeffs[i]))
			want.Mod(want, bigP)
		}
		if got := PolyEval(coeffs, x); got != want.Uint64() {
			t.Fatalf("PolyEval mismatch: got %d want %d", got, want.Uint64())
		}
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := uint64(0x123456789abcdef)%P, uint64(0xfedcba987654321)%P
	var s uint64
	for i := 0; i < b.N; i++ {
		s = Mul(s^x, y)
	}
	_ = s
}

func BenchmarkPow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Pow(0x123456789abcdef%P, uint64(i))
	}
}
