// Package stats provides the aggregation and reporting layer for the
// experiment harness: summary statistics over repeated seeded trials,
// log-log power-law fits for scaling-exponent checks (the paper's claims
// are about exponents: n/k² vs n/k), and plain-text/CSV tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MinMax returns the extremes (0, 0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return
}

// FitPowerLaw fits y = c·x^slope by least squares on (ln x, ln y) and
// returns the slope and c. Points with non-positive coordinates are
// skipped. With fewer than two usable points it returns (0, 0).
func FitPowerLaw(xs, ys []float64) (slope, c float64) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return 0, 0
	}
	mx, my := Mean(lx), Mean(ly)
	var num, den float64
	for i := range lx {
		num += (lx[i] - mx) * (ly[i] - my)
		den += (lx[i] - mx) * (lx[i] - mx)
	}
	if den == 0 {
		return 0, 0
	}
	slope = num / den
	c = math.Exp(my - slope*mx)
	return
}

// Table is a titled grid of cells rendered as aligned text or CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns the aligned plain-text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV returns the comma-separated form (cells with commas are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(x float64) string {
	a := math.Abs(x)
	switch {
	case a != 0 && (a < 0.01 || a >= 1e6):
		return fmt.Sprintf("%.2e", x)
	case a < 10:
		return fmt.Sprintf("%.2f", x)
	default:
		return fmt.Sprintf("%.1f", x)
	}
}

// I formats an int for table cells.
func I[T ~int | ~int64](x T) string { return fmt.Sprintf("%d", x) }
