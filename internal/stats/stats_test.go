package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("std = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate cases")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("minmax = %v %v", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Error("empty minmax")
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// y = 3 x^-2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 / (x * x)
	}
	slope, c := FitPowerLaw(xs, ys)
	if math.Abs(slope+2) > 1e-9 || math.Abs(c-3) > 1e-9 {
		t.Errorf("slope=%v c=%v", slope, c)
	}
}

func TestFitPowerLawNoisy(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32}
	ys := []float64{100, 52, 24, 13, 6.2} // roughly x^-1
	slope, _ := FitPowerLaw(xs, ys)
	if slope > -0.8 || slope < -1.2 {
		t.Errorf("slope = %v, want ~-1", slope)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if s, c := FitPowerLaw([]float64{1}, []float64{1}); s != 0 || c != 0 {
		t.Error("single point should give 0,0")
	}
	if s, _ := FitPowerLaw([]float64{-1, 0, 2}, []float64{1, 1, 1}); s != 0 {
		// Only one usable point remains.
		t.Error("nonpositive points should be skipped")
	}
	if s, _ := FitPowerLaw([]float64{5, 5, 5}, []float64{1, 2, 3}); s != 0 {
		t.Error("zero x-variance should give 0")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "k", "rounds")
	tb.AddRow("2", "100")
	tb.AddRow("16", "7")
	tb.AddNote("slope %.1f", -2.0)
	out := tb.Render()
	for _, want := range []string{"## demo", "k", "rounds", "16", "slope -2.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Short rows padded.
	tb.AddRow("x")
	if got := tb.Rows[len(tb.Rows)-1]; len(got) != 2 {
		t.Error("row not padded")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("1,5", `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"1,5"`) || !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("csv escaping broken: %s", csv)
	}
}

func TestFormatters(t *testing.T) {
	if F(0.000001) != "1.00e-06" {
		t.Errorf("F small = %s", F(0.000001))
	}
	if F(3.14159) != "3.14" {
		t.Errorf("F mid = %s", F(3.14159))
	}
	if F(1234.5) != "1234.5" {
		t.Errorf("F large = %s", F(1234.5))
	}
	if I(42) != "42" || I(int64(7)) != "7" {
		t.Error("I formatting")
	}
}
