// Package graph provides the input-graph substrate for the k-machine
// reproduction: an immutable undirected graph type, a builder, seeded
// generator families for every workload the experiments use, and
// sequential "oracle" algorithms (connected components, minimum spanning
// tree, minimum cut, bipartiteness, ...) that supply ground truth for the
// distributed algorithms under test.
//
// Vertices are integers 0..N-1 (the paper's ID space [n]). Edges are
// undirected, stored canonically with U < V, and may carry int64 weights.
// Edge identifiers pack the canonical endpoints as U*N + V, matching the
// coordinate space of the sketch incidence vectors (§2.3).
package graph

import (
	"fmt"
	"sort"
)

// Half is one directed half of an undirected edge, as seen from its origin.
type Half struct {
	To int
	W  int64
}

// Edge is a canonical undirected edge (U < V) with weight W.
type Edge struct {
	U, V int
	W    int64
}

// Canon returns e with endpoints swapped if necessary so that U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Graph is an immutable undirected graph with N vertices.
type Graph struct {
	n   int
	m   int
	adj [][]Half
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Adj returns the adjacency list of v. The caller must not modify it.
func (g *Graph) Adj(v int) []Half { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Edges returns all edges in canonical form, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, h := range g.adj[u] {
			if u < h.To {
				out = append(out, Edge{U: u, V: h.To, W: h.W})
			}
		}
	}
	return out
}

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, h := range g.adj[u] {
		if h.To == v {
			return true
		}
	}
	return false
}

// Weight returns the weight of edge {u, v} and whether it exists.
func (g *Graph) Weight(u, v int) (int64, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	for _, h := range g.adj[u] {
		if h.To == v {
			return h.W, true
		}
	}
	return 0, false
}

// EdgeID packs the canonical endpoints of {u, v} in an n-vertex graph into
// the coordinate id u'*n + v' (u' < v') used by the sketch incidence
// vectors.
func EdgeID(u, v, n int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)*uint64(n) + uint64(v)
}

// DecodeEdgeID is the inverse of EdgeID.
func DecodeEdgeID(id uint64, n int) (u, v int) {
	return int(id / uint64(n)), int(id % uint64(n))
}

// Builder accumulates edges and produces an immutable Graph. Self-loops
// and duplicate edges are rejected.
type Builder struct {
	n     int
	edges map[uint64]int64
}

// NewBuilder returns a builder for an n-vertex graph.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, edges: make(map[uint64]int64)}
}

// N returns the vertex count of the graph under construction.
func (b *Builder) N() int { return b.n }

// Has reports whether {u, v} has already been added.
func (b *Builder) Has(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return false
	}
	_, ok := b.edges[EdgeID(u, v, b.n)]
	return ok
}

// AddEdge adds the weighted edge {u, v}. It panics on self-loops,
// out-of-range endpoints, or duplicates: generators are expected to be
// correct, and a silent skip would corrupt edge-count invariants.
func (b *Builder) AddEdge(u, v int, w int64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	id := EdgeID(u, v, b.n)
	if _, dup := b.edges[id]; dup {
		panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", u, v))
	}
	b.edges[id] = w
}

// TryAddEdge adds {u, v} unless it is a self-loop or duplicate, reporting
// whether the edge was added. Used by randomized generators.
func (b *Builder) TryAddEdge(u, v int, w int64) bool {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return false
	}
	id := EdgeID(u, v, b.n)
	if _, dup := b.edges[id]; dup {
		return false
	}
	b.edges[id] = w
	return true
}

// M returns the number of edges added so far.
func (b *Builder) M() int { return len(b.edges) }

// Build produces the immutable graph. Adjacency lists are sorted by
// neighbor ID so iteration order is deterministic.
//
// Degrees are counted first and all 2m half-edges are carved from one
// exactly-sized arena — one allocation instead of n, no append
// re-slicing, no per-slice allocator slack — which is what keeps the
// in-memory build's peak footprint close to the theoretical 16 bytes
// per half-edge.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, m: len(b.edges), adj: make([][]Half, b.n)}
	deg := make([]int, b.n)
	for id := range b.edges {
		u, v := DecodeEdgeID(id, b.n)
		deg[u]++
		deg[v]++
	}
	arena := make([]Half, 2*len(b.edges))
	off := 0
	cur := make([]int, b.n)
	for v := range g.adj {
		if deg[v] == 0 {
			continue
		}
		g.adj[v] = arena[off : off+deg[v] : off+deg[v]]
		cur[v] = off
		off += deg[v]
	}
	for id, w := range b.edges {
		u, v := DecodeEdgeID(id, b.n)
		arena[cur[u]] = Half{To: v, W: w}
		cur[u]++
		arena[cur[v]] = Half{To: u, W: w}
		cur[v]++
	}
	for v := range g.adj {
		a := g.adj[v]
		sort.Slice(a, func(i, j int) bool { return a[i].To < a[j].To })
	}
	return g
}

// FromEdges builds a graph directly from a canonical edge list. Unlike
// the Builder it never holds a dedup map: degrees are counted from the
// slice, half-edges are placed into one exactly-sized arena, and
// duplicates are caught by the post-sort adjacency scan — so peak
// memory is the output graph itself. It panics on self-loops,
// out-of-range endpoints, or duplicates, like Builder.AddEdge.
func FromEdges(n int, edges []Edge) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	g := &Graph{n: n, m: len(edges), adj: make([][]Half, n)}
	deg := make([]int, n)
	for _, e := range edges {
		e = e.Canon()
		if e.U == e.V {
			panic(fmt.Sprintf("graph: self-loop at %d", e.U))
		}
		if e.U < 0 || e.V >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n))
		}
		deg[e.U]++
		deg[e.V]++
	}
	arena := make([]Half, 2*len(edges))
	off := 0
	cur := make([]int, n)
	for v := 0; v < n; v++ {
		if deg[v] == 0 {
			continue
		}
		g.adj[v] = arena[off : off+deg[v] : off+deg[v]]
		cur[v] = off
		off += deg[v]
	}
	for _, e := range edges {
		e = e.Canon()
		arena[cur[e.U]] = Half{To: e.V, W: e.W}
		cur[e.U]++
		arena[cur[e.V]] = Half{To: e.U, W: e.W}
		cur[e.V]++
	}
	for v := range g.adj {
		a := g.adj[v]
		sort.Slice(a, func(i, j int) bool { return a[i].To < a[j].To })
		for i := 1; i < len(a); i++ {
			if a[i].To == a[i-1].To {
				panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", v, a[i].To))
			}
		}
	}
	return g
}

// Filter returns the subgraph of g keeping exactly the edges for which
// keep returns true. The vertex set is unchanged.
func (g *Graph) Filter(keep func(Edge) bool) *Graph {
	b := NewBuilder(g.n)
	for u := 0; u < g.n; u++ {
		for _, h := range g.adj[u] {
			if u < h.To {
				e := Edge{U: u, V: h.To, W: h.W}
				if keep(e) {
					b.AddEdge(e.U, e.V, e.W)
				}
			}
		}
	}
	return b.Build()
}

// RemoveEdges returns g minus the given edges (matched by endpoints).
func (g *Graph) RemoveEdges(remove []Edge) *Graph {
	del := make(map[uint64]bool, len(remove))
	for _, e := range remove {
		e = e.Canon()
		del[EdgeID(e.U, e.V, g.n)] = true
	}
	return g.Filter(func(e Edge) bool { return !del[EdgeID(e.U, e.V, g.n)] })
}

// DoubleCover returns the bipartite double cover of g: vertices (v, 0) and
// (v, 1) encoded as v and v+n, with edges {(u,0),(v,1)} and {(u,1),(v,0)}
// for every edge {u,v} of g. G is bipartite iff its double cover has
// exactly twice as many connected components as G (used by the
// bipartiteness verifier, §3.3 via AGM §3.3).
func (g *Graph) DoubleCover() *Graph {
	b := NewBuilder(2 * g.n)
	for u := 0; u < g.n; u++ {
		for _, h := range g.adj[u] {
			if u < h.To {
				b.AddEdge(u, h.To+g.n, h.W)
				b.AddEdge(u+g.n, h.To, h.W)
			}
		}
	}
	return b.Build()
}
