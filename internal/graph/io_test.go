package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := WithDistinctWeights(GNM(80, 200, 1), 2)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", h.N(), h.M(), g.N(), g.M())
	}
	he, ge := h.Edges(), g.Edges()
	for i := range ge {
		if he[i] != ge[i] {
			t.Fatalf("edge %d: %v vs %v", i, he[i], ge[i])
		}
	}
}

func TestReadEdgeListFormats(t *testing.T) {
	in := `# a comment
% another comment style

0 1
2 0 7
	3   1   5
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if w, _ := g.Weight(0, 2); w != 7 {
		t.Error("weight lost")
	}
	if w, _ := g.Weight(0, 1); w != 1 {
		t.Error("default weight should be 1")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"fields", "0 1 2 3\n"},
		{"badvertex", "a 1\n"},
		{"badweight", "0 1 x\n"},
		{"negative", "-1 2\n"},
		{"selfloop", "3 3\n"},
		{"duplicate", "0 1\n1 0\n"},
	}
	for _, tc := range cases {
		if _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListIsolatedGaps(t *testing.T) {
	// IDs 0 and 5 appear; 1..4 become isolated vertices.
	g, err := ReadEdgeList(strings.NewReader("0 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || g.M() != 1 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
	if got := ComponentCount(g); got != 5 {
		t.Errorf("components = %d, want 5", got)
	}
}
