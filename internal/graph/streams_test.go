package graph

import (
	"reflect"
	"testing"
)

// assertClean replays the stream and checks every op applies cleanly:
// inserts add absent edges, deletes remove present ones.
func assertClean(t *testing.T, s *Stream) {
	t.Helper()
	live := make(map[uint64]bool)
	for _, e := range s.Initial.Edges() {
		live[EdgeID(e.U, e.V, s.N)] = true
	}
	for bi, ops := range s.Batches {
		for oi, op := range ops {
			if op.U < 0 || op.V < 0 || op.U >= s.N || op.V >= s.N || op.U == op.V {
				t.Fatalf("batch %d op %d: invalid endpoints %v", bi, oi, op)
			}
			op = op.Canon()
			id := EdgeID(op.U, op.V, s.N)
			if op.Del {
				if !live[id] {
					t.Fatalf("batch %d op %d: delete of absent edge %v", bi, oi, op)
				}
				delete(live, id)
			} else {
				if live[id] {
					t.Fatalf("batch %d op %d: duplicate insert %v", bi, oi, op)
				}
				live[id] = true
			}
		}
	}
}

func TestRandomChurnStreamClean(t *testing.T) {
	s := RandomChurnStream(200, 600, 8, 40, 0.5, 7)
	if s.Initial.M() != 600 {
		t.Fatalf("initial edges = %d, want 600", s.Initial.M())
	}
	if len(s.Batches) != 8 {
		t.Fatalf("batches = %d, want 8", len(s.Batches))
	}
	assertClean(t, s)
}

func TestRandomChurnStreamDeterministic(t *testing.T) {
	a := RandomChurnStream(100, 300, 5, 20, 0.4, 42)
	b := RandomChurnStream(100, 300, 5, 20, 0.4, 42)
	if !reflect.DeepEqual(a.Batches, b.Batches) {
		t.Fatal("same seed produced different batches")
	}
	c := RandomChurnStream(100, 300, 5, 20, 0.4, 43)
	if reflect.DeepEqual(a.Batches, c.Batches) {
		t.Fatal("different seeds produced identical batches")
	}
}

func TestSlidingWindowStream(t *testing.T) {
	window, batchSize := 300, 50
	s := SlidingWindowStream(150, window, 6, batchSize, 11)
	if s.Initial.M() != window {
		t.Fatalf("initial edges = %d, want %d", s.Initial.M(), window)
	}
	assertClean(t, s)
	// After every batch the live set is exactly the window size.
	for i, g := range s.Snapshots() {
		if g.M() != window {
			t.Fatalf("after batch %d: %d live edges, want %d", i, g.M(), window)
		}
	}
}

func TestSplitMergeStream(t *testing.T) {
	comps := 4
	s := SplitMergeStream(120, comps, 6, 3)
	assertClean(t, s)
	if _, c := Components(s.Initial); c != 1 {
		t.Fatalf("initial components = %d, want 1", c)
	}
	for i, g := range s.Snapshots() {
		_, c := Components(g)
		want := 1
		if i%2 == 0 {
			want = comps // split batches disconnect the blocks
		}
		if c != want {
			t.Fatalf("after batch %d: components = %d, want %d", i, c, want)
		}
	}
}

func TestApplyOpsSemantics(t *testing.T) {
	g := Path(4) // 0-1-2-3
	ops := []EdgeOp{
		{Del: true, U: 1, V: 2}, // split
		{U: 0, V: 3, W: 5},      // reconnect
		{U: 0, V: 1, W: 9},      // duplicate insert: no-op
		{Del: true, U: 0, V: 2}, // delete absent: no-op
		{Del: true, U: 3, V: 0}, // non-canonical delete of (0,3)
		{U: 2, V: 1, W: 7},      // reinsert previously deleted edge
	}
	got := ApplyOps(g, ops)
	if got.M() != 3 {
		t.Fatalf("edges = %d, want 3", got.M())
	}
	if w, ok := got.Weight(0, 1); !ok || w != 1 {
		t.Fatalf("weight(0,1) = %d,%v; duplicate insert must not overwrite", w, ok)
	}
	if w, ok := got.Weight(1, 2); !ok || w != 7 {
		t.Fatalf("weight(1,2) = %d,%v, want 7", w, ok)
	}
	if got.HasEdge(0, 3) {
		t.Fatal("edge (0,3) should have been re-deleted")
	}
	if _, c := Components(got); c != 1 {
		t.Fatalf("components = %d, want 1", c)
	}
}
