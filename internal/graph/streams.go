package graph

import (
	"fmt"
	"math/rand"
)

// Update-stream generators for the dynamic subsystem: batched sequences of
// edge insertions and deletions over a fixed vertex set. All generators are
// deterministic in their seed and emit *clean* streams — when the batches
// are applied in order, every insertion adds an absent edge and every
// deletion removes a present one — so streams double as ground truth for
// the dynamic engine's rejection accounting (rejections only appear when a
// caller mutates a stream or replays it against the wrong snapshot).

// EdgeOp is one update in a dynamic edge stream.
type EdgeOp struct {
	// Del selects deletion; otherwise the op is an insertion.
	Del bool
	// U, V are the endpoints (canonical U < V in generator output).
	U, V int
	// W is the edge weight (insertions only; 1 for unweighted streams).
	W int64
}

// Canon returns op with endpoints swapped if necessary so that U < V.
func (op EdgeOp) Canon() EdgeOp {
	if op.U > op.V {
		op.U, op.V = op.V, op.U
	}
	return op
}

func (op EdgeOp) String() string {
	if op.Del {
		return fmt.Sprintf("-(%d,%d)", op.U, op.V)
	}
	return fmt.Sprintf("+(%d,%d,w%d)", op.U, op.V, op.W)
}

// Stream is a batched update stream: an initial n-vertex graph followed by
// batches of edge operations.
type Stream struct {
	// N is the (fixed) vertex count.
	N int
	// Initial is the graph the session starts from.
	Initial *Graph
	// Batches are the update batches, to be applied in order.
	Batches [][]EdgeOp
}

// ApplyOps returns g after applying ops in order with the dynamic engine's
// semantics: inserting a present edge and deleting an absent one are
// no-ops. The returned graph is the oracle snapshot for validating dynamic
// query answers.
func ApplyOps(g *Graph, ops []EdgeOp) *Graph {
	live := make(map[uint64]int64, g.M())
	for _, e := range g.Edges() {
		live[EdgeID(e.U, e.V, g.N())] = e.W
	}
	for _, op := range ops {
		op = op.Canon()
		if op.U == op.V || op.U < 0 || op.V >= g.N() {
			continue
		}
		id := EdgeID(op.U, op.V, g.N())
		if op.Del {
			delete(live, id)
		} else if _, dup := live[id]; !dup {
			live[id] = op.W
		}
	}
	b := NewBuilder(g.N())
	for id, w := range live {
		u, v := DecodeEdgeID(id, g.N())
		b.AddEdge(u, v, w)
	}
	return b.Build()
}

// Snapshots returns the graph after each batch of s, starting from
// Initial: Snapshots()[i] is the state the i-th query sees.
func (s *Stream) Snapshots() []*Graph {
	out := make([]*Graph, len(s.Batches))
	g := s.Initial
	for i, ops := range s.Batches {
		g = ApplyOps(g, ops)
		out[i] = g
	}
	return out
}

// edgeSet tracks a set of live edges supporting O(1) uniform sampling and
// deletion (slice + index map).
type edgeSet struct {
	n     int
	ids   []uint64
	index map[uint64]int
}

func newEdgeSet(n int) *edgeSet {
	return &edgeSet{n: n, index: make(map[uint64]int)}
}

func (s *edgeSet) has(id uint64) bool { _, ok := s.index[id]; return ok }

func (s *edgeSet) add(id uint64) {
	s.index[id] = len(s.ids)
	s.ids = append(s.ids, id)
}

func (s *edgeSet) remove(id uint64) {
	i := s.index[id]
	last := len(s.ids) - 1
	s.ids[i] = s.ids[last]
	s.index[s.ids[i]] = i
	s.ids = s.ids[:last]
	delete(s.index, id)
}

// randomPresent returns a uniform live edge id (len(ids) must be > 0).
func (s *edgeSet) randomPresent(rng *rand.Rand) uint64 {
	return s.ids[rng.Intn(len(s.ids))]
}

// randomAbsent returns a uniform absent pair by rejection sampling.
func (s *edgeSet) randomAbsent(rng *rand.Rand) (int, int, bool) {
	if s.n < 2 {
		return 0, 0, false
	}
	maxPairs := s.n * (s.n - 1) / 2
	for tries := 0; tries < 64; tries++ {
		u := rng.Intn(s.n)
		v := rng.Intn(s.n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if !s.has(EdgeID(u, v, s.n)) {
			return u, v, true
		}
	}
	// Dense fallback: the graph is nearly complete; scan for a gap.
	if len(s.ids) >= maxPairs {
		return 0, 0, false
	}
	for u := 0; u < s.n; u++ {
		for v := u + 1; v < s.n; v++ {
			if !s.has(EdgeID(u, v, s.n)) {
				return u, v, true
			}
		}
	}
	return 0, 0, false
}

func setFromGraph(g *Graph) *edgeSet {
	s := newEdgeSet(g.N())
	for _, e := range g.Edges() {
		s.add(EdgeID(e.U, e.V, g.N()))
	}
	return s
}

// RandomChurnStream generates the steady-state churn workload: an initial
// G(n, m0) graph followed by batches in which each op deletes a uniformly
// random live edge with probability delFrac and inserts a uniformly random
// absent pair otherwise. With delFrac = 0.5 the edge count performs a
// random walk around m0 — the "1% churn" serving pattern.
func RandomChurnStream(n, m0, batches, batchSize int, delFrac float64, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed ^ 0x5742ea11))
	initial := GNM(n, m0, seed^0x77)
	live := setFromGraph(initial)
	st := &Stream{N: n, Initial: initial}
	for b := 0; b < batches; b++ {
		var ops []EdgeOp
		for i := 0; i < batchSize; i++ {
			if len(live.ids) > 0 && rng.Float64() < delFrac {
				id := live.randomPresent(rng)
				u, v := DecodeEdgeID(id, n)
				live.remove(id)
				ops = append(ops, EdgeOp{Del: true, U: u, V: v})
				continue
			}
			u, v, ok := live.randomAbsent(rng)
			if !ok {
				continue
			}
			live.add(EdgeID(u, v, n))
			ops = append(ops, EdgeOp{U: u, V: v, W: 1})
		}
		st.Batches = append(st.Batches, ops)
	}
	return st
}

// SlidingWindowStream generates the time-decay workload: random edges
// arrive batchSize at a time, and every edge expires after it has been live
// for `window` arrivals — each batch inserts the new arrivals and deletes
// the expired ones. Initial is the first window of arrivals, so the session
// starts warm.
func SlidingWindowStream(n, window, batches, batchSize int, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed ^ 0x3317d0))
	live := newEdgeSet(n)
	var fifo []uint64 // arrival order of live edges
	arrive := func() (uint64, bool) {
		u, v, ok := live.randomAbsent(rng)
		if !ok {
			return 0, false
		}
		id := EdgeID(u, v, n)
		live.add(id)
		fifo = append(fifo, id)
		return id, true
	}

	b := NewBuilder(n)
	for i := 0; i < window; i++ {
		if id, ok := arrive(); ok {
			u, v := DecodeEdgeID(id, n)
			b.AddEdge(u, v, 1)
		}
	}
	st := &Stream{N: n, Initial: b.Build()}

	for bt := 0; bt < batches; bt++ {
		var ops []EdgeOp
		for i := 0; i < batchSize; i++ {
			if id, ok := arrive(); ok {
				u, v := DecodeEdgeID(id, n)
				ops = append(ops, EdgeOp{U: u, V: v, W: 1})
			}
		}
		for len(fifo) > window {
			id := fifo[0]
			fifo = fifo[1:]
			u, v := DecodeEdgeID(id, n)
			live.remove(id)
			ops = append(ops, EdgeOp{Del: true, U: u, V: v})
		}
		st.Batches = append(st.Batches, ops)
	}
	return st
}

// SplitMergeStream generates the component-split/merge adversary: the
// vertex set is divided into `comps` blocks, each internally wired as a
// random tree plus shortcut edges, and adjacent blocks are joined by single
// bridge edges — so connectivity hinges entirely on the bridges, which are
// spanning-forest edges of every certificate. Odd batches delete all
// current bridges (splitting one component into `comps`), even batches
// re-insert fresh random bridges (merging them back). This is the worst
// case for incremental engines that only reuse clean components.
func SplitMergeStream(n, comps, batches int, seed int64) *Stream {
	if comps < 2 {
		panic("graph: SplitMergeStream needs comps >= 2")
	}
	if n < 2*comps {
		panic("graph: SplitMergeStream needs n >= 2*comps")
	}
	rng := rand.New(rand.NewSource(seed ^ 0x59117))
	blockOf := func(v int) int { return v * comps / n }
	blockRange := func(c int) (lo, hi int) {
		// Inverse of blockOf's balanced split.
		lo = (c*n + comps - 1) / comps
		for blockOf(lo) != c {
			lo++
		}
		hi = lo
		for hi < n && blockOf(hi) == c {
			hi++
		}
		return lo, hi
	}

	b := NewBuilder(n)
	for c := 0; c < comps; c++ {
		lo, hi := blockRange(c)
		for v := lo + 1; v < hi; v++ {
			b.AddEdge(lo+rng.Intn(v-lo), v, 1) // random recursive tree
		}
		for t := 0; t < (hi-lo)/2; t++ { // shortcut edges
			u := lo + rng.Intn(hi-lo)
			v := lo + rng.Intn(hi-lo)
			b.TryAddEdge(u, v, 1)
		}
	}
	randBridge := func(c int) (int, int) {
		lo0, hi0 := blockRange(c)
		lo1, hi1 := blockRange(c + 1)
		return lo0 + rng.Intn(hi0-lo0), lo1 + rng.Intn(hi1-lo1)
	}
	bridges := make([][2]int, comps-1)
	for c := 0; c+1 < comps; c++ {
		u, v := randBridge(c)
		for b.Has(u, v) {
			u, v = randBridge(c)
		}
		b.AddEdge(u, v, 1)
		bridges[c] = [2]int{u, v}
	}
	st := &Stream{N: n, Initial: b.Build()}
	present := setFromGraph(st.Initial)

	for bt := 0; bt < batches; bt++ {
		var ops []EdgeOp
		if bt%2 == 0 {
			// Split: delete every current bridge.
			for _, br := range bridges {
				ops = append(ops, EdgeOp{Del: true, U: br[0], V: br[1]}.Canon())
				present.remove(EdgeID(br[0], br[1], n))
			}
		} else {
			// Merge: re-insert fresh random bridges.
			for c := 0; c+1 < comps; c++ {
				u, v := randBridge(c)
				for present.has(EdgeID(u, v, n)) {
					u, v = randBridge(c)
				}
				bridges[c] = [2]int{u, v}
				ops = append(ops, EdgeOp{U: u, V: v, W: 1}.Canon())
				present.add(EdgeID(u, v, n))
			}
		}
		st.Batches = append(st.Batches, ops)
	}
	return st
}
