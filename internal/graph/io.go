package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list I/O in the ubiquitous whitespace-separated text format used
// by SNAP and similar graph repositories:
//
//	# comment lines start with '#' (or '%')
//	u v [w]
//
// so real-world graph files can be fed to the CLIs and examples.

// WriteEdgeList writes g as "u v w" lines with a header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# kmgraph edge list: n=%d m=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a whitespace-separated edge list. Vertex IDs are
// non-negative integers; the graph gets N = maxID+1 vertices (IDs that
// never appear become isolated vertices). Missing weights default to 1;
// duplicate edges and self-loops are rejected.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	type rawEdge struct {
		u, v int
		w    int64
	}
	var raw []rawEdge
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", line, fields[1])
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex ID", line)
		}
		w := int64(1)
		if len(fields) == 3 {
			w, err = strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", line, fields[2])
			}
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop at %d", line, u)
		}
		raw = append(raw, rawEdge{u, v, w})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b := NewBuilder(maxID + 1)
	for i, e := range raw {
		if !b.TryAddEdge(e.u, e.v, e.w) {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d) (entry %d)", e.u, e.v, i+1)
		}
	}
	return b.Build(), nil
}
