package graph

import (
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Streaming generator sources: deterministic random-graph generators
// that implement EdgeSource without ever materializing a Graph, so
// cmd/kmconvert can write million-vertex stores whose peak memory is the
// dedup set (one uint64 per edge), not the adjacency. They are distinct
// families from the Builder-based generators (same models, different
// edge sequences): converting a stream and generating in memory with the
// same seed produce different — equally valid — graphs.
//
// Each source replays exactly the same edge sequence after Reset (the
// RNG is re-seeded and the dedup set rebuilt), which is what the
// two-pass shard loaders and the store writer require.

// gnmSource streams a uniform G(n, m) sample: endpoint pairs drawn
// uniformly, self-loops and duplicates rejected.
type gnmSource struct {
	n, m int
	seed int64
	rng  *rand.Rand
	seen map[uint64]struct{}
	emit int
}

// StreamGNM returns an EdgeSource streaming a uniform random graph with
// exactly m edges over n vertices (all weights 1). It panics if m
// exceeds n(n-1)/2; densities above ~half the complete graph converge
// slowly and belong in the in-memory GNM.
func StreamGNM(n, m int, seed int64) EdgeSource {
	maxM := n * (n - 1) / 2
	if m < 0 || m > maxM {
		panic(fmt.Sprintf("graph: StreamGNM m=%d out of range for n=%d", m, n))
	}
	s := &gnmSource{n: n, m: m, seed: seed}
	s.Reset()
	return s
}

func (s *gnmSource) N() int { return s.n }

func (s *gnmSource) Reset() error {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.seen = make(map[uint64]struct{}, s.m)
	s.emit = 0
	return nil
}

func (s *gnmSource) Next() (Edge, error) {
	if s.emit >= s.m {
		return Edge{}, io.EOF
	}
	for {
		u, v := s.rng.Intn(s.n), s.rng.Intn(s.n)
		if u == v {
			continue
		}
		id := EdgeID(u, v, s.n)
		if _, dup := s.seen[id]; dup {
			continue
		}
		s.seen[id] = struct{}{}
		s.emit++
		if u > v {
			u, v = v, u
		}
		return Edge{U: u, V: v, W: 1}, nil
	}
}

// rmatSource streams an R-MAT sample (Chakrabarti, Zhan & Faloutsos):
// each edge picks a quadrant of the adjacency matrix recursively with
// probabilities (a, b, c, d), yielding the skewed-degree, community-ish
// structure of web and social graphs at scale.
type rmatSource struct {
	n, m       int
	levels     uint
	a, ab, abc float64
	seed       int64
	rng        *rand.Rand
	seen       map[uint64]struct{}
	emit       int
}

// StreamRMAT returns an EdgeSource streaming an R-MAT graph with m
// distinct edges over n vertices (weights 1), with the standard
// partition probabilities a=0.57, b=0.19, c=0.19, d=0.05. Coordinates
// are drawn in the enclosing power-of-two square and rejected when they
// fall outside [0, n).
func StreamRMAT(n, m int, seed int64) EdgeSource {
	if n < 2 || m < 0 {
		panic(fmt.Sprintf("graph: StreamRMAT needs n >= 2, m >= 0 (got n=%d m=%d)", n, m))
	}
	levels := uint(0)
	for s := 1; s < n; s <<= 1 {
		levels++
	}
	s := &rmatSource{n: n, m: m, levels: levels, a: 0.57, ab: 0.76, abc: 0.95, seed: seed}
	s.Reset()
	return s
}

func (s *rmatSource) N() int { return s.n }

func (s *rmatSource) Reset() error {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.seen = make(map[uint64]struct{}, s.m)
	s.emit = 0
	return nil
}

func (s *rmatSource) Next() (Edge, error) {
	if s.emit >= s.m {
		return Edge{}, io.EOF
	}
	for {
		u, v := 0, 0
		for l := uint(0); l < s.levels; l++ {
			r := s.rng.Float64()
			switch {
			case r < s.a: // top-left
			case r < s.ab: // top-right
				v |= 1 << l
			case r < s.abc: // bottom-left
				u |= 1 << l
			default: // bottom-right
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u == v || u >= s.n || v >= s.n {
			continue
		}
		id := EdgeID(u, v, s.n)
		if _, dup := s.seen[id]; dup {
			continue
		}
		s.seen[id] = struct{}{}
		s.emit++
		if u > v {
			u, v = v, u
		}
		return Edge{U: u, V: v, W: 1}, nil
	}
}

// powerLawSource streams a Chung–Lu-style power-law graph: endpoints are
// drawn independently proportional to weights w_i ∝ i^(-1/(gamma-1)),
// giving a degree distribution with exponent gamma — the web-graph
// workload of the paper's introduction, at converter scale.
type powerLawSource struct {
	n, m int
	cum  []float64 // cumulative endpoint weights, cum[n-1] == total
	seed int64
	rng  *rand.Rand
	seen map[uint64]struct{}
	emit int
}

// StreamPowerLaw returns an EdgeSource streaming a power-law graph with
// m distinct edges over n vertices (weights 1), degree exponent gamma
// (> 2). Unlike ChungLu it fixes the edge count exactly; the expected
// degree sequence follows the same w_i ∝ (i+1)^(-1/(gamma-1)) law.
func StreamPowerLaw(n, m int, gamma float64, seed int64) EdgeSource {
	if gamma <= 2 {
		panic("graph: StreamPowerLaw needs gamma > 2")
	}
	if n < 2 || m < 0 {
		panic(fmt.Sprintf("graph: StreamPowerLaw needs n >= 2, m >= 0 (got n=%d m=%d)", n, m))
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -1/(gamma-1))
		cum[i] = total
	}
	s := &powerLawSource{n: n, m: m, cum: cum, seed: seed}
	s.Reset()
	return s
}

func (s *powerLawSource) N() int { return s.n }

func (s *powerLawSource) Reset() error {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.seen = make(map[uint64]struct{}, s.m)
	s.emit = 0
	return nil
}

// draw samples a vertex proportional to its power-law weight by binary
// search over the cumulative table.
func (s *powerLawSource) draw() int {
	x := s.rng.Float64() * s.cum[s.n-1]
	lo, hi := 0, s.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (s *powerLawSource) Next() (Edge, error) {
	if s.emit >= s.m {
		return Edge{}, io.EOF
	}
	for {
		u, v := s.draw(), s.draw()
		if u == v {
			continue
		}
		id := EdgeID(u, v, s.n)
		if _, dup := s.seen[id]; dup {
			continue
		}
		s.seen[id] = struct{}{}
		s.emit++
		if u > v {
			u, v = v, u
		}
		return Edge{U: u, V: v, W: 1}, nil
	}
}
