package graph

import (
	"math"
	"testing"
)

func TestPathCycleStarComplete(t *testing.T) {
	if g := Path(10); g.M() != 9 || !IsConnected(g) || Diameter(g) != 9 {
		t.Error("path invariants")
	}
	if g := Path(1); g.M() != 0 || g.N() != 1 {
		t.Error("trivial path")
	}
	if g := Cycle(10); g.M() != 10 || !IsConnected(g) || !HasCycle(g) {
		t.Error("cycle invariants")
	}
	if g := Star(10); g.M() != 9 || g.Degree(0) != 9 || HasCycle(g) {
		t.Error("star invariants")
	}
	if g := Complete(7); g.M() != 21 || Diameter(g) != 1 {
		t.Error("complete invariants")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("n = %d", g.N())
	}
	want := 3*3 + 2*4 // horizontal + vertical
	if g.M() != want {
		t.Errorf("m = %d, want %d", g.M(), want)
	}
	if !IsConnected(g) || !IsBipartite(g) {
		t.Error("grid should be connected and bipartite")
	}
}

func TestGNPEdgeCountConcentration(t *testing.T) {
	n, p := 300, 0.05
	g := GNP(n, p, 11)
	mean := p * float64(n) * float64(n-1) / 2
	if math.Abs(float64(g.M())-mean) > 4*math.Sqrt(mean) {
		t.Errorf("GNP m=%d far from mean %.0f", g.M(), mean)
	}
	// Determinism.
	if g2 := GNP(n, p, 11); g2.M() != g.M() {
		t.Error("GNP not deterministic in seed")
	}
	if g3 := GNP(n, p, 12); g3.M() == g.M() && len(g3.Edges()) > 0 && g3.Edges()[0] == g.Edges()[0] {
		t.Log("different seeds produced same first edge (possible but unlikely)")
	}
}

func TestGNPDegenerate(t *testing.T) {
	if g := GNP(10, 0, 1); g.M() != 0 {
		t.Error("p=0 should be edgeless")
	}
	if g := GNP(10, 1, 1); g.M() != 45 {
		t.Error("p=1 should be complete")
	}
}

func TestGNMExact(t *testing.T) {
	for _, m := range []int{0, 1, 50, 1000, 4950} {
		g := GNM(100, m, 5)
		if g.M() != m {
			t.Errorf("GNM(100,%d) produced %d edges", m, g.M())
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := RandomTree(200, seed)
		if g.M() != 199 || !IsConnected(g) || HasCycle(g) {
			t.Errorf("seed %d: not a tree (m=%d)", seed, g.M())
		}
	}
}

func TestRandomConnected(t *testing.T) {
	g := RandomConnected(100, 250, 3)
	if g.M() != 250 || !IsConnected(g) {
		t.Errorf("m=%d connected=%v", g.M(), IsConnected(g))
	}
}

func TestDisjointComponentsCount(t *testing.T) {
	for _, c := range []int{1, 2, 7, 25} {
		g := DisjointComponents(100, c, 0.5, 42)
		if got := ComponentCount(g); got != c {
			t.Errorf("c=%d: got %d components", c, got)
		}
	}
	// Edgeless extreme.
	g := DisjointComponents(10, 10, 0, 1)
	if g.M() != 0 {
		t.Error("n singleton components should have no edges")
	}
}

func TestBarbellLollipop(t *testing.T) {
	g := Barbell(5, 3)
	if g.N() != 13 || !IsConnected(g) {
		t.Error("barbell")
	}
	if MinCut(g) != 1 {
		t.Errorf("barbell min cut = %d, want 1", MinCut(g))
	}
	l := Lollipop(6, 4)
	if l.N() != 10 || !IsConnected(l) {
		t.Error("lollipop")
	}
	if l.M() != 15+4 {
		t.Errorf("lollipop m = %d", l.M())
	}
}

func TestRandomBipartiteIsBipartite(t *testing.T) {
	g := RandomBipartite(40, 60, 0.1, 9)
	if !IsBipartite(g) {
		t.Error("bipartite generator produced odd cycle")
	}
	for _, e := range g.Edges() {
		if (e.U < 40) == (e.V < 40) {
			t.Fatalf("edge %v within one side", e)
		}
	}
}

func TestPlantedPartition(t *testing.T) {
	g := PlantedPartition(120, 4, 0.3, 0.01, 17)
	if g.N() != 120 {
		t.Fatal("n")
	}
	// With these parameters each community is internally dense, so the
	// number of components should be small (almost surely 4 or fewer
	// communities merge via cross edges).
	if cc := ComponentCount(g); cc > 8 {
		t.Errorf("unexpectedly fragmented: %d components", cc)
	}
}

func TestTwoCliquesBridged(t *testing.T) {
	for _, c := range []int{1, 2, 3} {
		g := TwoCliquesBridged(8, c, 5)
		if got := MinCut(g); got != int64(c) {
			t.Errorf("bridges=%d: min cut = %d", c, got)
		}
	}
}

func TestWithDistinctWeights(t *testing.T) {
	g := WithDistinctWeights(GNM(50, 100, 2), 3)
	seen := make(map[int64]bool)
	for _, e := range g.Edges() {
		if e.W < 1 || e.W > 100 {
			t.Fatalf("weight %d out of range", e.W)
		}
		if seen[e.W] {
			t.Fatalf("duplicate weight %d", e.W)
		}
		seen[e.W] = true
	}
}

func TestWithUniformWeights(t *testing.T) {
	g := WithUniformWeights(Cycle(30), 5, 4)
	for _, e := range g.Edges() {
		if e.W < 1 || e.W > 5 {
			t.Fatalf("weight %d out of range", e.W)
		}
	}
}
