package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Generators for every workload family used by the experiments. All are
// deterministic in the provided seed. Unless stated otherwise, edges get
// weight 1; use WithDistinctWeights or WithUniformWeights to reweight.

// Path returns the path 0-1-2-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.Build()
}

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs n >= 3")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n, 1)
	}
	return b.Build()
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i, 1)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v, 1)
		}
	}
	return b.Build()
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return b.Build()
}

// GNP returns an Erdős–Rényi G(n, p) graph, sampled with geometric edge
// skipping so the cost is proportional to the number of edges generated.
func GNP(n int, p float64, seed int64) *Graph {
	b := NewBuilder(n)
	if p <= 0 {
		return b.Build()
	}
	if p >= 1 {
		return Complete(n)
	}
	rng := rand.New(rand.NewSource(seed))
	logq := math.Log(1 - p)
	// Enumerate pairs (u,v), u<v, in lexicographic order; skip ahead by
	// geometric gaps.
	u, v := 0, 0
	for u < n {
		gap := int(math.Floor(math.Log(1-rng.Float64()) / logq))
		v += gap + 1
		for v >= n && u < n {
			v = v - n + u + 2
			u++
		}
		if u < n && v > u {
			b.AddEdge(u, v, 1)
		}
	}
	return b.Build()
}

// GNM returns a uniformly random graph with exactly m distinct edges.
func GNM(n, m int, seed int64) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: GNM m=%d exceeds max %d", m, maxM))
	}
	b := NewBuilder(n)
	rng := rand.New(rand.NewSource(seed))
	if m > maxM/2 {
		// Dense: sample the complement instead.
		drop := make(map[uint64]bool, maxM-m)
		for len(drop) < maxM-m {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			drop[EdgeID(u, v, n)] = true
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !drop[EdgeID(u, v, n)] {
					b.AddEdge(u, v, 1)
				}
			}
		}
		return b.Build()
	}
	for b.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		b.TryAddEdge(u, v, 1)
	}
	return b.Build()
}

// RandomTree returns a uniformly-shuffled random recursive tree on n
// vertices: vertex i attaches to a uniform predecessor, then labels are
// permuted so vertex IDs carry no structural information.
func RandomTree(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		b.AddEdge(perm[i], perm[j], 1)
	}
	return b.Build()
}

// RandomConnected returns a connected graph with n vertices and m >= n-1
// edges: a random tree plus m-(n-1) extra uniform non-duplicate edges.
func RandomConnected(n, m int, seed int64) *Graph {
	if m < n-1 {
		panic("graph: RandomConnected needs m >= n-1")
	}
	if m > n*(n-1)/2 {
		panic("graph: RandomConnected m too large")
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		b.AddEdge(perm[i], perm[j], 1)
	}
	for b.M() < m {
		b.TryAddEdge(rng.Intn(n), rng.Intn(n), 1)
	}
	return b.Build()
}

// DisjointComponents returns a graph with exactly c connected components:
// vertices are split as evenly as possible into c groups (shuffled), and
// each group is a random connected subgraph with the given average extra
// edge fraction (0 => trees).
func DisjointComponents(n, c int, extraFrac float64, seed int64) *Graph {
	if c < 1 || c > n {
		panic("graph: DisjointComponents needs 1 <= c <= n")
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	b := NewBuilder(n)
	start := 0
	for i := 0; i < c; i++ {
		size := n / c
		if i < n%c {
			size++
		}
		group := perm[start : start+size]
		start += size
		for j := 1; j < len(group); j++ {
			b.AddEdge(group[j], group[rng.Intn(j)], 1)
		}
		extra := int(extraFrac * float64(size))
		for e := 0; e < extra; e++ {
			u, v := group[rng.Intn(size)], group[rng.Intn(size)]
			b.TryAddEdge(u, v, 1)
		}
	}
	return b.Build()
}

// Barbell returns two K_s cliques joined by a path with bridge vertices.
// pathLen is the number of intermediate path vertices (may be 0 for a
// single bridging edge). Total vertices: 2s + pathLen.
func Barbell(s, pathLen int) *Graph {
	if s < 1 {
		panic("graph: Barbell needs s >= 1")
	}
	n := 2*s + pathLen
	b := NewBuilder(n)
	for u := 0; u < s; u++ {
		for v := u + 1; v < s; v++ {
			b.AddEdge(u, v, 1)
		}
	}
	for u := s; u < 2*s; u++ {
		for v := u + 1; v < 2*s; v++ {
			b.AddEdge(u, v, 1)
		}
	}
	prev := 0 // connect from a vertex of clique 1 ...
	for i := 0; i < pathLen; i++ {
		b.AddEdge(prev, 2*s+i, 1)
		prev = 2*s + i
	}
	b.AddEdge(prev, s, 1) // ... to a vertex of clique 2
	return b.Build()
}

// Lollipop returns K_s with a path of pathLen vertices hanging off vertex 0.
func Lollipop(s, pathLen int) *Graph {
	b := NewBuilder(s + pathLen)
	for u := 0; u < s; u++ {
		for v := u + 1; v < s; v++ {
			b.AddEdge(u, v, 1)
		}
	}
	prev := 0
	for i := 0; i < pathLen; i++ {
		b.AddEdge(prev, s+i, 1)
		prev = s + i
	}
	return b.Build()
}

// RandomBipartite returns a random bipartite graph with sides of size a and
// b and edge probability p between the sides. Vertices 0..a-1 form one
// side, a..a+b-1 the other.
func RandomBipartite(a, b int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	bd := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			if rng.Float64() < p {
				bd.AddEdge(u, v, 1)
			}
		}
	}
	return bd.Build()
}

// PlantedPartition returns a stochastic block model graph: n vertices in c
// equal communities, edge probability pIn inside a community and pOut
// across. This is the "social network" workload of the examples.
func PlantedPartition(n, c int, pIn, pOut float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	comm := make([]int, n)
	for i := range comm {
		comm[i] = i % c
	}
	rng.Shuffle(n, func(i, j int) { comm[i], comm[j] = comm[j], comm[i] })
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if comm[u] == comm[v] {
				p = pIn
			}
			if rng.Float64() < p {
				b.AddEdge(u, v, 1)
			}
		}
	}
	return b.Build()
}

// TwoCliquesBridged returns two K_s cliques connected by exactly c bridge
// edges; its minimum cut is c (for c < s-1). Used by the min-cut tests.
func TwoCliquesBridged(s, c int, seed int64) *Graph {
	if c > s*s {
		panic("graph: too many bridges")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(2 * s)
	for u := 0; u < s; u++ {
		for v := u + 1; v < s; v++ {
			b.AddEdge(u, v, 1)
			b.AddEdge(s+u, s+v, 1)
		}
	}
	added := 0
	for added < c {
		if b.TryAddEdge(rng.Intn(s), s+rng.Intn(s), 1) {
			added++
		}
	}
	return b.Build()
}

// WithDistinctWeights returns a copy of g whose edge weights are a random
// permutation of 1..m. Distinct weights make the MST unique, so the
// distributed MST can be compared to the oracle by exact set equality.
func WithDistinctWeights(g *Graph, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := g.Edges()
	perm := rng.Perm(len(edges))
	b := NewBuilder(g.N())
	for i, e := range edges {
		b.AddEdge(e.U, e.V, int64(perm[i]+1))
	}
	return b.Build()
}

// WithUniformWeights returns a copy of g with i.i.d. uniform weights in
// [1, maxW]. Ties are possible; the algorithms break them by edge ID.
func WithUniformWeights(g *Graph, maxW int64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V, 1+rng.Int63n(maxW))
	}
	return b.Build()
}
