package graph

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestGraphSourceStreamsCanonicalEdges(t *testing.T) {
	g := WithDistinctWeights(GNM(200, 600, 4), 5)
	got, err := Drain(g.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, g.Edges()) {
		t.Fatal("Graph.Source drifted from Edges()")
	}
	// Replays identically after Reset (Drain resets internally).
	src := g.Source()
	if _, err := Drain(src); err != nil {
		t.Fatal(err)
	}
	again, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, g.Edges()) {
		t.Fatal("Graph.Source replay drifted")
	}
}

func TestEdgeListSourceMatchesReadEdgeList(t *testing.T) {
	g := WithUniformWeights(GNM(80, 200, 9), 50, 9)
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	src, err := OpenEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.N() != g.N() || src.M() != g.M() {
		t.Fatalf("sizing pass: got n=%d m=%d, want n=%d m=%d", src.N(), src.M(), g.N(), g.M())
	}
	got, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, g.Edges()) {
		t.Fatal("EdgeListSource drifted from the materialized parse")
	}
}

func TestStreamGeneratorsAreDeterministic(t *testing.T) {
	for name, mk := range map[string]func() EdgeSource{
		"gnm":      func() EdgeSource { return StreamGNM(500, 1500, 11) },
		"rmat":     func() EdgeSource { return StreamRMAT(500, 1500, 11) },
		"powerlaw": func() EdgeSource { return StreamPowerLaw(500, 1500, 2.5, 11) },
	} {
		a, err := Drain(mk())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a) != 1500 {
			t.Fatalf("%s: got %d edges, want 1500", name, len(a))
		}
		src := mk()
		if _, err := Drain(src); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Drain(src) // Reset replay
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Reset replay drifted", name)
		}
		seen := make(map[uint64]bool, len(a))
		for _, e := range a {
			if e.U >= e.V || e.U < 0 || e.V >= 500 {
				t.Fatalf("%s: invalid edge %+v", name, e)
			}
			id := EdgeID(e.U, e.V, 500)
			if seen[id] {
				t.Fatalf("%s: duplicate edge %+v", name, e)
			}
			seen[id] = true
		}
	}
}

func TestComponentsFromSourceMatchesOracle(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		g := DisjointComponents(200, 1+trial, 0.1, int64(trial))
		_, want := Components(g)
		got, err := ComponentsFromSource(g.Source())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: got %d components, want %d", trial, got, want)
		}
	}
}

func TestSliceSourceEOF(t *testing.T) {
	src := NewSliceSource(3, []Edge{{U: 0, V: 1, W: 1}})
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}
