package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatal("initial count")
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("unions should merge")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeated union should not merge")
	}
	if uf.Count() != 3 {
		t.Fatalf("count = %d", uf.Count())
	}
	uf.Union(1, 3)
	if uf.Find(0) != uf.Find(2) {
		t.Error("0 and 2 should be joined")
	}
	if uf.Find(4) == uf.Find(0) {
		t.Error("4 should be separate")
	}
}

func TestComponentsKnown(t *testing.T) {
	g := DisjointComponents(60, 6, 0.3, 1)
	labels, count := Components(g)
	if count != 6 {
		t.Fatalf("count = %d", count)
	}
	// Labels must be consistent with edges.
	for _, e := range g.Edges() {
		if labels[e.U] != labels[e.V] {
			t.Fatalf("edge %v crosses labels", e)
		}
	}
	// Canonical: label is the min vertex of the component.
	for v, l := range labels {
		if l > v {
			t.Fatalf("label %d > vertex %d", l, v)
		}
	}
}

func TestSameLabeling(t *testing.T) {
	if !SameLabeling([]int{0, 0, 2, 2}, []int{7, 7, 9, 9}) {
		t.Error("equivalent labelings should match")
	}
	if SameLabeling([]int{0, 0, 2, 2}, []int{7, 7, 7, 9}) {
		t.Error("coarser labeling should not match")
	}
	if SameLabeling([]int{0, 0}, []int{1, 2}) {
		t.Error("finer labeling should not match")
	}
	if SameLabeling([]int{0}, []int{0, 0}) {
		t.Error("length mismatch should not match")
	}
}

// bruteForceMST computes the MST weight by trying all spanning trees on
// tiny graphs via recursive edge selection (exponential; n <= 8).
func bruteForceMinCut(g *Graph) int64 {
	n := g.N()
	best := int64(1) << 62
	edges := g.Edges()
	for mask := 1; mask < (1 << (n - 1)); mask++ {
		// Side A = {vertices v with bit v set} ∪ {n-1 fixed to side B}.
		var cut int64
		for _, e := range edges {
			inA := func(v int) bool { return v < n-1 && mask&(1<<v) != 0 }
			if inA(e.U) != inA(e.V) {
				cut += e.W
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

func TestMinCutAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(4)
		m := n - 1 + rng.Intn(n)
		g := RandomConnected(n, m, rng.Int63())
		g = WithUniformWeights(g, 6, rng.Int63())
		got := MinCut(g)
		want := bruteForceMinCut(g)
		if got != want {
			t.Fatalf("trial %d: MinCut=%d brute=%d (n=%d m=%d)", trial, got, want, n, m)
		}
	}
}

func TestMinCutKnownGraphs(t *testing.T) {
	if got := MinCut(Cycle(10)); got != 2 {
		t.Errorf("cycle min cut = %d, want 2", got)
	}
	if got := MinCut(Complete(6)); got != 5 {
		t.Errorf("K6 min cut = %d, want 5", got)
	}
	if got := MinCut(Path(5)); got != 1 {
		t.Errorf("path min cut = %d, want 1", got)
	}
}

func TestKruskalAgainstPrimStyleCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(30)
		m := n - 1 + rng.Intn(3*n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := WithDistinctWeights(RandomConnected(n, m, rng.Int63()), rng.Int63())
		forest, total := KruskalMST(g)
		if len(forest) != n-1 {
			t.Fatalf("forest size %d", len(forest))
		}
		// The forest must be spanning and acyclic.
		sub := FromEdges(n, forest)
		if !IsConnected(sub) || HasCycle(sub) {
			t.Fatal("not a spanning tree")
		}
		// Cut property spot check: for each tree edge, no lighter edge
		// crosses the cut induced by removing it.
		for _, te := range forest {
			cut := sub.RemoveEdges([]Edge{te})
			labels, _ := Components(cut)
			for _, e := range g.Edges() {
				if labels[e.U] != labels[e.V] && EdgeLess(e, te, n) {
					t.Fatalf("edge %v lighter than tree edge %v across cut", e, te)
				}
			}
		}
		_ = total
	}
}

func TestKruskalForestOnDisconnected(t *testing.T) {
	g := DisjointComponents(40, 4, 0.4, 2)
	forest, _ := KruskalMST(g)
	if len(forest) != 40-4 {
		t.Errorf("forest size = %d, want 36", len(forest))
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := Path(6)
	d := BFS(g, 0)
	for i := 0; i < 6; i++ {
		if d[i] != i {
			t.Fatalf("dist[%d] = %d", i, d[i])
		}
	}
	if Diameter(Cycle(10)) != 5 {
		t.Error("cycle diameter")
	}
	// Unreachable marked -1.
	g2 := DisjointComponents(10, 2, 0, 3)
	dist := BFS(g2, 0)
	unreachable := 0
	for _, x := range dist {
		if x == -1 {
			unreachable++
		}
	}
	if unreachable == 0 {
		t.Error("expected unreachable vertices across components")
	}
}

func TestHasCycle(t *testing.T) {
	if HasCycle(RandomTree(50, 1)) {
		t.Error("tree has no cycle")
	}
	if !HasCycle(Cycle(5)) {
		t.Error("cycle has a cycle")
	}
	forest := DisjointComponents(30, 3, 0, 2)
	if HasCycle(forest) {
		t.Error("forest of trees has no cycle")
	}
}

func TestEdgeLessTotalOrder(t *testing.T) {
	edges := []Edge{{0, 1, 5}, {0, 2, 5}, {1, 2, 3}}
	n := 3
	sort.Slice(edges, func(i, j int) bool { return EdgeLess(edges[i], edges[j], n) })
	if edges[0].W != 3 {
		t.Error("weight order first")
	}
	if edges[1].V != 1 || edges[2].V != 2 {
		t.Error("ties broken by edge id")
	}
}
