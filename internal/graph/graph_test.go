package graph

import (
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 5)
	b.AddEdge(2, 1, 7)
	g := b.Build()
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(1, 2) {
		t.Error("missing edges")
	}
	if g.HasEdge(0, 2) || g.HasEdge(3, 0) {
		t.Error("phantom edges")
	}
	if w, ok := g.Weight(1, 2); !ok || w != 7 {
		t.Errorf("weight = %d,%v", w, ok)
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Error("bad degrees")
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("self-loop", func() { NewBuilder(3).AddEdge(1, 1, 1) })
	expectPanic("range", func() { NewBuilder(3).AddEdge(0, 3, 1) })
	expectPanic("dup", func() {
		b := NewBuilder(3)
		b.AddEdge(0, 1, 1)
		b.AddEdge(1, 0, 1)
	})
}

func TestTryAddEdge(t *testing.T) {
	b := NewBuilder(3)
	if !b.TryAddEdge(0, 1, 1) {
		t.Error("first add should succeed")
	}
	if b.TryAddEdge(1, 0, 1) {
		t.Error("duplicate should fail")
	}
	if b.TryAddEdge(2, 2, 1) {
		t.Error("self-loop should fail")
	}
	if b.TryAddEdge(0, 5, 1) {
		t.Error("out of range should fail")
	}
	if b.M() != 1 {
		t.Errorf("m = %d", b.M())
	}
}

func TestEdgeIDRoundTrip(t *testing.T) {
	f := func(a, b uint16, nn uint16) bool {
		n := int(nn)%1000 + 2
		u, v := int(a)%n, int(b)%n
		if u == v {
			return true
		}
		id := EdgeID(u, v, n)
		gu, gv := DecodeEdgeID(id, n)
		if u > v {
			u, v = v, u
		}
		return gu == u && gv == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEdgesSortedCanonical(t *testing.T) {
	g := GNM(50, 200, 7)
	edges := g.Edges()
	if len(edges) != 200 {
		t.Fatalf("m = %d", len(edges))
	}
	for i, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge %v not canonical", e)
		}
		if i > 0 {
			p := edges[i-1]
			if p.U > e.U || (p.U == e.U && p.V >= e.V) {
				t.Fatalf("edges not sorted at %d", i)
			}
		}
	}
}

func TestDegreeSum(t *testing.T) {
	g := GNP(200, 0.05, 3)
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.M() {
		t.Errorf("degree sum %d != 2m %d", sum, 2*g.M())
	}
}

func TestFilterAndRemove(t *testing.T) {
	g := Complete(6)
	h := g.Filter(func(e Edge) bool { return e.U == 0 })
	if h.M() != 5 {
		t.Errorf("filtered m = %d, want 5", h.M())
	}
	r := g.RemoveEdges([]Edge{{U: 0, V: 1}, {U: 5, V: 4}})
	if r.M() != g.M()-2 {
		t.Errorf("removed m = %d", r.M())
	}
	if r.HasEdge(0, 1) || r.HasEdge(4, 5) {
		t.Error("edges not removed")
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 2, V: 0, W: 9}, {U: 1, V: 3, W: 4}})
	if g.M() != 2 || !g.HasEdge(0, 2) || !g.HasEdge(1, 3) {
		t.Error("FromEdges broken")
	}
	if w, _ := g.Weight(0, 2); w != 9 {
		t.Error("weight lost")
	}
}

func TestDoubleCoverProperties(t *testing.T) {
	cases := []struct {
		name      string
		g         *Graph
		bipartite bool
	}{
		{"path", Path(10), true},
		{"even cycle", Cycle(8), true},
		{"odd cycle", Cycle(9), false},
		{"complete", Complete(5), false},
		{"star", Star(12), true},
		{"grid", Grid(4, 5), true},
	}
	for _, tc := range cases {
		d := tc.g.DoubleCover()
		if d.N() != 2*tc.g.N() || d.M() != 2*tc.g.M() {
			t.Errorf("%s: double cover size wrong", tc.name)
		}
		ccG := ComponentCount(tc.g)
		ccD := ComponentCount(d)
		gotBip := ccD == 2*ccG
		if gotBip != tc.bipartite {
			t.Errorf("%s: double-cover bipartite test = %v, want %v (ccG=%d ccD=%d)",
				tc.name, gotBip, tc.bipartite, ccG, ccD)
		}
		if IsBipartite(tc.g) != tc.bipartite {
			t.Errorf("%s: IsBipartite = %v, want %v", tc.name, IsBipartite(tc.g), tc.bipartite)
		}
	}
}
