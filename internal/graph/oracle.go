package graph

import "sort"

// Sequential oracle algorithms. The distributed algorithms are validated
// against these on every test family.

// UnionFind is a weighted quick-union structure with path compression.
type UnionFind struct {
	parent []int
	size   []int
	count  int
}

// NewUnionFind returns a union-find over n singleton elements.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), size: make([]int, n), count: n}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y, reporting whether a merge happened.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.size[rx] < uf.size[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	uf.size[rx] += uf.size[ry]
	uf.count--
	return true
}

// Count returns the number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Components returns, for each vertex, the smallest vertex ID in its
// connected component (a canonical labeling), plus the component count.
func Components(g *Graph) (labels []int, count int) {
	uf := NewUnionFind(g.N())
	for u := 0; u < g.N(); u++ {
		for _, h := range g.adj[u] {
			if u < h.To {
				uf.Union(u, h.To)
			}
		}
	}
	min := make([]int, g.N())
	for i := range min {
		min[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		r := uf.Find(v)
		if min[r] == -1 || v < min[r] {
			min[r] = v
		}
	}
	labels = make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		labels[v] = min[uf.Find(v)]
	}
	return labels, uf.Count()
}

// ComponentCount returns the number of connected components of g.
func ComponentCount(g *Graph) int {
	_, c := Components(g)
	return c
}

// IsConnected reports whether g is connected (true for n <= 1).
func IsConnected(g *Graph) bool {
	return g.N() <= 1 || ComponentCount(g) == 1
}

// SameComponent reports whether s and t are in the same component.
func SameComponent(g *Graph, s, t int) bool {
	labels, _ := Components(g)
	return labels[s] == labels[t]
}

// SameLabeling reports whether two labelings induce the same partition of
// 0..n-1 into groups (labels themselves may differ).
func SameLabeling(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int]int)
	rev := make(map[int]int)
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := rev[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// EdgeLess is the total order on edges used by all MST code: by weight,
// then by canonical edge ID. It makes every MST unique, so distributed
// results can be compared by set equality.
func EdgeLess(a, b Edge, n int) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	return EdgeID(a.U, a.V, n) < EdgeID(b.U, b.V, n)
}

// KruskalMST returns the minimum spanning forest of g under the EdgeLess
// order, together with its total weight.
func KruskalMST(g *Graph) (forest []Edge, total int64) {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool { return EdgeLess(edges[i], edges[j], g.N()) })
	uf := NewUnionFind(g.N())
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			forest = append(forest, e)
			total += e.W
		}
	}
	return forest, total
}

// BFS returns hop distances from src (-1 for unreachable vertices).
func BFS(g *Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[u] {
			if dist[h.To] == -1 {
				dist[h.To] = dist[u] + 1
				queue = append(queue, h.To)
			}
		}
	}
	return dist
}

// Diameter returns the largest finite BFS distance over all sources
// (0 for edgeless graphs). Exact and O(n·m): intended for test-scale
// graphs only.
func Diameter(g *Graph) int {
	d := 0
	for s := 0; s < g.N(); s++ {
		for _, x := range BFS(g, s) {
			if x > d {
				d = x
			}
		}
	}
	return d
}

// IsBipartite reports whether g is 2-colorable (BFS coloring).
func IsBipartite(g *Graph) bool {
	color := make([]int8, g.N()) // 0 = unseen, 1/2 = colors
	for s := 0; s < g.N(); s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, h := range g.adj[u] {
				if color[h.To] == 0 {
					color[h.To] = 3 - color[u]
					queue = append(queue, h.To)
				} else if color[h.To] == color[u] {
					return false
				}
			}
		}
	}
	return true
}

// HasCycle reports whether g contains any cycle: m > n - #components.
func HasCycle(g *Graph) bool {
	return g.M() > g.N()-ComponentCount(g)
}

// MinCut returns the weight of a global minimum edge cut of g using the
// Stoer–Wagner algorithm (O(n^3)). g must be connected and have n >= 2.
// Edge weights are interpreted as capacities; for unweighted cuts pass a
// graph with unit weights.
func MinCut(g *Graph) int64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	// Dense capacity matrix; merged vertices are marked inactive.
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for u := 0; u < n; u++ {
		for _, h := range g.adj[u] {
			if u < h.To {
				w[u][h.To] += h.W
				w[h.To][u] += h.W
			}
		}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	best := int64(1) << 62
	for len(active) > 1 {
		// Maximum adjacency (minimum cut phase) order.
		inA := make(map[int]bool, len(active))
		weights := make(map[int]int64, len(active))
		order := make([]int, 0, len(active))
		for len(order) < len(active) {
			// Pick the most tightly connected remaining vertex.
			sel, selW := -1, int64(-1)
			for _, v := range active {
				if inA[v] {
					continue
				}
				if weights[v] > selW {
					sel, selW = v, weights[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range active {
				if !inA[v] {
					weights[v] += w[sel][v]
				}
			}
		}
		t := order[len(order)-1]
		cutOfPhase := weights[t]
		if cutOfPhase < best {
			best = cutOfPhase
		}
		// Merge t into s (the second-to-last vertex).
		s := order[len(order)-2]
		for _, v := range active {
			if v != s && v != t {
				w[s][v] += w[t][v]
				w[v][s] = w[s][v]
			}
		}
		// Remove t from the active set.
		for i, v := range active {
			if v == t {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}
	return best
}
