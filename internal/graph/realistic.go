package graph

import (
	"math"
	"math/rand"
	"sort"
)

// Realistic workload generators: the paper motivates the k-machine model
// with "massive graphs such as the Web graph, social networks, biological
// networks" (§1). These families have heavy-tailed degrees, which stress
// exactly the congestion the proxy machinery is designed to absorb (a
// hub's home machine would otherwise be a hotspot).

// PruferTree returns a uniformly random labeled tree on n vertices,
// decoded from a random Prüfer sequence (exactly uniform over all n^(n-2)
// labeled trees, unlike the recursive-attachment RandomTree).
func PruferTree(n int, seed int64) *Graph {
	if n <= 1 {
		return NewBuilder(n).Build()
	}
	if n == 2 {
		b := NewBuilder(2)
		b.AddEdge(0, 1, 1)
		return b.Build()
	}
	rng := rand.New(rand.NewSource(seed))
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range seq {
		degree[v]++
	}
	b := NewBuilder(n)
	// Min-leaf decoding with a simple ordered scan pointer.
	leafPtr := 0
	leaf := -1
	used := make([]bool, n)
	nextLeaf := func() int {
		for ; leafPtr < n; leafPtr++ {
			if degree[leafPtr] == 1 && !used[leafPtr] {
				l := leafPtr
				leafPtr++
				return l
			}
		}
		return -1
	}
	leaf = nextLeaf()
	for _, v := range seq {
		b.AddEdge(leaf, v, 1)
		used[leaf] = true
		degree[v]--
		if degree[v] == 1 && v < leafPtr {
			leaf = v // v became the smallest leaf
		} else {
			leaf = nextLeaf()
		}
	}
	// Connect the last two remaining vertices.
	last := -1
	for v := 0; v < n; v++ {
		if !used[v] && v != leaf {
			last = v
		}
	}
	b.AddEdge(leaf, last, 1)
	return b.Build()
}

// ChungLu returns a Chung–Lu random graph with an (approximately)
// power-law expected degree sequence with exponent gamma > 2 and average
// degree avgDeg: edge {u,v} appears with probability proportional to
// w_u·w_v. Heavy-tailed hubs make it the "web graph / social network"
// workload of the paper's introduction.
func ChungLu(n int, gamma, avgDeg float64, seed int64) *Graph {
	if gamma <= 2 {
		panic("graph: ChungLu needs gamma > 2")
	}
	rng := rand.New(rand.NewSource(seed))
	// Power-law weights w_i = c * (i+1)^(-1/(gamma-1)), scaled to the
	// requested average degree.
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -1/(gamma-1))
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	// Shuffle weights so vertex IDs carry no degree information.
	rng.Shuffle(n, func(i, j int) { w[i], w[j] = w[j], w[i] })

	b := NewBuilder(n)
	// Miller–Hagberg sampling: process vertices in decreasing weight
	// order; within a row the edge probabilities are non-increasing, so a
	// geometric skip at the current bound p plus rejection q/p yields an
	// exact sample in expected O(n + m) time.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool { return w[idx[a]] > w[idx[c]] })
	S := sum * scale // sum of scaled weights
	for a := 0; a < n-1; a++ {
		u := idx[a]
		c := a + 1
		p := w[u] * w[idx[c]] / S
		if p > 1 {
			p = 1
		}
		for c < n && p > 0 {
			if p < 1 {
				c += int(math.Floor(math.Log(1-rng.Float64()) / math.Log(1-p)))
			}
			if c >= n {
				break
			}
			v := idx[c]
			q := w[u] * w[v] / S
			if q > 1 {
				q = 1
			}
			if rng.Float64() < q/p {
				b.TryAddEdge(u, v, 1)
			}
			p = q
			c++
		}
	}
	return b.Build()
}

// DegreeHistogram returns the sorted degree sequence of g (descending).
func DegreeHistogram(g *Graph) []int {
	degs := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		degs[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	return degs
}

// MaxDegree returns the maximum degree of g.
func MaxDegree(g *Graph) int {
	m := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}
