package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// EdgeSource is a resettable stream of the edges of an n-vertex graph —
// the input contract of the shard-direct load path. A source is consumed
// with repeated Next calls until io.EOF; Reset rewinds it for another
// pass (loaders make a degree-counting pass before the fill pass, so
// adjacency shards are allocated exactly once at their final size).
//
// Sources need not deliver edges in any particular order and need not
// deduplicate; consumers canonicalize endpoints and reject self-loops,
// out-of-range endpoints, and duplicate edges. The binary store
// (internal/store), the text edge-list scanner, in-memory graphs, and
// the streaming generators all implement EdgeSource.
type EdgeSource interface {
	// N returns the number of vertices of the streamed graph.
	N() int
	// Next returns the next edge, or io.EOF after the last one. Any
	// other error aborts the stream.
	Next() (Edge, error)
	// Reset rewinds the source to the beginning. A Reset source must
	// replay exactly the same edge sequence.
	Reset() error
}

// SliceSource streams a fixed edge slice.
type SliceSource struct {
	n     int
	edges []Edge
	pos   int
}

// NewSliceSource returns an EdgeSource over a fixed edge slice.
func NewSliceSource(n int, edges []Edge) *SliceSource {
	return &SliceSource{n: n, edges: edges}
}

// N returns the vertex count.
func (s *SliceSource) N() int { return s.n }

// Next returns the next edge or io.EOF.
func (s *SliceSource) Next() (Edge, error) {
	if s.pos >= len(s.edges) {
		return Edge{}, io.EOF
	}
	e := s.edges[s.pos]
	s.pos++
	return e, nil
}

// Reset rewinds the source.
func (s *SliceSource) Reset() error { s.pos = 0; return nil }

// graphSource streams a materialized Graph in canonical row order
// (ascending U, then ascending V), without building an edge slice.
type graphSource struct {
	g    *Graph
	u, i int
}

// Source returns an EdgeSource streaming g's edges in canonical row
// order. It allocates nothing per edge; the shard-direct loaders use it
// to treat an in-memory graph like any other stream.
func (g *Graph) Source() EdgeSource { return &graphSource{g: g} }

func (s *graphSource) N() int { return s.g.N() }

func (s *graphSource) Next() (Edge, error) {
	for s.u < s.g.n {
		adj := s.g.adj[s.u]
		for s.i < len(adj) {
			h := adj[s.i]
			s.i++
			if s.u < h.To {
				return Edge{U: s.u, V: h.To, W: h.W}, nil
			}
		}
		s.u++
		s.i = 0
	}
	return Edge{}, io.EOF
}

func (s *graphSource) Reset() error { s.u, s.i = 0, 0; return nil }

// EdgeListSource streams a whitespace-separated text edge list (the
// ReadEdgeList format) without materializing a graph. The constructor
// makes one scan to determine the vertex count (maxID+1) and edge count;
// streaming passes then re-read the file from the start.
type EdgeListSource struct {
	path string
	n    int
	m    int
	f    *os.File
	sc   *bufio.Scanner
	line int
}

// OpenEdgeList opens a text edge-list file as an EdgeSource. Close it
// when done.
func OpenEdgeList(path string) (*EdgeListSource, error) {
	s := &EdgeListSource{path: path}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s.f = f
	s.startScan()
	// Sizing pass: vertex and edge counts.
	maxID := -1
	for {
		e, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		if e.V > maxID {
			maxID = e.V
		}
		if e.U > maxID {
			maxID = e.U
		}
		s.m++
	}
	s.n = maxID + 1
	if err := s.Reset(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *EdgeListSource) startScan() {
	sc := bufio.NewScanner(s.f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	s.sc = sc
	s.line = 0
}

// N returns the vertex count (maxID+1 over the whole file).
func (s *EdgeListSource) N() int { return s.n }

// M returns the number of edge lines in the file.
func (s *EdgeListSource) M() int { return s.m }

// Next returns the next edge line. Missing weights default to 1.
func (s *EdgeListSource) Next() (Edge, error) {
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return Edge{}, fmt.Errorf("graph: %s line %d: want 'u v [w]', got %q", s.path, s.line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return Edge{}, fmt.Errorf("graph: %s line %d: bad vertex %q", s.path, s.line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return Edge{}, fmt.Errorf("graph: %s line %d: bad vertex %q", s.path, s.line, fields[1])
		}
		if u < 0 || v < 0 {
			return Edge{}, fmt.Errorf("graph: %s line %d: negative vertex ID", s.path, s.line)
		}
		w := int64(1)
		if len(fields) == 3 {
			w, err = strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return Edge{}, fmt.Errorf("graph: %s line %d: bad weight %q", s.path, s.line, fields[2])
			}
		}
		return Edge{U: u, V: v, W: w}, nil
	}
	if err := s.sc.Err(); err != nil {
		return Edge{}, err
	}
	return Edge{}, io.EOF
}

// Reset rewinds to the start of the file.
func (s *EdgeListSource) Reset() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.startScan()
	return nil
}

// Close releases the underlying file.
func (s *EdgeListSource) Close() error { return s.f.Close() }

// Drain collects a source into a canonical edge slice (Reset first, then
// read to EOF). Intended for tests and small inputs; the serving path
// never drains.
func Drain(src EdgeSource) ([]Edge, error) {
	if err := src.Reset(); err != nil {
		return nil, err
	}
	var out []Edge
	for {
		e, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e.Canon())
	}
}

// ComponentsFromSource computes the connected-component count of a
// streamed graph with a union-find over one pass — the O(n)-memory
// oracle for store-backed runs, where materializing the graph is exactly
// what we are avoiding. Invalid edges (self-loops, out of range) are
// skipped, matching the distributed loader's rejection behavior.
func ComponentsFromSource(src EdgeSource) (int, error) {
	if err := src.Reset(); err != nil {
		return 0, err
	}
	n := src.N()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	comps := n
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		if e.U == e.V || e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
			continue
		}
		ru, rv := find(int32(e.U)), find(int32(e.V))
		if ru != rv {
			parent[ru] = rv
			comps--
		}
	}
	return comps, nil
}
