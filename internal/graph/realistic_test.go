package graph

import (
	"math"
	"testing"
)

func TestPruferTreeIsUniformTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100, 1000} {
		g := PruferTree(n, 7)
		wantM := n - 1
		if n <= 1 {
			wantM = 0
		}
		if g.M() != wantM {
			t.Fatalf("n=%d: m=%d, want %d", n, g.M(), wantM)
		}
		if n > 0 && !IsConnected(g) {
			t.Fatalf("n=%d: not connected", n)
		}
		if HasCycle(g) {
			t.Fatalf("n=%d: has cycle", n)
		}
	}
}

func TestPruferTreeDistribution(t *testing.T) {
	// On 3 vertices there are exactly 3 labeled trees (each a path with a
	// distinct middle vertex); each should appear ~1/3 of the time.
	counts := map[int]int{}
	const trials = 3000
	for seed := int64(0); seed < trials; seed++ {
		g := PruferTree(3, seed)
		for v := 0; v < 3; v++ {
			if g.Degree(v) == 2 {
				counts[v]++
			}
		}
	}
	for v := 0; v < 3; v++ {
		frac := float64(counts[v]) / trials
		if math.Abs(frac-1.0/3) > 0.05 {
			t.Errorf("middle vertex %d frequency %.3f, want ~0.333", v, frac)
		}
	}
}

func TestPruferTreeDeterministic(t *testing.T) {
	a := PruferTree(50, 3)
	b := PruferTree(50, 3)
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestChungLuDegreeAndTail(t *testing.T) {
	n := 3000
	g := ChungLu(n, 2.5, 8, 11)
	avg := 2 * float64(g.M()) / float64(n)
	if avg < 4 || avg > 14 {
		t.Errorf("average degree %.1f far from requested 8", avg)
	}
	// Heavy tail: the max degree should far exceed the average (unlike
	// GNP where it concentrates), and the degree sequence should decay.
	degs := DegreeHistogram(g)
	if float64(degs[0]) < 4*avg {
		t.Errorf("max degree %d shows no heavy tail (avg %.1f)", degs[0], avg)
	}
	if degs[0] != MaxDegree(g) {
		t.Error("histogram head != MaxDegree")
	}
	// Compare with GNP at matched density.
	gnp := GNP(n, avg/float64(n-1), 11)
	if MaxDegree(g) <= 2*MaxDegree(gnp) {
		t.Errorf("ChungLu max degree %d should dwarf GNP's %d", MaxDegree(g), MaxDegree(gnp))
	}
}

func TestChungLuValidSimpleGraph(t *testing.T) {
	g := ChungLu(500, 2.8, 6, 3)
	for _, e := range g.Edges() {
		if e.U == e.V || e.U < 0 || e.V >= 500 {
			t.Fatalf("invalid edge %v", e)
		}
	}
	// Determinism.
	h := ChungLu(500, 2.8, 6, 3)
	if h.M() != g.M() {
		t.Error("not deterministic")
	}
}

func TestChungLuPanicsOnBadGamma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for gamma <= 2")
		}
	}()
	ChungLu(10, 2.0, 3, 1)
}

func TestDegreeHistogramSorted(t *testing.T) {
	g := Star(10)
	degs := DegreeHistogram(g)
	if degs[0] != 9 {
		t.Errorf("head = %d", degs[0])
	}
	for i := 1; i < len(degs); i++ {
		if degs[i] > degs[i-1] {
			t.Fatal("not descending")
		}
	}
}
