package baseline

import (
	"testing"

	"kmgraph/internal/graph"
)

func toInt(labels []uint64) []int {
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = int(l)
	}
	return out
}

func check(t *testing.T, name string, g *graph.Graph, res *Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	want, wantCount := graph.Components(g)
	if res.Components != wantCount {
		t.Errorf("%s: components = %d, want %d", name, res.Components, wantCount)
	}
	if !graph.SameLabeling(toInt(res.Labels), want) {
		t.Errorf("%s: labeling disagrees with oracle", name)
	}
	if res.Metrics.DroppedMessages != 0 {
		t.Errorf("%s: dropped %d", name, res.Metrics.DroppedMessages)
	}
}

func TestFloodingFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(120)},
		{"components", graph.DisjointComponents(150, 5, 0.3, 1)},
		{"gnm", graph.GNM(150, 400, 2)},
		{"star", graph.Star(100)},
		{"edgeless", graph.NewBuilder(40).Build()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Flooding(tc.g, Config{K: 4, Seed: 3})
			check(t, tc.name, tc.g, res, err)
		})
	}
}

func TestRefereeFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"components", graph.DisjointComponents(150, 7, 0.3, 4)},
		{"gnm", graph.GNM(150, 500, 5)},
		{"edgeless", graph.NewBuilder(40).Build()},
		{"complete", graph.Complete(50)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Referee(tc.g, Config{K: 5, Seed: 6})
			check(t, tc.name, tc.g, res, err)
		})
	}
}

func TestFloodingDiameterSensitivity(t *testing.T) {
	// Flooding pays Θ(D): a path (D = n-1) should need far more rounds
	// than a star (D = 2) at equal size.
	path, err := Flooding(graph.Path(200), Config{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	star, err := Flooding(graph.Star(200), Config{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if path.Metrics.Rounds < 4*star.Metrics.Rounds {
		t.Errorf("path rounds %d should dwarf star rounds %d",
			path.Metrics.Rounds, star.Metrics.Rounds)
	}
}

func TestRefereeCongestion(t *testing.T) {
	// The referee's links are the bottleneck: rounds grow with m.
	small, err := Referee(graph.GNM(100, 300, 8), Config{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Referee(graph.GNM(100, 3000, 8), Config{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if big.Metrics.Rounds <= small.Metrics.Rounds {
		t.Errorf("rounds should grow with m: %d vs %d", small.Metrics.Rounds, big.Metrics.Rounds)
	}
}

func TestBaselinesAcrossK(t *testing.T) {
	g := graph.GNM(120, 360, 10)
	for _, k := range []int{2, 3, 8} {
		res, err := Flooding(g, Config{K: k, Seed: 11})
		check(t, "flooding", g, res, err)
		res, err = Referee(g, Config{K: k, Seed: 11})
		check(t, "referee", g, res, err)
	}
}
