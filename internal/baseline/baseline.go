// Package baseline implements the comparison algorithms the paper discusses
// when motivating the Õ(n/k²) bound (§1.2 and the §2 warm-up):
//
//   - Flooding: every vertex repeatedly floods the lowest label it has seen
//     to its neighbors. The paper notes this takes Θ(n/k + D) rounds in the
//     k-machine model (via the Conversion Theorem), where D is the graph
//     diameter — the per-vertex-home congestion is the n/k term.
//   - Referee: collect the entire graph at one machine and solve locally.
//     The referee's k-1 links bound the rate, giving Ω(m/k) rounds.
//
// A third baseline — GHS-style Boruvka that checks edge status explicitly
// instead of sketching — is core.Config.EdgeCheckSelection, since it shares
// the merge machinery with the main algorithm.
package baseline

import (
	"fmt"
	"sort"

	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/proxy"
	"kmgraph/internal/wire"
)

// Config parameterizes a baseline run.
type Config struct {
	K             int
	BandwidthBits int // 0 selects kmachine.Bandwidth(n)
	Seed          int64
	MaxRounds     int
}

// Result is a baseline connectivity outcome.
type Result struct {
	Labels     []uint64
	Components int
	Metrics    kmachine.Metrics
}

func (c Config) engine(n int) (*kmachine.Cluster, *kmachine.Config, error) {
	bw := c.BandwidthBits
	if bw == 0 {
		bw = kmachine.Bandwidth(n)
	}
	kc := kmachine.Config{
		K:                   c.K,
		BandwidthBits:       bw,
		MessageOverheadBits: 64,
		Seed:                c.Seed,
		MaxRounds:           c.MaxRounds,
	}
	cl, err := kmachine.New(kc)
	return cl, &kc, err
}

func assemble(n int, res *kmachine.Result) (*Result, error) {
	out := &Result{Labels: make([]uint64, n), Metrics: res.Metrics}
	seen := make(map[uint64]bool)
	assigned := 0
	for i, o := range res.Outputs {
		mo, ok := o.(map[int]uint64)
		if !ok {
			return nil, fmt.Errorf("baseline: machine %d produced no output", i)
		}
		for v, l := range mo {
			out.Labels[v] = l
			seen[l] = true
			assigned++
		}
	}
	if assigned != n {
		return nil, fmt.Errorf("baseline: %d of %d vertices labeled", assigned, n)
	}
	out.Components = len(seen)
	return out, nil
}

// Flooding computes connected components by min-label flooding: each
// super-round, every vertex whose label improved sends the new label to
// all neighbors (batched per destination machine). Terminates when no
// label changes anywhere.
func Flooding(g *graph.Graph, cfg Config) (*Result, error) {
	cluster, _, err := cfg.engine(g.N())
	if err != nil {
		return nil, err
	}
	part := kmachine.NewRVP(g, cfg.K, uint64(cfg.Seed)^0x9e37)
	res, err := cluster.Run(func(ctx *kmachine.Ctx) error {
		view := part.View(ctx.ID())
		comm := proxy.NewComm(ctx)
		labels := make(map[int]uint64, len(view.Owned()))
		changed := make(map[int]bool, len(view.Owned()))
		for _, v := range view.Owned() {
			labels[v] = uint64(v)
			changed[v] = true
		}
		for {
			// Batch (neighbor, label) updates per destination machine.
			batches := make(map[int][]byte)
			vs := make([]int, 0, len(changed))
			for v := range changed {
				vs = append(vs, v)
			}
			sort.Ints(vs)
			for _, v := range vs {
				for _, h := range view.Adj(v) {
					dst := view.Home(h.To)
					b := batches[dst]
					b = wire.AppendUvarint(b, uint64(h.To))
					b = wire.AppendUvarint(b, labels[v])
					batches[dst] = b
				}
			}
			var out []proxy.Out
			for dst := 0; dst < ctx.K(); dst++ {
				if b, ok := batches[dst]; ok {
					out = append(out, proxy.Out{Dst: dst, Data: b})
				}
			}
			recv := comm.Exchange(out)
			changed = make(map[int]bool)
			for _, msg := range recv {
				r := wire.NewReader(msg.Data)
				for r.Len() > 0 {
					v := int(r.Uvarint())
					l := r.Uvarint()
					if r.Err() != nil {
						return fmt.Errorf("baseline: bad flood batch")
					}
					if l < labels[v] {
						labels[v] = l
						changed[v] = true
					}
				}
			}
			if comm.AllSum(uint64(len(changed))) == 0 {
				break
			}
		}
		ctx.SetOutput(labels)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return assemble(g.N(), res)
}

// Referee collects every edge at machine 0 (each edge sent once, by the
// home of its smaller endpoint), solves connectivity locally with
// union-find, and scatters each machine its own vertices' labels.
func Referee(g *graph.Graph, cfg Config) (*Result, error) {
	cluster, _, err := cfg.engine(g.N())
	if err != nil {
		return nil, err
	}
	part := kmachine.NewRVP(g, cfg.K, uint64(cfg.Seed)^0x9e37)
	res, err := cluster.Run(func(ctx *kmachine.Ctx) error {
		view := part.View(ctx.ID())
		comm := proxy.NewComm(ctx)

		// Ship local edges to the referee.
		var buf []byte
		for _, v := range view.Owned() {
			for _, h := range view.Adj(v) {
				if v < h.To {
					buf = wire.AppendUvarint(buf, uint64(v))
					buf = wire.AppendUvarint(buf, uint64(h.To))
				}
			}
		}
		blobs := comm.GatherTo(0, buf)

		// Referee solves and scatters per-machine label assignments.
		var out []proxy.Out
		if ctx.ID() == 0 {
			uf := graph.NewUnionFind(view.N())
			for _, b := range blobs {
				r := wire.NewReader(b)
				for r.Len() > 0 {
					u := int(r.Uvarint())
					v := int(r.Uvarint())
					if r.Err() != nil {
						return fmt.Errorf("baseline: bad referee batch")
					}
					uf.Union(u, v)
				}
			}
			// Canonical label: min vertex of each set.
			minOf := make(map[int]int)
			for v := 0; v < view.N(); v++ {
				r := uf.Find(v)
				if mv, ok := minOf[r]; !ok || v < mv {
					minOf[r] = v
				}
			}
			perDst := make([][]byte, ctx.K())
			for v := 0; v < view.N(); v++ {
				dst := view.Home(v)
				perDst[dst] = wire.AppendUvarint(perDst[dst], uint64(v))
				perDst[dst] = wire.AppendUvarint(perDst[dst], uint64(minOf[uf.Find(v)]))
			}
			for dst := 0; dst < ctx.K(); dst++ {
				if len(perDst[dst]) > 0 {
					out = append(out, proxy.Out{Dst: dst, Data: perDst[dst]})
				}
			}
		}
		recv := comm.Exchange(out)
		labels := make(map[int]uint64, len(view.Owned()))
		for _, msg := range recv {
			r := wire.NewReader(msg.Data)
			for r.Len() > 0 {
				v := int(r.Uvarint())
				l := r.Uvarint()
				if r.Err() != nil {
					return fmt.Errorf("baseline: bad label batch")
				}
				labels[v] = l
			}
		}
		// Machines with no vertices output an empty map.
		ctx.SetOutput(labels)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return assemble(g.N(), res)
}
