package telemetry_test

import (
	"context"
	"encoding/json"
	"testing"

	"kmgraph"
	"kmgraph/internal/telemetry"
)

// TestTraceRoundsTelescopeExactly is the tracer's core accounting
// guarantee: the rounds recorded on a job's phase spans plus its
// trailing sync span sum to precisely the job's metered Metrics.Rounds
// — no rounds invented, none lost.
func TestTraceRoundsTelescopeExactly(t *testing.T) {
	tracer := telemetry.NewJobTracer()
	g := kmgraph.GNM(600, 1800, 3)
	cl, err := kmgraph.NewCluster(g,
		kmgraph.WithK(4), kmgraph.WithSeed(7),
		kmgraph.WithObserver(tracer.Observer()),
		kmgraph.WithPhaseMetrics())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()
	res, err := cl.Connectivity(context.Background())
	if err != nil {
		t.Fatalf("Connectivity: %v", err)
	}

	tr := tracer.Snapshot()
	var jobSpan *telemetry.TraceEvent
	phaseRounds := 0
	phaseSpans := 0
	sawSync := false
	for i := range tr.TraceEvents {
		ev := &tr.TraceEvents[i]
		switch ev.Cat {
		case "job":
			if ev.Name == "connectivity #1" {
				jobSpan = ev
			}
		case "phase":
			// The load job emits no phase events, so every phase/sync
			// span here belongs to the connectivity job.
			phaseRounds += asInt(t, ev.Args["rounds"])
			if ev.Name == "sync" {
				sawSync = true
			} else {
				phaseSpans++
			}
		}
	}
	if jobSpan == nil {
		t.Fatalf("no connectivity job span in %d events", len(tr.TraceEvents))
	}
	if !sawSync {
		t.Error("no trailing sync span")
	}
	if phaseSpans != res.Phases {
		t.Errorf("phase spans: %d, want %d", phaseSpans, res.Phases)
	}
	if phaseRounds != res.Rounds {
		t.Errorf("span rounds sum %d != job rounds %d", phaseRounds, res.Rounds)
	}
	if got := asInt(t, jobSpan.Args["rounds"]); got != res.Rounds {
		t.Errorf("job span rounds %d != job rounds %d", got, res.Rounds)
	}
	// PhaseMetrics annotations made it onto the job span.
	if _, ok := jobSpan.Args["messages"]; !ok {
		t.Errorf("job span missing message delta: %v", jobSpan.Args)
	}
}

// TestTraceDocumentSchema validates the serialized form against the
// Chrome trace-event contract Perfetto relies on: a traceEvents array,
// every event with name/ph/pid/tid, complete events with non-negative
// ts and dur.
func TestTraceDocumentSchema(t *testing.T) {
	tracer := telemetry.NewJobTracer()
	cl, err := kmgraph.NewCluster(kmgraph.GNM(200, 600, 1),
		kmgraph.WithK(4), kmgraph.WithSeed(1),
		kmgraph.WithObserver(tracer.Observer()),
		kmgraph.WithPhaseMetrics())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Connectivity(context.Background()); err != nil {
		t.Fatalf("Connectivity: %v", err)
	}

	data, err := json.Marshal(tracer.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit: %q", doc.DisplayUnit)
	}
	if len(doc.TraceEvents) < 3 { // 2 metadata + at least the load span
		t.Fatalf("too few events: %d", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("event missing %q: %v", field, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			ts, _ := ev["ts"].(float64)
			if ts < 0 {
				t.Errorf("negative ts: %v", ev)
			}
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				t.Errorf("negative dur: %v", ev)
			}
		case "M":
		default:
			t.Errorf("unexpected phase type %q: %v", ph, ev)
		}
	}
}

// TestTraceTrimKeepsMetadataAndRecentSpans bounds the buffer the way
// the serving layer uses it.
func TestTraceTrimKeepsMetadataAndRecentSpans(t *testing.T) {
	tracer := telemetry.NewJobTracer()
	tracer.SetMaxEvents(8)
	cl, err := kmgraph.NewCluster(kmgraph.GNM(200, 600, 1),
		kmgraph.WithK(4), kmgraph.WithSeed(1),
		kmgraph.WithObserver(tracer.Observer()),
		kmgraph.WithPhaseMetrics())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Connectivity(context.Background()); err != nil {
			t.Fatalf("Connectivity: %v", err)
		}
	}
	tr := tracer.Snapshot()
	if len(tr.TraceEvents) > 8 {
		t.Errorf("buffer exceeds cap: %d events", len(tr.TraceEvents))
	}
	if tr.TraceEvents[0].Name != "process_name" || tr.TraceEvents[1].Name != "thread_name" {
		t.Errorf("metadata lost after trim: %v, %v", tr.TraceEvents[0], tr.TraceEvents[1])
	}
}

// asInt reads a numeric arg that may be float64 (after JSON) or a Go
// integer type (straight from Snapshot).
func asInt(t *testing.T, v any) int {
	t.Helper()
	switch x := v.(type) {
	case int:
		return x
	case int64:
		return int(x)
	case uint64:
		return int(x)
	case float64:
		return int(x)
	default:
		t.Fatalf("non-numeric arg %T: %v", v, v)
		return 0
	}
}
