package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// PhaseSpan is one phase of a distributed job as observed by a single
// worker: the engine rounds it covered, its wall-clock extent on the
// worker's own clock (microseconds since that worker started its engine
// range), and the local link traffic and barrier wait accumulated while
// it ran. Spans are streamed to the coordinator in bounded batches
// piggybacked on heartbeat frames and assembled into one multi-pid
// Chrome trace.
type PhaseSpan struct {
	// Phase is the merge-phase index, or -1 for the trailing sync span
	// (the work between the last phase boundary and engine completion).
	Phase      int
	StartRound int
	EndRound   int
	StartUs    int64
	DurUs      int64
	// Frames and Bytes are the wire frames/bytes this worker exchanged
	// with its peers during the span; WaitNs is its accumulated round-
	// barrier wait. All are local observations, not cluster totals.
	Frames int64
	Bytes  int64
	WaitNs int64
}

// Rounds is the engine rounds the span covers. Per worker, span rounds
// telescope: they sum exactly to the engine's final round count.
func (s PhaseSpan) Rounds() int { return s.EndRound - s.StartRound }

// maxPendingSpans bounds a recorder's unsent backlog. Phase counts are
// O(log n) (a few hundred at n=1M), far below the cap; it only guards a
// runaway engine against unbounded memory. Overflow drops the newest
// span and counts it, so Dropped()>0 flags a trace that no longer
// telescopes.
const maxPendingSpans = 8192

// SpanRecorder collects a worker's phase spans. The engine's phase hook
// appends (engine machine goroutine); the heartbeat loop drains batches
// (its own goroutine); Finish seals the trailing sync span.
type SpanRecorder struct {
	// sample returns cumulative local (frames, bytes, waitNs) — the
	// transport flight recorder's totals. It must be safe to call from
	// any goroutine.
	sample func() (frames, bytes, waitNs int64)

	mu        sync.Mutex
	start     time.Time
	lastT     time.Time
	lastRound int
	lastFr    int64
	lastBy    int64
	lastWait  int64
	pending   []PhaseSpan
	dropped   int
}

// NewSpanRecorder returns a recorder whose time origin is now. sample
// may be nil (spans then carry no traffic annotations).
func NewSpanRecorder(sample func() (frames, bytes, waitNs int64)) *SpanRecorder {
	now := time.Now()
	if sample == nil {
		sample = func() (int64, int64, int64) { return 0, 0, 0 }
	}
	return &SpanRecorder{sample: sample, start: now, lastT: now}
}

// Hook returns the callback to install as core.Config.PhaseHook.
func (r *SpanRecorder) Hook() func(phase, round int) {
	return func(phase, round int) { r.record(phase, round) }
}

// Finish seals the trailing sync span: the rounds between the last
// phase boundary and the engine's final round count. Always emitted —
// even 0-round — so per-worker span rounds telescope exactly to the
// job's metered Metrics.Rounds.
func (r *SpanRecorder) Finish(finalRound int) {
	r.record(-1, finalRound)
}

func (r *SpanRecorder) record(phase, round int) {
	now := time.Now()
	fr, by, wait := r.sample()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := PhaseSpan{
		Phase:      phase,
		StartRound: r.lastRound,
		EndRound:   round,
		StartUs:    r.lastT.Sub(r.start).Microseconds(),
		DurUs:      now.Sub(r.lastT).Microseconds(),
		Frames:     fr - r.lastFr,
		Bytes:      by - r.lastBy,
		WaitNs:     wait - r.lastWait,
	}
	r.lastT, r.lastRound = now, round
	r.lastFr, r.lastBy, r.lastWait = fr, by, wait
	if len(r.pending) >= maxPendingSpans {
		r.dropped++
		return
	}
	r.pending = append(r.pending, s)
}

// Drain pops up to max pending spans (all of them when max <= 0).
func (r *SpanRecorder) Drain(max int) []PhaseSpan {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.pending)
	if n == 0 {
		return nil
	}
	if max > 0 && n > max {
		n = max
	}
	out := append([]PhaseSpan(nil), r.pending[:n]...)
	r.pending = r.pending[n:]
	return out
}

// Dropped reports spans lost to the backlog cap.
func (r *SpanRecorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WorkerSpans is one worker's assembled span stream.
type WorkerSpans struct {
	Index  int
	Lo, Hi int
	Spans  []PhaseSpan
}

// AssembleDistTrace builds one Chrome trace from the per-worker span
// streams of a distributed job: one pid per worker (pid = worker
// index), phase and sync spans as "X" events, and a metadata record
// carrying the job name and trace ID. Each worker's timeline starts at
// its own microsecond 0 — worker clocks are not synchronized, so only
// within-worker durations and cross-worker phase alignment are
// meaningful, which is exactly what straggler attribution needs.
func AssembleDistTrace(job string, traceID uint64, workers []WorkerSpans) Trace {
	tr := Trace{DisplayTimeUnit: "ms"}
	for _, w := range workers {
		tr.TraceEvents = append(tr.TraceEvents,
			TraceEvent{Name: "process_name", Ph: "M", Pid: w.Index, Tid: 1,
				Args: map[string]any{
					"name": fmt.Sprintf("worker %d [%d,%d)", w.Index, w.Lo, w.Hi),
				}},
			TraceEvent{Name: "thread_name", Ph: "M", Pid: w.Index, Tid: 1,
				Args: map[string]any{"name": job,
					"trace_id": fmt.Sprintf("%#x", traceID)}},
		)
		for _, s := range w.Spans {
			name := "sync"
			if s.Phase >= 0 {
				name = fmt.Sprintf("phase %d", s.Phase)
			}
			tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
				Name: name, Cat: "phase", Ph: "X",
				Ts: float64(s.StartUs), Dur: float64(s.DurUs),
				Pid: w.Index, Tid: 1,
				Args: map[string]any{
					"phase":           s.Phase,
					"round":           s.EndRound,
					"rounds":          s.Rounds(),
					"frames":          s.Frames,
					"bytes":           s.Bytes,
					"barrier_wait_ms": float64(s.WaitNs) / 1e6,
				},
			})
		}
	}
	return tr
}

// WriteTrace writes any trace document as Chrome trace-event JSON to
// path (the CLIs' -trace flag in TCP mode).
func WriteTrace(path string, tr Trace) error {
	return writeTraceFile(path, tr)
}
