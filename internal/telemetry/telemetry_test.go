package telemetry

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // monotone: ignored
	if c.Value() != 5 {
		t.Fatalf("counter: %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge: %v, want 1.5", g.Value())
	}
}

func TestRegistryIdempotentUpsert(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Label{Name: "g", Value: "web"})
	b := r.Counter("x_total", "help", Label{Name: "g", Value: "web"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("x_total", "help", Label{Name: "g", Value: "social"})
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count: %d", h.Count())
	}
	if math.Abs(h.Sum()-112.5) > 1e-9 {
		t.Fatalf("sum: %v", h.Sum())
	}
	// Quantiles interpolate within the crossing bucket and saturate at
	// the last bound for the +Inf tail.
	if q := h.Quantile(0.5); q < 1 || q > 4 {
		t.Fatalf("p50: %v", q)
	}
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 should saturate at the last bound: %v", q)
	}
	empty := newHistogram([]float64{1})
	if empty.Quantile(0.9) != 0 {
		t.Fatalf("empty quantile: %v", empty.Quantile(0.9))
	}
}

// Exposition-format line shapes (text format 0.0.4).
var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)
)

// TestPrometheusGrammar checks the full rendered exposition against the
// text-format grammar: every line is a HELP, TYPE, or sample line;
// HELP/TYPE precede their family's samples; families are sorted;
// histogram buckets are cumulative with _count equal to the +Inf
// bucket; label values are escaped.
func TestPrometheusGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_requests_total", "Requests.", Label{Name: "endpoint", Value: "mst"}).Add(3)
	r.Counter("b_requests_total", "Requests.", Label{Name: "endpoint", Value: "connectivity"}).Add(9)
	r.Gauge("a_queue_depth", "Depth.", Label{Name: "graph", Value: `we"ird\name` + "\n"}).Set(2)
	r.GaugeFunc("c_live", "Scrape-time.", func() float64 { return 7.5 })
	h := r.HistogramWith([]float64{0.001, 0.01, 0.1}, "b_latency_seconds", "Latency.")
	for _, v := range []float64{0.0005, 0.005, 0.05, 5} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	var familiesSeen []string
	sawHelp := map[string]bool{}
	sawType := map[string]bool{}
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Errorf("bad HELP line: %q", line)
			}
			name := strings.Fields(line)[2]
			familiesSeen = append(familiesSeen, name)
			sawHelp[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			if !typeRe.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
			}
			sawType[strings.Fields(line)[2]] = true
		default:
			if !sampleRe.MatchString(line) {
				t.Errorf("bad sample line: %q", line)
			}
			name := line[:strings.IndexAny(line, "{ ")]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if !sawHelp[base] || !sawType[base] {
				t.Errorf("sample %q precedes its HELP/TYPE", line)
			}
		}
	}
	if !sortedStrings(familiesSeen) {
		t.Errorf("families not sorted: %v", familiesSeen)
	}

	// Histogram: cumulative buckets, _count == +Inf bucket, _sum present.
	var prev, infCount, count int64 = -1, -1, -1
	for _, line := range lines {
		if strings.HasPrefix(line, "b_latency_seconds_bucket") {
			v, _ := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if v < prev {
				t.Errorf("non-cumulative bucket: %q", line)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				infCount = v
			}
		}
		if strings.HasPrefix(line, "b_latency_seconds_count ") {
			count, _ = strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		}
	}
	if infCount != 4 || count != 4 {
		t.Errorf("histogram totals: +Inf bucket %d, _count %d, want 4", infCount, count)
	}
	if !strings.Contains(out, `graph="we\"ird\\name\n"`) {
		t.Errorf("label escaping missing:\n%s", out)
	}
	if !strings.Contains(out, "c_live 7.5") {
		t.Errorf("GaugeFunc sample missing:\n%s", out)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestDropLabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "h", Label{Name: "graph", Value: "web"}).Inc()
	r.Counter("jobs_total", "h", Label{Name: "graph", Value: "social"}).Inc()
	r.GaugeFunc("depth", "h", func() float64 { return 1 }, Label{Name: "graph", Value: "web"})
	r.DropLabeled("graph", "web")
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if strings.Contains(out, `graph="web"`) {
		t.Errorf("dropped series still rendered:\n%s", out)
	}
	if !strings.Contains(out, `graph="social"`) {
		t.Errorf("unrelated series dropped:\n%s", out)
	}
	if strings.Contains(out, "# TYPE depth") {
		t.Errorf("empty family still rendered:\n%s", out)
	}
}

// Primitive costs, the per-event price of instrumentation (E17).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("g", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

// TestHotPathsAllocationFree pins the instrumentation primitives the
// serving loop and engine callbacks hit per event: none may allocate.
func TestHotPathsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}
