package telemetry

import (
	"runtime"

	"kmgraph/internal/procstat"
	"kmgraph/internal/store"
)

// RegisterProcessMetrics wires process- and runtime-level gauges into a
// registry: resident set size (current and peak, via procstat),
// goroutine count, heap occupancy, GC cycles, and the store's
// process-wide decode counters. All values are read at scrape time;
// registering costs nothing between scrapes.
func RegisterProcessMetrics(r *Registry) {
	r.GaugeFunc("process_resident_memory_bytes",
		"Current resident set size in bytes (0 where unavailable).",
		func() float64 { return float64(procstat.RSSBytes()) })
	r.GaugeFunc("process_max_resident_memory_bytes",
		"Peak resident set size in bytes (rusage).",
		func() float64 { return float64(procstat.MaxRSSBytes()) })
	r.GaugeFunc("go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	// One ReadMemStats serves all heap gauges per scrape: the samples
	// within a family are rendered in one pass, and a scrape happens at
	// human frequency, so the brief stop-the-world is acceptable here
	// (and nowhere near any job's round loop).
	r.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc("go_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	r.CounterFunc("kmgs_blocks_decoded_total",
		"Store edge blocks entered by scans, process-wide.",
		func() float64 { return float64(store.ReadStats().BlocksDecoded) })
	r.CounterFunc("kmgs_crc_verifications_total",
		"Store block checksums computed, process-wide.",
		func() float64 { return float64(store.ReadStats().CRCVerifications) })
	r.CounterFunc("kmgs_crc_failures_total",
		"Store block checksum mismatches, process-wide.",
		func() float64 { return float64(store.ReadStats().CRCFailures) })
}
