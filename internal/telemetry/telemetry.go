// Package telemetry is the observability substrate shared by the
// serving layer and the CLIs: a dependency-free metrics registry
// (counters, gauges, log-bucketed histograms) with Prometheus text
// exposition, process/runtime gauges, and a span tracer that turns the
// resident engine's Observer events into Chrome trace-event JSON
// loadable in Perfetto.
//
// The paper states its contribution in costs — rounds, messages,
// per-link bits — and the repo measures them per job; this package is
// what makes those costs observable while the system runs instead of
// only after it stops.
//
// Everything here is stdlib-only and allocation-free on the hot paths:
// Counter.Add, Gauge.Set, and Histogram.Observe perform a constant
// number of atomic operations and never allocate, so instrumenting a
// 20k req/s serving loop or a per-phase engine callback costs nanoseconds,
// not garbage.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (a Prometheus label pair).
type Label struct {
	Name, Value string
}

// LatencyBuckets is the default histogram bucket ladder: log-spaced
// upper bounds in seconds from 50µs to 60s, chosen so the serving
// layer's measured range (cache hits ~100µs, cold million-vertex
// queries ~minutes) lands in distinct buckets with p50/p90/p99
// resolvable to ~2.5x.
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metricKind is the exposition TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a log-bucketed distribution: observations land in the
// first bucket whose upper bound is >= the value, with an implicit
// +Inf bucket past the last bound. Observe is allocation-free.
type Histogram struct {
	bounds []float64 // sorted upper bounds, seconds (or any unit)
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-th quantile (0 <= q <= 1) from the buckets
// by linear interpolation within the bucket that crosses the rank.
// Observations beyond the last bound report the last bound (the
// estimate saturates, it never invents data). Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// series is one labeled instance of a metric family: exactly one of
// the value fields is set.
type series struct {
	labels  []Label
	key     string // canonical label rendering, the dedup/sort key
	counter *Counter
	gauge   *Gauge
	fn      func() float64 // CounterFunc / GaugeFunc callback
	hist    *Histogram
}

// family is all series of one metric name.
type family struct {
	name, help string
	kind       metricKind
	series     map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent: asking for a metric
// that already exists (same name and labels) returns the existing
// instance, so wiring code can run per-request without bookkeeping.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// upsert returns the series for the label set, creating it via mk.
func (r *Registry) upsert(name, help string, kind metricKind, labels []Label, mk func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kind)
	key := renderLabels(labels)
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.labels = append([]Label(nil), labels...)
	s.key = key
	f.series[key] = s
	return s
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.upsert(name, help, kindCounter, labels, func() *series { return &series{counter: &Counter{}} }).counter
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time (for externally maintained monotone counters, e.g. the
// store's process-wide decode stats).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.upsert(name, help, kindCounter, labels, func() *series { return &series{} })
	s.fn = fn
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.upsert(name, help, kindGauge, labels, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.upsert(name, help, kindGauge, labels, func() *series { return &series{} })
	s.fn = fn
}

// Histogram registers (or fetches) a histogram with the default
// LatencyBuckets ladder.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.HistogramWith(LatencyBuckets, name, help, labels...)
}

// HistogramWith registers (or fetches) a histogram with explicit
// bucket upper bounds. Bounds are fixed at first registration; later
// calls for the same name return the existing series regardless of
// the bounds argument.
func (r *Registry) HistogramWith(bounds []float64, name, help string, labels ...Label) *Histogram {
	return r.upsert(name, help, kindHistogram, labels, func() *series { return &series{hist: newHistogram(bounds)} }).hist
}

// DropLabeled removes every series (across all families) carrying the
// given label pair, and any family left empty. The serving layer calls
// it when a graph is unloaded so its per-graph series don't linger and
// its gauge callbacks stop being scraped.
func (r *Registry) DropLabeled(name, value string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for fname, f := range r.families {
		for key, s := range f.series {
			for _, l := range s.labels {
				if l.Name == name && l.Value == value {
					delete(f.series, key)
					break
				}
			}
		}
		if len(f.series) == 0 {
			delete(r.families, fname)
		}
	}
}

// renderLabels canonicalizes a label set: sorted by name, rendered in
// exposition syntax without the braces ("" for no labels).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escaping rules for
// label values: backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the exposition-format escaping rules for HELP
// text: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleName renders "name{labels}" or "name" plus extra labels (the
// histogram "le" label) appended after the series' own.
func sampleName(name, labelKey string, extra ...Label) string {
	all := labelKey
	if len(extra) > 0 {
		e := renderLabels(extra)
		if all == "" {
			all = e
		} else {
			all += "," + e
		}
	}
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, one HELP and one
// TYPE line each, series sorted by label key, histograms expanded into
// cumulative _bucket/_sum/_count samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the family/series structure under the lock; values are
	// read outside it (they are atomic), so a slow writer never blocks
	// registration.
	type snap struct {
		fam    *family
		series []*series
	}
	snaps := make([]snap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })
		snaps = append(snaps, snap{fam: f, series: ss})
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, sn := range snaps {
		f := sn.fam
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range sn.series {
			switch {
			case s.hist != nil:
				var cum int64
				for i, bound := range s.hist.bounds {
					cum += s.hist.counts[i].Load()
					fmt.Fprintf(&b, "%s %d\n",
						sampleName(f.name+"_bucket", s.key, Label{Name: "le", Value: formatValue(bound)}), cum)
				}
				cum += s.hist.inf.Load()
				fmt.Fprintf(&b, "%s %d\n",
					sampleName(f.name+"_bucket", s.key, Label{Name: "le", Value: "+Inf"}), cum)
				fmt.Fprintf(&b, "%s %s\n", sampleName(f.name+"_sum", s.key), formatValue(s.hist.Sum()))
				fmt.Fprintf(&b, "%s %d\n", sampleName(f.name+"_count", s.key), s.hist.Count())
			case s.fn != nil:
				fmt.Fprintf(&b, "%s %s\n", sampleName(f.name, s.key), formatValue(s.fn()))
			case s.counter != nil:
				fmt.Fprintf(&b, "%s %d\n", sampleName(f.name, s.key), s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s %s\n", sampleName(f.name, s.key), formatValue(s.gauge.Value()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
