package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"kmgraph/internal/kmachine"
	"kmgraph/internal/resident"
)

// TraceEvent is one Chrome trace-event (the JSON schema Perfetto and
// chrome://tracing load). Ts and Dur are microseconds since the
// tracer's epoch.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace is a complete trace document (JSON object form, the variant
// that allows metadata alongside the event array).
type Trace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// JobTracer turns resident-engine Observer events into a Chrome trace:
// each job becomes a "job" span enclosing one "phase" span per merge
// phase plus a trailing "sync" span (the work between the last phase
// boundary and job completion — certificate sync, result collection).
//
// Round accounting telescopes exactly: phase i's rounds are the round
// counter delta since the previous event, the sync span covers the
// remainder, so the per-span round totals of a job sum to precisely the
// job's metered Metrics.Rounds. When the engine runs with PhaseMetrics,
// spans are additionally annotated with per-phase message and payload
// deltas and the cumulative max-link-bits skew.
//
// A JobTracer is safe for concurrent use (Observer callbacks arrive on
// engine goroutines while Snapshot/WriteTo run on servers') and is
// attached via WithObserver / Config.Observer.
type JobTracer struct {
	mu        sync.Mutex
	epoch     time.Time
	events    []TraceEvent
	jobs      map[int]*traceJob
	maxEvents int
	dropped   int
}

// traceJob is the open-span state of one in-flight job.
type traceJob struct {
	name       string
	start      time.Time
	startRound int
	lastT      time.Time
	lastRound  int
	lastSnap   *kmachine.Metrics
	phases     int
}

// NewJobTracer returns a tracer whose time origin is now.
func NewJobTracer() *JobTracer {
	t := &JobTracer{
		epoch: time.Now(),
		jobs:  make(map[int]*traceJob),
	}
	t.events = append(t.events,
		TraceEvent{Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
			Args: map[string]any{"name": "kmgraph"}},
		TraceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: 1,
			Args: map[string]any{"name": "resident engine"}},
	)
	return t
}

// SetMaxEvents bounds the retained event buffer: when a completed job
// pushes the buffer past n, the oldest job spans are discarded (the
// serving layer uses this so a long-lived tenant's tracer holds the
// recent jobs, not the whole session).
func (t *JobTracer) SetMaxEvents(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.maxEvents = n
}

// us converts an absolute time to trace microseconds.
func (t *JobTracer) us(at time.Time) float64 {
	return float64(at.Sub(t.epoch).Nanoseconds()) / 1e3
}

// Observer returns the callback to register with the engine
// (resident.Config.Observer / kmgraph.WithObserver).
func (t *JobTracer) Observer() func(resident.Event) {
	return t.observe
}

func (t *JobTracer) observe(ev resident.Event) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case ev.Phase < 0 && !ev.Done:
		t.jobs[ev.Seq] = &traceJob{
			name:       ev.Job,
			start:      now,
			startRound: ev.Round,
			lastT:      now,
			lastRound:  ev.Round,
			lastSnap:   ev.Snap,
		}

	case ev.Phase >= 0:
		j := t.open(ev, now)
		args := map[string]any{
			"phase":    ev.Phase,
			"rounds":   ev.Round - j.lastRound,
			"round":    ev.Round,
			"active":   ev.Active,
			"failures": ev.Failures,
		}
		t.annotate(args, j.lastSnap, ev.Snap)
		t.events = append(t.events, TraceEvent{
			Name: fmt.Sprintf("phase %d", ev.Phase), Cat: "phase", Ph: "X",
			Ts: t.us(j.lastT), Dur: t.us(now) - t.us(j.lastT),
			Pid: 1, Tid: 1, Args: args,
		})
		j.lastT = now
		j.lastRound = ev.Round
		if ev.Snap != nil {
			j.lastSnap = ev.Snap
		}
		j.phases++

	case ev.Done:
		j := t.open(ev, now)
		if j.phases > 0 {
			// The remainder between the last phase boundary and job
			// completion (certificate sync, final collectives). Always
			// emitted — even 0-round — so span rounds telescope exactly
			// to the job's metered total.
			args := map[string]any{
				"rounds": ev.Round - j.lastRound,
				"round":  ev.Round,
			}
			t.annotate(args, j.lastSnap, ev.Snap)
			t.events = append(t.events, TraceEvent{
				Name: "sync", Cat: "phase", Ph: "X",
				Ts: t.us(j.lastT), Dur: t.us(now) - t.us(j.lastT),
				Pid: 1, Tid: 1, Args: args,
			})
		}
		rounds := ev.Round - j.startRound
		args := map[string]any{
			"seq":    ev.Seq,
			"rounds": rounds,
			"phases": j.phases,
		}
		if ev.Delta != nil {
			args["rounds"] = ev.Delta.Rounds
			args["messages"] = ev.Delta.Messages
			args["payload_bytes"] = ev.Delta.PayloadBytes
		}
		if ev.Snap != nil {
			args["max_link_bits"] = ev.Snap.MaxLinkBits
			if mean := ev.Snap.MeanLinkBits(); mean > 0 {
				args["link_skew"] = float64(ev.Snap.MaxLinkBits) / mean
			}
		}
		if ev.Err != "" {
			args["err"] = ev.Err
		}
		t.events = append(t.events, TraceEvent{
			Name: fmt.Sprintf("%s #%d", ev.Job, ev.Seq), Cat: "job", Ph: "X",
			Ts: t.us(j.start), Dur: t.us(now) - t.us(j.start),
			Pid: 1, Tid: 1, Args: args,
		})
		delete(t.jobs, ev.Seq)
		t.trim()
	}
}

// open returns the in-flight record for the event's job, synthesizing
// one when the tracer was attached mid-job (or, for the load job, when
// there is no start event at all: the load span then starts at the
// tracer's epoch with round origin 0, which is exact — the session
// round counter starts at 0).
func (t *JobTracer) open(ev resident.Event, now time.Time) *traceJob {
	if j, ok := t.jobs[ev.Seq]; ok {
		return j
	}
	start := now
	startRound := ev.Round
	if ev.Job == "load" {
		start = t.epoch
		startRound = 0
	}
	j := &traceJob{name: ev.Job, start: start, startRound: startRound,
		lastT: start, lastRound: startRound}
	t.jobs[ev.Seq] = j
	return j
}

// annotate adds PhaseMetrics-derived deltas to a span's args.
func (t *JobTracer) annotate(args map[string]any, prev, cur *kmachine.Metrics) {
	if cur == nil {
		return
	}
	if prev != nil {
		args["messages"] = cur.Messages - prev.Messages
		args["payload_bytes"] = cur.PayloadBytes - prev.PayloadBytes
	}
	args["max_link_bits"] = cur.MaxLinkBits
	if mean := cur.MeanLinkBits(); mean > 0 {
		args["link_skew"] = float64(cur.MaxLinkBits) / mean
	}
}

// trim enforces the event cap by dropping the oldest job spans (the
// two leading metadata records are kept).
func (t *JobTracer) trim() {
	if t.maxEvents <= 0 || len(t.events) <= t.maxEvents {
		return
	}
	const meta = 2
	keep := t.maxEvents - meta
	if keep < 0 {
		keep = 0
	}
	t.dropped += len(t.events) - meta - keep
	tail := t.events[len(t.events)-keep:]
	t.events = append(t.events[:meta:meta], tail...)
}

// Dropped reports how many spans the event cap has evicted so far (the
// serving layer surfaces it in a response header, so a trimmed trace is
// distinguishable from a complete one).
func (t *JobTracer) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns a copy of the trace so far.
func (t *JobTracer) Snapshot() Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Trace{
		TraceEvents:     append([]TraceEvent(nil), t.events...),
		DisplayTimeUnit: "ms",
	}
}

// SnapshotSorted returns a copy of the trace with span events ordered
// by start timestamp (metadata records first). Events are appended in
// job-completion order, so after the ring trims, arrival order no
// longer matches time order for overlapping jobs — viewers cope, but
// diff-based tooling should get a canonical order.
func (t *JobTracer) SnapshotSorted() Trace {
	tr := t.Snapshot()
	sort.SliceStable(tr.TraceEvents, func(i, j int) bool {
		ei, ej := &tr.TraceEvents[i], &tr.TraceEvents[j]
		if mi, mj := ei.Ph == "M", ej.Ph == "M"; mi != mj {
			return mi
		}
		return ei.Ts < ej.Ts
	})
	return tr
}

// Write writes the trace as Chrome trace-event JSON.
func (t *JobTracer) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.Snapshot())
}

// WriteFile writes the trace to path (the CLIs' -trace flag).
func (t *JobTracer) WriteFile(path string) error {
	return writeTraceFile(path, t.Snapshot())
}

// writeTraceFile writes a trace document as JSON to path.
func writeTraceFile(path string, tr Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := json.NewEncoder(f).Encode(tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
