package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	f := func(a uint64, b int64, c bool, s []byte) bool {
		var buf []byte
		buf = AppendUvarint(buf, a)
		buf = AppendVarint(buf, b)
		buf = AppendBool(buf, c)
		buf = AppendBytes(buf, s)
		buf = AppendU64(buf, a^uint64(b))

		r := NewReader(buf)
		ga := r.Uvarint()
		gb := r.Varint()
		gc := r.Bool()
		gs := r.Bytes()
		gu := r.U64()
		if err := r.Done(); err != nil {
			t.Logf("done: %v", err)
			return false
		}
		return ga == a && gb == b && gc == c && bytes.Equal(gs, s) && gu == a^uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncated(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 300)
	buf = AppendBytes(buf, []byte("hello"))

	// Cut the buffer at every prefix length; decoding must either fail
	// cleanly or report trailing state via Done, never panic.
	for cut := 0; cut < len(buf); cut++ {
		r := NewReader(buf[:cut])
		_ = r.Uvarint()
		_ = r.Bytes()
		if r.Done() == nil {
			t.Errorf("cut=%d: expected error", cut)
		}
	}
}

func TestErrorLatches(t *testing.T) {
	r := NewReader(nil)
	if r.U64() != 0 {
		t.Error("U64 on empty should be 0")
	}
	if r.Err() != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", r.Err())
	}
	// Subsequent reads keep returning zero values without panicking.
	if r.Uvarint() != 0 || r.Bool() || r.Bytes() != nil {
		t.Error("latched reader should return zero values")
	}
}

func TestTrailingBytes(t *testing.T) {
	buf := AppendUvarint(nil, 5)
	buf = append(buf, 0xff)
	r := NewReader(buf)
	_ = r.Uvarint()
	if err := r.Done(); err == nil {
		t.Error("Done should report trailing bytes")
	}
}

func TestIntHelper(t *testing.T) {
	buf := AppendUvarint(nil, 12345)
	r := NewReader(buf)
	if got := r.Int(); got != 12345 {
		t.Errorf("Int = %d, want 12345", got)
	}
}

func TestBytesAliasing(t *testing.T) {
	buf := AppendBytes(nil, []byte{1, 2, 3})
	r := NewReader(buf)
	s := r.Bytes()
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("bytes = %v", s)
	}
}

func TestArenaGrabCommit(t *testing.T) {
	a := NewArena(64)
	b1 := a.Grab(10)
	b1 = AppendUvarint(b1, 300)
	b1 = a.Commit(b1)
	b2 := a.Grab(10)
	b2 = AppendUvarint(b2, 77)
	b2 = a.Commit(b2)
	// Committed regions must be stable and disjoint.
	r1, r2 := NewReader(b1), NewReader(b2)
	if got := r1.Uvarint(); got != 300 {
		t.Fatalf("first commit = %d, want 300", got)
	}
	if got := r2.Uvarint(); got != 77 {
		t.Fatalf("second commit = %d, want 77", got)
	}
}

func TestArenaChunkRollover(t *testing.T) {
	a := NewArena(32)
	var bufs [][]byte
	for i := 0; i < 20; i++ {
		b := a.Grab(16)
		for j := 0; j < 12; j++ {
			b = append(b, byte(i))
		}
		bufs = append(bufs, a.Commit(b))
	}
	for i, b := range bufs {
		if len(b) != 12 {
			t.Fatalf("buf %d: len %d", i, len(b))
		}
		for _, c := range b {
			if c != byte(i) {
				t.Fatalf("buf %d corrupted: %v", i, b)
			}
		}
	}
}

func TestArenaEscapeOnOvergrow(t *testing.T) {
	a := NewArena(32)
	b := a.Grab(4)
	for i := 0; i < 100; i++ { // grows past the chunk: escapes to the heap
		b = append(b, byte(i))
	}
	b = a.Commit(b)
	// The escaped buffer must be intact, and the arena must still serve
	// fresh, uncorrupted buffers afterwards.
	for i, c := range b {
		if c != byte(i) {
			t.Fatalf("escaped buffer corrupted at %d", i)
		}
	}
	nb := a.Commit(append(a.Grab(8), 0xAA))
	if len(nb) != 1 || nb[0] != 0xAA {
		t.Fatalf("post-escape grab broken: %v", nb)
	}
	if &b[0] == &nb[0] {
		t.Fatal("escaped buffer aliases arena chunk")
	}
}

func TestArenaCopy(t *testing.T) {
	a := NewArena(0)
	src := []byte{9, 8, 7}
	cp := a.Copy(src)
	src[0] = 0
	if cp[0] != 9 || len(cp) != 3 {
		t.Fatalf("copy not stable: %v", cp)
	}
}
