package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	f := func(a uint64, b int64, c bool, s []byte) bool {
		var buf []byte
		buf = AppendUvarint(buf, a)
		buf = AppendVarint(buf, b)
		buf = AppendBool(buf, c)
		buf = AppendBytes(buf, s)
		buf = AppendU64(buf, a^uint64(b))

		r := NewReader(buf)
		ga := r.Uvarint()
		gb := r.Varint()
		gc := r.Bool()
		gs := r.Bytes()
		gu := r.U64()
		if err := r.Done(); err != nil {
			t.Logf("done: %v", err)
			return false
		}
		return ga == a && gb == b && gc == c && bytes.Equal(gs, s) && gu == a^uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncated(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 300)
	buf = AppendBytes(buf, []byte("hello"))

	// Cut the buffer at every prefix length; decoding must either fail
	// cleanly or report trailing state via Done, never panic.
	for cut := 0; cut < len(buf); cut++ {
		r := NewReader(buf[:cut])
		_ = r.Uvarint()
		_ = r.Bytes()
		if r.Done() == nil {
			t.Errorf("cut=%d: expected error", cut)
		}
	}
}

func TestErrorLatches(t *testing.T) {
	r := NewReader(nil)
	if r.U64() != 0 {
		t.Error("U64 on empty should be 0")
	}
	if r.Err() != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", r.Err())
	}
	// Subsequent reads keep returning zero values without panicking.
	if r.Uvarint() != 0 || r.Bool() || r.Bytes() != nil {
		t.Error("latched reader should return zero values")
	}
}

func TestTrailingBytes(t *testing.T) {
	buf := AppendUvarint(nil, 5)
	buf = append(buf, 0xff)
	r := NewReader(buf)
	_ = r.Uvarint()
	if err := r.Done(); err == nil {
		t.Error("Done should report trailing bytes")
	}
}

func TestIntHelper(t *testing.T) {
	buf := AppendUvarint(nil, 12345)
	r := NewReader(buf)
	if got := r.Int(); got != 12345 {
		t.Errorf("Int = %d, want 12345", got)
	}
}

func TestBytesAliasing(t *testing.T) {
	buf := AppendBytes(nil, []byte{1, 2, 3})
	r := NewReader(buf)
	s := r.Bytes()
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("bytes = %v", s)
	}
}
