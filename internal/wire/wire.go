// Package wire provides the byte-level encoding used for every message
// exchanged between machines in the k-machine simulator.
//
// The k-machine model charges algorithms per *bit* crossing a link, so all
// protocol messages are encoded into compact byte strings with these
// helpers rather than passed as Go values. Encoders are append-style
// (allocation-friendly); decoding uses a cursor type that latches errors so
// call sites can decode whole messages and check failure once.
//
//km:roundpure
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is reported when a decode runs past the end of the buffer.
var ErrTruncated = errors.New("wire: truncated message")

// Arena is an append-style allocator for message payloads. Encoders grab a
// zero-length scratch slice, append their encoding with the usual
// Append{Uvarint,U64,Bytes,...} helpers, and commit the result; committed
// regions are carved out of large shared chunks, so the per-message heap
// allocation (and the GC scan pressure of hundreds of thousands of small
// byte slices) collapses to one allocation per chunk. Committed bytes are
// never overwritten or reclaimed by the arena — a chunk is garbage
// collected only once no message references it — which makes arena-backed
// payloads safe to hand to the simulator and alias from receivers.
//
// An Arena is single-goroutine (one per machine). At most one grabbed
// buffer may be outstanding: Grab, append, Commit, repeat.
type Arena struct {
	chunk []byte // len = bytes committed, cap = chunk size
	size  int
}

// DefaultArenaChunk is the default arena chunk size.
const DefaultArenaChunk = 64 << 10

// NewArena returns an arena with the given chunk size (0 selects the
// default).
func NewArena(chunkSize int) *Arena {
	if chunkSize <= 0 {
		chunkSize = DefaultArenaChunk
	}
	return &Arena{size: chunkSize}
}

// Grab returns a zero-length scratch buffer with at least hint bytes of
// capacity, backed by the current chunk. Appending beyond the returned
// capacity is safe — the slice transparently escapes to its own heap
// allocation and Commit detects it — but costs the allocation the arena
// exists to avoid, so pass an honest upper bound.
//
//km:hotpath
func (a *Arena) Grab(hint int) []byte {
	if hint < 1 {
		hint = 1
	}
	if cap(a.chunk)-len(a.chunk) < hint {
		size := a.size
		if size < hint {
			size = hint
		}
		a.chunk = make([]byte, 0, size) //kmvet:ignore amortized chunk growth; one make per DefaultArenaChunk of traffic
	}
	return a.chunk[len(a.chunk):]
}

// Commit seals a buffer obtained from Grab: the bytes become part of the
// chunk's committed prefix and the buffer is returned for sending. A
// buffer that escaped the chunk (grew past its capacity) is returned
// unchanged; the chunk space it vacated is reused by the next Grab.
//
//km:hotpath
func (a *Arena) Commit(b []byte) []byte {
	if cap(b) == cap(a.chunk)-len(a.chunk) && cap(b) > 0 {
		a.chunk = a.chunk[:len(a.chunk)+len(b)]
	}
	return b
}

// Copy interns a byte string into the arena and returns the stable copy.
//
//km:hotpath
func (a *Arena) Copy(b []byte) []byte {
	buf := a.Grab(len(b))
	buf = append(buf, b...)
	return a.Commit(buf)
}

// ErrOverflow is reported when a varint does not fit the requested width.
var ErrOverflow = errors.New("wire: varint overflow")

// AppendUvarint appends x in unsigned LEB128 form.
//
//km:hotpath
func AppendUvarint(b []byte, x uint64) []byte {
	return binary.AppendUvarint(b, x)
}

// AppendVarint appends x in zig-zag signed LEB128 form.
//
//km:hotpath
func AppendVarint(b []byte, x int64) []byte {
	return binary.AppendVarint(b, x)
}

// AppendU64 appends x as 8 fixed little-endian bytes.
//
//km:hotpath
func AppendU64(b []byte, x uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, x)
}

// AppendBytes appends a length-prefixed byte string.
//
//km:hotpath
func AppendBytes(b, s []byte) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBool appends a single 0/1 byte.
//
//km:hotpath
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Reader is a decoding cursor over a received message. The first decoding
// error is latched; subsequent reads return zero values. Check Err (or use
// Done) after decoding a full message.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a cursor over buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// Uvarint decodes an unsigned LEB128 value.
//
//km:hotpath
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		if n == 0 {
			r.err = ErrTruncated
		} else {
			r.err = ErrOverflow
		}
		return 0
	}
	r.off += n
	return x
}

// Varint decodes a zig-zag signed LEB128 value.
//
//km:hotpath
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		if n == 0 {
			r.err = ErrTruncated
		} else {
			r.err = ErrOverflow
		}
		return 0
	}
	r.off += n
	return x
}

// U64 decodes 8 fixed little-endian bytes.
//
//km:hotpath
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 8 {
		r.err = ErrTruncated
		return 0
	}
	x := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return x
}

// Bytes decodes a length-prefixed byte string. The returned slice aliases
// the underlying buffer.
//
//km:hotpath
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Len()) < n {
		r.err = ErrTruncated
		return nil
	}
	s := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return s
}

// Bool decodes a single 0/1 byte.
//
//km:hotpath
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Len() < 1 {
		r.err = ErrTruncated
		return false
	}
	v := r.buf[r.off]
	r.off++
	return v != 0
}

// Int decodes a non-negative int encoded with AppendUvarint.
//
//km:hotpath
func (r *Reader) Int() int {
	return int(r.Uvarint())
}

// Done reports an error unless the message decoded cleanly and completely.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.Len() != 0 {
		return fmt.Errorf("wire: %d trailing bytes", r.Len())
	}
	return nil
}
