package rep

import (
	"testing"

	"kmgraph/internal/graph"
)

func TestREPMSTMatchesOracle(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm", graph.WithDistinctWeights(graph.GNM(100, 400, 1), 2)},
		{"dense", graph.WithDistinctWeights(graph.GNM(50, 900, 3), 4)},
		{"tree", graph.WithDistinctWeights(graph.RandomTree(80, 5), 6)},
		{"components", graph.WithDistinctWeights(graph.DisjointComponents(90, 3, 0.5, 7), 8)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := MST(tc.g, Config{K: 4, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			want, wantTotal := graph.KruskalMST(tc.g)
			if res.TotalWeight != wantTotal {
				t.Errorf("weight %d, want %d", res.TotalWeight, wantTotal)
			}
			if len(res.Edges) != len(want) {
				t.Errorf("%d edges, want %d", len(res.Edges), len(want))
			}
			wantSet := make(map[uint64]bool)
			for _, e := range want {
				wantSet[graph.EdgeID(e.U, e.V, tc.g.N())] = true
			}
			for _, e := range res.Edges {
				if !wantSet[graph.EdgeID(e.U, e.V, tc.g.N())] {
					t.Errorf("edge %v not in unique MST", e)
				}
			}
		})
	}
}

func TestREPConnectivity(t *testing.T) {
	g := graph.DisjointComponents(120, 5, 0.4, 10)
	res, err := Connectivity(g, Config{K: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	forest := graph.FromEdges(g.N(), res.Edges)
	wantLabels, wantCount := graph.Components(g)
	gotLabels, gotCount := graph.Components(forest)
	if gotCount != wantCount {
		t.Errorf("components %d, want %d", gotCount, wantCount)
	}
	if !graph.SameLabeling(gotLabels, wantLabels) {
		t.Error("forest does not span the same components")
	}
}

func TestFilteringBounds(t *testing.T) {
	// Each machine keeps at most n-1 edges after local filtering.
	g := graph.WithDistinctWeights(graph.Complete(40), 12)
	k := 4
	res, err := MST(g, Config{K: k, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilteredEdges > k*(g.N()-1) {
		t.Errorf("filtered %d > k(n-1) = %d", res.FilteredEdges, k*(g.N()-1))
	}
	if res.FilteredEdges < g.N()-1 {
		t.Errorf("filtered %d < n-1: cannot contain the MST", res.FilteredEdges)
	}
	if res.ConversionRounds <= 0 || res.MSTRounds <= 0 {
		t.Error("missing round accounting")
	}
	if res.TotalRounds != res.ConversionRounds+res.MSTRounds {
		t.Error("total rounds mismatch")
	}
}

func TestLocalForestCycleProperty(t *testing.T) {
	g := graph.WithDistinctWeights(graph.Complete(12), 14)
	edges := g.Edges()
	forest := localForest(g.N(), edges)
	if len(forest) != 11 {
		t.Fatalf("forest size %d", len(forest))
	}
	// The local forest of ALL edges is exactly the MST.
	want, _ := graph.KruskalMST(g)
	for i, e := range forest {
		if want[i] != e {
			// Compare as sets (order may differ).
			found := false
			for _, we := range want {
				if we == e {
					found = true
				}
			}
			if !found {
				t.Errorf("forest edge %v not in MST", e)
			}
		}
	}
}
