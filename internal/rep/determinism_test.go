package rep

import (
	"hash/fnv"
	"testing"

	"kmgraph/internal/graph"
)

// fingerprint folds the full result — rounds, accounting, and the MST
// edge list in its returned order — so any nondeterminism anywhere in the
// three-phase pipeline shows as a mismatch.
func fingerprint(res *Result) uint64 {
	h := fnv.New64a()
	add := func(x int64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(uint64(x) >> (8 * i))
		}
		h.Write(b[:])
	}
	add(int64(res.FilteredEdges))
	add(int64(res.ConversionRounds))
	add(int64(res.MSTRounds))
	add(int64(res.TotalRounds))
	add(res.TotalWeight)
	for _, e := range res.Edges {
		add(int64(e.U))
		add(int64(e.V))
		add(e.W)
	}
	m := &res.Metrics
	add(int64(m.Rounds))
	add(m.Messages)
	add(m.PayloadBytes)
	add(m.MaxLinkBits)
	for _, row := range m.LinkBits {
		for _, b := range row {
			add(b)
		}
	}
	return h.Sum64()
}

// TestREPMSTDeterministic reruns the REP pipeline and requires
// bit-identical results. This pins the union-map fix in MST: the filtered
// edge union is assembled in a map, and FromEdges lays out adjacency in
// edge-list order, so emitting the union in map iteration order fed each
// run's MST phase a differently-ordered graph — same forest, different
// round-by-round traffic. The union is now emitted in sorted EdgeID order.
func TestREPMSTDeterministic(t *testing.T) {
	g := graph.WithDistinctWeights(graph.GNM(100, 400, 1), 2)
	var first uint64
	for i := 0; i < 5; i++ {
		res, err := MST(g, Config{K: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprint(res)
		if i == 0 {
			first = fp
		} else if fp != first {
			t.Fatalf("run %d: fingerprint %#x != first run %#x", i, fp, first)
		}
	}
}
