// Package rep implements the random edge partition (REP) model algorithms
// the paper sketches in §1.3 (footnote 5): in the REP model every *edge*
// is assigned to a uniformly random machine, Θ̃(n/k) rounds is the tight
// bound for connectivity and MST, in contrast to Θ̃(n/k²) under RVP.
//
// The MST algorithm: (1) each machine locally filters its edge set with
// the cycle property of MSTs — only its local minimum spanning forest
// (≤ n-1 edges) can contain global MST edges; (2) the ≤ k(n-1) surviving
// edges are routed to the RVP homes of their endpoints (Θ̃(n/k) rounds:
// Θ(nk) edges over Θ(k²) links); (3) the RVP-model MST algorithm finishes
// the job. Experiment E12 confirms the conversion dominates, scaling as
// n/k rather than n/k².
package rep

import (
	"sort"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/proxy"
	"kmgraph/internal/wire"
)

// Config parameterizes a REP-model run.
type Config struct {
	K             int
	BandwidthBits int // 0 selects kmachine.Bandwidth(n)
	Seed          int64
	MaxRounds     int
}

// Result is the outcome of a REP-model MST or connectivity run.
type Result struct {
	// Edges is the spanning forest (MST under the (w, id) order).
	Edges []graph.Edge
	// TotalWeight is the forest weight.
	TotalWeight int64
	// FilteredEdges is the number of edges surviving local filtering.
	FilteredEdges int
	// ConversionRounds is the cost of re-routing filtered edges to RVP.
	ConversionRounds int
	// MSTRounds is the cost of the RVP-model MST on the filtered graph.
	MSTRounds int
	// TotalRounds = ConversionRounds + MSTRounds.
	TotalRounds int
	// Metrics is the conversion phase's engine accounting.
	Metrics kmachine.Metrics
}

// localForest returns the minimum spanning forest of the given edge set
// under the (w, id) order — the cycle-property filter.
func localForest(n int, edges []graph.Edge) []graph.Edge {
	sorted := append([]graph.Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool { return graph.EdgeLess(sorted[i], sorted[j], n) })
	uf := graph.NewUnionFind(n)
	var keep []graph.Edge
	for _, e := range sorted {
		if uf.Union(e.U, e.V) {
			keep = append(keep, e)
		}
	}
	return keep
}

// MST computes the minimum spanning forest of g in the REP model.
func MST(g *graph.Graph, cfg Config) (*Result, error) {
	return run(g, cfg, false)
}

// Connectivity computes a spanning forest of g in the REP model (weights
// ignored for filtering purposes beyond tie-breaking). The forest's
// components are g's components.
func Connectivity(g *graph.Graph, cfg Config) (*Result, error) {
	return run(g, cfg, true)
}

func run(g *graph.Graph, cfg Config, unweighted bool) (*Result, error) {
	n := g.N()
	bw := cfg.BandwidthBits
	if bw == 0 {
		bw = kmachine.Bandwidth(n)
	}
	edgePart := kmachine.NewREP(g, cfg.K, uint64(cfg.Seed)^0xe4e4)
	vertexSeed := uint64(cfg.Seed) ^ 0x9e37 // must match core.Run's RVP

	cluster, err := kmachine.New(kmachine.Config{
		K:                   cfg.K,
		BandwidthBits:       bw,
		MessageOverheadBits: 64,
		Seed:                cfg.Seed,
		MaxRounds:           cfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}

	// Phase 1+2: local filtering, then route survivors to both endpoints'
	// RVP homes (batched per destination machine).
	res, err := cluster.Run(func(ctx *kmachine.Ctx) error {
		comm := proxy.NewComm(ctx)
		mine := edgePart.OwnedEdges(ctx.ID())
		if unweighted {
			flat := make([]graph.Edge, len(mine))
			for i, e := range mine {
				flat[i] = graph.Edge{U: e.U, V: e.V, W: 1}
			}
			mine = flat
		}
		keep := localForest(n, mine)

		vp := kmachine.NewRVP(g, ctx.K(), vertexSeed)
		batches := make([][]byte, ctx.K())
		addTo := func(dst int, e graph.Edge) {
			b := batches[dst]
			b = wire.AppendUvarint(b, uint64(e.U))
			b = wire.AppendUvarint(b, uint64(e.V))
			b = wire.AppendVarint(b, e.W)
			batches[dst] = b
		}
		for _, e := range keep {
			hu, hv := vp.Home(e.U), vp.Home(e.V)
			addTo(hu, e)
			if hv != hu {
				addTo(hv, e)
			}
		}
		var out []proxy.Out
		for dst := 0; dst < ctx.K(); dst++ {
			if len(batches[dst]) > 0 {
				out = append(out, proxy.Out{Dst: dst, Data: batches[dst]})
			}
		}
		recv := comm.Exchange(out)
		var got []graph.Edge
		for _, msg := range recv {
			r := wire.NewReader(msg.Data)
			for r.Len() > 0 {
				e := graph.Edge{U: int(r.Uvarint()), V: int(r.Uvarint()), W: r.Varint()}
				got = append(got, e)
			}
		}
		ctx.SetOutput(struct {
			kept     int
			received []graph.Edge
		}{len(keep), got})
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Host: assemble the filtered union graph (machines now hold, per
	// owned vertex, the filtered incident edges — an RVP of this graph).
	out := &Result{ConversionRounds: res.Metrics.Rounds, Metrics: res.Metrics}
	union := make(map[uint64]graph.Edge)
	for _, o := range res.Outputs {
		mo := o.(struct {
			kept     int
			received []graph.Edge
		})
		out.FilteredEdges += mo.kept
		for _, e := range mo.received {
			union[graph.EdgeID(e.U, e.V, n)] = e
		}
	}
	// Emit the union in sorted EdgeID order: FromEdges lays out adjacency
	// in edge-list order, so iterating the map here would shuffle neighbor
	// order — and the MST phase's tie-breaks — per run.
	edges := make([]graph.Edge, 0, len(union))
	for _, id := range core.SortedKeys(union) {
		edges = append(edges, union[id])
	}
	filtered := graph.FromEdges(n, edges)

	// Phase 3: RVP MST on the filtered graph, same vertex partition.
	mst, err := core.RunMST(filtered, core.MSTConfig{Config: core.Config{
		K: cfg.K, BandwidthBits: bw, Seed: cfg.Seed, MaxRounds: cfg.MaxRounds,
	}})
	if err != nil {
		return nil, err
	}
	out.Edges = mst.Edges
	out.TotalWeight = mst.TotalWeight
	out.MSTRounds = mst.Metrics.Rounds
	out.TotalRounds = out.ConversionRounds + out.MSTRounds
	return out, nil
}
