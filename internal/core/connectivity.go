// Package core implements the paper's primary contribution (§2, Theorem 1):
// a Monte Carlo connectivity algorithm for the k-machine model running in
// Õ(n/k²) rounds, improving the Õ(n/k) of Klauck et al. and matching the
// Ω̃(n/k²) lower bound — plus the MST algorithm built on it (§3.1,
// Theorem 2).
//
// The algorithm is Boruvka-style. Every vertex starts as its own component,
// labeled by its vertex ID. Each phase:
//
//  1. Every machine builds, per component *part* it holds, the sum of fresh
//     l0-sketches of its vertices' edge-incidence vectors (§2.3) and sends
//     it to the component's random proxy machine h(phase, label) (§2.2).
//  2. The proxy sums the part sketches — intra-component edges cancel by
//     linearity — and samples one outgoing edge (§2.4).
//  3. The proxy learns the label of the neighboring component by querying
//     the sampled endpoint's home machine.
//  4. Distributed random ranking (§2.5): the component connects to the
//     sampled neighbor iff the neighbor's (shared-hash) rank is higher,
//     yielding a forest of O(log n)-deep trees (Lemma 6).
//  5. Each tree collapses to its root label. The default implementation is
//     pointer doubling over per-iteration re-randomized proxies (O(log
//     depth) iterations); CollapseLevelWise switches to the paper-exact
//     one-step parent chase (O(depth) iterations, Lemma 5) for the E10
//     ablation.
//  6. Root labels are broadcast to all machines holding parts, which
//     relabel their vertices. Phases repeat until no component merges and
//     no sketch sampling failed (Lemma 7: O(log n) phases w.h.p.).
//
// Steps 4–6 are the shared merge/DRR engine (Merger, merge.go), reused by
// the MST algorithm and by the dynamic subsystem's incremental queries.
//
// EdgeCheckSelection replaces step 1–3 with the GHS-style strategy the
// paper argues against (§1.2): every phase, query the current label of
// every neighbor across every edge, and pick an outgoing edge directly.
// Its per-phase traffic is Θ(m) instead of Θ̃(n), isolating exactly the
// contribution of linear sketching (ablation in experiment E1).
//
// All communication goes through proxy.Comm exchanges, so the engine's
// per-link bandwidth accounting prices every step exactly as Lemma 1 does.
//
//km:roundpure
package core

import (
	"context"
	"fmt"
	"sort"

	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/proxy"
	"kmgraph/internal/sketch"
	"kmgraph/internal/wire"
)

// Config parameterizes a connectivity run.
type Config struct {
	// K is the number of machines.
	K int
	// BandwidthBits is the per-link budget; 0 selects kmachine.Bandwidth(n).
	BandwidthBits int
	// Seed drives the random vertex partition and all private coins.
	Seed int64
	// MaxPhases caps Boruvka phases; 0 selects 12·ceil(log2 n) + 4
	// (Lemma 7's bound plus slack).
	MaxPhases int
	// Sketch overrides sketch parameters; zero value selects
	// sketch.DefaultParams(n).
	Sketch sketch.Params
	// CollapseLevelWise selects the paper-exact O(depth) tree collapse
	// instead of pointer doubling (ablation E10).
	CollapseLevelWise bool
	// CoinMerge selects the paper's footnote-9 alternative to DRR trees:
	// every component draws a shared-hash coin, and a merge happens only
	// along edges from a 0-component to a 1-component. Trees have depth 1
	// (no chains at all), at the cost of a lower per-phase merge
	// probability (1/4 vs 1/2); the paper notes the same O~(n/k²) bound.
	CoinMerge bool
	// EdgeCheckSelection selects outgoing edges by querying every
	// neighbor's label across every edge (GHS-style baseline) instead of
	// by sketching.
	EdgeCheckSelection bool
	// FaithfulRandomness additionally distributes Θ(n/k) shared random
	// bytes from machine 1 by relay broadcast and drives proxy selection
	// through the d-wise independent polynomial family built from them
	// (§2.2 faithful path; see DESIGN.md substitution #2).
	FaithfulRandomness bool
	// CountComponents additionally runs the paper's §2.6 output protocol:
	// every machine reports each label it holds to that label's proxy,
	// the proxies deduplicate and forward distinct labels to machine 0,
	// which outputs the component count — all within the model. The count
	// lands in Result.ProtocolCount.
	CountComponents bool
	// MaxRounds aborts runaway executions (0 = engine default).
	MaxRounds int
	// MessageOverheadBits models per-message framing (0 = 64).
	MessageOverheadBits int
	// PhaseHook, when set, is called by the machine whose ID equals
	// PhaseHookID right after each phase's end-of-phase collective, with
	// the phase index and that machine's completed round count. It is
	// observation only — it must not communicate or mutate state — and
	// is never part of a distributed job spec: each participant installs
	// its own (a worker hooks its lowest hosted machine).
	PhaseHook   func(phase, round int) `json:"-"`
	PhaseHookID int                    `json:"-"`
}

func (c Config) withDefaults(n int) Config {
	if c.BandwidthBits == 0 {
		c.BandwidthBits = kmachine.Bandwidth(n)
	}
	if c.MaxPhases == 0 {
		l := 0
		for s := 1; s < n; s <<= 1 {
			l++
		}
		c.MaxPhases = 12*l + 4
	}
	if c.Sketch == (sketch.Params{}) {
		c.Sketch = sketch.DefaultParams(n)
	}
	if c.MessageOverheadBits == 0 {
		c.MessageOverheadBits = 64
	}
	return c
}

// WithDefaults resolves zero-valued fields for an n-vertex input exactly as
// a static run would (exported for the dynamic subsystem, which shares the
// configuration semantics).
func (c Config) WithDefaults(n int) Config { return c.withDefaults(n) }

// Result is the outcome of a connectivity run.
type Result struct {
	// Labels[v] is the final component label of vertex v; two vertices
	// have equal labels iff they are in the same connected component
	// (w.h.p.). Labels are vertex IDs of component members.
	Labels []uint64
	// Components is the number of distinct labels.
	Components int
	// ProtocolCount is the component count computed *inside the model* by
	// the §2.6 output protocol (only when Config.CountComponents is set;
	// -1 otherwise). It must equal Components.
	ProtocolCount int
	// Phases is the number of Boruvka phases executed.
	Phases int
	// SketchFailures counts failed l0-sample recoveries across the run.
	SketchFailures int64
	// CollapseIters is the total number of tree-collapse iterations across
	// all phases (pointer doubling: O(log depth) per phase; level-wise:
	// O(depth) per phase — the Lemma 5 ablation quantity).
	CollapseIters int
	// PhaseRounds records the engine round count at the end of each phase
	// (as observed by machine 0), for per-phase cost analysis.
	PhaseRounds []int
	// Metrics is the engine's cost accounting.
	Metrics kmachine.Metrics
}

// machineOutput is each machine's designated output variable o_i.
type machineOutput struct {
	labels        map[int]uint64
	failures      int64
	phases        int
	collapseIters int
	protocolCount int // §2.6 count at machine 0; -1 elsewhere/disabled
	phaseRounds   []int
}

// Run executes the connectivity algorithm on g under a fresh random vertex
// partition and returns the component labeling.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	return RunContext(context.Background(), g, cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled or its
// deadline passes, the underlying cluster aborts and ctx.Err() is
// returned.
func RunContext(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	return RunWithPartitionContext(ctx, g, kmachine.NewRVP(g, cfg.K, uint64(cfg.Seed)^0x9e37), cfg)
}

// RunWithPartition executes the connectivity algorithm under a caller-
// provided vertex partition (the lower-bound harness prescribes placement
// per the two-party reduction; everything else uses Run's RVP).
func RunWithPartition(g *graph.Graph, part *kmachine.VertexPartition, cfg Config) (*Result, error) {
	return RunWithPartitionContext(context.Background(), g, part, cfg)
}

// RunSource executes the connectivity algorithm shard-direct: src is
// streamed once per loader pass, each endpoint hashed to its owner
// machine, and per-machine adjacency shards filled in place — no global
// graph.Graph is ever built. Results and Metrics are bit-identical to
// Run on the materialized graph with the same seed.
func RunSource(src graph.EdgeSource, cfg Config) (*Result, error) {
	return RunSourceContext(context.Background(), src, cfg)
}

// RunSourceContext is RunSource with cancellation.
func RunSourceContext(ctx context.Context, src graph.EdgeSource, cfg Config) (*Result, error) {
	part, err := kmachine.LoadShards(src, cfg.K, uint64(cfg.Seed)^0x9e37)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(part.N())
	cluster, err := kmachine.New(kmachine.Config{
		K:                   cfg.K,
		BandwidthBits:       cfg.BandwidthBits,
		MessageOverheadBits: cfg.MessageOverheadBits,
		Seed:                cfg.Seed,
		MaxRounds:           cfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}
	res, err := cluster.RunContext(ctx, func(mctx *kmachine.Ctx) error {
		m := newMachine(mctx, part.View(mctx.ID()), cfg)
		return m.run()
	})
	if err != nil {
		return nil, err
	}
	return assemble(part.N(), res)
}

// RunWithPartitionContext is RunWithPartition with cancellation.
func RunWithPartitionContext(ctx context.Context, g *graph.Graph, part *kmachine.VertexPartition, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(g.N())
	cluster, err := kmachine.New(kmachine.Config{
		K:                   cfg.K,
		BandwidthBits:       cfg.BandwidthBits,
		MessageOverheadBits: cfg.MessageOverheadBits,
		Seed:                cfg.Seed,
		MaxRounds:           cfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}
	res, err := cluster.RunContext(ctx, func(mctx *kmachine.Ctx) error {
		m := newMachine(mctx, part.View(mctx.ID()), cfg)
		return m.run()
	})
	if err != nil {
		return nil, err
	}
	return assemble(g.N(), res)
}

func assemble(n int, res *kmachine.Result) (*Result, error) {
	out := &Result{Labels: make([]uint64, n), Metrics: res.Metrics, ProtocolCount: -1}
	seen := make(map[uint64]bool)
	assigned := 0
	for i, o := range res.Outputs {
		mo, ok := o.(*machineOutput)
		if !ok {
			return nil, fmt.Errorf("core: machine %d produced no output", i)
		}
		for v, l := range mo.labels {
			out.Labels[v] = l
			seen[l] = true
			assigned++
		}
		out.SketchFailures += mo.failures
		if mo.phases > out.Phases {
			out.Phases = mo.phases
		}
		if mo.collapseIters > out.CollapseIters {
			out.CollapseIters = mo.collapseIters
		}
		if mo.protocolCount >= 0 {
			out.ProtocolCount = mo.protocolCount
		}
		if mo.phaseRounds != nil {
			out.PhaseRounds = mo.phaseRounds
		}
	}
	if assigned != n {
		return nil, fmt.Errorf("core: %d of %d vertices labeled", assigned, n)
	}
	out.Components = len(seen)
	return out, nil
}

// machine is the static connectivity machine: the shared merge engine plus
// the per-phase selection strategies.
type machine struct {
	*Merger
}

func newMachine(ctx *kmachine.Ctx, view GraphView, cfg Config) *machine {
	return &machine{Merger: NewMerger(ctx, view, cfg)}
}

func (m *machine) run() error {
	defer m.ReleasePools()
	if err := m.Setup(); err != nil {
		return err
	}
	out := &machineOutput{}
	for m.Phase = 0; m.Phase < m.Cfg.MaxPhases; m.Phase++ {
		m.StateSlot = 0
		m.PhaseActive = 0
		if m.Cfg.EdgeCheckSelection {
			m.selectEdgeCheck()
		} else {
			m.SelectSketch()
		}
		m.Collapse()
		m.BroadcastAndRelabel()
		active, failures, _ := m.PhaseSync()
		if m.Ctx.ID() == 0 {
			out.phaseRounds = append(out.phaseRounds, m.Ctx.Round())
		}
		if m.Cfg.PhaseHook != nil && m.Ctx.ID() == m.Cfg.PhaseHookID {
			m.Cfg.PhaseHook(m.Phase, m.Ctx.Round())
		}
		out.phases = m.Phase + 1
		if active == 0 && failures == 0 {
			break
		}
	}
	out.protocolCount = -1
	if m.Cfg.CountComponents {
		out.protocolCount = m.countComponents()
	}
	out.labels = m.Labels
	out.failures = m.Failures
	out.collapseIters = m.CollapseIters
	m.Ctx.SetOutput(out)
	return nil
}

// countComponents is the paper's §2.6 output protocol: every machine sends
// "YES" for each label it holds to that label's proxy (Lemma 1 pricing);
// the proxies forward the distinct labels they proxy to machine 0, which
// returns the count (and -1 is returned on all other machines).
func (m *machine) countComponents() int {
	// Collect the distinct labels first, then emit in sorted order: the
	// send order reaches the proxies' recorded streams, and building it
	// from map iteration would shuffle it per run.
	var out []proxy.Out
	seen := make(map[uint64]bool)
	for _, l := range m.Labels {
		seen[l] = true
	}
	for _, l := range SortedKeys(seen) {
		out = append(out, proxy.Out{
			Dst:  m.ProxyOf(0, l),
			Data: wire.AppendUvarint(nil, l),
		})
	}
	recv := m.Comm.Exchange(out)
	distinct := make(map[uint64]bool)
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		distinct[r.Uvarint()] = true
	}
	out = nil
	for _, l := range SortedKeys(distinct) {
		out = append(out, proxy.Out{Dst: 0, Data: wire.AppendUvarint(nil, l)})
	}
	recv = m.Comm.Exchange(out)
	if m.Ctx.ID() != 0 {
		return -1
	}
	count := make(map[uint64]bool)
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		count[r.Uvarint()] = true
	}
	return len(count)
}

// selectEdgeCheck is the GHS-style baseline: learn the label of every
// neighbor across every edge (Θ(m) traffic per phase), then nominate the
// smallest outgoing edge per part directly.
func (m *machine) selectEdgeCheck() {
	k := m.Ctx.K()
	parts := m.Parts()

	// Query each distinct neighbor's label, batched per home machine.
	nbrByDst := make(map[int]map[int]bool)
	for _, v := range m.View.Owned() {
		for _, h := range m.View.Adj(v) {
			dst := m.View.Home(h.To)
			if nbrByDst[dst] == nil {
				nbrByDst[dst] = make(map[int]bool)
			}
			nbrByDst[dst][h.To] = true
		}
	}
	var out []proxy.Out
	for dst := 0; dst < k; dst++ {
		set := nbrByDst[dst]
		if len(set) == 0 {
			continue
		}
		vs := make([]int, 0, len(set))
		for v := range set {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		buf := wire.AppendUvarint(nil, uint64(len(vs)))
		for _, v := range vs {
			buf = wire.AppendUvarint(buf, uint64(v))
		}
		out = append(out, proxy.Out{Dst: dst, Data: buf})
	}
	recv := m.Comm.Exchange(out)

	// Answer label batches.
	out = nil
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		cnt := int(r.Uvarint())
		rep := wire.AppendUvarint(nil, uint64(cnt))
		for i := 0; i < cnt; i++ {
			v := int(r.Uvarint())
			rep = wire.AppendUvarint(rep, uint64(v))
			rep = wire.AppendUvarint(rep, m.Labels[v])
		}
		out = append(out, proxy.Out{Dst: msg.Src, Data: rep})
	}
	recv = m.Comm.Exchange(out)
	nbrLabel := make(map[int]uint64)
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		cnt := int(r.Uvarint())
		for i := 0; i < cnt; i++ {
			v := int(r.Uvarint())
			nbrLabel[v] = r.Uvarint()
		}
	}

	// Nominate the minimum outgoing edge (by edge ID) per part.
	n := m.View.N()
	out = nil
	for _, label := range SortedKeys(parts) {
		bestID := uint64(1) << 63
		var bestTarget uint64
		found := false
		for _, v := range parts[label] {
			for _, h := range m.View.Adj(v) {
				if nbrLabel[h.To] == label {
					continue
				}
				id := graph.EdgeID(v, h.To, n)
				if !found || id < bestID {
					bestID, bestTarget, found = id, nbrLabel[h.To], true
				}
			}
		}
		buf := wire.AppendUvarint(nil, label)
		buf = wire.AppendBool(buf, found)
		buf = wire.AppendUvarint(buf, bestID)
		buf = wire.AppendUvarint(buf, bestTarget)
		out = append(out, proxy.Out{Dst: m.ProxyOf(0, label), Data: buf})
	}
	recv = m.Comm.Exchange(out)

	// Proxy side: pick the overall minimum candidate per component.
	m.ResetStates()
	cand := make(map[uint64]uint64)   // label -> best edge id
	target := make(map[uint64]uint64) // label -> target label
	hasCand := make(map[uint64]bool)  // label -> any candidate
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		label := r.Uvarint()
		found := r.Bool()
		id := r.Uvarint()
		tgt := r.Uvarint()
		st := m.States[label]
		if st == nil {
			st = m.NewState(label)
			m.States[label] = st
		}
		st.Holders[msg.Src/8] |= 1 << uint(msg.Src%8)
		if found && (!hasCand[label] || id < cand[label]) {
			cand[label] = id
			target[label] = tgt
			hasCand[label] = true
		}
	}
	for label, st := range m.States {
		if hasCand[label] {
			m.PhaseActive++
			m.ApplyRank(st, target[label])
		}
	}
}
