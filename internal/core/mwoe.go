// MWOE is the per-phase minimum-weight-outgoing-edge selector of the MST
// algorithm (§3.1), extracted from the one-shot MST machine so the
// resident substrate can run MST jobs against an already-loaded cluster:
// it operates on any Merger (static LocalView or the resident mutable
// view) and records the MST edges it decides on the proxy machines.

package core

import (
	"fmt"

	"kmgraph/internal/graph"
	"kmgraph/internal/proxy"
	"kmgraph/internal/sketch"
	"kmgraph/internal/wire"
)

const (
	tagThreshold = byte(1)
	tagState     = byte(2)
)

// edgeLessHalf reports whether edge (u, h) precedes threshold (tw, tid)
// in the (weight, edge ID) total order.
func edgeLessHalf(u int, h graph.Half, n int, tw int64, tid uint64) bool {
	if h.W != tw {
		return h.W < tw
	}
	return graph.EdgeID(u, h.To, n) < tid
}

// MWOE drives MWOE selection phases over a Merger. Edges accumulates the
// decided MST edges known to this machine (the weak output criterion:
// every MST edge is known to the proxy that recorded it).
type MWOE struct {
	M            *Merger
	MaxElimIters int
	Edges        map[uint64]graph.Edge
	ElimIters    int
}

// NewMWOE returns an MWOE selector over m. maxElimIters caps elimination
// iterations per phase.
func NewMWOE(m *Merger, maxElimIters int) *MWOE {
	return &MWOE{M: m, MaxElimIters: maxElimIters, Edges: make(map[uint64]graph.Edge)}
}

// Select runs the per-phase elimination loop (§3.1) and leaves, in
// m.States, each component's MWOE decision with DRR parent applied.
func (w *MWOE) Select() {
	m := w.M
	k := m.Ctx.K()
	n := m.View.N()
	parts := m.Parts()

	// Iteration 0: unfiltered sketches, exactly as connectivity.
	seed := m.Sh.SketchSeed(m.Phase, 0)
	var out []proxy.Out
	for _, label := range SortedKeys(parts) {
		sk := sketch.New(m.Cfg.Sketch, seed)
		for _, v := range parts[label] {
			sk.AddVertex(v, m.View.Adj(v), nil)
		}
		buf := wire.AppendUvarint(nil, label)
		buf = sk.EncodeTo(buf)
		out = append(out, proxy.Out{Dst: m.ProxyOf(0, label), Data: buf})
	}
	recv := m.Comm.Exchange(out)

	m.States = make(map[uint64]*CompState)
	sums := make(map[uint64]*sketch.Sketch)
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		label := r.Uvarint()
		sk, err := sketch.Decode(m.Cfg.Sketch, seed, msg.Data[len(msg.Data)-r.Len():])
		if err != nil {
			panic(fmt.Sprintf("core: bad sketch from %d: %v", msg.Src, err))
		}
		st := m.States[label]
		if st == nil {
			st = NewCompState(label, k)
			m.States[label] = st
			sums[label] = sk
		} else if err := sums[label].Add(sk); err != nil {
			panic(err)
		}
		st.Holders[msg.Src/8] |= 1 << uint(msg.Src%8)
	}

	active := w.sampleAndResolve(sums)

	// Elimination iterations: threshold broadcast, filtered re-sketch,
	// re-sample, until every component's sampler comes back empty (or the
	// job is cancelled — the verdict rides the same collective, so all
	// machines break together).
	for s := 1; ; s++ {
		ac := m.Comm.AllSum(active | m.CancelBit()<<cancelShift)
		if ac>>cancelShift > 0 {
			// Cancelled mid-elimination: discard undecided components and
			// finish the phase; the phase loop observes the cancellation at
			// its PhaseSync and stops.
			for _, st := range m.States {
				if !st.ElimDone {
					st.ElimDone = true
					st.HasBest = false
					st.Cur, st.Parent = st.Label, st.Label
				}
			}
			break
		}
		if ac&(1<<cancelShift-1) == 0 {
			break
		}
		w.ElimIters++
		if s > w.MaxElimIters {
			// Truncated: discard this phase's decision for the remaining
			// active components (conservative; negligible probability).
			for _, st := range m.States {
				if !st.ElimDone {
					st.ElimDone = true
					st.HasBest = false
					st.Cur, st.Parent = st.Label, st.Label
					m.Failures++
				}
			}
			break
		}

		// Combined exchange: thresholds to part holders + state handoff.
		out = nil
		newStates := make(map[uint64]*CompState)
		thresholds := make(map[uint64][2]uint64) // label -> {weight(bits), id}
		for _, label := range SortedKeys(m.States) {
			st := m.States[label]
			if st.HasBest && !st.ElimDone {
				buf := []byte{tagThreshold}
				buf = wire.AppendUvarint(buf, st.Label)
				buf = wire.AppendVarint(buf, st.BestW)
				buf = wire.AppendUvarint(buf, graph.EdgeID(st.BestU, st.BestV, n))
				for h := 0; h < k; h++ {
					if st.Holders[h/8]&(1<<uint(h%8)) != 0 {
						out = append(out, proxy.Out{Dst: h, Data: buf})
					}
				}
			}
			dst := m.ProxyOf(m.StateSlot+1, label)
			if dst == m.Ctx.ID() {
				newStates[label] = st
			} else {
				out = append(out, proxy.Out{Dst: dst, Data: append([]byte{tagState}, st.Encode(nil)...)})
			}
		}
		recv = m.Comm.Exchange(out)
		for _, msg := range recv {
			switch msg.Data[0] {
			case tagThreshold:
				r := wire.NewReader(msg.Data[1:])
				label := r.Uvarint()
				wgt := r.Varint()
				id := r.Uvarint()
				thresholds[label] = [2]uint64{uint64(wgt), id}
			case tagState:
				r := wire.NewReader(msg.Data[1:])
				st := DecodeState(r)
				newStates[st.Label] = st
			default:
				panic("core: unknown elimination message tag")
			}
		}
		m.States = newStates
		m.StateSlot++

		// Filtered part re-sketches to the (new) proxies.
		seed = m.Sh.SketchSeed(m.Phase, s)
		out = nil
		for _, label := range SortedKeys(thresholds) {
			th := thresholds[label]
			tw, tid := int64(th[0]), th[1]
			sk := sketch.New(m.Cfg.Sketch, seed)
			for _, v := range parts[label] {
				sk.AddVertex(v, m.View.Adj(v), func(u int, h graph.Half) bool {
					return edgeLessHalf(u, h, n, tw, tid)
				})
			}
			buf := wire.AppendUvarint(nil, label)
			buf = sk.EncodeTo(buf)
			out = append(out, proxy.Out{Dst: m.ProxyOf(m.StateSlot, label), Data: buf})
		}
		recv = m.Comm.Exchange(out)

		sums = make(map[uint64]*sketch.Sketch)
		for _, msg := range recv {
			r := wire.NewReader(msg.Data)
			label := r.Uvarint()
			sk, err := sketch.Decode(m.Cfg.Sketch, seed, msg.Data[len(msg.Data)-r.Len():])
			if err != nil {
				panic(err)
			}
			if sums[label] == nil {
				sums[label] = sk
			} else if err := sums[label].Add(sk); err != nil {
				panic(err)
			}
		}
		active = w.sampleAndResolve(sums)
	}

	// Decisions: record MWOEs as MST edges and apply the merge rule.
	for _, label := range SortedKeys(m.States) {
		st := m.States[label]
		if st.ElimDone && st.HasBest {
			u, v := st.BestU, st.BestV
			w.Edges[graph.EdgeID(u, v, n)] = graph.Edge{U: u, V: v, W: st.BestW}
			m.PhaseActive++
			m.ApplyRank(st, st.TargetLabel)
		}
	}
}

// sampleAndResolve samples each summed sketch, resolves neighbor labels and
// edge weights via home-machine queries, updates component states, and
// returns the local count of components still eliminating.
//
// A component whose filtered vector comes back empty has converged: the
// current best edge is the MWOE.
func (w *MWOE) sampleAndResolve(sums map[uint64]*sketch.Sketch) uint64 {
	m := w.M
	var out []proxy.Out
	pendingEdge := make(map[uint64][2]int) // label -> sampled (x, y)
	for _, label := range SortedKeys(sums) {
		st := m.States[label]
		if st == nil {
			panic("core: sketch sum for unknown state")
		}
		if st.ElimDone {
			continue
		}
		x, y, insideSmaller, status := sums[label].SampleEdge()
		switch status {
		case sketch.Empty:
			// Nothing lighter remains. If a best edge exists, it is the
			// MWOE; otherwise the component has no outgoing edges at all.
			st.ElimDone = true
		case sketch.Failed:
			m.Failures++
			st.ElimDone = true
			st.HasBest = false
		case sketch.Sampled:
			outside := x
			if insideSmaller {
				outside = y
			}
			pendingEdge[label] = [2]int{x, y}
			q := wire.AppendUvarint(nil, uint64(outside))
			q = wire.AppendUvarint(q, uint64(x))
			q = wire.AppendUvarint(q, uint64(y))
			q = wire.AppendUvarint(q, label)
			out = append(out, proxy.Out{Dst: m.View.Home(outside), Data: q})
		}
	}
	recv := m.Comm.Exchange(out)
	out = m.AnswerLabelQueries(recv)
	recv = m.Comm.Exchange(out)

	var active uint64
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		askLabel := r.Uvarint()
		nbrLabel := r.Uvarint()
		valid := r.Bool()
		wgt := r.Varint()
		st := m.States[askLabel]
		if st == nil {
			panic("core: MST reply for unknown component")
		}
		if !valid || nbrLabel == askLabel {
			m.Failures++
			st.ElimDone = true
			st.HasBest = false
			continue
		}
		xy := pendingEdge[askLabel]
		st.HasBest = true
		st.BestU, st.BestV = xy[0], xy[1]
		st.BestW = wgt
		st.TargetLabel = nbrLabel
		active++
	}
	return active
}

// DisseminateStrong routes every recorded MST edge to the home machines of
// both endpoints (Theorem 2(b)'s output criterion) and returns this
// machine's vertex-to-incident-MST-edges map.
func (w *MWOE) DisseminateStrong() map[int][]graph.Edge {
	m := w.M
	n := m.View.N()
	var out []proxy.Out
	for _, id := range SortedKeys(w.Edges) {
		e := w.Edges[id]
		buf := wire.AppendUvarint(nil, uint64(e.U))
		buf = wire.AppendUvarint(buf, uint64(e.V))
		buf = wire.AppendVarint(buf, e.W)
		hu, hv := m.View.Home(e.U), m.View.Home(e.V)
		out = append(out, proxy.Out{Dst: hu, Data: buf})
		if hv != hu {
			out = append(out, proxy.Out{Dst: hv, Data: buf})
		}
	}
	recv := m.Comm.Exchange(out)
	seen := make(map[int]map[uint64]bool)
	ve := make(map[int][]graph.Edge)
	add := func(v int, e graph.Edge) {
		if m.View.Home(v) != m.Ctx.ID() {
			return
		}
		id := graph.EdgeID(e.U, e.V, n)
		if seen[v] == nil {
			seen[v] = make(map[uint64]bool)
		}
		if seen[v][id] {
			return
		}
		seen[v][id] = true
		ve[v] = append(ve[v], e)
	}
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		e := graph.Edge{U: int(r.Uvarint()), V: int(r.Uvarint()), W: r.Varint()}
		add(e.U, e)
		add(e.V, e)
	}
	return ve
}
