// MWOE is the per-phase minimum-weight-outgoing-edge selector of the MST
// algorithm (§3.1), extracted from the one-shot MST machine so the
// resident substrate can run MST jobs against an already-loaded cluster:
// it operates on any Merger (static LocalView or the resident mutable
// view) and records the MST edges it decides on the proxy machines.

package core

import (
	"kmgraph/internal/graph"
	"kmgraph/internal/proxy"
	"kmgraph/internal/sketch"
	"kmgraph/internal/wire"
)

const (
	tagThreshold = byte(1)
	tagState     = byte(2)
)

// edgeLessHalf reports whether edge (u, h) precedes threshold (tw, tid)
// in the (weight, edge ID) total order.
func edgeLessHalf(u int, h graph.Half, n int, tw int64, tid uint64) bool {
	if h.W != tw {
		return h.W < tw
	}
	return graph.EdgeID(u, h.To, n) < tid
}

// MWOE drives MWOE selection phases over a Merger. Edges accumulates the
// decided MST edges known to this machine (the weak output criterion:
// every MST edge is known to the proxy that recorded it).
type MWOE struct {
	M            *Merger
	MaxElimIters int
	Edges        map[uint64]graph.Edge
	ElimIters    int
}

// NewMWOE returns an MWOE selector over m. maxElimIters caps elimination
// iterations per phase.
func NewMWOE(m *Merger, maxElimIters int) *MWOE {
	return &MWOE{M: m, MaxElimIters: maxElimIters, Edges: make(map[uint64]graph.Edge)}
}

// Select runs the per-phase elimination loop (§3.1) and leaves, in
// m.States, each component's MWOE decision with DRR parent applied.
func (w *MWOE) Select() {
	m := w.M
	k := m.Ctx.K()
	n := m.View.N()
	parts := m.Parts()

	// Iteration 0: unfiltered sketches, exactly as connectivity.
	seed := m.Sh.SketchSeed(m.Phase, 0)
	a := m.Comm.Arena()
	var out []proxy.Out
	part := m.Pool().Get(seed)
	for _, label := range SortedKeys(parts) {
		for _, v := range parts[label] {
			part.AddVertex(v, m.View.Adj(v), nil)
		}
		out = append(out, proxy.Out{Dst: m.ProxyOf(0, label), Data: m.SketchPayload(label, part), Framed: true})
		part.Reset()
	}
	m.Pool().Put(part)
	recv := m.Comm.Exchange(out)

	m.AccumulateParts(recv, seed)

	active := w.sampleAndResolve()

	// Elimination iterations: threshold broadcast, filtered re-sketch,
	// re-sample, until every component's sampler comes back empty (or the
	// job is cancelled — the verdict rides the same collective, so all
	// machines break together).
	for s := 1; ; s++ {
		ac := m.Comm.AllSum(active | m.CancelBit()<<cancelShift)
		if ac>>cancelShift > 0 {
			// Cancelled mid-elimination: discard undecided components and
			// finish the phase; the phase loop observes the cancellation at
			// its PhaseSync and stops.
			for _, st := range m.States {
				if !st.ElimDone {
					st.ElimDone = true
					st.HasBest = false
					st.Cur, st.Parent = st.Label, st.Label
				}
			}
			break
		}
		if ac&(1<<cancelShift-1) == 0 {
			break
		}
		w.ElimIters++
		if s > w.MaxElimIters {
			// Truncated: discard this phase's decision for the remaining
			// active components (conservative; negligible probability).
			for _, st := range m.States {
				if !st.ElimDone {
					st.ElimDone = true
					st.HasBest = false
					st.Cur, st.Parent = st.Label, st.Label
					m.Failures++
				}
			}
			break
		}

		// Combined exchange: thresholds to part holders + state handoff.
		out = nil
		newStates := m.takeSpareStates()
		thresholds := make(map[uint64][2]uint64) // label -> {weight(bits), id}
		for _, label := range m.StateKeys() {
			st := m.States[label]
			if st.HasBest && !st.ElimDone {
				buf := a.Grab(40)
				buf = append(buf, tagThreshold)
				buf = wire.AppendUvarint(buf, st.Label)
				buf = wire.AppendVarint(buf, st.BestW)
				buf = wire.AppendUvarint(buf, graph.EdgeID(st.BestU, st.BestV, n))
				data := a.Commit(buf)
				for h := 0; h < k; h++ {
					if st.Holders[h/8]&(1<<uint(h%8)) != 0 {
						out = append(out, proxy.Out{Dst: h, Data: data})
					}
				}
			}
			dst := m.ProxyOf(m.StateSlot+1, label)
			if dst == m.Ctx.ID() {
				newStates[label] = st
			} else {
				buf := a.Grab(97 + len(st.Holders))
				buf = append(buf, tagState)
				buf = st.Encode(buf)
				out = append(out, proxy.Out{Dst: dst, Data: a.Commit(buf)})
				m.stFree = append(m.stFree, st)
			}
		}
		recv = m.Comm.Exchange(out)
		for _, msg := range recv {
			switch msg.Data[0] {
			case tagThreshold:
				r := wire.NewReader(msg.Data[1:])
				label := r.Uvarint()
				wgt := r.Varint()
				id := r.Uvarint()
				thresholds[label] = [2]uint64{uint64(wgt), id}
			case tagState:
				r := wire.NewReader(msg.Data[1:])
				st := m.DecodeStateInto(r)
				newStates[st.Label] = st
			default:
				panic("core: unknown elimination message tag")
			}
		}
		m.putSpareStates(m.States)
		m.States = newStates
		m.StateSlot++

		// Filtered part re-sketches to the (new) proxies.
		seed = m.Sh.SketchSeed(m.Phase, s)
		out = nil
		part := m.Pool().Get(seed)
		for _, label := range SortedKeys(thresholds) {
			th := thresholds[label]
			tw, tid := int64(th[0]), th[1]
			for _, v := range parts[label] {
				part.AddVertex(v, m.View.Adj(v), func(u int, h graph.Half) bool {
					return edgeLessHalf(u, h, n, tw, tid)
				})
			}
			out = append(out, proxy.Out{Dst: m.ProxyOf(m.StateSlot, label), Data: m.SketchPayload(label, part), Framed: true})
			part.Reset()
		}
		m.Pool().Put(part)
		recv = m.Comm.Exchange(out)

		for _, msg := range recv {
			r := wire.NewReader(msg.Data)
			label := r.Uvarint()
			st := m.States[label]
			if st == nil {
				panic("core: filtered sketch for unknown state")
			}
			if st.Sum == nil {
				st.Sum = m.Pool().Get(seed)
			}
			if err := st.Sum.AddEncoded(msg.Data[len(msg.Data)-r.Len():]); err != nil {
				panic(err)
			}
		}
		active = w.sampleAndResolve()
	}

	// Decisions: record MWOEs as MST edges and apply the merge rule.
	for _, label := range m.StateKeys() {
		st := m.States[label]
		if st.ElimDone && st.HasBest {
			u, v := st.BestU, st.BestV
			w.Edges[graph.EdgeID(u, v, n)] = graph.Edge{U: u, V: v, W: st.BestW}
			m.PhaseActive++
			m.ApplyRank(st, st.TargetLabel)
		}
	}
}

// sampleAndResolve samples each state's summed sketch, resolves neighbor
// labels and edge weights via home-machine queries, updates component
// states, and returns the local count of components still eliminating.
//
// A component whose filtered vector comes back empty has converged: the
// current best edge is the MWOE.
func (w *MWOE) sampleAndResolve() uint64 {
	m := w.M
	a := m.Comm.Arena()
	var out []proxy.Out
	for _, label := range m.StateKeys() {
		st := m.States[label]
		if st.ElimDone || st.Sum == nil {
			continue
		}
		sk := st.Sum
		st.Sum = nil
		x, y, insideSmaller, status := sk.SampleEdge()
		m.Pool().Put(sk)
		switch status {
		case sketch.Empty:
			// Nothing lighter remains. If a best edge exists, it is the
			// MWOE; otherwise the component has no outgoing edges at all.
			st.ElimDone = true
		case sketch.Failed:
			m.Failures++
			st.ElimDone = true
			st.HasBest = false
		case sketch.Sampled:
			outside := x
			if insideSmaller {
				outside = y
			}
			st.PendU, st.PendV = x, y
			q := a.Grab(40)
			q = wire.AppendUvarint(q, uint64(outside))
			q = wire.AppendUvarint(q, uint64(x))
			q = wire.AppendUvarint(q, uint64(y))
			q = wire.AppendUvarint(q, label)
			out = append(out, proxy.Out{Dst: m.View.Home(outside), Data: a.Commit(q)})
		}
	}
	recv := m.Comm.Exchange(out)
	out = m.AnswerLabelQueries(recv)
	recv = m.Comm.Exchange(out)

	var active uint64
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		askLabel := r.Uvarint()
		nbrLabel := r.Uvarint()
		valid := r.Bool()
		wgt := r.Varint()
		st := m.States[askLabel]
		if st == nil {
			panic("core: MST reply for unknown component")
		}
		if !valid || nbrLabel == askLabel {
			m.Failures++
			st.ElimDone = true
			st.HasBest = false
			continue
		}
		st.HasBest = true
		st.BestU, st.BestV = st.PendU, st.PendV
		st.BestW = wgt
		st.TargetLabel = nbrLabel
		active++
	}
	return active
}

// DisseminateStrong routes every recorded MST edge to the home machines of
// both endpoints (Theorem 2(b)'s output criterion) and returns this
// machine's vertex-to-incident-MST-edges map.
func (w *MWOE) DisseminateStrong() map[int][]graph.Edge {
	m := w.M
	n := m.View.N()
	a := m.Comm.Arena()
	var out []proxy.Out
	for _, id := range SortedKeys(w.Edges) {
		e := w.Edges[id]
		buf := a.Grab(30)
		buf = wire.AppendUvarint(buf, uint64(e.U))
		buf = wire.AppendUvarint(buf, uint64(e.V))
		buf = wire.AppendVarint(buf, e.W)
		buf = a.Commit(buf)
		hu, hv := m.View.Home(e.U), m.View.Home(e.V)
		out = append(out, proxy.Out{Dst: hu, Data: buf})
		if hv != hu {
			out = append(out, proxy.Out{Dst: hv, Data: buf})
		}
	}
	recv := m.Comm.Exchange(out)
	seen := make(map[int]map[uint64]bool)
	ve := make(map[int][]graph.Edge)
	add := func(v int, e graph.Edge) {
		if m.View.Home(v) != m.Ctx.ID() {
			return
		}
		id := graph.EdgeID(e.U, e.V, n)
		if seen[v] == nil {
			seen[v] = make(map[uint64]bool)
		}
		if seen[v][id] {
			return
		}
		seen[v][id] = true
		ve[v] = append(ve[v], e)
	}
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		e := graph.Edge{U: int(r.Uvarint()), V: int(r.Uvarint()), W: r.Varint()}
		add(e.U, e)
		add(e.V, e)
	}
	return ve
}
