package core

import (
	"reflect"
	"testing"

	"kmgraph/internal/graph"
)

// TestRunSourceBitExact pins that the shard-direct one-shot path is
// indistinguishable from the materialized path: same labels, same
// phases, same full engine Metrics.
func TestRunSourceBitExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"gnm", graph.GNM(600, 1800, 3), 8},
		{"components", graph.DisjointComponents(400, 7, 0.2, 5), 4},
		{"star", graph.Star(257), 5},
	} {
		cfg := Config{K: tc.k, Seed: 42}
		want, err := Run(tc.g, cfg)
		if err != nil {
			t.Fatalf("%s: Run: %v", tc.name, err)
		}
		got, err := RunSource(tc.g.Source(), cfg)
		if err != nil {
			t.Fatalf("%s: RunSource: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got.Labels, want.Labels) {
			t.Fatalf("%s: labels differ between load paths", tc.name)
		}
		if got.Components != want.Components || got.Phases != want.Phases {
			t.Fatalf("%s: got components=%d phases=%d, want %d/%d",
				tc.name, got.Components, got.Phases, want.Components, want.Phases)
		}
		if !reflect.DeepEqual(got.Metrics, want.Metrics) {
			t.Fatalf("%s: Metrics differ between load paths:\n got %+v\nwant %+v",
				tc.name, got.Metrics, want.Metrics)
		}
	}
}
