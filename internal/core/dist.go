// Distribution surface: the hooks a multi-process run needs from the
// algorithm layer. A distributed worker hosts machines [lo, hi) of a
// k-machine cluster behind transport/tcp; it builds the same per-machine
// handler a single-process run would (ConnectivityHandler / MSTHandler
// over its shard views), and ships its hosted machines' designated
// outputs to the coordinator in wire form (AppendOutput / ReadOutput).
// The coordinator reassembles the global result with Assemble /
// AssembleMST over the combined output vector — the exact functions the
// single-process paths use, so the distributed result is bit-identical
// by construction.

package core

import (
	"fmt"
	"sort"

	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/wire"
)

// ConnectivityHandler returns the per-machine connectivity program over
// the given view lookup. cfg must already be resolved (WithDefaults) so
// every participant of a multi-process run agrees on every parameter.
func ConnectivityHandler(view func(id int) GraphView, cfg Config) kmachine.Handler {
	return func(mctx *kmachine.Ctx) error {
		return newMachine(mctx, view(mctx.ID()), cfg).run()
	}
}

// MSTHandler returns the per-machine MST program over the given view
// lookup. cfg must already be resolved (MSTConfig.WithDefaults).
func MSTHandler(view func(id int) GraphView, cfg MSTConfig) kmachine.Handler {
	return func(mctx *kmachine.Ctx) error {
		m := &mstMachine{machine: newMachine(mctx, view(mctx.ID()), cfg.Config), mstCfg: cfg}
		return m.run()
	}
}

// WithDefaults resolves zero-valued fields for an n-vertex input exactly
// as RunMST would.
func (c MSTConfig) WithDefaults(n int) MSTConfig {
	c.Config = c.Config.withDefaults(n)
	if c.MaxElimIters == 0 {
		c.MaxElimIters = DefaultMaxElimIters(n)
	}
	return c
}

// Assemble combines machine outputs into the global connectivity result
// (exported for the distributed coordinator, which gathers Outputs from
// worker processes instead of a local run).
func Assemble(n int, res *kmachine.Result) (*Result, error) { return assemble(n, res) }

// AssembleMST combines machine outputs into the global MST result.
func AssembleMST(n int, res *kmachine.Result) (*MSTResult, error) { return assembleMST(n, res) }

// Output wire tags.
const (
	outputConn = 1
	outputMST  = 2
)

// maxOutputItems bounds decoded collection sizes (a worker output for an
// n-vertex graph never exceeds n entries per collection; the bound only
// guards against corrupt frames allocating unbounded memory).
const maxOutputItems = 1 << 28

// AppendOutput encodes one machine's designated output (as produced by
// the connectivity or MST handler) onto b in wire form.
func AppendOutput(b []byte, o any) ([]byte, error) {
	switch mo := o.(type) {
	case *machineOutput:
		b = append(b, outputConn)
		b = appendLabels(b, mo.labels)
		b = wire.AppendVarint(b, mo.failures)
		b = wire.AppendUvarint(b, uint64(mo.phases))
		b = wire.AppendUvarint(b, uint64(mo.collapseIters))
		b = wire.AppendVarint(b, int64(mo.protocolCount))
		b = wire.AppendBool(b, mo.phaseRounds != nil)
		if mo.phaseRounds != nil {
			b = wire.AppendUvarint(b, uint64(len(mo.phaseRounds)))
			for _, r := range mo.phaseRounds {
				b = wire.AppendUvarint(b, uint64(r))
			}
		}
		return b, nil
	case *mstOutput:
		b = append(b, outputMST)
		b = appendLabels(b, mo.labels)
		b = wire.AppendUvarint(b, uint64(len(mo.edges)))
		for _, e := range mo.edges {
			b = appendEdge(b, e)
		}
		b = wire.AppendBool(b, mo.vertexEdges != nil)
		if mo.vertexEdges != nil {
			vs := make([]int, 0, len(mo.vertexEdges))
			for v := range mo.vertexEdges {
				vs = append(vs, v)
			}
			sort.Ints(vs)
			b = wire.AppendUvarint(b, uint64(len(vs)))
			for _, v := range vs {
				b = wire.AppendUvarint(b, uint64(v))
				es := mo.vertexEdges[v]
				b = wire.AppendUvarint(b, uint64(len(es)))
				for _, e := range es {
					b = appendEdge(b, e)
				}
			}
		}
		b = wire.AppendVarint(b, mo.failures)
		b = wire.AppendUvarint(b, uint64(mo.phases))
		b = wire.AppendUvarint(b, uint64(mo.elimIters))
		b = wire.AppendUvarint(b, uint64(mo.weakRounds))
		return b, nil
	default:
		return nil, fmt.Errorf("core: cannot encode output of type %T", o)
	}
}

// ReadOutput decodes a machine output encoded by AppendOutput.
func ReadOutput(r *wire.Reader) (any, error) {
	tag := int(r.Uvarint())
	switch tag {
	case outputConn:
		mo := &machineOutput{}
		var err error
		if mo.labels, err = readLabels(r); err != nil {
			return nil, err
		}
		mo.failures = r.Varint()
		mo.phases = int(r.Uvarint())
		mo.collapseIters = int(r.Uvarint())
		mo.protocolCount = int(r.Varint())
		if r.Bool() {
			cnt := int(r.Uvarint())
			if err := checkCount(r, cnt); err != nil {
				return nil, err
			}
			mo.phaseRounds = make([]int, cnt)
			for i := range mo.phaseRounds {
				mo.phaseRounds[i] = int(r.Uvarint())
			}
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		return mo, nil
	case outputMST:
		mo := &mstOutput{}
		var err error
		if mo.labels, err = readLabels(r); err != nil {
			return nil, err
		}
		cnt := int(r.Uvarint())
		if err := checkCount(r, cnt); err != nil {
			return nil, err
		}
		for i := 0; i < cnt && r.Err() == nil; i++ {
			mo.edges = append(mo.edges, readEdge(r))
		}
		if r.Bool() {
			mo.vertexEdges = make(map[int][]graph.Edge)
			nv := int(r.Uvarint())
			if err := checkCount(r, nv); err != nil {
				return nil, err
			}
			for i := 0; i < nv && r.Err() == nil; i++ {
				v := int(r.Uvarint())
				ne := int(r.Uvarint())
				if err := checkCount(r, ne); err != nil {
					return nil, err
				}
				es := make([]graph.Edge, 0, min(ne, 1024))
				for j := 0; j < ne && r.Err() == nil; j++ {
					es = append(es, readEdge(r))
				}
				mo.vertexEdges[v] = es
			}
		}
		mo.failures = r.Varint()
		mo.phases = int(r.Uvarint())
		mo.elimIters = int(r.Uvarint())
		mo.weakRounds = int(r.Uvarint())
		if r.Err() != nil {
			return nil, r.Err()
		}
		return mo, nil
	default:
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("core: unknown output tag %d", tag)
	}
}

func appendLabels(b []byte, labels map[int]uint64) []byte {
	vs := make([]int, 0, len(labels))
	for v := range labels {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	b = wire.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = wire.AppendUvarint(b, uint64(v))
		b = wire.AppendUvarint(b, labels[v])
	}
	return b
}

func readLabels(r *wire.Reader) (map[int]uint64, error) {
	cnt := int(r.Uvarint())
	if err := checkCount(r, cnt); err != nil {
		return nil, err
	}
	labels := make(map[int]uint64, min(cnt, 1<<20))
	for i := 0; i < cnt && r.Err() == nil; i++ {
		v := int(r.Uvarint())
		labels[v] = r.Uvarint()
	}
	return labels, r.Err()
}

func appendEdge(b []byte, e graph.Edge) []byte {
	b = wire.AppendUvarint(b, uint64(e.U))
	b = wire.AppendUvarint(b, uint64(e.V))
	b = wire.AppendVarint(b, e.W)
	return b
}

func readEdge(r *wire.Reader) graph.Edge {
	return graph.Edge{U: int(r.Uvarint()), V: int(r.Uvarint()), W: r.Varint()}
}

func checkCount(r *wire.Reader, n int) error {
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 || n > maxOutputItems {
		return fmt.Errorf("core: output collection size %d out of range", n)
	}
	return nil
}
