package core

import (
	"testing"

	"kmgraph/internal/graph"
	"kmgraph/internal/sketch"
)

// Tests for the §2.6 output protocol and robustness under hostile engine
// configurations (tiny bandwidth, tight round caps).

func TestCountComponentsProtocol(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"connected", graph.RandomConnected(150, 300, 1), 1},
		{"five", graph.DisjointComponents(150, 5, 0.3, 2), 5},
		{"edgeless", graph.NewBuilder(30).Build(), 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.g, Config{K: 4, Seed: 3, CountComponents: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.ProtocolCount != tc.want {
				t.Errorf("protocol count = %d, want %d", res.ProtocolCount, tc.want)
			}
			if res.ProtocolCount != res.Components {
				t.Errorf("protocol count %d != host-side count %d",
					res.ProtocolCount, res.Components)
			}
		})
	}
	// Disabled by default.
	res, err := Run(graph.Cycle(20), Config{K: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolCount != -1 {
		t.Errorf("protocol count should be -1 when disabled, got %d", res.ProtocolCount)
	}
}

func TestTinyBandwidthStillCorrect(t *testing.T) {
	// Failure injection: a link budget far below one sketch forces heavy
	// fragmentation; correctness must be unaffected, only rounds.
	g := graph.DisjointComponents(80, 4, 0.4, 5)
	normal, err := Run(g, Config{K: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := Run(g, Config{K: 4, Seed: 6, BandwidthBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Components != 4 || normal.Components != 4 {
		t.Errorf("components %d/%d, want 4", tiny.Components, normal.Components)
	}
	if tiny.Metrics.Rounds <= 4*normal.Metrics.Rounds {
		t.Errorf("tiny bandwidth (%d rounds) should cost far more than normal (%d)",
			tiny.Metrics.Rounds, normal.Metrics.Rounds)
	}
}

func TestMaxRoundsAbortSurfaces(t *testing.T) {
	g := graph.RandomConnected(200, 400, 7)
	_, err := Run(g, Config{K: 4, Seed: 8, MaxRounds: 10})
	if err == nil {
		t.Fatal("expected MaxRounds abort")
	}
}

func TestTinySketchParamsDegradeGracefully(t *testing.T) {
	// Deliberately weak sketches (1 rep, 2 buckets) raise the failure
	// rate; the phase loop must still converge to the right answer
	// because failures are retried with fresh seeds.
	g := graph.RandomConnected(120, 240, 9)
	p := sketch.DefaultParams(120)
	p.Reps = 1
	p.Buckets = 2
	res, err := Run(g, Config{K: 4, Seed: 10, Sketch: p})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 1 {
		t.Errorf("components = %d, want 1", res.Components)
	}
	if res.SketchFailures == 0 {
		t.Log("expected some sketch failures with weak parameters (got none; acceptable)")
	}
}

func TestHighK(t *testing.T) {
	// More machines than "natural": k close to n stresses empty machines
	// and tiny parts.
	g := graph.RandomConnected(64, 128, 11)
	res, err := Run(g, Config{K: 48, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 1 {
		t.Errorf("components = %d", res.Components)
	}
}

func TestCountComponentsWithEdgeCheck(t *testing.T) {
	g := graph.DisjointComponents(100, 7, 0.3, 13)
	res, err := Run(g, Config{K: 4, Seed: 14, EdgeCheckSelection: true, CountComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolCount != 7 {
		t.Errorf("protocol count = %d, want 7", res.ProtocolCount)
	}
}
