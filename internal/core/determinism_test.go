package core

import (
	"hash/fnv"
	"testing"

	"kmgraph/internal/graph"
)

// fingerprintMetrics folds every accounting field so any run-to-run drift
// — rounds, per-link bits, per-machine counters — shows as a mismatch.
func fingerprintMetrics(res *Result) uint64 {
	h := fnv.New64a()
	add := func(x int64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(uint64(x) >> (8 * i))
		}
		h.Write(b[:])
	}
	m := &res.Metrics
	add(int64(m.Rounds))
	add(m.Messages)
	add(m.PayloadBytes)
	add(m.MaxLinkBits)
	for _, row := range m.LinkBits {
		for _, b := range row {
			add(b)
		}
	}
	for i := range m.SentMsgs {
		add(m.SentMsgs[i])
		add(m.RecvMsgs[i])
	}
	add(int64(res.Components))
	add(int64(res.ProtocolCount))
	add(int64(res.Phases))
	return h.Sum64()
}

// TestCountComponentsDeterministic reruns the §2.6 output protocol —
// whose proxy fan-out is built from per-machine label maps, an input Go
// reshuffles on every run — and requires bit-identical accounting every
// time. This pins the countComponents fix: distinct labels are now
// collected and emitted in sorted order instead of map order.
func TestCountComponentsDeterministic(t *testing.T) {
	g := graph.DisjointComponents(150, 5, 0.3, 2)
	var first uint64
	for i := 0; i < 5; i++ {
		res, err := Run(g, Config{K: 4, Seed: 3, CountComponents: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.ProtocolCount != 5 {
			t.Fatalf("run %d: protocol count = %d, want 5", i, res.ProtocolCount)
		}
		fp := fingerprintMetrics(res)
		if i == 0 {
			first = fp
		} else if fp != first {
			t.Fatalf("run %d: fingerprint %#x != first run %#x", i, fp, first)
		}
	}
}
