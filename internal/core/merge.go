// The shared merge/DRR engine. Boruvka-style algorithms in this codebase —
// static connectivity, MST, and the dynamic subsystem's incremental
// queries — differ only in how each phase *selects* an outgoing edge per
// component; everything after selection (distributed random ranking,
// pointer-jumping tree collapse over re-randomized proxies, and the
// root-label broadcast) is identical. Merger packages that shared state and
// logic so all of them run the exact same §2.2–§2.5 machinery.

package core

import (
	"fmt"
	"sort"

	"kmgraph/internal/graph"
	"kmgraph/internal/hashing"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/proxy"
	"kmgraph/internal/sketch"
	"kmgraph/internal/wire"
)

// GraphView abstracts the graph knowledge a machine consults during the
// merge phases: its owned vertices, their adjacency, and the globally
// computable home hash. kmachine.LocalView implements it for static runs;
// the dynamic subsystem substitutes a mutable view that tracks batched
// edge insertions and deletions.
type GraphView interface {
	// N returns the number of vertices of the input graph.
	N() int
	// Owned returns this machine's vertices.
	Owned() []int
	// Home returns the home machine of any vertex.
	Home(v int) int
	// Adj returns the adjacency list of an owned vertex.
	Adj(u int) []graph.Half
}

// CompState is the proxy-held state of one component during a phase.
type CompState struct {
	Label   uint64
	Cur     uint64 // current pointer (root so far); == Label for roots
	Parent  uint64 // original DRR parent (level-wise mode answers this)
	Holders []byte // bitset of machines holding parts of the component

	// MST / dynamic fields: the best outgoing edge found so far (for MST,
	// the lightest; for dynamic queries, the sampled merge edge), and
	// whether MST elimination converged.
	HasBest     bool
	BestU       int
	BestV       int
	BestW       int64
	TargetLabel uint64
	ElimDone    bool
}

// Encode appends the wire encoding of the state.
func (st *CompState) Encode(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, st.Label)
	buf = wire.AppendUvarint(buf, st.Cur)
	buf = wire.AppendUvarint(buf, st.Parent)
	buf = wire.AppendBytes(buf, st.Holders)
	buf = wire.AppendBool(buf, st.HasBest)
	buf = wire.AppendUvarint(buf, uint64(st.BestU))
	buf = wire.AppendUvarint(buf, uint64(st.BestV))
	buf = wire.AppendVarint(buf, st.BestW)
	buf = wire.AppendUvarint(buf, st.TargetLabel)
	buf = wire.AppendBool(buf, st.ElimDone)
	return buf
}

// DecodeState parses a CompState produced by Encode.
func DecodeState(r *wire.Reader) *CompState {
	st := &CompState{
		Label:  r.Uvarint(),
		Cur:    r.Uvarint(),
		Parent: r.Uvarint(),
	}
	st.Holders = append([]byte(nil), r.Bytes()...)
	st.HasBest = r.Bool()
	st.BestU = int(r.Uvarint())
	st.BestV = int(r.Uvarint())
	st.BestW = r.Varint()
	st.TargetLabel = r.Uvarint()
	st.ElimDone = r.Bool()
	return st
}

// NewCompState returns a fresh root state for a component label.
func NewCompState(label uint64, k int) *CompState {
	return &CompState{Label: label, Cur: label, Parent: label, Holders: make([]byte, (k+7)/8)}
}

// Merger is the per-machine merge/DRR engine: component labels for owned
// vertices, proxy-held component states, and the collapse/relabel
// machinery. A selection step (sketch sampling, edge checking, MWOE
// elimination, or dynamic bank sampling) fills States and applies the
// merge rule; Collapse and BroadcastAndRelabel then finish the phase.
type Merger struct {
	Ctx  *kmachine.Ctx
	Comm *proxy.Comm
	View GraphView
	Cfg  Config
	Sh   *proxy.Shared
	Poly *hashing.Poly // non-nil in FaithfulRandomness mode

	Labels        map[int]uint64 // owned vertex -> component label
	States        map[uint64]*CompState
	StateSlot     int // proxy slot currently holding component states
	Failures      int64
	CollapseIters int
	Phase         int
	// PhaseActive counts components (proxied here) that found a valid
	// outgoing edge this phase. The phase loop terminates when no
	// component anywhere is active and nothing failed — "no merges" would
	// be wrong for merge rules without a per-phase progress guarantee
	// (the footnote-9 coin rule can have merge-free phases).
	PhaseActive uint64

	// OnRelabel, when non-nil, is invoked with each non-empty old-label ->
	// root map just BEFORE owned labels are rewritten (so the hook still
	// sees the pre-merge grouping). The dynamic subsystem uses it to merge
	// maintained sketch-bank sums by linearity.
	OnRelabel func(relabel map[uint64]uint64)

	// Cancelled, when non-nil, reports whether the current job was asked
	// to stop. It is polled through PhaseSync's existing collectives, so
	// every machine reaches the same verdict at the same point of the
	// protocol and cancellation costs no extra rounds.
	Cancelled func() bool

	prevFailures int64
}

// cancelMask packs the cancellation flag into the high bits of the
// failure/active AllSums: counts stay below 2^48, machine counts below
// 2^16, so the two fields cannot collide.
const cancelShift = 48

// CancelBit returns 1 if this machine observes a cancellation request.
func (m *Merger) CancelBit() uint64 {
	if m.Cancelled != nil && m.Cancelled() {
		return 1
	}
	return 0
}

// PhaseSync runs the end-of-phase collectives: the cluster-wide count of
// active components, the cluster-wide failure count, and the jointly
// agreed cancellation verdict (piggybacked on the failure sum, so polling
// for cancellation is free).
func (m *Merger) PhaseSync() (active, failures uint64, cancelled bool) {
	active = m.Comm.AllSum(m.PhaseActive)
	fc := m.Comm.AllSum(m.PhaseFailures() | m.CancelBit()<<cancelShift)
	return active, fc & (1<<cancelShift - 1), fc>>cancelShift > 0
}

// NewMerger returns a merge engine for one machine.
func NewMerger(ctx *kmachine.Ctx, view GraphView, cfg Config) *Merger {
	return &Merger{
		Ctx:    ctx,
		Comm:   proxy.NewComm(ctx),
		View:   view,
		Cfg:    cfg,
		Labels: make(map[int]uint64, len(view.Owned())),
	}
}

// NewMergerOn returns a merge engine that shares an existing communicator
// and already-established shared randomness — the resident substrate's
// path: successive jobs on one loaded cluster must reuse the session
// communicator (frame sequencing is cluster-global) and must not pay the
// Setup broadcast again. Labels start as singletons over the view.
func NewMergerOn(comm *proxy.Comm, view GraphView, cfg Config, sh *proxy.Shared, poly *hashing.Poly) *Merger {
	m := &Merger{
		Ctx:    comm.Ctx(),
		Comm:   comm,
		View:   view,
		Cfg:    cfg,
		Sh:     sh,
		Poly:   poly,
		Labels: make(map[int]uint64, len(view.Owned())),
	}
	for _, v := range view.Owned() {
		m.Labels[v] = uint64(v)
	}
	return m
}

// Setup establishes shared randomness and the initial singleton labeling.
func (m *Merger) Setup() error {
	m.Sh = proxy.Setup(m.Comm)
	if m.Cfg.FaithfulRandomness {
		d := m.View.N()/m.Ctx.K() + 1
		if d > 512 {
			d = 512 // cap polynomial degree; see DESIGN.md substitution #2
		}
		if d < 8 {
			d = 8
		}
		bits := proxy.SetupBits(m.Comm, 8*d)
		m.Poly = hashing.NewPolyFromBits(bits, d)
		if m.Poly == nil {
			return fmt.Errorf("core: polynomial construction failed")
		}
	}
	for _, v := range m.View.Owned() {
		m.Labels[v] = uint64(v)
	}
	return nil
}

// ProxyOf selects the proxy machine for a component at a given state slot
// within the current phase (the paper's h_{j,ρ}).
func (m *Merger) ProxyOf(slot int, label uint64) int {
	if m.Poly != nil {
		tweak := hashing.Hash3(m.Sh.Seed(), uint64(m.Phase), uint64(slot))
		return hashing.RangeOf(m.Poly.Eval(label^tweak)<<3, m.Ctx.K())
	}
	return m.Sh.ProxyOf(m.Phase, slot, label, m.Ctx.K())
}

// Parts groups this machine's vertices by current component label.
func (m *Merger) Parts() map[uint64][]int {
	p := make(map[uint64][]int)
	for _, v := range m.View.Owned() {
		l := m.Labels[v]
		p[l] = append(p[l], v)
	}
	return p
}

// SortedKeys returns the keys of a uint64-keyed map in ascending order
// (deterministic iteration for SPMD protocols).
func SortedKeys[V any](p map[uint64]V) []uint64 {
	ls := make([]uint64, 0, len(p))
	for l := range p {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	return ls
}

// PhaseFailures returns failures recorded during the current phase only.
func (m *Merger) PhaseFailures() uint64 {
	d := m.Failures - m.prevFailures
	m.prevFailures = m.Failures
	return uint64(d)
}

// ApplyRank applies the merge rule to a component that sampled nbrLabel:
// the DRR rule (§2.5, connect iff the neighbor's rank is higher) or the
// footnote-9 coin rule (connect iff self drew 0 and the neighbor drew 1).
func (m *Merger) ApplyRank(st *CompState, nbrLabel uint64) {
	if m.Cfg.CoinMerge {
		self := m.Sh.Rank(m.Phase, st.Label) & 1
		nbr := m.Sh.Rank(m.Phase, nbrLabel) & 1
		if self == 0 && nbr == 1 {
			st.Parent = nbrLabel
			st.Cur = nbrLabel
		}
		return
	}
	if m.Sh.Rank(m.Phase, nbrLabel) > m.Sh.Rank(m.Phase, st.Label) {
		st.Parent = nbrLabel
		st.Cur = nbrLabel
	}
}

// SelectSketch is the paper's per-phase selection path (§2.3–2.4): part
// sketches to component proxies, linear combination, l0-sample, neighbor-
// label resolution, DRR ranking. It fills m.States with each component's
// merge decision; Collapse and BroadcastAndRelabel finish the phase. The
// static connectivity machine and the resident substrate's derived-view
// jobs both run exactly this code.
func (m *Merger) SelectSketch() {
	k := m.Ctx.K()
	parts := m.Parts()
	seed := m.Sh.SketchSeed(m.Phase, 0)

	// Part sketches to component proxies (Lemma 3).
	var out []proxy.Out
	for _, label := range SortedKeys(parts) {
		sk := sketch.New(m.Cfg.Sketch, seed)
		for _, v := range parts[label] {
			sk.AddVertex(v, m.View.Adj(v), nil)
		}
		buf := wire.AppendUvarint(nil, label)
		buf = sk.EncodeTo(buf)
		out = append(out, proxy.Out{Dst: m.ProxyOf(0, label), Data: buf})
	}
	recv := m.Comm.Exchange(out)

	// Proxy side: sum part sketches per component, record part holders.
	m.States = make(map[uint64]*CompState)
	sums := make(map[uint64]*sketch.Sketch)
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		label := r.Uvarint()
		sk, err := sketch.Decode(m.Cfg.Sketch, seed, msg.Data[len(msg.Data)-r.Len():])
		if err != nil {
			panic(fmt.Sprintf("core: bad sketch from %d: %v", msg.Src, err))
		}
		st := m.States[label]
		if st == nil {
			st = NewCompState(label, k)
			m.States[label] = st
			sums[label] = sk
		} else if err := sums[label].Add(sk); err != nil {
			panic(err)
		}
		st.Holders[msg.Src/8] |= 1 << uint(msg.Src%8)
	}

	// Sample an outgoing edge per component; resolve the neighbor label by
	// querying the outside endpoint's home machine.
	out = nil
	for _, label := range SortedKeys(m.States) {
		sk := sums[label]
		x, y, insideSmaller, st := sk.SampleEdge()
		switch st {
		case sketch.Empty:
			// No outgoing edges: inactive root this phase.
		case sketch.Failed:
			m.Failures++
		case sketch.Sampled:
			outside := x
			if insideSmaller {
				outside = y
			}
			q := wire.AppendUvarint(nil, uint64(outside))
			q = wire.AppendUvarint(q, uint64(x))
			q = wire.AppendUvarint(q, uint64(y))
			q = wire.AppendUvarint(q, label)
			out = append(out, proxy.Out{Dst: m.View.Home(outside), Data: q})
		}
	}
	recv = m.Comm.Exchange(out)

	// Home machines answer label queries and validate the edge exists.
	out = m.AnswerLabelQueries(recv)
	recv = m.Comm.Exchange(out)

	// DRR ranking (§2.5).
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		askLabel := r.Uvarint()
		nbrLabel := r.Uvarint()
		valid := r.Bool()
		r.Varint() // weight, unused for connectivity
		st := m.States[askLabel]
		if st == nil {
			panic("core: reply for unknown component")
		}
		if !valid || nbrLabel == askLabel {
			// Fingerprint collision produced garbage: count as failure.
			m.Failures++
			continue
		}
		m.PhaseActive++
		m.ApplyRank(st, nbrLabel)
	}
}

// AnswerLabelQueries serves queries of the form (outside, x, y, askLabel):
// reply with outside's current label, whether edge (x,y) really exists,
// and its weight.
func (m *Merger) AnswerLabelQueries(recv []kmachine.Message) []proxy.Out {
	var out []proxy.Out
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		outside := int(r.Uvarint())
		x := int(r.Uvarint())
		y := int(r.Uvarint())
		askLabel := r.Uvarint()
		other := x
		if other == outside {
			other = y
		}
		valid := false
		var w int64
		for _, h := range m.View.Adj(outside) {
			if h.To == other {
				valid = true
				w = h.W
				break
			}
		}
		rep := wire.AppendUvarint(nil, askLabel)
		rep = wire.AppendUvarint(rep, m.Labels[outside])
		rep = wire.AppendBool(rep, valid)
		rep = wire.AppendVarint(rep, w)
		out = append(out, proxy.Out{Dst: msg.Src, Data: rep})
	}
	return out
}

// BroadcastAndRelabel sends each merged component's root label to all
// machines holding parts and applies the relabeling locally, returning the
// local count of merged components.
func (m *Merger) BroadcastAndRelabel() uint64 {
	k := m.Ctx.K()
	var out []proxy.Out
	var localMerges uint64
	for _, label := range SortedKeys(m.States) {
		st := m.States[label]
		if st.Cur == st.Label {
			continue
		}
		localMerges++
		buf := wire.AppendUvarint(nil, st.Label)
		buf = wire.AppendUvarint(buf, st.Cur)
		for h := 0; h < k; h++ {
			if st.Holders[h/8]&(1<<uint(h%8)) != 0 {
				out = append(out, proxy.Out{Dst: h, Data: buf})
			}
		}
	}
	recv := m.Comm.Exchange(out)
	relabel := make(map[uint64]uint64)
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		oldL := r.Uvarint()
		newL := r.Uvarint()
		relabel[oldL] = newL
	}
	m.applyRelabel(relabel)
	return localMerges
}

// applyRelabel notifies the relabel hook, then rewrites owned labels
// through the old->root map.
func (m *Merger) applyRelabel(relabel map[uint64]uint64) {
	if len(relabel) == 0 {
		return
	}
	if m.OnRelabel != nil {
		m.OnRelabel(relabel)
	}
	for v, l := range m.Labels {
		if nl, ok := relabel[l]; ok {
			m.Labels[v] = nl
		}
	}
}

// Collapse resolves every component's pointer to its tree root. The
// default is pointer doubling (cur <- cur's cur) with state handoff to
// fresh proxies each iteration; level-wise mode answers the original
// parent instead, walking one level per iteration as in Lemma 5.
func (m *Merger) Collapse() {
	for {
		m.CollapseIters++
		// Queries: ask the proxy currently holding cur's state.
		var out []proxy.Out
		for _, label := range SortedKeys(m.States) {
			st := m.States[label]
			if st.Cur == st.Label {
				continue
			}
			q := wire.AppendUvarint(nil, st.Cur)
			q = wire.AppendUvarint(q, st.Label)
			out = append(out, proxy.Out{Dst: m.ProxyOf(m.StateSlot, st.Cur), Data: q})
		}
		recv := m.Comm.Exchange(out)

		// Answers.
		out = nil
		for _, msg := range recv {
			r := wire.NewReader(msg.Data)
			target := r.Uvarint()
			asker := r.Uvarint()
			st := m.States[target]
			if st == nil {
				panic("core: query for component state not held here")
			}
			ans := st.Cur
			if m.Cfg.CollapseLevelWise {
				ans = st.Parent
			}
			rep := wire.AppendUvarint(nil, asker)
			rep = wire.AppendUvarint(rep, ans)
			out = append(out, proxy.Out{Dst: msg.Src, Data: rep})
		}
		recv = m.Comm.Exchange(out)

		// Updates.
		var changed uint64
		for _, msg := range recv {
			r := wire.NewReader(msg.Data)
			asker := r.Uvarint()
			newCur := r.Uvarint()
			st := m.States[asker]
			if st == nil {
				panic("core: answer for unknown component")
			}
			if newCur != st.Cur {
				st.Cur = newCur
				changed++
			}
		}
		if m.Comm.AllSum(changed) == 0 {
			return
		}
		m.HandoffStates()
	}
}

// HandoffStates moves all component states to the next slot's proxies
// (fresh h_{j,ρ} per iteration, as Lemma 5 requires for independence).
func (m *Merger) HandoffStates() {
	var out []proxy.Out
	newStates := make(map[uint64]*CompState)
	for _, label := range SortedKeys(m.States) {
		st := m.States[label]
		dst := m.ProxyOf(m.StateSlot+1, label)
		if dst == m.Ctx.ID() {
			newStates[label] = st
			continue
		}
		out = append(out, proxy.Out{Dst: dst, Data: st.Encode(nil)})
	}
	recv := m.Comm.Exchange(out)
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		st := DecodeState(r)
		newStates[st.Label] = st
	}
	m.States = newStates
	m.StateSlot++
}
