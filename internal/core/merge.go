// The shared merge/DRR engine. Boruvka-style algorithms in this codebase —
// static connectivity, MST, and the dynamic subsystem's incremental
// queries — differ only in how each phase *selects* an outgoing edge per
// component; everything after selection (distributed random ranking,
// pointer-jumping tree collapse over re-randomized proxies, and the
// root-label broadcast) is identical. Merger packages that shared state and
// logic so all of them run the exact same §2.2–§2.5 machinery.

package core

import (
	"fmt"
	"slices"

	"kmgraph/internal/graph"
	"kmgraph/internal/hashing"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/proxy"
	"kmgraph/internal/sketch"
	"kmgraph/internal/wire"
)

// GraphView abstracts the graph knowledge a machine consults during the
// merge phases: its owned vertices, their adjacency, and the globally
// computable home hash. kmachine.LocalView implements it for static runs;
// the dynamic subsystem substitutes a mutable view that tracks batched
// edge insertions and deletions.
type GraphView interface {
	// N returns the number of vertices of the input graph.
	N() int
	// Owned returns this machine's vertices.
	Owned() []int
	// Home returns the home machine of any vertex.
	Home(v int) int
	// Adj returns the adjacency list of an owned vertex.
	Adj(u int) []graph.Half
}

// CompState is the proxy-held state of one component during a phase.
type CompState struct {
	Label   uint64
	Cur     uint64 // current pointer (root so far); == Label for roots
	Parent  uint64 // original DRR parent (level-wise mode answers this)
	Holders []byte // bitset of machines holding parts of the component

	// MST / dynamic fields: the best outgoing edge found so far (for MST,
	// the lightest; for dynamic queries, the sampled merge edge), and
	// whether MST elimination converged.
	HasBest     bool
	BestU       int
	BestV       int
	BestW       int64
	TargetLabel uint64
	ElimDone    bool

	// Transient proxy-side selection state, never encoded: the pooled
	// sketch accumulating this component's part sums, and the sampled edge
	// awaiting neighbor-label resolution.
	Sum          *sketch.Sketch
	PendU, PendV int
}

// Encode appends the wire encoding of the state.
//
//km:hotpath
func (st *CompState) Encode(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, st.Label)
	buf = wire.AppendUvarint(buf, st.Cur)
	buf = wire.AppendUvarint(buf, st.Parent)
	buf = wire.AppendBytes(buf, st.Holders)
	buf = wire.AppendBool(buf, st.HasBest)
	buf = wire.AppendUvarint(buf, uint64(st.BestU))
	buf = wire.AppendUvarint(buf, uint64(st.BestV))
	buf = wire.AppendVarint(buf, st.BestW)
	buf = wire.AppendUvarint(buf, st.TargetLabel)
	buf = wire.AppendBool(buf, st.ElimDone)
	return buf
}

// DecodeState parses a CompState produced by Encode.
func DecodeState(r *wire.Reader) *CompState {
	st := &CompState{
		Label:  r.Uvarint(),
		Cur:    r.Uvarint(),
		Parent: r.Uvarint(),
	}
	st.Holders = append([]byte(nil), r.Bytes()...)
	st.HasBest = r.Bool()
	st.BestU = int(r.Uvarint())
	st.BestV = int(r.Uvarint())
	st.BestW = r.Varint()
	st.TargetLabel = r.Uvarint()
	st.ElimDone = r.Bool()
	return st
}

// NewCompState returns a fresh root state for a component label.
func NewCompState(label uint64, k int) *CompState {
	return &CompState{Label: label, Cur: label, Parent: label, Holders: make([]byte, (k+7)/8)}
}

// Merger is the per-machine merge/DRR engine: component labels for owned
// vertices, proxy-held component states, and the collapse/relabel
// machinery. A selection step (sketch sampling, edge checking, MWOE
// elimination, or dynamic bank sampling) fills States and applies the
// merge rule; Collapse and BroadcastAndRelabel then finish the phase.
type Merger struct {
	Ctx  *kmachine.Ctx
	Comm *proxy.Comm
	View GraphView
	Cfg  Config
	Sh   *proxy.Shared
	Poly *hashing.Poly // non-nil in FaithfulRandomness mode

	Labels        map[int]uint64 // owned vertex -> component label
	States        map[uint64]*CompState
	StateSlot     int // proxy slot currently holding component states
	Failures      int64
	CollapseIters int
	Phase         int
	// PhaseActive counts components (proxied here) that found a valid
	// outgoing edge this phase. The phase loop terminates when no
	// component anywhere is active and nothing failed — "no merges" would
	// be wrong for merge rules without a per-phase progress guarantee
	// (the footnote-9 coin rule can have merge-free phases).
	PhaseActive uint64

	// OnRelabel, when non-nil, is invoked with each non-empty old-label ->
	// root map just BEFORE owned labels are rewritten (so the hook still
	// sees the pre-merge grouping). The dynamic subsystem uses it to merge
	// maintained sketch-bank sums by linearity.
	OnRelabel func(relabel map[uint64]uint64)

	// Cancelled, when non-nil, reports whether the current job was asked
	// to stop. It is polled through PhaseSync's existing collectives, so
	// every machine reaches the same verdict at the same point of the
	// protocol and cancellation costs no extra rounds.
	Cancelled func() bool

	prevFailures int64
	skPool       *sketch.Pool
	partsMap     map[uint64][]int
	partsFree    [][]int
	stFree       []*CompState
	statesSpare  map[uint64]*CompState
	encScratch   []byte
	outBuf       []proxy.Out
	ansBuf       []proxy.Out
	keyBuf       []uint64
}

// StateKeys returns m.States' labels in ascending order through a reused
// buffer (valid until the next StateKeys call).
//
//km:hotpath
func (m *Merger) StateKeys() []uint64 {
	ls := m.keyBuf[:0]
	for l := range m.States {
		ls = append(ls, l)
	}
	slices.Sort(ls)
	m.keyBuf = ls
	return ls
}

// AccumulateParts is the proxy side of a sketch selection step: for every
// received (label, encoded part sketch) message it sums the part into the
// component state's pooled accumulator (creating the state on first
// sight) and records the sender as a part holder. Static connectivity,
// MST iteration 0, and the resident bank path all run exactly this code.
//
//km:hotpath
func (m *Merger) AccumulateParts(recv []kmachine.Message, seed uint64) {
	m.ResetStates()
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		label := r.Uvarint()
		st := m.States[label]
		if st == nil {
			st = m.NewState(label)
			m.States[label] = st
			st.Sum = m.Pool().Get(seed)
		}
		if err := st.Sum.AddEncoded(msg.Data[len(msg.Data)-r.Len():]); err != nil {
			panic(fmt.Sprintf("core: bad sketch from %d: %v", msg.Src, err)) //kmvet:ignore panic path; never executes on protocol-conformant traffic
		}
		st.Holders[msg.Src/8] |= 1 << uint(msg.Src%8)
	}
}

// SketchPayload encodes (label, sk) through the machine's reusable scratch
// buffer and interns the exact-size result in the arena, so oversized
// worst-case capacity hints never fragment arena chunks.
func (m *Merger) SketchPayload(label uint64, sk *sketch.Sketch) []byte {
	scr := m.encScratch[:0]
	scr = wire.AppendUvarint(scr, label)
	scr = sk.EncodeTo(scr)
	m.encScratch = scr
	return m.Comm.FramedPayload(scr)
}

// NewState returns a zeroed root CompState for label, reusing a recycled
// one when available.
func (m *Merger) NewState(label uint64) *CompState {
	n := len(m.stFree)
	if n == 0 {
		return NewCompState(label, m.Ctx.K())
	}
	st := m.stFree[n-1]
	m.stFree = m.stFree[:n-1]
	holders := st.Holders
	*st = CompState{Label: label, Cur: label, Parent: label}
	nb := (m.Ctx.K() + 7) / 8
	if cap(holders) < nb {
		holders = make([]byte, nb)
	} else {
		holders = holders[:nb]
		clear(holders)
	}
	st.Holders = holders
	return st
}

// ResetStates recycles every state in m.States into the pool and installs
// an empty map, ready for a new selection step.
func (m *Merger) ResetStates() {
	if m.States == nil {
		m.States = make(map[uint64]*CompState)
		return
	}
	for l, st := range m.States {
		if st.Sum != nil {
			m.Pool().Put(st.Sum)
			st.Sum = nil
		}
		m.stFree = append(m.stFree, st) //kmvet:ignore free-list recycling; recycled states are fully reset by NewState before reuse
		delete(m.States, l)
	}
}

// DecodeStateInto parses a CompState produced by Encode into a pooled
// state.
func (m *Merger) DecodeStateInto(r *wire.Reader) *CompState {
	st := m.NewState(0)
	st.Label = r.Uvarint()
	st.Cur = r.Uvarint()
	st.Parent = r.Uvarint()
	st.Holders = append(st.Holders[:0], r.Bytes()...)
	st.HasBest = r.Bool()
	st.BestU = int(r.Uvarint())
	st.BestV = int(r.Uvarint())
	st.BestW = r.Varint()
	st.TargetLabel = r.Uvarint()
	st.ElimDone = r.Bool()
	return st
}

// takeSpareStates returns an empty map for the next proxy slot, reusing
// the previous handoff's map when possible; pair with putSpareStates.
func (m *Merger) takeSpareStates() map[uint64]*CompState {
	ns := m.statesSpare
	if ns == nil {
		ns = make(map[uint64]*CompState)
	}
	m.statesSpare = nil
	return ns
}

// putSpareStates empties old (its states must already be moved or
// recycled) and parks it for the next takeSpareStates.
func (m *Merger) putSpareStates(old map[uint64]*CompState) {
	clear(old)
	m.statesSpare = old
}

// Pool returns the machine's sketch pool (shape Cfg.Sketch), so selection
// steps reuse cell arrays and hash tables across phases instead of
// allocating fresh sketches per part.
func (m *Merger) Pool() *sketch.Pool {
	if m.skPool == nil {
		m.skPool = sketch.NewPool(m.Cfg.Sketch)
	}
	return m.skPool
}

// ReleasePools hands the machine's recycled sketches back to the
// process-wide shared pool; call when the Merger's run is over.
func (m *Merger) ReleasePools() {
	if m.skPool != nil {
		m.skPool.Release()
	}
}

// cancelMask packs the cancellation flag into the high bits of the
// failure/active AllSums: counts stay below 2^48, machine counts below
// 2^16, so the two fields cannot collide.
const cancelShift = 48

// CancelBit returns 1 if this machine observes a cancellation request.
func (m *Merger) CancelBit() uint64 {
	if m.Cancelled != nil && m.Cancelled() {
		return 1
	}
	return 0
}

// PhaseSync runs the end-of-phase collectives: the cluster-wide count of
// active components, the cluster-wide failure count, and the jointly
// agreed cancellation verdict (piggybacked on the failure sum, so polling
// for cancellation is free).
func (m *Merger) PhaseSync() (active, failures uint64, cancelled bool) {
	active = m.Comm.AllSum(m.PhaseActive)
	fc := m.Comm.AllSum(m.PhaseFailures() | m.CancelBit()<<cancelShift)
	return active, fc & (1<<cancelShift - 1), fc>>cancelShift > 0
}

// NewMerger returns a merge engine for one machine.
func NewMerger(ctx *kmachine.Ctx, view GraphView, cfg Config) *Merger {
	return &Merger{
		Ctx:    ctx,
		Comm:   proxy.NewComm(ctx),
		View:   view,
		Cfg:    cfg,
		Labels: make(map[int]uint64, len(view.Owned())),
	}
}

// NewMergerOn returns a merge engine that shares an existing communicator
// and already-established shared randomness — the resident substrate's
// path: successive jobs on one loaded cluster must reuse the session
// communicator (frame sequencing is cluster-global) and must not pay the
// Setup broadcast again. Labels start as singletons over the view.
func NewMergerOn(comm *proxy.Comm, view GraphView, cfg Config, sh *proxy.Shared, poly *hashing.Poly) *Merger {
	m := &Merger{
		Ctx:    comm.Ctx(),
		Comm:   comm,
		View:   view,
		Cfg:    cfg,
		Sh:     sh,
		Poly:   poly,
		Labels: make(map[int]uint64, len(view.Owned())),
	}
	for _, v := range view.Owned() {
		m.Labels[v] = uint64(v)
	}
	return m
}

// Setup establishes shared randomness and the initial singleton labeling.
func (m *Merger) Setup() error {
	m.Sh = proxy.Setup(m.Comm)
	if m.Cfg.FaithfulRandomness {
		d := m.View.N()/m.Ctx.K() + 1
		if d > 512 {
			d = 512 // cap polynomial degree; see DESIGN.md substitution #2
		}
		if d < 8 {
			d = 8
		}
		bits := proxy.SetupBits(m.Comm, 8*d)
		m.Poly = hashing.NewPolyFromBits(bits, d)
		if m.Poly == nil {
			return fmt.Errorf("core: polynomial construction failed")
		}
	}
	for _, v := range m.View.Owned() {
		m.Labels[v] = uint64(v)
	}
	return nil
}

// ProxyOf selects the proxy machine for a component at a given state slot
// within the current phase (the paper's h_{j,ρ}).
func (m *Merger) ProxyOf(slot int, label uint64) int {
	if m.Poly != nil {
		tweak := hashing.Hash3(m.Sh.Seed(), uint64(m.Phase), uint64(slot))
		return hashing.RangeOf(m.Poly.Eval(label^tweak)<<3, m.Ctx.K())
	}
	return m.Sh.ProxyOf(m.Phase, slot, label, m.Ctx.K())
}

// Parts groups this machine's vertices by current component label. The
// returned map and its slices are reused by the next Parts call on this
// Merger — consume the grouping within the phase step that requested it.
//
//km:hotpath
func (m *Merger) Parts() map[uint64][]int {
	if m.partsMap == nil {
		m.partsMap = make(map[uint64][]int, len(m.View.Owned())) //kmvet:ignore one-time lazy init; reused by every later call
	}
	p := m.partsMap
	for l, s := range p {
		m.partsFree = append(m.partsFree, s[:0]) //kmvet:ignore free-list recycling; recycled slices are truncated and value-independent
		delete(p, l)
	}
	for _, v := range m.View.Owned() {
		l := m.Labels[v]
		s, ok := p[l]
		if !ok {
			if n := len(m.partsFree); n > 0 {
				s = m.partsFree[n-1]
				m.partsFree = m.partsFree[:n-1]
			}
		}
		p[l] = append(s, v)
	}
	return p
}

// SortedKeys returns the keys of a uint64-keyed map in ascending order
// (deterministic iteration for SPMD protocols).
func SortedKeys[V any](p map[uint64]V) []uint64 {
	ls := make([]uint64, 0, len(p))
	for l := range p {
		ls = append(ls, l)
	}
	slices.Sort(ls)
	return ls
}

// PhaseFailures returns failures recorded during the current phase only.
func (m *Merger) PhaseFailures() uint64 {
	d := m.Failures - m.prevFailures
	m.prevFailures = m.Failures
	return uint64(d)
}

// ApplyRank applies the merge rule to a component that sampled nbrLabel:
// the DRR rule (§2.5, connect iff the neighbor's rank is higher) or the
// footnote-9 coin rule (connect iff self drew 0 and the neighbor drew 1).
//
//km:hotpath
func (m *Merger) ApplyRank(st *CompState, nbrLabel uint64) {
	if m.Cfg.CoinMerge {
		self := m.Sh.Rank(m.Phase, st.Label) & 1
		nbr := m.Sh.Rank(m.Phase, nbrLabel) & 1
		if self == 0 && nbr == 1 {
			st.Parent = nbrLabel
			st.Cur = nbrLabel
		}
		return
	}
	if m.Sh.Rank(m.Phase, nbrLabel) > m.Sh.Rank(m.Phase, st.Label) {
		st.Parent = nbrLabel
		st.Cur = nbrLabel
	}
}

// SelectSketch is the paper's per-phase selection path (§2.3–2.4): part
// sketches to component proxies, linear combination, l0-sample, neighbor-
// label resolution, DRR ranking. It fills m.States with each component's
// merge decision; Collapse and BroadcastAndRelabel finish the phase. The
// static connectivity machine and the resident substrate's derived-view
// jobs both run exactly this code.
func (m *Merger) SelectSketch() {
	parts := m.Parts()
	seed := m.Sh.SketchSeed(m.Phase, 0)
	a := m.Comm.Arena()

	// Part sketches to component proxies (Lemma 3). One pooled sketch is
	// reset per part; payloads are interned exact-size in the arena.
	out := m.outBuf[:0]
	part := m.Pool().Get(seed)
	for _, label := range SortedKeys(parts) {
		for _, v := range parts[label] {
			part.AddVertex(v, m.View.Adj(v), nil)
		}
		out = append(out, proxy.Out{Dst: m.ProxyOf(0, label), Data: m.SketchPayload(label, part), Framed: true})
		part.Reset()
	}
	m.Pool().Put(part)
	recv := m.Comm.Exchange(out)

	// Proxy side: sum part sketches per component, record part holders.
	m.AccumulateParts(recv, seed)

	// Sample an outgoing edge per component; resolve the neighbor label by
	// querying the outside endpoint's home machine.
	out = out[:0]
	for _, label := range m.StateKeys() {
		sk := m.States[label].Sum
		m.States[label].Sum = nil
		x, y, insideSmaller, st := sk.SampleEdge()
		m.Pool().Put(sk)
		switch st {
		case sketch.Empty:
			// No outgoing edges: inactive root this phase.
		case sketch.Failed:
			m.Failures++
		case sketch.Sampled:
			outside := x
			if insideSmaller {
				outside = y
			}
			q := a.Grab(40)
			q = wire.AppendUvarint(q, uint64(outside))
			q = wire.AppendUvarint(q, uint64(x))
			q = wire.AppendUvarint(q, uint64(y))
			q = wire.AppendUvarint(q, label)
			out = append(out, proxy.Out{Dst: m.View.Home(outside), Data: a.Commit(q)})
		}
	}
	recv = m.Comm.Exchange(out)
	m.outBuf = out

	// Home machines answer label queries and validate the edge exists.
	recv = m.Comm.Exchange(m.AnswerLabelQueries(recv))

	// DRR ranking (§2.5).
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		askLabel := r.Uvarint()
		nbrLabel := r.Uvarint()
		valid := r.Bool()
		r.Varint() // weight, unused for connectivity
		st := m.States[askLabel]
		if st == nil {
			panic("core: reply for unknown component")
		}
		if !valid || nbrLabel == askLabel {
			// Fingerprint collision produced garbage: count as failure.
			m.Failures++
			continue
		}
		m.PhaseActive++
		m.ApplyRank(st, nbrLabel)
	}
}

// AnswerLabelQueries serves queries of the form (outside, x, y, askLabel):
// reply with outside's current label, whether edge (x,y) really exists,
// and its weight.
// The returned slice is reused by the next AnswerLabelQueries call on this
// Merger; feed it to one Exchange and drop it.
func (m *Merger) AnswerLabelQueries(recv []kmachine.Message) []proxy.Out {
	out := m.ansBuf[:0]
	a := m.Comm.Arena()
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		outside := int(r.Uvarint())
		x := int(r.Uvarint())
		y := int(r.Uvarint())
		askLabel := r.Uvarint()
		other := x
		if other == outside {
			other = y
		}
		valid := false
		var w int64
		for _, h := range m.View.Adj(outside) {
			if h.To == other {
				valid = true
				w = h.W
				break
			}
		}
		rep := a.Grab(40)
		rep = wire.AppendUvarint(rep, askLabel)
		rep = wire.AppendUvarint(rep, m.Labels[outside])
		rep = wire.AppendBool(rep, valid)
		rep = wire.AppendVarint(rep, w)
		out = append(out, proxy.Out{Dst: msg.Src, Data: a.Commit(rep)})
	}
	m.ansBuf = out
	return out
}

// BroadcastAndRelabel sends each merged component's root label to all
// machines holding parts and applies the relabeling locally, returning the
// local count of merged components.
func (m *Merger) BroadcastAndRelabel() uint64 {
	k := m.Ctx.K()
	var out []proxy.Out
	var localMerges uint64
	a := m.Comm.Arena()
	for _, label := range m.StateKeys() {
		st := m.States[label]
		if st.Cur == st.Label {
			continue
		}
		localMerges++
		buf := a.Grab(20)
		buf = wire.AppendUvarint(buf, st.Label)
		buf = wire.AppendUvarint(buf, st.Cur)
		data := a.Commit(buf)
		for h := 0; h < k; h++ {
			if st.Holders[h/8]&(1<<uint(h%8)) != 0 {
				out = append(out, proxy.Out{Dst: h, Data: data})
			}
		}
	}
	recv := m.Comm.Exchange(out)
	relabel := make(map[uint64]uint64)
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		oldL := r.Uvarint()
		newL := r.Uvarint()
		relabel[oldL] = newL
	}
	m.applyRelabel(relabel)
	return localMerges
}

// applyRelabel notifies the relabel hook, then rewrites owned labels
// through the old->root map.
func (m *Merger) applyRelabel(relabel map[uint64]uint64) {
	if len(relabel) == 0 {
		return
	}
	if m.OnRelabel != nil {
		m.OnRelabel(relabel)
	}
	for v, l := range m.Labels {
		if nl, ok := relabel[l]; ok {
			m.Labels[v] = nl
		}
	}
}

// Collapse resolves every component's pointer to its tree root. The
// default is pointer doubling (cur <- cur's cur) with state handoff to
// fresh proxies each iteration; level-wise mode answers the original
// parent instead, walking one level per iteration as in Lemma 5.
func (m *Merger) Collapse() {
	a := m.Comm.Arena()
	for {
		m.CollapseIters++
		// Queries: ask the proxy currently holding cur's state.
		out := m.outBuf[:0]
		for _, label := range m.StateKeys() {
			st := m.States[label]
			if st.Cur == st.Label {
				continue
			}
			q := a.Grab(20)
			q = wire.AppendUvarint(q, st.Cur)
			q = wire.AppendUvarint(q, st.Label)
			out = append(out, proxy.Out{Dst: m.ProxyOf(m.StateSlot, st.Cur), Data: a.Commit(q)})
		}
		recv := m.Comm.Exchange(out)

		// Answers.
		out = out[:0]
		for _, msg := range recv {
			r := wire.NewReader(msg.Data)
			target := r.Uvarint()
			asker := r.Uvarint()
			st := m.States[target]
			if st == nil {
				panic("core: query for component state not held here")
			}
			ans := st.Cur
			if m.Cfg.CollapseLevelWise {
				ans = st.Parent
			}
			rep := a.Grab(20)
			rep = wire.AppendUvarint(rep, asker)
			rep = wire.AppendUvarint(rep, ans)
			out = append(out, proxy.Out{Dst: msg.Src, Data: a.Commit(rep)})
		}
		recv = m.Comm.Exchange(out)
		m.outBuf = out

		// Updates.
		var changed uint64
		for _, msg := range recv {
			r := wire.NewReader(msg.Data)
			asker := r.Uvarint()
			newCur := r.Uvarint()
			st := m.States[asker]
			if st == nil {
				panic("core: answer for unknown component")
			}
			if newCur != st.Cur {
				st.Cur = newCur
				changed++
			}
		}
		if m.Comm.AllSum(changed) == 0 {
			return
		}
		m.HandoffStates()
	}
}

// HandoffStates moves all component states to the next slot's proxies
// (fresh h_{j,ρ} per iteration, as Lemma 5 requires for independence).
func (m *Merger) HandoffStates() {
	var out []proxy.Out
	a := m.Comm.Arena()
	newStates := m.takeSpareStates()
	for _, label := range m.StateKeys() {
		st := m.States[label]
		dst := m.ProxyOf(m.StateSlot+1, label)
		if dst == m.Ctx.ID() {
			newStates[label] = st
			continue
		}
		out = append(out, proxy.Out{Dst: dst, Data: a.Commit(st.Encode(a.Grab(96 + len(st.Holders))))})
		m.stFree = append(m.stFree, st) // encoded copy travels; recycle the original
	}
	recv := m.Comm.Exchange(out)
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		st := m.DecodeStateInto(r)
		newStates[st.Label] = st
	}
	m.putSpareStates(m.States)
	m.States = newStates
	m.StateSlot++
}
