package core

import (
	"math"
	"testing"

	"kmgraph/internal/graph"
)

func toInt(labels []uint64) []int {
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = int(l)
	}
	return out
}

func checkAgainstOracle(t *testing.T, name string, g *graph.Graph, cfg Config) *Result {
	t.Helper()
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	want, wantCount := graph.Components(g)
	if res.Components != wantCount {
		t.Errorf("%s: components = %d, want %d", name, res.Components, wantCount)
	}
	if !graph.SameLabeling(toInt(res.Labels), want) {
		t.Errorf("%s: labeling disagrees with oracle", name)
	}
	if res.Metrics.DroppedMessages != 0 {
		t.Errorf("%s: dropped %d messages", name, res.Metrics.DroppedMessages)
	}
	return res
}

func TestConnectivityFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(200)},
		{"cycle", graph.Cycle(150)},
		{"star", graph.Star(200)},
		{"tree", graph.RandomTree(300, 1)},
		{"gnm-sparse", graph.GNM(300, 500, 2)},
		{"gnm-dense", graph.GNM(100, 2500, 3)},
		{"gnp", graph.GNP(250, 0.02, 4)},
		{"components-5", graph.DisjointComponents(250, 5, 0.4, 5)},
		{"components-40", graph.DisjointComponents(200, 40, 0.2, 6)},
		{"barbell", graph.Barbell(20, 10)},
		{"planted", graph.PlantedPartition(150, 3, 0.15, 0.002, 7)},
		{"grid", graph.Grid(12, 15)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkAgainstOracle(t, tc.name, tc.g, Config{K: 4, Seed: 11})
		})
	}
}

func TestConnectivityAcrossK(t *testing.T) {
	g := graph.DisjointComponents(300, 3, 0.5, 9)
	for _, k := range []int{2, 3, 5, 8, 16} {
		res := checkAgainstOracle(t, "k", g, Config{K: k, Seed: 13})
		if res.Phases < 1 {
			t.Errorf("k=%d: phases = %d", k, res.Phases)
		}
	}
}

func TestConnectivityAcrossSeeds(t *testing.T) {
	g := graph.GNM(200, 350, 21)
	for seed := int64(0); seed < 8; seed++ {
		checkAgainstOracle(t, "seed", g, Config{K: 6, Seed: seed})
	}
}

func TestDegenerateInputs(t *testing.T) {
	// Edgeless graph: n components, terminates in one phase.
	edgeless := graph.NewBuilder(50).Build()
	res := checkAgainstOracle(t, "edgeless", edgeless, Config{K: 4, Seed: 1})
	if res.Phases != 1 {
		t.Errorf("edgeless phases = %d, want 1", res.Phases)
	}
	// Single vertex.
	single := graph.NewBuilder(1).Build()
	checkAgainstOracle(t, "single", single, Config{K: 3, Seed: 1})
	// Two vertices one edge.
	pair := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	res = checkAgainstOracle(t, "pair", pair, Config{K: 2, Seed: 1})
	if res.Components != 1 {
		t.Error("pair should merge")
	}
	// k = 1 degenerate cluster.
	checkAgainstOracle(t, "k1", graph.Cycle(40), Config{K: 1, Seed: 1})
}

func TestPhasesLogarithmic(t *testing.T) {
	// Lemma 7: phases <= 12 log2 n w.h.p. Measured phases are usually far
	// lower; assert the hard cap and a sane typical value.
	g := graph.RandomConnected(600, 1200, 3)
	res := checkAgainstOracle(t, "phases", g, Config{K: 8, Seed: 5})
	bound := 12 * math.Log2(600)
	if float64(res.Phases) > bound {
		t.Errorf("phases %d exceed Lemma 7 bound %.0f", res.Phases, bound)
	}
	if res.Phases > 25 {
		t.Errorf("phases %d unexpectedly high for n=600", res.Phases)
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.GNM(150, 300, 8)
	cfg := Config{K: 5, Seed: 99}
	a, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Rounds != b.Metrics.Rounds || a.Phases != b.Phases {
		t.Errorf("nondeterministic: rounds %d/%d phases %d/%d",
			a.Metrics.Rounds, b.Metrics.Rounds, a.Phases, b.Phases)
	}
	for v := range a.Labels {
		if a.Labels[v] != b.Labels[v] {
			t.Fatalf("labels differ at %d", v)
		}
	}
}

func TestCollapseLevelWiseAblation(t *testing.T) {
	g := graph.RandomConnected(300, 600, 12)
	base := checkAgainstOracle(t, "doubling", g, Config{K: 4, Seed: 3})
	lw := checkAgainstOracle(t, "levelwise", g, Config{K: 4, Seed: 3, CollapseLevelWise: true})
	if !graph.SameLabeling(toInt(base.Labels), toInt(lw.Labels)) {
		t.Error("collapse modes disagree on the partition")
	}
}

func TestCoinMergeVariant(t *testing.T) {
	// Footnote 9: 0->1 coin merging gives the same answers with depth-1
	// trees and roughly twice the phases.
	g := graph.RandomConnected(300, 600, 15)
	drrRes := checkAgainstOracle(t, "drr", g, Config{K: 4, Seed: 8})
	coin := checkAgainstOracle(t, "coin", g, Config{K: 4, Seed: 8, CoinMerge: true})
	if !graph.SameLabeling(toInt(drrRes.Labels), toInt(coin.Labels)) {
		t.Error("merge variants disagree on the partition")
	}
	if coin.Phases < drrRes.Phases {
		t.Logf("coin phases %d < drr phases %d (possible, but unusual)", coin.Phases, drrRes.Phases)
	}
	// Several more families for coverage.
	checkAgainstOracle(t, "coin-components", graph.DisjointComponents(200, 5, 0.3, 16),
		Config{K: 5, Seed: 9, CoinMerge: true})
	checkAgainstOracle(t, "coin-star", graph.Star(150), Config{K: 3, Seed: 10, CoinMerge: true})
}

func TestCoinMergeMST(t *testing.T) {
	g := graph.WithDistinctWeights(graph.GNM(100, 300, 17), 18)
	res := checkMST(t, "coin-mst", g, MSTConfig{Config: Config{K: 4, Seed: 11, CoinMerge: true}})
	if res.Phases == 0 {
		t.Error("no phases")
	}
}

func TestFaithfulRandomness(t *testing.T) {
	g := graph.DisjointComponents(200, 4, 0.4, 2)
	res := checkAgainstOracle(t, "faithful", g, Config{K: 4, Seed: 7, FaithfulRandomness: true})
	// The faithful mode pays for distributing the shared bits up front.
	if res.Metrics.Rounds < 3 {
		t.Errorf("rounds = %d suspiciously small", res.Metrics.Rounds)
	}
}

func TestPhaseRoundsRecorded(t *testing.T) {
	g := graph.RandomConnected(200, 400, 4)
	res := checkAgainstOracle(t, "phaserounds", g, Config{K: 4, Seed: 2})
	if len(res.PhaseRounds) != res.Phases {
		t.Fatalf("phase rounds %d entries, phases %d", len(res.PhaseRounds), res.Phases)
	}
	for i := 1; i < len(res.PhaseRounds); i++ {
		if res.PhaseRounds[i] < res.PhaseRounds[i-1] {
			t.Error("phase round counters must be nondecreasing")
		}
	}
	if res.PhaseRounds[len(res.PhaseRounds)-1] > res.Metrics.Rounds {
		t.Error("phase rounds exceed total rounds")
	}
}

func TestIsolatedVerticesMixed(t *testing.T) {
	// A connected blob plus isolated vertices.
	b := graph.NewBuilder(100)
	for i := 0; i < 49; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g := b.Build()
	res := checkAgainstOracle(t, "isolated", g, Config{K: 4, Seed: 6})
	if res.Components != 51 {
		t.Errorf("components = %d, want 51", res.Components)
	}
}
