// MST construction (§3.1, Theorem 2): Boruvka phases as in connectivity,
// but each phase finds every component's minimum-weight outgoing edge
// (MWOE) by repeated sketch-and-eliminate: sample a random outgoing edge,
// broadcast its weight to the component's parts, re-sketch only strictly
// lighter edges, and repeat until the sampler reports an empty vector —
// the last sampled edge is then the MWOE w.h.p. Every MWOE is an MST edge
// by the cut property (weights are totally ordered by (w, edge ID), so the
// MST is unique); components then merge along DRR trees exactly as in the
// connectivity algorithm.
//
// Output criteria (Theorem 2): by default every MST edge is known to at
// least one machine (the proxy that recorded it), achieving Õ(n/k²)
// rounds. StrongOutput additionally routes every MST edge to the home
// machines of both endpoints — the classical output criterion — which the
// paper proves costs Θ̃(n/k) in the worst case (experiment E7 reproduces
// the star-graph separation).

package core

import (
	"context"
	"fmt"
	"sort"

	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
)

// MSTConfig parameterizes an MST run.
type MSTConfig struct {
	Config
	// StrongOutput also delivers each MST edge to both endpoints' home
	// machines (Theorem 2(b)).
	StrongOutput bool
	// MaxElimIters caps elimination iterations per phase; 0 selects
	// 2·ceil(log2 n) + 8 (enough for w.h.p. convergence).
	MaxElimIters int
}

// MSTResult is the outcome of an MST run.
type MSTResult struct {
	// Edges is the minimum spanning forest under the (weight, edge ID)
	// order, in canonical form, sorted by edge ID.
	Edges []graph.Edge
	// TotalWeight is the forest weight.
	TotalWeight int64
	// Labels is the final component labeling (as in connectivity).
	Labels []uint64
	// Phases is the number of Boruvka phases executed.
	Phases int
	// ElimIters is the total number of elimination iterations.
	ElimIters int
	// SketchFailures counts sampling failures.
	SketchFailures int64
	// WeakRounds is the round count before strong-output dissemination
	// (equals Metrics.Rounds when StrongOutput is false).
	WeakRounds int
	// VertexEdges, in StrongOutput mode, maps each vertex to the MST
	// edges incident to it as known by its home machine.
	VertexEdges map[int][]graph.Edge
	// Metrics is the engine's cost accounting.
	Metrics kmachine.Metrics
}

type mstOutput struct {
	labels      map[int]uint64
	edges       []graph.Edge
	vertexEdges map[int][]graph.Edge
	failures    int64
	phases      int
	elimIters   int
	weakRounds  int
}

// DefaultMaxElimIters returns the default per-phase elimination cap for an
// n-vertex input: 2·ceil(log2 n) + 8, enough for w.h.p. convergence.
func DefaultMaxElimIters(n int) int {
	l := 0
	for s := 1; s < n; s <<= 1 {
		l++
	}
	return 2*l + 8
}

// RunMST executes the MST algorithm on g under a fresh random vertex
// partition.
func RunMST(g *graph.Graph, cfg MSTConfig) (*MSTResult, error) {
	return RunMSTContext(context.Background(), g, cfg)
}

// RunMSTContext is RunMST with cancellation: when ctx is cancelled or its
// deadline passes, the underlying cluster aborts and ctx.Err() is
// returned.
func RunMSTContext(ctx context.Context, g *graph.Graph, cfg MSTConfig) (*MSTResult, error) {
	cfg.Config = cfg.Config.withDefaults(g.N())
	if cfg.MaxElimIters == 0 {
		cfg.MaxElimIters = DefaultMaxElimIters(g.N())
	}
	part := kmachine.NewRVP(g, cfg.K, uint64(cfg.Seed)^0x9e37)
	cluster, err := kmachine.New(kmachine.Config{
		K:                   cfg.K,
		BandwidthBits:       cfg.BandwidthBits,
		MessageOverheadBits: cfg.MessageOverheadBits,
		Seed:                cfg.Seed,
		MaxRounds:           cfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}
	res, err := cluster.RunContext(ctx, func(mctx *kmachine.Ctx) error {
		m := &mstMachine{machine: newMachine(mctx, part.View(mctx.ID()), cfg.Config), mstCfg: cfg}
		return m.run()
	})
	if err != nil {
		return nil, err
	}
	return assembleMST(g.N(), res)
}

func assembleMST(n int, res *kmachine.Result) (*MSTResult, error) {
	out := &MSTResult{Labels: make([]uint64, n), Metrics: res.Metrics}
	byID := make(map[uint64]graph.Edge)
	for i, o := range res.Outputs {
		mo, ok := o.(*mstOutput)
		if !ok {
			return nil, fmt.Errorf("core: machine %d produced no MST output", i)
		}
		for v, l := range mo.labels {
			out.Labels[v] = l
		}
		for _, e := range mo.edges {
			byID[graph.EdgeID(e.U, e.V, n)] = e
		}
		out.SketchFailures += mo.failures
		if mo.phases > out.Phases {
			out.Phases = mo.phases
		}
		if mo.elimIters > out.ElimIters {
			out.ElimIters = mo.elimIters
		}
		if mo.weakRounds > out.WeakRounds {
			out.WeakRounds = mo.weakRounds
		}
		if mo.vertexEdges != nil {
			if out.VertexEdges == nil {
				out.VertexEdges = make(map[int][]graph.Edge)
			}
			for v, es := range mo.vertexEdges {
				out.VertexEdges[v] = es
			}
		}
	}
	ids := make([]uint64, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := byID[id]
		out.Edges = append(out.Edges, e)
		out.TotalWeight += e.W
	}
	return out, nil
}

type mstMachine struct {
	*machine
	mstCfg MSTConfig
	w      *MWOE
}

func (m *mstMachine) run() error {
	defer m.ReleasePools()
	if err := m.Setup(); err != nil {
		return err
	}
	m.w = NewMWOE(m.Merger, m.mstCfg.MaxElimIters)
	out := &mstOutput{}
	for m.Phase = 0; m.Phase < m.Cfg.MaxPhases; m.Phase++ {
		m.StateSlot = 0
		m.PhaseActive = 0
		m.w.Select()
		m.Collapse()
		m.BroadcastAndRelabel()
		active, failures, _ := m.PhaseSync()
		if m.Cfg.PhaseHook != nil && m.Ctx.ID() == m.Cfg.PhaseHookID {
			m.Cfg.PhaseHook(m.Phase, m.Ctx.Round())
		}
		out.phases = m.Phase + 1
		if active == 0 && failures == 0 {
			break
		}
	}
	out.weakRounds = m.Ctx.Round()

	if m.mstCfg.StrongOutput {
		out.vertexEdges = m.w.DisseminateStrong()
	}

	out.labels = m.Labels
	out.failures = m.Failures
	out.elimIters = m.w.ElimIters
	var edges []graph.Edge
	for _, id := range SortedKeys(m.w.Edges) {
		edges = append(edges, m.w.Edges[id])
	}
	out.edges = edges
	m.Ctx.SetOutput(out)
	return nil
}
