// MST construction (§3.1, Theorem 2): Boruvka phases as in connectivity,
// but each phase finds every component's minimum-weight outgoing edge
// (MWOE) by repeated sketch-and-eliminate: sample a random outgoing edge,
// broadcast its weight to the component's parts, re-sketch only strictly
// lighter edges, and repeat until the sampler reports an empty vector —
// the last sampled edge is then the MWOE w.h.p. Every MWOE is an MST edge
// by the cut property (weights are totally ordered by (w, edge ID), so the
// MST is unique); components then merge along DRR trees exactly as in the
// connectivity algorithm.
//
// Output criteria (Theorem 2): by default every MST edge is known to at
// least one machine (the proxy that recorded it), achieving Õ(n/k²)
// rounds. StrongOutput additionally routes every MST edge to the home
// machines of both endpoints — the classical output criterion — which the
// paper proves costs Θ̃(n/k) in the worst case (experiment E7 reproduces
// the star-graph separation).

package core

import (
	"fmt"
	"sort"

	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/proxy"
	"kmgraph/internal/sketch"
	"kmgraph/internal/wire"
)

// MSTConfig parameterizes an MST run.
type MSTConfig struct {
	Config
	// StrongOutput also delivers each MST edge to both endpoints' home
	// machines (Theorem 2(b)).
	StrongOutput bool
	// MaxElimIters caps elimination iterations per phase; 0 selects
	// 2·ceil(log2 n) + 8 (enough for w.h.p. convergence).
	MaxElimIters int
}

// MSTResult is the outcome of an MST run.
type MSTResult struct {
	// Edges is the minimum spanning forest under the (weight, edge ID)
	// order, in canonical form, sorted by edge ID.
	Edges []graph.Edge
	// TotalWeight is the forest weight.
	TotalWeight int64
	// Labels is the final component labeling (as in connectivity).
	Labels []uint64
	// Phases is the number of Boruvka phases executed.
	Phases int
	// ElimIters is the total number of elimination iterations.
	ElimIters int
	// SketchFailures counts sampling failures.
	SketchFailures int64
	// WeakRounds is the round count before strong-output dissemination
	// (equals Metrics.Rounds when StrongOutput is false).
	WeakRounds int
	// VertexEdges, in StrongOutput mode, maps each vertex to the MST
	// edges incident to it as known by its home machine.
	VertexEdges map[int][]graph.Edge
	// Metrics is the engine's cost accounting.
	Metrics kmachine.Metrics
}

type mstOutput struct {
	labels      map[int]uint64
	edges       []graph.Edge
	vertexEdges map[int][]graph.Edge
	failures    int64
	phases      int
	elimIters   int
	weakRounds  int
}

// RunMST executes the MST algorithm on g under a fresh random vertex
// partition.
func RunMST(g *graph.Graph, cfg MSTConfig) (*MSTResult, error) {
	cfg.Config = cfg.Config.withDefaults(g.N())
	if cfg.MaxElimIters == 0 {
		l := 0
		for s := 1; s < g.N(); s <<= 1 {
			l++
		}
		cfg.MaxElimIters = 2*l + 8
	}
	part := kmachine.NewRVP(g, cfg.K, uint64(cfg.Seed)^0x9e37)
	cluster, err := kmachine.New(kmachine.Config{
		K:                   cfg.K,
		BandwidthBits:       cfg.BandwidthBits,
		MessageOverheadBits: cfg.MessageOverheadBits,
		Seed:                cfg.Seed,
		MaxRounds:           cfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}
	res, err := cluster.Run(func(ctx *kmachine.Ctx) error {
		m := &mstMachine{machine: newMachine(ctx, part.View(ctx.ID()), cfg.Config), mstCfg: cfg}
		return m.run()
	})
	if err != nil {
		return nil, err
	}
	return assembleMST(g.N(), res)
}

func assembleMST(n int, res *kmachine.Result) (*MSTResult, error) {
	out := &MSTResult{Labels: make([]uint64, n), Metrics: res.Metrics}
	byID := make(map[uint64]graph.Edge)
	for i, o := range res.Outputs {
		mo, ok := o.(*mstOutput)
		if !ok {
			return nil, fmt.Errorf("core: machine %d produced no MST output", i)
		}
		for v, l := range mo.labels {
			out.Labels[v] = l
		}
		for _, e := range mo.edges {
			byID[graph.EdgeID(e.U, e.V, n)] = e
		}
		out.SketchFailures += mo.failures
		if mo.phases > out.Phases {
			out.Phases = mo.phases
		}
		if mo.elimIters > out.ElimIters {
			out.ElimIters = mo.elimIters
		}
		if mo.weakRounds > out.WeakRounds {
			out.WeakRounds = mo.weakRounds
		}
		if mo.vertexEdges != nil {
			if out.VertexEdges == nil {
				out.VertexEdges = make(map[int][]graph.Edge)
			}
			for v, es := range mo.vertexEdges {
				out.VertexEdges[v] = es
			}
		}
	}
	ids := make([]uint64, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := byID[id]
		out.Edges = append(out.Edges, e)
		out.TotalWeight += e.W
	}
	return out, nil
}

type mstMachine struct {
	*machine
	mstCfg    MSTConfig
	mstEdges  map[uint64]graph.Edge
	elimIters int
}

func (m *mstMachine) run() error {
	if err := m.Setup(); err != nil {
		return err
	}
	m.mstEdges = make(map[uint64]graph.Edge)
	out := &mstOutput{}
	for m.Phase = 0; m.Phase < m.Cfg.MaxPhases; m.Phase++ {
		m.StateSlot = 0
		m.PhaseActive = 0
		m.selectMWOE()
		m.Collapse()
		m.BroadcastAndRelabel()
		active := m.Comm.AllSum(m.PhaseActive)
		failures := m.Comm.AllSum(m.PhaseFailures())
		out.phases = m.Phase + 1
		if active == 0 && failures == 0 {
			break
		}
	}
	out.weakRounds = m.Ctx.Round()

	if m.mstCfg.StrongOutput {
		out.vertexEdges = m.disseminateStrong()
	}

	out.labels = m.Labels
	out.failures = m.Failures
	out.elimIters = m.elimIters
	var edges []graph.Edge
	for _, id := range SortedKeys(m.mstEdges) {
		edges = append(edges, m.mstEdges[id])
	}
	out.edges = edges
	m.Ctx.SetOutput(out)
	return nil
}

const (
	tagThreshold = byte(1)
	tagState     = byte(2)
)

// edgeLessHalf reports whether edge (u, h) precedes threshold (tw, tid)
// in the (weight, edge ID) total order.
func edgeLessHalf(u int, h graph.Half, n int, tw int64, tid uint64) bool {
	if h.W != tw {
		return h.W < tw
	}
	return graph.EdgeID(u, h.To, n) < tid
}

// selectMWOE runs the per-phase elimination loop (§3.1) and leaves, in
// m.States, each component's MWOE decision with DRR parent applied.
func (m *mstMachine) selectMWOE() {
	k := m.Ctx.K()
	n := m.View.N()
	parts := m.Parts()

	// Iteration 0: unfiltered sketches, exactly as connectivity.
	seed := m.Sh.SketchSeed(m.Phase, 0)
	var out []proxy.Out
	for _, label := range SortedKeys(parts) {
		sk := sketch.New(m.Cfg.Sketch, seed)
		for _, v := range parts[label] {
			sk.AddVertex(v, m.View.Adj(v), nil)
		}
		buf := wire.AppendUvarint(nil, label)
		buf = sk.EncodeTo(buf)
		out = append(out, proxy.Out{Dst: m.ProxyOf(0, label), Data: buf})
	}
	recv := m.Comm.Exchange(out)

	m.States = make(map[uint64]*CompState)
	sums := make(map[uint64]*sketch.Sketch)
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		label := r.Uvarint()
		sk, err := sketch.Decode(m.Cfg.Sketch, seed, msg.Data[len(msg.Data)-r.Len():])
		if err != nil {
			panic(fmt.Sprintf("core: bad sketch from %d: %v", msg.Src, err))
		}
		st := m.States[label]
		if st == nil {
			st = NewCompState(label, k)
			m.States[label] = st
			sums[label] = sk
		} else if err := sums[label].Add(sk); err != nil {
			panic(err)
		}
		st.Holders[msg.Src/8] |= 1 << uint(msg.Src%8)
	}

	active := m.sampleAndResolve(sums)

	// Elimination iterations: threshold broadcast, filtered re-sketch,
	// re-sample, until every component's sampler comes back empty.
	for s := 1; m.Comm.AllSum(active) > 0; s++ {
		m.elimIters++
		if s > m.mstCfg.MaxElimIters {
			// Truncated: discard this phase's decision for the remaining
			// active components (conservative; negligible probability).
			for _, st := range m.States {
				if !st.ElimDone {
					st.ElimDone = true
					st.HasBest = false
					st.Cur, st.Parent = st.Label, st.Label
					m.Failures++
				}
			}
			break
		}

		// Combined exchange: thresholds to part holders + state handoff.
		out = nil
		newStates := make(map[uint64]*CompState)
		thresholds := make(map[uint64][2]uint64) // label -> {weight(bits), id}
		for _, label := range SortedKeys(m.States) {
			st := m.States[label]
			if st.HasBest && !st.ElimDone {
				buf := []byte{tagThreshold}
				buf = wire.AppendUvarint(buf, st.Label)
				buf = wire.AppendVarint(buf, st.BestW)
				buf = wire.AppendUvarint(buf, graph.EdgeID(st.BestU, st.BestV, n))
				for h := 0; h < k; h++ {
					if st.Holders[h/8]&(1<<uint(h%8)) != 0 {
						out = append(out, proxy.Out{Dst: h, Data: buf})
					}
				}
			}
			dst := m.ProxyOf(m.StateSlot+1, label)
			if dst == m.Ctx.ID() {
				newStates[label] = st
			} else {
				out = append(out, proxy.Out{Dst: dst, Data: append([]byte{tagState}, st.Encode(nil)...)})
			}
		}
		recv = m.Comm.Exchange(out)
		for _, msg := range recv {
			switch msg.Data[0] {
			case tagThreshold:
				r := wire.NewReader(msg.Data[1:])
				label := r.Uvarint()
				w := r.Varint()
				id := r.Uvarint()
				thresholds[label] = [2]uint64{uint64(w), id}
			case tagState:
				r := wire.NewReader(msg.Data[1:])
				st := DecodeState(r)
				newStates[st.Label] = st
			default:
				panic("core: unknown elimination message tag")
			}
		}
		m.States = newStates
		m.StateSlot++

		// Filtered part re-sketches to the (new) proxies.
		seed = m.Sh.SketchSeed(m.Phase, s)
		out = nil
		for _, label := range SortedKeys(thresholds) {
			th := thresholds[label]
			tw, tid := int64(th[0]), th[1]
			sk := sketch.New(m.Cfg.Sketch, seed)
			for _, v := range parts[label] {
				sk.AddVertex(v, m.View.Adj(v), func(u int, h graph.Half) bool {
					return edgeLessHalf(u, h, n, tw, tid)
				})
			}
			buf := wire.AppendUvarint(nil, label)
			buf = sk.EncodeTo(buf)
			out = append(out, proxy.Out{Dst: m.ProxyOf(m.StateSlot, label), Data: buf})
		}
		recv = m.Comm.Exchange(out)

		sums = make(map[uint64]*sketch.Sketch)
		for _, msg := range recv {
			r := wire.NewReader(msg.Data)
			label := r.Uvarint()
			sk, err := sketch.Decode(m.Cfg.Sketch, seed, msg.Data[len(msg.Data)-r.Len():])
			if err != nil {
				panic(err)
			}
			if sums[label] == nil {
				sums[label] = sk
			} else if err := sums[label].Add(sk); err != nil {
				panic(err)
			}
		}
		active = m.sampleAndResolve(sums)
	}

	// Decisions: record MWOEs as MST edges and apply the merge rule.
	for _, label := range SortedKeys(m.States) {
		st := m.States[label]
		if st.ElimDone && st.HasBest {
			u, v := st.BestU, st.BestV
			m.mstEdges[graph.EdgeID(u, v, n)] = graph.Edge{U: u, V: v, W: st.BestW}
			m.PhaseActive++
			m.ApplyRank(st, st.TargetLabel)
		}
	}
}

// sampleAndResolve samples each summed sketch, resolves neighbor labels and
// edge weights via home-machine queries, updates component states, and
// returns the local count of components still eliminating.
//
// A component whose filtered vector comes back empty has converged: the
// current best edge is the MWOE.
func (m *mstMachine) sampleAndResolve(sums map[uint64]*sketch.Sketch) uint64 {
	var out []proxy.Out
	pendingEdge := make(map[uint64][2]int) // label -> sampled (x, y)
	for _, label := range SortedKeys(sums) {
		st := m.States[label]
		if st == nil {
			panic("core: sketch sum for unknown state")
		}
		if st.ElimDone {
			continue
		}
		x, y, insideSmaller, status := sums[label].SampleEdge()
		switch status {
		case sketch.Empty:
			// Nothing lighter remains. If a best edge exists, it is the
			// MWOE; otherwise the component has no outgoing edges at all.
			st.ElimDone = true
		case sketch.Failed:
			m.Failures++
			st.ElimDone = true
			st.HasBest = false
		case sketch.Sampled:
			outside := x
			if insideSmaller {
				outside = y
			}
			pendingEdge[label] = [2]int{x, y}
			q := wire.AppendUvarint(nil, uint64(outside))
			q = wire.AppendUvarint(q, uint64(x))
			q = wire.AppendUvarint(q, uint64(y))
			q = wire.AppendUvarint(q, label)
			out = append(out, proxy.Out{Dst: m.View.Home(outside), Data: q})
		}
	}
	recv := m.Comm.Exchange(out)
	out = m.AnswerLabelQueries(recv)
	recv = m.Comm.Exchange(out)

	var active uint64
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		askLabel := r.Uvarint()
		nbrLabel := r.Uvarint()
		valid := r.Bool()
		w := r.Varint()
		st := m.States[askLabel]
		if st == nil {
			panic("core: MST reply for unknown component")
		}
		if !valid || nbrLabel == askLabel {
			m.Failures++
			st.ElimDone = true
			st.HasBest = false
			continue
		}
		xy := pendingEdge[askLabel]
		st.HasBest = true
		st.BestU, st.BestV = xy[0], xy[1]
		st.BestW = w
		st.TargetLabel = nbrLabel
		active++
	}
	return active
}

// disseminateStrong routes every recorded MST edge to the home machines of
// both endpoints (Theorem 2(b)'s output criterion) and returns this
// machine's vertex-to-incident-MST-edges map.
func (m *mstMachine) disseminateStrong() map[int][]graph.Edge {
	n := m.View.N()
	var out []proxy.Out
	for _, id := range SortedKeys(m.mstEdges) {
		e := m.mstEdges[id]
		buf := wire.AppendUvarint(nil, uint64(e.U))
		buf = wire.AppendUvarint(buf, uint64(e.V))
		buf = wire.AppendVarint(buf, e.W)
		hu, hv := m.View.Home(e.U), m.View.Home(e.V)
		out = append(out, proxy.Out{Dst: hu, Data: buf})
		if hv != hu {
			out = append(out, proxy.Out{Dst: hv, Data: buf})
		}
	}
	recv := m.Comm.Exchange(out)
	seen := make(map[int]map[uint64]bool)
	ve := make(map[int][]graph.Edge)
	add := func(v int, e graph.Edge) {
		if m.View.Home(v) != m.Ctx.ID() {
			return
		}
		id := graph.EdgeID(e.U, e.V, n)
		if seen[v] == nil {
			seen[v] = make(map[uint64]bool)
		}
		if seen[v][id] {
			return
		}
		seen[v][id] = true
		ve[v] = append(ve[v], e)
	}
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		e := graph.Edge{U: int(r.Uvarint()), V: int(r.Uvarint()), W: r.Varint()}
		add(e.U, e)
		add(e.V, e)
	}
	return ve
}
