package core

import (
	"testing"

	"kmgraph/internal/graph"
)

func checkMST(t *testing.T, name string, g *graph.Graph, cfg MSTConfig) *MSTResult {
	t.Helper()
	res, err := RunMST(g, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	wantForest, wantTotal := graph.KruskalMST(g)
	if len(res.Edges) != len(wantForest) {
		t.Errorf("%s: %d edges, want %d", name, len(res.Edges), len(wantForest))
	}
	if res.TotalWeight != wantTotal {
		t.Errorf("%s: total weight %d, want %d", name, res.TotalWeight, wantTotal)
	}
	// With distinct (weight, id) order the MST is unique: exact set match.
	want := make(map[uint64]bool, len(wantForest))
	for _, e := range wantForest {
		want[graph.EdgeID(e.U, e.V, g.N())] = true
	}
	for _, e := range res.Edges {
		if !want[graph.EdgeID(e.U, e.V, g.N())] {
			t.Errorf("%s: edge %v not in the unique MST", name, e)
		}
	}
	if res.Metrics.DroppedMessages != 0 {
		t.Errorf("%s: dropped %d messages", name, res.Metrics.DroppedMessages)
	}
	return res
}

func TestMSTFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"tree", graph.WithDistinctWeights(graph.RandomTree(120, 1), 10)},
		{"cycle", graph.WithDistinctWeights(graph.Cycle(80), 11)},
		{"gnm", graph.WithDistinctWeights(graph.GNM(120, 400, 2), 12)},
		{"dense", graph.WithDistinctWeights(graph.GNM(60, 1200, 3), 13)},
		{"grid", graph.WithDistinctWeights(graph.Grid(8, 10), 14)},
		{"complete", graph.WithDistinctWeights(graph.Complete(40), 15)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkMST(t, tc.name, tc.g, MSTConfig{Config: Config{K: 4, Seed: 21}})
		})
	}
}

func TestMSTTies(t *testing.T) {
	// Uniform weights with many ties: the (weight, edge ID) order still
	// defines a unique MST that both oracle and algorithm must agree on.
	g := graph.WithUniformWeights(graph.GNM(100, 300, 5), 3, 6)
	checkMST(t, "ties", g, MSTConfig{Config: Config{K: 4, Seed: 2}})
}

func TestMSTUnweighted(t *testing.T) {
	// All weights 1: any spanning tree is minimum; check weight and span.
	g := graph.GNM(100, 250, 7)
	res, err := RunMST(g, MSTConfig{Config: Config{K: 4, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	_, wantTotal := graph.KruskalMST(g)
	if res.TotalWeight != wantTotal {
		t.Errorf("total = %d, want %d", res.TotalWeight, wantTotal)
	}
	sub := graph.FromEdges(g.N(), res.Edges)
	if graph.ComponentCount(sub) != graph.ComponentCount(g) {
		t.Error("result does not span the input's components")
	}
	if graph.HasCycle(sub) {
		t.Error("result contains a cycle")
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := graph.WithDistinctWeights(graph.DisjointComponents(150, 5, 0.4, 4), 16)
	res := checkMST(t, "forest", g, MSTConfig{Config: Config{K: 5, Seed: 8}})
	if len(res.Edges) != 150-5 {
		t.Errorf("forest size %d, want 145", len(res.Edges))
	}
}

func TestMSTAcrossKAndSeeds(t *testing.T) {
	g := graph.WithDistinctWeights(graph.GNM(120, 360, 9), 17)
	for _, k := range []int{2, 3, 6, 10} {
		checkMST(t, "k", g, MSTConfig{Config: Config{K: k, Seed: 31}})
	}
	for seed := int64(0); seed < 4; seed++ {
		checkMST(t, "seed", g, MSTConfig{Config: Config{K: 4, Seed: seed}})
	}
}

func TestMSTStrongOutput(t *testing.T) {
	g := graph.WithDistinctWeights(graph.GNM(80, 200, 10), 18)
	res := checkMST(t, "strong", g, MSTConfig{Config: Config{K: 4, Seed: 5}, StrongOutput: true})
	if res.VertexEdges == nil {
		t.Fatal("no vertex edges in strong mode")
	}
	// Every MST edge must be registered at both endpoints.
	count := make(map[uint64]int)
	for v, es := range res.VertexEdges {
		for _, e := range es {
			if e.U != v && e.V != v {
				t.Fatalf("vertex %d given non-incident edge %v", v, e)
			}
			count[graph.EdgeID(e.U, e.V, g.N())]++
		}
	}
	for _, e := range res.Edges {
		if count[graph.EdgeID(e.U, e.V, g.N())] != 2 {
			t.Errorf("edge %v not known at both endpoints", e)
		}
	}
	// Strong output costs extra rounds.
	if res.WeakRounds >= res.Metrics.Rounds {
		t.Errorf("weak rounds %d >= total %d", res.WeakRounds, res.Metrics.Rounds)
	}
	// Weak mode does not populate vertex edges.
	weak := checkMST(t, "weak", g, MSTConfig{Config: Config{K: 4, Seed: 5}})
	if weak.VertexEdges != nil {
		t.Error("weak mode should not disseminate")
	}
}

func TestMSTElimIterationsLogarithmic(t *testing.T) {
	g := graph.WithDistinctWeights(graph.GNM(200, 800, 11), 19)
	res := checkMST(t, "elim", g, MSTConfig{Config: Config{K: 4, Seed: 6}})
	if res.ElimIters == 0 {
		t.Error("expected elimination iterations")
	}
	// Total elimination iterations across all phases stay modest:
	// O(log n) per phase, O(log n) phases.
	if res.ElimIters > 200 {
		t.Errorf("elimination iterations %d unexpectedly high", res.ElimIters)
	}
}

func TestMSTDeterminism(t *testing.T) {
	g := graph.WithDistinctWeights(graph.GNM(90, 270, 12), 20)
	cfg := MSTConfig{Config: Config{K: 4, Seed: 77}}
	a, err := RunMST(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMST(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Rounds != b.Metrics.Rounds || a.TotalWeight != b.TotalWeight {
		t.Error("nondeterministic MST run")
	}
}

func TestEdgeCheckSelectionConnectivity(t *testing.T) {
	g := graph.DisjointComponents(250, 4, 0.4, 13)
	res := checkAgainstOracle(t, "edgecheck", g, Config{K: 4, Seed: 9, EdgeCheckSelection: true})
	if res.SketchFailures != 0 {
		t.Errorf("edge-check mode reported %d sketch failures", res.SketchFailures)
	}
	// Edge-check must also work on dense graphs.
	dense := graph.GNM(80, 2000, 14)
	checkAgainstOracle(t, "edgecheck-dense", dense, Config{K: 4, Seed: 10, EdgeCheckSelection: true})
}
