package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"
	"time"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/transport"
	"kmgraph/internal/transport/local"
)

// metricsFingerprint folds every field of a Metrics so any behavioral
// drift introduced by the chaos wrapper shows up as a mismatch.
func metricsFingerprint(m *kmachine.Metrics) uint64 {
	h := fnv.New64a()
	add := func(x int64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(uint64(x) >> (8 * i))
		}
		h.Write(b[:])
	}
	add(int64(m.Rounds))
	add(m.Messages)
	add(m.PayloadBytes)
	add(m.MaxLinkBits)
	add(int64(m.DroppedMessages))
	for _, row := range m.LinkBits {
		for _, b := range row {
			add(b)
		}
	}
	for i := range m.SentMsgs {
		add(m.SentMsgs[i])
		add(m.RecvMsgs[i])
	}
	return h.Sum64()
}

// runConnectivity runs the connectivity algorithm over a chaos-wrapped
// local transport and returns the assembled result, the fault journal,
// and the run error.
func runConnectivity(n, m int, gs int64, cfg core.Config, plan Plan) (*core.Result, []Fault, error) {
	part, err := kmachine.LoadShards(graph.StreamGNM(n, m, gs), cfg.K, uint64(cfg.Seed)^0x9e37)
	if err != nil {
		return nil, nil, err
	}
	cfg = cfg.WithDefaults(part.N())
	var ct *Transport
	cluster, err := kmachine.NewWithTransport(kmachine.Config{
		K:                   cfg.K,
		BandwidthBits:       cfg.BandwidthBits,
		MessageOverheadBits: cfg.MessageOverheadBits,
		Seed:                cfg.Seed,
		MaxRounds:           cfg.MaxRounds,
	}, func(p transport.Params, met *transport.Metrics, workers int) (transport.Transport, error) {
		ct = New(local.New(p, met, workers), plan)
		return ct, nil
	})
	if err != nil {
		return nil, nil, err
	}
	view := func(id int) core.GraphView { return part.View(id) }
	kres, err := cluster.Run(core.ConnectivityHandler(view, cfg))
	var journal []Fault
	if ct != nil {
		journal = append(journal, ct.Journal()...)
	}
	if err != nil {
		return nil, journal, err
	}
	res, err := core.Assemble(part.N(), kres)
	return res, journal, err
}

// TestNoFaultGolden pins zero behavioral drift from the wrapper: a
// zero-Plan chaos transport produces results and Metrics bit-identical
// to the bare local backend.
func TestNoFaultGolden(t *testing.T) {
	const (
		n, m = 600, 1800
		gs   = int64(7)
	)
	cfg := core.Config{K: 6, Seed: 11}

	bare, err := core.RunSource(graph.StreamGNM(n, m, gs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, journal, err := runConnectivity(n, m, gs, cfg, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(journal) != 0 {
		t.Fatalf("zero plan journaled faults: %v", journal)
	}
	if wrapped.Components != bare.Components {
		t.Errorf("components: chaos %d, bare %d", wrapped.Components, bare.Components)
	}
	for v := range bare.Labels {
		if wrapped.Labels[v] != bare.Labels[v] {
			t.Fatalf("label of vertex %d drifted", v)
		}
	}
	if wf, bf := metricsFingerprint(&wrapped.Metrics), metricsFingerprint(&bare.Metrics); wf != bf {
		t.Errorf("metrics fingerprint drifted: chaos %d, bare %d", wf, bf)
	}
	if bare.Metrics.Rounds == 0 || bare.Metrics.Messages == 0 {
		t.Fatalf("degenerate bare run: %+v", bare.Metrics)
	}
}

// TestReplayDeterminism pins the core chaos property: the same seeded
// plan over the same workload applies the identical fault sequence and
// produces the identical outcome, run after run.
func TestReplayDeterminism(t *testing.T) {
	const (
		n, m = 300, 900
		gs   = int64(5)
	)
	// MaxRounds small: dropped collective frames stall machines until
	// the shared abort, which must itself replay identically.
	cfg := core.Config{K: 4, Seed: 3, MaxRounds: 1500}
	plan := Plan{Seed: 99, DropProb: 0.01, DelayProb: 0.02, MaxDelayRounds: 3}

	type outcome struct {
		errStr      string
		components  int
		fingerprint uint64
		journal     []Fault
	}
	run := func() outcome {
		res, journal, err := runConnectivity(n, m, gs, cfg, plan)
		o := outcome{journal: journal}
		if err != nil {
			o.errStr = err.Error()
			return o
		}
		o.components = res.Components
		o.fingerprint = metricsFingerprint(&res.Metrics)
		return o
	}
	a, b := run(), run()
	if a.errStr != b.errStr {
		t.Fatalf("error drifted across replays:\n a: %q\n b: %q", a.errStr, b.errStr)
	}
	if a.components != b.components || a.fingerprint != b.fingerprint {
		t.Fatalf("result drifted across replays: %+v vs %+v", a, b)
	}
	if len(a.journal) == 0 {
		t.Fatal("plan with nonzero probabilities applied no faults; pick a busier workload")
	}
	if len(a.journal) != len(b.journal) {
		t.Fatalf("journal length drifted: %d vs %d", len(a.journal), len(b.journal))
	}
	for i := range a.journal {
		if a.journal[i] != b.journal[i] {
			t.Fatalf("journal[%d] drifted: %v vs %v", i, a.journal[i], b.journal[i])
		}
	}
}

// TestCrashAtRound: a scheduled crash surfaces as a structured
// LinkDownError wrapping ErrLinkDown, the engine drains its machines
// instead of hanging, and no goroutines leak.
func TestCrashAtRound(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := core.Config{K: 4, Seed: 1}
	_, _, err := runConnectivity(400, 1200, 9, cfg, Plan{CrashAtRound: 5})
	if err == nil {
		t.Fatal("run survived a scheduled crash")
	}
	if !errors.Is(err, transport.ErrLinkDown) {
		t.Fatalf("err = %v, want wrapping transport.ErrLinkDown", err)
	}
	var ld *transport.LinkDownError
	if !errors.As(err, &ld) {
		t.Fatalf("err = %v, want *transport.LinkDownError", err)
	}
	if ld.Reason != transport.ReasonChaos || ld.Round != 4 {
		t.Fatalf("LinkDownError = %+v, want reason=chaos round=4", ld)
	}
	waitGoroutines(t, base)
}

// TestSeverLink: traffic staged on a severed link kills the run with a
// link-down error, like a dead TCP peer would.
func TestSeverLink(t *testing.T) {
	cfg := core.Config{K: 4, Seed: 2}
	plan := Plan{Links: []LinkFault{{Src: -1, Dst: 1, FromRound: 3, Action: ActSever}}}
	_, journal, err := runConnectivity(400, 1200, 9, cfg, plan)
	if !errors.Is(err, transport.ErrLinkDown) {
		t.Fatalf("err = %v, want wrapping transport.ErrLinkDown", err)
	}
	if len(journal) == 0 || journal[len(journal)-1].Action != ActSever {
		t.Fatalf("journal = %v, want trailing sever", journal)
	}
}

// TestLinkDownErrorIdentity pins the structured error's contract:
// errors.Is through fmt wrapping, errors.As extraction, and the
// underlying cause staying reachable.
func TestLinkDownErrorIdentity(t *testing.T) {
	cause := errors.New("connection reset")
	var err error = &transport.LinkDownError{
		Peer: 2, Addr: "10.0.0.7:9601", Round: 41,
		Reason: transport.ReasonCrash, Err: cause,
	}
	err = fmt.Errorf("dist: worker 2: %w", err)
	if !errors.Is(err, transport.ErrLinkDown) {
		t.Fatal("errors.Is(err, ErrLinkDown) = false")
	}
	if !errors.Is(err, cause) {
		t.Fatal("underlying cause unreachable")
	}
	var ld *transport.LinkDownError
	if !errors.As(err, &ld) || ld.Peer != 2 || ld.Round != 41 || ld.Reason != transport.ReasonCrash {
		t.Fatalf("errors.As = %+v", ld)
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base (goleak-style, mirroring the kmachine cancellation tests).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
