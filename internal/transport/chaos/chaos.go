// Package chaos is the fault-injection transport backend: it wraps any
// transport.Transport and perturbs its rounds according to a
// deterministic, seeded plan — dropped messages, delayed messages,
// severed links, and whole-participant crashes at a chosen round. It is
// the robustness analog of the golden-metrics tests: every failure mode
// a distributed run can hit is reproducible bit-for-bit in a unit test
// or CI job, because every fault decision is a pure function of
// (seed, round, src, dst, message ordinal) — never of wall-clock time
// or goroutine scheduling.
//
// A chaos transport with the zero Plan is a pure pass-through: results
// and Metrics are bit-identical to the wrapped backend's (pinned by the
// golden equality test), so the wrapper itself provably adds no
// behavioral drift.
package chaos

import (
	"errors"
	"fmt"
	"sort"

	"kmgraph/internal/hashing"
	"kmgraph/internal/transport"
)

// Action is the kind of fault applied to a message or link.
type Action uint8

const (
	// ActDrop silently discards the message.
	ActDrop Action = iota + 1
	// ActDelay holds the message for DelayRounds barriers, then injects
	// it as if freshly staged.
	ActDelay
	// ActSever kills the directed link: the first barrier at or after
	// FromRound that stages a message on it fails with a LinkDownError,
	// exactly as a dead TCP peer would surface.
	ActSever
)

func (a Action) String() string {
	switch a {
	case ActDrop:
		return "drop"
	case ActDelay:
		return "delay"
	case ActSever:
		return "sever"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// LinkFault is one scheduled per-link fault.
type LinkFault struct {
	// Src, Dst name the directed link (-1 matches any machine).
	Src, Dst int
	// FromRound is the first barrier (1-based, counting Round calls) the
	// fault applies to; 0 means from the start.
	FromRound uint64
	// ToRound is the last barrier the fault applies to; 0 means forever.
	// Sever ignores ToRound: a severed link stays severed.
	ToRound uint64
	// Action is what happens to matching messages.
	Action Action
	// DelayRounds is the hold duration for ActDelay (minimum 1).
	DelayRounds int
}

func (f *LinkFault) matches(round uint64, src, dst int) bool {
	if f.FromRound > 0 && round < f.FromRound {
		return false
	}
	if f.Action != ActSever && f.ToRound > 0 && round > f.ToRound {
		return false
	}
	if f.Src >= 0 && f.Src != src {
		return false
	}
	if f.Dst >= 0 && f.Dst != dst {
		return false
	}
	return true
}

// Plan is a deterministic fault schedule. The zero value injects
// nothing. Probabilistic faults are decided by hashing
// (Seed, round, src, dst, ordinal), so two runs with the same plan see
// exactly the same faults regardless of timing.
type Plan struct {
	// Seed drives the probabilistic coins.
	Seed int64
	// DropProb drops each staged message independently with this
	// probability.
	DropProb float64
	// DelayProb delays each surviving message with this probability by
	// 1 + (hash mod MaxDelayRounds) barriers.
	DelayProb float64
	// MaxDelayRounds bounds a probabilistic delay (default 4).
	MaxDelayRounds int
	// CrashAtRound makes Round fail with a LinkDownError at that barrier
	// (1-based), simulating this participant observing a peer crash; 0
	// disables. The engine then runs its dead-transport drain path.
	CrashAtRound uint64
	// Links are explicit per-link schedules, applied before the
	// probabilistic coins.
	Links []LinkFault
}

// Fault is one applied fault, journaled for replay comparison.
type Fault struct {
	Round    uint64
	Src, Dst int
	Action   Action
	Delay    int // rounds held, for ActDelay
}

func (f Fault) String() string {
	return fmt.Sprintf("r%d %d->%d %s", f.Round, f.Src, f.Dst, f.Action)
}

// Transport wraps an inner transport and applies the plan's faults to
// every Round. Like every transport, it is driven by a single engine
// goroutine; Round is never called concurrently.
type Transport struct {
	inner transport.Transport
	plan  Plan
	round uint64 // barriers seen (1-based during Round)

	delayed []delayedMsg
	staged  []transport.Message // scratch for the filtered round
	journal []Fault
	flight  *transport.FlightRecorder
	crashed bool
}

type delayedMsg struct {
	due uint64 // barrier at which the message re-enters
	msg transport.Message
}

// New wraps inner with the plan. The wrapper owns inner: Close closes it.
func New(inner transport.Transport, plan Plan) *Transport {
	if plan.MaxDelayRounds <= 0 {
		plan.MaxDelayRounds = 4
	}
	return &Transport{inner: inner, plan: plan, flight: transport.NewFlightRecorder(0)}
}

// Flight returns the chaos layer's flight recorder: the last K rounds
// of staged traffic, so injected crashes carry the same post-mortem a
// real dead link would.
func (t *Transport) Flight() *transport.FlightRecorder { return t.flight }

// fail records a terminal flight entry and attaches the snapshot to the
// injected link-down error.
func (t *Transport) fail(ld *transport.LinkDownError) error {
	t.flight.RecordError(t.round, ld)
	ld.Flight = t.flight.Snapshot()
	return ld
}

// record appends one flight entry for the traffic handed to the inner
// backend this round (the chaos layer sees staged messages, not framed
// links, so it records one aggregate pseudo-link).
func (t *Transport) record(msgs []transport.Message) {
	var bytes int64
	for _, m := range msgs {
		bytes += int64(len(m.Data))
	}
	t.flight.Record(transport.RoundFlight{Seq: t.round,
		Links: []transport.LinkFlight{{Peer: -1, FramesSent: int64(len(msgs)), BytesSent: bytes}}})
}

// wrap attaches our snapshot to an inner link-down error that carries
// none (the local backend, for one, has no recorder of its own).
func (t *Transport) wrap(err error) error {
	if err == nil {
		return nil
	}
	var ld *transport.LinkDownError
	if errors.As(err, &ld) && ld.Flight == nil {
		ld.Flight = t.flight.Snapshot()
	}
	return err
}

// Hosted returns the wrapped transport's machine range.
func (t *Transport) Hosted() (int, int) { return t.inner.Hosted() }

// Pending reports the wrapped transport's in-flight bits; messages held
// by the chaos layer count as pending too (they will re-enter a later
// round).
func (t *Transport) Pending() bool { return len(t.delayed) > 0 || t.inner.Pending() }

// Remnants reports the wrapped transport's queued remnants plus any
// messages still held by the chaos layer at termination.
func (t *Transport) Remnants() (int, int64) {
	n, b := t.inner.Remnants()
	for _, d := range t.delayed {
		n++
		b += int64(len(d.msg.Data))
	}
	return n, b
}

// Close closes the wrapped transport.
func (t *Transport) Close() error { return t.inner.Close() }

// Journal returns the faults applied so far, in application order. Two
// runs of the same plan over the same workload produce identical
// journals — the replay-determinism tests pin exactly that.
func (t *Transport) Journal() []Fault { return t.journal }

// coin returns a deterministic uniform value in [0,1) for one decision.
func (t *Transport) coin(round uint64, src, dst, ordinal int, salt uint64) float64 {
	h := hashing.Hash4(uint64(t.plan.Seed)^salt, round, uint64(src)<<32|uint64(uint32(dst)), uint64(ordinal))
	return float64(h>>11) / float64(1<<53)
}

const (
	saltDrop  = 0xd509
	saltDelay = 0xde1a
)

// Round applies the plan to the staged messages, then drives the inner
// transport. A crash-at-round or a traversed severed link fails with a
// structured LinkDownError (reason "chaos") wrapping ErrLinkDown, which
// is exactly what the engine's abort path and the coordinator's retry
// logic see from a real dead peer.
func (t *Transport) Round(in *transport.RoundIn, out *transport.RoundOut) error {
	if t.crashed {
		return &transport.LinkDownError{Peer: -1, Round: t.round, Reason: transport.ReasonChaos,
			Err: fmt.Errorf("chaos: transport already crashed")}
	}
	t.round++
	if t.plan.CrashAtRound > 0 && t.round >= t.plan.CrashAtRound {
		t.crashed = true
		return t.fail(&transport.LinkDownError{Peer: -1, Round: t.round - 1, Reason: transport.ReasonChaos,
			Err: fmt.Errorf("chaos: crash scheduled at round %d", t.plan.CrashAtRound)})
	}
	if t.zeroFault() {
		// Pure pass-through: hand the engine's RoundIn to the inner
		// backend untouched, so the no-fault goldens hold trivially.
		t.record(in.Msgs)
		return t.wrap(t.inner.Round(in, out))
	}

	t.staged = t.staged[:0]
	// Delayed messages whose hold expired re-enter first, in (due,
	// original order) — deterministic because the journal order is.
	if len(t.delayed) > 0 {
		keep := t.delayed[:0]
		for _, d := range t.delayed {
			if d.due <= t.round {
				t.staged = append(t.staged, d.msg)
			} else {
				keep = append(keep, d)
			}
		}
		t.delayed = keep
	}
	for i, m := range in.Msgs {
		if fault, err := t.apply(m, i); err != nil {
			t.crashed = true
			var ld *transport.LinkDownError
			if errors.As(err, &ld) {
				return t.fail(ld)
			}
			return err
		} else if !fault {
			t.staged = append(t.staged, m)
		}
	}

	// The inner transport must not observe the engine's slice; swap in
	// the filtered view with the other barrier fields intact.
	t.record(t.staged)
	filtered := transport.RoundIn{Msgs: t.staged, Events: in.Events, DoneDelta: in.DoneDelta}
	return t.wrap(t.inner.Round(&filtered, out))
}

// zeroFault reports whether the plan can never perturb a message.
func (t *Transport) zeroFault() bool {
	return t.plan.DropProb == 0 && t.plan.DelayProb == 0 &&
		len(t.plan.Links) == 0 && len(t.delayed) == 0
}

// apply runs one message through the schedule and the coins. It reports
// whether the message was consumed (dropped or delayed), or an error for
// a severed link.
func (t *Transport) apply(m transport.Message, ordinal int) (bool, error) {
	for i := range t.plan.Links {
		f := &t.plan.Links[i]
		if !f.matches(t.round, m.Src, m.Dst) {
			continue
		}
		switch f.Action {
		case ActSever:
			t.journal = append(t.journal, Fault{Round: t.round, Src: m.Src, Dst: m.Dst, Action: ActSever})
			return true, &transport.LinkDownError{Peer: -1, Round: t.round - 1, Reason: transport.ReasonChaos,
				Err: fmt.Errorf("chaos: link %d->%d severed since round %d", m.Src, m.Dst, f.FromRound)}
		case ActDrop:
			t.journal = append(t.journal, Fault{Round: t.round, Src: m.Src, Dst: m.Dst, Action: ActDrop})
			return true, nil
		case ActDelay:
			d := f.DelayRounds
			if d < 1 {
				d = 1
			}
			t.hold(m, d)
			return true, nil
		}
	}
	if t.plan.DropProb > 0 && t.coin(t.round, m.Src, m.Dst, ordinal, saltDrop) < t.plan.DropProb {
		t.journal = append(t.journal, Fault{Round: t.round, Src: m.Src, Dst: m.Dst, Action: ActDrop})
		return true, nil
	}
	if t.plan.DelayProb > 0 && t.coin(t.round, m.Src, m.Dst, ordinal, saltDelay) < t.plan.DelayProb {
		h := hashing.Hash4(uint64(t.plan.Seed)^0x5e1f, t.round, uint64(m.Src), uint64(ordinal))
		t.hold(m, 1+int(h%uint64(t.plan.MaxDelayRounds)))
		return true, nil
	}
	return false, nil
}

// hold journals and parks a delayed message. Payload bytes are safe to
// retain: the engine's send contract makes them immutable once sent.
func (t *Transport) hold(m transport.Message, rounds int) {
	t.journal = append(t.journal, Fault{Round: t.round, Src: m.Src, Dst: m.Dst, Action: ActDelay, Delay: rounds})
	t.delayed = append(t.delayed, delayedMsg{due: t.round + uint64(rounds), msg: m})
	// Keep re-entry order stable under mixed delays: (due, insertion).
	sort.SliceStable(t.delayed, func(i, j int) bool { return t.delayed[i].due < t.delayed[j].due })
}
