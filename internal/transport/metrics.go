package transport

import (
	"fmt"

	"kmgraph/internal/wire"
)

// Metrics aggregates the cost of a run. Rounds is the model's complexity
// measure; the byte/bit counters support the load-balancing (Lemma 1) and
// lower-bound (Theorem 5) experiments. The engine exposes this type as
// kmachine.Metrics (an alias).
//
// Every counter except Rounds and the Dropped pair is owned by exactly one
// destination's link simulator, so a distributed run accumulates disjoint
// partial Metrics per process and MergeMetrics reassembles the exact
// accounting a single-process run would have produced.
type Metrics struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Messages is the number of messages delivered.
	Messages int64
	// PayloadBytes is the total payload delivered (headers excluded).
	PayloadBytes int64
	// LinkBits[s][d] is the total bits transmitted on the directed link
	// s -> d (payload + overhead), excluding free self-delivery.
	LinkBits [][]int64
	// SentMsgs / RecvMsgs count messages per machine.
	SentMsgs, RecvMsgs []int64
	// MaxLinkBits is the maximum over directed links of LinkBits.
	MaxLinkBits int64
	// DroppedMessages / DroppedBytes count traffic addressed to machines
	// that had already halted, or still queued at termination. A correct
	// protocol leaves these at zero.
	DroppedMessages int
	DroppedBytes    int64
}

// NewMetrics returns a zeroed Metrics for a k-machine run.
func NewMetrics(k int) *Metrics {
	lb := make([][]int64, k)
	for i := range lb {
		lb[i] = make([]int64, k)
	}
	return &Metrics{
		LinkBits: lb,
		SentMsgs: make([]int64, k),
		RecvMsgs: make([]int64, k),
	}
}

// Snapshot returns a deep copy of the metrics with MaxLinkBits resolved,
// safe to retain after the run advances.
func (m *Metrics) Snapshot() Metrics {
	cp := *m
	cp.LinkBits = make([][]int64, len(m.LinkBits))
	for i, row := range m.LinkBits {
		cp.LinkBits[i] = append([]int64(nil), row...)
	}
	cp.SentMsgs = append([]int64(nil), m.SentMsgs...)
	cp.RecvMsgs = append([]int64(nil), m.RecvMsgs...)
	cp.MaxLinkBits = 0
	cp.Finish()
	return cp
}

// Finish resolves MaxLinkBits from the LinkBits matrix.
func (m *Metrics) Finish() {
	for _, row := range m.LinkBits {
		for _, b := range row {
			if b > m.MaxLinkBits {
				m.MaxLinkBits = b
			}
		}
	}
}

// TotalBits returns the total bits transmitted across all links.
func (m *Metrics) TotalBits() int64 {
	var t int64
	for _, row := range m.LinkBits {
		for _, b := range row {
			t += b
		}
	}
	return t
}

// CutBits returns the bits that crossed the cut between machines with
// inA[i] true and the rest, in both directions. This is the quantity the
// Theorem 5 simulation argument charges to the two-party protocol.
func (m *Metrics) CutBits(inA []bool) int64 {
	var t int64
	for s, row := range m.LinkBits {
		for d, b := range row {
			if inA[s] != inA[d] {
				t += b
			}
		}
	}
	return t
}

// MeanLinkBits returns the average load over the k(k-1) directed links.
func (m *Metrics) MeanLinkBits() float64 {
	k := len(m.LinkBits)
	if k < 2 {
		return 0
	}
	return float64(m.TotalBits()) / float64(k*(k-1))
}

// String summarizes the metrics.
func (m *Metrics) String() string {
	return fmt.Sprintf("rounds=%d msgs=%d payload=%dB maxLink=%db dropped=%d",
		m.Rounds, m.Messages, m.PayloadBytes, m.MaxLinkBits, m.DroppedMessages)
}

// AppendMetrics encodes m (a k-machine accounting, possibly a partial one
// from a distributed worker) onto b in wire form.
func AppendMetrics(b []byte, m *Metrics) []byte {
	k := len(m.SentMsgs)
	b = wire.AppendUvarint(b, uint64(k))
	b = wire.AppendUvarint(b, uint64(m.Rounds))
	b = wire.AppendVarint(b, m.Messages)
	b = wire.AppendVarint(b, m.PayloadBytes)
	b = wire.AppendVarint(b, int64(m.DroppedMessages))
	b = wire.AppendVarint(b, m.DroppedBytes)
	for _, row := range m.LinkBits {
		for _, v := range row {
			b = wire.AppendVarint(b, v)
		}
	}
	for _, v := range m.SentMsgs {
		b = wire.AppendVarint(b, v)
	}
	for _, v := range m.RecvMsgs {
		b = wire.AppendVarint(b, v)
	}
	return b
}

// ReadMetrics decodes a Metrics encoded by AppendMetrics from r.
func ReadMetrics(r *wire.Reader) (*Metrics, error) {
	k := int(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	const maxK = 1 << 16
	if k < 0 || k > maxK {
		return nil, fmt.Errorf("transport: metrics k=%d out of range", k)
	}
	m := NewMetrics(k)
	m.Rounds = int(r.Uvarint())
	m.Messages = r.Varint()
	m.PayloadBytes = r.Varint()
	m.DroppedMessages = int(r.Varint())
	m.DroppedBytes = r.Varint()
	for s := 0; s < k; s++ {
		for d := 0; d < k; d++ {
			m.LinkBits[s][d] = r.Varint()
		}
	}
	for i := 0; i < k; i++ {
		m.SentMsgs[i] = r.Varint()
	}
	for i := 0; i < k; i++ {
		m.RecvMsgs[i] = r.Varint()
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	m.Finish()
	return m, nil
}

// MergeMetrics folds the partial accounting src (from one worker's hosted
// destinations) into dst. Rounds must agree across partials — every
// participant counts the same global barriers — so a mismatch is reported
// as an error rather than silently averaged. Call Finish on dst after the
// last merge.
func MergeMetrics(dst, src *Metrics) error {
	if len(dst.SentMsgs) != len(src.SentMsgs) {
		return fmt.Errorf("transport: merging metrics with k=%d into k=%d",
			len(src.SentMsgs), len(dst.SentMsgs))
	}
	if dst.Rounds != 0 && src.Rounds != dst.Rounds {
		return fmt.Errorf("transport: round counts diverged across workers: %d vs %d",
			src.Rounds, dst.Rounds)
	}
	if src.Rounds > dst.Rounds {
		dst.Rounds = src.Rounds
	}
	dst.Messages += src.Messages
	dst.PayloadBytes += src.PayloadBytes
	dst.DroppedMessages += src.DroppedMessages
	dst.DroppedBytes += src.DroppedBytes
	for s := range src.LinkBits {
		for d, v := range src.LinkBits[s] {
			dst.LinkBits[s][d] += v
		}
	}
	for i, v := range src.SentMsgs {
		dst.SentMsgs[i] += v
	}
	for i, v := range src.RecvMsgs {
		dst.RecvMsgs[i] += v
	}
	return nil
}
