package tcp

import (
	"strconv"
	"sync/atomic"

	"kmgraph/internal/telemetry"
)

// The transport's telemetry lands in a process-wide registry so every
// link of every concurrent job aggregates into one scrape surface. The
// package starts with a private registry (so counters always work);
// kmserve and kmworker redirect it into their serving registry with
// RegisterTelemetry before opening any links.
var telemetryReg atomic.Pointer[telemetry.Registry]

func init() {
	telemetryReg.Store(telemetry.NewRegistry())
}

// RegisterTelemetry directs all subsequently created links' telemetry
// into reg (exposed by kmserve's and kmworker's GET /metrics).
func RegisterTelemetry(reg *telemetry.Registry) {
	telemetryReg.Store(reg)
}

// Telemetry returns the registry transport telemetry currently lands in.
func Telemetry() *telemetry.Registry {
	return telemetryReg.Load()
}

// barrierWaitBuckets spans the observed range of round-barrier waits:
// tens of microseconds on a warm localhost mesh up to the tens of
// seconds a skewed shard load can impose on the first barrier.
var barrierWaitBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
	0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// linkStats is one peer link's counters, fetched idempotently from the
// current registry at link creation.
type linkStats struct {
	bytesSent, bytesRecv   *telemetry.Counter
	framesSent, framesRecv *telemetry.Counter
}

func newLinkStats(peerIndex int) linkStats {
	reg := telemetryReg.Load()
	l := telemetry.Label{Name: "peer", Value: strconv.Itoa(peerIndex)}
	return linkStats{
		bytesSent: reg.Counter("kmgraph_transport_bytes_sent_total",
			"Bytes written to peer links, including frame headers.", l),
		bytesRecv: reg.Counter("kmgraph_transport_bytes_recv_total",
			"Bytes read from peer links, including frame headers.", l),
		framesSent: reg.Counter("kmgraph_transport_frames_sent_total",
			"Frames written to peer links.", l),
		framesRecv: reg.Counter("kmgraph_transport_frames_recv_total",
			"Frames read from peer links.", l),
	}
}

func barrierWaitHistogram() *telemetry.Histogram {
	return telemetryReg.Load().HistogramWith(barrierWaitBuckets,
		"kmgraph_transport_barrier_wait_seconds",
		"Time a worker spent waiting at the round barrier for peer frames.")
}

func reconnectsCounter() *telemetry.Counter {
	return telemetryReg.Load().Counter("kmgraph_transport_reconnects_total",
		"Peer dial retries during mesh formation.")
}

func handshakeFailuresCounter() *telemetry.Counter {
	return telemetryReg.Load().Counter("kmgraph_transport_handshake_failures_total",
		"Peer handshakes rejected (bad magic, cluster, or link parameters).")
}
