package tcp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"kmgraph/internal/transport"
)

// Transport implements transport.Transport for one participant of a
// multi-process cluster: it runs the link simulator for its hosted
// destinations [lo, hi) and keeps the round barrier in lockstep with
// its peers by exchanging exactly one round frame per link per barrier.
//
// The frame a peer receives carries everything its slice of the
// simulation needs: the messages staged for its hosted machines (each
// source machine lives on exactly one participant, so per-(src,dst)
// FIFO order — the only order the simulator observes — is preserved no
// matter how frames interleave) and the sender's done count, from which
// every participant derives the same global running total and halts at
// the same barrier. All accounting for a destination accrues on its
// owner, so the per-worker partial Metrics merge into exactly the
// single-process numbers.
type Transport struct {
	p      transport.Params
	sw     *transport.Switch
	lo, hi int

	peers   []*Peer // ascending remote index
	owner   []*Peer // machine id -> owning peer (nil for hosted)
	running int     // global running count, derived identically everywhere
	seq     uint64

	inboxes     [][]transport.Message
	barrierWait interface{ Observe(float64) }
	flight      *transport.FlightRecorder
	lastLinks   []transport.LinkFlight // previous cumulative per-peer counters

	closeOnce sync.Once
}

// New assembles the transport for the participant hosting [lo, hi),
// from already-handshaken peer links covering the rest of [0, K).
// workers bounds the sharded transmit fan-out. New takes ownership of
// the peers; Close closes them.
func New(p transport.Params, met *transport.Metrics, workers, lo, hi int, peers []*Peer) (*Transport, error) {
	if lo < 0 || hi > p.K || lo >= hi {
		return nil, fmt.Errorf("tcp: hosting [%d,%d) of %d machines", lo, hi, p.K)
	}
	t := &Transport{
		p:           p,
		sw:          transport.NewSwitch(p, lo, hi, met, workers),
		lo:          lo,
		hi:          hi,
		peers:       append([]*Peer(nil), peers...),
		owner:       make([]*Peer, p.K),
		running:     p.K,
		inboxes:     make([][]transport.Message, hi-lo),
		barrierWait: barrierWaitHistogram(),
		flight:      transport.NewFlightRecorder(0),
		lastLinks:   make([]transport.LinkFlight, len(peers)),
	}
	sort.Slice(t.peers, func(i, j int) bool { return t.peers[i].Index < t.peers[j].Index })
	for _, pr := range t.peers {
		for d := pr.Lo; d < pr.Hi; d++ {
			if d >= lo && d < hi || t.owner[d] != nil {
				return nil, fmt.Errorf("tcp: machine %d hosted twice", d)
			}
			t.owner[d] = pr
		}
	}
	for d := 0; d < p.K; d++ {
		if t.owner[d] == nil && (d < lo || d >= hi) {
			return nil, fmt.Errorf("tcp: machine %d hosted by no participant", d)
		}
	}
	return t, nil
}

// Hosted returns this participant's machine range.
func (t *Transport) Hosted() (int, int) { return t.lo, t.hi }

// Flight returns the transport's flight recorder: the last K barriers'
// per-link traffic, for post-mortems and trace-span annotations.
func (t *Transport) Flight() *transport.FlightRecorder { return t.flight }

// fail records a terminal flight entry for the failing barrier and
// attaches the recorder snapshot to the link-down error, so the abort
// carries its own last-K-rounds post-mortem.
func (t *Transport) fail(err error) error {
	t.flight.RecordError(t.seq, err)
	var ld *transport.LinkDownError
	if errors.As(err, &ld) && ld.Flight == nil {
		ld.Flight = t.flight.Snapshot()
	}
	return err
}

// recordBarrier appends one flight entry for the barrier just
// completed, with per-peer traffic deltas since the previous one.
func (t *Transport) recordBarrier(wait time.Duration) {
	rf := transport.RoundFlight{Seq: t.seq, WaitNs: wait.Nanoseconds()}
	if len(t.peers) > 0 {
		links := make([]transport.LinkFlight, len(t.peers))
		for i, pr := range t.peers {
			cur := transport.LinkFlight{
				Peer:       pr.Index,
				FramesSent: pr.sentFrames,
				FramesRecv: pr.recvFrames.Load(),
				BytesSent:  pr.sentBytes,
				BytesRecv:  pr.recvBytes.Load(),
			}
			prev := t.lastLinks[i]
			t.lastLinks[i] = cur
			links[i] = transport.LinkFlight{
				Peer:       cur.Peer,
				FramesSent: cur.FramesSent - prev.FramesSent,
				FramesRecv: cur.FramesRecv - prev.FramesRecv,
				BytesSent:  cur.BytesSent - prev.BytesSent,
				BytesRecv:  cur.BytesRecv - prev.BytesRecv,
			}
		}
		rf.Links = links
	}
	t.flight.Record(rf)
}

// Round runs one barrier: stage hosted traffic locally, ship each
// peer's share in one frame, wait for every peer's frame (the barrier),
// fold in their done counts and messages, then advance the hosted links
// by one bandwidth quantum. A dead or desynchronized peer surfaces as
// an error wrapping transport.ErrLinkDown.
func (t *Transport) Round(in *transport.RoundIn, out *transport.RoundOut) error {
	t.seq++
	for _, m := range in.Msgs {
		if own := t.owner[m.Dst]; own != nil {
			own.stage = append(own.stage, m)
		} else {
			t.sw.Enqueue(m)
		}
	}
	for _, pr := range t.peers {
		err := pr.writeRound(t.seq, in.DoneDelta, pr.stage)
		pr.stage = pr.stage[:0]
		if err != nil {
			return t.fail(&transport.LinkDownError{
				Peer: pr.Index, Addr: pr.addr, Round: t.seq - 1, Reason: transport.ReasonCrash,
				Err: fmt.Errorf("tcp: sending round %d: %v", t.seq, err),
			})
		}
	}
	t.running -= in.DoneDelta

	start := time.Now()
	for _, pr := range t.peers {
		f, err := pr.recvRound(t.seq)
		if err != nil {
			return t.fail(err)
		}
		t.running -= f.DoneDelta
		for _, m := range f.Msgs {
			if m.Dst < t.lo || m.Dst >= t.hi {
				return t.fail(&transport.LinkDownError{
					Peer: pr.Index, Addr: pr.addr, Round: t.seq - 1, Reason: transport.ReasonDesync,
					Err: fmt.Errorf("tcp: message for machine %d outside our [%d,%d)", m.Dst, t.lo, t.hi),
				})
			}
			t.sw.Enqueue(m)
		}
	}
	wait := time.Since(start)
	t.barrierWait.Observe(wait.Seconds())
	t.recordBarrier(wait)

	out.Running = t.running
	if t.running <= 0 {
		out.Advanced = false
		out.Inboxes = nil
		return nil
	}
	t.sw.TransmitRound()
	for i := range t.inboxes {
		t.inboxes[i] = t.sw.Inbox(t.lo + i)
	}
	out.Advanced = true
	out.Inboxes = t.inboxes
	return nil
}

// Pending reports whether any hosted link has bits in flight.
func (t *Transport) Pending() bool { return t.sw.Active() }

// Remnants reports traffic still queued on hosted links at termination.
func (t *Transport) Remnants() (int, int64) { return t.sw.Remnants() }

// Close tears down every peer link (best-effort Bye, then the socket).
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		t.sw.Stop()
		for _, pr := range t.peers {
			pr.Close()
		}
	})
	return nil
}
