// Package tcp is the multi-process transport backend: a cluster's k
// machines are hosted by several OS processes (workers), each owning a
// contiguous range of machine indices, connected pairwise by TCP links
// carrying length-prefixed binary frames. Every worker runs the same
// round engine over the same link simulator as the in-process backend;
// the only thing that crosses a socket is what a round needs — the
// messages staged for the peer's hosted machines and the barrier deltas
// — so a distributed run produces Metrics bit-identical to a local one.
//
// Framing: every frame is [4-byte little-endian length][1 type
// byte][body], where length counts the type byte plus the body. The
// handshake (Hello) pins cluster identity, k, seed, and the link
// parameters before any round traffic; a mismatch is a handshake
// failure, not undefined behavior. Round frames carry a sequence
// number so a lost or reordered barrier is detected immediately, and a
// dead peer surfaces as transport.ErrLinkDown instead of a hung
// barrier.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"kmgraph/internal/transport"
	"kmgraph/internal/wire"
)

// FrameType distinguishes the frames of the kmgraph transport protocol.
// Types 1-2 flow on peer (worker-to-worker) links; 3-7 on control
// (coordinator-to-worker) links established by the dist layer.
//
//km:exhaustive
type FrameType byte

const (
	// FrameHello opens a peer link: both sides exchange a Hello.
	FrameHello FrameType = 1
	// FrameRound carries one barrier's traffic toward the peer.
	FrameRound FrameType = 2
	// FrameJob carries a job spec from coordinator to worker.
	FrameJob FrameType = 3
	// FrameResult carries a worker's partial result back.
	FrameResult FrameType = 4
	// FrameError carries a worker's job failure back.
	FrameError FrameType = 5
	// FrameBye announces an orderly close (a coordinator cancelling a
	// job, or a worker done with its links).
	FrameBye FrameType = 6
	// FrameHeartbeat is a worker's periodic liveness beat on the control
	// link while a job runs: the coordinator's gather distinguishes a
	// long-running job (beats flowing) from a wedged or dead worker
	// (silence past the heartbeat deadline).
	FrameHeartbeat FrameType = 7
)

// MaxFrameBody bounds a frame's body; larger announcements are protocol
// errors, so a corrupt length prefix cannot trigger an unbounded
// allocation.
const MaxFrameBody = 1 << 28

// helloMagic is the first field of every Hello: "KMGT" plus a protocol
// version, so a stray connection (or a version skew) fails the
// handshake instead of desynchronizing the round protocol.
const helloMagic uint64 = 0x4b4d47_5400_0001 // "KMGT" v1

const frameHeaderLen = 4 + 1 // length prefix + type byte

// AppendFrameHeader reserves a frame header for type t at the end of b;
// the caller appends the body and then calls FinishFrame on the region.
func AppendFrameHeader(b []byte, t FrameType) []byte {
	return append(b, 0, 0, 0, 0, byte(t))
}

// FinishFrame patches the length prefix of the frame starting at off
// (the offset AppendFrameHeader was called at) and returns b.
func FinishFrame(b []byte, off int) []byte {
	binary.LittleEndian.PutUint32(b[off:], uint32(len(b)-off-4))
	return b
}

// AppendFrame appends a complete frame of type t with the given body.
func AppendFrame(b []byte, t FrameType, body []byte) []byte {
	off := len(b)
	b = AppendFrameHeader(b, t)
	b = append(b, body...)
	return FinishFrame(b, off)
}

// ReadFrame reads one frame from r. *buf is the reusable read buffer
// (grown as needed); the returned body aliases it and is valid until
// the next ReadFrame with the same buffer. An oversized or truncated
// frame is an error.
func ReadFrame(r io.Reader, buf *[]byte) (FrameType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[:])
	if length < 1 || length > MaxFrameBody+1 {
		return 0, nil, fmt.Errorf("tcp: frame length %d out of range", length)
	}
	if cap(*buf) < int(length) {
		*buf = make([]byte, length)
	}
	b := (*buf)[:length]
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return FrameType(b[0]), b[1:], nil
}

// Hello is the peer-link handshake: everything two participants must
// agree on before exchanging round frames. BandwidthBits and
// MessageOverheadBits are the job-specified (pre-resolution) values, so
// every participant of one job states the same numbers.
type Hello struct {
	ClusterID           uint64
	K                   int
	Seed                int64
	Index               int // participant index within the job
	Lo, Hi              int // hosted machine range [Lo, Hi)
	BandwidthBits       int
	MessageOverheadBits int
}

// AppendHello encodes h as a FrameHello body.
func AppendHello(b []byte, h *Hello) []byte {
	b = wire.AppendU64(b, helloMagic)
	b = wire.AppendU64(b, h.ClusterID)
	b = wire.AppendUvarint(b, uint64(h.K))
	b = wire.AppendVarint(b, h.Seed)
	b = wire.AppendUvarint(b, uint64(h.Index))
	b = wire.AppendUvarint(b, uint64(h.Lo))
	b = wire.AppendUvarint(b, uint64(h.Hi))
	b = wire.AppendUvarint(b, uint64(h.BandwidthBits))
	b = wire.AppendUvarint(b, uint64(h.MessageOverheadBits))
	return b
}

// maxK mirrors the shard loader's machine-table bound.
const maxK = 1 << 16

// DecodeHello decodes and validates a FrameHello body.
func DecodeHello(body []byte) (*Hello, error) {
	r := wire.NewReader(body)
	if m := r.U64(); m != helloMagic {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("tcp: bad hello magic %#x", m)
	}
	h := &Hello{
		ClusterID:           r.U64(),
		K:                   int(r.Uvarint()),
		Seed:                r.Varint(),
		Index:               int(r.Uvarint()),
		Lo:                  int(r.Uvarint()),
		Hi:                  int(r.Uvarint()),
		BandwidthBits:       int(r.Uvarint()),
		MessageOverheadBits: int(r.Uvarint()),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if h.K < 1 || h.K > maxK {
		return nil, fmt.Errorf("tcp: hello k=%d out of range", h.K)
	}
	if h.Lo < 0 || h.Hi > h.K || h.Lo >= h.Hi {
		return nil, fmt.Errorf("tcp: hello hosts [%d,%d) of %d machines", h.Lo, h.Hi, h.K)
	}
	if h.Index < 0 || h.Index > maxK {
		return nil, fmt.Errorf("tcp: hello index %d out of range", h.Index)
	}
	if h.BandwidthBits < 0 || h.MessageOverheadBits < 0 {
		return nil, errors.New("tcp: hello with negative link parameters")
	}
	return h, nil
}

// RoundFrame is one decoded barrier announcement from a peer.
type RoundFrame struct {
	Seq       uint64
	DoneDelta int
	Msgs      []transport.Message
}

// AppendRoundBody encodes a round announcement: the barrier sequence
// number, how many of the sender's hosted machines returned at this
// barrier, and the messages staged for the receiver's hosted machines
// (grouped by source ascending, per-source send order preserved — the
// only order the receiving link FIFOs observe).
func AppendRoundBody(b []byte, seq uint64, doneDelta int, msgs []transport.Message) []byte {
	b = wire.AppendUvarint(b, seq)
	b = wire.AppendUvarint(b, uint64(doneDelta))
	b = wire.AppendUvarint(b, uint64(len(msgs)))
	for _, m := range msgs {
		b = wire.AppendUvarint(b, uint64(m.Src))
		b = wire.AppendUvarint(b, uint64(m.Dst))
		b = wire.AppendBytes(b, m.Data)
	}
	return b
}

// DecodeRound decodes a FrameRound body into f. Message payloads are
// copied into arena (the frame buffer is reused), so they stay valid
// while queued in the link simulator. Source and destination indices
// are validated against k; every malformed input is an error, never a
// panic.
func DecodeRound(body []byte, k int, arena *wire.Arena, f *RoundFrame) error {
	r := wire.NewReader(body)
	f.Seq = r.Uvarint()
	f.DoneDelta = int(r.Uvarint())
	count := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return err
	}
	if f.DoneDelta < 0 || f.DoneDelta > k {
		return fmt.Errorf("tcp: round doneDelta %d out of range", f.DoneDelta)
	}
	// Each message costs at least two bytes on the wire; an announced
	// count beyond that is corrupt, not worth allocating for.
	if count < 0 || count > r.Len() {
		return fmt.Errorf("tcp: round message count %d out of range", count)
	}
	f.Msgs = f.Msgs[:0]
	for i := 0; i < count; i++ {
		src := int(r.Uvarint())
		dst := int(r.Uvarint())
		data := r.Bytes()
		if err := r.Err(); err != nil {
			return err
		}
		if src < 0 || src >= k || dst < 0 || dst >= k {
			return fmt.Errorf("tcp: round message %d -> %d outside cluster of %d", src, dst, k)
		}
		if len(data) > 0 {
			data = arena.Copy(data)
		} else {
			data = nil
		}
		f.Msgs = append(f.Msgs, transport.Message{Src: src, Dst: dst, Data: data})
	}
	return r.Done()
}
