package tcp

import (
	"bytes"
	"testing"

	"kmgraph/internal/transport"
	"kmgraph/internal/wire"
)

// FuzzFrameDecode drives arbitrary bytes through the full inbound
// decode path a peer link runs on untrusted network input: frame
// deframing, hello decoding, and round-frame decoding. The decoders
// must reject garbage with latched errors — never panic, never
// over-allocate from a length prefix.
func FuzzFrameDecode(f *testing.F) {
	hello := &Hello{ClusterID: 7, K: 16, Seed: 11, Index: 3, Lo: 4, Hi: 8,
		BandwidthBits: 1024, MessageOverheadBits: 64}
	f.Add(AppendFrame(nil, FrameHello, AppendHello(nil, hello)))
	round := AppendRoundBody(nil, 9, 2, []transport.Message{
		{Src: 1, Dst: 5, Data: []byte("payload")},
		{Src: 0, Dst: 4, Data: nil},
	})
	f.Add(AppendFrame(nil, FrameRound, round))
	f.Add(AppendFrame(nil, FrameBye, nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1}) // oversized length prefix
	f.Add([]byte{0, 0, 0, 0})                // zero-length frame
	f.Add([]byte{5, 0, 0, 0, 2, 1, 2, 3, 4}) // truncated round body
	f.Add(AppendFrame(nil, FrameHello, nil)) // empty hello
	f.Add(AppendFrame(nil, FrameRound, round[:len(round)-3]))

	f.Fuzz(func(t *testing.T, data []byte) {
		var buf []byte
		r := bytes.NewReader(data)
		arena := wire.NewArena(0)
		// A stream may hold several frames; decode until it errors out.
		for {
			ft, body, err := ReadFrame(r, &buf)
			if err != nil {
				return
			}
			if len(body) > MaxFrameBody {
				t.Fatalf("ReadFrame returned %d-byte body, cap %d", len(body), MaxFrameBody)
			}
			switch ft {
			case FrameHello:
				if h, err := DecodeHello(body); err == nil {
					if h.K < 1 || h.K > maxK || h.Lo < 0 || h.Hi > h.K || h.Lo >= h.Hi {
						t.Fatalf("DecodeHello accepted invalid hello: %+v", h)
					}
				}
			case FrameRound:
				var fr RoundFrame
				if err := DecodeRound(body, 16, arena, &fr); err == nil {
					for _, m := range fr.Msgs {
						if int(m.Src) >= 16 || int(m.Dst) >= 16 {
							t.Fatalf("DecodeRound accepted out-of-range machine: %+v", m)
						}
					}
				}
			}
		}
	})
}
