package tcp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kmgraph/internal/transport"
	"kmgraph/internal/wire"
)

// Options tune a peer link's timeouts. The zero value selects the
// defaults.
type Options struct {
	// DialTimeout bounds one TCP connect attempt (default 5s).
	DialTimeout time.Duration
	// DialAttempts is how many times Dial retries the connect+handshake
	// before giving up (default 40). Retries cover the window where a
	// peer has not yet received its job spec and opened its listener
	// routing for this cluster.
	DialAttempts int
	// DialBackoff separates retries (default 250ms).
	DialBackoff time.Duration
	// HandshakeTimeout bounds the wait for the hello reply after a
	// connect (default 30s). It is deliberately longer than DialTimeout:
	// the passive side answers only once its own job spec arrives, so
	// the dialer waits out that skew inside one attempt instead of
	// churning retries.
	HandshakeTimeout time.Duration
	// WriteTimeout bounds one frame write (default 30s).
	WriteTimeout time.Duration
	// IdleTimeout bounds the silence a read loop tolerates between
	// frames (default 2m — generous enough to cover a peer's shard-load
	// skew before its first barrier).
	IdleTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.DialAttempts == 0 {
		o.DialAttempts = 40
	}
	if o.DialBackoff == 0 {
		o.DialBackoff = 250 * time.Millisecond
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 30 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	return o
}

// Peer is one established link to another participant of a distributed
// cluster: the socket, the remote's hosted range, a write buffer (one
// frame per round, one syscall per frame), and a read loop that decodes
// inbound round frames under an idle deadline and latches the first
// error — after which every barrier wait on this peer reports
// transport.ErrLinkDown instead of blocking.
type Peer struct {
	Index  int // remote participant index
	Lo, Hi int // remote hosted machine range

	conn  net.Conn
	addr  string // remote address, for structured link-down errors
	k     int
	opts  Options
	stats linkStats

	// Wire accounting for the flight recorder. Sent counters are only
	// touched by the engine goroutine in writeRound; recv counters are
	// atomics because the read loop increments them while the engine
	// samples deltas at each barrier.
	sentFrames, sentBytes int64
	recvFrames, recvBytes atomic.Int64

	wbuf  []byte // frame staging: header + body, one write per round
	stage []transport.Message

	frames  chan *RoundFrame
	readErr error // valid once frames is closed
	arena   *wire.Arena

	closeOnce sync.Once
	done      chan struct{}
}

// newPeer wraps an established, handshaken connection. It starts the
// read loop.
func newPeer(conn net.Conn, remote *Hello, opts Options) *Peer {
	p := &Peer{
		Index:  remote.Index,
		Lo:     remote.Lo,
		Hi:     remote.Hi,
		conn:   conn,
		addr:   conn.RemoteAddr().String(),
		k:      remote.K,
		opts:   opts.withDefaults(),
		stats:  newLinkStats(remote.Index),
		frames: make(chan *RoundFrame, 4),
		arena:  wire.NewArena(0),
		done:   make(chan struct{}),
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // a round frame must not wait out Nagle
	}
	go p.readLoop()
	return p
}

// readLoop decodes inbound frames until the link dies or Close. The
// first error is latched and the frame channel closed, so a blocked
// barrier wait wakes immediately.
func (p *Peer) readLoop() {
	var buf []byte
	var err error
	for err == nil {
		p.conn.SetReadDeadline(time.Now().Add(p.opts.IdleTimeout))
		var t FrameType
		var body []byte
		t, body, err = ReadFrame(p.conn, &buf)
		if err != nil {
			break
		}
		p.stats.framesRecv.Inc()
		p.stats.bytesRecv.Add(int64(len(body)) + frameHeaderLen)
		p.recvFrames.Add(1)
		p.recvBytes.Add(int64(len(body)) + frameHeaderLen)
		switch t {
		case FrameRound:
			f := &RoundFrame{}
			if err = DecodeRound(body, p.k, p.arena, f); err != nil {
				break
			}
			select {
			case p.frames <- f:
			case <-p.done:
				err = net.ErrClosed
			}
		case FrameBye:
			err = io.EOF
		default:
			err = fmt.Errorf("tcp: unexpected frame type %d on peer link", t)
		}
	}
	p.readErr = err
	close(p.frames)
}

// writeRound stages and writes one round frame in a single syscall.
func (p *Peer) writeRound(seq uint64, doneDelta int, msgs []transport.Message) error {
	b := AppendFrameHeader(p.wbuf[:0], FrameRound)
	b = AppendRoundBody(b, seq, doneDelta, msgs)
	b = FinishFrame(b, 0)
	p.wbuf = b
	p.conn.SetWriteDeadline(time.Now().Add(p.opts.WriteTimeout))
	if _, err := p.conn.Write(b); err != nil {
		return err
	}
	p.stats.framesSent.Inc()
	p.stats.bytesSent.Add(int64(len(b)))
	p.sentFrames++
	p.sentBytes += int64(len(b))
	return nil
}

// recvRound blocks until the peer's announcement for barrier seq
// arrives, the link dies, or the idle deadline passes in the read loop.
// Failures carry the structured transport.LinkDownError: a read-loop
// timeout classifies as a stall (the socket is formally alive), any
// other death as a crash, and a wrong barrier sequence as a desync.
func (p *Peer) recvRound(seq uint64) (*RoundFrame, error) {
	f, ok := <-p.frames
	if !ok {
		reason := transport.ReasonCrash
		var ne net.Error
		if errors.As(p.readErr, &ne) && ne.Timeout() {
			reason = transport.ReasonStall
		}
		return nil, &transport.LinkDownError{
			Peer: p.Index, Addr: p.addr, Round: seq - 1, Reason: reason,
			Err: fmt.Errorf("tcp: machines [%d,%d): %v", p.Lo, p.Hi, p.readErr),
		}
	}
	if f.Seq != seq {
		return nil, &transport.LinkDownError{
			Peer: p.Index, Addr: p.addr, Round: seq - 1, Reason: transport.ReasonDesync,
			Err: fmt.Errorf("tcp: barrier desync (got seq %d, want %d)", f.Seq, seq),
		}
	}
	return f, nil
}

// Close shuts the link down: a best-effort Bye, then the socket. Safe
// to call more than once and concurrently with a blocked recvRound.
func (p *Peer) Close() error {
	p.closeOnce.Do(func() {
		close(p.done)
		p.conn.SetWriteDeadline(time.Now().Add(time.Second))
		p.conn.Write(AppendFrame(nil, FrameBye, nil))
		p.conn.Close()
	})
	return nil
}

// writeFrame sends one complete frame on conn under the write timeout.
func writeFrame(conn net.Conn, opts Options, t FrameType, body []byte) error {
	conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
	_, err := conn.Write(AppendFrame(nil, t, body))
	return err
}

// readHello reads and decodes the peer's FrameHello under the
// handshake timeout.
func readHello(conn net.Conn, opts Options) (*Hello, error) {
	conn.SetReadDeadline(time.Now().Add(opts.HandshakeTimeout))
	var buf []byte
	t, body, err := ReadFrame(conn, &buf)
	if err != nil {
		return nil, err
	}
	if t != FrameHello {
		return nil, fmt.Errorf("tcp: expected hello, got frame type %d", t)
	}
	return DecodeHello(body)
}

// ValidateHello checks that a remote hello describes the same cluster
// as ours: identity, size, seed, and link parameters. A mismatch is
// counted as a handshake failure.
func ValidateHello(theirs, ours *Hello) error {
	switch {
	case theirs.ClusterID != ours.ClusterID:
		return fmt.Errorf("tcp: handshake for cluster %#x, want %#x", theirs.ClusterID, ours.ClusterID)
	case theirs.K != ours.K:
		return fmt.Errorf("tcp: handshake with k=%d, want %d", theirs.K, ours.K)
	case theirs.Seed != ours.Seed:
		return fmt.Errorf("tcp: handshake with seed %d, want %d", theirs.Seed, ours.Seed)
	case theirs.BandwidthBits != ours.BandwidthBits,
		theirs.MessageOverheadBits != ours.MessageOverheadBits:
		return fmt.Errorf("tcp: handshake with link parameters B=%d/H=%d, want B=%d/H=%d",
			theirs.BandwidthBits, theirs.MessageOverheadBits,
			ours.BandwidthBits, ours.MessageOverheadBits)
	case theirs.Index == ours.Index:
		return fmt.Errorf("tcp: handshake from our own index %d", theirs.Index)
	}
	// Hosted ranges must not overlap: each machine has exactly one owner.
	if theirs.Lo < ours.Hi && ours.Lo < theirs.Hi {
		return fmt.Errorf("tcp: peer %d hosts [%d,%d), overlapping our [%d,%d)",
			theirs.Index, theirs.Lo, theirs.Hi, ours.Lo, ours.Hi)
	}
	return nil
}

// errHandshake marks permanent handshake rejections, which Dial must
// not retry.
var errHandshake = fmt.Errorf("tcp: handshake rejected")

// Dial connects to a lower-index participant at addr, performs the
// handshake (send ours, read theirs, validate), and returns the
// established link. Connect and handshake failures are retried under
// Options (a peer may not have learned about the cluster yet); each
// retry increments the reconnect counter.
func Dial(addr string, ours *Hello, wantIndex int, opts Options) (*Peer, error) {
	opts = opts.withDefaults()
	var lastErr error
	for attempt := 0; attempt < opts.DialAttempts; attempt++ {
		if attempt > 0 {
			reconnectsCounter().Inc()
			time.Sleep(opts.DialBackoff)
		}
		conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		theirs, err := handshakeActive(conn, ours, opts)
		if err != nil {
			conn.Close()
			if errors.Is(err, errHandshake) {
				return nil, err
			}
			lastErr = err
			continue
		}
		if theirs.Index != wantIndex {
			conn.Close()
			handshakeFailuresCounter().Inc()
			return nil, fmt.Errorf("tcp: %s is participant %d, want %d", addr, theirs.Index, wantIndex)
		}
		return newPeer(conn, theirs, opts), nil
	}
	return nil, fmt.Errorf("tcp: dialing peer %d at %s: %w", wantIndex, addr, lastErr)
}

func handshakeActive(conn net.Conn, ours *Hello, opts Options) (*Hello, error) {
	if err := writeFrame(conn, opts, FrameHello, AppendHello(nil, ours)); err != nil {
		return nil, err
	}
	theirs, err := readHello(conn, opts)
	if err != nil {
		return nil, err
	}
	if err := ValidateHello(theirs, ours); err != nil {
		handshakeFailuresCounter().Inc()
		return nil, fmt.Errorf("%w: %v", errHandshake, err)
	}
	return theirs, nil
}

// AcceptPeer completes the passive side of a peer handshake: the
// listener's router has already read the remote's hello; validate it,
// answer with ours, and return the established link.
func AcceptPeer(conn net.Conn, theirs, ours *Hello, opts Options) (*Peer, error) {
	opts = opts.withDefaults()
	if err := ValidateHello(theirs, ours); err != nil {
		handshakeFailuresCounter().Inc()
		return nil, err
	}
	if err := writeFrame(conn, opts, FrameHello, AppendHello(nil, ours)); err != nil {
		return nil, err
	}
	return newPeer(conn, theirs, opts), nil
}
