// Package transport abstracts the link layer of the k-machine model: how
// one synchronous round of point-to-point traffic moves between machines.
//
// The round engine in internal/kmachine is written against the Transport
// interface, which carries exactly what a round needs — the messages staged
// by the machines a process hosts, the round barrier that keeps every
// participant in lockstep, and the per-destination deliveries whose last
// bit arrived this round. Two backends implement it:
//
//   - transport/local hosts all k machines in one process and is the
//     bit-exact reference: it is the pre-existing in-process simulator's
//     link machinery behind the interface.
//   - transport/tcp hosts a contiguous sub-range of the machines and
//     exchanges length-prefixed round frames with peer processes over TCP,
//     so a cluster spans OS processes and hosts.
//
// Both backends drive the same link simulator (Switch): every directed
// link is a FIFO byte queue drained at BandwidthBits per round, and a
// message is delivered in the round its last bit arrives. Because the
// simulator state of destination d is touched only by d's owner, the
// simulation partitions cleanly across processes by destination — which is
// what makes the two backends produce identical Metrics by construction.
package transport

import (
	"errors"
	"strconv"
)

// Message is a point-to-point message between machines. It is the same
// type the engine exposes as kmachine.Message (an alias).
type Message struct {
	Src, Dst int
	Data     []byte
}

// Params are the link-layer parameters every participant must agree on.
type Params struct {
	// K is the number of machines.
	K int
	// BandwidthBits is the per-round bit budget of each directed link.
	BandwidthBits int
	// MessageOverheadBits is added to every message's transmission cost.
	MessageOverheadBits int
}

// ErrLinkDown is reported when a peer process dies or a link breaks while
// a job is in flight. Jobs fail with this typed error instead of hanging
// the round barrier; callers can errors.Is against it.
var ErrLinkDown = errors.New("transport: link down")

// LinkDownReason classifies why a link was declared down. It drives the
// coordinator's retry decisions and failure telemetry without string
// parsing.
//
//km:exhaustive
type LinkDownReason string

const (
	// ReasonCrash: the peer's connection died (EOF, reset, refused).
	ReasonCrash LinkDownReason = "crash"
	// ReasonStall: the peer stayed silent past its liveness deadline but
	// the connection is formally alive (a wedged or overloaded process).
	ReasonStall LinkDownReason = "stall"
	// ReasonDesync: the peer is alive but violated the round protocol
	// (wrong barrier sequence, out-of-range traffic, range mismatch).
	ReasonDesync LinkDownReason = "desync"
	// ReasonChaos: an injected fault from the chaos transport.
	ReasonChaos LinkDownReason = "chaos"
)

// LinkDownError is the structured form of ErrLinkDown: it names the
// lost peer, where it was, how far the protocol got, and why the link
// was declared dead, so logs and retry policies need no string parsing.
// errors.Is(err, ErrLinkDown) matches it, and errors.As extracts it
// through any number of fmt.Errorf %w wrappings.
type LinkDownError struct {
	// Peer is the remote participant index (-1 when unknown).
	Peer int
	// Addr is the peer's dialable address, when known.
	Addr string
	// Round is the last barrier sequence completed with the peer (0 when
	// the link died before any barrier).
	Round uint64
	// Reason classifies the failure.
	Reason LinkDownReason
	// Err is the underlying cause, when any.
	Err error
	// Flight is the reporting side's flight-recorder snapshot — the
	// last K per-link round events before the link died. It rides along
	// the error (and, for distributed jobs, the control-link error
	// frame) so a post-mortem starts from data, not from a bare
	// classification. Error() deliberately omits it; dump it as JSON.
	Flight []RoundFlight
}

func (e *LinkDownError) Error() string {
	s := "transport: link down"
	if e.Peer >= 0 {
		s += " (peer " + strconv.Itoa(e.Peer)
		if e.Addr != "" {
			s += " at " + e.Addr
		}
		s += ")"
	}
	if e.Reason != "" {
		s += ": " + string(e.Reason)
	}
	if e.Round > 0 {
		s += " after round " + strconv.FormatUint(e.Round, 10)
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes both the ErrLinkDown sentinel (so errors.Is keeps
// working) and the underlying cause.
func (e *LinkDownError) Unwrap() []error {
	if e.Err == nil {
		return []error{ErrLinkDown}
	}
	return []error{ErrLinkDown, e.Err}
}

// RoundIn is what the engine hands the transport at each round barrier.
// The struct is reused across rounds; the transport must not retain it.
type RoundIn struct {
	// Msgs holds every message staged by hosted machines at this barrier,
	// grouped by source machine ID ascending with per-source send order
	// preserved (the only order the link FIFOs observe).
	Msgs []Message
	// Events is the number of hosted machines that submitted a step or
	// return event at this barrier.
	Events int
	// DoneDelta is the number of hosted machines that returned (halted)
	// at this barrier.
	DoneDelta int
}

// RoundOut is the transport's answer to one barrier. Inboxes is owned by
// the transport and reused: slot i stays valid until the second-next
// Round call delivers into it (double buffering), exactly the contract
// machines get from Ctx.Step.
type RoundOut struct {
	// Advanced reports whether a communication round passed. It is false
	// when the cluster halted at this barrier (Running == 0): the engine
	// must not count a round then.
	Advanced bool
	// Running is the global number of machines still running after this
	// barrier, across every participating process.
	Running int
	// Inboxes[i] holds hosted machine (lo+i)'s deliveries this round,
	// sorted by (source, send order).
	Inboxes [][]Message
}

// Transport moves rounds of k-machine traffic for the machines one
// process hosts. Implementations are driven by a single engine goroutine;
// Round is never called concurrently.
type Transport interface {
	// Hosted returns the half-open range [lo, hi) of machine indices this
	// process runs. The local backend hosts [0, K).
	Hosted() (lo, hi int)
	// Round executes one synchronous round: it ships the staged messages
	// and the barrier deltas, waits for every peer to reach the same
	// barrier, advances every hosted incoming link by one bandwidth
	// quantum, and reports the completed deliveries. A transport that has
	// lost a peer returns an error wrapping ErrLinkDown; the engine then
	// aborts the job.
	Round(in *RoundIn, out *RoundOut) error
	// Pending reports whether any bits are still in flight on hosted
	// links (used by the engine's quiescence logic for parked clusters).
	Pending() bool
	// Remnants returns the count and payload bytes of messages still
	// queued on hosted links at termination (protocol-bug accounting).
	Remnants() (int, int64)
	// Close releases the transport's resources. It is safe to call more
	// than once.
	Close() error
}
