// Package local is the in-process transport backend: all k machines run
// in one process and every round's traffic moves through the shared link
// simulator directly, with no serialization. It is the bit-exact
// reference backend — the TCP backend must produce identical Metrics on
// identical inputs — and the only backend that supports parked (resident)
// clusters, whose quiescence logic needs a global view of in-flight bits.
package local

import "kmgraph/internal/transport"

// Local implements transport.Transport for a single-process cluster
// hosting machines [0, K).
type Local struct {
	sw      *transport.Switch
	k       int
	running int
	inboxes [][]transport.Message
}

// New returns a local transport over all k machines, accounting into met.
// workers bounds the sharded transmit fan-out (1 disables it).
func New(p transport.Params, met *transport.Metrics, workers int) *Local {
	return &Local{
		sw:      transport.NewSwitch(p, 0, p.K, met, workers),
		k:       p.K,
		running: p.K,
		inboxes: make([][]transport.Message, p.K),
	}
}

// Hosted returns [0, K): the local backend runs every machine.
func (l *Local) Hosted() (int, int) { return 0, l.k }

// Round stages the barrier's messages, advances every active link by one
// bandwidth quantum, and reports the deliveries. With no peers there is
// no waiting: the engine's own barrier over its machines is the round
// barrier.
func (l *Local) Round(in *transport.RoundIn, out *transport.RoundOut) error {
	for _, m := range in.Msgs {
		l.sw.Enqueue(m)
	}
	l.running -= in.DoneDelta
	out.Running = l.running
	if l.running == 0 {
		out.Advanced = false
		out.Inboxes = nil
		return nil
	}
	l.sw.TransmitRound()
	for d := 0; d < l.k; d++ {
		l.inboxes[d] = l.sw.Inbox(d)
	}
	out.Advanced = true
	out.Inboxes = l.inboxes
	return nil
}

// Pending reports whether any bits are in flight.
func (l *Local) Pending() bool { return l.sw.Active() }

// Remnants reports traffic still queued at termination.
func (l *Local) Remnants() (int, int64) { return l.sw.Remnants() }

// Close is a no-op for the in-process backend.
func (l *Local) Close() error {
	l.sw.Stop()
	return nil
}
