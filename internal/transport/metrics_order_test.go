package transport

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

func fingerprintMetrics(m *Metrics) uint64 {
	h := fnv.New64a()
	add := func(x int64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(uint64(x) >> (8 * i))
		}
		h.Write(b[:])
	}
	add(int64(m.Rounds))
	add(m.Messages)
	add(m.PayloadBytes)
	add(m.MaxLinkBits)
	add(int64(m.DroppedMessages))
	add(m.DroppedBytes)
	for _, row := range m.LinkBits {
		for _, b := range row {
			add(b)
		}
	}
	for i := range m.SentMsgs {
		add(m.SentMsgs[i])
		add(m.RecvMsgs[i])
	}
	return h.Sum64()
}

// TestMergeMetricsOrderIndependent merges the same per-worker partials in
// deliberately shuffled orders and requires the same fingerprint every
// time: the coordinator gathers worker results from concurrent links, so
// arrival order must never reach the merged accounting.
func TestMergeMetricsOrderIndependent(t *testing.T) {
	const k = 6
	rng := rand.New(rand.NewSource(42))
	parts := make([]*Metrics, 4)
	for p := range parts {
		m := NewMetrics(k)
		m.Rounds = 37
		m.Messages = rng.Int63n(1000)
		m.PayloadBytes = rng.Int63n(100000)
		for s := 0; s < k; s++ {
			m.SentMsgs[s] = rng.Int63n(500)
			m.RecvMsgs[s] = rng.Int63n(500)
			for d := 0; d < k; d++ {
				if s != d {
					m.LinkBits[s][d] = rng.Int63n(1 << 20)
				}
			}
		}
		parts[p] = m
	}

	merge := func(order []int) uint64 {
		dst := NewMetrics(k)
		for _, i := range order {
			if err := MergeMetrics(dst, parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		snap := dst.Snapshot()
		return fingerprintMetrics(&snap)
	}

	first := merge([]int{0, 1, 2, 3})
	for trial := 0; trial < 10; trial++ {
		order := rng.Perm(len(parts))
		if fp := merge(order); fp != first {
			t.Fatalf("order %v: fingerprint %#x != canonical %#x", order, fp, first)
		}
	}
}
