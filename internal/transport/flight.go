package transport

import (
	"sync"
	"sync/atomic"
)

// DefaultFlightDepth is how many rounds a FlightRecorder retains when
// the caller does not choose a depth. Deep enough to cover the window
// between "things went wrong" and "the link was declared down" (idle
// deadlines span many rounds), small enough to ride along in an error
// frame.
const DefaultFlightDepth = 64

// LinkFlight is one link's traffic during one recorded round: the
// frames and bytes observed on the wire to/from one peer between the
// previous barrier and this one.
type LinkFlight struct {
	Peer       int   `json:"peer"`
	FramesSent int64 `json:"frames_sent"`
	FramesRecv int64 `json:"frames_recv"`
	BytesSent  int64 `json:"bytes_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
}

// RoundFlight is one flight-recorder entry: a barrier the recording
// participant completed (or died at), how long it waited there, the
// per-link traffic since the previous barrier, and — for the final
// entry of a failed run — the error that killed the link.
type RoundFlight struct {
	Seq    uint64       `json:"seq"`
	WaitNs int64        `json:"wait_ns"`
	Links  []LinkFlight `json:"links,omitempty"`
	Err    string       `json:"err,omitempty"`
}

// FlightRecorder is a fixed-size ring of the last N per-link round
// events. Both sides of a distributed job keep one — workers record
// engine barriers, the coordinator records control-connection frames —
// so a LinkDownError can carry a replayable last-K-rounds post-mortem
// instead of a bare classification.
//
// Record is called from the single goroutine driving the link (the
// engine's Round loop, or the coordinator's gather loop); Snapshot and
// Totals may be called concurrently from observers.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []RoundFlight
	next int
	full bool

	// Cumulative totals, readable without the lock. They let a phase
	// hook annotate spans with local traffic deltas race-free while the
	// engine goroutine keeps recording.
	rounds atomic.Uint64
	frames atomic.Int64
	bytes  atomic.Int64
	waitNs atomic.Int64
}

// NewFlightRecorder returns a recorder keeping the last depth rounds
// (DefaultFlightDepth when depth <= 0).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{buf: make([]RoundFlight, depth)}
}

// Record appends one round event, evicting the oldest once the ring is
// full.
func (r *FlightRecorder) Record(rf RoundFlight) {
	var frames, bytes int64
	for _, l := range rf.Links {
		frames += l.FramesSent + l.FramesRecv
		bytes += l.BytesSent + l.BytesRecv
	}
	r.rounds.Add(1)
	r.frames.Add(frames)
	r.bytes.Add(bytes)
	r.waitNs.Add(rf.WaitNs)

	r.mu.Lock()
	r.buf[r.next] = rf
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// RecordError appends a terminal entry for a barrier that failed.
func (r *FlightRecorder) RecordError(seq uint64, err error) {
	rf := RoundFlight{Seq: seq}
	if err != nil {
		rf.Err = err.Error()
	}
	r.Record(rf)
}

// Snapshot returns a copy of the retained rounds, oldest first.
func (r *FlightRecorder) Snapshot() []RoundFlight {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]RoundFlight, 0, n)
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	// The ring entries' Links slices are owned by their producers and
	// never mutated after Record, so sharing them in the copy is safe.
	return out
}

// Totals returns the cumulative rounds, frames, bytes, and barrier-wait
// nanoseconds recorded so far. Safe to call from any goroutine.
func (r *FlightRecorder) Totals() (rounds uint64, frames, bytes, waitNs int64) {
	return r.rounds.Load(), r.frames.Load(), r.bytes.Load(), r.waitNs.Load()
}
