package transport

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// queued is an in-flight message with transmission progress.
type queued struct {
	msg      Message
	sentBits int
}

func (q *queued) totalBits(overhead int) int {
	b := 8*len(q.msg.Data) + overhead
	if b < 1 {
		b = 1
	}
	return b
}

// linkQueue is the FIFO of one directed link. head indexes the first
// undelivered message; the backing array is reset and reused whenever the
// queue fully drains, so steady-state traffic allocates nothing.
type linkQueue struct {
	items []queued
	head  int
}

func (q *linkQueue) empty() bool { return q.head == len(q.items) }

// Parallel-transmit tuning. The transmit loop shards per-destination work
// across workers only when enough links are active to amortize the join;
// small or sparse rounds take the serial path. Both paths are bit-exact.
// The vars are overridable by tests to force the parallel path.
var (
	TransmitParallelMinLinks = 64
	TransmitMaxWorkers       = 16
	TransmitForceParallel    = false // tests only: take the sharded path always
)

// Switch is the link simulator for the incoming links of destinations
// [lo, hi) in a k-machine cluster: one FIFO byte queue per directed link,
// drained at BandwidthBits per round, with an active-link index (a
// per-destination bitmap of sources with bits in flight) so quiescent
// links cost zero. It is the single bandwidth-accounting engine shared by
// every transport backend — the local backend owns [0, k), a TCP worker
// owns its hosted sub-range — which is what keeps the backends bit-exact
// with each other.
//
// A Switch is driven by one goroutine (the round engine); only the
// sharded transmit fans out internally, merging per-destination counters
// deterministically in destination order after the join.
type Switch struct {
	p      Params
	lo, hi int
	met    *Metrics

	queues    []linkQueue // [(dst-lo)*k + src]
	activeSrc [][]uint64  // [dst-lo]: bitmap of sources with a non-empty queue
	dstActive []int       // [dst-lo]: population count of activeSrc
	active    int         // total non-empty directed links

	// Per-destination delivery buffers, double-buffered so a slice handed
	// to a machine is not refilled until the machine has stepped again.
	inbox    [][]Message
	inboxBuf [][2][]Message
	inboxSel []int

	// Per-destination transmit results, merged deterministically (in
	// destination order) after a parallel round.
	dstMsgs    []int64
	dstBytes   []int64
	dstDrained []int32

	workers int
	next    atomic.Int64 // destination cursor for the sharded transmit

	// Persistent transmit pool: workers park on wake and each drains
	// destinations from the shared cursor until it passes roundN, then
	// checks in on roundWG. Spawned lazily on the first sharded round
	// (guarded by a plain nil check — the Switch is single-driver) and
	// torn down by Stop; the round loop itself never creates a goroutine
	// (or its closure) per round.
	stopOnce sync.Once
	wake     chan struct{}
	stop     chan struct{}
	roundN   int
	roundWG  sync.WaitGroup
}

// NewSwitch returns a link simulator for destinations [lo, hi) of a
// k-machine cluster, accounting into met. workers bounds the sharded
// transmit fan-out (1 disables it).
func NewSwitch(p Params, lo, hi int, met *Metrics, workers int) *Switch {
	n := hi - lo
	if workers < 1 {
		workers = 1
	}
	s := &Switch{
		p:          p,
		lo:         lo,
		hi:         hi,
		met:        met,
		queues:     make([]linkQueue, n*p.K),
		activeSrc:  make([][]uint64, n),
		dstActive:  make([]int, n),
		inbox:      make([][]Message, n),
		inboxBuf:   make([][2][]Message, n),
		inboxSel:   make([]int, n),
		dstMsgs:    make([]int64, n),
		dstBytes:   make([]int64, n),
		dstDrained: make([]int32, n),
		workers:    workers,
	}
	words := (p.K + 63) >> 6
	for d := 0; d < n; d++ {
		s.activeSrc[d] = make([]uint64, words)
	}
	return s
}

// Enqueue appends m to its link queue, maintaining the active-link index.
// It is the single enqueue path for every staged message — local or
// arriving from a peer — so the accounting can never drift between
// backends. The destination must be hosted.
//
//km:hotpath
func (s *Switch) Enqueue(m Message) {
	if m.Dst < s.lo || m.Dst >= s.hi {
		//kmvet:ignore panic path; unreachable for hosted destinations
		panic(fmt.Sprintf("transport: enqueue for non-hosted machine %d (hosted [%d,%d))",
			m.Dst, s.lo, s.hi))
	}
	di := m.Dst - s.lo
	q := &s.queues[di*s.p.K+m.Src]
	if q.empty() {
		if q.head > 0 {
			q.items = q.items[:0]
			q.head = 0
		}
		s.activeSrc[di][m.Src>>6] |= 1 << uint(m.Src&63)
		s.dstActive[di]++
		s.active++
	}
	q.items = append(q.items, queued{msg: m})
	s.met.SentMsgs[m.Src]++
}

// transmitDst drains one round of bandwidth on every active link into
// hosted destination index di. It touches only di-indexed state (queues,
// bitmaps, inbox, counters) plus distinct LinkBits elements, so distinct
// destinations can run concurrently.
//
//km:hotpath
func (s *Switch) transmitDst(di int) {
	d := s.lo + di
	buf := s.inbox[di]
	words := s.activeSrc[di]
	var delivered, drained int32
	var payload int64
	for wi, w := range words {
		for w != 0 {
			src := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			q := &s.queues[di*s.p.K+src]
			budget := s.p.BandwidthBits
			if src == d {
				budget = 1 << 30 // local delivery is free
			}
			i := q.head
			for i < len(q.items) && budget > 0 {
				qi := &q.items[i]
				total := qi.totalBits(s.p.MessageOverheadBits)
				rem := total - qi.sentBits
				take := rem
				if take > budget {
					take = budget
				}
				qi.sentBits += take
				budget -= take
				if src != d {
					s.met.LinkBits[src][d] += int64(take)
				}
				if qi.sentBits == total {
					buf = append(buf, qi.msg)
					delivered++
					payload += int64(len(qi.msg.Data))
					i++
				}
			}
			q.head = i
			if q.empty() {
				q.items = q.items[:0]
				q.head = 0
				words[wi] &^= 1 << uint(src&63)
				drained++
			}
		}
	}
	s.inbox[di] = buf
	s.inboxBuf[di][s.inboxSel[di]] = buf // retain grown capacity for reuse
	s.met.RecvMsgs[d] += int64(delivered)
	s.dstMsgs[di] = int64(delivered)
	s.dstBytes[di] = payload
	s.dstDrained[di] = drained
	s.dstActive[di] -= int(drained)
}

// TransmitRound advances every active hosted link by one round of
// bandwidth, choosing the sharded or serial path, and merges the
// per-destination counters into the metrics in destination order. The
// deliveries land in the per-destination inboxes (see Inbox) and the
// double buffers are flipped, so a buffer returned last round stays
// untouched for one more round.
//
//km:hotpath
func (s *Switch) TransmitRound() {
	n := s.hi - s.lo
	for di := 0; di < n; di++ {
		s.inboxSel[di] ^= 1
		s.inbox[di] = s.inboxBuf[di][s.inboxSel[di]][:0]
		s.dstMsgs[di], s.dstBytes[di], s.dstDrained[di] = 0, 0, 0
	}
	if s.workers > 1 && (s.active >= TransmitParallelMinLinks || TransmitForceParallel) {
		if s.wake == nil {
			s.startPool()
		}
		s.next.Store(0)
		s.roundN = n
		s.roundWG.Add(s.workers)
		for w := 0; w < s.workers; w++ {
			s.wake <- struct{}{}
		}
		s.roundWG.Wait()
	} else {
		for di := 0; di < n; di++ {
			if s.dstActive[di] > 0 {
				s.transmitDst(di)
			}
		}
	}
	for di := 0; di < n; di++ {
		s.met.Messages += s.dstMsgs[di]
		s.met.PayloadBytes += s.dstBytes[di]
		s.active -= int(s.dstDrained[di])
	}
}

// startPool launches the persistent transmit workers. Each wake token
// admits one worker to one round; the token send happens-before the
// worker's read of roundN and the queue state, and the worker's writes
// happen-before roundWG.Wait returns.
func (s *Switch) startPool() {
	s.wake = make(chan struct{})
	s.stop = make(chan struct{})
	for w := 0; w < s.workers; w++ {
		go s.poolWorker()
	}
}

func (s *Switch) poolWorker() {
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
			for {
				di := int(s.next.Add(1)) - 1
				if di >= s.roundN {
					break
				}
				if s.dstActive[di] > 0 {
					s.transmitDst(di)
				}
			}
			s.roundWG.Done()
		}
	}
}

// Stop tears down the transmit pool, if one was started. The Switch
// remains usable afterward on the serial path only; transport backends
// call Stop from Close.
func (s *Switch) Stop() {
	s.stopOnce.Do(func() {
		if s.stop != nil {
			close(s.stop)
		}
		s.workers = 1
	})
}

// Inbox returns hosted destination d's deliveries from the last
// TransmitRound. The slice is valid until the second-next TransmitRound.
func (s *Switch) Inbox(d int) []Message { return s.inbox[d-s.lo] }

// Active reports whether any hosted link has bits in flight.
func (s *Switch) Active() bool { return s.active > 0 }

// Remnants returns the count and payload bytes of messages still queued
// at termination (undelivered traffic is a protocol bug; the engine
// surfaces it as dropped).
func (s *Switch) Remnants() (int, int64) {
	var msgs int
	var bytes int64
	for i := range s.queues {
		q := &s.queues[i]
		for _, qm := range q.items[q.head:] {
			msgs++
			bytes += int64(len(qm.msg.Data))
		}
	}
	return msgs, bytes
}
