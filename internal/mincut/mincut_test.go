package mincut

import (
	"math"
	"testing"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
)

func approxRatioOK(t *testing.T, name string, got float64, want int64, n int) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s: estimate %.1f for disconnected graph", name, got)
		}
		return
	}
	ratio := got / float64(want)
	if ratio < 1 {
		ratio = 1 / ratio
	}
	// Theorem 3: O(log n)-approximation. Allow a generous constant.
	bound := 6 * math.Log(float64(n)+2)
	if ratio > bound {
		t.Errorf("%s: estimate %.1f vs true %d: ratio %.1f exceeds %.1f",
			name, got, want, ratio, bound)
	}
}

func TestDisconnectedInput(t *testing.T) {
	g := graph.DisjointComponents(80, 2, 0.5, 1)
	res, err := Approximate(g, Config{Config: core.Config{K: 4, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 || res.Level != -1 {
		t.Errorf("estimate = %.1f level = %d, want 0/-1", res.Estimate, res.Level)
	}
}

func TestKnownCuts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"path", graph.Path(60), 1},
		{"cycle", graph.Cycle(60), 2},
		{"bridged-1", graph.TwoCliquesBridged(15, 1, 2), 1},
		{"bridged-4", graph.TwoCliquesBridged(15, 4, 3), 4},
		{"complete", graph.Complete(30), 29},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Approximate(tc.g, Config{Config: core.Config{K: 4, Seed: 7}})
			if err != nil {
				t.Fatal(err)
			}
			if oracle := graph.MinCut(tc.g); oracle != tc.want {
				t.Fatalf("oracle says %d, test expects %d", oracle, tc.want)
			}
			approxRatioOK(t, tc.name, res.Estimate, tc.want, tc.g.N())
			if res.Runs == 0 || res.Rounds == 0 {
				t.Error("no work accounted")
			}
		})
	}
}

func TestEstimateOrdersCuts(t *testing.T) {
	// A graph with λ=1 should get a smaller estimate than one with λ=24.
	low, err := Approximate(graph.TwoCliquesBridged(12, 1, 4), Config{Config: core.Config{K: 4, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Approximate(graph.Complete(25), Config{Config: core.Config{K: 4, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if low.Estimate >= high.Estimate {
		t.Errorf("λ=1 estimate %.1f not below λ=24 estimate %.1f", low.Estimate, high.Estimate)
	}
}

func TestTrialsConfig(t *testing.T) {
	g := graph.Cycle(40)
	res, err := Approximate(g, Config{Config: core.Config{K: 3, Seed: 2}, Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	// runs = 1 (base) + levels*5
	if (res.Runs-1)%5 != 0 {
		t.Errorf("runs = %d inconsistent with 5 trials per level", res.Runs)
	}
}
