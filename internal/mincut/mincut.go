// Package mincut implements the paper's O(log n)-approximate minimum cut
// algorithm (§3.2, Theorem 3): sample edges with exponentially growing
// probabilities and test connectivity of each sample with the fast
// connectivity algorithm, leveraging Karger's sampling theorem — a graph
// with edge connectivity λ sampled at rate p stays connected w.h.p. while
// p·λ = Ω(log n), so the sampling rate at which samples start to
// disconnect locates λ up to an O(log n) factor.
//
// Edge sampling needs no coordination: machines keep an edge iff a shared
// hash of (trial, edge ID) clears the level's threshold, exactly like the
// sketch subsampling levels.
package mincut

import (
	"math"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/hashing"
	"kmgraph/internal/kmachine"
)

// Config parameterizes a min-cut approximation run.
type Config struct {
	core.Config
	// Trials is the number of independent samples per level (0 => 3).
	Trials int
	// MaxLevel caps the sampling levels (0 => 40).
	MaxLevel int
}

// Result is the outcome of a min-cut approximation.
type Result struct {
	// Estimate is the O(log n)-approximation of the edge connectivity λ.
	// Zero means the input graph is already disconnected.
	Estimate float64
	// Level is the first sampling level i (rate 2^-i) whose samples
	// disconnected; -1 if the input itself is disconnected.
	Level int
	// Runs is the number of connectivity executions performed.
	Runs int
	// Rounds is the total k-machine rounds across all executions.
	Rounds int
	// Metrics aggregates bits/messages across all executions.
	Metrics kmachine.Metrics
}

// Approximate estimates the edge connectivity of g within an O(log n)
// factor w.h.p.
func Approximate(g *graph.Graph, cfg Config) (*Result, error) {
	if cfg.Trials == 0 {
		cfg.Trials = 3
	}
	if cfg.MaxLevel == 0 {
		cfg.MaxLevel = 40
	}
	res := &Result{}
	sampleSeed := hashing.Hash2(uint64(cfg.Seed), 0x3c17)

	runConn := func(sub *graph.Graph, seedTweak int64) (int, error) {
		c := cfg.Config
		c.Seed = cfg.Seed + seedTweak
		r, err := core.Run(sub, c)
		if err != nil {
			return 0, err
		}
		res.Runs++
		res.Rounds += r.Metrics.Rounds
		res.Metrics.Rounds += r.Metrics.Rounds
		res.Metrics.Messages += r.Metrics.Messages
		res.Metrics.PayloadBytes += r.Metrics.PayloadBytes
		return r.Components, nil
	}

	// Level 0 (p = 1) is the input graph itself.
	base, err := runConn(g, 0)
	if err != nil {
		return nil, err
	}
	if base > 1 && g.N() > 0 {
		res.Level = -1
		res.Estimate = 0
		return res, nil
	}

	logn := math.Log(float64(g.N()) + 2)
	for level := 1; level <= cfg.MaxLevel; level++ {
		threshold := uint64(1) << uint(64-level)
		disconnected := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			tseed := hashing.Hash3(sampleSeed, uint64(level), uint64(trial))
			sub := g.Filter(func(e graph.Edge) bool {
				return hashing.Hash2(tseed, graph.EdgeID(e.U, e.V, g.N())) < threshold
			})
			cc, err := runConn(sub, int64(level*100+trial+1))
			if err != nil {
				return nil, err
			}
			if cc > base {
				disconnected++
			}
		}
		if 2*disconnected >= cfg.Trials {
			// Majority of samples at rate 2^-level disconnected:
			// λ ≈ 2^level · ln n up to an O(log n) factor.
			res.Level = level
			res.Estimate = math.Exp2(float64(level-1)) * logn / 2
			if res.Estimate < 1 {
				res.Estimate = 1
			}
			return res, nil
		}
	}
	// Never disconnected: λ exceeds every tested rate's threshold.
	res.Level = cfg.MaxLevel + 1
	res.Estimate = math.Exp2(float64(cfg.MaxLevel)) * logn / 2
	return res, nil
}
