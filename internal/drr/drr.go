// Package drr implements distributed random ranking (paper §2.5, after
// Chen–Pandurangan [8]): each component draws a uniform random rank and
// conceptually connects to the neighbor it sampled if and only if that
// neighbor's rank is strictly higher. The result is a forest of rooted
// trees whose depth is O(log n) w.h.p. (Lemma 6), which bounds the number
// of merge iterations per phase.
//
// The decision rule and forest analysis are pure functions used both by
// the distributed connectivity/MST algorithms (which evaluate ranks via
// the shared hash) and by the standalone Lemma 6 experiment (E3).
//
//km:roundpure
package drr

import "math/rand"

// Connects reports whether a component with rank selfRank connects to its
// sampled neighbor with rank targetRank (strictly higher rank wins; equal
// ranks — probability ~2^-64 with hashed ranks — stay roots, which only
// delays a merge by one phase).
func Connects(selfRank, targetRank uint64) bool {
	return targetRank > selfRank
}

// BuildForest applies the DRR rule to a component graph. targets maps each
// component to the component across its sampled outgoing edge (components
// without an outgoing edge are absent). ranks must contain every component
// in targets and every target. The result maps every component that
// connects to its parent; roots are absent.
func BuildForest(targets map[uint64]uint64, ranks map[uint64]uint64) map[uint64]uint64 {
	parent := make(map[uint64]uint64, len(targets))
	for c, t := range targets {
		if Connects(ranks[c], ranks[t]) {
			parent[c] = t
		}
	}
	return parent
}

// MaxDepth returns the length (in edges) of the longest root-directed
// chain in a parent forest. It follows parent links with memoization and
// tolerates (reports -1 for) cycles, which a correct DRR forest never has.
func MaxDepth(parent map[uint64]uint64) int {
	depth := make(map[uint64]int, len(parent))
	const visiting = -2
	var walk func(c uint64) int
	walk = func(c uint64) int {
		if d, ok := depth[c]; ok {
			if d == visiting {
				return -1 << 30 // cycle sentinel
			}
			return d
		}
		p, ok := parent[c]
		if !ok {
			depth[c] = 0
			return 0
		}
		depth[c] = visiting
		d := walk(p)
		if d < 0 {
			return d
		}
		depth[c] = d + 1
		return d + 1
	}
	max := 0
	bad := false
	for c := range parent {
		d := walk(c)
		if d < 0 {
			bad = true
			continue
		}
		if d > max {
			max = d
		}
	}
	if bad {
		return -1
	}
	return max
}

// SimulateRoundDepth simulates one DRR round over nComp components, each
// sampling a uniformly random *other* component as its merge target (the
// worst case for chain formation), and returns the maximum tree depth.
// This is the standalone Lemma 6 / Figure 2 experiment.
func SimulateRoundDepth(nComp int, rng *rand.Rand) int {
	if nComp < 2 {
		return 0
	}
	targets := make(map[uint64]uint64, nComp)
	ranks := make(map[uint64]uint64, nComp)
	for c := 0; c < nComp; c++ {
		t := rng.Intn(nComp - 1)
		if t >= c {
			t++
		}
		targets[uint64(c)] = uint64(t)
		ranks[uint64(c)] = rng.Uint64()
	}
	return MaxDepth(BuildForest(targets, ranks))
}

// RootOf resolves the root of component c in a parent forest.
func RootOf(parent map[uint64]uint64, c uint64) uint64 {
	for {
		p, ok := parent[c]
		if !ok {
			return c
		}
		c = p
	}
}
