package drr

import (
	"math"
	"math/rand"
	"testing"
)

func TestConnects(t *testing.T) {
	if !Connects(1, 2) {
		t.Error("lower rank should connect to higher")
	}
	if Connects(2, 1) || Connects(5, 5) {
		t.Error("higher or equal rank should not connect")
	}
}

func TestBuildForestBasic(t *testing.T) {
	// 0 -> 1 -> 2 chain of ranks 10 < 20 < 30: both connect.
	targets := map[uint64]uint64{0: 1, 1: 2, 2: 1}
	ranks := map[uint64]uint64{0: 10, 1: 20, 2: 30}
	parent := BuildForest(targets, ranks)
	if parent[0] != 1 || parent[1] != 2 {
		t.Errorf("parent = %v", parent)
	}
	if _, ok := parent[2]; ok {
		t.Error("2 has top rank, must be root")
	}
	if MaxDepth(parent) != 2 {
		t.Errorf("depth = %d", MaxDepth(parent))
	}
	if RootOf(parent, 0) != 2 || RootOf(parent, 2) != 2 {
		t.Error("root resolution")
	}
}

func TestForestIsAcyclic(t *testing.T) {
	// Ranks strictly increase along parent edges, so cycles are impossible
	// regardless of targets. Fuzz over random instances.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(200)
		targets := make(map[uint64]uint64, n)
		ranks := make(map[uint64]uint64, n)
		for c := 0; c < n; c++ {
			t := rng.Intn(n)
			if t == c {
				t = (t + 1) % n
			}
			targets[uint64(c)] = uint64(t)
			ranks[uint64(c)] = rng.Uint64()
		}
		parent := BuildForest(targets, ranks)
		if MaxDepth(parent) < 0 {
			t.Fatalf("trial %d: cycle detected", trial)
		}
		for c, p := range parent {
			if ranks[p] <= ranks[c] {
				t.Fatalf("trial %d: rank not increasing along edge", trial)
			}
		}
	}
}

func TestMaxDepthCycleDetection(t *testing.T) {
	parent := map[uint64]uint64{0: 1, 1: 0}
	if MaxDepth(parent) != -1 {
		t.Error("cycle should be reported as -1")
	}
}

func TestMaxDepthEmpty(t *testing.T) {
	if MaxDepth(nil) != 0 {
		t.Error("empty forest has depth 0")
	}
}

// TestLemma6DepthLogarithmic is the unit-scale version of experiment E3:
// the expected DRR path length is at most ln(n)+1 and the depth is
// O(log n) w.h.p. We check depth <= 6*log2(n+1) across many trials
// (the paper's Lemma 6 bound with its stated constant).
func TestLemma6DepthLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{16, 256, 4096, 65536} {
		bound := 6 * math.Log2(float64(n+1))
		worst := 0
		for trial := 0; trial < 20; trial++ {
			d := SimulateRoundDepth(n, rng)
			if d < 0 {
				t.Fatal("cycle")
			}
			if d > worst {
				worst = d
			}
		}
		if float64(worst) > bound {
			t.Errorf("n=%d: worst depth %d exceeds 6*log2(n+1)=%.1f", n, worst, bound)
		}
		if n >= 4096 && worst < 2 {
			t.Errorf("n=%d: depth %d suspiciously small", n, worst)
		}
	}
}

func TestSimulateDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if SimulateRoundDepth(0, rng) != 0 || SimulateRoundDepth(1, rng) != 0 {
		t.Error("degenerate sizes should have depth 0")
	}
}

func BenchmarkSimulate4096(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		SimulateRoundDepth(4096, rng)
	}
}
