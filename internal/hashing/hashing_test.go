package hashing

import (
	"math"
	"testing"

	"kmgraph/internal/field"
)

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a window; a true collision in a bijection
	// is impossible, so any duplicate indicates a broken implementation.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestRangeOfBounds(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		counts := make([]int, n)
		for i := 0; i < 10000; i++ {
			v := RangeOf(Hash2(42, uint64(i)), n)
			if v < 0 || v >= n {
				t.Fatalf("RangeOf out of bounds: %d for n=%d", v, n)
			}
			counts[v]++
		}
		// Loose uniformity: every cell within 5x of the expected mean
		// (only meaningful when expected count is large).
		if n <= 64 {
			want := 10000 / n
			for c, got := range counts {
				if got < want/5 || got > want*5 {
					t.Errorf("n=%d cell %d badly unbalanced: %d (want ~%d)", n, c, got, want)
				}
			}
		}
	}
}

func TestRangeOfDegenerate(t *testing.T) {
	if RangeOf(12345, 0) != 0 || RangeOf(12345, -3) != 0 {
		t.Error("RangeOf with n<=0 should return 0")
	}
	if RangeOf(12345, 1) != 0 {
		t.Error("RangeOf with n=1 should return 0")
	}
}

func TestPolyMatchesFieldEval(t *testing.T) {
	p := NewPolyFromSeed(7, 5)
	if p.Degree() != 5 {
		t.Fatalf("degree = %d", p.Degree())
	}
	for x := uint64(0); x < 100; x++ {
		got := p.Eval(x)
		want := field.PolyEval(p.coeffs, field.Reduce(x))
		if got != want {
			t.Fatalf("Eval(%d) = %d, want %d", x, got, want)
		}
		if got >= field.P {
			t.Fatalf("Eval(%d) = %d not canonical", x, got)
		}
	}
}

func TestPolyFromBits(t *testing.T) {
	bits := make([]byte, 8*3)
	for i := range bits {
		bits[i] = byte(i * 37)
	}
	p := NewPolyFromBits(bits, 3)
	if p == nil {
		t.Fatal("nil poly")
	}
	if p.Degree() != 3 {
		t.Fatalf("degree = %d", p.Degree())
	}
	// Deterministic in the bits.
	q := NewPolyFromBits(bits, 3)
	for x := uint64(0); x < 10; x++ {
		if p.Eval(x) != q.Eval(x) {
			t.Fatal("same bits should give same polynomial")
		}
	}
	// Too few bits.
	if NewPolyFromBits(bits[:16], 3) != nil {
		t.Error("expected nil for insufficient bits")
	}
}

func TestPolyPairwiseIndependenceStatistical(t *testing.T) {
	// For a 2-wise independent family, Pr[h(x)=h(y) mod n] ~ 1/n over the
	// seed choice. Estimate the collision rate over many random seeds.
	const n = 16
	const trials = 20000
	coll := 0
	for s := 0; s < trials; s++ {
		p := NewPolyFromSeed(uint64(s)*2654435761, 2)
		if p.EvalRange(1, n) == p.EvalRange(2, n) {
			coll++
		}
	}
	rate := float64(coll) / trials
	if math.Abs(rate-1.0/n) > 0.02 {
		t.Errorf("pairwise collision rate = %.4f, want ~%.4f", rate, 1.0/n)
	}
}

func TestPolyConstantDegreeOne(t *testing.T) {
	// d=1 gives a constant function (0-degree polynomial).
	p := NewPolyFromSeed(99, 1)
	v := p.Eval(0)
	for x := uint64(1); x < 50; x++ {
		if p.Eval(x) != v {
			t.Fatal("degree-1 poly should be constant")
		}
	}
}

func TestTrailingZerosGeometric(t *testing.T) {
	// Pr[TZ >= l] should be about 2^-l.
	const N = 200000
	counts := make([]int, 12)
	for i := 0; i < N; i++ {
		tz := TrailingZeros(1234, uint64(i))
		for l := 0; l < len(counts) && l <= tz; l++ {
			counts[l]++
		}
	}
	for l := 0; l < 8; l++ {
		got := float64(counts[l]) / N
		want := math.Pow(2, -float64(l))
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("Pr[TZ>=%d] = %.4f, want ~%.4f", l, got, want)
		}
	}
}

func TestHashFamilySeparation(t *testing.T) {
	// Different arities with overlapping inputs should not trivially agree.
	a := Hash2(1, 2)
	b := Hash3(1, 2, 0)
	c := Hash4(1, 2, 0, 0)
	if a == b || b == c || a == c {
		t.Error("hash arities should be domain-separated")
	}
}

func BenchmarkMix64(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s = Mix64(s ^ uint64(i))
	}
	_ = s
}

func BenchmarkPolyEvalD8(b *testing.B) {
	p := NewPolyFromSeed(1, 8)
	for i := 0; i < b.N; i++ {
		p.Eval(uint64(i))
	}
}
