// Package hashing provides the hash families used throughout the
// reproduction:
//
//   - Fast seeded mixers (SplitMix64 finalizers) used as shared pseudo-random
//     functions once a common seed has been distributed to all machines.
//     These stand in for the paper's shared random bit strings (§2.2); see
//     DESIGN.md substitution #2.
//   - A d-wise independent polynomial hash family over GF(2^61-1), the exact
//     construction the paper invokes via Alon–Babai–Itai [4] and
//     Alon et al. [5]: a degree-(d-1) polynomial with random coefficients
//     evaluated at the key. Both a seed-expanded and a raw-random-bits
//     constructor are provided; the latter is the faithful path fed by the
//     distributed-bits protocol.
package hashing

import (
	"math/bits"

	"kmgraph/internal/field"
)

// Mix64 is a strong 64-bit mixer (SplitMix64 finalizer). It is a bijection
// on uint64, so distinct inputs never collide before truncation.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 mixes a seed with one key.
func Hash2(seed, x uint64) uint64 {
	return Mix64(seed ^ Mix64(x))
}

// Hash3 mixes a seed with two keys.
func Hash3(seed, x, y uint64) uint64 {
	return Mix64(Hash2(seed, x) ^ Mix64(y^0xD1B54A32D192ED03))
}

// Hash4 mixes a seed with three keys.
func Hash4(seed, x, y, z uint64) uint64 {
	return Mix64(Hash3(seed, x, y) ^ Mix64(z^0x8CB92BA72F3D8DD7))
}

// RangeOf maps a hash value uniformly onto [0, n) using the fixed-point
// multiply technique (no modulo bias for n « 2^64).
func RangeOf(h uint64, n int) int {
	if n <= 0 {
		return 0
	}
	hi, _ := mul64(h, uint64(n))
	return int(hi)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Poly is a d-wise independent hash function over GF(2^61-1): a random
// polynomial of degree d-1 evaluated at the key. Any d distinct keys hash
// to independently uniform values (over the choice of coefficients).
type Poly struct {
	coeffs []uint64 // canonical field elements; coeffs[i] multiplies x^i
}

// NewPolyFromSeed expands a seed into a d-wise independent polynomial.
// This is the default (PRF-seeded) construction.
func NewPolyFromSeed(seed uint64, d int) *Poly {
	if d < 1 {
		d = 1
	}
	coeffs := make([]uint64, d)
	for i := range coeffs {
		// Rejection-free: Reduce introduces negligible bias (2^-61).
		coeffs[i] = field.Reduce(Hash2(seed, uint64(i)+0x5bd1e995))
	}
	return &Poly{coeffs: coeffs}
}

// NewPolyFromBits builds a d-wise independent polynomial from raw shared
// random bits, consuming 8 bytes per coefficient. This is the faithful
// construction fed by the paper's random-bit distribution protocol (§2.2):
// d·O(log n) true random bits yield a d-wise independent function.
// It returns nil if fewer than 8*d bytes are supplied.
func NewPolyFromBits(bits []byte, d int) *Poly {
	if d < 1 || len(bits) < 8*d {
		return nil
	}
	coeffs := make([]uint64, d)
	for i := range coeffs {
		var x uint64
		for j := 0; j < 8; j++ {
			x = x<<8 | uint64(bits[8*i+j])
		}
		coeffs[i] = field.Reduce(x)
	}
	return &Poly{coeffs: coeffs}
}

// Degree returns d, the independence parameter.
func (p *Poly) Degree() int { return len(p.coeffs) }

// Eval hashes key to a field element in [0, 2^61-1).
func (p *Poly) Eval(key uint64) uint64 {
	return field.PolyEval(p.coeffs, field.Reduce(key))
}

// EvalRange hashes key to [0, n).
func (p *Poly) EvalRange(key uint64, n int) int {
	return RangeOf(p.Eval(key)<<3, n) // shift to use high bits uniformly
}

// TrailingZeros returns the number of trailing zero bits of the hash of x
// under the given seed, capped at 63. Used by the sketch's geometric level
// assignment: Pr[level >= l] = 2^-l.
func TrailingZeros(seed, x uint64) int {
	h := Hash2(seed, x)
	if h == 0 {
		return 63
	}
	return bits.TrailingZeros64(h)
}
