// Package procstat reads host-process statistics for the CLIs' memory
// reporting (kmbench's max_rss_bytes, kmconnect's peak-RSS lines). One
// shared implementation so the platform normalization lives in exactly
// one place.
package procstat

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"syscall"
)

// MaxRSSBytes returns the process's peak resident set size in bytes, or
// 0 if rusage is unavailable.
func MaxRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	rss := int64(ru.Maxrss)
	if runtime.GOOS == "darwin" {
		return rss // darwin reports bytes
	}
	return rss * 1024 // linux reports KB
}

// RSSBytes returns the process's current resident set size in bytes, or
// 0 where it cannot be read cheaply. On Linux it comes from
// /proc/self/statm (field 2, pages); other platforms report 0 rather
// than paying for an external probe — callers treat 0 as "unknown",
// and MaxRSSBytes remains available everywhere.
func RSSBytes() int64 {
	if runtime.GOOS != "linux" {
		return 0
	}
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
