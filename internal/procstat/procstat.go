// Package procstat reads host-process statistics for the CLIs' memory
// reporting (kmbench's max_rss_bytes, kmconnect's peak-RSS lines). One
// shared implementation so the platform normalization lives in exactly
// one place.
package procstat

import (
	"runtime"
	"syscall"
)

// MaxRSSBytes returns the process's peak resident set size in bytes, or
// 0 if rusage is unavailable.
func MaxRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	rss := int64(ru.Maxrss)
	if runtime.GOOS == "darwin" {
		return rss // darwin reports bytes
	}
	return rss * 1024 // linux reports KB
}
