//go:build !linux

package store

import "os"

// mapFile on platforms without a wired-up mmap reads the file into
// memory; the Reader API is unchanged.
func mapFile(f *os.File, size int64) (data []byte, release func() error, err error) {
	return readFile(f, size)
}
