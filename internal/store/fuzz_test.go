package store

import (
	"bytes"
	"io"
	"testing"

	"kmgraph/internal/graph"
)

// FuzzReader feeds arbitrary bytes to the container reader and drains
// any source that opens. The contract under test: malformed input is an
// error, never a panic, never an out-of-range edge, and never more
// edges than the header promises.
func FuzzReader(f *testing.F) {
	seed := func(g *graph.Graph, blockTarget int) {
		var buf bytes.Buffer
		if err := write(&buf, g.Source(), blockTarget); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(graph.GNM(64, 200, 1), 64)
	seed(graph.WithDistinctWeights(graph.GNM(32, 96, 2), 3), 32)
	seed(graph.Star(17), DefaultBlockTarget)
	seed(graph.FromEdges(5, nil), DefaultBlockTarget)
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := FromBytes(data)
		if err != nil {
			return
		}
		n, m := r.N(), r.M()
		src := r.Source()
		got := 0
		for {
			e, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // detected corruption: the contract holds
			}
			if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n || e.U >= e.V {
				t.Fatalf("reader emitted invalid edge %+v for n=%d", e, n)
			}
			got++
			if got > m {
				t.Fatalf("reader emitted more than the %d edges promised", m)
			}
		}
		if got != m {
			t.Fatalf("clean EOF after %d of %d edges", got, m)
		}
	})
}
