package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"kmgraph/internal/graph"
)

// Write encodes src as a kmgs/v1 container on w. It makes two passes
// over the source (degree counting, then fill), so peak memory is the
// compact CSR working set — one uint32 per edge plus one int64 per edge
// when weighted — never a materialized graph.Graph. Self-loops,
// out-of-range endpoints, and duplicate edges are errors.
func Write(w io.Writer, src graph.EdgeSource) error {
	return write(w, src, DefaultBlockTarget)
}

// WriteFile writes src as a kmgs container at path (atomically: a temp
// file renamed into place).
func WriteFile(path string, src graph.EdgeSource) error {
	tmp, err := os.CreateTemp(dirOf(path), ".kmgs-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, src); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

func write(w io.Writer, src graph.EdgeSource, blockTarget int) error {
	n := src.N()
	if n < 0 || n > maxN {
		return fmt.Errorf("store: %w: vertex count %d out of range [0, %d]", ErrLimit, n, maxN)
	}
	if blockTarget <= 0 {
		blockTarget = DefaultBlockTarget
	}

	// Pass 1: canonical out-degrees, edge count, weight presence.
	if err := src.Reset(); err != nil {
		return err
	}
	deg := make([]uint32, n)
	m := 0
	weighted := false
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		e = e.Canon()
		if err := checkEdge(e, n); err != nil {
			return err
		}
		if deg[e.U] >= maxRowDegree {
			// uint32 degree-table overflow: an error, never a wrap-around.
			return fmt.Errorf("store: %w: row %d exceeds %d edges", ErrLimit, e.U, maxRowDegree)
		}
		deg[e.U]++
		if e.W != 1 {
			weighted = true
		}
		m++
	}

	// Exact-size CSR fill buffers.
	off := make([]int, n+1)
	for u := 0; u < n; u++ {
		off[u+1] = off[u] + int(deg[u])
	}
	nbr := make([]uint32, m)
	var wt []int64
	if weighted {
		wt = make([]int64, m)
	}
	cur := make([]int, n)
	copy(cur, off[:n])

	// Pass 2: fill rows.
	if err := src.Reset(); err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		e, err := src.Next()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("store: source shrank between passes (%d of %d edges)", i, m)
			}
			return err
		}
		e = e.Canon()
		if err := checkEdge(e, n); err != nil {
			return err
		}
		c := cur[e.U]
		if c >= off[e.U+1] {
			return fmt.Errorf("store: source changed between passes (row %d overflow)", e.U)
		}
		nbr[c] = uint32(e.V)
		if weighted {
			wt[c] = e.W
		}
		cur[e.U] = c + 1
	}
	if e, err := src.Next(); err != io.EOF {
		if err != nil {
			return err
		}
		return fmt.Errorf("store: source grew between passes (extra edge %v)", e)
	}

	// Sort each row ascending (carrying weights) and reject duplicates.
	for u := 0; u < n; u++ {
		lo, hi := off[u], off[u+1]
		row := nbr[lo:hi]
		if weighted {
			wrow := wt[lo:hi]
			sort.Sort(&rowSorter{nbr: row, wt: wrow})
		} else if !sorted(row) {
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		}
		for i := 1; i < len(row); i++ {
			if row[i] == row[i-1] {
				return fmt.Errorf("store: duplicate edge (%d,%d)", u, row[i])
			}
		}
	}

	// Encode blocks: whole rows, closing at the first row boundary past
	// blockTarget bytes.
	var (
		payload  []byte
		index    []byte
		blockBuf []byte
		firstRow = 0
		rows     = 0
		nblocks  = 0
		varbuf   [binary.MaxVarintLen64]byte
	)
	closeBlock := func() error {
		if rows == 0 {
			return nil
		}
		if len(blockBuf) > maxBlockBytes {
			// A single row can exceed blockTarget (blocks close only at row
			// boundaries); it must still fit the index's uint32 byte length.
			return fmt.Errorf("store: %w: block at row %d is %d bytes (max %d)",
				ErrLimit, firstRow, len(blockBuf), maxBlockBytes)
		}
		var ent [indexEntryLen]byte
		putU32(ent[0:], uint32(firstRow))
		putU32(ent[4:], uint32(rows))
		putU32(ent[8:], uint32(len(blockBuf)))
		putU32(ent[12:], crcOf(blockBuf))
		index = append(index, ent[:]...)
		payload = append(payload, blockBuf...)
		blockBuf = blockBuf[:0]
		nblocks++
		rows = 0
		return nil
	}
	for u := 0; u < n; u++ {
		if rows == 0 {
			firstRow = u
		}
		prev := uint32(u)
		for i := off[u]; i < off[u+1]; i++ {
			v := nbr[i]
			k := binary.PutUvarint(varbuf[:], uint64(v-prev))
			blockBuf = append(blockBuf, varbuf[:k]...)
			prev = v
			if weighted {
				k = binary.PutUvarint(varbuf[:], zigzag(wt[i]))
				blockBuf = append(blockBuf, varbuf[:k]...)
			}
		}
		rows++
		if len(blockBuf) >= blockTarget {
			if err := closeBlock(); err != nil {
				return err
			}
		}
	}
	if err := closeBlock(); err != nil {
		return err
	}

	// Emit: header, degree table, block index, blocks.
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [headerLen]byte
	copy(hdr[0:], Magic)
	putU32(hdr[4:], Version)
	flags := uint64(0)
	if weighted {
		flags |= flagWeighted
	}
	putU64(hdr[8:], flags)
	putU64(hdr[16:], uint64(n))
	putU64(hdr[24:], uint64(m))
	putU32(hdr[32:], uint32(blockTarget))
	putU32(hdr[36:], uint32(nblocks))
	putU32(hdr[40:], crcOf(hdr[:40]))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	degBytes := make([]byte, 4*n+4)
	for u, d := range deg {
		putU32(degBytes[4*u:], d)
	}
	putU32(degBytes[4*n:], crcOf(degBytes[:4*n]))
	if _, err := bw.Write(degBytes); err != nil {
		return err
	}
	index = append(index, 0, 0, 0, 0)
	putU32(index[len(index)-4:], crcOf(index[:len(index)-4]))
	if _, err := bw.Write(index); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	return bw.Flush()
}

func checkEdge(e graph.Edge, n int) error {
	if e.U == e.V {
		return fmt.Errorf("store: self-loop at %d", e.U)
	}
	if e.U < 0 || e.V >= n {
		return fmt.Errorf("store: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
	}
	return nil
}

func sorted(row []uint32) bool {
	for i := 1; i < len(row); i++ {
		if row[i] < row[i-1] {
			return false
		}
	}
	return true
}

// rowSorter sorts one CSR row by neighbor, carrying weights.
type rowSorter struct {
	nbr []uint32
	wt  []int64
}

func (r *rowSorter) Len() int           { return len(r.nbr) }
func (r *rowSorter) Less(i, j int) bool { return r.nbr[i] < r.nbr[j] }
func (r *rowSorter) Swap(i, j int) {
	r.nbr[i], r.nbr[j] = r.nbr[j], r.nbr[i]
	r.wt[i], r.wt[j] = r.wt[j], r.wt[i]
}
