package store

import "sync/atomic"

// Process-wide decode accounting. The counters are package-level (not
// per-Reader) because they feed process-level telemetry: a serving
// process wants "how much store work is this process doing", summed
// over every tenant's Reader, and per-Reader counters would be lost
// each time a graph is unloaded. All three are monotone.
var (
	statBlocksDecoded    atomic.Int64
	statCRCVerifications atomic.Int64
	statCRCFailures      atomic.Int64
)

// Stats is a snapshot of the process-wide store decode counters.
type Stats struct {
	// BlocksDecoded counts edge blocks entered by scans (a block
	// re-scanned by a later iterator counts again: this meters decode
	// work performed, not unique blocks touched).
	BlocksDecoded int64
	// CRCVerifications counts block payload checksums actually computed
	// (each block verifies lazily at most once per Reader, so for one
	// scan of one Reader this equals the block count; racing iterators
	// may add a handful of duplicate verifications).
	CRCVerifications int64
	// CRCFailures counts checksum mismatches (corrupted blocks).
	CRCFailures int64
}

// ReadStats returns the process-wide decode counters.
func ReadStats() Stats {
	return Stats{
		BlocksDecoded:    statBlocksDecoded.Load(),
		CRCVerifications: statCRCVerifications.Load(),
		CRCFailures:      statCRCFailures.Load(),
	}
}
