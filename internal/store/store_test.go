package store

import (
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"kmgraph/internal/graph"
)

// roundTrip writes g through the store and reads it back, asserting the
// edge sequence is exactly g.Edges().
func roundTrip(t *testing.T, g *graph.Graph, blockTarget int) {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf, g.Source(), blockTarget); err != nil {
		t.Fatalf("write: %v", err)
	}
	r, err := FromBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if r.N() != g.N() || r.M() != g.M() {
		t.Fatalf("size: got n=%d m=%d, want n=%d m=%d", r.N(), r.M(), g.N(), g.M())
	}
	got, err := graph.Drain(r.Source())
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	want := g.Edges()
	if len(want) == 0 {
		want = nil
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("edges drifted: got %d edges, want %d\n got[:5]=%v\nwant[:5]=%v",
			len(got), len(want), head(got), head(want))
	}
	// A second pass over the same source must replay identically.
	src := r.Source()
	again, err := graph.Drain(src)
	if err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("Reset replay drifted")
	}
}

func head(e []graph.Edge) []graph.Edge {
	if len(e) > 5 {
		return e[:5]
	}
	return e
}

func TestRoundTripRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		maxM := n * (n - 1) / 2
		m := 0
		if maxM > 0 {
			m = rng.Intn(maxM + 1)
		}
		g := graph.GNM(n, m, int64(trial))
		if trial%3 == 0 {
			g = graph.WithUniformWeights(g, 1000, int64(trial))
		} else if trial%3 == 1 {
			g = graph.WithDistinctWeights(g, int64(trial))
		}
		blockTarget := 1 << uint(4+rng.Intn(10)) // 16 B .. 8 KB: many blocks
		roundTrip(t, g, blockTarget)
	}
}

func TestRoundTripShapes(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(1),
		graph.Path(2),
		graph.Star(50),
		graph.Cycle(33),
		graph.Complete(24),
		graph.DisjointComponents(60, 6, 0.5, 3),
		graph.FromEdges(10, nil), // edgeless
	} {
		roundTrip(t, g, DefaultBlockTarget)
	}
}

func TestRoundTripNegativeAndLargeWeights(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1, -77)
	b.AddEdge(1, 2, 1<<62)
	b.AddEdge(0, 4, -(1 << 61))
	b.AddEdge(2, 3, 0)
	roundTrip(t, b.Build(), DefaultBlockTarget)
}

func TestWriteFileOpen(t *testing.T) {
	g := graph.WithDistinctWeights(graph.GNM(300, 900, 5), 6)
	path := filepath.Join(t.TempDir(), "g.kmgs")
	if err := WriteFile(path, g.Source()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if !r.Weighted() {
		t.Fatal("weighted store read back unweighted")
	}
	got, err := graph.Drain(r.Source())
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !reflect.DeepEqual(got, g.Edges()) {
		t.Fatal("mmap-backed read drifted from in-memory edges")
	}
}

func TestUnweightedFlag(t *testing.T) {
	g := graph.GNM(100, 300, 1) // all weights 1
	var buf bytes.Buffer
	if err := Write(&buf, g.Source()); err != nil {
		t.Fatal(err)
	}
	r, err := FromBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Weighted() {
		t.Fatal("all-unit-weight store should be flagged unweighted")
	}
	// An unweighted store must be smaller than the weighted encoding of
	// the same graph.
	gw := graph.WithUniformWeights(g, 1000, 2)
	var wbuf bytes.Buffer
	if err := Write(&wbuf, gw.Source()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= wbuf.Len() {
		t.Fatalf("unweighted store (%d B) not smaller than weighted (%d B)", buf.Len(), wbuf.Len())
	}
}

func TestWriterRejectsBadEdges(t *testing.T) {
	for name, edges := range map[string][]graph.Edge{
		"self-loop":    {{U: 3, V: 3, W: 1}},
		"out-of-range": {{U: 0, V: 99, W: 1}},
		"negative":     {{U: -1, V: 2, W: 1}},
		"duplicate":    {{U: 1, V: 2, W: 1}, {U: 2, V: 1, W: 5}},
	} {
		src := graph.NewSliceSource(10, edges)
		if err := Write(io.Discard, src); err == nil {
			t.Errorf("%s: writer accepted bad input", name)
		}
	}
}

func TestReaderRejectsTruncation(t *testing.T) {
	g := graph.WithDistinctWeights(graph.GNM(120, 400, 9), 9)
	var buf bytes.Buffer
	if err := write(&buf, g.Source(), 256); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, headerLen - 1, headerLen + 10, len(full) / 2, len(full) - 1} {
		r, err := FromBytes(full[:cut])
		if err != nil {
			continue // rejected at open: good
		}
		// Structurally valid prefix: the scan must catch it.
		if _, derr := graph.Drain(r.Source()); derr == nil {
			t.Errorf("truncation at %d of %d bytes went undetected", cut, len(full))
		}
	}
}

func TestReaderRejectsCorruption(t *testing.T) {
	g := graph.WithDistinctWeights(graph.GNM(120, 400, 9), 9)
	var buf bytes.Buffer
	if err := write(&buf, g.Source(), 256); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	rng := rand.New(rand.NewSource(11))
	flips := 0
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), full...)
		i := rng.Intn(len(mut))
		mut[i] ^= 1 << uint(rng.Intn(8))
		r, err := FromBytes(mut)
		if err != nil {
			continue
		}
		if _, derr := graph.Drain(r.Source()); derr == nil {
			// The flip survived: it must decode to the identical graph
			// (impossible — every section is checksummed).
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
		flips++
	}
	if flips == 0 {
		t.Fatal("every corruption was rejected at open; want some block-level lazy detections too")
	}
}
