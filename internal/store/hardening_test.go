package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"kmgraph/internal/graph"
)

// writeTemp writes g as a kmgs file under the test's temp dir.
func writeTemp(t *testing.T, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.kmgs")
	if err := WriteFile(path, g.Source()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func TestReaderCloseIdempotent(t *testing.T) {
	path := writeTemp(t, graph.GNM(100, 300, 1))
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := r.Close(); err != nil {
			t.Fatalf("Close #%d after Close: %v", i+2, err)
		}
	}

	// FromBytes readers (no file, no mapping) must close the same way.
	var buf bytes.Buffer
	if err := Write(&buf, graph.Path(5).Source()); err != nil {
		t.Fatal(err)
	}
	br, err := FromBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := br.Close(); err != nil {
		t.Fatalf("FromBytes Close: %v", err)
	}
	if err := br.Close(); err != nil {
		t.Fatalf("FromBytes double Close: %v", err)
	}
}

// openFDs counts this process's open file descriptors (linux proc; other
// platforms skip the leak assertion).
func openFDs(t *testing.T) (int, bool) {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, false
	}
	return len(ents), true
}

// TestOpenErrorPathsDoNotLeak corrupts a valid store at several points
// past successful open(2) — header CRC, degree table, block index — and
// asserts every failed Open released its file descriptor (and therefore
// its mapping, which is released first on the same path).
func TestOpenErrorPathsDoNotLeak(t *testing.T) {
	path := writeTemp(t, graph.GNM(200, 600, 3))
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Offsets inside distinct validation stages: header CRC (40), degree
	// table (headerLen+1), block index (headerLen + 4n + 4 + 1).
	offsets := []int{40, headerLen + 1, headerLen + 4*200 + 4 + 1}

	before, ok := openFDs(t)
	for round := 0; round < 5; round++ {
		for _, off := range offsets {
			bad := append([]byte(nil), good...)
			bad[off] ^= 0xff
			badPath := filepath.Join(t.TempDir(), "bad.kmgs")
			if err := os.WriteFile(badPath, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(badPath); err == nil {
				t.Fatalf("Open accepted store corrupted at offset %d", off)
			}
		}
	}
	if ok {
		after, _ := openFDs(t)
		if after > before {
			t.Errorf("fd leak across failed Opens: %d before, %d after", before, after)
		}
	}

	// The original file still opens and serves after all those failures.
	r, err := Open(path)
	if err != nil {
		t.Fatalf("reopening pristine store: %v", err)
	}
	defer r.Close()
	if _, err := graph.Drain(r.Source()); err != nil {
		t.Fatalf("draining pristine store: %v", err)
	}
}

func TestWriterRejectsVertexCountBeyondMaxN(t *testing.T) {
	src := graph.NewSliceSource(maxN+1, nil)
	err := Write(&bytes.Buffer{}, src)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("n = maxN+1: got %v, want ErrLimit", err)
	}
	// n = maxN itself is within bounds; reject must be strictly past it.
	// (Allocating 8 GB of degree table is out of scope for a unit test, so
	// only the error text is checked to not fire at the boundary via the
	// guard's condition — exercised indirectly by the reader test below.)
}

func TestWriterRejectsDegreeOverflow(t *testing.T) {
	defer func(old uint32) { maxRowDegree = old }(maxRowDegree)
	maxRowDegree = 3

	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1}}
	if err := Write(&bytes.Buffer{}, graph.NewSliceSource(5, edges)); err != nil {
		t.Fatalf("degree == limit must be accepted: %v", err)
	}
	edges = append(edges, graph.Edge{U: 0, V: 4, W: 1})
	err := Write(&bytes.Buffer{}, graph.NewSliceSource(5, edges))
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("degree overflow: got %v, want ErrLimit", err)
	}
}

func TestReaderRejectsVertexCountBeyondMaxN(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, graph.Path(4).Source()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	putU64(data[16:], uint64(maxN)+1)
	putU32(data[40:], crcOf(data[:40])) // re-seal the header
	_, err := FromBytes(data)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("forged n = maxN+1: got %v, want ErrLimit", err)
	}
}

// TestConcurrentSourcesOneReader drains many sources over one shared
// mapping in parallel — the serving pattern — and is the -race witness
// for the atomic block-verification flags.
func TestConcurrentSourcesOneReader(t *testing.T) {
	g := graph.GNM(500, 2000, 11)
	var buf bytes.Buffer
	if err := write(&buf, g.Source(), 1<<10); err != nil { // many blocks
		t.Fatal(err)
	}
	r, err := FromBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := graph.Drain(r.Source())
			if err != nil {
				errs <- err
				return
			}
			if len(got) != g.M() {
				errs <- fmt.Errorf("drained %d edges, want %d", len(got), g.M())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
