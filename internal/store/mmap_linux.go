//go:build linux

package store

import (
	"os"
	"syscall"
)

// mapFile maps f read-only. The returned release func unmaps; data stays
// valid until then. Empty files map to a nil slice.
func mapFile(f *os.File, size int64) (data []byte, release func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Fall back to a plain read (e.g. special files that refuse mmap).
		return readFile(f, size)
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
