// Package store is the out-of-core graph container: a versioned binary
// format ("kmgs/v1") holding an n-vertex undirected graph as a
// compressed sparse-row edge section, written once by a streaming Writer
// and served by an mmap-backed zero-copy Reader. It exists so clusters
// can load million-vertex graphs shard-direct — each machine's adjacency
// filled straight from the stream — without ever materializing a
// coordinator-side graph.Graph.
//
// # Format (kmgs/v1, all integers little-endian)
//
//	header (44 bytes)
//	  0   magic "KMGS"
//	  4   uint32 version        (1)
//	  8   uint64 flags          (bit 0: weighted)
//	  16  uint64 n              (vertex count)
//	  24  uint64 m              (edge count)
//	  32  uint32 blockTarget    (writer's soft block size in bytes)
//	  36  uint32 numBlocks
//	  40  uint32 crc32(IEEE) of bytes [0, 40)
//	degree table (4n + 4 bytes)
//	  n x uint32: canonical out-degree of row u — the number of stored
//	  edges {u, v} with u < v — followed by crc32 of the table
//	block index (16·numBlocks + 4 bytes)
//	  numBlocks x {uint32 firstRow, uint32 rowCount, uint32 byteLen,
//	  uint32 crc32(block payload)}, followed by crc32 of the index
//	edge blocks (concatenated)
//	  each block covers whole rows [firstRow, firstRow+rowCount). Row u
//	  holds deg[u] entries, neighbors strictly increasing:
//	    uvarint(v0 - u) uvarint(v1 - v0) ... — deltas are always >= 1,
//	  and, when the weighted flag is set, each delta is followed by a
//	  zig-zag varint of the edge weight.
//
// Strictly increasing rows make duplicate edges unrepresentable, and
// every consumer gets edges in canonical (U, V) order — the property the
// shard-direct loader exploits to fill per-machine adjacency pre-sorted.
// Per-section and per-block checksums mean truncation and corruption are
// detected errors, never panics (see the reader fuzz test).
package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

const (
	// Magic identifies a kmgs container.
	Magic = "KMGS"
	// Version is the current format version.
	Version = 1
	// headerLen is the byte length of the fixed header including its CRC.
	headerLen = 44
	// flagWeighted marks a store whose edges carry explicit weights; an
	// unweighted store reads back with all weights 1.
	flagWeighted = 1 << 0
	// DefaultBlockTarget is the writer's soft block payload size: blocks
	// close at the first row boundary past this many bytes, so a block
	// is the checksum/readahead granule, not a row-splitting unit.
	DefaultBlockTarget = 1 << 16
	// indexEntryLen is the byte length of one block-index entry.
	indexEntryLen = 16
	// maxN bounds the vertex count so degrees and rows fit the uint32
	// tables.
	maxN = 1 << 31
	// maxBlockBytes bounds one block's payload so its byte length fits the
	// uint32 index entry.
	maxBlockBytes = 1<<32 - 1
)

// maxRowDegree bounds one row's canonical out-degree so it fits the
// uint32 degree table. A variable (not a const) so the overflow branch is
// testable without writing 2^32 edges.
var maxRowDegree uint32 = 1<<32 - 1

// ErrLimit tags size-bound violations: a vertex count beyond maxN, a row
// whose canonical out-degree overflows the uint32 degree table, or a
// block too large for its uint32 index entry. Both the Writer and the
// Reader report these as wrapped ErrLimit errors (errors.Is) instead of
// silently truncating to the narrower on-disk integer.
var ErrLimit = errors.New("size limit exceeded")

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }

// zigzag encodes a signed weight as an unsigned varint payload.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
