package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"kmgraph/internal/graph"
)

// Reader serves a kmgs container zero-copy: the file is mmap'd and rows
// are decoded directly out of the mapping, so the resident cost of an
// open store is the page cache's business, not the process heap's.
// Structural metadata (header, degree table, block index) is validated
// eagerly at Open; block payload checksums are verified lazily, once,
// the first time a scan touches each block. Every decode path is
// bounds-checked: corrupted or truncated input yields an error, never a
// panic.
//
// A Reader is safe for concurrent metadata access (N, M, RowDegree) and
// for concurrent Source() iterators over one mapping: each iterator is
// single-goroutine like any EdgeSource, but any number of them may run
// in parallel — per-block CRC verification, the only shared mutable
// state, is atomic (racing verifications are idempotent). Close must not
// race with in-flight iterators.
type Reader struct {
	f        *os.File
	data     []byte
	release  func() error
	closed   bool
	n        int
	m        int
	weighted bool

	deg      []byte // degree table (4 bytes per row), inside data
	index    []byte // block index entries, inside data
	nblocks  int
	blockOff []int         // per block: payload offset of block start, +1 entry
	payload  []byte        // edge blocks, inside data
	verified []atomic.Bool // lazily-set per-block CRC verdicts
}

func readFile(f *os.File, size int64) ([]byte, func() error, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, nil, err
	}
	return b, func() error { return nil }, nil
}

// Open opens the kmgs container at path. Every error branch releases
// whatever was acquired before it — the file on a stat/map failure, the
// file and the mapping on a validation failure — so a failed Open never
// leaks an fd or an mmap.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	release := func() error { return nil }
	fail := func(err error) (*Reader, error) {
		// Unmap before closing the file: both must happen even if one
		// errors, and the mapping must not outlive the descriptor.
		release()
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	data, rel, err := mapFile(f, st.Size())
	if err != nil {
		return fail(err)
	}
	release = rel
	r, err := newReader(data)
	if err != nil {
		return fail(err)
	}
	r.f = f
	r.release = release
	return r, nil
}

// FromBytes opens a kmgs container held in memory (tests, fuzzing).
func FromBytes(data []byte) (*Reader, error) { return newReader(data) }

func newReader(data []byte) (*Reader, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("store: truncated header (%d bytes)", len(data))
	}
	if string(data[0:4]) != Magic {
		return nil, fmt.Errorf("store: bad magic %q", data[0:4])
	}
	if v := getU32(data[4:]); v != Version {
		return nil, fmt.Errorf("store: unsupported version %d (want %d)", v, Version)
	}
	if got, want := crcOf(data[:40]), getU32(data[40:]); got != want {
		return nil, fmt.Errorf("store: header checksum mismatch (%08x != %08x)", got, want)
	}
	flags := getU64(data[8:])
	if flags&^uint64(flagWeighted) != 0 {
		return nil, fmt.Errorf("store: unknown flags %#x", flags)
	}
	n64, m64 := getU64(data[16:]), getU64(data[24:])
	if n64 > maxN {
		return nil, fmt.Errorf("store: %w: vertex count %d out of range [0, %d]", ErrLimit, n64, maxN)
	}
	nblocks := int(getU32(data[36:]))
	r := &Reader{
		data:     data,
		n:        int(n64),
		m:        int(m64),
		weighted: flags&flagWeighted != 0,
		nblocks:  nblocks,
	}

	// Degree table.
	degEnd := headerLen + 4*int64(r.n) + 4
	if int64(len(data)) < degEnd {
		return nil, fmt.Errorf("store: truncated degree table")
	}
	r.deg = data[headerLen : degEnd-4]
	if got, want := crcOf(r.deg), getU32(data[degEnd-4:]); got != want {
		return nil, fmt.Errorf("store: degree table checksum mismatch")
	}
	degSum := uint64(0)
	for u := 0; u < r.n; u++ {
		degSum += uint64(getU32(r.deg[4*u:]))
	}
	if degSum != m64 {
		return nil, fmt.Errorf("store: degree table sums to %d, header says m=%d", degSum, m64)
	}

	// Block index.
	idxEnd := degEnd + indexEntryLen*int64(nblocks) + 4
	if idxEnd < degEnd || int64(len(data)) < idxEnd {
		return nil, fmt.Errorf("store: truncated block index")
	}
	r.index = data[degEnd : idxEnd-4]
	if got, want := crcOf(r.index), getU32(data[idxEnd-4:]); got != want {
		return nil, fmt.Errorf("store: block index checksum mismatch")
	}
	r.payload = data[idxEnd:]
	r.blockOff = make([]int, nblocks+1)
	r.verified = make([]atomic.Bool, nblocks)
	nextRow := 0
	off := 0
	for b := 0; b < nblocks; b++ {
		first := int(getU32(r.index[indexEntryLen*b:]))
		rows := int(getU32(r.index[indexEntryLen*b+4:]))
		blen := int(getU32(r.index[indexEntryLen*b+8:]))
		if first != nextRow || rows <= 0 || first+rows > r.n {
			return nil, fmt.Errorf("store: block %d covers rows [%d,%d), expected to start at %d",
				b, first, first+rows, nextRow)
		}
		nextRow = first + rows
		r.blockOff[b] = off
		if blen < 0 || off+blen < off || off+blen > len(r.payload) {
			return nil, fmt.Errorf("store: block %d overruns payload", b)
		}
		off += blen
	}
	r.blockOff[nblocks] = off
	if off != len(r.payload) {
		return nil, fmt.Errorf("store: %d payload bytes indexed, %d present", off, len(r.payload))
	}
	// Every row with nonzero degree must be covered by some block.
	if nblocks > 0 && nextRow != r.n {
		for u := nextRow; u < r.n; u++ {
			if getU32(r.deg[4*u:]) != 0 {
				return nil, fmt.Errorf("store: row %d has edges but no block", u)
			}
		}
	}
	if nblocks == 0 && m64 != 0 {
		return nil, fmt.Errorf("store: %d edges but no blocks", m64)
	}
	return r, nil
}

// N returns the vertex count.
func (r *Reader) N() int { return r.n }

// M returns the edge count.
func (r *Reader) M() int { return r.m }

// Weighted reports whether the store carries explicit edge weights.
func (r *Reader) Weighted() bool { return r.weighted }

// RowDegree returns the canonical out-degree of row u: the number of
// stored edges {u, v} with v > u (not the graph degree of u).
func (r *Reader) RowDegree(u int) int {
	if u < 0 || u >= r.n {
		return 0
	}
	return int(getU32(r.deg[4*u:]))
}

// Close releases the mapping and the file. The Reader and any sources
// derived from it must not be used afterwards. Close is idempotent:
// second and later calls are no-ops returning nil, and a partial failure
// (unmap or file close erroring) never leaves the other half acquired.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	var err error
	if r.release != nil {
		err = r.release()
		r.release = nil
	}
	if r.f != nil {
		if cerr := r.f.Close(); err == nil {
			err = cerr
		}
		r.f = nil
	}
	r.data, r.deg, r.index, r.payload = nil, nil, nil, nil
	return err
}

// checkBlock verifies a block's payload checksum once. The verified
// flags are atomic, so concurrent sources may race here safely: the
// payload is immutable, verification is idempotent, and the worst case
// is the same CRC computed twice.
func (r *Reader) checkBlock(b int) error {
	if r.verified[b].Load() {
		return nil
	}
	statCRCVerifications.Add(1)
	blk := r.payload[r.blockOff[b]:r.blockOff[b+1]]
	if got, want := crcOf(blk), getU32(r.index[indexEntryLen*b+12:]); got != want {
		statCRCFailures.Add(1)
		return fmt.Errorf("store: block %d checksum mismatch (%08x != %08x)", b, got, want)
	}
	r.verified[b].Store(true)
	return nil
}

// Source returns an EdgeSource streaming the store in canonical row
// order, decoding straight from the mapping. Each source is
// single-goroutine like any EdgeSource, but any number of concurrent
// sources may stream one Reader in parallel — the serving layer hands
// every worker its own iterator over one shared mapping.
func (r *Reader) Source() graph.EdgeSource { return &readerSource{r: r} }

// readerSource iterates blocks and rows sequentially.
type readerSource struct {
	r     *Reader
	block int    // current block
	row   int    // current row (absolute)
	left  int    // entries left in current row
	prev  uint64 // previous neighbor in current row
	buf   []byte // remaining bytes of current block
	emit  int    // edges emitted
	err   error  // sticky error
}

func (s *readerSource) N() int { return s.r.n }

func (s *readerSource) Reset() error {
	s.block, s.row, s.left, s.prev, s.buf, s.emit, s.err = 0, 0, 0, 0, nil, 0, nil
	return nil
}

// fail latches and returns a stream error.
func (s *readerSource) fail(format string, args ...any) (graph.Edge, error) {
	s.err = fmt.Errorf(format, args...)
	return graph.Edge{}, s.err
}

func (s *readerSource) Next() (graph.Edge, error) {
	if s.err != nil {
		return graph.Edge{}, s.err
	}
	r := s.r
	for {
		if s.left == 0 {
			// Advance to the next row with edges, entering blocks as
			// needed.
			if s.emit == r.m {
				return graph.Edge{}, io.EOF
			}
			if s.buf == nil {
				if s.block >= r.nblocks {
					return s.fail("store: %d of %d edges decoded at end of blocks", s.emit, r.m)
				}
				if err := r.checkBlock(s.block); err != nil {
					s.err = err
					return graph.Edge{}, err
				}
				statBlocksDecoded.Add(1)
				s.buf = r.payload[r.blockOff[s.block]:r.blockOff[s.block+1]]
				s.row = int(getU32(r.index[indexEntryLen*s.block:]))
				s.block++
			}
			blockEnd := int(getU32(r.index[indexEntryLen*(s.block-1):])) +
				int(getU32(r.index[indexEntryLen*(s.block-1)+4:]))
			for s.row < blockEnd && getU32(r.deg[4*s.row:]) == 0 {
				s.row++
			}
			if s.row >= blockEnd {
				if len(s.buf) != 0 {
					return s.fail("store: %d trailing bytes in block %d", len(s.buf), s.block-1)
				}
				s.buf = nil
				continue
			}
			s.left = int(getU32(r.deg[4*s.row:]))
			s.prev = uint64(s.row)
		}
		delta, k := binary.Uvarint(s.buf)
		if k <= 0 {
			return s.fail("store: bad varint in row %d", s.row)
		}
		s.buf = s.buf[k:]
		if delta == 0 || delta >= uint64(r.n) {
			return s.fail("store: neighbor delta %d out of range in row %d", delta, s.row)
		}
		v := s.prev + delta
		if v >= uint64(r.n) {
			return s.fail("store: neighbor %d out of range in row %d", v, s.row)
		}
		s.prev = v
		w := int64(1)
		if r.weighted {
			zw, k := binary.Uvarint(s.buf)
			if k <= 0 {
				return s.fail("store: bad weight varint in row %d", s.row)
			}
			s.buf = s.buf[k:]
			w = unzigzag(zw)
		}
		s.left--
		s.emit++
		u := s.row
		if s.left == 0 {
			s.row++
		}
		return graph.Edge{U: u, V: int(v), W: w}, nil
	}
}
