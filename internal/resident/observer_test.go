package resident

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"kmgraph/internal/graph"
)

// TestObserverPanicIsRecovered is the hardening regression test: a
// panicking observer callback must not take the engine down. The job it
// tripped on fails with ErrObserverPanic, the panic is counted, and the
// engine keeps serving subsequent jobs.
func TestObserverPanicIsRecovered(t *testing.T) {
	ctx := context.Background()
	g := graph.GNM(200, 500, 5)
	var calls atomic.Int64
	cfg := Config{K: 3, Seed: 11, PhaseMetrics: true}
	cfg.Observer = func(ev Event) {
		if calls.Add(1) > 2 {
			panic("observer bug")
		}
	}
	e := mustEngine(t, g, cfg)

	if _, err := e.Query(ctx); !errors.Is(err, ErrObserverPanic) {
		t.Fatalf("query with panicking observer: err = %v, want ErrObserverPanic", err)
	}
	if n := e.Metrics().ObserverPanics; n == 0 {
		t.Fatal("observer panics not counted")
	}

	// The engine is still serviceable: silence the observer and the next
	// job succeeds with a correct answer.
	calls.Store(-1 << 40)
	q, err := e.Query(ctx)
	if err != nil {
		t.Fatalf("query after recovered panic: %v", err)
	}
	_, oracle := graph.Components(g)
	if q.Components != oracle {
		t.Fatalf("components after recovered panic: %d, want %d", q.Components, oracle)
	}
}

// TestObserverPanicInDoneEvent covers the trailing edge: a panic raised
// while delivering the job's own done event is recovered and counted,
// but cannot retroactively fail the job (its result is already final) —
// and the *next* job is unaffected, because the tripped flag resets at
// each job start.
func TestObserverPanicInDoneEvent(t *testing.T) {
	ctx := context.Background()
	g := graph.GNM(150, 400, 6)
	var armed atomic.Bool
	cfg := Config{K: 3, Seed: 13}
	cfg.Observer = func(ev Event) {
		if armed.Load() && ev.Done {
			panic("done-event bug")
		}
	}
	e := mustEngine(t, g, cfg)

	armed.Store(true)
	before := e.Metrics().ObserverPanics
	if _, err := e.Query(ctx); err != nil {
		t.Fatalf("done-event panic must not fail the finished job: %v", err)
	}
	if e.Metrics().ObserverPanics <= before {
		t.Fatal("done-event panic not counted")
	}

	armed.Store(false)
	if _, err := e.Query(ctx); err != nil {
		t.Fatalf("next job failed: %v", err)
	}
}
