package resident

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
)

func mustEngine(t *testing.T, g *graph.Graph, cfg Config) *Engine {
	t.Helper()
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestOneClusterServesEveryFamily is the acceptance property: one resident
// cluster serves connectivity, MST, min-cut, multiple verification
// problems, and a dynamic batch — with the graph-load rounds paid exactly
// once (metrics-based: the cumulative rounds telescope as load + the sum
// of per-job rounds).
func TestOneClusterServesEveryFamily(t *testing.T) {
	ctx := context.Background()
	g := graph.WithDistinctWeights(graph.RandomConnected(400, 900, 7), 8)
	e := mustEngine(t, g, Config{K: 5, Seed: 21})

	load := e.Metrics()
	if load.LoadRounds <= 0 {
		t.Fatalf("load rounds = %d, want > 0", load.LoadRounds)
	}
	if load.Total.Rounds != load.LoadRounds {
		t.Fatalf("pre-job total %d != load %d", load.Total.Rounds, load.LoadRounds)
	}
	jobRounds := 0

	// Connectivity (incremental query path).
	q, err := e.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, oracleCC := graph.Components(g)
	if q.Components != oracleCC {
		t.Fatalf("components = %d, oracle %d", q.Components, oracleCC)
	}
	jobRounds += q.Rounds

	// MST on the same residency.
	mst, err := e.MST(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	_, oracleW := graph.KruskalMST(g)
	if mst.TotalWeight != oracleW {
		t.Fatalf("MST weight = %d, oracle %d", mst.TotalWeight, oracleW)
	}
	jobRounds += mst.Metrics.Rounds

	// Min-cut on the same residency.
	mc, err := e.MinCut(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Level < 1 || mc.Estimate <= 0 {
		t.Fatalf("min-cut on a connected graph: %+v", mc)
	}
	jobRounds += mc.Metrics.Rounds

	// Two verification problems on the same residency.
	vb, err := e.Verify(ctx, Bipartiteness, VerifyArgs{})
	if err != nil {
		t.Fatal(err)
	}
	if vb.Holds != graph.IsBipartite(g) {
		t.Fatalf("bipartiteness = %v, oracle %v", vb.Holds, graph.IsBipartite(g))
	}
	jobRounds += vb.Metrics.Rounds

	vs, err := e.Verify(ctx, STConnectivity, VerifyArgs{S: 0, T: g.N() - 1})
	if err != nil {
		t.Fatal(err)
	}
	if !vs.Holds {
		t.Fatal("s-t connectivity on a connected graph = false")
	}
	jobRounds += vs.Metrics.Rounds

	// A dynamic batch, then a (cheap, incremental) re-query.
	br, err := e.ApplyBatch(ctx, []graph.EdgeOp{{U: 0, V: g.N() / 2, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if br.Applied+br.RejectedInserts != 1 {
		t.Fatalf("batch: %+v", br)
	}
	jobRounds += br.Rounds
	q2, err := e.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Components != oracleCC {
		t.Fatalf("post-batch components = %d, oracle %d", q2.Components, oracleCC)
	}
	jobRounds += q2.Rounds

	// The residency contract: total rounds = load (once) + per-job costs.
	m := e.Metrics()
	if m.LoadRounds != load.LoadRounds {
		t.Fatalf("load rounds changed: %d -> %d (graph re-loaded?)", load.LoadRounds, m.LoadRounds)
	}
	if m.Total.Rounds != m.LoadRounds+jobRounds {
		t.Fatalf("total rounds %d != load %d + jobs %d", m.Total.Rounds, m.LoadRounds, jobRounds)
	}
	if m.Jobs != 7 {
		t.Fatalf("jobs = %d, want 7", m.Jobs)
	}
}

// TestResidentMatchesOneShot pins the resident jobs against the one-shot
// algorithms' verdicts on the same inputs.
func TestResidentMatchesOneShot(t *testing.T) {
	ctx := context.Background()

	// Disconnected input: min-cut reports 0, SCS of a spanning tree of one
	// component fails, cycle containment agrees with m > n - c.
	g := graph.DisjointComponents(300, 3, 0.5, 11)
	e := mustEngine(t, g, Config{K: 4, Seed: 9})
	mc, err := e.MinCut(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Level != -1 || mc.Estimate != 0 {
		t.Fatalf("min-cut of disconnected graph: %+v", mc)
	}
	_, cc := graph.Components(g)
	cyc, err := e.Verify(ctx, CycleContainment, VerifyArgs{})
	if err != nil {
		t.Fatal(err)
	}
	if want := g.M() > g.N()-cc; cyc.Holds != want {
		t.Fatalf("cycle containment = %v, want %v", cyc.Holds, want)
	}

	// Spanning connected subgraph: the MST of a connected graph holds, a
	// partial edge set does not.
	g2 := graph.WithDistinctWeights(graph.RandomConnected(250, 600, 13), 14)
	e2 := mustEngine(t, g2, Config{K: 4, Seed: 17})
	tree, _ := graph.KruskalMST(g2)
	scs, err := e2.Verify(ctx, SpanningConnectedSubgraph, VerifyArgs{H: tree})
	if err != nil {
		t.Fatal(err)
	}
	if !scs.Holds {
		t.Fatal("SCS rejected a spanning tree")
	}
	scs2, err := e2.Verify(ctx, SpanningConnectedSubgraph, VerifyArgs{H: tree[:len(tree)/2]})
	if err != nil {
		t.Fatal(err)
	}
	if scs2.Holds {
		t.Fatal("SCS accepted half a spanning tree")
	}

	// Cut verification: the bridges of two bridged cliques are a cut; a
	// single non-bridge edge is not.
	g3 := graph.TwoCliquesBridged(30, 2, 19)
	e3 := mustEngine(t, g3, Config{K: 3, Seed: 23})
	var bridges, inner []graph.Edge
	for _, ed := range g3.Edges() {
		if (ed.U < 30) != (ed.V < 30) {
			bridges = append(bridges, ed)
		} else if len(inner) == 0 {
			inner = append(inner, ed)
		}
	}
	vc, err := e3.Verify(ctx, CutVerification, VerifyArgs{Cut: bridges})
	if err != nil {
		t.Fatal(err)
	}
	if !vc.Holds {
		t.Fatal("bridge set not recognized as a cut")
	}
	vc2, err := e3.Verify(ctx, CutVerification, VerifyArgs{Cut: inner})
	if err != nil {
		t.Fatal(err)
	}
	if vc2.Holds {
		t.Fatal("inner clique edge recognized as a cut")
	}

	// ST cut / edge-on-all-paths / e-cycle on a path plus one chord.
	gb := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		gb.AddEdge(i, i+1, 1)
	}
	gb.AddEdge(0, 2, 1) // chord: 0-1, 1-2 lie on a cycle
	g4 := gb.Build()
	e4 := mustEngine(t, g4, Config{K: 2, Seed: 29})
	stc, err := e4.Verify(ctx, STCutVerification, VerifyArgs{S: 0, T: 5, Cut: []graph.Edge{{U: 3, V: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if !stc.Holds {
		t.Fatal("edge (3,4) should separate 0 from 5")
	}
	eap, err := e4.Verify(ctx, EdgeOnAllPaths, VerifyArgs{S: 0, T: 5, E: graph.Edge{U: 4, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !eap.Holds {
		t.Fatal("edge (4,5) lies on every 0-5 path")
	}
	ecy, err := e4.Verify(ctx, ECycleContainment, VerifyArgs{E: graph.Edge{U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !ecy.Holds {
		t.Fatal("edge (1,2) lies on the chord cycle")
	}
	ecy2, err := e4.Verify(ctx, ECycleContainment, VerifyArgs{E: graph.Edge{U: 4, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if ecy2.Holds {
		t.Fatal("edge (4,5) is a bridge, not on any cycle")
	}
	if _, err := e4.Verify(ctx, ECycleContainment, VerifyArgs{E: graph.Edge{U: 0, V: 5}}); err == nil {
		t.Fatal("ECycleContainment accepted an absent edge")
	}
}

// TestMSTTracksBatches: MST jobs observe the live graph — after deleting
// the lightest edge, the MST recomputes against the mutated residency.
func TestMSTTracksBatches(t *testing.T) {
	ctx := context.Background()
	g := graph.WithDistinctWeights(graph.RandomConnected(150, 400, 31), 32)
	e := mustEngine(t, g, Config{K: 3, Seed: 37})
	mst1, err := e.MST(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	drop := mst1.Edges[0]
	if _, err := e.ApplyBatch(ctx, []graph.EdgeOp{{Del: true, U: drop.U, V: drop.V}}); err != nil {
		t.Fatal(err)
	}
	mst2, err := e.MST(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	snap := graph.ApplyOps(g, []graph.EdgeOp{{Del: true, U: drop.U, V: drop.V}})
	_, oracleW := graph.KruskalMST(snap)
	if mst2.TotalWeight != oracleW {
		t.Fatalf("post-delete MST weight = %d, oracle %d", mst2.TotalWeight, oracleW)
	}
	if mst2.TotalWeight == mst1.TotalWeight {
		t.Fatal("deleting an MST edge did not change the MST weight")
	}
}

// TestStrongOutputMST: the strong output criterion delivers every MST edge
// to both endpoints' home machines.
func TestStrongOutputMST(t *testing.T) {
	g := graph.WithDistinctWeights(graph.RandomConnected(120, 300, 41), 42)
	e := mustEngine(t, g, Config{K: 3, Seed: 43})
	mst, err := e.MST(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if mst.VertexEdges == nil {
		t.Fatal("strong output returned no vertex edges")
	}
	count := make(map[uint64]bool)
	for v, es := range mst.VertexEdges {
		for _, ed := range es {
			if ed.U != v && ed.V != v {
				t.Fatalf("vertex %d holds non-incident edge %+v", v, ed)
			}
			count[graph.EdgeID(ed.U, ed.V, g.N())] = true
		}
	}
	if len(count) != len(mst.Edges) {
		t.Fatalf("strong output covers %d edges, MST has %d", len(count), len(mst.Edges))
	}
}

// TestCancellationMidPhase cancels a job deterministically after its first
// phase event and checks (a) the job returns the context error, (b) the
// cluster is not wedged: the same engine serves subsequent jobs correctly.
// Run under -race, this also exercises the cancel-flag publication path.
func TestCancellationMidPhase(t *testing.T) {
	g := graph.WithDistinctWeights(graph.RandomConnected(500, 1200, 51), 52)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{K: 4, Seed: 53}
	cfg.Observer = func(ev Event) {
		if ev.Job == "mst" && ev.Phase == 0 {
			cancel() // fires mid-job, between phase 0 and phase 1
		}
	}
	e := mustEngine(t, g, cfg)

	if _, err := e.MST(ctx, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled MST: err = %v, want context.Canceled", err)
	}

	// The engine must still serve jobs after the cancellation.
	q, err := e.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, oracleCC := graph.Components(g)
	if q.Components != oracleCC {
		t.Fatalf("post-cancel components = %d, oracle %d", q.Components, oracleCC)
	}
	mst, err := e.MST(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	_, oracleW := graph.KruskalMST(g)
	if mst.TotalWeight != oracleW {
		t.Fatalf("post-cancel MST weight = %d, oracle %d", mst.TotalWeight, oracleW)
	}
}

// TestCancelledQueryKeepsEngineConsistent cancels a connectivity query
// mid-phase and checks the certificate/labels stay consistent: the next
// uncancelled query answers the oracle.
func TestCancelledQueryKeepsEngineConsistent(t *testing.T) {
	g := graph.GNM(400, 800, 61)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{K: 4, Seed: 63}
	cfg.Observer = func(ev Event) {
		if ev.Job == "connectivity" && ev.Seq == 1 && ev.Phase == 0 {
			cancel()
		}
	}
	e := mustEngine(t, g, cfg)
	if _, err := e.Query(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: err = %v, want context.Canceled", err)
	}
	q, err := e.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	oracle, cc := graph.Components(g)
	if q.Components != cc {
		t.Fatalf("post-cancel components = %d, oracle %d", q.Components, cc)
	}
	min := make(map[uint64]int)
	for v, l := range q.Labels {
		if m, ok := min[l]; !ok || v < m {
			min[l] = v
		}
	}
	for v, l := range q.Labels {
		if min[l] != oracle[v] {
			t.Fatalf("vertex %d misclassified after cancelled query", v)
		}
	}
}

// TestQueuedJobCancellation: a job whose context is cancelled while queued
// behind a running job never executes.
func TestQueuedJobCancellation(t *testing.T) {
	g := graph.GNM(300, 700, 71)
	e := mustEngine(t, g, Config{K: 3, Seed: 73})

	hold, err := e.begin(context.Background(), "hold") // occupy the queue slot
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := e.Query(ctx)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the query join the queue
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued job: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued job did not observe cancellation")
	}
	hold.end(nil)
	if _, err := e.Query(context.Background()); err != nil {
		t.Fatalf("query after queue release: %v", err)
	}
}

// TestConcurrentCallers hammers one engine from many goroutines; the job
// queue must serialize them without races or deadlocks (run under -race).
func TestConcurrentCallers(t *testing.T) {
	g := graph.GNM(200, 500, 81)
	e := mustEngine(t, g, Config{K: 3, Seed: 83})
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if _, err := e.Query(ctx); err != nil {
				errs <- err
			}
			if _, err := e.ApplyBatch(ctx, []graph.EdgeOp{{U: i, V: 100 + i, W: 1}}); err != nil {
				errs <- err
			}
			if _, err := e.Verify(ctx, CycleContainment, VerifyArgs{}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCloseReleasesGoroutines: an engine leaves no goroutines behind after
// Close, including after a cancelled job.
func TestCloseReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	g := graph.WithDistinctWeights(graph.RandomConnected(300, 700, 91), 92)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{K: 4, Seed: 93}
	cfg.Observer = func(ev Event) {
		if ev.Job == "mst" && ev.Phase == 0 {
			cancel()
		}
	}
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.MST(ctx, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	met, err := e.Close()
	if err != nil {
		t.Fatal(err)
	}
	if met.Rounds <= 0 || met.DroppedMessages != 0 {
		t.Fatalf("bad close metrics: %+v", met)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(10 * time.Millisecond)
		runtime.GC()
	}
}

// TestObserverSeesPhases: the observer receives load, per-phase, and done
// events with monotone rounds.
func TestObserverSeesPhases(t *testing.T) {
	g := graph.GNM(200, 500, 95)
	var mu sync.Mutex
	var events []Event
	cfg := Config{K: 3, Seed: 97}
	cfg.Observer = func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	e := mustEngine(t, g, cfg)
	if _, err := e.Query(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 || events[0].Job != "load" || !events[0].Done {
		t.Fatalf("first event: %+v", events)
	}
	phases, lastRound := 0, 0
	for _, ev := range events {
		if ev.Round < lastRound {
			t.Fatalf("rounds went backwards: %+v", ev)
		}
		lastRound = ev.Round
		if ev.Job == "connectivity" && ev.Phase >= 0 {
			phases++
		}
	}
	if phases == 0 {
		t.Fatal("no phase events observed")
	}
	last := events[len(events)-1]
	if last.Job != "connectivity" || !last.Done || last.Err != "" {
		t.Fatalf("last event: %+v", last)
	}
}

// TestResidentQueryEquivalence: a fresh engine's first query matches the
// static algorithm's component count (the static-equivalence property the
// dynamic subsystem pinned, now at the resident layer).
func TestResidentQueryEquivalence(t *testing.T) {
	g := graph.GNM(350, 650, 99)
	e := mustEngine(t, g, Config{K: 5, Seed: 101})
	q, err := e.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	static, err := core.Run(g, core.Config{K: 5, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	if q.Components != static.Components {
		t.Fatalf("resident %d components, static %d", q.Components, static.Components)
	}
}
