package resident

import (
	"sort"

	"kmgraph/internal/graph"
)

// coordinator is machine 0's resident certificate state. As stream ingress,
// machine 0 legitimately observes every accepted operation, so it can
// maintain — in free local memory — a connectivity certificate of the
// current graph: the spanning forest established by the last query plus
// the net insertions since. Queries recompute certificate pieces locally
// and ship only changed labels; everything machine 0 knows here it learned
// through metered communication (op routing and verdict collection).
type coordinator struct {
	n       int
	labels  []uint64              // authoritative labeling as of last sync
	forest  map[uint64]graph.Edge // spanning forest of the last queried snapshot, minus deletions
	pending map[uint64]graph.Edge // net accepted insertions since the last query
}

type vertLabel struct {
	v     int
	label uint64
}

func newCoordinator(n int) *coordinator {
	c := &coordinator{
		n:       n,
		labels:  make([]uint64, n),
		forest:  make(map[uint64]graph.Edge),
		pending: make(map[uint64]graph.Edge),
	}
	for v := range c.labels {
		c.labels[v] = uint64(v)
	}
	return c
}

// applyAccepted folds one accepted (graph-mutating) op into the
// certificate. A deletion of a certificate edge shrinks it — the next
// query's piece computation discovers any split; a deletion of a
// non-certificate edge cannot change connectivity and is dropped.
func (c *coordinator) applyAccepted(op graph.EdgeOp) {
	id := graph.EdgeID(op.U, op.V, c.n)
	if op.Del {
		if _, ok := c.forest[id]; ok {
			delete(c.forest, id)
			return
		}
		delete(c.pending, id)
		return
	}
	c.pending[id] = graph.Edge{U: op.U, V: op.V, W: op.W}
}

func sortedEdgeIDs(m map[uint64]graph.Edge) []uint64 {
	ids := make([]uint64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// recompute rebuilds piece labels from the certificate (forest ∪ pending),
// folds the accepted union edges into the new forest, and returns the
// vertices whose label changed plus the certificate size.
//
// Label choice is stability-first. Every label in use is the ID of a
// member vertex, so each previous label L lives in exactly one piece: that
// piece may keep L (distinctness is automatic). A piece containing
// several previous-label vertices — components merged by insertions —
// keeps the label of the largest previous class (ties to the smaller
// label); pieces holding no previous-label vertex (fragments split off by
// deletions) fall back to their minimum vertex ID, which cannot collide
// with any kept label because that label's vertex sits in a different
// piece. The common case — a big component shedding a small fragment —
// therefore relabels only the fragment.
func (c *coordinator) recompute() (changes []vertLabel, certEdges int) {
	certEdges = len(c.forest) + len(c.pending)
	uf := graph.NewUnionFind(c.n)
	newForest := make(map[uint64]graph.Edge, len(c.forest))
	for _, id := range sortedEdgeIDs(c.forest) {
		e := c.forest[id]
		if uf.Union(e.U, e.V) {
			newForest[id] = e
		}
	}
	for _, id := range sortedEdgeIDs(c.pending) {
		e := c.pending[id]
		if uf.Union(e.U, e.V) {
			newForest[id] = e
		}
	}
	c.forest = newForest
	c.pending = make(map[uint64]graph.Edge)

	classSize := make(map[uint64]int)
	for v := 0; v < c.n; v++ {
		classSize[c.labels[v]]++
	}
	pieceLabel := make(map[int]uint64)
	for v := 0; v < c.n; v++ {
		l := uint64(v)
		if classSize[l] == 0 {
			continue // v's ID is not a label in use
		}
		r := uf.Find(v)
		cur, taken := pieceLabel[r]
		if !taken || classSize[l] > classSize[cur] {
			pieceLabel[r] = l
		}
	}
	// Fallback: minimum vertex of the piece (ascending scan ⇒ first seen).
	for v := 0; v < c.n; v++ {
		r := uf.Find(v)
		if _, ok := pieceLabel[r]; !ok {
			pieceLabel[r] = uint64(v)
		}
	}
	for v := 0; v < c.n; v++ {
		nl := pieceLabel[uf.Find(v)]
		if nl != c.labels[v] {
			changes = append(changes, vertLabel{v: v, label: nl})
			c.labels[v] = nl
		}
	}
	return changes, certEdges
}

// relabelAndGrow applies a query's final sync: per-vertex label updates
// from the merge phases and the freshly sampled merge edges that join the
// forest.
func (c *coordinator) relabelAndGrow(changes []vertLabel, merges []graph.Edge) {
	for _, ch := range changes {
		c.labels[ch.v] = ch.label
	}
	for _, e := range merges {
		c.forest[graph.EdgeID(e.U, e.V, c.n)] = e
	}
}

// components counts distinct labels.
func (c *coordinator) components() int {
	seen := make(map[uint64]bool)
	for _, l := range c.labels {
		seen[l] = true
	}
	return len(seen)
}

// forestEdges returns the current forest sorted by edge ID.
func (c *coordinator) forestEdges() []graph.Edge {
	out := make([]graph.Edge, 0, len(c.forest))
	for _, id := range sortedEdgeIDs(c.forest) {
		out = append(out, c.forest[id])
	}
	return out
}
