package resident

import (
	"fmt"
	"sort"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/proxy"
	"kmgraph/internal/sketch"
	"kmgraph/internal/wire"
)

// Host command kinds. Command arrival is control plane and free; command
// *contents* that are data (batch ops) enter only at machine 0 and are
// distributed in-model at metered cost. Run/MST specs are public problem
// statements (local knowledge), so they ride the control plane like the
// one-shot algorithms' pre-filtered inputs.
const (
	cmdApply = iota
	cmdQuery
	cmdRun
	cmdMST
	cmdClose
)

// hostCmd is a control-plane command.
//
// wake is the determinism gate: each machine unparks and acks, then blocks
// on wake until the host has seen all k acks. This guarantees every
// machine has re-entered the round barrier before any machine steps, so
// barrier grouping — and therefore per-command round counts — cannot
// depend on goroutine scheduling.
type hostCmd struct {
	kind int
	seq  int            // job sequence number (observer events)
	name string         // job family name (observer events)
	ops  []graph.EdgeOp // cmdApply: machine 0 (ingress) only
	spec *runSpec       // cmdRun
	mst  *mstSpec       // cmdMST
	wake chan struct{}
}

type mstSpec struct {
	strong bool
}

// reply is one machine's out-of-band result for one command — the model's
// designated output variables o_i, read between commands.
type reply struct {
	id     int
	rounds int
	// batch
	applied    int
	appliedIns int
	appliedDel int
	rejIns     int
	rejDel     int
	// query / run / mst
	labels        map[int]uint64
	components    int
	forest        []graph.Edge
	phases        int
	failures      int64
	collapseIters int
	relabeled     int
	certEdges     int
	mergeEdges    int
	converged     bool
	cancelled     bool
	// run
	probePresent bool
	// mst
	mstEdges    []graph.Edge
	vertexEdges map[int][]graph.Edge
	elimIters   int
	weakRounds  int
}

// rmachine is one machine's resident state for the lifetime of the
// engine: the shared merge engine (labels, proxy states), the mutable
// adjacency view, the maintained sketch banks, and — on machine 0 — the
// certificate coordinator. The machine executes host commands in SPMD
// style.
type rmachine struct {
	e      *Engine
	ctx    *kmachine.Ctx
	mg     *core.Merger
	view   *dynView
	banks  *bankCache
	coord  *coordinator // machine 0 only
	ccfg   core.Config
	banksN int

	// globalPhase never repeats within a session, so proxy assignments and
	// DRR ranks stay fresh across jobs (the paper's h_{j,ρ} freshness).
	globalPhase int
	mergeRecs   []graph.Edge
}

func (m *rmachine) loop() error {
	if err := m.mg.Setup(); err != nil {
		return err
	}
	m.mg.Cancelled = m.e.jobCancelled
	seeds := make([]uint64, m.banksN)
	for b := range seeds {
		seeds[b] = m.mg.Sh.BankSeed(b)
	}
	m.banks = newBankCache(m.ccfg.Sketch, seeds)
	m.mg.OnRelabel = func(relabel map[uint64]uint64) {
		m.banks.mergeRelabel(relabel, m.mg.Parts())
	}
	if m.ctx.ID() == 0 {
		m.coord = newCoordinator(m.view.n)
	}
	m.reply(reply{}) // ready: load done, rounds carried in the reply

	for {
		// Park while idling on the host: the round barrier proceeds
		// without this machine, so peers still draining deliveries are
		// never stalled. The ack/wake handshake then holds every machine
		// back until all have unparked, keeping barrier grouping — and so
		// round accounting — deterministic.
		m.ctx.Park()
		cmd := <-m.e.cmds[m.ctx.ID()]
		m.ctx.Unpark()
		m.e.ackCh <- m.ctx.ID()
		<-cmd.wake
		switch cmd.kind {
		case cmdApply:
			m.applyBatch(cmd.ops)
		case cmdQuery:
			m.query(cmd)
		case cmdRun:
			m.runDerived(cmd)
		case cmdMST:
			m.runMST(cmd)
		case cmdClose:
			m.mg.ReleasePools()
			m.ctx.SetOutput(&struct{}{})
			return nil
		default:
			return fmt.Errorf("resident: unknown command %d", cmd.kind)
		}
	}
}

func (m *rmachine) reply(r reply) {
	r.id = m.ctx.ID()
	r.rounds = m.ctx.Round()
	m.e.replyCh <- r
}

// phaseEvent emits an observer event from machine 0 (free host-side
// observability, between metered rounds). With Config.PhaseMetrics the
// event carries a deep cluster-metrics snapshot, served by the
// coordinator out-of-band (snapshot requests ride the event channel but
// are not barrier events, so fetching one mid-run cannot wedge the
// round loop or change any metered quantity).
func (m *rmachine) phaseEvent(cmd hostCmd, phase int, active, failures uint64) {
	if m.ctx.ID() != 0 || m.e.cfg.Observer == nil {
		return
	}
	ev := Event{
		Job: cmd.name, Seq: cmd.seq, Phase: phase,
		Round: m.ctx.Round(), Active: active, Failures: failures,
	}
	if m.e.cfg.PhaseMetrics {
		if met, ok := m.e.kc.Snapshot(); ok {
			ev.Snap = &met
		}
	}
	m.e.notify(ev)
}

// applyBatch distributes a batch from the ingress to the endpoints' home
// machines, applies it against the live adjacency and maintained banks,
// and collects per-op accept/reject verdicts back at machine 0 (which
// folds accepted ops into the certificate). Ops arrive canonicalized
// (U < V); the home of U is the primary, responsible for the verdict.
func (m *rmachine) applyBatch(ops []graph.EdgeOp) {
	k := m.ctx.K()

	// Exchange 1: ingress routes each op to both endpoints' homes.
	var out []proxy.Out
	if m.ctx.ID() == 0 {
		bufs := make([][]byte, k)
		counts := make([]int, k)
		addTo := func(dst, idx int, op graph.EdgeOp) {
			b := bufs[dst]
			b = wire.AppendUvarint(b, uint64(idx))
			b = wire.AppendBool(b, op.Del)
			b = wire.AppendUvarint(b, uint64(op.U))
			b = wire.AppendUvarint(b, uint64(op.V))
			b = wire.AppendVarint(b, op.W)
			bufs[dst] = b
			counts[dst]++
		}
		for i, op := range ops {
			hu, hv := m.view.Home(op.U), m.view.Home(op.V)
			addTo(hu, i, op)
			if hv != hu {
				addTo(hv, i, op)
			}
		}
		a := m.mg.Comm.Arena()
		for d := 0; d < k; d++ {
			if counts[d] == 0 {
				continue
			}
			data := a.Grab(10 + len(bufs[d]))
			data = wire.AppendUvarint(data, uint64(counts[d]))
			data = append(data, bufs[d]...)
			out = append(out, proxy.Out{Dst: d, Data: a.Commit(data)})
		}
	}
	recv := m.mg.Comm.Exchange(out)

	// Apply my ops in batch order; primaries record verdicts.
	type rop struct {
		idx  int
		del  bool
		u, v int
		w    int64
	}
	var mine []rop
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		cnt := int(r.Uvarint())
		for i := 0; i < cnt; i++ {
			mine = append(mine, rop{
				idx: int(r.Uvarint()),
				del: r.Bool(),
				u:   int(r.Uvarint()),
				v:   int(r.Uvarint()),
				w:   r.Varint(),
			})
		}
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].idx < mine[j].idx })
	var verdicts []byte
	nv := 0
	for _, op := range mine {
		acc := m.applyOp(op.del, op.u, op.v, op.w)
		if m.view.Home(op.u) == m.ctx.ID() {
			verdicts = wire.AppendUvarint(verdicts, uint64(op.idx))
			verdicts = wire.AppendBool(verdicts, acc)
			nv++
		}
	}

	// Exchange 2: verdicts to the ingress.
	out = nil
	if nv > 0 {
		a := m.mg.Comm.Arena()
		data := a.Grab(10 + len(verdicts))
		data = wire.AppendUvarint(data, uint64(nv))
		data = append(data, verdicts...)
		out = append(out, proxy.Out{Dst: 0, Data: a.Commit(data)})
	}
	recv = m.mg.Comm.Exchange(out)
	rep := reply{}
	if m.ctx.ID() == 0 {
		acc := make([]bool, len(ops))
		for _, msg := range recv {
			r := wire.NewReader(msg.Data)
			cnt := int(r.Uvarint())
			for i := 0; i < cnt; i++ {
				idx := int(r.Uvarint())
				a := r.Bool()
				if idx < len(acc) {
					acc[idx] = a
				}
			}
		}
		for i, op := range ops {
			if !acc[i] {
				if op.Del {
					rep.rejDel++
				} else {
					rep.rejIns++
				}
				continue
			}
			rep.applied++
			if op.Del {
				rep.appliedDel++
			} else {
				rep.appliedIns++
			}
			m.coord.applyAccepted(op)
		}
	}
	m.reply(rep)
}

// applyOp mutates the live adjacency and the maintained banks for the
// endpoints this machine owns. Both endpoint homes see identical prior
// state for the edge, so their accept decisions agree. Sign convention
// follows a_u (§2.3): +1 for the smaller endpoint's incidence, negated on
// deletion.
func (m *rmachine) applyOp(del bool, u, v int, w int64) bool {
	id := graph.EdgeID(u, v, m.view.n)
	me := m.ctx.ID()
	ownU := m.view.Home(u) == me
	ownV := m.view.Home(v) == me
	var present bool
	if ownU {
		present = m.view.has(u, v)
	} else {
		present = m.view.has(v, u)
	}
	if del {
		if !present {
			return false
		}
		if ownU {
			m.view.remove(u, v)
			m.banks.update(m.mg.Labels[u], id, -1)
		}
		if ownV {
			m.view.remove(v, u)
			m.banks.update(m.mg.Labels[v], id, +1)
		}
		return true
	}
	if present {
		return false
	}
	if ownU {
		m.view.insert(u, graph.Half{To: v, W: w})
		m.banks.update(m.mg.Labels[u], id, +1)
	}
	if ownV {
		m.view.insert(v, graph.Half{To: u, W: w})
		m.banks.update(m.mg.Labels[v], id, -1)
	}
	return true
}

// query answers connectivity on the current graph: certificate piece
// relabel (only changed labels travel), Boruvka merge phases over the
// maintained banks via the shared engine, and a final sync that returns
// fresh forest edges and label changes to the coordinator. A cancelled
// query breaks at a phase boundary but still runs the final sync, so the
// coordinator's certificate stays consistent with the machines' labels.
func (m *rmachine) query(cmd hostCmd) {
	startFail := m.mg.Failures
	startCollapse := m.mg.CollapseIters
	rep := reply{}

	// Step 1: certificate piece relabel.
	var out []proxy.Out
	if m.ctx.ID() == 0 {
		changes, cert := m.coord.recompute()
		rep.relabeled = len(changes)
		rep.certEdges = cert
		k := m.ctx.K()
		bufs := make([][]byte, k)
		counts := make([]int, k)
		for _, ch := range changes {
			d := m.view.Home(ch.v)
			bufs[d] = wire.AppendUvarint(bufs[d], uint64(ch.v))
			bufs[d] = wire.AppendUvarint(bufs[d], ch.label)
			counts[d]++
		}
		a := m.mg.Comm.Arena()
		for d := 0; d < k; d++ {
			if counts[d] == 0 {
				continue
			}
			data := a.Grab(10 + len(bufs[d]))
			data = wire.AppendUvarint(data, uint64(counts[d]))
			data = append(data, bufs[d]...)
			out = append(out, proxy.Out{Dst: d, Data: a.Commit(data)})
		}
	}
	recv := m.mg.Comm.Exchange(out)
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		cnt := int(r.Uvarint())
		for i := 0; i < cnt; i++ {
			v := int(r.Uvarint())
			l := r.Uvarint()
			m.banks.drop(m.mg.Labels[v])
			m.banks.drop(l)
			m.mg.Labels[v] = l
		}
	}
	m.banks.retain(m.mg.Parts())

	// Step 2: Boruvka merge phases from the piece labeling.
	pre := make(map[int]uint64, len(m.mg.Labels))
	for v, l := range m.mg.Labels {
		pre[v] = l
	}
	m.mergeRecs = m.mergeRecs[:0]
	phases := 0
	converged := false
	cancelled := false
	for phases < m.ccfg.MaxPhases {
		m.mg.Phase = m.globalPhase
		m.mg.StateSlot = 0
		m.mg.PhaseActive = 0
		m.selectBanks(phases % m.banksN)
		m.mg.Collapse()
		m.mg.BroadcastAndRelabel()
		active, failures, cancel := m.mg.PhaseSync()
		m.globalPhase++
		phases++
		m.phaseEvent(cmd, phases-1, active, failures)
		if cancel {
			cancelled = true
			break
		}
		if active == 0 && failures == 0 {
			converged = true
			break
		}
	}

	// Step 3: final sync — Boruvka label changes and sampled merge edges
	// flow to the coordinator, which grows the forest and counts
	// components over its resident labeling.
	var chg []byte
	nc := 0
	for _, v := range m.view.owned {
		if m.mg.Labels[v] != pre[v] {
			chg = wire.AppendUvarint(chg, uint64(v))
			chg = wire.AppendUvarint(chg, m.mg.Labels[v])
			nc++
		}
	}
	a := m.mg.Comm.Arena()
	data := a.Grab(20 + len(chg) + 30*len(m.mergeRecs))
	data = wire.AppendUvarint(data, uint64(nc))
	data = append(data, chg...)
	data = wire.AppendUvarint(data, uint64(len(m.mergeRecs)))
	for _, e := range m.mergeRecs {
		data = wire.AppendUvarint(data, uint64(e.U))
		data = wire.AppendUvarint(data, uint64(e.V))
		data = wire.AppendVarint(data, e.W)
	}
	data = a.Commit(data)
	recv = m.mg.Comm.Exchange([]proxy.Out{{Dst: 0, Data: data}})
	if m.ctx.ID() == 0 {
		var changes []vertLabel
		var merges []graph.Edge
		for _, msg := range recv {
			r := wire.NewReader(msg.Data)
			cnt := int(r.Uvarint())
			for i := 0; i < cnt; i++ {
				changes = append(changes, vertLabel{v: int(r.Uvarint()), label: r.Uvarint()})
			}
			me := int(r.Uvarint())
			for i := 0; i < me; i++ {
				merges = append(merges, graph.Edge{U: int(r.Uvarint()), V: int(r.Uvarint()), W: r.Varint()})
			}
		}
		m.coord.relabelAndGrow(changes, merges)
		rep.components = m.coord.components()
		rep.forest = m.coord.forestEdges()
		rep.mergeEdges = len(merges)
	}
	rep.phases = phases
	rep.converged = converged
	rep.cancelled = cancelled
	rep.failures = m.mg.Failures - startFail
	rep.collapseIters = m.mg.CollapseIters - startCollapse
	rep.labels = make(map[int]uint64, len(m.mg.Labels))
	for v, l := range m.mg.Labels {
		rep.labels[v] = l
	}
	m.reply(rep)
}

// selectBanks is the dynamic selection step: identical to the static
// sketch path (§2.3–2.4) except that part sketches come from the
// maintained banks instead of being built fresh against a per-phase
// projection, and applied merges record their sampled edge for the
// certificate forest.
func (m *rmachine) selectBanks(bank int) {
	parts := m.mg.Parts()
	seed := m.banks.seeds[bank]
	a := m.mg.Comm.Arena()

	// Part bank-sums to component proxies.
	var out []proxy.Out
	for _, label := range core.SortedKeys(parts) {
		sk := m.banks.get(label, bank, parts[label], m.view)
		out = append(out, proxy.Out{Dst: m.mg.ProxyOf(0, label), Data: m.mg.SketchPayload(label, sk), Framed: true})
	}
	recv := m.mg.Comm.Exchange(out)

	// Proxy side: sum part sketches per component (linearity cancels
	// intra-component edges), record part holders.
	m.mg.AccumulateParts(recv, seed)

	// Sample an outgoing edge per component; resolve the neighbor label by
	// querying the outside endpoint's home machine (live adjacency).
	out = nil
	for _, label := range m.mg.StateKeys() {
		cst := m.mg.States[label]
		sk := cst.Sum
		cst.Sum = nil
		x, y, insideSmaller, st := sk.SampleEdge()
		m.mg.Pool().Put(sk)
		switch st {
		case sketch.Empty:
			// No outgoing edges: inactive root this phase.
		case sketch.Failed:
			m.mg.Failures++
		case sketch.Sampled:
			outside := x
			if insideSmaller {
				outside = y
			}
			cst.PendU, cst.PendV = x, y
			q := a.Grab(40)
			q = wire.AppendUvarint(q, uint64(outside))
			q = wire.AppendUvarint(q, uint64(x))
			q = wire.AppendUvarint(q, uint64(y))
			q = wire.AppendUvarint(q, label)
			out = append(out, proxy.Out{Dst: m.view.Home(outside), Data: a.Commit(q)})
		}
	}
	recv = m.mg.Comm.Exchange(out)
	out = m.mg.AnswerLabelQueries(recv)
	recv = m.mg.Comm.Exchange(out)

	// DRR ranking; applied merges record the sampled edge as a fresh
	// forest edge.
	for _, msg := range recv {
		r := wire.NewReader(msg.Data)
		askLabel := r.Uvarint()
		nbrLabel := r.Uvarint()
		valid := r.Bool()
		w := r.Varint()
		st := m.mg.States[askLabel]
		if st == nil {
			panic("resident: reply for unknown component")
		}
		if !valid || nbrLabel == askLabel {
			m.mg.Failures++
			continue
		}
		m.mg.PhaseActive++
		m.mg.ApplyRank(st, nbrLabel)
		if st.Parent != st.Label {
			m.mergeRecs = append(m.mergeRecs, graph.Edge{U: st.PendU, V: st.PendV, W: w})
		}
	}
}

// runDerived executes one fresh connectivity computation over a derived
// view of the live graph — the building block of the min-cut sampling
// trials and the verification reductions. The job reuses the residency
// (partition, shared randomness, session communicator) but none of the
// incremental state: labels start as singletons over the derived view.
func (m *rmachine) runDerived(cmd hostCmd) {
	spec := cmd.spec
	rep := reply{}
	if spec.probeU >= 0 && m.view.Home(spec.probeU) == m.ctx.ID() {
		rep.probePresent = m.view.has(spec.probeU, spec.probeV)
	}
	view := m.derive(spec)
	cfg := m.runConfig(spec)
	fm := core.NewMergerOn(m.mg.Comm, view, cfg, m.mg.Sh, m.mg.Poly)
	defer fm.ReleasePools()
	fm.Cancelled = m.e.jobCancelled

	phases := 0
	converged := false
	cancelled := false
	for phases < cfg.MaxPhases {
		fm.Phase = m.globalPhase
		fm.StateSlot = 0
		fm.PhaseActive = 0
		fm.SelectSketch()
		fm.Collapse()
		fm.BroadcastAndRelabel()
		active, failures, cancel := fm.PhaseSync()
		m.globalPhase++
		phases++
		m.phaseEvent(cmd, phases-1, active, failures)
		if cancel {
			cancelled = true
			break
		}
		if active == 0 && failures == 0 {
			converged = true
			break
		}
	}
	rep.phases = phases
	rep.converged = converged
	rep.cancelled = cancelled
	rep.failures = fm.Failures
	rep.collapseIters = fm.CollapseIters
	rep.labels = fm.Labels
	m.reply(rep)
}

// runMST constructs the minimum spanning forest of the live graph with the
// §3.1 algorithm: fresh singleton labels over the resident adjacency,
// MWOE selection phases through the shared engine, MST edges accumulated
// on the proxies (weak output) and optionally disseminated to both
// endpoints' homes (strong output).
func (m *rmachine) runMST(cmd hostCmd) {
	rep := reply{}
	fm := core.NewMergerOn(m.mg.Comm, m.view, m.ccfg, m.mg.Sh, m.mg.Poly)
	defer fm.ReleasePools()
	fm.Cancelled = m.e.jobCancelled
	maxElim := m.e.cfg.MaxElimIters
	if maxElim <= 0 {
		maxElim = core.DefaultMaxElimIters(m.view.N())
	}
	w := core.NewMWOE(fm, maxElim)

	phases := 0
	converged := false
	cancelled := false
	for phases < m.ccfg.MaxPhases {
		fm.Phase = m.globalPhase
		fm.StateSlot = 0
		fm.PhaseActive = 0
		w.Select()
		fm.Collapse()
		fm.BroadcastAndRelabel()
		active, failures, cancel := fm.PhaseSync()
		m.globalPhase++
		phases++
		m.phaseEvent(cmd, phases-1, active, failures)
		if cancel {
			cancelled = true
			break
		}
		if active == 0 && failures == 0 {
			converged = true
			break
		}
	}
	rep.weakRounds = m.ctx.Round()
	if cmd.mst.strong && !cancelled {
		rep.vertexEdges = w.DisseminateStrong()
	}
	rep.phases = phases
	rep.converged = converged
	rep.cancelled = cancelled
	rep.failures = fm.Failures
	rep.collapseIters = fm.CollapseIters
	rep.elimIters = w.ElimIters
	rep.labels = fm.Labels
	for _, id := range core.SortedKeys(w.Edges) {
		rep.mstEdges = append(rep.mstEdges, w.Edges[id])
	}
	m.reply(rep)
}
