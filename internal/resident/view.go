package resident

import (
	"sort"

	"kmgraph/internal/graph"
	"kmgraph/internal/sketch"
)

// dynView is a machine's mutable graph knowledge: the adjacency of its
// owned vertices, kept current under batched insertions and deletions. It
// implements core.GraphView, so the shared merge engine consults the live
// graph when validating sampled edges and answering label queries.
type dynView struct {
	n     int
	id    int
	home  func(v int) int
	owned []int
	adj   map[int][]graph.Half // owned vertex -> sorted adjacency
}

func newDynView(n, id int, home func(int) int, owned []int, initAdj func(v int) []graph.Half) *dynView {
	v := &dynView{n: n, id: id, home: home, owned: owned, adj: make(map[int][]graph.Half, len(owned))}
	for _, u := range owned {
		v.adj[u] = append([]graph.Half(nil), initAdj(u)...)
	}
	return v
}

// adoptDynView wraps an adjacency shard the caller surrenders (the
// shard-direct load path): the rows are adopted as the live adjacency
// without copying, so the streamed shards ARE the residency. Rows must
// be sorted by neighbor, which the shard loader guarantees.
func adoptDynView(n, id int, home func(int) int, owned []int, adj map[int][]graph.Half) *dynView {
	if adj == nil {
		adj = make(map[int][]graph.Half)
	}
	return &dynView{n: n, id: id, home: home, owned: owned, adj: adj}
}

// N returns the vertex count.
func (v *dynView) N() int { return v.n }

// Owned returns this machine's vertices.
func (v *dynView) Owned() []int { return v.owned }

// Home returns the home machine of any vertex.
func (v *dynView) Home(x int) int { return v.home(x) }

// Adj returns the current adjacency list of an owned vertex.
func (v *dynView) Adj(u int) []graph.Half { return v.adj[u] }

func (v *dynView) find(u, to int) (int, bool) {
	a := v.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i].To >= to })
	return i, i < len(a) && a[i].To == to
}

// has reports whether the owned vertex u currently has an edge to `to`.
func (v *dynView) has(u, to int) bool {
	_, ok := v.find(u, to)
	return ok
}

// insert adds the half-edge u->h, keeping the list sorted. It reports
// false (and leaves the list unchanged) if the edge is already present.
func (v *dynView) insert(u int, h graph.Half) bool {
	i, ok := v.find(u, h.To)
	if ok {
		return false
	}
	a := v.adj[u]
	a = append(a, graph.Half{})
	copy(a[i+1:], a[i:])
	a[i] = h
	v.adj[u] = a
	return true
}

// remove deletes the half-edge u->to, reporting whether it was present.
func (v *dynView) remove(u, to int) bool {
	i, ok := v.find(u, to)
	if !ok {
		return false
	}
	a := v.adj[u]
	copy(a[i:], a[i+1:])
	v.adj[u] = a[:len(a)-1]
	return true
}

// bankCache maintains, per component part held on this machine and per
// sketch bank, the sum of the part members' l0-sketches over the *current*
// adjacency. Entries are built lazily (a rebuild is free local
// computation), updated in O(1) per edge op by AddItem's ±1 linearity,
// merged by sketch addition when components merge, and dropped — to be
// rebuilt lazily — when the certificate step splits a part.
type bankCache struct {
	params sketch.Params
	seeds  []uint64
	parts  map[uint64]map[int]*sketch.Sketch // label -> bank -> sum
}

func newBankCache(params sketch.Params, seeds []uint64) *bankCache {
	return &bankCache{params: params, seeds: seeds, parts: make(map[uint64]map[int]*sketch.Sketch)}
}

// get returns the bank sum for a part, building it from the live adjacency
// on a cache miss.
func (c *bankCache) get(label uint64, bank int, members []int, view *dynView) *sketch.Sketch {
	e := c.parts[label]
	if e == nil {
		e = make(map[int]*sketch.Sketch)
		c.parts[label] = e
	}
	if sk := e[bank]; sk != nil {
		return sk
	}
	sk := sketch.New(c.params, c.seeds[bank])
	for _, v := range members {
		sk.AddVertex(v, view.Adj(v), nil)
	}
	e[bank] = sk
	return sk
}

// update applies one endpoint's incidence delta to every materialized bank
// of the endpoint's part: sign follows the a_u convention (+1 when the
// endpoint is the smaller one), negated for deletions.
func (c *bankCache) update(label uint64, id uint64, sign int) {
	if e := c.parts[label]; e != nil {
		for _, sk := range e {
			sk.AddItem(id, sign)
		}
	}
}

// drop discards the cached sums of a part (it will rebuild lazily).
func (c *bankCache) drop(label uint64) { delete(c.parts, label) }

// retain prunes cache keys that are no longer live labels on this machine.
func (c *bankCache) retain(live map[uint64][]int) {
	for l := range c.parts {
		if _, ok := live[l]; !ok {
			delete(c.parts, l)
		}
	}
}

// mergeRelabel folds cached part sums through an old-label -> root map
// (invoked before labels are rewritten, so localParts still reflects the
// old grouping). For each root, the merged bank sum exists only if every
// local source part has that bank materialized; otherwise the bank is
// dropped and rebuilt lazily on next use.
func (c *bankCache) mergeRelabel(relabel map[uint64]uint64, localParts map[uint64][]int) {
	groups := make(map[uint64][]uint64)
	for l := range localParts {
		nl, ok := relabel[l]
		if !ok {
			nl = l
		}
		groups[nl] = append(groups[nl], l) //kmvet:ignore sketch addition is cell-wise linear; fold order immaterial
	}
	next := make(map[uint64]map[int]*sketch.Sketch, len(groups))
	for nl, srcs := range groups {
		if len(srcs) == 1 && srcs[0] == nl {
			if e, ok := c.parts[nl]; ok {
				next[nl] = e
			}
			continue
		}
		entries := make([]map[int]*sketch.Sketch, 0, len(srcs))
		complete := true
		for _, l := range srcs {
			e, ok := c.parts[l]
			if !ok {
				complete = false
				break
			}
			entries = append(entries, e)
		}
		if !complete {
			continue
		}
		merged := make(map[int]*sketch.Sketch)
		for b, sk := range entries[0] {
			sum := sk.Clone()
			all := true
			for _, e := range entries[1:] {
				o, ok := e[b]
				if !ok {
					all = false
					break
				}
				if err := sum.Add(o); err != nil {
					all = false
					break
				}
			}
			if all {
				merged[b] = sum
			}
		}
		if len(merged) > 0 {
			next[nl] = merged
		}
	}
	c.parts = next
}
