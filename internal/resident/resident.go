// Package resident is the shared resident-cluster substrate: it loads and
// partitions a graph across a k-machine cluster exactly once, then serves
// every algorithm family in the library as a job against that residency —
// incremental connectivity queries, update batches, MST construction,
// min-cut approximation, and the Theorem 4 verification problems — without
// ever re-distributing the graph.
//
// The substrate generalizes the dynamic subsystem's serving loop (which it
// absorbs): each machine is a long-lived goroutine that parks on the round
// barrier while idle (kmachine Park/Unpark), wakes for host commands, and
// executes them in SPMD lockstep. Residency means three things survive
// across jobs:
//
//   - The loaded state: the random vertex partition, each machine's
//     mutable adjacency, and the shared randomness established at load
//     (proxy.Setup, the FaithfulRandomness polynomial, bank seeds). Jobs
//     never pay the load phase again — the engine meters it exactly once
//     and reports it in Metrics.Load.
//   - The maintained state: per-part sketch banks (updated in O(1) per
//     edge op by linearity) and the certificate forest at machine 0, so
//     connectivity queries after churn run ~log(#affected pieces) phases
//     instead of ~log(n).
//   - The session communicator: one proxy.Comm per machine, with
//     cluster-global frame sequencing, shared by every job's merge engine
//     (fresh Mergers are created per job via core.NewMergerOn; creating a
//     second Comm would desynchronize frame sequence numbers).
//
// Jobs are serialized: a semaphore admits one at a time, callers queue on
// it, and a caller whose context is cancelled while queued never runs.
// A running job observes cancellation cooperatively at phase boundaries —
// the verdict rides the phase-end collectives (core.Merger.PhaseSync), so
// every machine stops at the same point of the protocol, the barrier is
// never wedged, and the cluster stays serviceable for the next job.
// Per-phase freshness across jobs comes from a session-global phase
// counter: proxy assignments h_{j,ρ}, DRR ranks, and sketch seeds never
// repeat within a session.
package resident

import (
	"errors"
	"fmt"
	"time"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/sketch"
)

// Config parameterizes a resident engine. The zero value of everything
// except K is sensible.
type Config struct {
	// K is the number of machines.
	K int
	// BandwidthBits is the per-link budget; 0 selects kmachine.Bandwidth(n).
	BandwidthBits int
	// Seed drives the vertex partition and all private coins.
	Seed int64
	// MaxPhasesPerQuery caps Boruvka phases per job; 0 selects the
	// static default, 12·ceil(log2 n) + 4.
	MaxPhasesPerQuery int
	// Banks is the number of persistent sketch banks maintained; query
	// phase p draws from bank p mod Banks. 0 selects 2·ceil(log2 n) + 4.
	Banks int
	// Sketch overrides sketch parameters; zero selects
	// sketch.DefaultParams(n).
	Sketch sketch.Params
	// CollapseLevelWise, CoinMerge, and FaithfulRandomness select the same
	// ablations as the static core.Config.
	CollapseLevelWise  bool
	CoinMerge          bool
	FaithfulRandomness bool
	// MessageOverheadBits models per-message framing (0 = 64).
	MessageOverheadBits int
	// MaxRounds aborts runaway sessions (0 = 5,000,000 cumulative rounds).
	MaxRounds int
	// MaxElimIters caps MST elimination iterations per phase; 0 selects
	// 2·ceil(log2 n) + 8.
	MaxElimIters int
	// JobTimeout, when positive, is the default wall-clock deadline applied
	// to every job whose context carries no earlier deadline. It covers the
	// whole job — time queued on the admission semaphore included — and a
	// job that exceeds it returns context.DeadlineExceeded at the next
	// phase boundary, leaving the engine serviceable.
	JobTimeout time.Duration
	// Observer, when non-nil, receives per-phase progress events. It is
	// invoked from the engine's machine-0 goroutine (phase events) and the
	// submitting goroutine (job start/done events); it must be safe for
	// that and should return quickly — it runs between metered rounds.
	// A panicking Observer does not kill the engine: the panic is
	// recovered, counted in Metrics.ObserverPanics, and the job during
	// which it fired fails with ErrObserverPanic.
	Observer func(Event)
	// PhaseMetrics, when set (and Observer is non-nil), attaches a deep
	// cluster-wide kmachine.Metrics snapshot to every phase and job event
	// (Event.Snap). Each phase snapshot costs one coordinator round-trip
	// and a k×k link-matrix copy outside the metered rounds; it is off by
	// default so the plain observer path stays allocation-free.
	PhaseMetrics bool
}

const defaultSessionMaxRounds = 5_000_000

// coreConfig resolves the engine config into the shared core.Config.
func (c Config) coreConfig(n int) core.Config {
	cc := core.Config{
		K:                   c.K,
		BandwidthBits:       c.BandwidthBits,
		Seed:                c.Seed,
		MaxPhases:           c.MaxPhasesPerQuery,
		Sketch:              c.Sketch,
		CollapseLevelWise:   c.CollapseLevelWise,
		CoinMerge:           c.CoinMerge,
		FaithfulRandomness:  c.FaithfulRandomness,
		MessageOverheadBits: c.MessageOverheadBits,
		MaxRounds:           c.MaxRounds,
	}
	cc = cc.WithDefaults(n)
	if cc.MaxRounds == 0 {
		cc.MaxRounds = defaultSessionMaxRounds
	}
	return cc
}

func defaultBanks(n int) int {
	l := 0
	for s := 1; s < n; s <<= 1 {
		l++
	}
	return 2*l + 4
}

func validConfig(n int, cfg Config) error {
	if cfg.K < 1 {
		return fmt.Errorf("resident: %w: K = %d, need >= 1", ErrBadConfig, cfg.K)
	}
	if n < 1 {
		return fmt.Errorf("resident: %w: empty vertex set", ErrBadConfig)
	}
	if cfg.K > n {
		// More machines than vertices leaves machines with no home
		// vertices; the model (and the partition hash) requires k <= n.
		return fmt.Errorf("resident: %w: K = %d exceeds vertex count n = %d", ErrBadConfig, cfg.K, n)
	}
	if cfg.BandwidthBits < 0 {
		return fmt.Errorf("resident: %w: negative BandwidthBits %d", ErrBadConfig, cfg.BandwidthBits)
	}
	if cfg.JobTimeout < 0 {
		return fmt.Errorf("resident: %w: negative JobTimeout %v", ErrBadConfig, cfg.JobTimeout)
	}
	return nil
}

// ErrBadConfig tags configuration errors from New/NewFromSource so
// callers (the CLIs, the server's POST /graphs handler) can distinguish
// caller mistakes from engine failures.
var ErrBadConfig = errors.New("invalid configuration")

// Event is one progress notification delivered to Config.Observer.
type Event struct {
	// Job names the job family: "load", "batch", "connectivity", "mst",
	// "mincut", or "verify".
	Job string
	// Seq is the job's sequence number within the session (0 = load).
	Seq int
	// Phase is the merge-phase index within the job, or -1 for job
	// start/done events.
	Phase int
	// Round is the cluster-wide round counter as observed by machine 0 at
	// the time of the event (cumulative across the whole session).
	Round int
	// Active and Failures are the cluster-wide phase-end collectives'
	// values (phase events only).
	Active, Failures uint64
	// Done marks the job-completion event.
	Done bool
	// Err reports the job's outcome on a Done event ("" = success).
	Err string
	// Snap, when Config.PhaseMetrics is set, is a deep snapshot of the
	// cluster-wide cumulative engine metrics at the time of the event
	// (phase and job events). Nil otherwise. The snapshot is owned by the
	// observer; the engine never mutates it after delivery.
	Snap *kmachine.Metrics
	// Delta, on Done events, is the job's engine-cost delta (Rounds,
	// Messages, PayloadBytes — the same quantity end() meters). Nil on
	// other events.
	Delta *kmachine.Metrics
}

// BatchResult reports one applied update batch.
type BatchResult struct {
	// Ops is the number of operations submitted (including invalid ones).
	Ops int
	// Applied is the number of operations that mutated the graph.
	Applied int
	// RejectedInserts counts insertions of already-present edges.
	RejectedInserts int
	// RejectedDeletes counts deletions of absent edges.
	RejectedDeletes int
	// RejectedInvalid counts self-loops and out-of-range endpoints
	// (rejected at ingress, before any routing).
	RejectedInvalid int
	// Rounds is the number of engine rounds the batch cost (routing ops to
	// home machines and collecting accept/reject verdicts).
	Rounds int
	// Epoch is the graph's mutation epoch after this batch (exact: read
	// while the batch still held the job slot, so no other job
	// interleaved).
	Epoch uint64
}

// QueryResult reports one connectivity query.
type QueryResult struct {
	// Labels[v] is the component label of vertex v at query time; equal
	// labels mean same component (w.h.p.). Labels are member vertex IDs.
	Labels []uint64
	// Components is the number of connected components.
	Components int
	// Forest is a spanning forest of the queried snapshot, canonical form,
	// sorted by edge ID.
	Forest []graph.Edge
	// Phases is the number of Boruvka merge phases this query ran.
	Phases int
	// Rounds is the number of engine rounds this query cost.
	Rounds int
	// SketchFailures counts failed bank-sample recoveries this query.
	SketchFailures int64
	// CollapseIters counts tree-collapse iterations this query.
	CollapseIters int
	// RelabeledVertices is the size of the dirty region: how many vertices
	// the certificate step relabeled before the merge phases (0 for a
	// query on an unchanged or insert-merged-only graph).
	RelabeledVertices int
	// CertificateEdges is the size of the certificate (forest + net
	// insertions) machine 0 recomputed pieces from.
	CertificateEdges int
	// MergeEdges is the number of fresh forest edges discovered by this
	// query's merge phases (i.e. bank-sketch samples that won a merge).
	MergeEdges int
	// Epoch is the graph's mutation epoch this query answered (exact:
	// jobs serialize, so the epoch cannot change while a query runs).
	Epoch uint64
}

// SameComponent reports whether u and v were connected at query time.
func (r *QueryResult) SameComponent(u, v int) bool {
	if u < 0 || v < 0 || u >= len(r.Labels) || v >= len(r.Labels) {
		return false
	}
	return r.Labels[u] == r.Labels[v]
}

// Metrics is the engine's cumulative cost accounting, split so callers can
// verify the residency contract: the load phase is paid exactly once.
type Metrics struct {
	// Load is the engine cost of the one-time load/setup phase (shared
	// randomness distribution, bank seeding, residency handshake).
	Load kmachine.Metrics
	// Total is the cumulative engine cost so far (load included).
	Total kmachine.Metrics
	// LoadRounds is Load.Rounds (the "graph-load rounds paid once"
	// quantity the reuse tests assert on).
	LoadRounds int
	// Jobs counts completed jobs (batches and queries included).
	Jobs int
	// Batches and Queries count the dynamic-subsystem command types.
	Batches, Queries int
	// Edges is the current number of live edges (initial graph plus net
	// accepted insertions).
	Edges int
	// Epoch is the graph's mutation epoch: 0 at load, bumped by every
	// ApplyBatch that changed the edge set. Two reads of the same Epoch
	// bracket an unchanged graph, which is what makes query results
	// cacheable (the serving layer keys its result cache on it).
	Epoch uint64
	// QueuedJobs and RunningJobs snapshot the admission queue: jobs
	// waiting on the semaphore and the in-flight job count (0 or 1).
	QueuedJobs, RunningJobs int
	// ObserverPanics counts recovered panics out of Config.Observer.
	ObserverPanics uint64
}

// Problem identifies one of the Theorem 4 verification problems.
type Problem int

const (
	// SpanningConnectedSubgraph: does H span G and is it connected?
	SpanningConnectedSubgraph Problem = iota
	// CutVerification: does removing the edge set disconnect G further?
	CutVerification
	// STConnectivity: are S and T connected?
	STConnectivity
	// EdgeOnAllPaths: does E lie on every S-T path?
	EdgeOnAllPaths
	// STCutVerification: does removing the edge set separate S from T?
	STCutVerification
	// Bipartiteness: is G 2-colorable (via the double cover)?
	Bipartiteness
	// CycleContainment: does G contain any cycle?
	CycleContainment
	// ECycleContainment: does E lie on some cycle?
	ECycleContainment
)

// String returns the problem's short name.
func (p Problem) String() string {
	switch p {
	case SpanningConnectedSubgraph:
		return "scs"
	case CutVerification:
		return "cut"
	case STConnectivity:
		return "stconn"
	case EdgeOnAllPaths:
		return "allpaths"
	case STCutVerification:
		return "stcut"
	case Bipartiteness:
		return "bipartite"
	case CycleContainment:
		return "cycle"
	case ECycleContainment:
		return "ecycle"
	}
	return fmt.Sprintf("problem(%d)", int(p))
}

// VerifyArgs carries the per-problem arguments of Verify. Unused fields
// are ignored.
type VerifyArgs struct {
	// H is the subgraph edge set (SpanningConnectedSubgraph).
	H []graph.Edge
	// Cut is the candidate cut edge set (CutVerification,
	// STCutVerification).
	Cut []graph.Edge
	// S and T are the query vertices (STConnectivity, EdgeOnAllPaths,
	// STCutVerification).
	S, T int
	// E is the query edge (EdgeOnAllPaths, ECycleContainment).
	E graph.Edge
}

// ErrNotConverged is returned by a job whose merge phases exhausted
// MaxPhasesPerQuery with components still active (persistent sketch
// failures); the engine remains usable and the job may be retried.
var ErrNotConverged = errors.New("resident: job did not converge within MaxPhasesPerQuery")

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("resident: cluster closed")

// ErrObserverPanic is returned by a job during which the Config.Observer
// callback panicked. The engine recovers the panic (the cluster stays
// alive and serviceable) but fails the job so the caller knows its
// progress stream is incomplete. The job's effects stand: a batch that
// applied before its done-event hook panicked is still applied.
var ErrObserverPanic = errors.New("resident: observer callback panicked")
