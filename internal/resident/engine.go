package resident

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/hashing"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/mincut"
	"kmgraph/internal/verify"
)

// Engine is a resident k-machine cluster: the graph is loaded and
// partitioned once at New, then every algorithm family runs as a job
// against the residency. Jobs are serialized through an admission
// semaphore, so an Engine is safe for concurrent use; callers queue in
// submission order and a queued caller whose context is cancelled never
// runs.
type Engine struct {
	cfg    Config
	ccfg   core.Config
	n      int
	k      int
	banksN int

	kc      *kmachine.Cluster
	cmds    []chan hostCmd
	replyCh chan reply
	ackCh   chan int
	done    chan struct{}
	result  *kmachine.Result
	runErr  error

	// sem admits one job at a time; every field below the semaphore is
	// guarded by holding it (New initializes them before any job can run).
	sem          chan struct{}
	closed       bool
	lastMaxRound int
	jobSeq       int

	cancel atomic.Pointer[atomic.Bool] // current job's cancel flag

	// observerPanics counts recovered Observer panics for the session;
	// obsTripped marks that one fired during the current job (reset at
	// job begin, checked at job end — jobs serialize, so a trip always
	// belongs to the job that observes it).
	observerPanics atomic.Uint64
	obsTripped     atomic.Bool

	// epoch counts graph mutations (ApplyBatch calls that changed the
	// edge set); it is readable while a job is in flight.
	epoch atomic.Uint64
	// queued/running snapshot the admission queue; guarded by statMu so
	// a Queue()/Metrics() reader never sees one job counted twice (or
	// not at all) mid-transition.
	queued, running int

	// statMu guards the counters surfaced by Metrics, which must be
	// readable while a job is in flight.
	statMu       sync.Mutex
	loadMetrics  kmachine.Metrics
	lastSnapshot kmachine.Metrics
	jobs         int
	batches      int
	queries      int
	edges        int
}

// New loads g across a fresh cluster under a random vertex partition and
// blocks until every machine finishes the load phase (shared randomness,
// bank seeds, resident adjacency). The load is the only time the graph is
// distributed; its cost is recorded in Metrics().Load.
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	if err := validConfig(g.N(), cfg); err != nil {
		return nil, err
	}
	part := kmachine.NewRVP(g, cfg.K, uint64(cfg.Seed)^0x9e37)
	return newEngine(g.N(), g.M(), cfg, func(id int) *dynView {
		lv := part.View(id)
		return newDynView(g.N(), id, lv.Home, lv.Owned(), lv.Adj)
	})
}

// NewFromSource loads a streamed graph shard-direct: src is consumed by
// the kmachine shard loader (two streaming passes), each endpoint hashed
// to its owner machine and appended into that machine's adjacency shard,
// which the resident view then adopts without copying. No global
// graph.Graph is ever materialized — this is the out-of-core serving
// path — and the residency is bit-identical to New on the same graph
// and seed: same partition, same round counts, same Metrics.
func NewFromSource(src graph.EdgeSource, cfg Config) (*Engine, error) {
	n := src.N()
	if err := validConfig(n, cfg); err != nil {
		return nil, err
	}
	part, err := kmachine.LoadShards(src, cfg.K, uint64(cfg.Seed)^0x9e37)
	if err != nil {
		return nil, err
	}
	return newEngine(n, part.M(), cfg, func(id int) *dynView {
		return adoptDynView(n, id, part.Home, part.Owned(id), part.TakeAdj(id))
	})
}

// newEngine is the shared residency bring-up: the view maker is called
// once per machine, on that machine's goroutine, to produce its mutable
// graph knowledge. Callers own config validation (they must validate
// before touching their partition machinery, so newEngine does not
// repeat it).
func newEngine(n, edges int, cfg Config, makeView func(id int) *dynView) (*Engine, error) {
	ccfg := cfg.coreConfig(n)
	banksN := cfg.Banks
	if banksN <= 0 {
		banksN = defaultBanks(n)
	}
	kc, err := kmachine.New(kmachine.Config{
		K:                   ccfg.K,
		BandwidthBits:       ccfg.BandwidthBits,
		MessageOverheadBits: ccfg.MessageOverheadBits,
		Seed:                ccfg.Seed,
		MaxRounds:           ccfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:     cfg,
		ccfg:    ccfg,
		n:       n,
		k:       ccfg.K,
		banksN:  banksN,
		kc:      kc,
		cmds:    make([]chan hostCmd, ccfg.K),
		replyCh: make(chan reply, ccfg.K),
		ackCh:   make(chan int, ccfg.K),
		done:    make(chan struct{}),
		sem:     make(chan struct{}, 1),
		edges:   edges,
	}
	for i := range e.cmds {
		e.cmds[i] = make(chan hostCmd, 1)
	}
	go func() {
		res, err := kc.Run(func(ctx *kmachine.Ctx) error {
			view := makeView(ctx.ID())
			m := &rmachine{
				e:      e,
				ctx:    ctx,
				mg:     core.NewMerger(ctx, view, ccfg),
				view:   view,
				ccfg:   ccfg,
				banksN: banksN,
			}
			return m.loop()
		})
		e.result = res
		e.runErr = err
		close(e.done)
	}()

	rs, err := e.collect()
	if err != nil {
		return nil, err
	}
	for _, r := range rs {
		if r.rounds > e.lastMaxRound {
			e.lastMaxRound = r.rounds
		}
	}
	if met, ok := kc.Snapshot(); ok {
		e.loadMetrics = met
		e.lastSnapshot = met
	}
	loadEv := Event{Job: "load", Seq: 0, Phase: -1, Round: e.lastMaxRound, Done: true}
	if cfg.PhaseMetrics {
		snap := e.loadMetrics
		loadEv.Snap = &snap
		delta := kmachine.Metrics{Rounds: snap.Rounds, Messages: snap.Messages, PayloadBytes: snap.PayloadBytes}
		loadEv.Delta = &delta
	}
	e.notify(loadEv)
	return e, nil
}

// notify delivers an event to the user Observer. The callback runs on
// engine goroutines (machine 0 for phase events, the submitter for job
// events), so a panic out of it would otherwise take the whole cluster
// down; instead it is recovered here, counted, and latched so the
// current job fails with ErrObserverPanic.
func (e *Engine) notify(ev Event) {
	if e.cfg.Observer == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			e.observerPanics.Add(1)
			e.obsTripped.Store(true)
		}
	}()
	e.cfg.Observer(ev)
}

// jobCancelled reports whether the currently running job has been asked to
// stop; resident machines poll it through PhaseSync's collectives.
func (e *Engine) jobCancelled() bool {
	p := e.cancel.Load()
	return p != nil && p.Load()
}

func (e *Engine) err() error {
	if e.runErr != nil {
		return e.runErr
	}
	return errors.New("resident: cluster terminated unexpectedly")
}

// collect gathers one reply per machine, preferring buffered replies over
// the termination signal so late replies from a dying cluster still land.
func (e *Engine) collect() ([]reply, error) {
	rs := make([]reply, e.k)
	for got := 0; got < e.k; got++ {
		select {
		case r := <-e.replyCh:
			rs[r.id] = r
		default:
			select {
			case r := <-e.replyCh:
				rs[r.id] = r
			case <-e.done:
				return nil, e.err()
			}
		}
	}
	return rs, nil
}

// dispatch sends a command to every machine and completes the wake
// handshake: all machines unpark and ack before the gate opens and any of
// them steps.
func (e *Engine) dispatch(c hostCmd) error {
	c.wake = make(chan struct{})
	for i := 0; i < e.k; i++ {
		cc := c
		if i != 0 {
			cc.ops = nil
		}
		select {
		case e.cmds[i] <- cc:
		case <-e.done:
			return e.err()
		}
	}
	for i := 0; i < e.k; i++ {
		select {
		case <-e.ackCh:
		case <-e.done:
			return e.err()
		}
	}
	close(c.wake)
	return nil
}

// command broadcasts a command (control plane), waits for all replies, and
// returns them plus the cluster-round delta the command cost.
func (e *Engine) command(c hostCmd) ([]reply, int, error) {
	if err := e.dispatch(c); err != nil {
		return nil, 0, err
	}
	rs, err := e.collect()
	if err != nil {
		return nil, 0, err
	}
	maxR := e.lastMaxRound
	for _, r := range rs {
		if r.rounds > maxR {
			maxR = r.rounds
		}
	}
	delta := maxR - e.lastMaxRound
	e.lastMaxRound = maxR
	return rs, delta, nil
}

// jobToken is the admission record of one running job.
type jobToken struct {
	e         *Engine
	name      string
	seq       int
	ctx       context.Context
	cancelFn  context.CancelFunc // non-nil when begin applied Config.JobTimeout
	startR    int
	epoch     uint64 // graph epoch at admission (stable for read-only jobs)
	before    kmachine.Metrics
	stopWatch chan struct{}
}

// begin admits a job: it waits on the semaphore (honoring ctx while
// queued), installs the cancellation flag the machines poll, and records
// the metrics baseline for the job's cost delta.
func (e *Engine) begin(ctx context.Context, name string) (*jobToken, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cancelFn context.CancelFunc
	if d := e.cfg.JobTimeout; d > 0 {
		if _, has := ctx.Deadline(); !has {
			ctx, cancelFn = context.WithTimeout(ctx, d)
		}
	}
	e.statMu.Lock()
	e.queued++
	e.statMu.Unlock()
	admitted := false
	defer func() {
		if !admitted {
			e.statMu.Lock()
			e.queued--
			e.statMu.Unlock()
			if cancelFn != nil {
				cancelFn()
			}
		}
	}()
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.done:
		// The cluster is gone: closed cleanly (ErrClosed) or died.
		if e.closed {
			return nil, ErrClosed
		}
		return nil, e.err()
	}
	if e.closed {
		<-e.sem
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		<-e.sem
		return nil, err
	}
	admitted = true
	e.jobSeq++
	t := &jobToken{e: e, name: name, seq: e.jobSeq, ctx: ctx, cancelFn: cancelFn,
		startR: e.lastMaxRound, epoch: e.epoch.Load()}
	e.statMu.Lock()
	e.queued--
	e.running = 1
	t.before = e.lastSnapshot
	e.statMu.Unlock()
	if ctx.Done() != nil {
		// Only cancellable contexts need the watcher; Background-context
		// jobs (the common serving path) skip the goroutine entirely.
		flag := &atomic.Bool{}
		e.cancel.Store(flag)
		t.stopWatch = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				flag.Store(true)
			case <-t.stopWatch:
			}
		}()
	}
	e.obsTripped.Store(false)
	startEv := Event{Job: name, Seq: t.seq, Phase: -1, Round: t.startR}
	if e.cfg.PhaseMetrics {
		snap := t.before
		startEv.Snap = &snap
	}
	e.notify(startEv)
	return t, nil
}

// end releases the job: stops the watcher, refreshes the cumulative
// snapshot, bumps counters, emits the done event, and frees the semaphore.
// It returns the job's engine-cost delta.
func (t *jobToken) end(jobErr error) kmachine.Metrics {
	e := t.e
	if t.stopWatch != nil {
		close(t.stopWatch)
		e.cancel.Store(nil)
	}
	if t.cancelFn != nil {
		t.cancelFn()
	}
	after, ok := e.kc.Snapshot()
	e.statMu.Lock()
	if !ok {
		after = e.lastSnapshot
	}
	e.lastSnapshot = after
	delta := kmachine.Metrics{
		Rounds:       after.Rounds - t.before.Rounds,
		Messages:     after.Messages - t.before.Messages,
		PayloadBytes: after.PayloadBytes - t.before.PayloadBytes,
	}
	e.jobs++
	e.statMu.Unlock()
	errStr := ""
	if jobErr != nil {
		errStr = jobErr.Error()
	}
	doneEv := Event{Job: t.name, Seq: t.seq, Phase: -1, Round: e.lastMaxRound, Done: true, Err: errStr}
	if e.cfg.Observer != nil {
		// The delta is already computed; handing the observer its own
		// copy costs one small allocation per job end, never per round.
		d := delta
		doneEv.Delta = &d
		if e.cfg.PhaseMetrics {
			snap := after
			doneEv.Snap = &snap
		}
	}
	e.notify(doneEv)
	e.statMu.Lock()
	e.running = 0
	e.statMu.Unlock()
	<-e.sem
	return delta
}

// endOK completes a job that succeeded on its own terms, unless the
// Observer panicked somewhere during it — then the job fails with
// ErrObserverPanic instead (the caller's progress stream is incomplete
// and must not be trusted silently). Returns the job's cost delta and
// the final job error.
func (t *jobToken) endOK() (kmachine.Metrics, error) {
	var jobErr error
	if t.e.obsTripped.Load() {
		jobErr = ErrObserverPanic
	}
	return t.end(jobErr), jobErr
}

// cancelErr maps a machine-reported cancellation to the caller's context
// error.
func (t *jobToken) cancelErr() error {
	if err := t.ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// ApplyBatch applies a batch of edge operations in order. Self-loops and
// out-of-range endpoints are rejected at ingress; duplicate insertions and
// deletions of absent edges are rejected by the endpoint home machines
// (and counted), leaving the graph, sketches, and certificate untouched.
func (e *Engine) ApplyBatch(ctx context.Context, ops []graph.EdgeOp) (*BatchResult, error) {
	t, err := e.begin(ctx, "batch")
	if err != nil {
		return nil, err
	}
	clean := make([]graph.EdgeOp, 0, len(ops))
	invalid := 0
	for _, op := range ops {
		op = op.Canon()
		if op.U == op.V || op.U < 0 || op.V >= e.n {
			invalid++
			continue
		}
		clean = append(clean, op)
	}
	rs, rounds, err := e.command(hostCmd{kind: cmdApply, ops: clean, seq: t.seq, name: t.name})
	if err != nil {
		t.end(err)
		return nil, err
	}
	r0 := rs[0]
	e.statMu.Lock()
	e.batches++
	e.edges += r0.appliedIns - r0.appliedDel
	e.statMu.Unlock()
	if r0.applied > 0 {
		// The edge set changed: cached answers for the previous epoch are
		// stale. A fully-rejected batch leaves the epoch (and caches) alive.
		e.epoch.Add(1)
	}
	epochAfter := e.epoch.Load() // exact: read while still holding the job slot
	res := &BatchResult{
		Ops:             len(ops),
		Applied:         r0.applied,
		RejectedInserts: r0.rejIns,
		RejectedDeletes: r0.rejDel,
		RejectedInvalid: invalid,
		Rounds:          rounds,
		Epoch:           epochAfter,
	}
	if _, oerr := t.endOK(); oerr != nil {
		// The batch is applied (the result is real); the error reports
		// the broken observer hook, not a rejected mutation.
		return res, oerr
	}
	return res, nil
}

// Query answers connectivity on the current graph: component labels, the
// component count, and a spanning forest, plus this query's incremental
// cost accounting. A cancelled query returns ctx.Err(); the engine stays
// consistent and serviceable.
func (e *Engine) Query(ctx context.Context) (*QueryResult, error) {
	t, err := e.begin(ctx, "connectivity")
	if err != nil {
		return nil, err
	}
	rs, rounds, err := e.command(hostCmd{kind: cmdQuery, seq: t.seq, name: t.name})
	if err != nil {
		t.end(err)
		return nil, err
	}
	e.statMu.Lock()
	e.queries++
	e.statMu.Unlock()
	if rs[0].cancelled {
		err := t.cancelErr()
		t.end(err)
		return nil, err
	}
	res := &QueryResult{Labels: make([]uint64, e.n), Rounds: rounds, Epoch: t.epoch}
	converged := true
	for _, r := range rs {
		for v, l := range r.labels {
			res.Labels[v] = l
		}
		if r.phases > res.Phases {
			res.Phases = r.phases
		}
		if r.collapseIters > res.CollapseIters {
			res.CollapseIters = r.collapseIters
		}
		res.SketchFailures += r.failures
		converged = converged && r.converged
	}
	r0 := rs[0]
	res.Components = r0.components
	res.Forest = r0.forest
	res.RelabeledVertices = r0.relabeled
	res.CertificateEdges = r0.certEdges
	res.MergeEdges = r0.mergeEdges
	if !converged {
		t.end(ErrNotConverged)
		return res, ErrNotConverged
	}
	if _, oerr := t.endOK(); oerr != nil {
		return res, oerr
	}
	return res, nil
}

// MST constructs the minimum spanning forest of the current graph
// (Theorem 2) as a job against the residency: fresh singleton labels, the
// same MWOE machinery as the one-shot algorithm, no graph re-load. With
// strong set, every MST edge is also delivered to both endpoints' home
// machines (Theorem 2(b)).
func (e *Engine) MST(ctx context.Context, strong bool) (*core.MSTResult, error) {
	t, err := e.begin(ctx, "mst")
	if err != nil {
		return nil, err
	}
	startR := e.lastMaxRound
	rs, _, err := e.command(hostCmd{kind: cmdMST, mst: &mstSpec{strong: strong}, seq: t.seq, name: t.name})
	if err != nil {
		t.end(err)
		return nil, err
	}
	if rs[0].cancelled {
		err := t.cancelErr()
		t.end(err)
		return nil, err
	}
	out := &core.MSTResult{Labels: make([]uint64, e.n)}
	byID := make(map[uint64]graph.Edge)
	weakMax := 0
	for _, r := range rs {
		for v, l := range r.labels {
			out.Labels[v] = l
		}
		for _, ed := range r.mstEdges {
			byID[graph.EdgeID(ed.U, ed.V, e.n)] = ed
		}
		out.SketchFailures += r.failures
		if r.phases > out.Phases {
			out.Phases = r.phases
		}
		if r.elimIters > out.ElimIters {
			out.ElimIters = r.elimIters
		}
		if r.weakRounds > weakMax {
			weakMax = r.weakRounds
		}
		if r.vertexEdges != nil {
			if out.VertexEdges == nil {
				out.VertexEdges = make(map[int][]graph.Edge)
			}
			for v, es := range r.vertexEdges {
				out.VertexEdges[v] = es
			}
		}
	}
	for _, id := range core.SortedKeys(byID) {
		ed := byID[id]
		out.Edges = append(out.Edges, ed)
		out.TotalWeight += ed.W
	}
	out.WeakRounds = weakMax - startR
	var oerr error
	out.Metrics, oerr = t.endOK()
	if oerr != nil {
		return out, oerr
	}
	return out, nil
}

// runOutcome is the host-side result of one derived-view connectivity run.
type runOutcome struct {
	components   int
	labels       []uint64
	probePresent bool
	rounds       int
}

// runDerived executes one derived-view connectivity run under an admitted
// job and assembles the outcome.
func (e *Engine) runDerived(t *jobToken, spec *runSpec) (*runOutcome, error) {
	if err := t.ctx.Err(); err != nil {
		return nil, err
	}
	rs, rounds, err := e.command(hostCmd{kind: cmdRun, spec: spec, seq: t.seq, name: t.name})
	if err != nil {
		return nil, err
	}
	if rs[0].cancelled {
		return nil, t.cancelErr()
	}
	nView := e.n
	if spec.kind == viewCover {
		nView = 2 * e.n
	}
	out := &runOutcome{labels: make([]uint64, nView), rounds: rounds}
	converged := true
	for _, r := range rs {
		for v, l := range r.labels {
			out.labels[v] = l
		}
		out.probePresent = out.probePresent || r.probePresent
		converged = converged && r.converged
	}
	if !converged {
		return nil, ErrNotConverged
	}
	seen := make(map[uint64]bool)
	for _, l := range out.labels {
		seen[l] = true
	}
	out.components = len(seen)
	return out, nil
}

// MinCut estimates the edge connectivity of the current graph within an
// O(log n) factor (Theorem 3) by Karger-style sampling trials, each a
// derived-view connectivity run on the residency. trials and maxLevel
// follow mincut.Config semantics (0 selects 3 and 40).
func (e *Engine) MinCut(ctx context.Context, trials, maxLevel int) (*mincut.Result, error) {
	if trials == 0 {
		trials = 3
	}
	if maxLevel == 0 {
		maxLevel = 40
	}
	t, err := e.begin(ctx, "mincut")
	if err != nil {
		return nil, err
	}
	res := &mincut.Result{}
	fail := func(err error) (*mincut.Result, error) {
		t.end(err)
		return nil, err
	}
	runConn := func(spec *runSpec) (int, error) {
		out, err := e.runDerived(t, spec)
		if err != nil {
			return 0, err
		}
		res.Runs++
		res.Rounds += out.rounds
		return out.components, nil
	}

	// Level 0 (p = 1) is the live graph itself.
	base, err := runConn(newRunSpec(viewFull))
	if err != nil {
		return fail(err)
	}
	if base > 1 && e.n > 0 {
		res.Level = -1
		res.Estimate = 0
		var oerr error
		res.Metrics, oerr = t.endOK()
		return res, oerr
	}

	sampleSeed := hashing.Hash2(uint64(e.ccfg.Seed), 0x3c17)
	logn := math.Log(float64(e.n) + 2)
	for level := 1; level <= maxLevel; level++ {
		threshold := uint64(1) << uint(64-level)
		disconnected := 0
		for trial := 0; trial < trials; trial++ {
			tseed := hashing.Hash3(sampleSeed, uint64(level), uint64(trial))
			cc, err := runConn(specSample(tseed, threshold))
			if err != nil {
				return fail(err)
			}
			if cc > base {
				disconnected++
			}
		}
		if 2*disconnected >= trials {
			// Majority of samples at rate 2^-level disconnected:
			// λ ≈ 2^level · ln n up to an O(log n) factor.
			res.Level = level
			res.Estimate = math.Exp2(float64(level-1)) * logn / 2
			if res.Estimate < 1 {
				res.Estimate = 1
			}
			var oerr error
			res.Metrics, oerr = t.endOK()
			return res, oerr
		}
	}
	// Never disconnected: λ exceeds every tested rate's threshold.
	res.Level = maxLevel + 1
	res.Estimate = math.Exp2(float64(maxLevel)) * logn / 2
	var oerr error
	res.Metrics, oerr = t.endOK()
	return res, oerr
}

// edgeIDSet canonicalizes an edge list into an EdgeID set over n vertices.
func edgeIDSet(edges []graph.Edge, n int) map[uint64]bool {
	set := make(map[uint64]bool, len(edges))
	for _, ed := range edges {
		ed = ed.Canon()
		set[graph.EdgeID(ed.U, ed.V, n)] = true
	}
	return set
}

// Verify runs one of the Theorem 4 verification problems against the
// current graph, each a reduction to one or two derived-view connectivity
// runs on the residency.
func (e *Engine) Verify(ctx context.Context, p Problem, args VerifyArgs) (*verify.Outcome, error) {
	t, err := e.begin(ctx, "verify")
	if err != nil {
		return nil, err
	}
	out := &verify.Outcome{}
	fail := func(err error) (*verify.Outcome, error) {
		t.end(err)
		return nil, err
	}
	run := func(spec *runSpec) (*runOutcome, error) {
		ro, err := e.runDerived(t, spec)
		if err != nil {
			return nil, err
		}
		out.Runs++
		out.Rounds += ro.rounds
		return ro, nil
	}
	stOK := func(s, t int) bool { return s >= 0 && t >= 0 && s < e.n && t < e.n }

	switch p {
	case SpanningConnectedSubgraph:
		ro, err := run(specEdges(viewKeep, edgeIDSet(args.H, e.n)))
		if err != nil {
			return fail(err)
		}
		out.Holds = ro.components == 1 || e.n <= 1

	case CutVerification:
		before, err := run(newRunSpec(viewFull))
		if err != nil {
			return fail(err)
		}
		after, err := run(specEdges(viewRemove, edgeIDSet(args.Cut, e.n)))
		if err != nil {
			return fail(err)
		}
		out.Holds = after.components > before.components

	case STConnectivity:
		if !stOK(args.S, args.T) {
			return fail(errors.New("resident: s/t out of range"))
		}
		ro, err := run(newRunSpec(viewFull))
		if err != nil {
			return fail(err)
		}
		out.Holds = ro.labels[args.S] == ro.labels[args.T]

	case EdgeOnAllPaths:
		if !stOK(args.S, args.T) {
			return fail(errors.New("resident: s/t out of range"))
		}
		ro, err := run(specEdges(viewRemove, edgeIDSet([]graph.Edge{args.E}, e.n)))
		if err != nil {
			return fail(err)
		}
		out.Holds = ro.labels[args.S] != ro.labels[args.T]

	case STCutVerification:
		if !stOK(args.S, args.T) {
			return fail(errors.New("resident: s/t out of range"))
		}
		ro, err := run(specEdges(viewRemove, edgeIDSet(args.Cut, e.n)))
		if err != nil {
			return fail(err)
		}
		out.Holds = ro.labels[args.S] != ro.labels[args.T]

	case Bipartiteness:
		g, err := run(newRunSpec(viewFull))
		if err != nil {
			return fail(err)
		}
		d, err := run(newRunSpec(viewCover))
		if err != nil {
			return fail(err)
		}
		out.Holds = d.components == 2*g.components

	case CycleContainment:
		ro, err := run(newRunSpec(viewFull))
		if err != nil {
			return fail(err)
		}
		e.statMu.Lock()
		m := e.edges
		e.statMu.Unlock()
		out.Holds = m > e.n-ro.components

	case ECycleContainment:
		ed := args.E.Canon()
		if ed.U < 0 || ed.V >= e.n || ed.U == ed.V {
			return fail(errors.New("resident: edge out of range"))
		}
		spec := specEdges(viewRemove, edgeIDSet([]graph.Edge{ed}, e.n))
		spec.probeU, spec.probeV = ed.U, ed.V
		ro, err := run(spec)
		if err != nil {
			return fail(err)
		}
		if !ro.probePresent {
			return fail(errors.New("resident: edge not in graph"))
		}
		out.Holds = ro.labels[ed.U] == ro.labels[ed.V]

	default:
		return fail(errors.New("resident: unknown verification problem"))
	}
	var oerr error
	out.Metrics, oerr = t.endOK()
	if oerr != nil {
		return out, oerr
	}
	return out, nil
}

// Metrics reports the engine's cumulative cost accounting. It is safe to
// call concurrently with running jobs; Total reflects the state at the
// last completed job (plus the load).
func (e *Engine) Metrics() Metrics {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	return Metrics{
		Load:           e.loadMetrics,
		Total:          e.lastSnapshot,
		LoadRounds:     e.loadMetrics.Rounds,
		Jobs:           e.jobs,
		Batches:        e.batches,
		Queries:        e.queries,
		Edges:          e.edges,
		Epoch:          e.epoch.Load(),
		QueuedJobs:     e.queued,
		RunningJobs:    e.running,
		ObserverPanics: e.observerPanics.Load(),
	}
}

// Epoch returns the graph's mutation epoch: 0 at load, bumped by every
// ApplyBatch that changed the edge set. Safe to call concurrently with
// running jobs; a result computed and tagged with epoch x is valid for
// as long as Epoch() still returns x.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// Queue snapshots the admission queue: jobs waiting on the semaphore and
// the in-flight job count (0 or 1). Safe to call concurrently with
// running jobs — the snapshot is consistent (one job is never counted
// as both queued and running); the serving layer uses it for
// backpressure decisions and introspection.
func (e *Engine) Queue() (queued, running int) {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	return e.queued, e.running
}

// N returns the (fixed) vertex count.
func (e *Engine) N() int { return e.n }

// K returns the machine count.
func (e *Engine) K() int { return e.k }

// Rounds returns the cumulative engine rounds consumed so far (load
// included). It reflects the last completed command.
func (e *Engine) Rounds() int {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	return e.lastSnapshot.Rounds
}

// Batches returns the number of batches applied so far.
func (e *Engine) Batches() int {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	return e.batches
}

// Queries returns the number of connectivity queries answered so far.
func (e *Engine) Queries() int {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	return e.queries
}

// Close shuts the cluster down and returns the session-wide engine
// metrics. Further jobs return ErrClosed; Close is idempotent and waits
// for the in-flight job, if any, to finish.
func (e *Engine) Close() (*kmachine.Metrics, error) {
	select {
	case e.sem <- struct{}{}:
		if !e.closed {
			e.closed = true
			e.dispatch(hostCmd{kind: cmdClose})
		}
		<-e.sem
	case <-e.done:
	}
	<-e.done
	if e.result != nil {
		return &e.result.Metrics, e.runErr
	}
	return nil, e.runErr
}
