// Derived views: the per-job graph transformations that let one resident
// cluster serve min-cut sampling trials and the verification reductions
// without touching the loaded adjacency. Every transformation is local
// knowledge in the model — an edge's membership is decidable at both
// endpoints' home machines from the spec alone (an edge-ID set shipped on
// the free control plane, a shared hash, or the double-cover construction)
// — so deriving a view costs zero rounds, exactly like the one-shot
// algorithms' pre-filtered inputs.

package resident

import (
	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/hashing"
)

// View kinds of a derived run.
const (
	viewFull   = iota // the live resident graph as-is
	viewKeep          // keep only edges in the spec's edge-ID set
	viewRemove        // remove the edges in the spec's edge-ID set
	viewSample        // keep edges whose shared hash clears a threshold
	viewCover         // the bipartite double cover of the live graph
)

// runSpec describes one derived-view connectivity run. It travels on the
// control plane (command broadcast): like the one-shot verify package,
// subgraph membership is local knowledge — every machine knows which of
// its vertices' incident edges are in H.
type runSpec struct {
	kind             int
	edges            map[uint64]bool // viewKeep / viewRemove, by EdgeID over n
	tseed, threshold uint64          // viewSample
	probeU, probeV   int             // live-graph presence probe; -1 = none
}

// newRunSpec returns a spec of the given view kind with no presence
// probe (probe endpoints are -1; a probe is requested by setting both).
func newRunSpec(kind int) *runSpec {
	return &runSpec{kind: kind, probeU: -1, probeV: -1}
}

// specEdges returns a keep/remove spec over an edge-ID set.
func specEdges(kind int, edges map[uint64]bool) *runSpec {
	s := newRunSpec(kind)
	s.edges = edges
	return s
}

// specSample returns a shared-hash sampling spec (min-cut trials).
func specSample(tseed, threshold uint64) *runSpec {
	s := newRunSpec(viewSample)
	s.tseed, s.threshold = tseed, threshold
	return s
}

// staticView is a materialized immutable snapshot of a derived graph,
// implementing core.GraphView for the duration of one job.
type staticView struct {
	n     int
	owned []int
	home  func(v int) int
	adj   map[int][]graph.Half
}

func (v *staticView) N() int                 { return v.n }
func (v *staticView) Owned() []int           { return v.owned }
func (v *staticView) Home(x int) int         { return v.home(x) }
func (v *staticView) Adj(u int) []graph.Half { return v.adj[u] }

// keepEdge reports whether the (canonical) edge {u,v} of the live n-vertex
// graph survives the spec's filter.
func (s *runSpec) keepEdge(u, v, n int) bool {
	switch s.kind {
	case viewKeep:
		return s.edges[graph.EdgeID(u, v, n)]
	case viewRemove:
		return !s.edges[graph.EdgeID(u, v, n)]
	case viewSample:
		return hashing.Hash2(s.tseed, graph.EdgeID(u, v, n)) < s.threshold
	}
	return true
}

// derive materializes the spec's view over the machine's live adjacency.
// Local computation is free in the model; only the merge phases that run
// over the view are metered.
func (m *rmachine) derive(spec *runSpec) core.GraphView {
	live := m.view
	if spec.kind == viewFull {
		return live
	}
	if spec.kind == viewCover {
		// Bipartite double cover: vertices v and v+n, each base edge {u,v}
		// lifts to {u, v+n} and {u+n, v}. Keeping both copies of a vertex
		// on its base home machine preserves the RVP locality argument.
		n := live.N()
		owned := make([]int, 0, 2*len(live.owned))
		adj := make(map[int][]graph.Half, 2*len(live.owned))
		for _, v := range live.owned {
			owned = append(owned, v)
			base := live.Adj(v)
			up := make([]graph.Half, len(base))
			down := make([]graph.Half, len(base))
			for i, h := range base {
				up[i] = graph.Half{To: h.To + n, W: h.W}
				down[i] = graph.Half{To: h.To, W: h.W}
			}
			adj[v] = up
			adj[v+n] = down
		}
		for _, v := range live.owned {
			owned = append(owned, v+n)
		}
		return &staticView{
			n:     2 * n,
			owned: owned,
			home:  func(x int) int { return live.Home(x % n) },
			adj:   adj,
		}
	}
	n := live.N()
	adj := make(map[int][]graph.Half, len(live.owned))
	for _, v := range live.owned {
		var kept []graph.Half
		for _, h := range live.Adj(v) {
			if spec.keepEdge(v, h.To, n) {
				kept = append(kept, h)
			}
		}
		adj[v] = kept
	}
	return &staticView{n: n, owned: live.owned, home: live.Home, adj: adj}
}

// runConfig resolves the core config a derived run uses: the double cover
// doubles the vertex universe, so sketch dimensions and the phase cap
// scale exactly as a one-shot run on the cover graph would size them.
func (m *rmachine) runConfig(spec *runSpec) core.Config {
	cfg := m.ccfg
	if spec.kind == viewCover {
		cfg.Sketch.N = 2 * m.view.N()
		cfg.Sketch.Levels += 2
		cfg.MaxPhases += 12
	}
	return cfg
}
