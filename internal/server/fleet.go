package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kmgraph/internal/core"
	"kmgraph/internal/dist"
	"kmgraph/internal/telemetry"
	"kmgraph/internal/transport"
)

// This file is the server's distributed-fleet layer: graphs backed not
// by a resident in-process cluster but by a kmworker fleet, served with
// graceful degradation. A health prober keeps a per-fleet state gauge
// (kmserve_graph_state: 2 healthy, 1 degraded, 0 down); requests
// against a down fleet are shed immediately with 503 + Retry-After
// instead of timing out, degraded fleets are attempted under the
// coordinator's retry-with-respawn policy, and every recovery attempt
// is visible on GET /metrics (kmgraph_dist_retries_total,
// kmgraph_dist_heartbeats_missed_total, kmgraph_dist_recovery_seconds —
// the dist layer's telemetry lands in this server's registry).

// Fleet states, in ascending health.
const (
	fleetDown     = 0 // no worker reachable
	fleetDegraded = 1 // some, but not all, workers reachable
	fleetHealthy  = 2 // full fleet reachable
)

func fleetStateName(s int64) string {
	switch s {
	case fleetHealthy:
		return "healthy"
	case fleetDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// FleetSpec describes one distributed-backed graph: the job source
// every worker rematerializes its shard from, the worker fleet, and the
// coordinator tuning used for jobs against it.
type FleetSpec struct {
	// Source is the dist source spec (store:<path>, gnm:<n>:<m>:<seed>,
	// rmat:<n>:<m>:<seed>). Store paths must be readable by the workers.
	Source string
	// Addrs are the kmworker addresses. Jobs need the whole fleet.
	Addrs []string
	// Conn is the base algorithm configuration (K must be >=
	// len(Addrs); zero-valued tuning fields resolve worker-side).
	Conn core.Config
	// Coord tunes heartbeat deadlines and retry recovery for jobs run
	// against this fleet. The zero value uses coordinator defaults
	// (30s heartbeat deadline, no retries).
	Coord dist.CoordOptions
	// ProbeInterval separates fleet health probes (default 5s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one worker dial during a probe (default 2s).
	ProbeTimeout time.Duration
}

func (sp FleetSpec) withDefaults() FleetSpec {
	if sp.ProbeInterval <= 0 {
		sp.ProbeInterval = 5 * time.Second
	}
	if sp.ProbeTimeout <= 0 {
		sp.ProbeTimeout = 2 * time.Second
	}
	return sp
}

// fleet is one registered distributed-backed graph.
type fleet struct {
	name  string
	spec  FleetSpec
	slots chan struct{}
	cache *resultCache
	shed  atomic.Int64

	state atomic.Int64 // fleetDown / fleetDegraded / fleetHealthy

	// trace accumulates the phase spans workers stream back during
	// fleet jobs; GET /fleet/{name}/trace serves the most recent job's
	// assembled multi-pid Chrome trace. jobRounds holds each worker's
	// live heartbeat round count during (and after) the most recent job,
	// surfaced as kmserve_fleet_job_rounds gauges.
	trace     *dist.JobTrace
	jobRounds []atomic.Uint64

	mu sync.Mutex
	up []bool // per-address reachability from the last probe

	stop      chan struct{}
	probeDone chan struct{}
}

// coordOptions returns the spec's coordinator tuning with this fleet's
// trace collector and progress gauges wired in.
func (f *fleet) coordOptions() dist.CoordOptions {
	opts := f.spec.Coord
	opts.Trace = f.trace
	opts.Progress = func(worker int, rounds uint64) {
		if worker >= 0 && worker < len(f.jobRounds) {
			f.jobRounds[worker].Store(rounds)
		}
	}
	return opts
}

// RegisterFleet adds a distributed-backed graph under name. The health
// prober starts immediately; Close stops it.
func (s *Server) RegisterFleet(name string, spec FleetSpec) error {
	if name == "" {
		return errors.New("server: empty fleet name")
	}
	spec = spec.withDefaults()
	if len(spec.Addrs) == 0 {
		return fmt.Errorf("server: fleet %q has no workers", name)
	}
	if spec.Conn.K < len(spec.Addrs) {
		return fmt.Errorf("server: fleet %q has k=%d for %d workers (need k >= workers)",
			name, spec.Conn.K, len(spec.Addrs))
	}
	f := &fleet{
		name:      name,
		spec:      spec,
		slots:     make(chan struct{}, s.cfg.MaxQueue),
		cache:     newResultCache(s.cfg.CacheEntries),
		trace:     &dist.JobTrace{},
		jobRounds: make([]atomic.Uint64, len(spec.Addrs)),
		up:        make([]bool, len(spec.Addrs)),
		stop:      make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	s.mu.Lock()
	if s.fleets == nil {
		s.fleets = make(map[string]*fleet)
	}
	if _, dup := s.fleets[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("server: fleet %q already registered", name)
	}
	s.fleets[name] = f
	s.mu.Unlock()

	g := telemetry.Label{Name: "graph", Value: name}
	s.registry.GaugeFunc("kmserve_graph_state",
		"Fleet-backed graph health: 2 healthy, 1 degraded, 0 down.",
		func() float64 { return float64(f.state.Load()) }, g)
	s.registry.GaugeFunc("kmserve_fleet_workers_up",
		"Workers reachable at the last fleet health probe.",
		func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			n := 0
			for _, ok := range f.up {
				if ok {
					n++
				}
			}
			return float64(n)
		}, g)
	s.registry.CounterFunc("kmserve_shed_total",
		"Requests refused with 429 by the graph's admission queue.",
		func() float64 { return float64(f.shed.Load()) }, g)
	// One gauge per worker: the live engine round count its heartbeats
	// reported during the most recent fleet job (previously these counts
	// were decoded and discarded).
	for i := range spec.Addrs {
		w := i
		s.registry.GaugeFunc("kmserve_fleet_job_rounds",
			"Engine round count last reported by each worker's heartbeats during a fleet job.",
			func() float64 { return float64(f.jobRounds[w].Load()) },
			g, telemetry.Label{Name: "worker", Value: strconv.Itoa(w)})
	}

	f.probeOnce()
	go f.probeLoop()
	return nil
}

// closeFleets stops every fleet prober (called from Server.Close).
func (s *Server) closeFleets() {
	s.mu.Lock()
	fs := make([]*fleet, 0, len(s.fleets))
	for _, f := range s.fleets {
		fs = append(fs, f) //kmvet:ignore shutdown fan-out; prober close order immaterial
	}
	s.fleets = nil
	s.mu.Unlock()
	for _, f := range fs {
		close(f.stop)
		<-f.probeDone
		s.registry.DropLabeled("graph", f.name)
	}
}

// probeOnce dials every worker once and folds the result into the
// state gauge.
func (f *fleet) probeOnce() {
	up := make([]bool, len(f.spec.Addrs))
	n := 0
	for i, a := range f.spec.Addrs {
		c, err := net.DialTimeout("tcp", a, f.spec.ProbeTimeout)
		if err == nil {
			c.Close()
			up[i] = true
			n++
		}
	}
	f.mu.Lock()
	f.up = up
	f.mu.Unlock()
	switch {
	case n == len(up):
		f.state.Store(fleetHealthy)
	case n > 0:
		f.state.Store(fleetDegraded)
	default:
		f.state.Store(fleetDown)
	}
}

func (f *fleet) probeLoop() {
	defer close(f.probeDone)
	tick := time.NewTicker(f.spec.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
			f.probeOnce()
		}
	}
}

// retryAfter is the Retry-After hint on shed requests: the next probe
// may flip the fleet back to healthy.
func (f *fleet) retryAfter() string {
	return strconv.Itoa(int(f.spec.ProbeInterval/time.Second) + 1)
}

// gate sheds requests against a known-down fleet with 503 +
// Retry-After. Degraded fleets pass: the job runs under the retry
// policy, which may respawn/re-dial its way to a full mesh.
func (f *fleet) gate(w http.ResponseWriter) bool {
	if f.state.Load() == fleetDown {
		w.Header().Set("Retry-After", f.retryAfter())
		writeError(w, http.StatusServiceUnavailable,
			"fleet %q unavailable (0/%d workers reachable)", f.name, len(f.spec.Addrs))
		return false
	}
	return true
}

// admit claims an admission slot, or writes 429 + Retry-After.
func (f *fleet) admit(w http.ResponseWriter) bool {
	select {
	case f.slots <- struct{}{}:
		return true
	default:
		f.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "fleet %q admission queue full", f.name)
		return false
	}
}

func (f *fleet) release() { <-f.slots }

// jobError maps a fleet job failure: a link-down (worker lost, retries
// exhausted) is a degraded-service 503 with Retry-After — the fleet may
// come back — anything else follows the standard job mapping. A
// link-down also triggers an immediate re-probe so the state gauge
// reflects the loss before the next scheduled probe.
func (f *fleet) jobError(w http.ResponseWriter, err error) {
	if errors.Is(err, transport.ErrLinkDown) {
		go f.probeOnce()
		w.Header().Set("Retry-After", f.retryAfter())
		writeError(w, http.StatusServiceUnavailable, "fleet %q degraded: %v", f.name, err)
		return
	}
	jobError(w, err)
}

// fleet resolves {name}; a miss writes 404 and returns nil.
func (s *Server) fleet(w http.ResponseWriter, r *http.Request) *fleet {
	name := r.PathValue("name")
	s.mu.RLock()
	f := s.fleets[name]
	s.mu.RUnlock()
	if f == nil {
		writeError(w, http.StatusNotFound, "unknown fleet %q", name)
	}
	return f
}

// fleetRoutes registers the fleet endpoints (called from routes).
func (s *Server) fleetRoutes() {
	s.handle("GET /fleet", "fleet_list", s.handleFleetList)
	s.handle("GET /fleet/{name}", "fleet_info", s.handleFleetInfo)
	s.handle("GET /fleet/{name}/trace", "fleet_trace", s.handleFleetTrace)
	for _, m := range []string{"GET", "POST"} {
		s.handle(m+" /fleet/{name}/connectivity", "fleet_connectivity", s.handleFleetConnectivity)
		s.handle(m+" /fleet/{name}/mst", "fleet_mst", s.handleFleetMST)
	}
}

// fleetWorker is one worker's registry entry.
type fleetWorker struct {
	Addr string `json:"addr"`
	Up   bool   `json:"up"`
}

// fleetInfo is one fleet's registry entry.
type fleetInfo struct {
	Name    string        `json:"name"`
	Source  string        `json:"source"`
	K       int           `json:"k"`
	State   string        `json:"state"`
	Workers []fleetWorker `json:"workers"`
}

func (f *fleet) info() fleetInfo {
	f.mu.Lock()
	up := append([]bool(nil), f.up...)
	f.mu.Unlock()
	ws := make([]fleetWorker, len(f.spec.Addrs))
	for i, a := range f.spec.Addrs {
		ws[i] = fleetWorker{Addr: a, Up: up[i]}
	}
	return fleetInfo{
		Name:    f.name,
		Source:  f.spec.Source,
		K:       f.spec.Conn.K,
		State:   fleetStateName(f.state.Load()),
		Workers: ws,
	}
}

func (s *Server) handleFleetList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]fleetInfo, 0, len(s.fleets))
	for _, f := range s.fleets {
		infos = append(infos, f.info())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"fleets": infos})
}

// handleFleetTrace serves the most recent fleet job's assembled
// cross-process trace (one Chrome-trace pid per worker, built from the
// phase spans workers streamed back on their control connections).
// Before any job has run — or when no job carried a trace ID — the
// trace is empty and the X-Kmserve-Trace-Id header reads 0. Concurrent
// fleet jobs share the collector; the trace reflects whichever job
// reset it last.
func (s *Server) handleFleetTrace(w http.ResponseWriter, r *http.Request) {
	f := s.fleet(w, r)
	if f == nil {
		return
	}
	w.Header().Set("X-Kmserve-Trace-Id", fmt.Sprintf("%016x", f.trace.TraceID()))
	writeJSON(w, http.StatusOK, f.trace.Assemble())
}

func (s *Server) handleFleetInfo(w http.ResponseWriter, r *http.Request) {
	f := s.fleet(w, r)
	if f == nil {
		return
	}
	info := f.info()
	status := http.StatusOK
	if f.state.Load() == fleetDown {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, info)
}

// fleetConnectivityResponse answers fleet connectivity requests. Fleet
// sources are immutable (no batch endpoint), so results cache forever.
type fleetConnectivityResponse struct {
	Graph          string   `json:"graph"`
	Components     int      `json:"components"`
	Phases         int      `json:"phases"`
	Rounds         int      `json:"rounds"`
	SketchFailures int64    `json:"sketch_failures"`
	Cached         bool     `json:"cached"`
	Labels         []uint64 `json:"labels,omitempty"`
}

func (c fleetConnectivityResponse) hit() any { c.Cached = true; return c }

func (s *Server) handleFleetConnectivity(w http.ResponseWriter, r *http.Request) {
	f := s.fleet(w, r)
	if f == nil {
		return
	}
	labels := boolParam(r, "labels")
	shape := func(v any) any {
		c := v.(fleetConnectivityResponse)
		if !labels {
			c.Labels = nil
		}
		return c
	}
	s.runFleet(w, r, f, "connectivity", shape, func(ctx context.Context) (hitMarker, error) {
		res, err := dist.RunConnectivityOpts(ctx, f.spec.Addrs, f.spec.Source, f.spec.Conn, f.coordOptions())
		if err != nil {
			return nil, err
		}
		return fleetConnectivityResponse{
			Graph:          f.name,
			Components:     res.Components,
			Phases:         res.Phases,
			Rounds:         res.Metrics.Rounds,
			SketchFailures: res.SketchFailures,
			Labels:         res.Labels,
		}, nil
	})
}

// fleetMSTResponse answers fleet MST requests.
type fleetMSTResponse struct {
	Graph       string     `json:"graph"`
	TotalWeight int64      `json:"total_weight"`
	EdgeCount   int        `json:"edge_count"`
	Phases      int        `json:"phases"`
	Rounds      int        `json:"rounds"`
	Cached      bool       `json:"cached"`
	Edges       []jsonEdge `json:"edges,omitempty"`
}

func (m fleetMSTResponse) hit() any { m.Cached = true; return m }

func (s *Server) handleFleetMST(w http.ResponseWriter, r *http.Request) {
	f := s.fleet(w, r)
	if f == nil {
		return
	}
	edges := boolParam(r, "edges")
	shape := func(v any) any {
		m := v.(fleetMSTResponse)
		if !edges {
			m.Edges = nil
		}
		return m
	}
	s.runFleet(w, r, f, "mst", shape, func(ctx context.Context) (hitMarker, error) {
		cfg := core.MSTConfig{Config: f.spec.Conn}
		res, err := dist.RunMSTOpts(ctx, f.spec.Addrs, f.spec.Source, cfg, f.coordOptions())
		if err != nil {
			return nil, err
		}
		out := make([]jsonEdge, len(res.Edges))
		for i, e := range res.Edges {
			out[i] = jsonEdge{U: e.U, V: e.V, W: e.W}
		}
		return fleetMSTResponse{
			Graph:       f.name,
			TotalWeight: res.TotalWeight,
			EdgeCount:   len(res.Edges),
			Phases:      res.Phases,
			Rounds:      res.Metrics.Rounds,
			Edges:       out,
		}, nil
	})
}

// runFleet is the shared protocol around a fleet job: health gate,
// cache lookup (fleet graphs are immutable, so the epoch is always 0),
// admission, run under the request deadline, degradation-aware error
// mapping.
func (s *Server) runFleet(w http.ResponseWriter, r *http.Request, f *fleet, job string,
	shape func(any) any, run func(ctx context.Context) (hitMarker, error)) {
	timeout, err := s.parseTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := cacheKey{epoch: 0, job: job, args: ""}
	if v, ok := f.cache.get(key); ok {
		w.Header().Set("X-Kmserve-Cache", "hit")
		writeJSON(w, http.StatusOK, shape(v.(hitMarker).hit()))
		return
	}
	if !f.gate(w) {
		return
	}
	if !f.admit(w) {
		return
	}
	defer f.release()
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	resp, err := run(ctx)
	if err != nil {
		f.jobError(w, err)
		return
	}
	f.cache.put(key, resp)
	w.Header().Set("X-Kmserve-Cache", "miss")
	writeJSON(w, http.StatusOK, shape(resp))
}
