package server

// Live job progress: GET /graphs/{name}/jobs lists the engine jobs the
// graph's observer funnel has seen (newest first, bounded retention),
// and GET /graphs/{name}/jobs/{id}/events streams one job's progress —
// phase and round-counter deltas, live component counts, terminal
// status — as Server-Sent Events. Subscribers get coalescing notify
// channels and re-read the record on each wakeup, so a slow client can
// never stall the engine's observer hook.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"kmgraph"
)

// maxJobRecords bounds the finished jobs retained per graph; the
// oldest finished records are evicted first (running jobs are never
// evicted).
const maxJobRecords = 64

// jobProgress is the wire form of one job's progress: one entry of the
// jobs listing and the data payload of every SSE delta.
type jobProgress struct {
	ID  int    `json:"id"` // engine job sequence number
	Job string `json:"job"`
	// Phase is the last merge-phase index observed, -1 before the first
	// phase boundary.
	Phase int `json:"phase"`
	// Round is the cluster-wide round counter at the last event
	// (cumulative across the session, so deltas between events are the
	// job's own consumption).
	Round int `json:"round"`
	// Active and Failures are the last phase-end collectives' values:
	// live component count and sketch failures.
	Active   uint64 `json:"active"`
	Failures uint64 `json:"failures"`
	Running  bool   `json:"running"`
	Err      string `json:"error,omitempty"`
	Started  string `json:"started"` // RFC 3339
	// DurationMs is the job's wall-clock duration, set on completion.
	DurationMs float64 `json:"duration_ms,omitempty"`
}

// jobRecord is one tracked job plus its subscribers. Guarded by the
// owning graphObs's mutex.
type jobRecord struct {
	p       jobProgress
	started time.Time
	subs    map[chan struct{}]struct{}
}

// notify wakes every subscriber (coalescing: a subscriber that hasn't
// drained its previous wakeup gets nothing new to drain).
func (j *jobRecord) notify() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}: //kmvet:ignore coalescing non-blocking wakeups; delivery order immaterial
		default:
		}
	}
}

// trackJob folds one observer event into the job records and wakes the
// job's subscribers. Called from observe with o.mu conventions of its
// own (it takes the lock itself).
func (o *graphObs) trackJob(ev kmgraph.ClusterEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	j := o.jobs[ev.Seq]
	switch {
	case ev.Phase < 0 && !ev.Done:
		if j != nil {
			return // duplicate start
		}
		now := time.Now()
		j = &jobRecord{
			p: jobProgress{
				ID:      ev.Seq,
				Job:     ev.Job,
				Phase:   -1,
				Round:   ev.Round,
				Running: true,
				Started: now.UTC().Format(time.RFC3339Nano),
			},
			started: now,
			subs:    make(map[chan struct{}]struct{}),
		}
		if o.jobs == nil {
			o.jobs = make(map[int]*jobRecord)
		}
		o.jobs[ev.Seq] = j
		o.pruneJobs()
		return
	case j == nil && ev.Done:
		// Jobs that report only at completion (the load job emits a
		// single Done event) get a terminal record directly.
		if o.jobs == nil {
			o.jobs = make(map[int]*jobRecord)
		}
		o.jobs[ev.Seq] = &jobRecord{
			p: jobProgress{
				ID:      ev.Seq,
				Job:     ev.Job,
				Phase:   -1,
				Round:   ev.Round,
				Err:     ev.Err,
				Started: time.Now().UTC().Format(time.RFC3339Nano),
			},
			subs: make(map[chan struct{}]struct{}),
		}
		o.pruneJobs()
		return
	case j == nil:
		return // phase event for a job that started before we looked
	case ev.Done:
		j.p.Round = ev.Round
		j.p.Running = false
		j.p.Err = ev.Err
		j.p.DurationMs = float64(time.Since(j.started).Nanoseconds()) / 1e6
	default: // phase boundary
		j.p.Phase = ev.Phase
		j.p.Round = ev.Round
		j.p.Active = ev.Active
		j.p.Failures = ev.Failures
	}
	j.notify()
}

// pruneJobs evicts the oldest finished records past maxJobRecords.
// Caller holds o.mu.
func (o *graphObs) pruneJobs() {
	excess := len(o.jobs) - maxJobRecords
	if excess <= 0 {
		return
	}
	var finished []*jobRecord
	for _, j := range o.jobs {
		if !j.p.Running {
			finished = append(finished, j)
		}
	}
	sort.Slice(finished, func(a, b int) bool { return finished[a].p.ID < finished[b].p.ID })
	for _, j := range finished {
		if excess == 0 {
			break
		}
		delete(o.jobs, j.p.ID)
		excess--
	}
}

// snapshotJobs returns the tracked jobs, newest first.
func (o *graphObs) snapshotJobs() []jobProgress {
	o.mu.Lock()
	out := make([]jobProgress, 0, len(o.jobs))
	for _, j := range o.jobs {
		out = append(out, j.p)
	}
	o.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	return out
}

// jobSnapshot returns one job's current progress.
func (o *graphObs) jobSnapshot(id int) (jobProgress, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	j, ok := o.jobs[id]
	if !ok {
		return jobProgress{}, false
	}
	return j.p, true
}

// subscribeJob registers a wakeup channel on the job; the returned
// cancel is idempotent and safe after the job record is evicted.
func (o *graphObs) subscribeJob(id int) (<-chan struct{}, func(), bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	j, ok := o.jobs[id]
	if !ok {
		return nil, nil, false
	}
	ch := make(chan struct{}, 1)
	j.subs[ch] = struct{}{}
	cancel := func() {
		o.mu.Lock()
		delete(j.subs, ch)
		o.mu.Unlock()
	}
	return ch, cancel, true
}

// handleJobs lists the graph's tracked jobs, newest first.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(w, r)
	if t == nil {
		return
	}
	o := s.obsFor(t.name)
	writeJSON(w, http.StatusOK, map[string]any{"graph": t.name, "jobs": o.snapshotJobs()})
}

// sseEvent writes one SSE frame ("progress" while running, "done" once
// finished) and flushes it.
func sseEvent(w http.ResponseWriter, rc *http.ResponseController, p jobProgress) error {
	name := "progress"
	if !p.Running {
		name = "done"
	}
	data, _ := json.Marshal(p)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
	return rc.Flush()
}

// sseKeepalive separates comment frames that hold idle streams open
// through proxies.
const sseKeepalive = 15 * time.Second

// handleJobEvents streams one job's progress deltas as Server-Sent
// Events until the job finishes or the client disconnects. The first
// frame is the job's current state, so a subscriber that arrives late
// (or after completion) still sees the terminal snapshot.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(w, r)
	if t == nil {
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	rc := http.NewResponseController(w)
	o := s.obsFor(t.name)
	p, found := o.jobSnapshot(id)
	if !found {
		writeError(w, http.StatusNotFound, "unknown job %d on graph %q", id, t.name)
		return
	}
	// Subscribe before the first read-and-send, so a delta landing
	// between them wakes us rather than being lost.
	ch, cancel, live := o.subscribeJob(id)
	if live {
		defer cancel()
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if err := sseEvent(w, rc, p); err != nil {
		return // the connection can't stream (or the client is gone)
	}
	if !p.Running || !live {
		return
	}
	keep := time.NewTicker(sseKeepalive)
	defer keep.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keep.C:
			fmt.Fprint(w, ": keepalive\n\n")
			if rc.Flush() != nil {
				return
			}
		case <-ch:
			p, found = o.jobSnapshot(id)
			if !found {
				return // evicted mid-stream
			}
			if err := sseEvent(w, rc, p); err != nil {
				return
			}
			if !p.Running {
				return
			}
		}
	}
}
