package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"kmgraph"
)

// newTestServer registers a fresh cluster on g under name and returns
// the server plus its HTTP front end.
func newTestServer(t *testing.T, cfg Config, name string, g *kmgraph.Graph, k int, seed int64) (*Server, *httptest.Server) {
	t.Helper()
	c, err := kmgraph.NewCluster(g, kmgraph.WithK(k), kmgraph.WithSeed(seed))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	s := New(cfg)
	if err := s.Register(name, c); err != nil {
		t.Fatalf("Register: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// getJSON GETs url and decodes the response into out, asserting status.
func getJSON(t *testing.T, url string, wantStatus int, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return resp
}

// postJSON POSTs v as JSON to url and decodes the response into out.
func postJSON(t *testing.T, url string, v any, wantStatus int, out any) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", url, body, err)
		}
	}
}

func TestEndpointsAnswerEveryJobFamily(t *testing.T) {
	g := kmgraph.WithDistinctWeights(kmgraph.DisjointComponents(300, 3, 0.1, 7), 8)
	_, ts := newTestServer(t, Config{}, "g", g, 4, 11)
	base := ts.URL + "/graphs/g"

	_, wantComps := kmgraph.ComponentsOracle(g)

	var health struct {
		Status string `json:"status"`
		Graphs int    `json:"graphs"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "ok" || health.Graphs != 1 {
		t.Errorf("healthz: %+v", health)
	}

	var list struct {
		Graphs []graphInfo `json:"graphs"`
	}
	getJSON(t, ts.URL+"/graphs", http.StatusOK, &list)
	if len(list.Graphs) != 1 || list.Graphs[0].Name != "g" || list.Graphs[0].N != 300 {
		t.Errorf("graphs list: %+v", list)
	}

	var conn connectivityResponse
	getJSON(t, base+"/connectivity?labels=true", http.StatusOK, &conn)
	if conn.Components != wantComps {
		t.Errorf("connectivity: %d components, oracle %d", conn.Components, wantComps)
	}
	if len(conn.Labels) != 300 {
		t.Errorf("labels: got %d, want 300", len(conn.Labels))
	}

	var st connectivityResponse
	getJSON(t, base+"/spanning-tree", http.StatusOK, &st)
	if len(st.Forest) != 300-wantComps {
		t.Errorf("spanning-tree: %d forest edges, want %d", len(st.Forest), 300-wantComps)
	}

	var mst mstResponse
	getJSON(t, base+"/mst?edges=true", http.StatusOK, &mst)
	wantMST, wantW := kmgraph.MSTOracle(g)
	if mst.EdgeCount != len(wantMST) || mst.TotalWeight != wantW {
		t.Errorf("mst: %d edges weight %d, oracle %d edges weight %d",
			mst.EdgeCount, mst.TotalWeight, len(wantMST), wantW)
	}

	var mc mincutResponse
	getJSON(t, base+"/mincut", http.StatusOK, &mc)
	if mc.Estimate != 0 || mc.Level != -1 {
		// Three components: the graph is already disconnected.
		t.Errorf("mincut on disconnected graph: %+v", mc)
	}

	var ver verifyResponse
	postJSON(t, base+"/verify", map[string]any{"problem": "cycle"}, http.StatusOK, &ver)
	if !ver.Holds {
		t.Errorf("cycle verification: %+v (components with p=0.1 inside 100-vertex blocks must have cycles)", ver)
	}
	postJSON(t, base+"/verify", map[string]any{"problem": "nope"}, http.StatusBadRequest, nil)

	// Four engine jobs, not five: spanning-tree was served from the
	// connectivity cache entry (same computation, one key).
	var met metricsResponse
	getJSON(t, base+"/metrics", http.StatusOK, &met)
	if met.Jobs != 4 || met.Queries != 1 || met.CacheHits == 0 ||
		met.TotalRounds < met.LoadRounds || met.N != 300 {
		t.Errorf("metrics: %+v", met)
	}

	getJSON(t, ts.URL+"/graphs/absent/connectivity", http.StatusNotFound, nil)
}

// TestCacheHitServesWithZeroRounds is the acceptance-criteria pin: a
// repeated connectivity query on an unchanged graph is served from the
// epoch-keyed cache without a single simulation round, and a batch that
// changes the graph invalidates it.
func TestCacheHitServesWithZeroRounds(t *testing.T) {
	g := kmgraph.GNM(250, 700, 3)
	_, ts := newTestServer(t, Config{}, "g", g, 4, 5)
	base := ts.URL + "/graphs/g"

	var first connectivityResponse
	resp := getJSON(t, base+"/connectivity", http.StatusOK, &first)
	if first.Cached || resp.Header.Get("X-Kmserve-Cache") != "miss" {
		t.Fatalf("first query must miss: cached=%t header=%q", first.Cached, resp.Header.Get("X-Kmserve-Cache"))
	}

	var met1 metricsResponse
	getJSON(t, base+"/metrics", http.StatusOK, &met1)

	var second connectivityResponse
	resp = getJSON(t, base+"/connectivity", http.StatusOK, &second)
	if !second.Cached || resp.Header.Get("X-Kmserve-Cache") != "hit" {
		t.Fatalf("second query must hit: cached=%t header=%q", second.Cached, resp.Header.Get("X-Kmserve-Cache"))
	}
	if second.Components != first.Components || second.Rounds != first.Rounds {
		t.Fatalf("cached answer drifted: first %+v, second %+v", first, second)
	}

	var met2 metricsResponse
	getJSON(t, base+"/metrics", http.StatusOK, &met2)
	if met2.TotalRounds != met1.TotalRounds {
		t.Fatalf("cache hit burned %d simulation rounds", met2.TotalRounds-met1.TotalRounds)
	}
	if met2.Queries != met1.Queries {
		t.Fatalf("cache hit reached the engine (queries %d -> %d)", met1.Queries, met2.Queries)
	}
	if met2.CacheHits == 0 {
		t.Fatalf("metrics did not record the cache hit: %+v", met2)
	}

	// A batch that changes the edge set bumps the epoch and invalidates.
	var br batchResponse
	postJSON(t, base+"/batch", map[string]any{
		"ops": []map[string]any{{"u": 0, "v": 1}, {"u": 0, "v": 2}},
	}, http.StatusOK, &br)
	if br.Applied == 0 || br.Epoch == first.Epoch {
		t.Fatalf("batch must apply and bump the epoch: %+v (was epoch %d)", br, first.Epoch)
	}

	var third connectivityResponse
	getJSON(t, base+"/connectivity", http.StatusOK, &third)
	if third.Cached {
		t.Fatalf("query after a mutating batch served stale cache: %+v", third)
	}
	if third.Epoch != br.Epoch {
		t.Fatalf("post-batch query at epoch %d, batch left %d", third.Epoch, br.Epoch)
	}

	var met3 metricsResponse
	getJSON(t, base+"/metrics", http.StatusOK, &met3)
	if met3.TotalRounds <= met2.TotalRounds {
		t.Fatalf("post-invalidation query must re-run rounds")
	}

	// A fully-rejected batch (duplicate insert) leaves the epoch — and
	// therefore the cache — intact.
	var rejected batchResponse
	postJSON(t, base+"/batch", map[string]any{
		"ops": []map[string]any{{"u": 0, "v": 1}},
	}, http.StatusOK, &rejected)
	if rejected.Applied != 0 || rejected.Epoch != br.Epoch {
		t.Fatalf("duplicate insert must reject without bumping the epoch: %+v", rejected)
	}
	var fourth connectivityResponse
	getJSON(t, base+"/connectivity", http.StatusOK, &fourth)
	if !fourth.Cached {
		t.Fatalf("rejected batch invalidated the cache")
	}
}

// TestConcurrentColdMissesCoalesce pins the singleflight: identical
// requests racing a cold cache run the job once — followers wait for
// the leader and serve its cached result instead of piling N identical
// recomputations onto the engine.
func TestConcurrentColdMissesCoalesce(t *testing.T) {
	g := kmgraph.GNM(400, 1200, 41)
	_, ts := newTestServer(t, Config{MaxQueue: 32}, "g", g, 4, 43)
	base := ts.URL + "/graphs/g"

	const clients = 6
	var wg sync.WaitGroup
	comps := make([]int, clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp connectivityResponse
			r, err := http.Get(base + "/connectivity")
			if err != nil {
				errs <- err
				return
			}
			defer r.Body.Close()
			if r.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", i, r.StatusCode)
				return
			}
			if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
				errs <- err
				return
			}
			comps[i] = resp.Components
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 1; i < clients; i++ {
		if comps[i] != comps[0] {
			t.Fatalf("divergent answers: %v", comps)
		}
	}
	var met metricsResponse
	getJSON(t, base+"/metrics", http.StatusOK, &met)
	if met.Queries != 1 {
		t.Fatalf("cold herd reached the engine %d times, want 1 (coalesced)", met.Queries)
	}
}

func TestBackpressure429(t *testing.T) {
	g := kmgraph.GNM(200, 500, 9)
	s, ts := newTestServer(t, Config{MaxQueue: 2}, "g", g, 4, 13)

	// Deterministically exhaust the admission queue, then ask for work.
	s.mu.RLock()
	ten := s.graphs["g"]
	s.mu.RUnlock()
	ten.slots <- struct{}{}
	ten.slots <- struct{}{}

	resp, err := http.Get(ts.URL + "/graphs/g/connectivity")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (want 429): %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Metrics and health must still answer while the queue is full.
	getJSON(t, ts.URL+"/graphs/g/metrics", http.StatusOK, nil)
	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)

	<-ten.slots
	<-ten.slots
	getJSON(t, ts.URL+"/graphs/g/connectivity", http.StatusOK, nil)
}

func TestRequestTimeoutMapsToJobDeadline(t *testing.T) {
	g := kmgraph.GNM(400, 1200, 17)
	_, ts := newTestServer(t, Config{}, "g", g, 4, 19)

	resp, err := http.Get(ts.URL + "/graphs/g/connectivity?timeout=1ns")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (want 504): %s", resp.StatusCode, body)
	}
	// The cluster must stay serviceable after the expired job.
	getJSON(t, ts.URL+"/graphs/g/connectivity", http.StatusOK, nil)

	getJSON(t, ts.URL+"/graphs/g/connectivity?timeout=bogus", http.StatusBadRequest, nil)
}

func TestLoadAndUnloadOverHTTP(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.kmgs")
	src := kmgraph.StreamGNM(500, 1500, 23)
	if err := kmgraph.WriteStore(path, src); err != nil {
		t.Fatal(err)
	}
	stored, closer, err := kmgraph.OpenStoreSource(path)
	if err != nil {
		t.Fatal(err)
	}
	wantComps, err := kmgraph.ComponentsFromSourceOracle(stored)
	closer.Close()
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{AllowLoad: true})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Close()

	seed := int64(3)
	var info graphInfo
	postJSON(t, ts.URL+"/graphs", loadRequest{Name: "web", Path: path, K: 4, Seed: &seed},
		http.StatusCreated, &info)
	if info.N != 500 {
		t.Fatalf("loaded info: %+v", info)
	}
	// Duplicate name and bad path are client errors.
	postJSON(t, ts.URL+"/graphs", loadRequest{Name: "web", Path: path},
		http.StatusConflict, nil)
	postJSON(t, ts.URL+"/graphs", loadRequest{Name: "x", Path: filepath.Join(dir, "absent.kmgs")},
		http.StatusBadRequest, nil)

	var conn connectivityResponse
	getJSON(t, ts.URL+"/graphs/web/connectivity", http.StatusOK, &conn)
	if conn.Components != wantComps {
		t.Fatalf("components %d, oracle %d", conn.Components, wantComps)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/web", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/graphs/web/connectivity", http.StatusNotFound, nil)
}

func TestLoadDisabledByDefault(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Close()
	postJSON(t, ts.URL+"/graphs", loadRequest{Name: "g", Path: "x"}, http.StatusForbidden, nil)
}

// TestConcurrentJobsAndMetricsConsistency is the -race witness for the
// whole serving path: overlapping connectivity queries, mutating
// batches, and metrics snapshots through the server's admission layer.
// Mid-job metrics snapshots must be internally consistent — the load
// cost never changes, cumulative counters never run backwards, and the
// epoch is monotone — i.e. no torn reads.
func TestConcurrentJobsAndMetricsConsistency(t *testing.T) {
	g := kmgraph.GNM(200, 600, 29)
	_, ts := newTestServer(t, Config{MaxQueue: 32}, "g", g, 4, 31)
	base := ts.URL + "/graphs/g"

	var loadRounds int
	var met0 metricsResponse
	getJSON(t, base+"/metrics", http.StatusOK, &met0)
	loadRounds = met0.LoadRounds

	const (
		queriers  = 3
		batchers  = 2
		perWorker = 6
	)
	var workers, poller sync.WaitGroup
	errs := make(chan error, queriers+batchers+1)

	for q := 0; q < queriers; q++ {
		workers.Add(1)
		go func(q int) {
			defer workers.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/connectivity?labels=%t", base, i%2 == 0))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("querier %d: status %d", q, resp.StatusCode)
					return
				}
			}
		}(q)
	}
	for b := 0; b < batchers; b++ {
		workers.Add(1)
		go func(b int) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(int64(100 + b)))
			for i := 0; i < perWorker; i++ {
				u, v := rng.Intn(200), rng.Intn(200)
				if u == v {
					continue
				}
				body, _ := json.Marshal(map[string]any{
					"ops": []map[string]any{{"u": u, "v": v, "del": i%3 == 0}},
				})
				resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("batcher %d: status %d", b, resp.StatusCode)
					return
				}
			}
		}(b)
	}

	// The metrics poller races the jobs above; every snapshot it takes
	// must be internally consistent.
	poller.Add(1)
	stop := make(chan struct{})
	go func() {
		defer poller.Done()
		var prev metricsResponse
		for {
			select {
			case <-stop:
				return
			default:
			}
			var met metricsResponse
			resp, err := http.Get(base + "/metrics")
			if err != nil {
				errs <- err
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := json.Unmarshal(data, &met); err != nil {
				errs <- fmt.Errorf("metrics decode: %v", err)
				return
			}
			switch {
			case met.LoadRounds != loadRounds:
				errs <- fmt.Errorf("torn read: load rounds %d -> %d", loadRounds, met.LoadRounds)
				return
			case met.TotalRounds < prev.TotalRounds,
				met.Jobs < prev.Jobs,
				met.Batches < prev.Batches,
				met.Queries < prev.Queries,
				met.Epoch < prev.Epoch:
				errs <- fmt.Errorf("torn read: counters ran backwards: %+v -> %+v", prev, met)
				return
			case met.TotalRounds < met.LoadRounds,
				met.Queued < 0, met.Running < 0, met.Running > 1,
				met.Edges < 0:
				errs <- fmt.Errorf("inconsistent snapshot: %+v", met)
				return
			}
			prev = met
			time.Sleep(time.Millisecond)
		}
	}()

	workers.Wait()
	close(stop)
	poller.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
