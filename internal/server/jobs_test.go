package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"kmgraph"
)

// TestJobsEndpointListsEngineJobs pins the jobs listing: after one
// query, the graph's funnel has tracked the load job and the query,
// newest first, with terminal state and round progress recorded.
func TestJobsEndpointListsEngineJobs(t *testing.T) {
	g := kmgraph.GNM(300, 900, 3)
	_, base := newObservedServer(t, Config{}, "g", g, 4, 7)
	getJSONurl(t, base+"/graphs/g/connectivity")

	var doc struct {
		Graph string        `json:"graph"`
		Jobs  []jobProgress `json:"jobs"`
	}
	getJSON(t, base+"/graphs/g/jobs", http.StatusOK, &doc)
	if doc.Graph != "g" {
		t.Errorf("graph = %q", doc.Graph)
	}
	if len(doc.Jobs) < 2 {
		t.Fatalf("tracked %d jobs, want >= 2 (load + connectivity)", len(doc.Jobs))
	}
	for i := 1; i < len(doc.Jobs); i++ {
		if doc.Jobs[i-1].ID < doc.Jobs[i].ID {
			t.Fatal("jobs not newest-first")
		}
	}
	var sawConnectivity bool
	for _, j := range doc.Jobs {
		if j.Running {
			t.Errorf("job %d still marked running after completion", j.ID)
		}
		if j.Job == "connectivity" {
			sawConnectivity = true
			if j.Round == 0 {
				t.Error("connectivity job recorded no round progress")
			}
			if j.DurationMs <= 0 {
				t.Error("connectivity job recorded no duration")
			}
		}
	}
	if !sawConnectivity {
		t.Fatalf("no connectivity job in listing: %+v", doc.Jobs)
	}
}

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	event string
	data  jobProgress
}

// readSSE parses frames off an event stream until the stream closes or
// max frames arrive.
func readSSE(t *testing.T, body *bufio.Scanner, max int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var ev string
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var p jobProgress
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			frames = append(frames, sseFrame{event: ev, data: p})
			if len(frames) >= max {
				return frames
			}
		}
	}
	return frames
}

// TestJobEventsStreamProgressAndTerminal drives the SSE endpoint with
// synthetic observer events (the same funnel the engine feeds): a
// subscriber sees the current snapshot immediately, then phase/round
// deltas as they land, then the terminal "done" frame, after which the
// stream closes.
func TestJobEventsStreamProgressAndTerminal(t *testing.T) {
	g := kmgraph.GNM(50, 150, 3)
	s, base := newObservedServer(t, Config{}, "g", g, 4, 7)
	fn := s.JobObserver("g")

	// A synthetic in-flight job, well clear of real engine sequence
	// numbers.
	const seq = 1000
	fn(kmgraph.ClusterEvent{Job: "connectivity", Seq: seq, Phase: -1, Round: 3})

	resp, err := http.Get(base + "/graphs/g/jobs/1000/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	first := readSSE(t, sc, 1)
	if len(first) != 1 || first[0].event != "progress" || first[0].data.Round != 3 || !first[0].data.Running {
		t.Fatalf("initial frame = %+v, want running progress at round 3", first)
	}

	// Deltas stream as the observer reports them. Waking the subscriber
	// is asynchronous, so deliver each event, then read.
	fn(kmgraph.ClusterEvent{Job: "connectivity", Seq: seq, Phase: 0, Round: 9, Active: 12})
	mid := readSSE(t, sc, 1)
	if len(mid) != 1 || mid[0].event != "progress" || mid[0].data.Round != 9 ||
		mid[0].data.Phase != 0 || mid[0].data.Active != 12 {
		t.Fatalf("delta frame = %+v, want phase 0 at round 9 with 12 active", mid)
	}

	fn(kmgraph.ClusterEvent{Job: "connectivity", Seq: seq, Phase: -1, Round: 15, Done: true})
	last := readSSE(t, sc, 2) // the done frame, then EOF
	if len(last) != 1 || last[0].event != "done" || last[0].data.Round != 15 || last[0].data.Running {
		t.Fatalf("terminal frame = %+v, want done at round 15", last)
	}
}

// TestJobEventsLateSubscriberGetsTerminalSnapshot pins that attaching
// after completion still answers: one "done" frame, then the stream
// ends (a real engine job works identically — the record outlives the
// job).
func TestJobEventsLateSubscriberGetsTerminalSnapshot(t *testing.T) {
	g := kmgraph.GNM(300, 900, 3)
	_, base := newObservedServer(t, Config{}, "g", g, 4, 7)
	getJSONurl(t, base+"/graphs/g/connectivity")

	var doc struct {
		Jobs []jobProgress `json:"jobs"`
	}
	getJSON(t, base+"/graphs/g/jobs", http.StatusOK, &doc)
	var target *jobProgress
	for i := range doc.Jobs {
		if doc.Jobs[i].Job == "connectivity" {
			target = &doc.Jobs[i]
			break
		}
	}
	if target == nil {
		t.Fatal("no connectivity job tracked")
	}

	client := http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/graphs/g/jobs/" + itoa(target.ID) + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readSSE(t, bufio.NewScanner(resp.Body), 2)
	if len(frames) != 1 || frames[0].event != "done" || frames[0].data.Running {
		t.Fatalf("late subscription frames = %+v, want exactly one done frame", frames)
	}
	if frames[0].data.Round != target.Round {
		t.Errorf("terminal round %d, listing said %d", frames[0].data.Round, target.Round)
	}

	// Unknown jobs are a clean 404, not a hung stream.
	getJSON(t, base+"/graphs/g/jobs/999999/events", http.StatusNotFound, nil)
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}
