// Package server is the network serving layer: an HTTP/JSON front end
// hosting a registry of named resident Clusters and exposing every job
// family — connectivity, spanning-tree, MST, approximate min-cut, the
// Theorem 4 verifications, dynamic edge batches, and metrics — as
// endpoints over the cancellable-job API.
//
// Three serving concerns layer over the resident engine:
//
//   - Admission and backpressure: each graph has a bounded admission
//     queue (Config.MaxQueue) layered over the engine's one-job
//     semaphore. A request that would overflow the queue is refused
//     immediately with 429 and a Retry-After header instead of piling
//     onto the cluster, so latency under overload stays bounded.
//   - Deadlines: every job runs under a context derived from the HTTP
//     request (client disconnects cancel the job at the next phase
//     boundary) with a per-request ?timeout= deadline, defaulting to
//     Config.DefaultTimeout.
//   - Result caching: finished results are cached per graph, keyed on
//     (graph epoch, job, canonical args). ApplyBatch bumps the epoch,
//     so mutations invalidate implicitly; repeated queries on an
//     unchanged graph are served with zero simulation rounds.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kmgraph"
	"kmgraph/internal/resident"
	"kmgraph/internal/telemetry"
	"kmgraph/internal/transport/tcp"
)

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the stated default.
type Config struct {
	// MaxQueue bounds each graph's admission queue (running job
	// included); a request beyond it is refused with 429. Default 16.
	MaxQueue int
	// DefaultTimeout is the job deadline applied when a request carries
	// no ?timeout= parameter. Default 60s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the ?timeout= parameter. Default 10m.
	MaxTimeout time.Duration
	// CacheEntries bounds each graph's result cache; 0 selects the
	// default 128, negative disables caching entirely.
	CacheEntries int
	// AllowLoad enables POST /graphs (loading stores from server-local
	// paths) and DELETE /graphs/{name}. kmserve enables it; embedders
	// that pre-register every graph can leave it off.
	AllowLoad bool
	// DefaultK and DefaultSeed apply to graphs loaded at runtime via
	// POST /graphs when the request omits k or seed, so runtime loads
	// match the operator's startup loads (kmserve plumbs its -k/-seed
	// flags here). DefaultK 0 falls back to the library default.
	DefaultK    int
	DefaultSeed int64
	// Logger, when non-nil, receives one structured record per request:
	// request ID, method, path, status, duration, and cache disposition.
	// The request ID (client-provided X-Request-Id or minted) is echoed
	// on the response and threaded through the request context into
	// every job the request runs.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
		if c.DefaultTimeout > c.MaxTimeout {
			// An operator raising the default deadline means jobs that long
			// are expected; don't let the cap silently undercut it.
			c.MaxTimeout = c.DefaultTimeout
		}
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	return c
}

// Server hosts named resident Clusters behind an HTTP/JSON API. It
// implements http.Handler; mount it on any mux or serve it directly.
type Server struct {
	cfg Config
	mux *http.ServeMux

	registry *telemetry.Registry
	inflight atomic.Int64

	mu     sync.RWMutex
	graphs map[string]*tenant
	fleets map[string]*fleet

	// obs maps graph name -> observer funnel; populated by JobObserver
	// (possibly before the cluster exists) and consulted by Register.
	obsMu sync.Mutex
	obs   map[string]*graphObs
}

// tenant is one hosted graph: the resident cluster, its bounded
// admission queue, and its epoch-keyed result cache.
type tenant struct {
	name   string
	c      *kmgraph.Cluster
	slots  chan struct{}
	cache  *resultCache
	flight flightGroup

	// shed counts 429 refusals; coalesced counts requests that waited
	// behind an identical in-flight request. Both feed the registry via
	// scrape-time CounterFuncs.
	shed      atomic.Int64
	coalesced atomic.Int64
}

// New returns a Server hosting no graphs yet; Register graphs (or
// enable Config.AllowLoad and POST them) before serving traffic.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		graphs:   make(map[string]*tenant),
		obs:      make(map[string]*graphObs),
		registry: telemetry.NewRegistry(),
	}
	telemetry.RegisterProcessMetrics(s.registry)
	// Distributed-transport series (per-link bytes/frames, reconnects,
	// handshake failures, barrier waits) join the same exposition, so a
	// server that also coordinates TCP jobs surfaces them on GET /metrics.
	tcp.RegisterTelemetry(s.registry)
	s.registry.GaugeFunc("kmserve_inflight_requests",
		"HTTP requests currently being served.",
		func() float64 { return float64(s.inflight.Load()) })
	s.registry.GaugeFunc("kmserve_graphs",
		"Graphs currently hosted.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.graphs))
		})
	s.routes()
	return s
}

// Register adds a loaded cluster under name. The server owns the
// cluster from here on (Close/DELETE will close it).
func (s *Server) Register(name string, c *kmgraph.Cluster) error {
	_, err := s.register(name, c)
	return err
}

// register adds the cluster and returns its tenant, so in-process
// callers (handleLoad) need no post-registration lookup that could race
// a concurrent DELETE.
func (s *Server) register(name string, c *kmgraph.Cluster) (*tenant, error) {
	if name == "" {
		return nil, errors.New("server: empty graph name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.graphs[name]; dup {
		return nil, fmt.Errorf("server: graph %q already registered", name)
	}
	t := &tenant{
		name:  name,
		c:     c,
		slots: make(chan struct{}, s.cfg.MaxQueue),
		cache: newResultCache(s.cfg.CacheEntries),
	}
	s.graphs[name] = t
	s.registerTenantMetrics(t)
	return t, nil
}

// Close closes every hosted cluster (waiting for in-flight jobs) and
// stops every fleet prober.
func (s *Server) Close() error {
	s.closeFleets()
	s.mu.Lock()
	ts := make([]*tenant, 0, len(s.graphs))
	for _, t := range s.graphs {
		ts = append(ts, t) //kmvet:ignore shutdown fan-out; tenant close order immaterial
	}
	s.graphs = make(map[string]*tenant)
	s.mu.Unlock()
	var err error
	for _, t := range ts {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
		s.registry.DropLabeled("graph", t.name)
		s.dropObs(t.name)
	}
	return err
}

// statusWriter captures the response status and lets the matched route
// tag itself with an endpoint name for per-endpoint metrics (go.mod
// targets a Go version without http.Request.Pattern, so routes
// self-identify instead).
type statusWriter struct {
	http.ResponseWriter
	code     int
	endpoint string
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// streaming handlers (SSE) can flush through the instrumentation.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// ServeHTTP instruments every request: request-ID threading, in-flight
// gauge, per-endpoint latency histogram and status-labeled counter, and
// (when Config.Logger is set) one structured log record per request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := r.Header.Get("X-Request-Id")
	if rid == "" {
		rid = newRequestID()
	}
	w.Header().Set("X-Request-Id", rid)
	r = r.WithContext(context.WithValue(r.Context(), ridKey{}, rid))
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.inflight.Add(1)
	s.mux.ServeHTTP(sw, r)
	s.inflight.Add(-1)
	dur := time.Since(start)
	endpoint := sw.endpoint
	if endpoint == "" {
		endpoint = "other"
	}
	ep := telemetry.Label{Name: "endpoint", Value: endpoint}
	s.registry.Histogram("kmserve_request_seconds",
		"HTTP request latency in seconds, by endpoint.", ep).Observe(dur.Seconds())
	s.registry.Counter("kmserve_requests_total",
		"HTTP requests served, by endpoint and status code.",
		ep, telemetry.Label{Name: "code", Value: strconv.Itoa(sw.code)}).Inc()
	if s.cfg.Logger != nil {
		s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("id", rid),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", endpoint),
			slog.Int("status", sw.code),
			slog.Duration("duration", dur),
			slog.String("cache", sw.Header().Get("X-Kmserve-Cache")),
		)
	}
}

// handle registers a route whose requests are tagged with the endpoint
// name for the per-endpoint series.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if sw, ok := w.(*statusWriter); ok {
			sw.endpoint = endpoint
		}
		h(w, r)
	})
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.handle("GET /healthz", "healthz", s.handleHealth)
	s.handle("GET /metrics", "metrics", s.handlePrometheus)
	s.handle("GET /version", "version", s.handleVersion)
	s.handle("GET /graphs", "list", s.handleList)
	s.handle("POST /graphs", "load", s.handleLoad)
	s.handle("DELETE /graphs/{name}", "unload", s.handleUnload)
	s.handle("GET /graphs/{name}", "info", s.handleInfo)
	s.handle("GET /graphs/{name}/metrics", "graph_metrics", s.handleMetrics)
	s.handle("GET /graphs/{name}/trace", "trace", s.handleTrace)
	s.handle("GET /graphs/{name}/jobs", "jobs", s.handleJobs)
	s.handle("GET /graphs/{name}/jobs/{id}/events", "job_events", s.handleJobEvents)
	for _, m := range []string{"GET", "POST"} {
		s.handle(m+" /graphs/{name}/connectivity", "connectivity", s.handleConnectivity)
		s.handle(m+" /graphs/{name}/spanning-tree", "spanning-tree", s.handleSpanningTree)
		s.handle(m+" /graphs/{name}/mst", "mst", s.handleMST)
		s.handle(m+" /graphs/{name}/mincut", "mincut", s.handleMinCut)
	}
	s.handle("POST /graphs/{name}/verify", "verify", s.handleVerify)
	s.handle("POST /graphs/{name}/batch", "batch", s.handleBatch)
	s.fleetRoutes()
}

// ---- plumbing ----------------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// jobError maps a job error to an HTTP status.
func jobError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "job deadline exceeded: %v", err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusRequestTimeout, "job cancelled: %v", err)
	case errors.Is(err, kmgraph.ErrClusterClosed):
		writeError(w, http.StatusGone, "%v", err)
	case errors.Is(err, resident.ErrBadConfig):
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// tenant resolves {name}; a miss writes 404 and returns nil.
func (s *Server) tenant(w http.ResponseWriter, r *http.Request) *tenant {
	name := r.PathValue("name")
	s.mu.RLock()
	t := s.graphs[name]
	s.mu.RUnlock()
	if t == nil {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
	}
	return t
}

// admit claims an admission slot, or writes 429 + Retry-After and
// returns false. The caller must release() after the job.
func (t *tenant) admit(w http.ResponseWriter) bool {
	select {
	case t.slots <- struct{}{}:
		return true
	default:
		t.shed.Add(1)
		queued, running := t.c.Queue()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"graph %q admission queue full (%d queued, %d running)", t.name, queued, running)
		return false
	}
}

func (t *tenant) release() { <-t.slots }

// parseTimeout resolves the ?timeout= parameter (validated before any
// cache lookup, so malformed requests fail even when an answer is
// cached), clamped to Config.MaxTimeout.
func (s *Server) parseTimeout(r *http.Request) (time.Duration, error) {
	d := s.cfg.DefaultTimeout
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		var err error
		d, err = time.ParseDuration(raw)
		if err != nil {
			return 0, fmt.Errorf("bad timeout %q: %v", raw, err)
		}
		if d <= 0 {
			return 0, fmt.Errorf("bad timeout %q: must be positive", raw)
		}
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true" || v == "yes"
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return v, nil
}

// jsonEdge is the wire form of one undirected edge.
type jsonEdge struct {
	U int   `json:"u"`
	V int   `json:"v"`
	W int64 `json:"w,omitempty"`
}

func toJSONEdges(es []kmgraph.Edge) []jsonEdge {
	out := make([]jsonEdge, len(es))
	for i, e := range es {
		out[i] = jsonEdge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

func fromJSONEdges(es []jsonEdge) []kmgraph.Edge {
	out := make([]kmgraph.Edge, len(es))
	for i, e := range es {
		w := e.W
		if w == 0 {
			w = 1
		}
		out[i] = kmgraph.Edge{U: e.U, V: e.V, W: w}
	}
	return out
}

// ---- registry endpoints ------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.graphs)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "graphs": n})
}

// graphInfo is one graph's registry entry.
type graphInfo struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	Edges   int    `json:"edges"`
	K       int    `json:"k"`
	Epoch   uint64 `json:"epoch"`
	Jobs    int    `json:"jobs"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
}

func (t *tenant) info() graphInfo {
	met := t.c.Metrics()
	queued, running := t.c.Queue()
	return graphInfo{
		Name:    t.name,
		N:       t.c.N(),
		Edges:   met.Edges,
		K:       t.c.K(),
		Epoch:   met.Epoch,
		Jobs:    met.Jobs,
		Queued:  queued,
		Running: running,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]graphInfo, 0, len(s.graphs))
	for _, t := range s.graphs {
		infos = append(infos, t.info())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(w, r)
	if t == nil {
		return
	}
	writeJSON(w, http.StatusOK, t.info())
}

// loadRequest is the POST /graphs body: load a kmgs store or text edge
// list from a server-local path onto a fresh resident cluster.
type loadRequest struct {
	Name string `json:"name"`
	Path string `json:"path"`
	// K and Seed default to the server's Config.DefaultK/DefaultSeed
	// when omitted (nil/0), so one server hosts consistently-partitioned
	// graphs unless a request explicitly asks otherwise.
	K    int    `json:"k,omitempty"`
	Seed *int64 `json:"seed,omitempty"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.AllowLoad {
		writeError(w, http.StatusForbidden, "graph loading is disabled on this server")
		return
	}
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" || req.Path == "" {
		writeError(w, http.StatusBadRequest, "name and path are required")
		return
	}
	s.mu.RLock()
	_, dup := s.graphs[req.Name]
	s.mu.RUnlock()
	if dup {
		writeError(w, http.StatusConflict, "graph %q already registered", req.Name)
		return
	}
	seed := s.cfg.DefaultSeed
	if req.Seed != nil {
		seed = *req.Seed
	}
	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	opts := []kmgraph.ClusterOption{
		kmgraph.WithSeed(seed),
		// Runtime loads get the same observability as startup loads:
		// job metrics and phase-annotated traces from the first event on.
		kmgraph.WithObserver(s.JobObserver(req.Name)),
		kmgraph.WithPhaseMetrics(),
	}
	if k > 0 {
		opts = append(opts, kmgraph.WithK(k))
	}
	c, err := kmgraph.OpenCluster(req.Path, opts...)
	if err != nil {
		// Whatever failed — missing path, corrupt store, bad options —
		// the request named an unusable input: a client error.
		writeError(w, http.StatusBadRequest, "loading %q: %v", req.Path, err)
		return
	}
	t, err := s.register(req.Name, c)
	if err != nil {
		c.Close()
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, t.info())
}

func (s *Server) handleUnload(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.AllowLoad {
		writeError(w, http.StatusForbidden, "graph unloading is disabled on this server")
		return
	}
	name := r.PathValue("name")
	s.mu.Lock()
	t := s.graphs[name]
	delete(s.graphs, name)
	s.mu.Unlock()
	if t == nil {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
		return
	}
	s.registry.DropLabeled("graph", name)
	s.dropObs(name)
	if err := t.c.Close(); err != nil {
		writeError(w, http.StatusInternalServerError, "close: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"unloaded": name})
}

// ---- job endpoints -----------------------------------------------------

// hitMarker is implemented by every cacheable response type: hit
// returns a copy marked as served from cache.
type hitMarker interface{ hit() any }

// runCached is the shared protocol around every cacheable job: validate
// the timeout (before the cache lookup, so malformed requests fail even
// when an answer is cached), look up (admission-time epoch, job, args),
// and on a miss admit, run, and store the result — but only when it
// provably ran at the looked-up epoch, so a batch that slipped in while
// the job was queued can never poison the old key.
//
// One deadline covers the whole request — waiting on a coalesced
// leader, queueing, and running — so a follower that outlives its
// leader never restarts the clock.
//
// run returns the response plus the epoch the job ran at: exact where
// the engine reports it (connectivity and batches carry it on their
// results), otherwise the caller's freshest post-job re-read — for
// read-only jobs a re-read equal to the admission-time key proves the
// run epoch, and an unequal one is reported but never cached.
//
// shape, when non-nil, trims a full cached/computed response down to
// what this particular request asked for (connectivity's labels/forest
// flags); the cache always stores the untrimmed value.
func (s *Server) runCached(w http.ResponseWriter, r *http.Request, t *tenant, job, args string,
	shape func(any) any,
	run func(ctx context.Context, epoch uint64) (hitMarker, uint64, error)) {
	timeout, err := s.parseTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if shape == nil {
		shape = func(v any) any { return v }
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	key := cacheKey{epoch: t.c.Epoch(), job: job, args: args}
	if v, ok := t.cache.get(key); ok {
		w.Header().Set("X-Kmserve-Cache", "hit")
		writeJSON(w, http.StatusOK, shape(v.(hitMarker).hit()))
		return
	}
	// Coalesce concurrent identical misses: one leader runs the job,
	// followers wait (under the same request deadline) and re-check the
	// cache, so a cold expensive answer is computed once, not once per
	// concurrent requester. With caching disabled there is nothing for
	// followers to re-check, so every request runs its own job.
	if t.cache.enabled() {
		waited := false
		for {
			done, leader := t.flight.join(key)
			if leader {
				defer t.flight.leave(key)
				break
			}
			if !waited {
				waited = true
				t.coalesced.Add(1)
			}
			select {
			case <-done:
				if v, ok := t.cache.get(key); ok {
					w.Header().Set("X-Kmserve-Cache", "hit")
					writeJSON(w, http.StatusOK, shape(v.(hitMarker).hit()))
					return
				}
				// The leader failed or its result was not cacheable (a
				// batch raced it): contend for leadership and run.
			case <-ctx.Done():
				jobError(w, ctx.Err())
				return
			}
		}
	}
	if !t.admit(w) {
		return
	}
	defer t.release()
	resp, runEpoch, err := run(ctx, key.epoch)
	if err != nil {
		jobError(w, err)
		return
	}
	if runEpoch == key.epoch {
		t.cache.put(key, resp)
	}
	w.Header().Set("X-Kmserve-Cache", "miss")
	writeJSON(w, http.StatusOK, shape(resp))
}

// connectivityResponse answers connectivity and spanning-tree requests.
// Epoch is exact: the engine stamps every query with the epoch it ran
// at (jobs serialize, so it cannot change mid-query).
type connectivityResponse struct {
	Graph             string     `json:"graph"`
	Epoch             uint64     `json:"epoch"`
	Components        int        `json:"components"`
	Phases            int        `json:"phases"`
	Rounds            int        `json:"rounds"`
	SketchFailures    int64      `json:"sketch_failures"`
	RelabeledVertices int        `json:"relabeled_vertices"`
	Cached            bool       `json:"cached"`
	Labels            []uint64   `json:"labels,omitempty"`
	Forest            []jsonEdge `json:"forest,omitempty"`
}

func (c connectivityResponse) hit() any { c.Cached = true; return c }

// handleConnectivity serves connectivity; with forest=true (the
// spanning-tree endpoint's default) the response carries the forest,
// with labels=true the per-vertex labels. Results are cached per epoch;
// a cached response reports the rounds the original computation cost
// but consumes zero new simulation rounds.
func (s *Server) handleConnectivity(w http.ResponseWriter, r *http.Request) {
	s.serveConnectivity(w, r, boolParam(r, "forest"))
}

func (s *Server) handleSpanningTree(w http.ResponseWriter, r *http.Request) {
	s.serveConnectivity(w, r, true)
}

func (s *Server) serveConnectivity(w http.ResponseWriter, r *http.Request, forest bool) {
	t := s.tenant(w, r)
	if t == nil {
		return
	}
	labels := boolParam(r, "labels")
	// Every variant — /connectivity, ?labels=true, ?forest=true, and
	// /spanning-tree — is the same engine computation, so they all share
	// one cache key per epoch: the full result (labels and forest
	// included, O(n) per graph, current epoch only) is cached once and
	// shaped down to what each request asked for. A cold query is paid
	// exactly once across all variants.
	shape := func(v any) any {
		c := v.(connectivityResponse)
		if !labels {
			c.Labels = nil
		}
		if !forest {
			c.Forest = nil
		}
		return c
	}
	s.runCached(w, r, t, "connectivity", "", shape, func(ctx context.Context, _ uint64) (hitMarker, uint64, error) {
		q, err := t.c.Connectivity(ctx)
		if err != nil {
			return nil, 0, err
		}
		return connectivityResponse{
			Graph:             t.name,
			Epoch:             q.Epoch,
			Components:        q.Components,
			Phases:            q.Phases,
			Rounds:            q.Rounds,
			SketchFailures:    q.SketchFailures,
			RelabeledVertices: q.RelabeledVertices,
			Labels:            q.Labels,
			Forest:            toJSONEdges(q.Forest),
		}, q.Epoch, nil
	})
}

// mstResponse answers MST requests. Epoch is the freshest epoch
// observed for this answer; it equals the true run epoch whenever no
// batch raced the request (and only such answers are cached).
type mstResponse struct {
	Graph       string     `json:"graph"`
	Epoch       uint64     `json:"epoch"`
	TotalWeight int64      `json:"total_weight"`
	EdgeCount   int        `json:"edge_count"`
	Phases      int        `json:"phases"`
	Rounds      int        `json:"rounds"`
	Cached      bool       `json:"cached"`
	Edges       []jsonEdge `json:"edges,omitempty"`
}

func (m mstResponse) hit() any { m.Cached = true; return m }

func (s *Server) handleMST(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(w, r)
	if t == nil {
		return
	}
	strong := boolParam(r, "strong")
	edges := boolParam(r, "edges")
	// strong changes the engine computation (Theorem 2(b) dissemination)
	// and so forks the cache key; edges is pure output shaping, handled
	// like connectivity's labels/forest — the full edge list is cached
	// once per (epoch, strong) and trimmed per request.
	shape := func(v any) any {
		m := v.(mstResponse)
		if !edges {
			m.Edges = nil
		}
		return m
	}
	args := fmt.Sprintf("strong=%t", strong)
	s.runCached(w, r, t, "mst", args, shape, func(ctx context.Context, _ uint64) (hitMarker, uint64, error) {
		var opts []kmgraph.MSTOption
		if strong {
			opts = append(opts, kmgraph.StrongOutput())
		}
		res, err := t.c.MST(ctx, opts...)
		if err != nil {
			return nil, 0, err
		}
		runEpoch := t.c.Epoch()
		return mstResponse{
			Graph:       t.name,
			Epoch:       runEpoch,
			TotalWeight: res.TotalWeight,
			EdgeCount:   len(res.Edges),
			Phases:      res.Phases,
			Rounds:      res.Metrics.Rounds,
			Edges:       toJSONEdges(res.Edges),
		}, runEpoch, nil
	})
}

// mincutResponse answers approximate min-cut requests (Epoch semantics
// as in mstResponse).
type mincutResponse struct {
	Graph    string  `json:"graph"`
	Epoch    uint64  `json:"epoch"`
	Estimate float64 `json:"estimate"`
	Level    int     `json:"level"`
	Runs     int     `json:"runs"`
	Rounds   int     `json:"rounds"`
	Cached   bool    `json:"cached"`
}

func (m mincutResponse) hit() any { m.Cached = true; return m }

func (s *Server) handleMinCut(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(w, r)
	if t == nil {
		return
	}
	trials, err := intParam(r, "trials", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	maxLevel, err := intParam(r, "maxlevel", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	args := fmt.Sprintf("trials=%d&maxlevel=%d", trials, maxLevel)
	s.runCached(w, r, t, "mincut", args, nil, func(ctx context.Context, _ uint64) (hitMarker, uint64, error) {
		var opts []kmgraph.MinCutOption
		if trials > 0 {
			opts = append(opts, kmgraph.WithTrials(trials))
		}
		if maxLevel > 0 {
			opts = append(opts, kmgraph.WithMaxLevel(maxLevel))
		}
		res, err := t.c.ApproxMinCut(ctx, opts...)
		if err != nil {
			return nil, 0, err
		}
		runEpoch := t.c.Epoch()
		return mincutResponse{
			Graph:    t.name,
			Epoch:    runEpoch,
			Estimate: res.Estimate,
			Level:    res.Level,
			Runs:     res.Runs,
			Rounds:   res.Rounds,
		}, runEpoch, nil
	})
}

// verifyRequest is the POST /graphs/{name}/verify body.
type verifyRequest struct {
	// Problem is one of: scs, cut, stconn, allpaths, stcut, bipartite,
	// cycle, ecycle.
	Problem string     `json:"problem"`
	H       []jsonEdge `json:"h,omitempty"`
	Cut     []jsonEdge `json:"cut,omitempty"`
	S       int        `json:"s,omitempty"`
	T       int        `json:"t,omitempty"`
	E       *jsonEdge  `json:"e,omitempty"`
}

var problemByName = map[string]kmgraph.Problem{
	"scs":       kmgraph.ProblemSpanningConnectedSubgraph,
	"cut":       kmgraph.ProblemCut,
	"stconn":    kmgraph.ProblemSTConnectivity,
	"allpaths":  kmgraph.ProblemEdgeOnAllPaths,
	"stcut":     kmgraph.ProblemSTCut,
	"bipartite": kmgraph.ProblemBipartiteness,
	"cycle":     kmgraph.ProblemCycleContainment,
	"ecycle":    kmgraph.ProblemECycleContainment,
}

// verifyResponse answers verification requests (Epoch semantics as in
// mstResponse).
type verifyResponse struct {
	Graph   string `json:"graph"`
	Epoch   uint64 `json:"epoch"`
	Problem string `json:"problem"`
	Holds   bool   `json:"holds"`
	Runs    int    `json:"runs"`
	Rounds  int    `json:"rounds"`
	Cached  bool   `json:"cached"`
}

func (v verifyResponse) hit() any { v.Cached = true; return v }

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(w, r)
	if t == nil {
		return
	}
	var req verifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	p, ok := problemByName[req.Problem]
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown problem %q", req.Problem)
		return
	}
	args := kmgraph.VerifyArgs{
		H:   fromJSONEdges(req.H),
		Cut: fromJSONEdges(req.Cut),
		S:   req.S,
		T:   req.T,
	}
	if req.E != nil {
		args.E = kmgraph.Edge{U: req.E.U, V: req.E.V, W: req.E.W}
	}
	// The canonical args key is the normalized request itself.
	rawKey, _ := json.Marshal(req)
	s.runCached(w, r, t, "verify", string(rawKey), nil, func(ctx context.Context, _ uint64) (hitMarker, uint64, error) {
		out, err := t.c.Verify(ctx, p, args)
		if err != nil {
			return nil, 0, err
		}
		runEpoch := t.c.Epoch()
		return verifyResponse{
			Graph:   t.name,
			Epoch:   runEpoch,
			Problem: req.Problem,
			Holds:   out.Holds,
			Runs:    out.Runs,
			Rounds:  out.Rounds,
		}, runEpoch, nil
	})
}

// batchRequest is the POST /graphs/{name}/batch body.
type batchRequest struct {
	Ops []jsonOp `json:"ops"`
}

// jsonOp is one dynamic edge operation.
type jsonOp struct {
	U   int   `json:"u"`
	V   int   `json:"v"`
	W   int64 `json:"w,omitempty"`
	Del bool  `json:"del,omitempty"`
}

// batchResponse reports one applied batch.
type batchResponse struct {
	Graph           string `json:"graph"`
	Epoch           uint64 `json:"epoch"` // epoch after the batch
	Ops             int    `json:"ops"`
	Applied         int    `json:"applied"`
	RejectedInserts int    `json:"rejected_inserts"`
	RejectedDeletes int    `json:"rejected_deletes"`
	RejectedInvalid int    `json:"rejected_invalid"`
	Rounds          int    `json:"rounds"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(w, r)
	if t == nil {
		return
	}
	timeout, err := s.parseTimeout(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	ops := make([]kmgraph.EdgeOp, len(req.Ops))
	for i, op := range req.Ops {
		wt := op.W
		if wt == 0 && !op.Del {
			wt = 1
		}
		ops[i] = kmgraph.EdgeOp{U: op.U, V: op.V, W: wt, Del: op.Del}
	}
	if !t.admit(w) {
		return
	}
	defer t.release()
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	br, err := t.c.ApplyBatch(ctx, ops)
	if err != nil {
		jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{
		Graph:           t.name,
		Epoch:           br.Epoch, // exact: stamped while the batch held the job slot
		Ops:             br.Ops,
		Applied:         br.Applied,
		RejectedInserts: br.RejectedInserts,
		RejectedDeletes: br.RejectedDeletes,
		RejectedInvalid: br.RejectedInvalid,
		Rounds:          br.Rounds,
	})
}

// metricsResponse is the per-graph observability snapshot.
type metricsResponse struct {
	Graph       string `json:"graph"`
	N           int    `json:"n"`
	K           int    `json:"k"`
	Edges       int    `json:"edges"`
	Epoch       uint64 `json:"epoch"`
	LoadRounds  int    `json:"load_rounds"`
	TotalRounds int    `json:"total_rounds"`
	Jobs        int    `json:"jobs"`
	Batches     int    `json:"batches"`
	Queries     int    `json:"queries"`
	Queued      int    `json:"queued"`
	Running     int    `json:"running"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheSize   int    `json:"cache_size"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(w, r)
	if t == nil {
		return
	}
	met := t.c.Metrics()
	queued, running := t.c.Queue()
	hits, misses, size := t.cache.stats()
	writeJSON(w, http.StatusOK, metricsResponse{
		Graph:       t.name,
		N:           t.c.N(),
		K:           t.c.K(),
		Edges:       met.Edges,
		Epoch:       met.Epoch,
		LoadRounds:  met.LoadRounds,
		TotalRounds: met.Total.Rounds,
		Jobs:        met.Jobs,
		Batches:     met.Batches,
		Queries:     met.Queries,
		Queued:      queued,
		Running:     running,
		CacheHits:   hits,
		CacheMisses: misses,
		CacheSize:   size,
	})
}
