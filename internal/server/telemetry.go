package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"kmgraph"
	"kmgraph/internal/telemetry"
)

// This file is the server's observability wiring: the Prometheus
// registry behind GET /metrics, the per-endpoint request funnel, the
// per-graph engine-job funnel fed by Observer events, the per-tenant
// trace buffer behind GET /graphs/{name}/trace, and GET /version.

// maxTraceEvents bounds each tenant's retained trace buffer (oldest job
// spans are dropped past it), so a long-lived server holds the recent
// jobs' spans, not the whole session's.
const maxTraceEvents = 4096

// Registry returns the server's metrics registry, for embedders that
// want to add their own series to the same GET /metrics exposition.
func (s *Server) Registry() *telemetry.Registry { return s.registry }

// graphObs funnels one named graph's engine Observer events into the
// registry and the tenant's trace buffer. It is created by JobObserver
// (possibly before the cluster exists — kmserve wires the observer into
// OpenCluster, so load-phase events are captured too) and linked to the
// tenant at Register.
type graphObs struct {
	name   string
	srv    *Server
	tracer *telemetry.JobTracer

	mu   sync.Mutex
	open map[int]time.Time  // job seq -> start wall time
	jobs map[int]*jobRecord // job seq -> live progress (see jobs.go)
}

// JobObserver returns (creating if needed) the observer hook for the
// named graph, to be passed as kmgraph.WithObserver when constructing
// the cluster that will be Registered under the same name. Events flow
// into the engine-job metrics (durations, rounds, messages, bytes by
// job family) and the graph's trace buffer.
func (s *Server) JobObserver(name string) func(kmgraph.ClusterEvent) {
	o := s.obsFor(name)
	return o.observe
}

func (s *Server) obsFor(name string) *graphObs {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	if o, ok := s.obs[name]; ok {
		return o
	}
	tr := telemetry.NewJobTracer()
	tr.SetMaxEvents(maxTraceEvents)
	o := &graphObs{name: name, srv: s, tracer: tr, open: make(map[int]time.Time)}
	s.obs[name] = o
	return o
}

// dropObs forgets a graph's observer state (unload/Close).
func (s *Server) dropObs(name string) {
	s.obsMu.Lock()
	delete(s.obs, name)
	s.obsMu.Unlock()
}

func (o *graphObs) observe(ev kmgraph.ClusterEvent) {
	o.tracer.Observer()(ev)
	o.trackJob(ev)
	reg := o.srv.registry
	graph := telemetry.Label{Name: "graph", Value: o.name}
	job := telemetry.Label{Name: "job", Value: ev.Job}
	switch {
	case ev.Phase < 0 && !ev.Done:
		o.mu.Lock()
		o.open[ev.Seq] = time.Now()
		o.mu.Unlock()

	case ev.Done:
		status := "ok"
		if ev.Err != "" {
			status = "error"
		}
		reg.Counter("kmgraph_jobs_total",
			"Engine jobs completed, by graph, job family, and outcome.",
			graph, job, telemetry.Label{Name: "status", Value: status}).Inc()
		o.mu.Lock()
		start, ok := o.open[ev.Seq]
		delete(o.open, ev.Seq)
		o.mu.Unlock()
		if ok {
			reg.Histogram("kmgraph_job_seconds",
				"Engine job wall-clock duration in seconds.",
				graph, job).Observe(time.Since(start).Seconds())
		}
		if ev.Delta != nil {
			reg.Counter("kmgraph_job_rounds_total",
				"Engine rounds consumed by completed jobs.",
				graph, job).Add(int64(ev.Delta.Rounds))
			reg.Counter("kmgraph_job_messages_total",
				"Engine messages sent by completed jobs.",
				graph, job).Add(ev.Delta.Messages)
			reg.Counter("kmgraph_job_payload_bytes_total",
				"Engine payload bytes sent by completed jobs.",
				graph, job).Add(ev.Delta.PayloadBytes)
		}
	}
}

// registerTenantMetrics wires the scrape-time series of one registered
// graph: admission-queue depth, running jobs, epoch, cache hit/miss
// counters, coalesced followers, and 429 sheds. All are read live from
// the tenant at scrape; DropLabeled unregisters them at unload.
func (s *Server) registerTenantMetrics(t *tenant) {
	g := telemetry.Label{Name: "graph", Value: t.name}
	s.registry.GaugeFunc("kmserve_queue_depth",
		"Jobs queued on the graph's admission semaphore.",
		func() float64 { q, _ := t.c.Queue(); return float64(q) }, g)
	s.registry.GaugeFunc("kmserve_running_jobs",
		"Jobs currently running on the graph (0 or 1).",
		func() float64 { _, r := t.c.Queue(); return float64(r) }, g)
	s.registry.GaugeFunc("kmserve_graph_epoch",
		"The graph's mutation epoch (bumped by every effective batch).",
		func() float64 { return float64(t.c.Epoch()) }, g)
	s.registry.CounterFunc("kmserve_cache_hits_total",
		"Result-cache hits served for the graph.",
		func() float64 { h, _, _ := t.cache.stats(); return float64(h) }, g)
	s.registry.CounterFunc("kmserve_cache_misses_total",
		"Result-cache misses for the graph.",
		func() float64 { _, m, _ := t.cache.stats(); return float64(m) }, g)
	s.registry.CounterFunc("kmserve_cache_coalesced_total",
		"Requests that waited behind an identical in-flight request.",
		func() float64 { return float64(t.coalesced.Load()) }, g)
	s.registry.CounterFunc("kmserve_shed_total",
		"Requests refused with 429 by the graph's admission queue.",
		func() float64 { return float64(t.shed.Load()) }, g)
	s.registry.CounterFunc("kmgraph_observer_panics_total",
		"Recovered panics out of the graph's observer hook.",
		func() float64 { return float64(t.c.Metrics().ObserverPanics) }, g)
}

// handlePrometheus serves the whole registry in Prometheus text
// exposition format.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.registry.WritePrometheus(w)
}

// versionResponse is the GET /version body.
type versionResponse struct {
	Module    string `json:"module"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
	BuildTime string `json:"build_time,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

// handleVersion reports the build's identity for deploy tooling: module
// path, Go toolchain, and the VCS revision stamped by `go build` (absent
// under `go test` or when built outside a checkout).
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	resp := versionResponse{Module: "unknown", GoVersion: "unknown", Revision: "unknown"}
	if bi, ok := debug.ReadBuildInfo(); ok {
		resp.Module = bi.Main.Path
		if resp.Module == "" {
			resp.Module = bi.Path
		}
		resp.GoVersion = bi.GoVersion
		for _, st := range bi.Settings {
			switch st.Key {
			case "vcs.revision":
				resp.Revision = st.Value
			case "vcs.time":
				resp.BuildTime = st.Value
			case "vcs.modified":
				resp.Dirty = st.Value == "true"
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace serves a graph's recent job spans as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing), ordered by start
// timestamp. The buffer holds the most recent maxTraceEvents spans;
// events are recorded in job-completion order, so once the buffer has
// trimmed, arrival order no longer matches time order for overlapping
// jobs — hence the sorted snapshot. The X-Kmserve-Trace-Dropped header
// reports how many older spans the trim discarded (0 = the trace is
// complete).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t := s.tenant(w, r)
	if t == nil {
		return
	}
	o := s.obsFor(t.name)
	w.Header().Set("X-Kmserve-Trace-Dropped", strconv.Itoa(o.tracer.Dropped()))
	w.Header().Set("X-Kmserve-Trace-Limit", strconv.Itoa(maxTraceEvents))
	writeJSON(w, http.StatusOK, o.tracer.SnapshotSorted())
}

// newRequestID mints a 16-hex-char request identifier.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ridKey carries the request ID through the request context — and from
// there into every job the request runs, since job contexts derive from
// the request's.
type ridKey struct{}

// RequestIDFromContext returns the request ID threaded through ctx, or
// "" outside a server request (job contexts carry it: they derive from
// the request context).
func RequestIDFromContext(ctx context.Context) string {
	v, _ := ctx.Value(ridKey{}).(string)
	return v
}
