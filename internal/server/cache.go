package server

import (
	"container/list"
	"sync"
)

// resultCache is a per-graph LRU of finished job results keyed on
// (graph epoch, job family, canonical args). The epoch is part of the
// key, so a mutation (ApplyBatch bumping the cluster epoch) implicitly
// invalidates every cached answer: lookups at the new epoch miss, and
// stale entries age out of the LRU. Entries are stored only for jobs
// that ran entirely within one epoch (the caller re-checks the epoch
// after the job), which is what makes a hit exactly equivalent to
// re-running the job — zero simulation rounds included.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used

	hits, misses uint64
}

type cacheKey struct {
	epoch uint64
	job   string
	args  string
}

type cacheEntry struct {
	key cacheKey
	val any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[cacheKey]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached result for key, if present.
func (c *resultCache) get(key cacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores val under key, evicting the least recently used entry past
// capacity, and prunes every entry from epochs before key's — those
// keys can never hit again (the epoch is monotone), and on large graphs
// a stale entry can pin O(n) of labels and forest edges.
func (c *resultCache) put(key cacheKey, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var stale []*list.Element
	for el := c.order.Back(); el != nil; el = el.Prev() {
		if el.Value.(*cacheEntry).key.epoch < key.epoch {
			stale = append(stale, el)
		}
	}
	for _, el := range stale {
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
	}
}

// stats returns cumulative hit/miss counters and the live entry count.
func (c *resultCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}

// enabled reports whether this cache stores anything (capacity > 0);
// miss coalescing is pointless when results are never stored.
func (c *resultCache) enabled() bool { return c.cap > 0 }

// flightGroup coalesces concurrent misses on one cache key: the first
// caller becomes the leader and runs the job; followers wait for the
// leader to finish, then re-check the cache — so a cold, expensive
// answer is computed once, not once per concurrent requester.
type flightGroup struct {
	mu sync.Mutex
	m  map[cacheKey]chan struct{}
}

// join registers interest in key. The first caller is the leader
// (leader == true) and must call leave(key) when done; followers get
// the leader's done channel to wait on.
func (g *flightGroup) join(key cacheKey) (done chan struct{}, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[cacheKey]chan struct{})
	}
	if ch, ok := g.m[key]; ok {
		return ch, false
	}
	ch := make(chan struct{})
	g.m[key] = ch
	return ch, true
}

// leave releases leadership of key and wakes every follower.
func (g *flightGroup) leave(key cacheKey) {
	g.mu.Lock()
	ch := g.m[key]
	delete(g.m, key)
	g.mu.Unlock()
	close(ch)
}
