package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"kmgraph"
)

// newObservedServer is newTestServer with the observer wired through
// JobObserver, the way kmserve constructs clusters, so engine-job
// series and the trace buffer are fed.
func newObservedServer(t *testing.T, cfg Config, name string, g *kmgraph.Graph, k int, seed int64) (*Server, string) {
	t.Helper()
	s := New(cfg)
	c, err := kmgraph.NewCluster(g,
		kmgraph.WithK(k), kmgraph.WithSeed(seed),
		kmgraph.WithObserver(s.JobObserver(name)),
		kmgraph.WithPhaseMetrics())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if err := s.Register(name, c); err != nil {
		t.Fatalf("Register: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts.URL
}

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type: %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// sampleValue extracts one sample's value from an exposition body, -1
// if the sample is absent.
func sampleValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			v, err := strconv.ParseFloat(line[len(sample)+1:], 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return -1
}

func TestMetricsEndpointExposesServerAndEngineSeries(t *testing.T) {
	g := kmgraph.GNM(300, 900, 3)
	_, base := newObservedServer(t, Config{}, "g", g, 4, 7)

	getJSONurl(t, base+"/graphs/g/connectivity")

	body := scrape(t, base)
	// Server-side: per-endpoint request counters and latency histograms.
	if v := sampleValue(t, body, `kmserve_requests_total{code="200",endpoint="connectivity"}`); v != 1 {
		t.Errorf("request counter: %v\n%s", v, body)
	}
	if v := sampleValue(t, body, `kmserve_request_seconds_count{endpoint="connectivity"}`); v != 1 {
		t.Errorf("latency histogram count: %v", v)
	}
	if !strings.Contains(body, `kmserve_request_seconds_bucket{endpoint="connectivity",le="+Inf"}`) {
		t.Error("latency histogram buckets missing")
	}
	// Engine-side: job counters fed by the observer (load + connectivity).
	if v := sampleValue(t, body, `kmgraph_jobs_total{graph="g",job="connectivity",status="ok"}`); v != 1 {
		t.Errorf("engine job counter: %v", v)
	}
	if v := sampleValue(t, body, `kmgraph_job_rounds_total{graph="g",job="connectivity"}`); v <= 0 {
		t.Errorf("engine round counter: %v", v)
	}
	// Tenant gauges and process series are present.
	for _, sample := range []string{
		`kmserve_queue_depth{graph="g"}`,
		`kmserve_graph_epoch{graph="g"}`,
		"kmserve_graphs",
		"process_max_resident_memory_bytes",
		"go_goroutines",
	} {
		if v := sampleValue(t, body, sample); v < 0 {
			t.Errorf("sample %s missing", sample)
		}
	}
}

// TestCacheCountersAcrossIdenticalQueries is the CI smoke assertion in
// test form: the first query misses, the identical second one hits, and
// both transitions are visible in the exposition.
func TestCacheCountersAcrossIdenticalQueries(t *testing.T) {
	g := kmgraph.GNM(300, 900, 3)
	_, base := newObservedServer(t, Config{CacheEntries: 16}, "g", g, 4, 7)

	getJSONurl(t, base+"/graphs/g/connectivity")
	after1 := scrape(t, base)
	hits1 := sampleValue(t, after1, `kmserve_cache_hits_total{graph="g"}`)
	misses1 := sampleValue(t, after1, `kmserve_cache_misses_total{graph="g"}`)
	if misses1 != 1 || hits1 != 0 {
		t.Fatalf("after first query: hits=%v misses=%v", hits1, misses1)
	}

	getJSONurl(t, base+"/graphs/g/connectivity")
	after2 := scrape(t, base)
	hits2 := sampleValue(t, after2, `kmserve_cache_hits_total{graph="g"}`)
	if hits2 != hits1+1 {
		t.Fatalf("identical second query did not increment cache hits: %v -> %v", hits1, hits2)
	}
	if m := sampleValue(t, after2, `kmserve_cache_misses_total{graph="g"}`); m != misses1 {
		t.Fatalf("second query missed: %v -> %v", misses1, m)
	}
}

func TestUnloadDropsGraphSeries(t *testing.T) {
	g := kmgraph.GNM(200, 600, 3)
	s, base := newObservedServer(t, Config{AllowLoad: true}, "g", g, 4, 7)
	_ = s

	getJSONurl(t, base+"/graphs/g/connectivity")
	req, _ := http.NewRequest(http.MethodDelete, base+"/graphs/g", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if body := scrape(t, base); strings.Contains(body, `graph="g"`) {
		t.Errorf("per-graph series survive unload:\n%s", body)
	}
}

func TestVersionEndpoint(t *testing.T) {
	g := kmgraph.GNM(100, 300, 3)
	_, ts := newTestServer(t, Config{}, "g", g, 4, 7)
	var v struct {
		Module    string `json:"module"`
		GoVersion string `json:"go_version"`
		Revision  string `json:"revision"`
	}
	getJSON(t, ts.URL+"/version", http.StatusOK, &v)
	if v.Module == "" || v.GoVersion == "" || v.Revision == "" {
		t.Errorf("version fields empty: %+v", v)
	}
}

func TestTraceEndpointServesJobSpans(t *testing.T) {
	g := kmgraph.GNM(300, 900, 3)
	_, base := newObservedServer(t, Config{}, "g", g, 4, 7)
	getJSONurl(t, base+"/graphs/g/connectivity")

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	resp, err := http.Get(base + "/graphs/g/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit: %q", doc.DisplayTimeUnit)
	}
	var jobs, phases int
	for _, ev := range doc.TraceEvents {
		switch ev.Cat {
		case "job":
			jobs++
		case "phase":
			phases++
		}
	}
	if jobs < 2 { // load + connectivity
		t.Errorf("job spans: %d, want >= 2", jobs)
	}
	if phases == 0 {
		t.Error("no phase spans (PhaseMetrics wired?)")
	}
}

func TestRequestIDEchoedAndPropagated(t *testing.T) {
	g := kmgraph.GNM(100, 300, 3)
	_, ts := newTestServer(t, Config{}, "g", g, 4, 7)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); len(id) != 16 {
		t.Errorf("minted request id: %q", id)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-chosen-id")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id := resp2.Header.Get("X-Request-Id"); id != "caller-chosen-id" {
		t.Errorf("request id not propagated: %q", id)
	}
}

// getJSONurl GETs url expecting 200, discarding the body.
func getJSONurl(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
}
