package server

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kmgraph/internal/core"
	"kmgraph/internal/dist"
	"kmgraph/internal/graph"
)

// startFleetWorker launches one in-process dist worker and returns it
// with its dialable address.
func startFleetWorker(t *testing.T) (*dist.Worker, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := dist.NewWorker(ln, dist.WorkerOptions{
		MeshTimeout:       30 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
	})
	go w.Serve()
	t.Cleanup(func() { w.Close() })
	return w, w.Addr()
}

// newFleetServer registers a fleet of live workers over a gnm source
// and returns the serving front end plus the fleet-local golden.
func newFleetServer(t *testing.T, name string, workers int) (*Server, *httptest.Server, *core.Result) {
	t.Helper()
	const (
		n, m = 4000, 12000
		gs   = int64(3)
		k    = 4
		seed = int64(9)
	)
	cfg := core.Config{K: k, Seed: seed}
	golden, err := core.RunSource(graph.StreamGNM(n, m, gs), cfg)
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	addrs := make([]string, workers)
	for i := range addrs {
		_, addrs[i] = startFleetWorker(t)
	}
	s := New(Config{})
	err = s.RegisterFleet(name, FleetSpec{
		Source: fmt.Sprintf("gnm:%d:%d:%d", n, m, gs),
		Addrs:  addrs,
		Conn:   cfg,
		Coord: dist.CoordOptions{
			Retry: dist.RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatalf("RegisterFleet: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, golden
}

func TestFleetConnectivityMatchesLocal(t *testing.T) {
	_, ts, golden := newFleetServer(t, "web", 2)

	var out struct {
		Graph      string `json:"graph"`
		Components int    `json:"components"`
		Rounds     int    `json:"rounds"`
		Cached     bool   `json:"cached"`
	}
	resp := getJSON(t, ts.URL+"/fleet/web/connectivity", http.StatusOK, &out)
	if out.Components != golden.Components {
		t.Errorf("components = %d, want %d", out.Components, golden.Components)
	}
	if out.Rounds != golden.Metrics.Rounds {
		t.Errorf("rounds = %d, want %d (distributed run not bit-identical)", out.Rounds, golden.Metrics.Rounds)
	}
	if out.Cached || resp.Header.Get("X-Kmserve-Cache") != "miss" {
		t.Errorf("first request: cached=%v header=%q, want fresh miss", out.Cached, resp.Header.Get("X-Kmserve-Cache"))
	}

	// Fleet graphs are immutable: the second request must be a hit.
	resp = getJSON(t, ts.URL+"/fleet/web/connectivity", http.StatusOK, &out)
	if !out.Cached || resp.Header.Get("X-Kmserve-Cache") != "hit" {
		t.Errorf("second request: cached=%v header=%q, want cache hit", out.Cached, resp.Header.Get("X-Kmserve-Cache"))
	}

	var info fleetInfo
	getJSON(t, ts.URL+"/fleet/web", http.StatusOK, &info)
	if info.State != "healthy" || len(info.Workers) != 2 {
		t.Errorf("info = %+v, want healthy with 2 workers", info)
	}
}

func TestFleetDownSheds503(t *testing.T) {
	// A listener that is opened and immediately closed yields an address
	// with nothing behind it: every probe and dial fails fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	s := New(Config{})
	err = s.RegisterFleet("ghost", FleetSpec{
		Source: "gnm:1000:3000:1",
		Addrs:  []string{dead},
		Conn:   core.Config{K: 2, Seed: 1},
	})
	if err != nil {
		t.Fatalf("RegisterFleet: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	resp, err := http.Get(ts.URL + "/fleet/ghost/connectivity")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}

	var info fleetInfo
	getJSON(t, ts.URL+"/fleet/ghost", http.StatusServiceUnavailable, &info)
	if info.State != "down" {
		t.Errorf("state = %q, want down", info.State)
	}
}

func TestFleetStateOnMetrics(t *testing.T) {
	_, ts, _ := newFleetServer(t, "web", 2)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	nr, _ := resp.Body.Read(buf)
	body := string(buf[:nr])
	want := `kmserve_graph_state{graph="web"} 2`
	if !strings.Contains(body, want) {
		t.Errorf("metrics exposition missing %q", want)
	}
	if !strings.Contains(body, `kmserve_fleet_workers_up{graph="web"} 2`) {
		t.Errorf("metrics exposition missing workers-up gauge")
	}
}

// TestFleetDegradesAndRecovers walks the full degradation arc: a lost
// worker turns job requests into 503 + Retry-After (not hangs, not
// 500s), and once a replacement worker is listening again the same
// endpoint serves the golden result with no server restart.
func TestFleetDegradesAndRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed recovery test")
	}
	const (
		n, m = 4000, 12000
		gs   = int64(3)
		k    = 4
		seed = int64(9)
	)
	cfg := core.Config{K: k, Seed: seed}
	golden, err := core.RunSource(graph.StreamGNM(n, m, gs), cfg)
	if err != nil {
		t.Fatalf("golden: %v", err)
	}

	w1, a1 := startFleetWorker(t)
	_, a2 := startFleetWorker(t)

	s := New(Config{})
	err = s.RegisterFleet("web", FleetSpec{
		Source: fmt.Sprintf("gnm:%d:%d:%d", n, m, gs),
		Addrs:  []string{a1, a2},
		Conn:   cfg,
		Coord: dist.CoordOptions{
			HeartbeatTimeout: 5 * time.Second,
			Retry:            dist.RetryPolicy{Attempts: 2, Backoff: 50 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatalf("RegisterFleet: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	// Lose a worker: the job fails link-down after its retry budget and
	// the endpoint degrades to 503 + Retry-After.
	w1.Close()
	resp, err := http.Get(ts.URL + "/fleet/web/connectivity")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("with dead worker: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 without Retry-After header")
	}

	// A replacement worker on the same address restores service; no
	// server-side intervention needed.
	ln, err := net.Listen("tcp", a1)
	if err != nil {
		t.Fatalf("relisten on %s: %v", a1, err)
	}
	w := dist.NewWorker(ln, dist.WorkerOptions{
		MeshTimeout:       30 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
	})
	go w.Serve()
	t.Cleanup(func() { w.Close() })

	var out struct {
		Components int `json:"components"`
		Rounds     int `json:"rounds"`
	}
	getJSON(t, ts.URL+"/fleet/web/connectivity", http.StatusOK, &out)
	if out.Components != golden.Components || out.Rounds != golden.Metrics.Rounds {
		t.Errorf("recovered result = %d components / %d rounds, want %d / %d",
			out.Components, out.Rounds, golden.Components, golden.Metrics.Rounds)
	}
}

// TestFleetTraceAndRoundGauges pins the fleet observability wiring: a
// fleet job feeds the per-worker round gauges (previously the heartbeat
// round counts were decoded and discarded) and leaves an assembled
// cross-process trace behind GET /fleet/{name}/trace with one pid per
// worker whose span round sums telescope to the job's merged rounds.
func TestFleetTraceAndRoundGauges(t *testing.T) {
	_, ts, golden := newFleetServer(t, "web", 2)

	var out struct {
		Rounds int `json:"rounds"`
	}
	getJSON(t, ts.URL+"/fleet/web/connectivity", http.StatusOK, &out)
	if out.Rounds != golden.Metrics.Rounds {
		t.Fatalf("rounds = %d, want %d", out.Rounds, golden.Metrics.Rounds)
	}

	var trace struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	resp := getJSON(t, ts.URL+"/fleet/web/trace", http.StatusOK, &trace)
	if id := resp.Header.Get("X-Kmserve-Trace-Id"); id == "" || id == strings.Repeat("0", 16) {
		t.Errorf("trace id header = %q, want a minted id", id)
	}
	perPid := map[int]float64{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if r, ok := ev.Args["rounds"].(float64); ok {
			perPid[ev.Pid] += r
		}
	}
	if len(perPid) != 2 {
		t.Fatalf("trace span pids = %v, want one per worker", perPid)
	}
	for pid, sum := range perPid {
		if int(sum) != golden.Metrics.Rounds {
			t.Errorf("pid %d span rounds sum to %v, want %d", pid, sum, golden.Metrics.Rounds)
		}
	}

	// The heartbeat round counts surface as per-worker gauges.
	body := scrape(t, ts.URL)
	for w := 0; w < 2; w++ {
		sample := fmt.Sprintf(`kmserve_fleet_job_rounds{graph="web",worker="%d"}`, w)
		if v := sampleValue(t, body, sample); v <= 0 {
			t.Errorf("%s = %v, want > 0 after a fleet job", sample, v)
		}
	}
}
