package experiments

import (
	"math"

	"math/rand"

	"kmgraph/internal/baseline"
	"kmgraph/internal/core"
	"kmgraph/internal/drr"
	"kmgraph/internal/graph"
	"kmgraph/internal/stats"
)

// E1: Theorem 1 — connectivity rounds vs k. The sketch algorithm should
// scale like k^-2; the edge-check, flooding, and referee baselines like
// k^-1 (or worse). Slopes are fitted on the small-k range where the n/k²
// term dominates the additive polylog floor that Õ(·) hides.
func E1() Experiment {
	return Experiment{
		ID:       "E1",
		Title:    "Connectivity rounds vs k (sketch vs baselines)",
		PaperRef: "Theorem 1; §1.2 flooding/referee discussion",
		Run: func(p Params) ([]*stats.Table, error) {
			n, ks := 2048, []int{2, 3, 4, 6, 8, 12, 16}
			if p.Quick {
				n, ks = 512, []int{2, 4, 8}
			}
			g := graph.GNM(n, 3*n, p.Seed+5)
			tb := stats.NewTable("E1: connectivity rounds vs k (n="+stats.I(n)+", m="+stats.I(3*n)+")",
				"k", "sketch", "edge-check", "flooding", "referee")
			series := map[string][]float64{}
			kf := make([]float64, 0, len(ks))
			for _, k := range ks {
				kf = append(kf, float64(k))
				row := []string{stats.I(k)}
				for _, algo := range []string{"sketch", "edge-check", "flooding", "referee"} {
					algo := algo
					mean, err := meanOver(p.trials(), p.Seed, func(seed int64) (float64, error) {
						switch algo {
						case "sketch":
							r, err := core.Run(g, core.Config{K: k, Seed: seed})
							if err != nil {
								return 0, err
							}
							return float64(r.Metrics.Rounds), nil
						case "edge-check":
							r, err := core.Run(g, core.Config{K: k, Seed: seed, EdgeCheckSelection: true})
							if err != nil {
								return 0, err
							}
							return float64(r.Metrics.Rounds), nil
						case "flooding":
							r, err := baseline.Flooding(g, baseline.Config{K: k, Seed: seed})
							if err != nil {
								return 0, err
							}
							return float64(r.Metrics.Rounds), nil
						default:
							r, err := baseline.Referee(g, baseline.Config{K: k, Seed: seed})
							if err != nil {
								return 0, err
							}
							return float64(r.Metrics.Rounds), nil
						}
					})
					if err != nil {
						return nil, err
					}
					series[algo] = append(series[algo], mean)
					row = append(row, stats.F(mean))
				}
				tb.AddRow(row...)
			}
			// Fit on the dominated range (k <= 8). For the sketch algorithm
			// also fit after subtracting the additive per-phase barrier
			// floor (the "+polylog" term of Õ; estimated by the largest-k
			// measurement, where the n/k² volume term is negligible).
			cut := 0
			for i, k := range ks {
				if k <= 8 {
					cut = i + 1
				}
			}
			for _, algo := range []string{"sketch", "edge-check", "flooding", "referee"} {
				slope, _ := stats.FitPowerLaw(kf[:cut], series[algo][:cut])
				tb.AddNote("%s slope (k<=8): %.2f", algo, slope)
			}
			floor := series["sketch"][len(series["sketch"])-1]
			var vol []float64
			for _, r := range series["sketch"][:cut] {
				vol = append(vol, r-floor)
			}
			vslope, _ := stats.FitPowerLaw(kf[:cut], vol)
			tb.AddNote("sketch volume slope after subtracting the k=%d floor (%.0f rounds): %.2f",
				ks[len(ks)-1], floor, vslope)
			tb.AddNote("paper: sketch ~ n/k^2 + polylog additive term (Thm 1), referee ~ k^-1, flooding ~ n/k + D")

			// Second regime: a path graph, where flooding pays Θ(D) = Θ(n)
			// regardless of k while the sketch algorithm is oblivious to
			// diameter — the crossover the paper's §1.2 discussion implies.
			np := n / 2
			pg := graph.Path(np)
			tb2 := stats.NewTable("E1b: high-diameter regime, Path(n="+stats.I(np)+")",
				"k", "sketch", "flooding")
			for _, k := range []int{4, 16} {
				sk, err := core.Run(pg, core.Config{K: k, Seed: p.Seed})
				if err != nil {
					return nil, err
				}
				fl, err := baseline.Flooding(pg, baseline.Config{K: k, Seed: p.Seed})
				if err != nil {
					return nil, err
				}
				tb2.AddRow(stats.I(k), stats.I(sk.Metrics.Rounds), stats.I(fl.Metrics.Rounds))
			}
			tb2.AddNote("flooding needs Θ(D)=Θ(n) rounds here at every k; sketches do not")
			return []*stats.Table{tb, tb2}, nil
		},
	}
}

// E2: Theorem 1 — connectivity rounds vs n at fixed k: near-linear in n.
func E2() Experiment {
	return Experiment{
		ID:       "E2",
		Title:    "Connectivity rounds vs n (fixed k)",
		PaperRef: "Theorem 1",
		Run: func(p Params) ([]*stats.Table, error) {
			k, ns := 8, []int{256, 512, 1024, 2048, 4096}
			if p.Quick {
				k, ns = 4, []int{128, 256, 512}
			}
			tb := stats.NewTable("E2: connectivity cost vs n (k="+stats.I(k)+")",
				"n", "m", "rounds", "total Mbits", "phases")
			var nf, rf, bf []float64
			for _, n := range ns {
				g := graph.GNM(n, 3*n, p.Seed+7)
				var phases, bits float64
				mean, err := meanOver(p.trials(), p.Seed, func(seed int64) (float64, error) {
					r, err := core.Run(g, core.Config{K: k, Seed: seed})
					if err != nil {
						return 0, err
					}
					phases = float64(r.Phases)
					bits = float64(r.Metrics.TotalBits())
					return float64(r.Metrics.Rounds), nil
				})
				if err != nil {
					return nil, err
				}
				nf = append(nf, float64(n))
				rf = append(rf, mean)
				bf = append(bf, bits)
				tb.AddRow(stats.I(n), stats.I(3*n), stats.F(mean), stats.F(bits/1e6), stats.F(phases))
			}
			slope, _ := stats.FitPowerLaw(nf, rf)
			bslope, _ := stats.FitPowerLaw(nf, bf)
			tb.AddNote("rounds vs n slope: %.2f (additive polylog floor flattens small n)", slope)
			tb.AddNote("total-bits vs n slope: %.2f (paper: Θ̃(n) information, ~1 up to polylog)", bslope)

			// Per-phase cost decay at the largest n: components shrink
			// geometrically (Lemma 7), so the per-phase volume decays and
			// the total is dominated by the first phases — the structure
			// behind "O(log n) phases still cost Õ(n/k²) overall".
			nBig := ns[len(ns)-1]
			r, err := core.Run(graph.GNM(nBig, 3*nBig, p.Seed+7), core.Config{K: k, Seed: p.Seed})
			if err != nil {
				return nil, err
			}
			tb2 := stats.NewTable("E2b: per-phase rounds (n="+stats.I(nBig)+", k="+stats.I(k)+")",
				"phase", "rounds in phase")
			prev := 0
			for i, end := range r.PhaseRounds {
				tb2.AddRow(stats.I(i+1), stats.I(end-prev))
				prev = end
			}
			tb2.AddNote("early phases carry the sketch volume; late phases approach the barrier floor")
			return []*stats.Table{tb, tb2}, nil
		},
	}
}

// E3: Lemma 6 / Figure 2 — DRR tree depth stays O(log n).
func E3() Experiment {
	return Experiment{
		ID:       "E3",
		Title:    "DRR tree depth vs component count",
		PaperRef: "Lemma 6, Figure 2, Appendix A.1",
		Run: func(p Params) ([]*stats.Table, error) {
			sizes := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}
			trials := 30
			if p.Quick {
				sizes = []int{1 << 8, 1 << 10, 1 << 12}
				trials = 10
			}
			tb := stats.NewTable("E3: DRR forest depth", "components", "mean depth", "max depth", "6*log2(n+1)")
			rng := rand.New(rand.NewSource(p.Seed + 3))
			for _, n := range sizes {
				var depths []float64
				for t := 0; t < trials; t++ {
					depths = append(depths, float64(drr.SimulateRoundDepth(n, rng)))
				}
				_, max := stats.MinMax(depths)
				bound := 6 * math.Log2(float64(n+1))
				tb.AddRow(stats.I(n), stats.F(stats.Mean(depths)), stats.F(max), stats.F(bound))
			}
			tb.AddNote("paper: depth = O(log n) w.h.p.; expected path length <= ln(n)+1")
			return []*stats.Table{tb}, nil
		},
	}
}

// E4: Lemma 7 — Boruvka phases grow like log n, far under 12*log2(n).
func E4() Experiment {
	return Experiment{
		ID:       "E4",
		Title:    "Boruvka phases vs n",
		PaperRef: "Lemma 7",
		Run: func(p Params) ([]*stats.Table, error) {
			ns := []int{256, 512, 1024, 2048, 4096}
			if p.Quick {
				ns = []int{128, 256, 512}
			}
			tb := stats.NewTable("E4: phases to convergence (k=8, connected GNM)",
				"n", "mean phases", "max phases", "12*log2(n)", "sketch failures")
			for _, n := range ns {
				g := graph.RandomConnected(n, 2*n, p.Seed+11)
				var phases, fails []float64
				for t := 0; t < p.trials(); t++ {
					r, err := core.Run(g, core.Config{K: 8, Seed: p.Seed + int64(t)*31})
					if err != nil {
						return nil, err
					}
					phases = append(phases, float64(r.Phases))
					fails = append(fails, float64(r.SketchFailures))
				}
				_, maxP := stats.MinMax(phases)
				tb.AddRow(stats.I(n), stats.F(stats.Mean(phases)), stats.F(maxP),
					stats.F(12*math.Log2(float64(n))), stats.F(stats.Mean(fails)))
			}
			tb.AddNote("paper: <= 12 log n phases w.h.p.")
			return []*stats.Table{tb}, nil
		},
	}
}

// E5: Lemma 1/3 — proxy routing balances per-link load: the max link
// carries within a small factor of the mean.
func E5() Experiment {
	return Experiment{
		ID:       "E5",
		Title:    "Proxy routing load balance",
		PaperRef: "Lemma 1, Lemma 3",
		Run: func(p Params) ([]*stats.Table, error) {
			n := 2048
			ks := []int{4, 8, 16}
			if p.Quick {
				n, ks = 512, []int{4, 8}
			}
			g := graph.GNM(n, 3*n, p.Seed+13)
			tb := stats.NewTable("E5: link load balance during connectivity (n="+stats.I(n)+")",
				"k", "max link bits", "mean link bits", "max/mean", "rounds")
			for _, k := range ks {
				r, err := core.Run(g, core.Config{K: k, Seed: p.Seed})
				if err != nil {
					return nil, err
				}
				max := float64(r.Metrics.MaxLinkBits)
				mean := r.Metrics.MeanLinkBits()
				tb.AddRow(stats.I(k), stats.F(max), stats.F(mean), stats.F(max/mean),
					stats.I(r.Metrics.Rounds))
			}
			tb.AddNote("paper: randomized proxies keep every link's load within polylog of the mean")
			return []*stats.Table{tb}, nil
		},
	}
}

// E10: Lemma 5 ablation — pointer doubling vs the paper-exact level-wise
// collapse, and the faithful-randomness mode's setup cost.
func E10() Experiment {
	return Experiment{
		ID:       "E10",
		Title:    "Tree-collapse ablation (doubling vs level-wise) and faithful randomness",
		PaperRef: "Lemma 5; §2.2",
		Run: func(p Params) ([]*stats.Table, error) {
			n := 2048
			if p.Quick {
				n = 512
			}
			g := graph.RandomConnected(n, 2*n, p.Seed+17)
			tb := stats.NewTable("E10: collapse ablation (n="+stats.I(n)+", k=8)",
				"variant", "rounds", "phases", "collapse iters")
			variants := []struct {
				name string
				cfg  core.Config
			}{
				{"pointer doubling", core.Config{K: 8, Seed: p.Seed}},
				{"level-wise (paper)", core.Config{K: 8, Seed: p.Seed, CollapseLevelWise: true}},
				{"coin merge (fn. 9)", core.Config{K: 8, Seed: p.Seed, CoinMerge: true}},
				{"faithful randomness", core.Config{K: 8, Seed: p.Seed, FaithfulRandomness: true}},
			}
			for _, v := range variants {
				r, err := core.Run(g, v.cfg)
				if err != nil {
					return nil, err
				}
				tb.AddRow(v.name, stats.I(r.Metrics.Rounds), stats.I(r.Phases), stats.I(r.CollapseIters))
			}
			tb.AddNote("level-wise walks O(depth) iterations/phase, doubling O(log depth); both O~(n/k^2)")
			tb.AddNote("DRR depths are small (Lemma 6), so the iteration gap is modest at this scale")
			return []*stats.Table{tb}, nil
		},
	}
}
