package experiments

import (
	"kmgraph/internal/core"
	"kmgraph/internal/lowerbound"
	"kmgraph/internal/stats"
)

// E11: Theorem 5 / Lemma 8 / Figure 1 — the SCS lower-bound construction.
// Solving SCS answers random-partition set disjointness, which needs Ω(b)
// bits between the machine halves; the harness meters the actual cut
// traffic of the real algorithm and relates it to the cut capacity k²B/2,
// giving the Ω̃(b/k²) round shape.
func E11() Experiment {
	return Experiment{
		ID:       "E11",
		Title:    "Lower-bound harness: SCS vs set disjointness",
		PaperRef: "Theorem 5, Lemma 8, Figure 1",
		Run: func(p Params) ([]*stats.Table, error) {
			bs := []int{64, 128, 256, 512}
			if p.Quick {
				bs = []int{16, 32, 64}
			}
			tb := stats.NewTable("E11: Alice/Bob cut traffic on Figure-1 SCS instances (k=4)",
				"b", "cut bits", "cut bits / b", "rounds", "rounds*capacity/cutbits", "SCS==DISJ")
			for _, b := range bs {
				agree := true
				var cutBits, rounds, capRatio float64
				for t := 0; t < p.trials(); t++ {
					inst := lowerbound.RandomInstance(b, p.Seed+int64(t)*13, lowerbound.ForceNothing)
					res, err := lowerbound.RunSCS(inst, core.Config{K: 4, Seed: p.Seed + int64(t)})
					if err != nil {
						return nil, err
					}
					if res.SCSHolds != res.Disjoint {
						agree = false
					}
					cutBits += float64(res.CutBits)
					rounds += float64(res.Rounds)
					capRatio += float64(res.Rounds) * float64(res.CutCapacityPerRound) / float64(res.CutBits)
				}
				trials := float64(p.trials())
				cutBits /= trials
				rounds /= trials
				capRatio /= trials
				agreeCell := "yes"
				if !agree {
					agreeCell = "NO"
				}
				tb.AddRow(stats.I(b), stats.F(cutBits), stats.F(cutBits/float64(b)),
					stats.F(rounds), stats.F(capRatio), agreeCell)
			}
			tb.AddNote("DISJ needs Ω(b) cut bits (Lemma 8); cut capacity is 2(k/2)²B bits/round")
			tb.AddNote("hence rounds = Ω̃(b/k²); cut bits / b should stay bounded below by a constant")
			return []*stats.Table{tb}, nil
		},
	}
}
