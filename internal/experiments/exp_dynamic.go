package experiments

import (
	"fmt"

	"kmgraph/internal/core"
	"kmgraph/internal/dynamic"
	"kmgraph/internal/graph"
	"kmgraph/internal/stats"
)

// E13 measures the dynamic subsystem: for batched churn streams, the
// incremental per-batch cost (apply + query rounds) against a fresh
// static Connectivity run on the same snapshot, across machine counts and
// workloads. The quantity of interest is the speedup unlocked by linear
// sketches being *updatable*: the certificate keeps clean components
// merged, so only the dirty region pays merge phases. Every query is
// validated against the sequential oracle.
func E13() Experiment {
	return Experiment{
		ID:       "E13",
		Title:    "Dynamic batched connectivity: incremental vs static rounds",
		PaperRef: "§2.3 linearity under updates (cf. Gilbert–Li dynamic MST motivation)",
		Run:      runDynamic,
	}
}

type dynWorkload struct {
	name   string
	stream func(n, m, batches, batchSize int, seed int64) *graph.Stream
}

func runDynamic(p Params) ([]*stats.Table, error) {
	n, m := 4096, 12288
	batches, batchSize := 5, 123 // ~1% churn
	ks := []int{4, 8, 16}
	if p.Quick {
		n, m = 512, 1536
		batches, batchSize = 3, 15
		ks = []int{4, 8}
	}
	workloads := []dynWorkload{
		{"churn", func(n, m, b, bs int, seed int64) *graph.Stream {
			return graph.RandomChurnStream(n, m, b, bs, 0.5, seed)
		}},
		{"splitmerge", func(n, m, b, bs int, seed int64) *graph.Stream {
			return graph.SplitMergeStream(n, 8, b, seed)
		}},
	}

	tb := stats.NewTable(
		fmt.Sprintf("E13: incremental vs static rounds per batch (n=%d, m0=%d, %d batches)", n, m, batches),
		"workload", "k", "buildup", "apply/batch", "query/batch", "static/batch", "speedup", "phases", "dirty")
	for _, wl := range workloads {
		for _, k := range ks {
			row, err := runDynamicConfig(wl, n, m, batches, batchSize, k, p.Seed)
			if err != nil {
				return nil, err
			}
			tb.AddRow(row...)
		}
	}
	tb.AddNote("speedup = static rounds / (apply+query) rounds, averaged over batches")
	tb.AddNote("every query validated against the sequential oracle")
	return []*stats.Table{tb}, nil
}

func runDynamicConfig(wl dynWorkload, n, m, batches, batchSize, k int, seed int64) ([]string, error) {
	s := wl.stream(n, m, batches, batchSize, seed)
	sess, err := dynamic.NewSession(s.Initial, dynamic.Config{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	buildup, err := sess.Query()
	if err != nil {
		return nil, err
	}
	snap := s.Initial
	var apply, query, static, phases, dirty float64
	for i, ops := range s.Batches {
		br, err := sess.ApplyBatch(ops)
		if err != nil {
			return nil, err
		}
		snap = graph.ApplyOps(snap, ops)
		q, err := sess.Query()
		if err != nil {
			return nil, err
		}
		if _, count := graph.Components(snap); q.Components != count {
			return nil, fmt.Errorf("E13: %s k=%d batch %d: %d components, oracle %d",
				wl.name, k, i, q.Components, count)
		}
		st, err := core.Run(snap, core.Config{K: k, Seed: seed})
		if err != nil {
			return nil, err
		}
		apply += float64(br.Rounds)
		query += float64(q.Rounds)
		static += float64(st.Metrics.Rounds)
		phases += float64(q.Phases)
		dirty += float64(q.RelabeledVertices)
	}
	b := float64(batches)
	return []string{
		wl.name, stats.I(k), stats.I(buildup.Rounds),
		stats.F(apply / b), stats.F(query / b), stats.F(static / b),
		stats.F(static / (apply + query)), stats.F(phases / b), stats.F(dirty / b),
	}, nil
}
