package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("expected 13 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for i, e := range all {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E3")
	if err != nil || e.ID != "E3" {
		t.Errorf("ByID(E3) = %v, %v", e.ID, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown ID should error")
	}
}

// TestAllExperimentsQuick runs the entire harness in quick mode: the
// integration test that every theorem's reproduction executes end to end.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick harness still takes a few seconds")
	}
	p := Params{Quick: true, Seed: 12345}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(p)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tb := range tables {
				out := tb.Render()
				if !strings.Contains(out, "##") || len(tb.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tb.Title)
				}
				// Correctness-bearing cells must never say NO.
				if strings.Contains(out, "NO") {
					t.Errorf("%s: correctness violation in table:\n%s", e.ID, out)
				}
			}
		})
	}
}

func TestMeanOver(t *testing.T) {
	calls := 0
	got, err := meanOver(3, 10, func(seed int64) (float64, error) {
		calls++
		return float64(seed), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls = %d", calls)
	}
	if got != (10+111+212)/3.0 {
		t.Errorf("mean = %v", got)
	}
}
