package experiments

import (
	"math"

	"kmgraph/internal/congested"
	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/mincut"
	"kmgraph/internal/rep"
	"kmgraph/internal/stats"
	"kmgraph/internal/verify"
)

// E6: Theorem 2(a) — MST rounds vs k scale like k^-2 (weak output), with
// the REP-model MST (Θ̃(n/k)) as the contrast.
func E6() Experiment {
	return Experiment{
		ID:       "E6",
		Title:    "MST rounds vs k (RVP sketch vs REP model)",
		PaperRef: "Theorem 2(a); §1.3",
		Run: func(p Params) ([]*stats.Table, error) {
			n, ks := 1024, []int{2, 4, 8, 16}
			if p.Quick {
				n, ks = 256, []int{2, 4, 8}
			}
			g := graph.WithDistinctWeights(graph.GNM(n, 3*n, p.Seed+19), p.Seed+23)
			want, wantTotal := graph.KruskalMST(g)
			tb := stats.NewTable("E6: MST rounds vs k (n="+stats.I(n)+", m="+stats.I(3*n)+")",
				"k", "sketch MST", "weight ok")
			var kf, rvp []float64
			for _, k := range ks {
				r, err := core.RunMST(g, core.MSTConfig{Config: core.Config{K: k, Seed: p.Seed}})
				if err != nil {
					return nil, err
				}
				ok := r.TotalWeight == wantTotal && len(r.Edges) == len(want)
				kf = append(kf, float64(k))
				rvp = append(rvp, float64(r.Metrics.Rounds))
				okCell := "yes"
				if !ok {
					okCell = "NO"
				}
				tb.AddRow(stats.I(k), stats.I(r.Metrics.Rounds), okCell)
			}
			cut := 0
			for i, k := range ks {
				if k <= 8 {
					cut = i + 1
				}
			}
			s1, _ := stats.FitPowerLaw(kf[:cut], rvp[:cut])
			tb.AddNote("sketch MST slope (k<=8): %.2f (paper Theorem 2a: ~-2)", s1)
			floor := rvp[len(rvp)-1]
			var vol []float64
			for _, r := range rvp[:cut] {
				vol = append(vol, r-floor)
			}
			vs, _ := stats.FitPowerLaw(kf[:cut], vol)
			tb.AddNote("volume slope after subtracting the k=%d floor (%.0f rounds): %.2f",
				ks[len(ks)-1], floor, vs)

			// REP contrast on a dense graph, where the local cycle-property
			// filter bites and the conversion routes Θ(k·n) edge copies —
			// Θ̃(n/k) rounds per §1.3 (slope ~-1 while k(n-1) < m).
			nd := n / 2
			md := nd * nd / 8
			gd := graph.WithDistinctWeights(graph.GNM(nd, md, p.Seed+53), p.Seed+59)
			_, denseTotal := graph.KruskalMST(gd)
			tb2 := stats.NewTable("E6b: REP-model MST on a dense graph (n="+stats.I(nd)+", m="+stats.I(md)+")",
				"k", "conversion rounds", "MST rounds", "total", "filtered edges", "weight ok")
			var kf2, conv []float64
			for _, k := range ks {
				rr, err := rep.MST(gd, rep.Config{K: k, Seed: p.Seed})
				if err != nil {
					return nil, err
				}
				okCell := "yes"
				if rr.TotalWeight != denseTotal {
					okCell = "NO"
				}
				kf2 = append(kf2, float64(k))
				conv = append(conv, float64(rr.ConversionRounds))
				tb2.AddRow(stats.I(k), stats.I(rr.ConversionRounds), stats.I(rr.MSTRounds),
					stats.I(rr.TotalRounds), stats.I(rr.FilteredEdges), okCell)
			}
			s2, _ := stats.FitPowerLaw(kf2[:cut], conv[:cut])
			tb2.AddNote("conversion slope (k<=8): %.2f (paper §1.3: ~-1 — the Θ̃(n/k) REP bottleneck)", s2)
			return []*stats.Table{tb, tb2}, nil
		},
	}
}

// E7: Theorem 2(b) — the strong output criterion (both endpoints' homes
// must know each MST edge) costs Θ̃(n/k) on a star, where one machine must
// receive Θ(n) edge announcements, but little on bounded-degree graphs.
func E7() Experiment {
	return Experiment{
		ID:       "E7",
		Title:    "MST output criteria: weak vs strong dissemination cost",
		PaperRef: "Theorem 2(b)",
		Run: func(p Params) ([]*stats.Table, error) {
			n, ks := 1024, []int{2, 4, 8, 16}
			if p.Quick {
				n, ks = 256, []int{2, 4, 8}
			}
			tb := stats.NewTable("E7: strong-output extra rounds (n="+stats.I(n)+")",
				"k", "star extra", "GNM extra")
			star := graph.WithDistinctWeights(graph.Star(n), p.Seed+29)
			gnm := graph.WithDistinctWeights(graph.GNM(n, 3*n, p.Seed+31), p.Seed+37)
			var kf, starX []float64
			for _, k := range ks {
				extra := func(g *graph.Graph) (float64, error) {
					r, err := core.RunMST(g, core.MSTConfig{
						Config: core.Config{K: k, Seed: p.Seed}, StrongOutput: true})
					if err != nil {
						return 0, err
					}
					return float64(r.Metrics.Rounds - r.WeakRounds), nil
				}
				se, err := extra(star)
				if err != nil {
					return nil, err
				}
				ge, err := extra(gnm)
				if err != nil {
					return nil, err
				}
				kf = append(kf, float64(k))
				starX = append(starX, se)
				tb.AddRow(stats.I(k), stats.F(se), stats.F(ge))
			}
			slope, _ := stats.FitPowerLaw(kf, starX)
			tb.AddNote("star extra-cost slope: %.2f (paper: ~-1, the Θ̃(n/k) bottleneck)", slope)
			return []*stats.Table{tb}, nil
		},
	}
}

// E8: Theorem 3 — min-cut O(log n)-approximation quality and cost.
func E8() Experiment {
	return Experiment{
		ID:       "E8",
		Title:    "Min-cut approximation quality",
		PaperRef: "Theorem 3",
		Run: func(p Params) ([]*stats.Table, error) {
			s := 24
			if p.Quick {
				s = 10
			}
			cases := []struct {
				name string
				g    *graph.Graph
			}{
				{"cycle", graph.Cycle(4 * s)},
				{"bridged-1", graph.TwoCliquesBridged(s, 1, p.Seed+1)},
				{"bridged-4", graph.TwoCliquesBridged(s, 4, p.Seed+2)},
				{"bridged-16", graph.TwoCliquesBridged(s, 16, p.Seed+3)},
				{"complete", graph.Complete(2 * s)},
			}
			tb := stats.NewTable("E8: min-cut estimates",
				"graph", "n", "true λ", "estimate", "ratio", "runs", "rounds")
			for _, tc := range cases {
				lambda := graph.MinCut(tc.g)
				r, err := mincut.Approximate(tc.g, mincut.Config{Config: core.Config{K: 4, Seed: p.Seed}})
				if err != nil {
					return nil, err
				}
				ratio := r.Estimate / float64(lambda)
				if ratio < 1 {
					ratio = 1 / ratio
				}
				tb.AddRow(tc.name, stats.I(tc.g.N()), stats.I(lambda), stats.F(r.Estimate),
					stats.F(ratio), stats.I(r.Runs), stats.I(r.Rounds))
			}
			tb.AddNote("paper: O(log n)-approximation w.h.p.; ln(%d) = %.1f", 2*s, math.Log(float64(2*s)))
			return []*stats.Table{tb}, nil
		},
	}
}

// E9: Theorem 4 — all eight verification problems at Õ(n/k²) cost, with
// verdicts matched against sequential oracles.
func E9() Experiment {
	return Experiment{
		ID:       "E9",
		Title:    "Verification problems",
		PaperRef: "Theorem 4",
		Run: func(p Params) ([]*stats.Table, error) {
			n := 1024
			if p.Quick {
				n = 256
			}
			cfg := core.Config{K: 4, Seed: p.Seed}
			g := graph.RandomConnected(n, 2*n, p.Seed+41)
			tree, _ := graph.KruskalMST(g)
			bridgedG := graph.TwoCliquesBridged(n/8, 2, p.Seed+43)
			var bridges []graph.Edge
			for _, e := range bridgedG.Edges() {
				if (e.U < n/8) != (e.V < n/8) {
					bridges = append(bridges, e)
				}
			}
			grid := graph.Grid(n/32, 32)
			odd := graph.Cycle(n + 1)

			tb := stats.NewTable("E9: verification verdicts and cost (k=4, n="+stats.I(n)+")",
				"problem", "verdict", "oracle", "match", "runs", "rounds")
			type row struct {
				name    string
				out     *verify.Outcome
				oracle  bool
				runsErr error
			}
			var rows []row
			scs, err := verify.SpanningConnectedSubgraph(g, tree, cfg)
			rows = append(rows, row{"spanning connected subgraph", scs, true, err})
			cut, err := verify.Cut(bridgedG, bridges, cfg)
			rows = append(rows, row{"cut", cut, true, err})
			st, err := verify.STConnectivity(g, 0, n-1, cfg)
			rows = append(rows, row{"s-t connectivity", st, graph.SameComponent(g, 0, n-1), err})
			eap, err := verify.EdgeOnAllPaths(graph.Path(n), 0, n-1, graph.Edge{U: n / 2, V: n/2 + 1}, cfg)
			rows = append(rows, row{"edge on all paths", eap, true, err})
			stc, err := verify.STCut(bridgedG, 0, n/8, bridges, cfg)
			rows = append(rows, row{"s-t cut", stc, true, err})
			bip, err := verify.Bipartiteness(grid, cfg)
			rows = append(rows, row{"bipartiteness (grid)", bip, true, err})
			bip2, err := verify.Bipartiteness(odd, cfg)
			rows = append(rows, row{"bipartiteness (odd cycle)", bip2, false, err})
			cyc, err := verify.CycleContainment(g, cfg)
			rows = append(rows, row{"cycle containment", cyc, graph.HasCycle(g), err})
			probe := g.Edges()[0]
			onCycle := graph.SameComponent(g.RemoveEdges([]graph.Edge{probe}), probe.U, probe.V)
			ecyc, err := verify.ECycleContainment(g, probe, cfg)
			rows = append(rows, row{"e-cycle containment", ecyc, onCycle, err})

			for _, r := range rows {
				if r.runsErr != nil {
					return nil, r.runsErr
				}
				verdict, oracle := "false", "false"
				if r.out.Holds {
					verdict = "true"
				}
				if r.oracle {
					oracle = "true"
				}
				match := "yes"
				if r.out.Holds != r.oracle {
					match = "NO"
				}
				tb.AddRow(r.name, verdict, oracle, match, stats.I(r.out.Runs), stats.I(r.out.Rounds))
			}
			tb.AddNote("every verdict must equal its oracle column")
			return []*stats.Table{tb}, nil
		},
	}
}

// E12: §1.2/§1.3 — the Conversion Theorem replay and its Õ(M/k² + Δ'T/k)
// prediction.
func E12() Experiment {
	return Experiment{
		ID:       "E12",
		Title:    "Congested-clique conversion vs prediction",
		PaperRef: "§2 warm-up; Klauck et al. Theorem 4.1",
		Run: func(p Params) ([]*stats.Table, error) {
			n, ks := 512, []int{2, 4, 8, 16}
			if p.Quick {
				n, ks = 128, []int{2, 4, 8}
			}
			g := graph.GNM(n, 4*n, p.Seed+47)
			labels, tr := congested.FloodingCC(g)
			want, _ := graph.Components(g)
			if !graph.SameLabeling(labels, want) {
				panic("congested clique flooding incorrect")
			}
			tb := stats.NewTable("E12: conversion of a congested-clique flooding trace (n="+stats.I(n)+")",
				"k", "measured rounds", "M/(k²B) term", "Δ'T/(kB) term", "predicted")
			for _, k := range ks {
				r, err := congested.Convert(tr, congested.Config{K: k, Seed: p.Seed})
				if err != nil {
					return nil, err
				}
				tb.AddRow(stats.I(k), stats.I(r.Rounds), stats.F(r.TermMessages),
					stats.F(r.TermDelta), stats.F(r.Predicted()))
			}
			tb.AddNote("trace: T=%d rounds, M=%d messages, Δ'=%d", tr.Rounds, len(tr.Messages), tr.MaxDelta)
			tb.AddNote("measured includes the 2-exchange-per-round floor; shapes should track the prediction")
			return []*stats.Table{tb}, nil
		},
	}
}
