// Package experiments contains the harness that reproduces every result of
// the paper as an executable experiment (E1–E12; see DESIGN.md §4 for the
// experiment-to-theorem index). Each experiment sweeps the parameters the
// corresponding theorem speaks about, runs the real algorithms on the
// k-machine simulator over several seeds, and reports paper-style tables:
// measured round counts, fitted scaling exponents, approximation ratios,
// verification verdicts, and lower-bound traffic.
//
// The paper is a theory paper, so the quantities to match are *shapes*:
// connectivity and MST rounds falling like k^-2 while the baselines fall
// like k^-1 (Theorems 1–2), DRR depths and phase counts growing like
// log n (Lemmas 6–7), min-cut estimates within O(log n) of λ (Theorem 3),
// verification verdicts matching oracles at Õ(n/k²) cost (Theorem 4), and
// Alice/Bob cut traffic growing linearly in the disjointness instance size
// (Theorem 5). Absolute constants are dominated by the polylog factors the
// Õ notation hides (the paper bounds them by O(log³ n)); EXPERIMENTS.md
// records both.
package experiments

import (
	"fmt"

	"kmgraph/internal/stats"
)

// Params controls an experiment run.
type Params struct {
	// Quick shrinks sweeps for smoke tests and CI.
	Quick bool
	// Seed is the base seed; trials use Seed, Seed+1, ...
	Seed int64
	// Trials is the number of seeds per configuration (0 => 3, or 1 when
	// Quick).
	Trials int
}

func (p Params) trials() int {
	if p.Trials > 0 {
		return p.Trials
	}
	if p.Quick {
		return 1
	}
	return 3
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the experiment identifier (E1..E12).
	ID string
	// Title is a human-readable summary.
	Title string
	// PaperRef names the theorem/lemma/figure being reproduced.
	PaperRef string
	// Run executes the experiment and returns its tables.
	Run func(p Params) ([]*stats.Table, error)
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		E1(), E2(), E3(), E4(), E5(), E6(),
		E7(), E8(), E9(), E10(), E11(), E12(),
		E13(),
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

// meanOver runs f for the given number of trials with consecutive seeds
// and returns the mean of the returned measurements.
func meanOver(trials int, base int64, f func(seed int64) (float64, error)) (float64, error) {
	var xs []float64
	for t := 0; t < trials; t++ {
		x, err := f(base + int64(t)*101)
		if err != nil {
			return 0, err
		}
		xs = append(xs, x)
	}
	return stats.Mean(xs), nil
}
