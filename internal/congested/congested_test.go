package congested

import (
	"testing"

	"kmgraph/internal/graph"
)

func TestFloodingCCCorrect(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"components", graph.DisjointComponents(100, 4, 0.3, 1)},
		{"path", graph.Path(60)},
		{"gnm", graph.GNM(100, 300, 2)},
		{"edgeless", graph.NewBuilder(20).Build()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			labels, tr := FloodingCC(tc.g)
			want, _ := graph.Components(tc.g)
			if !graph.SameLabeling(labels, want) {
				t.Error("flooding labels disagree with oracle")
			}
			if err := tr.Validate(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestFloodingCCDiameterRounds(t *testing.T) {
	g := graph.Path(80)
	_, tr := FloodingCC(g)
	// Min-label flooding on a path takes ~D rounds.
	if tr.Rounds < 40 || tr.Rounds > 90 {
		t.Errorf("rounds = %d, expected ~diameter 79", tr.Rounds)
	}
	if tr.MaxDelta < 1 || tr.MaxDelta > 4 {
		t.Errorf("max delta %d unexpected for a path", tr.MaxDelta)
	}
}

func TestConvertExecutesAndPredicts(t *testing.T) {
	g := graph.GNM(200, 600, 3)
	_, tr := FloodingCC(g)
	res, err := Convert(tr, Config{K: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds measured")
	}
	if res.Metrics.DroppedMessages != 0 {
		t.Errorf("dropped %d", res.Metrics.DroppedMessages)
	}
	// The measurement should be within a generous constant+polylog factor
	// of the prediction (two-hop routing and exchange overheads).
	pred := res.Predicted() + 4*float64(tr.Rounds) // + Θ(T) exchange floor
	if float64(res.Rounds) > 40*pred {
		t.Errorf("rounds %d far above prediction %.1f", res.Rounds, pred)
	}
}

func TestConvertImprovesWithK(t *testing.T) {
	g := graph.GNM(300, 2000, 7)
	_, tr := FloodingCC(g)
	r4, err := Convert(tr, Config{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Convert(tr, Config{K: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r16.Rounds >= r4.Rounds {
		t.Errorf("k=16 (%d rounds) should beat k=4 (%d rounds)", r16.Rounds, r4.Rounds)
	}
}

func TestTraceValidateCatchesCorruption(t *testing.T) {
	tr := &Trace{N: 5, Rounds: 2, Messages: []TraceMsg{{Round: 3, Src: 0, Dst: 1, Bits: 8}}}
	if tr.Validate() == nil {
		t.Error("round out of range should fail")
	}
	tr = &Trace{N: 5, Rounds: 2, Messages: []TraceMsg{{Round: 0, Src: 9, Dst: 1, Bits: 8}}}
	if tr.Validate() == nil {
		t.Error("src out of range should fail")
	}
}
