// Package congested provides a minimal congested clique engine and the
// Conversion Theorem simulation the paper uses as its warm-up foil (§2):
// a congested clique algorithm with message complexity M, round complexity
// T, and per-node-per-round message bound Δ' can be simulated in the
// k-machine model in Õ(M/k² + Δ'T/k) rounds [Klauck et al., Theorem 4.1].
//
// The simulation maps clique nodes to machines by RVP and routes every
// clique message through a uniformly random intermediate machine (Valiant
// routing), which is what load-balances the per-link traffic. Experiment
// E12 replays a flooding-connectivity trace and compares the measured
// rounds with the theorem's two terms — and shows why conversion cannot
// beat Õ(n/k): Δ' scales with the maximum degree.
package congested

import (
	"fmt"

	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/proxy"
	"kmgraph/internal/wire"
)

// TraceMsg is one congested clique message.
type TraceMsg struct {
	Round, Src, Dst int
	Bits            int
}

// Trace is a recorded congested clique execution.
type Trace struct {
	N        int
	Rounds   int        // T
	Messages []TraceMsg // M = len(Messages)
	MaxDelta int        // Δ': max messages sent or received by a node in a round
}

// FloodingCC runs min-label flooding connectivity in the congested clique
// (messages travel only along graph edges, O(log n) bits each) and returns
// the labeling plus the recorded trace.
func FloodingCC(g *graph.Graph) ([]int, *Trace) {
	n := g.N()
	labels := make([]int, n)
	changed := make([]bool, n)
	for v := range labels {
		labels[v] = v
		changed[v] = true
	}
	tr := &Trace{N: n}
	msgBits := 16
	for b := 1; b < n; b <<= 1 {
		msgBits += 2
	}
	for {
		any := false
		type upd struct{ v, l int }
		var updates []upd
		perNode := make(map[int]int)
		for v := 0; v < n; v++ {
			if !changed[v] {
				continue
			}
			for _, h := range g.Adj(v) {
				tr.Messages = append(tr.Messages, TraceMsg{Round: tr.Rounds, Src: v, Dst: h.To, Bits: msgBits})
				perNode[v]++
				perNode[h.To]++
				updates = append(updates, upd{h.To, labels[v]})
			}
		}
		for _, d := range perNode {
			if d > tr.MaxDelta {
				tr.MaxDelta = d
			}
		}
		next := make([]bool, n)
		for _, u := range updates {
			if u.l < labels[u.v] {
				labels[u.v] = u.l
				next[u.v] = true
				any = true
			}
		}
		if len(updates) > 0 {
			tr.Rounds++
		}
		changed = next
		if !any {
			break
		}
	}
	return labels, tr
}

// ConvertResult reports the k-machine cost of simulating a trace and the
// Conversion Theorem's predicted terms.
type ConvertResult struct {
	// Rounds is the measured k-machine round count.
	Rounds int
	// TermMessages is M·b/(k²·B): the message-volume term.
	TermMessages float64
	// TermDelta is Δ'·T·b/(k·B): the per-node congestion term.
	TermDelta float64
	// Metrics is the engine accounting.
	Metrics kmachine.Metrics
}

// Predicted returns the theorem's round bound (sum of both terms, plus the
// 2T constant for the two-hop relay).
func (c *ConvertResult) Predicted() float64 {
	return c.TermMessages + c.TermDelta
}

// Config parameterizes a conversion run.
type Config struct {
	K             int
	BandwidthBits int // 0 selects kmachine.Bandwidth(n)
	Seed          int64
	MaxRounds     int
}

// Convert replays a congested clique trace in the k-machine model using
// RVP node placement and random-intermediate routing, and returns the
// measured cost alongside the theorem's prediction.
func Convert(tr *Trace, cfg Config) (*ConvertResult, error) {
	n := tr.N
	bw := cfg.BandwidthBits
	if bw == 0 {
		bw = kmachine.Bandwidth(n)
	}
	// Node placement: the same RVP hashing the algorithms use.
	dummy := graph.NewBuilder(n).Build()
	part := kmachine.NewRVP(dummy, cfg.K, uint64(cfg.Seed)^0x9e37)

	// Precompute, per machine and clique round, the messages it originates.
	perMachineRound := make([][][]TraceMsg, cfg.K)
	for i := range perMachineRound {
		perMachineRound[i] = make([][]TraceMsg, tr.Rounds)
	}
	for _, m := range tr.Messages {
		h := part.Home(m.Src)
		perMachineRound[h][m.Round] = append(perMachineRound[h][m.Round], m)
	}

	cluster, err := kmachine.New(kmachine.Config{
		K:                   cfg.K,
		BandwidthBits:       bw,
		MessageOverheadBits: 64,
		Seed:                cfg.Seed,
		MaxRounds:           cfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}
	res, err := cluster.Run(func(ctx *kmachine.Ctx) error {
		comm := proxy.NewComm(ctx)
		for r := 0; r < tr.Rounds; r++ {
			// Hop 1: to a uniformly random intermediate machine.
			var out []proxy.Out
			for _, m := range perMachineRound[ctx.ID()][r] {
				payload := make([]byte, (m.Bits+7)/8)
				buf := wire.AppendUvarint(nil, uint64(m.Dst))
				buf = wire.AppendBytes(buf, payload)
				out = append(out, proxy.Out{Dst: ctx.Rand().Intn(ctx.K()), Data: buf})
			}
			recv := comm.Exchange(out)
			// Hop 2: forward to the destination node's home machine.
			out = nil
			for _, msg := range recv {
				rd := wire.NewReader(msg.Data)
				dst := int(rd.Uvarint())
				out = append(out, proxy.Out{Dst: part.Home(dst), Data: msg.Data})
			}
			comm.Exchange(out)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	b := 16.0 // representative message bits for prediction
	if len(tr.Messages) > 0 {
		b = float64(tr.Messages[0].Bits)
	}
	out := &ConvertResult{
		Rounds:       res.Metrics.Rounds,
		TermMessages: float64(len(tr.Messages)) * b / (float64(cfg.K*cfg.K) * float64(bw)),
		TermDelta:    float64(tr.MaxDelta) * float64(tr.Rounds) * b / (float64(cfg.K) * float64(bw)),
		Metrics:      res.Metrics,
	}
	return out, nil
}

// Validate cross-checks a trace's internal consistency (counts, rounds).
func (tr *Trace) Validate() error {
	for _, m := range tr.Messages {
		if m.Round < 0 || m.Round >= tr.Rounds {
			return fmt.Errorf("congested: message round %d out of [0,%d)", m.Round, tr.Rounds)
		}
		if m.Src < 0 || m.Src >= tr.N || m.Dst < 0 || m.Dst >= tr.N {
			return fmt.Errorf("congested: message endpoints out of range")
		}
	}
	return nil
}
