// Package dist runs k-machine jobs across OS processes. A coordinator
// (kmconnect/kmmst with -transport tcp) splits the k machines into
// contiguous ranges over a set of worker processes (cmd/kmworker),
// ships each worker a job spec over a control connection, and gathers
// partial results. The workers form a TCP mesh among themselves
// (transport/tcp), each loads its own slice of the graph shard-direct
// from the job's source spec, and each runs the ordinary round engine
// over its hosted machines.
//
// Determinism carries over wholesale: machine RNGs are seeded from
// (seed, machine id), the vertex partition from the same RVP hash, and
// the bandwidth simulation partitions by destination owner — so the
// merged Metrics and the assembled result are bit-identical to a
// single-process run with the same spec. The golden-equality tests pin
// exactly that.
//
// Graph inputs are named by source specs so every worker can
// independently materialize its shard without the coordinator shipping
// edges: "store:<path>" opens a kmgs container (the path must be
// readable by each worker), "gnm:<n>:<m>:<seed>" and
// "rmat:<n>:<m>:<seed>" replay the deterministic streaming generators.
package dist

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/store"
	"kmgraph/internal/transport"
	"kmgraph/internal/wire"
)

// Kind selects the algorithm a job runs.
type Kind uint8

const (
	// KindConnectivity runs the Õ(n/k²) connectivity algorithm.
	KindConnectivity Kind = 1
	// KindMST runs the MST algorithm.
	KindMST Kind = 2
)

func (k Kind) String() string {
	switch k {
	case KindConnectivity:
		return "connectivity"
	case KindMST:
		return "mst"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// WorkerSpec is one participant of a job: its dialable address and its
// hosted machine range.
type WorkerSpec struct {
	Addr   string
	Lo, Hi int
}

// Job is everything a worker needs to run its slice of a distributed
// job. The coordinator personalizes Index per worker; every other field
// is identical across the fleet (and validated so by the transport
// handshake).
type Job struct {
	ClusterID uint64
	Kind      Kind
	Source    string // source spec, see the package comment

	// Algorithm configuration, pre-resolution: zero-valued fields are
	// resolved worker-side with WithDefaults(n), identically everywhere.
	Conn core.Config
	MST  core.MSTConfig // Kind == KindMST; Conn is ignored then

	Index   int // this worker's position in Workers
	Workers []WorkerSpec
}

// K returns the job's machine count.
func (j *Job) K() int {
	if j.Kind == KindMST {
		return j.MST.K
	}
	return j.Conn.K
}

// config returns the job's base Config (shared fields).
func (j *Job) config() core.Config {
	if j.Kind == KindMST {
		return j.MST.Config
	}
	return j.Conn
}

const specVersion = 1

// maxWorkers bounds a decoded worker list.
const maxWorkers = 1 << 16

// AppendJob encodes j as a FrameJob body.
func AppendJob(b []byte, j *Job) []byte {
	b = wire.AppendUvarint(b, specVersion)
	b = wire.AppendU64(b, j.ClusterID)
	b = wire.AppendUvarint(b, uint64(j.Kind))
	b = wire.AppendBytes(b, []byte(j.Source))
	c := j.config()
	b = wire.AppendUvarint(b, uint64(c.K))
	b = wire.AppendUvarint(b, uint64(c.BandwidthBits))
	b = wire.AppendVarint(b, c.Seed)
	b = wire.AppendUvarint(b, uint64(c.MaxPhases))
	b = wire.AppendUvarint(b, uint64(c.MaxRounds))
	b = wire.AppendUvarint(b, uint64(c.MessageOverheadBits))
	b = wire.AppendBool(b, c.CollapseLevelWise)
	b = wire.AppendBool(b, c.CoinMerge)
	b = wire.AppendBool(b, c.EdgeCheckSelection)
	b = wire.AppendBool(b, c.FaithfulRandomness)
	b = wire.AppendBool(b, c.CountComponents)
	b = wire.AppendBool(b, j.MST.StrongOutput)
	b = wire.AppendUvarint(b, uint64(j.MST.MaxElimIters))
	b = wire.AppendUvarint(b, uint64(j.Index))
	b = wire.AppendUvarint(b, uint64(len(j.Workers)))
	for _, w := range j.Workers {
		b = wire.AppendBytes(b, []byte(w.Addr))
		b = wire.AppendUvarint(b, uint64(w.Lo))
		b = wire.AppendUvarint(b, uint64(w.Hi))
	}
	return b
}

// DecodeJob decodes a FrameJob body.
func DecodeJob(body []byte) (*Job, error) {
	r := wire.NewReader(body)
	if v := r.Uvarint(); v != specVersion {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("dist: job spec version %d, want %d", v, specVersion)
	}
	j := &Job{ClusterID: r.U64(), Kind: Kind(r.Uvarint()), Source: string(r.Bytes())}
	var c core.Config
	c.K = int(r.Uvarint())
	c.BandwidthBits = int(r.Uvarint())
	c.Seed = r.Varint()
	c.MaxPhases = int(r.Uvarint())
	c.MaxRounds = int(r.Uvarint())
	c.MessageOverheadBits = int(r.Uvarint())
	c.CollapseLevelWise = r.Bool()
	c.CoinMerge = r.Bool()
	c.EdgeCheckSelection = r.Bool()
	c.FaithfulRandomness = r.Bool()
	c.CountComponents = r.Bool()
	j.MST.StrongOutput = r.Bool()
	j.MST.MaxElimIters = int(r.Uvarint())
	j.Index = int(r.Uvarint())
	nw := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nw < 1 || nw > maxWorkers {
		return nil, fmt.Errorf("dist: job with %d workers", nw)
	}
	j.Workers = make([]WorkerSpec, nw)
	for i := range j.Workers {
		j.Workers[i] = WorkerSpec{
			Addr: string(r.Bytes()),
			Lo:   int(r.Uvarint()),
			Hi:   int(r.Uvarint()),
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	j.Conn = c
	j.MST.Config = c
	if j.Kind != KindConnectivity && j.Kind != KindMST {
		return nil, fmt.Errorf("dist: unknown job kind %d", j.Kind)
	}
	if j.Index < 0 || j.Index >= nw {
		return nil, fmt.Errorf("dist: job index %d of %d workers", j.Index, nw)
	}
	k := c.K
	if k < 1 {
		return nil, fmt.Errorf("dist: job with k=%d", k)
	}
	next := 0
	for i, w := range j.Workers {
		if w.Lo != next || w.Hi <= w.Lo || w.Hi > k {
			return nil, fmt.Errorf("dist: worker %d hosts [%d,%d), want contiguous cover of [0,%d)",
				i, w.Lo, w.Hi, k)
		}
		next = w.Hi
	}
	if next != k {
		return nil, fmt.Errorf("dist: workers cover [0,%d) of %d machines", next, k)
	}
	return j, nil
}

// OpenJobSource opens a job's source spec as an EdgeSource.
func OpenJobSource(spec string) (graph.EdgeSource, io.Closer, error) {
	switch {
	case strings.HasPrefix(spec, "store:"):
		r, err := store.Open(strings.TrimPrefix(spec, "store:"))
		if err != nil {
			return nil, nil, err
		}
		return r.Source(), r, nil
	case strings.HasPrefix(spec, "gnm:"), strings.HasPrefix(spec, "rmat:"):
		parts := strings.Split(spec, ":")
		if len(parts) != 4 {
			return nil, nil, fmt.Errorf("dist: source spec %q, want %s:<n>:<m>:<seed>", spec, parts[0])
		}
		n, err1 := strconv.Atoi(parts[1])
		m, err2 := strconv.Atoi(parts[2])
		seed, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, nil, fmt.Errorf("dist: malformed source spec %q", spec)
		}
		if n < 2 || m < 0 || m > n*(n-1)/2 {
			return nil, nil, fmt.Errorf("dist: source spec %q out of range", spec)
		}
		var src graph.EdgeSource
		if parts[0] == "gnm" {
			src = graph.StreamGNM(n, m, seed)
		} else {
			src = graph.StreamRMAT(n, m, seed)
		}
		return src, nopCloser{}, nil
	default:
		return nil, nil, fmt.Errorf("dist: unknown source spec %q (want store:, gnm:, or rmat:)", spec)
	}
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// resultFrame is a worker's partial result: the vertex count it
// observed, its partial Metrics, and its hosted machines' outputs.
type resultFrame struct {
	n       int
	lo, hi  int
	metrics []byte // transport.AppendMetrics encoding
	outputs []any
}

// errorFrame is a worker's job failure. Link-down failures carry the
// structured fields of transport.LinkDownError across the wire, so the
// coordinator's classification and retry decisions see the same peer,
// round, and reason a local caller would.
type errorFrame struct {
	msg      string
	linkDown bool
	peer     int // -1 when unknown
	round    uint64
	reason   transport.LinkDownReason
}

// err reconstructs the failure the worker reported, preserving the
// ErrLinkDown identity and the structured fields.
func (f *errorFrame) err() error {
	if !f.linkDown {
		return fmt.Errorf("dist: remote job failed: %s", f.msg)
	}
	return &transport.LinkDownError{
		Peer:   f.peer,
		Round:  f.round,
		Reason: f.reason,
		Err:    fmt.Errorf("dist: remote job failed: %s", f.msg),
	}
}

func appendErrorFrame(b []byte, err error) []byte {
	f := errorFrame{msg: err.Error(), linkDown: errors.Is(err, transport.ErrLinkDown), peer: -1}
	var ld *transport.LinkDownError
	if errors.As(err, &ld) {
		f.peer, f.round, f.reason = ld.Peer, ld.Round, ld.Reason
	}
	b = wire.AppendBytes(b, []byte(f.msg))
	b = wire.AppendBool(b, f.linkDown)
	b = wire.AppendVarint(b, int64(f.peer))
	b = wire.AppendUvarint(b, f.round)
	b = wire.AppendBytes(b, []byte(f.reason))
	return b
}

func decodeErrorFrame(body []byte) (*errorFrame, error) {
	r := wire.NewReader(body)
	f := &errorFrame{
		msg:      string(r.Bytes()),
		linkDown: r.Bool(),
		peer:     int(r.Varint()),
		round:    r.Uvarint(),
		reason:   transport.LinkDownReason(r.Bytes()),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// appendHeartbeat encodes a FrameHeartbeat body: which cluster the beat
// is for and how many rounds its engine has completed.
func appendHeartbeat(b []byte, clusterID, rounds uint64) []byte {
	b = wire.AppendU64(b, clusterID)
	b = wire.AppendUvarint(b, rounds)
	return b
}

func decodeHeartbeat(body []byte) (clusterID, rounds uint64, err error) {
	r := wire.NewReader(body)
	clusterID = r.U64()
	rounds = r.Uvarint()
	return clusterID, rounds, r.Err()
}
