// Package dist runs k-machine jobs across OS processes. A coordinator
// (kmconnect/kmmst with -transport tcp) splits the k machines into
// contiguous ranges over a set of worker processes (cmd/kmworker),
// ships each worker a job spec over a control connection, and gathers
// partial results. The workers form a TCP mesh among themselves
// (transport/tcp), each loads its own slice of the graph shard-direct
// from the job's source spec, and each runs the ordinary round engine
// over its hosted machines.
//
// Determinism carries over wholesale: machine RNGs are seeded from
// (seed, machine id), the vertex partition from the same RVP hash, and
// the bandwidth simulation partitions by destination owner — so the
// merged Metrics and the assembled result are bit-identical to a
// single-process run with the same spec. The golden-equality tests pin
// exactly that.
//
// Graph inputs are named by source specs so every worker can
// independently materialize its shard without the coordinator shipping
// edges: "store:<path>" opens a kmgs container (the path must be
// readable by each worker), "gnm:<n>:<m>:<seed>" and
// "rmat:<n>:<m>:<seed>" replay the deterministic streaming generators.
package dist

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/store"
	"kmgraph/internal/telemetry"
	"kmgraph/internal/transport"
	"kmgraph/internal/wire"
)

// Kind selects the algorithm a job runs.
type Kind uint8

const (
	// KindConnectivity runs the Õ(n/k²) connectivity algorithm.
	KindConnectivity Kind = 1
	// KindMST runs the MST algorithm.
	KindMST Kind = 2
)

func (k Kind) String() string {
	switch k {
	case KindConnectivity:
		return "connectivity"
	case KindMST:
		return "mst"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// WorkerSpec is one participant of a job: its dialable address and its
// hosted machine range.
type WorkerSpec struct {
	Addr   string
	Lo, Hi int
}

// Job is everything a worker needs to run its slice of a distributed
// job. The coordinator personalizes Index per worker; every other field
// is identical across the fleet (and validated so by the transport
// handshake).
type Job struct {
	ClusterID uint64
	// TraceID, when non-zero, enables cross-process job tracing: each
	// worker records phase spans and streams them back on its control
	// connection, and the coordinator assembles one multi-pid Chrome
	// trace tagged with this ID.
	TraceID uint64
	Kind    Kind
	Source  string // source spec, see the package comment

	// Algorithm configuration, pre-resolution: zero-valued fields are
	// resolved worker-side with WithDefaults(n), identically everywhere.
	Conn core.Config
	MST  core.MSTConfig // Kind == KindMST; Conn is ignored then

	Index   int // this worker's position in Workers
	Workers []WorkerSpec
}

// K returns the job's machine count.
func (j *Job) K() int {
	if j.Kind == KindMST {
		return j.MST.K
	}
	return j.Conn.K
}

// config returns the job's base Config (shared fields).
func (j *Job) config() core.Config {
	if j.Kind == KindMST {
		return j.MST.Config
	}
	return j.Conn
}

// specVersion 2 added the trace ID, span batches on heartbeat and
// result frames, and flight-recorder snapshots on error frames.
const specVersion = 2

// maxWorkers bounds a decoded worker list.
const maxWorkers = 1 << 16

// AppendJob encodes j as a FrameJob body.
func AppendJob(b []byte, j *Job) []byte {
	b = wire.AppendUvarint(b, specVersion)
	b = wire.AppendU64(b, j.ClusterID)
	b = wire.AppendU64(b, j.TraceID)
	b = wire.AppendUvarint(b, uint64(j.Kind))
	b = wire.AppendBytes(b, []byte(j.Source))
	c := j.config()
	b = wire.AppendUvarint(b, uint64(c.K))
	b = wire.AppendUvarint(b, uint64(c.BandwidthBits))
	b = wire.AppendVarint(b, c.Seed)
	b = wire.AppendUvarint(b, uint64(c.MaxPhases))
	b = wire.AppendUvarint(b, uint64(c.MaxRounds))
	b = wire.AppendUvarint(b, uint64(c.MessageOverheadBits))
	b = wire.AppendBool(b, c.CollapseLevelWise)
	b = wire.AppendBool(b, c.CoinMerge)
	b = wire.AppendBool(b, c.EdgeCheckSelection)
	b = wire.AppendBool(b, c.FaithfulRandomness)
	b = wire.AppendBool(b, c.CountComponents)
	b = wire.AppendBool(b, j.MST.StrongOutput)
	b = wire.AppendUvarint(b, uint64(j.MST.MaxElimIters))
	b = wire.AppendUvarint(b, uint64(j.Index))
	b = wire.AppendUvarint(b, uint64(len(j.Workers)))
	for _, w := range j.Workers {
		b = wire.AppendBytes(b, []byte(w.Addr))
		b = wire.AppendUvarint(b, uint64(w.Lo))
		b = wire.AppendUvarint(b, uint64(w.Hi))
	}
	return b
}

// DecodeJob decodes a FrameJob body.
func DecodeJob(body []byte) (*Job, error) {
	r := wire.NewReader(body)
	if v := r.Uvarint(); v != specVersion {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("dist: job spec version %d, want %d", v, specVersion)
	}
	j := &Job{ClusterID: r.U64(), TraceID: r.U64(), Kind: Kind(r.Uvarint()), Source: string(r.Bytes())}
	var c core.Config
	c.K = int(r.Uvarint())
	c.BandwidthBits = int(r.Uvarint())
	c.Seed = r.Varint()
	c.MaxPhases = int(r.Uvarint())
	c.MaxRounds = int(r.Uvarint())
	c.MessageOverheadBits = int(r.Uvarint())
	c.CollapseLevelWise = r.Bool()
	c.CoinMerge = r.Bool()
	c.EdgeCheckSelection = r.Bool()
	c.FaithfulRandomness = r.Bool()
	c.CountComponents = r.Bool()
	j.MST.StrongOutput = r.Bool()
	j.MST.MaxElimIters = int(r.Uvarint())
	j.Index = int(r.Uvarint())
	nw := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nw < 1 || nw > maxWorkers {
		return nil, fmt.Errorf("dist: job with %d workers", nw)
	}
	j.Workers = make([]WorkerSpec, nw)
	for i := range j.Workers {
		j.Workers[i] = WorkerSpec{
			Addr: string(r.Bytes()),
			Lo:   int(r.Uvarint()),
			Hi:   int(r.Uvarint()),
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	j.Conn = c
	j.MST.Config = c
	if j.Kind != KindConnectivity && j.Kind != KindMST {
		return nil, fmt.Errorf("dist: unknown job kind %d", j.Kind)
	}
	if j.Index < 0 || j.Index >= nw {
		return nil, fmt.Errorf("dist: job index %d of %d workers", j.Index, nw)
	}
	k := c.K
	if k < 1 {
		return nil, fmt.Errorf("dist: job with k=%d", k)
	}
	next := 0
	for i, w := range j.Workers {
		if w.Lo != next || w.Hi <= w.Lo || w.Hi > k {
			return nil, fmt.Errorf("dist: worker %d hosts [%d,%d), want contiguous cover of [0,%d)",
				i, w.Lo, w.Hi, k)
		}
		next = w.Hi
	}
	if next != k {
		return nil, fmt.Errorf("dist: workers cover [0,%d) of %d machines", next, k)
	}
	return j, nil
}

// OpenJobSource opens a job's source spec as an EdgeSource.
func OpenJobSource(spec string) (graph.EdgeSource, io.Closer, error) {
	switch {
	case strings.HasPrefix(spec, "store:"):
		r, err := store.Open(strings.TrimPrefix(spec, "store:"))
		if err != nil {
			return nil, nil, err
		}
		return r.Source(), r, nil
	case strings.HasPrefix(spec, "gnm:"), strings.HasPrefix(spec, "rmat:"):
		parts := strings.Split(spec, ":")
		if len(parts) != 4 {
			return nil, nil, fmt.Errorf("dist: source spec %q, want %s:<n>:<m>:<seed>", spec, parts[0])
		}
		n, err1 := strconv.Atoi(parts[1])
		m, err2 := strconv.Atoi(parts[2])
		seed, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, nil, fmt.Errorf("dist: malformed source spec %q", spec)
		}
		if n < 2 || m < 0 || m > n*(n-1)/2 {
			return nil, nil, fmt.Errorf("dist: source spec %q out of range", spec)
		}
		var src graph.EdgeSource
		if parts[0] == "gnm" {
			src = graph.StreamGNM(n, m, seed)
		} else {
			src = graph.StreamRMAT(n, m, seed)
		}
		return src, nopCloser{}, nil
	default:
		return nil, nil, fmt.Errorf("dist: unknown source spec %q (want store:, gnm:, or rmat:)", spec)
	}
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// resultFrame is a worker's partial result: the vertex count it
// observed, its partial Metrics, its hosted machines' outputs, and —
// for traced jobs — the phase spans not yet streamed on heartbeats
// (always including the trailing sync span, sealed at completion).
type resultFrame struct {
	n       int
	lo, hi  int
	metrics []byte // transport.AppendMetrics encoding
	outputs []any
	spans   []telemetry.PhaseSpan
}

// errorFrame is a worker's job failure. Link-down failures carry the
// structured fields of transport.LinkDownError across the wire —
// including the worker's flight-recorder snapshot — so the
// coordinator's classification, retry decisions, and post-mortems see
// the same peer, round, reason, and last-K-rounds history a local
// caller would.
type errorFrame struct {
	msg      string
	linkDown bool
	peer     int // -1 when unknown
	round    uint64
	reason   transport.LinkDownReason
	flight   []transport.RoundFlight
}

// err reconstructs the failure the worker reported, preserving the
// ErrLinkDown identity and the structured fields.
func (f *errorFrame) err() error {
	if !f.linkDown {
		return fmt.Errorf("dist: remote job failed: %s", f.msg)
	}
	return &transport.LinkDownError{
		Peer:   f.peer,
		Round:  f.round,
		Reason: f.reason,
		Flight: f.flight,
		Err:    fmt.Errorf("dist: remote job failed: %s", f.msg),
	}
}

func appendErrorFrame(b []byte, err error) []byte {
	f := errorFrame{msg: err.Error(), linkDown: errors.Is(err, transport.ErrLinkDown), peer: -1}
	var ld *transport.LinkDownError
	if errors.As(err, &ld) {
		f.peer, f.round, f.reason, f.flight = ld.Peer, ld.Round, ld.Reason, ld.Flight
	}
	b = wire.AppendBytes(b, []byte(f.msg))
	b = wire.AppendBool(b, f.linkDown)
	b = wire.AppendVarint(b, int64(f.peer))
	b = wire.AppendUvarint(b, f.round)
	b = wire.AppendBytes(b, []byte(f.reason))
	b = appendFlight(b, f.flight)
	return b
}

func decodeErrorFrame(body []byte) (*errorFrame, error) {
	r := wire.NewReader(body)
	f := &errorFrame{
		msg:      string(r.Bytes()),
		linkDown: r.Bool(),
		peer:     int(r.Varint()),
		round:    r.Uvarint(),
		reason:   transport.LinkDownReason(r.Bytes()),
	}
	fl, err := readFlight(r)
	if err != nil {
		return nil, err
	}
	f.flight = fl
	if err := r.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// maxFlightRecords bounds a decoded flight snapshot (a recorder ring is
// DefaultFlightDepth deep; the bound only guards corrupt frames).
const maxFlightRecords = 4096

// appendFlight encodes a flight-recorder snapshot.
func appendFlight(b []byte, fl []transport.RoundFlight) []byte {
	b = wire.AppendUvarint(b, uint64(len(fl)))
	for _, rf := range fl {
		b = wire.AppendUvarint(b, rf.Seq)
		b = wire.AppendVarint(b, rf.WaitNs)
		b = wire.AppendBytes(b, []byte(rf.Err))
		b = wire.AppendUvarint(b, uint64(len(rf.Links)))
		for _, l := range rf.Links {
			b = wire.AppendVarint(b, int64(l.Peer))
			b = wire.AppendVarint(b, l.FramesSent)
			b = wire.AppendVarint(b, l.FramesRecv)
			b = wire.AppendVarint(b, l.BytesSent)
			b = wire.AppendVarint(b, l.BytesRecv)
		}
	}
	return b
}

func readFlight(r *wire.Reader) ([]transport.RoundFlight, error) {
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > maxFlightRecords {
		return nil, fmt.Errorf("dist: flight snapshot with %d records", n)
	}
	fl := make([]transport.RoundFlight, n)
	for i := range fl {
		fl[i].Seq = r.Uvarint()
		fl[i].WaitNs = r.Varint()
		fl[i].Err = string(r.Bytes())
		nl := int(r.Uvarint())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nl > maxWorkers {
			return nil, fmt.Errorf("dist: flight record with %d links", nl)
		}
		if nl > 0 {
			fl[i].Links = make([]transport.LinkFlight, nl)
			for j := range fl[i].Links {
				fl[i].Links[j] = transport.LinkFlight{
					Peer:       int(r.Varint()),
					FramesSent: r.Varint(),
					FramesRecv: r.Varint(),
					BytesSent:  r.Varint(),
					BytesRecv:  r.Varint(),
				}
			}
		}
	}
	return fl, r.Err()
}

// maxSpanBatch bounds the phase spans one heartbeat carries, keeping
// beats small and regular; the backlog drains across beats and any
// remainder rides the result frame.
const maxSpanBatch = 256

// maxSpanDecode bounds one decoded span batch (phase counts are
// O(log n); the bound only guards corrupt frames).
const maxSpanDecode = 1 << 16

// appendSpans encodes a phase-span batch.
func appendSpans(b []byte, spans []telemetry.PhaseSpan) []byte {
	b = wire.AppendUvarint(b, uint64(len(spans)))
	for _, s := range spans {
		b = wire.AppendVarint(b, int64(s.Phase))
		b = wire.AppendUvarint(b, uint64(s.StartRound))
		b = wire.AppendUvarint(b, uint64(s.EndRound))
		b = wire.AppendUvarint(b, uint64(s.StartUs))
		b = wire.AppendUvarint(b, uint64(s.DurUs))
		b = wire.AppendVarint(b, s.Frames)
		b = wire.AppendVarint(b, s.Bytes)
		b = wire.AppendVarint(b, s.WaitNs)
	}
	return b
}

func readSpans(r *wire.Reader) ([]telemetry.PhaseSpan, error) {
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > maxSpanDecode {
		return nil, fmt.Errorf("dist: span batch of %d", n)
	}
	spans := make([]telemetry.PhaseSpan, n)
	for i := range spans {
		spans[i] = telemetry.PhaseSpan{
			Phase:      int(r.Varint()),
			StartRound: int(r.Uvarint()),
			EndRound:   int(r.Uvarint()),
			StartUs:    int64(r.Uvarint()),
			DurUs:      int64(r.Uvarint()),
			Frames:     r.Varint(),
			Bytes:      r.Varint(),
			WaitNs:     r.Varint(),
		}
	}
	return spans, r.Err()
}

// appendHeartbeat encodes a FrameHeartbeat body: which cluster the beat
// is for, how many rounds its engine has completed, and a bounded batch
// of freshly completed phase spans (empty unless the job is traced).
func appendHeartbeat(b []byte, clusterID, rounds uint64, spans []telemetry.PhaseSpan) []byte {
	b = wire.AppendU64(b, clusterID)
	b = wire.AppendUvarint(b, rounds)
	b = appendSpans(b, spans)
	return b
}

func decodeHeartbeat(body []byte) (clusterID, rounds uint64, spans []telemetry.PhaseSpan, err error) {
	r := wire.NewReader(body)
	clusterID = r.U64()
	rounds = r.Uvarint()
	spans, err = readSpans(r)
	if err != nil {
		return clusterID, rounds, nil, err
	}
	return clusterID, rounds, spans, r.Err()
}
