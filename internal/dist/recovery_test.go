package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/store"
	"kmgraph/internal/transport"
)

// startWorker launches one in-process worker with a fast heartbeat and
// returns it with its dialable address.
func startWorker(t *testing.T) (*Worker, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(ln, WorkerOptions{
		MeshTimeout:       30 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
	})
	go w.Serve()
	t.Cleanup(func() { w.Close() })
	return w, w.Addr()
}

// waitJobRunning blocks until one of w's jobs reports at least one
// completed round — the engine is provably mid-run, so a Close here is
// a mid-job kill, not a kill during setup.
func waitJobRunning(t *testing.T, w *Worker) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		for _, js := range w.Jobs() {
			if js.Rounds >= 1 {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a running engine")
}

// respawnDead probes every fleet address and replaces the ones that no
// longer accept connections with freshly started workers — the test
// analog of a supervisor restarting a crashed process.
func respawnDead(t *testing.T, respawned *int) func(context.Context, int, error, []string) ([]string, error) {
	var mu sync.Mutex
	return func(_ context.Context, _ int, _ error, addrs []string) ([]string, error) {
		mu.Lock()
		defer mu.Unlock()
		out := append([]string(nil), addrs...)
		for i, a := range out {
			c, err := net.DialTimeout("tcp", a, time.Second)
			if err != nil {
				_, na := startWorker(t)
				out[i] = na
				*respawned++
				continue
			}
			c.Close()
		}
		return out, nil
	}
}

// TestRetryRecoversKilledWorkerConnectivity is the recovery acceptance
// for connectivity: a worker dies mid-job, the coordinator retries with
// a respawned replacement, and the recovered result — labels, component
// count, and the full Metrics fingerprint — is bit-identical to the
// fault-free local golden.
func TestRetryRecoversKilledWorkerConnectivity(t *testing.T) {
	const (
		n, m = 8000, 24000
		gs   = int64(3)
	)
	cfg := core.Config{K: 6, Seed: 5}
	golden, err := core.RunSource(graph.StreamGNM(n, m, gs), cfg)
	if err != nil {
		t.Fatal(err)
	}

	_, a0 := startWorker(t)
	victim, a1 := startWorker(t)
	go func() {
		waitJobRunning(t, victim)
		victim.Close()
	}()

	respawned := 0
	opts := CoordOptions{Retry: RetryPolicy{
		Attempts:   3,
		Backoff:    50 * time.Millisecond,
		MaxBackoff: 200 * time.Millisecond,
		Respawn:    respawnDead(t, &respawned),
	}}
	spec := fmt.Sprintf("gnm:%d:%d:%d", n, m, gs)
	res, err := RunConnectivityOpts(context.Background(), []string{a0, a1}, spec, cfg, opts)
	if err != nil {
		t.Fatalf("job did not recover: %v", err)
	}
	if respawned == 0 {
		t.Fatal("job succeeded without respawning the killed worker; the kill missed the run")
	}
	if res.Components != golden.Components {
		t.Errorf("components: recovered %d, golden %d", res.Components, golden.Components)
	}
	for v := range golden.Labels {
		if res.Labels[v] != golden.Labels[v] {
			t.Fatalf("label of vertex %d drifted after recovery", v)
		}
	}
	if rf, gf := metricsFingerprint(&res.Metrics), metricsFingerprint(&golden.Metrics); rf != gf {
		t.Errorf("metrics fingerprint drifted after recovery: %d vs %d", rf, gf)
	}
}

// TestRetryRecoversKilledWorkerMST is the same acceptance for MST, with
// the graph served from a kmgs store.
func TestRetryRecoversKilledWorkerMST(t *testing.T) {
	const (
		n, m = 3000, 9000
	)
	g := graph.WithDistinctWeights(graph.GNM(n, m, 5), 6)
	path := filepath.Join(t.TempDir(), "g.kmgs")
	if err := store.WriteFile(path, g.Source()); err != nil {
		t.Fatal(err)
	}
	cfg := core.MSTConfig{Config: core.Config{K: 4, Seed: 3}}
	golden, err := core.RunMST(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	_, a0 := startWorker(t)
	victim, a1 := startWorker(t)
	go func() {
		waitJobRunning(t, victim)
		victim.Close()
	}()

	respawned := 0
	opts := CoordOptions{Retry: RetryPolicy{
		Attempts:   3,
		Backoff:    50 * time.Millisecond,
		MaxBackoff: 200 * time.Millisecond,
		Respawn:    respawnDead(t, &respawned),
	}}
	res, err := RunMSTOpts(context.Background(), []string{a0, a1}, "store:"+path, cfg, opts)
	if err != nil {
		t.Fatalf("job did not recover: %v", err)
	}
	if respawned == 0 {
		t.Fatal("job succeeded without respawning the killed worker; the kill missed the run")
	}
	if res.TotalWeight != golden.TotalWeight || len(res.Edges) != len(golden.Edges) {
		t.Errorf("forest: recovered weight=%d/%d edges, golden weight=%d/%d edges",
			res.TotalWeight, len(res.Edges), golden.TotalWeight, len(golden.Edges))
	}
	for i := range golden.Edges {
		if res.Edges[i] != golden.Edges[i] {
			t.Fatalf("edge %d drifted after recovery", i)
		}
	}
	if rf, gf := metricsFingerprint(&res.Metrics), metricsFingerprint(&golden.Metrics); rf != gf {
		t.Errorf("metrics fingerprint drifted after recovery: %d vs %d", rf, gf)
	}
}

// TestSilentWorkerStallsPromptly is the goroutine-leak regression for
// the coordinator's gather: a worker that accepts the job but never
// answers (and never heartbeats) must fail the job at the heartbeat
// deadline — classified as a stall — and leave no coordinator
// goroutines or connections behind.
func TestSilentWorkerStallsPromptly(t *testing.T) {
	base := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var mu sync.Mutex
	var held []net.Conn
	defer func() {
		mu.Lock()
		for _, c := range held {
			c.Close()
		}
		mu.Unlock()
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c)
			mu.Unlock()
		}
	}()

	cfg := core.Config{K: 2, Seed: 1}
	opts := CoordOptions{HeartbeatTimeout: 300 * time.Millisecond}
	start := time.Now()
	_, err = RunConnectivityOpts(context.Background(), []string{ln.Addr().String()},
		"gnm:200:600:1", cfg, opts)
	if err == nil {
		t.Fatal("job succeeded against a silent worker")
	}
	if !errors.Is(err, transport.ErrLinkDown) {
		t.Fatalf("err = %v, want wrapping transport.ErrLinkDown", err)
	}
	var ld *transport.LinkDownError
	if !errors.As(err, &ld) || ld.Reason != transport.ReasonStall {
		t.Fatalf("err = %v, want stall classification", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall detection took %v, want within the heartbeat deadline's order", elapsed)
	}

	// The accept loop above is ours; everything the coordinator spawned
	// must be gone.
	ln.Close()
	mu.Lock()
	for _, c := range held {
		c.Close()
	}
	held = nil
	mu.Unlock()
	waitGoroutines(t, base)
}

// TestDrainFinishesActiveJob pins graceful drain: a worker draining
// mid-job lets the job run to completion (the coordinator gets the full
// result), then reports idle with no orphaned cluster inboxes.
func TestDrainFinishesActiveJob(t *testing.T) {
	const (
		n, m = 8000, 24000
		gs   = int64(3)
	)
	cfg := core.Config{K: 4, Seed: 5}
	golden, err := core.RunSource(graph.StreamGNM(n, m, gs), cfg)
	if err != nil {
		t.Fatal(err)
	}

	_, a0 := startWorker(t)
	w1, a1 := startWorker(t)

	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		spec := fmt.Sprintf("gnm:%d:%d:%d", n, m, gs)
		res, err := RunConnectivity(context.Background(), []string{a0, a1}, spec, cfg)
		done <- outcome{res, err}
	}()

	waitJobRunning(t, w1)
	drained := make(chan error, 1)
	go func() { drained <- w1.Drain(context.Background()) }()

	o := <-done
	if o.err != nil {
		t.Fatalf("job failed under drain: %v", o.err)
	}
	if o.res.Components != golden.Components {
		t.Errorf("components: drained %d, golden %d", o.res.Components, golden.Components)
	}
	if metricsFingerprint(&o.res.Metrics) != metricsFingerprint(&golden.Metrics) {
		t.Error("metrics fingerprint drifted under drain")
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Drain did not return after the job finished")
	}
	if jobs := w1.Jobs(); len(jobs) != 0 {
		t.Fatalf("drained worker still reports jobs: %+v", jobs)
	}
	w1.mu.Lock()
	orphans := len(w1.meshes)
	w1.mu.Unlock()
	if orphans != 0 {
		t.Fatalf("drained worker holds %d orphaned cluster inboxes", orphans)
	}
}

// TestErrorFrameRoundTrip pins that a worker's structured link-down
// error crosses the control connection intact: peer index, round, and
// reason survive, and the reconstructed error still matches ErrLinkDown.
func TestErrorFrameRoundTrip(t *testing.T) {
	orig := &transport.LinkDownError{
		Peer: 3, Addr: "10.0.0.8:9601", Round: 17,
		Reason: transport.ReasonStall, Err: errors.New("boom"),
	}
	ef, err := decodeErrorFrame(appendErrorFrame(nil, fmt.Errorf("dist: forming mesh: %w", orig)))
	if err != nil {
		t.Fatal(err)
	}
	if !ef.linkDown || ef.peer != 3 || ef.round != 17 || ef.reason != transport.ReasonStall {
		t.Fatalf("decoded frame = %+v", ef)
	}
	e := ef.err()
	if !errors.Is(e, transport.ErrLinkDown) {
		t.Fatal("reconstructed error lost the ErrLinkDown identity")
	}
	var ld *transport.LinkDownError
	if !errors.As(e, &ld) || ld.Peer != 3 || ld.Round != 17 || ld.Reason != transport.ReasonStall {
		t.Fatalf("reconstructed error = %+v", ld)
	}

	// Plain job failures stay plain.
	ef, err = decodeErrorFrame(appendErrorFrame(nil, errors.New("no such file")))
	if err != nil {
		t.Fatal(err)
	}
	if ef.linkDown || errors.Is(ef.err(), transport.ErrLinkDown) {
		t.Fatal("application error classified as link-down")
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base (goleak-style, mirroring the kmachine cancellation tests).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
