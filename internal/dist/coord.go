package dist

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"kmgraph/internal/core"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/transport"
	"kmgraph/internal/transport/tcp"
	"kmgraph/internal/wire"
)

// The coordinator hosts zero machines: it assigns ranges, ships the
// job, and reassembles the workers' partial results. All round traffic
// flows worker-to-worker.

// SplitRanges assigns k machines to w workers as contiguous, near-even
// ranges (the first k%w workers get one extra machine).
func SplitRanges(k, w int) ([][2]int, error) {
	if w < 1 {
		return nil, errors.New("dist: no workers")
	}
	if w > k {
		return nil, fmt.Errorf("dist: %d workers for %d machines (need w <= k)", w, k)
	}
	ranges := make([][2]int, w)
	base, extra := k/w, k%w
	lo := 0
	for i := range ranges {
		hi := lo + base
		if i < extra {
			hi++
		}
		ranges[i] = [2]int{lo, hi}
		lo = hi
	}
	return ranges, nil
}

func newClusterID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("dist: crypto/rand unavailable: " + err.Error())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// CoordOptions tune the coordinator side of a distributed job.
type CoordOptions struct {
	// HeartbeatTimeout is the longest silence tolerated on a worker
	// control connection before the gather declares the worker stalled
	// (default 30s; negative disables the deadline). Workers beat every
	// WorkerOptions.HeartbeatInterval, so this must comfortably exceed
	// that.
	HeartbeatTimeout time.Duration
	// Retry governs recovery after a failed attempt. The zero value
	// never retries.
	Retry RetryPolicy
	// Trace, when non-nil, enables cross-process job tracing: the
	// coordinator mints a trace ID into the job spec, workers stream
	// phase spans back on their control connections, and Trace.Assemble
	// returns the merged multi-pid Chrome trace after the run.
	Trace *JobTrace
	// Flight, when non-nil, records per-control-link activity and
	// captures any flight-recorder snapshot a failing worker reports,
	// for Flight.Dump / the CLIs' -flight-dump.
	Flight *FlightLog
	// Progress, when non-nil, is called from each control-link gather
	// as heartbeats arrive, with the worker index and its live engine
	// round count (kmserve surfaces these as per-worker gauges and SSE
	// deltas). It must be fast and non-blocking.
	Progress func(worker int, rounds uint64)
}

func (o CoordOptions) withDefaults() CoordOptions {
	if o.HeartbeatTimeout == 0 {
		o.HeartbeatTimeout = 30 * time.Second
	}
	o.Retry = o.Retry.withDefaults()
	return o
}

// RunConnectivity runs a distributed connectivity job over the worker
// fleet at addrs, on the graph named by the source spec. The assembled
// result (and its Metrics) is bit-identical to core.RunSource with the
// same spec and configuration.
func RunConnectivity(ctx context.Context, addrs []string, source string, cfg core.Config) (*core.Result, error) {
	return RunConnectivityOpts(ctx, addrs, source, cfg, CoordOptions{})
}

// RunConnectivityOpts is RunConnectivity with coordinator tuning:
// heartbeat deadlines and retry-with-respawn recovery. A recovered run
// (one that succeeded after retries) is bit-identical to a fault-free
// one — jobs are deterministic and re-materializable from their source
// spec, so a retry replays the exact computation.
func RunConnectivityOpts(ctx context.Context, addrs []string, source string, cfg core.Config, opts CoordOptions) (*core.Result, error) {
	job := Job{Kind: KindConnectivity, Source: source, Conn: cfg}
	res, n, err := runRetry(ctx, addrs, job, opts)
	if err != nil {
		return nil, err
	}
	return core.Assemble(n, res)
}

// RunMST runs a distributed MST job over the worker fleet at addrs.
func RunMST(ctx context.Context, addrs []string, source string, cfg core.MSTConfig) (*core.MSTResult, error) {
	return RunMSTOpts(ctx, addrs, source, cfg, CoordOptions{})
}

// RunMSTOpts is RunMST with coordinator tuning (see RunConnectivityOpts).
func RunMSTOpts(ctx context.Context, addrs []string, source string, cfg core.MSTConfig, opts CoordOptions) (*core.MSTResult, error) {
	job := Job{Kind: KindMST, Source: source, MST: cfg}
	res, n, err := runRetry(ctx, addrs, job, opts)
	if err != nil {
		return nil, err
	}
	return core.AssembleMST(n, res)
}

type gathered struct {
	idx int
	rf  *resultFrame
	err error
}

// runOnce ships the job to every worker, gathers and merges the
// partials. One attempt: retries live in runRetry.
func runOnce(ctx context.Context, addrs []string, job Job, opts CoordOptions) (*kmachine.Result, int, error) {
	k := job.K()
	ranges, err := SplitRanges(k, len(addrs))
	if err != nil {
		return nil, 0, err
	}
	job.ClusterID = newClusterID()
	job.Workers = make([]WorkerSpec, len(addrs))
	for i, a := range addrs {
		job.Workers[i] = WorkerSpec{Addr: a, Lo: ranges[i][0], Hi: ranges[i][1]}
	}
	if opts.Trace != nil {
		job.TraceID = newClusterID()
		opts.Trace.reset(&job, ranges)
	}
	if opts.Flight != nil {
		opts.Flight.reset()
	}

	conns := make([]net.Conn, len(addrs))
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	for i, a := range addrs {
		conn, err := net.DialTimeout("tcp", a, 10*time.Second)
		if err != nil {
			closeAll()
			// Unreachable at dial time is a crashed worker: classify it
			// so the retry policy (and Respawn) can recover from it.
			workerFailuresCounter(transport.ReasonCrash).Inc()
			return nil, 0, &transport.LinkDownError{
				Peer: i, Addr: a, Reason: transport.ReasonCrash,
				Err: fmt.Errorf("dist: dialing worker: %w", err),
			}
		}
		conns[i] = conn
		job.Index = i
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := conn.Write(tcp.AppendFrame(nil, tcp.FrameJob, AppendJob(nil, &job))); err != nil {
			closeAll()
			return nil, 0, fmt.Errorf("dist: sending job to worker %d: %w", i, err)
		}
	}

	// Cancellation reaches workers by hanging up their control
	// connections; each worker then cancels its job context, and the
	// abort propagates through the mesh as closing links.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			closeAll()
		case <-watchDone:
		}
	}()

	results := make(chan gathered, len(conns))
	for i, conn := range conns {
		go func(i int, conn net.Conn) {
			rf, err := gatherOne(conn, i, addrs[i], opts)
			results <- gathered{idx: i, rf: rf, err: err}
		}(i, conn)
	}

	met := transport.NewMetrics(k)
	outputs := make([]any, k)
	n := -1
	var firstErr error
	// The first failure closes every control connection immediately:
	// the surviving gathers wake on their closed conns instead of
	// waiting out the job, and the workers abort when their control
	// links drop. Later errors are self-inflicted by that close and are
	// not recorded.
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			closeAll()
		}
	}
	for range conns {
		g := <-results
		if g.err != nil {
			fail(fmt.Errorf("dist: worker %d (%s): %w", g.idx, addrs[g.idx], g.err))
			continue
		}
		rf := g.rf
		want := ranges[g.idx]
		if rf.lo != want[0] || rf.hi != want[1] {
			fail(fmt.Errorf("dist: worker %d reported range [%d,%d), want [%d,%d)",
				g.idx, rf.lo, rf.hi, want[0], want[1]))
			continue
		}
		if n == -1 {
			n = rf.n
		} else if rf.n != n {
			fail(fmt.Errorf("dist: workers disagree on n (%d vs %d)", rf.n, n))
			continue
		}
		pm, err := transport.ReadMetrics(wire.NewReader(rf.metrics))
		if err == nil {
			err = transport.MergeMetrics(met, pm)
		}
		if err != nil {
			fail(err)
			continue
		}
		for i, o := range rf.outputs {
			outputs[rf.lo+i] = o
		}
	}
	closeAll()
	if firstErr != nil {
		if ctx.Err() != nil {
			return nil, 0, ctx.Err()
		}
		return nil, 0, firstErr
	}
	met.Finish()
	return &kmachine.Result{Metrics: *met, Outputs: outputs}, n, nil
}

// gatherOne reads a worker's result (or error) frame, consuming
// heartbeats as liveness along the way. Silence past the heartbeat
// timeout declares the worker stalled; a dead connection, crashed —
// both as structured LinkDownErrors carrying the worker index, its
// last reported round, and the coordinator's control-link flight
// snapshot. Heartbeat round counts feed opts.Progress, span batches
// feed opts.Trace, and every inbound frame is one recorded "round" of
// the control link in opts.Flight.
func gatherOne(conn net.Conn, idx int, addr string, opts CoordOptions) (*resultFrame, error) {
	var buf []byte
	var lastRounds uint64
	var flight *transport.FlightRecorder
	if opts.Flight != nil {
		flight = opts.Flight.recorder(idx)
	}
	lastFrame := time.Now()
	record := func(body []byte) {
		if flight == nil {
			return
		}
		now := time.Now()
		flight.Record(transport.RoundFlight{
			Seq:    lastRounds,
			WaitNs: now.Sub(lastFrame).Nanoseconds(),
			Links: []transport.LinkFlight{{
				Peer: idx, FramesRecv: 1, BytesRecv: int64(len(body)),
			}},
		})
		lastFrame = now
	}
	fail := func(ld *transport.LinkDownError) error {
		if flight != nil {
			flight.RecordError(lastRounds, ld)
			ld.Flight = flight.Snapshot()
		}
		return ld
	}
	for {
		if opts.HeartbeatTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(opts.HeartbeatTimeout))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		t, body, err := tcp.ReadFrame(conn, &buf)
		if err != nil {
			reason := transport.ReasonCrash
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				reason = transport.ReasonStall
				heartbeatsMissedCounter().Inc()
			}
			workerFailuresCounter(reason).Inc()
			return nil, fail(&transport.LinkDownError{
				Peer: idx, Addr: addr, Round: lastRounds, Reason: reason,
				Err: fmt.Errorf("dist: reading result: %v", err),
			})
		}
		switch t {
		case tcp.FrameHeartbeat:
			if _, rounds, spans, err := decodeHeartbeat(body); err == nil {
				lastRounds = rounds
				if opts.Trace != nil {
					opts.Trace.add(idx, spans)
				}
				if opts.Progress != nil {
					opts.Progress(idx, rounds)
				}
			}
			record(body)
		case tcp.FrameResult:
			rf, err := decodeResultFrame(body)
			if err != nil {
				return nil, err
			}
			record(body)
			if opts.Trace != nil {
				opts.Trace.add(idx, rf.spans)
			}
			return rf, nil
		case tcp.FrameError:
			ef, err := decodeErrorFrame(body)
			if err != nil {
				return nil, err
			}
			record(body)
			if opts.Flight != nil {
				opts.Flight.setRemote(idx, ef.flight)
			}
			if ef.linkDown {
				reason := ef.reason
				if reason == "" {
					reason = transport.ReasonCrash
				}
				workerFailuresCounter(reason).Inc()
			}
			return nil, ef.err()
		default:
			workerFailuresCounter(transport.ReasonDesync).Inc()
			return nil, fail(&transport.LinkDownError{
				Peer: idx, Addr: addr, Round: lastRounds, Reason: transport.ReasonDesync,
				Err: fmt.Errorf("dist: unexpected frame type %d from worker", t),
			})
		}
	}
}

func decodeResultFrame(body []byte) (*resultFrame, error) {
	r := wire.NewReader(body)
	rf := &resultFrame{
		n:  int(r.Uvarint()),
		lo: int(r.Uvarint()),
		hi: int(r.Uvarint()),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if rf.n < 0 || rf.lo < 0 || rf.hi <= rf.lo || rf.hi-rf.lo > maxK {
		return nil, fmt.Errorf("dist: result frame with n=%d range [%d,%d)", rf.n, rf.lo, rf.hi)
	}
	// Metrics claim the rest of the frame up to the outputs; re-parse via
	// the shared reader so offsets stay aligned.
	pm, err := transport.ReadMetrics(r)
	if err != nil {
		return nil, err
	}
	rf.metrics = transport.AppendMetrics(nil, pm)
	for i := rf.lo; i < rf.hi; i++ {
		o, err := core.ReadOutput(r)
		if err != nil {
			return nil, err
		}
		rf.outputs = append(rf.outputs, o)
	}
	spans, err := readSpans(r)
	if err != nil {
		return nil, err
	}
	rf.spans = spans
	if err := r.Done(); err != nil {
		return nil, err
	}
	return rf, nil
}

// maxK mirrors the transport's machine bound.
const maxK = 1 << 16
